package timeseries

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// JSONL streams sealed windows as one JSON object per line through an
// internal buffer. Call Flush (or Close) when done, or trailing windows
// stay in the buffer — the wdmlint errcheck-lite rule enforces that the
// error is checked. After the first failure every subsequent write returns
// the same error without touching the sink, mirroring trace.JSONL.
type JSONL struct {
	w   io.Writer
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL returns a sink writing to w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{w: w, bw: bw, enc: json.NewEncoder(bw)}
}

// WriteSnapshot implements Sink.
func (j *JSONL) WriteSnapshot(s *Snapshot) error {
	if j.err != nil {
		return j.err
	}
	if err := j.enc.Encode(s); err != nil {
		j.err = fmt.Errorf("timeseries: %w", err)
	}
	return j.err
}

// Flush drains the internal buffer to the underlying writer.
func (j *JSONL) Flush() error {
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = fmt.Errorf("timeseries: %w", err)
	}
	return j.err
}

// Close flushes and, when the underlying writer is an io.Closer (e.g. an
// *os.File), closes it. The first error wins.
func (j *JSONL) Close() error {
	err := j.Flush()
	if c, ok := j.w.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("timeseries: %w", cerr)
			j.err = err
		}
	}
	return err
}

// ReadJSONL parses a JSONL stream back into snapshots.
func ReadJSONL(r io.Reader) ([]Snapshot, error) {
	dec := json.NewDecoder(r)
	var out []Snapshot
	for {
		var s Snapshot
		if err := dec.Decode(&s); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("timeseries: %w", err)
		}
		out = append(out, s)
	}
}

// CSV streams sealed windows as comma-separated rows. The header is derived
// from the first window's series (sorted by name, one column group per
// series) and written lazily before the first row; later windows must carry
// the same series in the same order or WriteSnapshot fails, so a CSV file
// is always rectangular. Call Flush or Close when done.
type CSV struct {
	w      io.Writer
	bw     *bufio.Writer
	header []string // series-derived column names after the fixed prefix
	err    error
}

// NewCSV returns a sink writing to w.
func NewCSV(w io.Writer) *CSV {
	return &CSV{w: w, bw: bufio.NewWriter(w)}
}

func csvFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// columns lists the per-series column names of a snapshot, in the
// snapshot's (name-sorted) series order.
func columns(s *Snapshot) []string {
	var cols []string
	for _, h := range s.Hists {
		for _, f := range []string{"count", "sum", "mean", "min", "max", "p50", "p95", "p99"} {
			cols = append(cols, h.Name+"."+f)
		}
	}
	for _, r := range s.Rates {
		cols = append(cols, r.Name+".count", r.Name+".rate")
	}
	for _, r := range s.Ratios {
		cols = append(cols, r.Name+".num", r.Name+".den", r.Name+".value")
	}
	for _, g := range s.Gauges {
		cols = append(cols, g.Name+".last", g.Name+".min", g.Name+".max", g.Name+".mean", g.Name+".samples")
	}
	return cols
}

// WriteSnapshot implements Sink.
func (c *CSV) WriteSnapshot(s *Snapshot) error {
	if c.err != nil {
		return c.err
	}
	cols := columns(s)
	if c.header == nil {
		c.header = cols
		row := append([]string{"window", "start", "end"}, cols...)
		if _, err := c.bw.WriteString(strings.Join(row, ",") + "\n"); err != nil {
			c.err = fmt.Errorf("timeseries: %w", err)
			return c.err
		}
	} else if len(cols) != len(c.header) {
		c.err = fmt.Errorf("timeseries: csv window %d has %d columns, header has %d (series registered mid-run?)",
			s.Window, len(cols), len(c.header))
		return c.err
	}
	row := make([]string, 0, 3+len(cols))
	row = append(row, strconv.FormatUint(s.Window, 10), csvFloat(s.Start), csvFloat(s.End))
	for _, h := range s.Hists {
		row = append(row, strconv.FormatInt(h.Count, 10), csvFloat(h.Sum), csvFloat(h.Mean),
			csvFloat(h.Min), csvFloat(h.Max), csvFloat(h.P50), csvFloat(h.P95), csvFloat(h.P99))
	}
	for _, r := range s.Rates {
		row = append(row, strconv.FormatInt(r.Count, 10), csvFloat(r.Rate))
	}
	for _, r := range s.Ratios {
		row = append(row, strconv.FormatInt(r.Num, 10), strconv.FormatInt(r.Den, 10), csvFloat(r.Value))
	}
	for _, g := range s.Gauges {
		row = append(row, csvFloat(g.Last), csvFloat(g.Min), csvFloat(g.Max),
			csvFloat(g.Mean), strconv.FormatInt(g.Samples, 10))
	}
	if _, err := c.bw.WriteString(strings.Join(row, ",") + "\n"); err != nil {
		c.err = fmt.Errorf("timeseries: %w", err)
	}
	return c.err
}

// Flush drains the internal buffer to the underlying writer.
func (c *CSV) Flush() error {
	if err := c.bw.Flush(); err != nil && c.err == nil {
		c.err = fmt.Errorf("timeseries: %w", err)
	}
	return c.err
}

// Close flushes and, when the underlying writer is an io.Closer, closes it.
func (c *CSV) Close() error {
	err := c.Flush()
	if cl, ok := c.w.(io.Closer); ok {
		if cerr := cl.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("timeseries: %w", cerr)
			c.err = err
		}
	}
	return err
}
