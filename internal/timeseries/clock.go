package timeseries

import (
	"math"
	"sync/atomic"
	"time"
)

// Clock supplies the current time in seconds on some monotonic axis. The
// collector is agnostic about which axis: the simulator advances a SimClock
// with event timestamps (sim-time windows), a live server uses a WallClock
// (wall-time windows). Implementations must be safe for concurrent Now calls.
type Clock interface {
	Now() float64
}

// SimClock is a manually advanced clock for simulated time. The simulator
// owns it and pushes every event timestamp through Advance; concurrent
// readers (debug endpoints) see the latest advanced value.
type SimClock struct {
	bits atomic.Uint64
}

// NewSimClock returns a clock at time 0.
func NewSimClock() *SimClock { return &SimClock{} }

// Advance moves the clock to t. The clock never goes backwards: a t earlier
// than the current time is ignored (the event queue can pop ties out of
// order within one timestamp).
func (c *SimClock) Advance(t float64) {
	for {
		old := c.bits.Load()
		if math.Float64frombits(old) >= t {
			return
		}
		if c.bits.CompareAndSwap(old, math.Float64bits(t)) {
			return
		}
	}
}

// Now returns the last advanced time.
func (c *SimClock) Now() float64 {
	return math.Float64frombits(c.bits.Load())
}

// WallClock reports seconds elapsed since its creation — the clock for live
// serving, where windows are real-time intervals.
type WallClock struct {
	start time.Time
}

// NewWallClock returns a clock starting at 0 now.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now returns seconds since the clock was created.
func (c *WallClock) Now() float64 { return time.Since(c.start).Seconds() }
