package core

import (
	"math"
	"testing"

	"repro/internal/wdm"
)

// srlgNet builds three corridors 0→{1,2,3}→4. Corridors A and B share a
// conduit (SRLG 7); corridor C is independent.
func srlgNet() *wdm.Network {
	net := wdm.NewNetwork(5, 2)
	a1 := net.AddUniformLink(0, 1, 1)
	a2 := net.AddUniformLink(1, 4, 1)
	b1 := net.AddUniformLink(0, 2, 1.2)
	b2 := net.AddUniformLink(2, 4, 1.2)
	net.AddUniformLink(0, 3, 3)
	net.AddUniformLink(3, 4, 3)
	net.SetAllConverters(wdm.NewFullConverter(2, 0.5))
	net.SetSRLG(a1, 7)
	net.SetSRLG(b1, 7) // A and B share the duct out of node 0
	_ = a2
	_ = b2
	return net
}

func TestSRLGBackupAvoidsSharedConduit(t *testing.T) {
	net := srlgNet()
	r, ok := ApproxMinCostSRLG(net, 0, 4, 0, nil)
	if !ok {
		t.Fatal("SRLG routing failed")
	}
	checkResult(t, net, r, 0, 4)
	// Primary is corridor A (cheapest); the backup must skip corridor B
	// (shared SRLG) and use corridor C despite its higher cost.
	if math.Abs(r.Cost-(2+6)) > 1e-9 {
		t.Fatalf("cost = %g, want 8 (A + C)", r.Cost)
	}
	for _, h := range r.Backup.Hops {
		for _, hp := range r.Primary.Hops {
			if net.SharesRisk(h.Link, hp.Link) {
				t.Fatal("backup shares a risk group with the primary")
			}
		}
	}
	// Plain edge-disjoint routing happily uses the shared-risk corridor.
	re, ok := ApproxMinCost(net, 0, 4, nil)
	if !ok {
		t.Fatal("plain routing failed")
	}
	if re.Cost >= r.Cost {
		t.Fatalf("ignoring SRLGs should be cheaper: %g vs %g", re.Cost, r.Cost)
	}
}

func TestSRLGKShortestRetry(t *testing.T) {
	// The cheapest primary has no SRLG-disjoint backup, but the second
	// cheapest does: corridor A conflicts with BOTH alternatives, while
	// corridor B only conflicts with A.
	net := wdm.NewNetwork(5, 2)
	a1 := net.AddUniformLink(0, 1, 1)
	net.AddUniformLink(1, 4, 1)
	b1 := net.AddUniformLink(0, 2, 1.5)
	net.AddUniformLink(2, 4, 1.5)
	c1 := net.AddUniformLink(0, 3, 2)
	net.AddUniformLink(3, 4, 2)
	net.SetAllConverters(wdm.NewFullConverter(2, 0.5))
	net.SetSRLG(a1, 1, 2) // A shares group 1 with B and group 2 with C
	net.SetSRLG(b1, 1)
	net.SetSRLG(c1, 2)
	r, ok := ApproxMinCostSRLG(net, 0, 4, 0, nil)
	if !ok {
		t.Fatal("retry should find the B+C pair")
	}
	// B (3) + C (4) = 7.
	if math.Abs(r.Cost-7) > 1e-9 {
		t.Fatalf("cost = %g, want 7", r.Cost)
	}
	// With retries disabled (maxPrimaries=1) the heuristic fails: the
	// cheapest primary (A) conflicts with everything.
	if _, ok := ApproxMinCostSRLG(net, 0, 4, 1, nil); ok {
		t.Fatal("single-primary heuristic should fail here")
	}
}

func TestSRLGNoGroupsBehavesLikeEdgeDisjoint(t *testing.T) {
	net := diamondNet(2)
	r, ok := ApproxMinCostSRLG(net, 0, 3, 0, nil)
	if !ok {
		t.Fatal("routing failed")
	}
	checkResult(t, net, r, 0, 3)
	if math.Abs(r.Cost-6) > 1e-9 {
		t.Fatalf("cost = %g, want 6", r.Cost)
	}
}

func TestSRLGInfeasible(t *testing.T) {
	// Both corridors share a conduit: no SRLG-disjoint pair exists.
	net := wdm.NewNetwork(4, 2)
	a := net.AddUniformLink(0, 1, 1)
	net.AddUniformLink(1, 3, 1)
	b := net.AddUniformLink(0, 2, 1)
	net.AddUniformLink(2, 3, 1)
	net.SetAllConverters(wdm.NewFullConverter(2, 0.5))
	net.SetSRLG(a, 9)
	net.SetSRLG(b, 9)
	if _, ok := ApproxMinCostSRLG(net, 0, 3, 0, nil); ok {
		t.Fatal("SRLG-conflicting pair accepted")
	}
	// Edge-disjoint routing still succeeds.
	if _, ok := ApproxMinCost(net, 0, 3, nil); !ok {
		t.Fatal("edge-disjoint routing should work")
	}
}

func TestSharesRiskAndClone(t *testing.T) {
	net := wdm.NewNetwork(2, 1)
	a := net.AddUniformLink(0, 1, 1)
	b := net.AddUniformLink(0, 1, 1)
	c := net.AddUniformLink(0, 1, 1)
	net.SetSRLG(a, 1, 2)
	net.SetSRLG(b, 2)
	if !net.SharesRisk(a, b) || net.SharesRisk(a, c) || net.SharesRisk(b, c) {
		t.Fatal("SharesRisk wrong")
	}
	if len(net.SRLGs(a)) != 2 || net.SRLGs(c) != nil {
		t.Fatal("SRLGs accessor wrong")
	}
	// Clone keeps the groups, independently.
	cl := net.Clone()
	if !cl.SharesRisk(a, b) {
		t.Fatal("clone lost SRLGs")
	}
	cl.SetSRLG(c, 2)
	if net.SharesRisk(b, c) {
		t.Fatal("clone not independent")
	}
}
