package rules

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// VersionBump guards the skeleton-cache invalidation contract: every exported
// wdm.Network method that writes residual or topology state must advance the
// change counters by calling bumpState or bumpTopo (auxgraph.Skeleton and the
// Router's per-pair caches are valid exactly while the version they were
// computed at still matches — a missed bump silently serves stale routes).
//
// It also guards the per-link change journal that the incremental reweight
// path reads: a method that mutates wavelength availability must stamp the
// journal (touchLink/touchAll) rather than only bumping the aggregate
// counter, otherwise cached link weights are refreshed for the wrong links —
// the SetSRLG bug shape, one invalidation layer down.
var VersionBump = &lint.Analyzer{
	Name: "versionbump",
	Doc:  "exported wdm.Network methods that mutate state must call bumpState/bumpTopo, and availability writes must stamp the link journal",
	Run:  runVersionBump,
}

const (
	vbPkg  = "wdm"
	vbType = "Network"
)

var (
	// vbBumps are the methods (and raw counter fields) that count as
	// advancing a version. touchLink/touchAll bump transitively: they call
	// bumpState before stamping the journal.
	vbBumps  = map[string]bool{"bumpState": true, "bumpTopo": true, "touchLink": true, "touchAll": true}
	vbFields = map[string]bool{"stateVersion": true, "topoVersion": true}
	// vbStamps are the calls that record an availability change in the
	// per-link journal. bumpTopo counts: a structural change invalidates
	// cached weights wholesale, so no per-link stamp is needed.
	vbStamps = map[string]bool{"touchLink": true, "touchAll": true, "bumpTopo": true}
	// vbStampFields are the raw fields whose write equals a journal stamp.
	vbStampFields = map[string]bool{"stamp": true, "topoVersion": true}
	// vbMutators are method names that mutate a container reached from the
	// receiver (bitset and slice surgery on links and availability sets).
	vbMutators = map[string]bool{
		"Add": true, "Remove": true, "Clear": true, "CopyFrom": true, "Fill": true,
	}
)

func runVersionBump(p *lint.Pass) {
	if !lint.PkgPathIs(p.Pkg, vbPkg) {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recv := fd.Recv.List[0]
			if len(recv.Names) == 0 {
				continue // receiver unnamed: the body cannot write through it
			}
			if !lint.NamedType(p.TypeOf(recv.Type), vbPkg, vbType) {
				continue
			}
			recvObj := p.ObjectOf(recv.Names[0])
			if recvObj == nil {
				continue
			}
			res := scanNetworkMethod(p.Info, fd.Body, recvObj)
			if res.writes && !res.bumps {
				p.Reportf(fd.Name.Pos(),
					"%s.%s mutates network state without calling bumpState or bumpTopo; cached skeletons will serve stale routes",
					vbType, fd.Name.Name)
			}
			if res.availWrites && res.bumps && !res.stamps {
				p.Reportf(fd.Name.Pos(),
					"%s.%s mutates wavelength availability without stamping the link journal; use touchLink/touchAll so incremental reweight sees the change",
					vbType, fd.Name.Name)
			}
		}
	}
}

// vbScan is what a method-body walk observed: rooted state writes, version
// bumps, availability mutations, and journal stamps.
type vbScan struct {
	writes      bool
	bumps       bool
	availWrites bool
	stamps      bool
}

// scanNetworkMethod walks a method body tracking which local variables alias
// state reachable from the receiver ("rooted" values) and reports whether the
// body writes such state, whether it advances a version counter, and — for
// writes that go through an availability set — whether it stamps the
// per-link change journal.
func scanNetworkMethod(info *types.Info, body *ast.BlockStmt, recv types.Object) (res vbScan) {
	rooted := map[types.Object]bool{recv: true}

	isRooted := func(e ast.Expr) bool {
		for {
			switch x := unparen(e).(type) {
			case *ast.Ident:
				return rooted[info.ObjectOf(x)]
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				return false
			}
		}
	}
	// isReceiver reports whether e is the receiver identifier itself.
	isReceiver := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && info.ObjectOf(id) == recv
	}
	// markAlias records LHS identifiers of a rooted RHS as rooted.
	markAlias := func(lhs ast.Expr, rhs ast.Expr) {
		if !isRooted(rhs) {
			return
		}
		if id, ok := unparen(lhs).(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				rooted[obj] = true
			}
		}
	}
	// selName returns the trailing field name of a selector lvalue, "" for
	// other shapes. Used to recognise `.avail` containers and `.stamp` rows.
	selName := func(e ast.Expr) string {
		e = unparen(e)
		if ix, ok := e.(*ast.IndexExpr); ok {
			e = unparen(ix.X)
		}
		if sel, ok := e.(*ast.SelectorExpr); ok {
			return sel.Sel.Name
		}
		return ""
	}
	// recordWrite classifies a mutated lvalue: version-counter fields count
	// as bumps, journal fields as stamps, everything else rooted counts as a
	// state write.
	recordWrite := func(lhs ast.Expr) {
		lhs = unparen(lhs)
		if sel, ok := lhs.(*ast.SelectorExpr); ok && isReceiver(sel.X) && vbFields[sel.Sel.Name] {
			res.bumps = true
			if vbStampFields[sel.Sel.Name] {
				res.stamps = true
			}
			return
		}
		switch lhs.(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			if isRooted(lhs) {
				if vbStampFields[selName(lhs)] {
					res.stamps = true
					return
				}
				res.writes = true
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					markAlias(s.Lhs[i], s.Rhs[i])
				}
			}
			for _, lhs := range s.Lhs {
				recordWrite(lhs)
			}
		case *ast.IncDecStmt:
			recordWrite(s.X)
		case *ast.RangeStmt:
			if isRooted(s.X) {
				for _, v := range []ast.Expr{s.Key, s.Value} {
					if v != nil {
						markAlias(v, s.X)
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := unparen(s.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch {
			case isReceiver(sel.X):
				if vbBumps[sel.Sel.Name] {
					res.bumps = true
				}
				if vbStamps[sel.Sel.Name] {
					res.stamps = true
				}
				// Other receiver methods are delegation: the callee is
				// checked on its own.
			case isRooted(sel.X) && vbMutators[sel.Sel.Name]:
				res.writes = true
				if selName(sel.X) == "avail" {
					res.availWrites = true
				}
			}
		}
		return true
	})
	return res
}
