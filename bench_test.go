package repro

import (
	"testing"

	"repro/internal/bench"
)

// One testing.B entry per experiment in DESIGN.md's index. Each iteration
// regenerates the experiment's table at reduced (Quick) scale so the bench
// suite finishes in minutes; `go run ./cmd/wdmbench` produces the
// full-scale tables recorded in EXPERIMENTS.md.

func runExperiment(b *testing.B, id string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, err := bench.Run(id, bench.Options{Quick: true, Seeds: 2})
		if err != nil {
			b.Fatal(err)
		}
		if len(tb.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkF1AuxGraphConstruction regenerates Figure 1's residual→auxiliary
// construction inventory.
func BenchmarkF1AuxGraphConstruction(b *testing.B) { runExperiment(b, "F1") }

// BenchmarkE1ApproxRatio regenerates the Theorem 2 approximation-ratio
// measurement (approx vs exact optimum).
func BenchmarkE1ApproxRatio(b *testing.B) { runExperiment(b, "E1") }

// BenchmarkE2Scaling regenerates the Theorem 1 running-time scaling table.
func BenchmarkE2Scaling(b *testing.B) { runExperiment(b, "E2") }

// BenchmarkE3LoadRatio regenerates the Theorem 3 load-ratio measurement.
func BenchmarkE3LoadRatio(b *testing.B) { runExperiment(b, "E3") }

// BenchmarkE4Reconfig regenerates the §4 reconfiguration-count comparison.
func BenchmarkE4Reconfig(b *testing.B) { runExperiment(b, "E4") }

// BenchmarkE5Restoration regenerates the active-vs-passive restoration
// comparison.
func BenchmarkE5Restoration(b *testing.B) { runExperiment(b, "E5") }

// BenchmarkE6Refinement regenerates the Lemma 2 refinement measurement.
func BenchmarkE6Refinement(b *testing.B) { runExperiment(b, "E6") }

// BenchmarkE7Baseline regenerates the Suurballe-vs-two-step baseline table.
func BenchmarkE7Baseline(b *testing.B) { runExperiment(b, "E7") }

// BenchmarkE8WeightAblation regenerates the §4.1 exponential-base ablation.
func BenchmarkE8WeightAblation(b *testing.B) { runExperiment(b, "E8") }

// BenchmarkE9ILP regenerates the §3.1 ILP validation table.
func BenchmarkE9ILP(b *testing.B) { runExperiment(b, "E9") }

// BenchmarkE10Blocking regenerates the blocking-vs-load series.
func BenchmarkE10Blocking(b *testing.B) { runExperiment(b, "E10") }

// Micro-benchmarks of the public routing entry points on NSFNET.

func BenchmarkRouteApproxMinCostNSFNET(b *testing.B) {
	net := NSFNET(TopoConfig{W: 8})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := ApproxMinCost(net, i%14, (i+7)%14, nil); !ok {
			b.Fatal("routing failed")
		}
	}
}

func BenchmarkRouteMinLoadCostNSFNET(b *testing.B) {
	net := NSFNET(TopoConfig{W: 8})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := MinLoadCost(net, i%14, (i+7)%14, nil); !ok {
			b.Fatal("routing failed")
		}
	}
}

// BenchmarkE11Protection regenerates the edge- vs node-disjoint protection
// comparison (extension).
func BenchmarkE11Protection(b *testing.B) { runExperiment(b, "E11") }

// BenchmarkE12Provisioning regenerates the static-provisioning ablation
// (extension).
func BenchmarkE12Provisioning(b *testing.B) { runExperiment(b, "E12") }

// BenchmarkE13ConversionGain regenerates the wavelength-conversion gain
// comparison (extension).
func BenchmarkE13ConversionGain(b *testing.B) { runExperiment(b, "E13") }

// BenchmarkE14Alternate regenerates the adaptive vs fixed-alternate routing
// comparison (extension).
func BenchmarkE14Alternate(b *testing.B) { runExperiment(b, "E14") }

// BenchmarkE15SharedBackup regenerates the SBPP capacity-savings comparison
// (extension).
func BenchmarkE15SharedBackup(b *testing.B) { runExperiment(b, "E15") }

// BenchmarkE16SRLG regenerates the SRLG-aware protection comparison
// (extension).
func BenchmarkE16SRLG(b *testing.B) { runExperiment(b, "E16") }

// BenchmarkE17ProtectionLevel regenerates the k-protection tradeoff table
// (extension).
func BenchmarkE17ProtectionLevel(b *testing.B) { runExperiment(b, "E17") }

// BenchmarkE18TrafficSensitivity regenerates the traffic-model sensitivity
// table (extension).
func BenchmarkE18TrafficSensitivity(b *testing.B) { runExperiment(b, "E18") }

// BenchmarkE19ReconfigGain regenerates the reconfiguration-gain comparison
// (extension).
func BenchmarkE19ReconfigGain(b *testing.B) { runExperiment(b, "E19") }
