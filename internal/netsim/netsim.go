// Package netsim is an event-driven simulator for the paper's dynamic
// traffic model (§2): connection requests arrive as a Poisson stream, are
// routed one by one (established immediately or dropped), and depart after
// exponential holding times. It adds the two failure-handling disciplines of
// §1 — the *activate* approach (a backup semilightpath is reserved with the
// primary and switched in instantly on a link failure) and the *passive*
// approach (only the primary is established; restoration is attempted after
// the failure, and may fail for lack of resources) — plus the
// reconfiguration accounting that motivates §4: whenever the network load ρ
// crosses a threshold, a reconfiguration event reroutes the connections on
// the most loaded link.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/lightpath"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wdm"
	"repro/internal/workload"
)

// Algorithm selects the routing discipline for arrivals.
type Algorithm int

const (
	// MinCost is ApproxMinCost (§3.3) — cost only.
	MinCost Algorithm = iota
	// MinLoad is Find_Two_Paths_MinCog (§4.1) — load only.
	MinLoad
	// MinLoadCost is the two-phase §4.2 algorithm — load then cost.
	MinLoadCost
	// TwoStep is the naive shortest-then-remove baseline.
	TwoStep
)

func (a Algorithm) String() string {
	switch a {
	case MinCost:
		return "min-cost"
	case MinLoad:
		return "min-load"
	case MinLoadCost:
		return "min-load-cost"
	case TwoStep:
		return "two-step"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// routeWith dispatches to the simulator's reusable core router.
func (a Algorithm) routeWith(r *core.Router, net *wdm.Network, s, t int) (*core.Result, bool) {
	switch a {
	case MinCost:
		return r.ApproxMinCost(net, s, t)
	case MinLoad:
		return r.MinLoad(net, s, t)
	case MinLoadCost:
		return r.MinLoadCost(net, s, t)
	case TwoStep:
		return r.TwoStepMinCost(net, s, t)
	}
	panic("netsim: unknown algorithm")
}

// Restoration selects the failure-handling discipline.
type Restoration int

const (
	// Active reserves an edge-disjoint backup with every primary and
	// switches over instantly on failure.
	Active Restoration = iota
	// Passive establishes only the primary and re-routes after a failure if
	// resources permit.
	Passive
)

func (r Restoration) String() string {
	if r == Passive {
		return "passive"
	}
	return "active"
}

// Config parameterises a simulation run.
type Config struct {
	Algorithm   Algorithm
	Restoration Restoration
	Opts        *core.Options

	// RouteFunc, when non-nil, overrides Algorithm for arrivals — the hook
	// for custom disciplines such as fixed-alternate routing
	// (core.AlternateTable.Route) or node-disjoint protection. It receives
	// the simulator's private network clone.
	RouteFunc func(net *wdm.Network, s, t int) (*core.Result, bool)

	// FailureRate is the Poisson rate of single-link failure events
	// (0 disables failures).
	FailureRate float64
	// FailureLinks, when non-empty, makes failure events target these links
	// in round-robin order instead of uniformly random up links —
	// deterministic failure scenarios for tests and what-if studies.
	FailureLinks []int
	// RepairTime is how long a failed link stays down (default 10).
	RepairTime float64
	// Seed drives failure-injection randomness.
	Seed int64

	// ReconfigThreshold triggers a reconfiguration when the network load ρ
	// reaches it (0 disables reconfiguration accounting).
	ReconfigThreshold float64
	// ReconfigCooldown is the minimum time between reconfigurations
	// (default 1).
	ReconfigCooldown float64

	// WarmupRequests excludes the first K arrivals from the offered/
	// accepted/blocked counters and the cost/load streams (standard
	// transient-removal methodology); the requests are still routed and
	// occupy capacity.
	WarmupRequests int

	// Trace, when non-nil, receives a structured event stream (arrivals,
	// blocks, failures, switchovers, reconfigurations, …) for offline
	// analysis. See package trace.
	Trace trace.Recorder

	// Tracer, when non-nil, records a request-scoped obs trace for every
	// routed arrival (and reconfiguration reroute) into its flight recorder;
	// connection events in the Trace stream then carry the matching obs
	// request ID in their Req field, so the two JSONL outputs join on it.
	Tracer *obs.Tracer

	// Telemetry, when non-nil, collects windowed time-series over sim time:
	// per-window route-latency quantiles, blocking probability, reroute and
	// reconfiguration rates, and network-state probes (link load ρ,
	// first-fit fragmentation, active lightpaths) sampled at each window
	// seal. Telemetry observes every arrival, including warm-up — the
	// transient is exactly what a curve is for. One Telemetry per Sim.
	Telemetry *Telemetry

	// Reprotect, under Active restoration, re-establishes a fresh backup
	// after a switchover or a degraded backup, so connections do not stay
	// unprotected until departure (a variant the paper's §1 survey calls
	// out as reducing vulnerability to subsequent failures).
	Reprotect bool
}

// Metrics aggregates a run.
type Metrics struct {
	Offered  int
	Accepted int
	Blocked  int

	Cost     stats.Stream // Eq. 1 cost sum of accepted pairs
	PathLoad stats.Stream // per-request (U+1)/N load contribution
	Hops     stats.Stream // primary-path hop count

	// Failure accounting.
	FailureEvents  int
	AffectedConns  int
	Recovered      int
	RecoveryFailed int
	BackupLost     int
	// RecoveryWork counts links newly signalled during recovery (0 per
	// switchover for active restoration; new-path length for passive) — the
	// recovery-delay proxy of E5.
	RecoveryWork stats.Stream
	// Availability is the fraction of each finite-holding connection's
	// requested duration actually served (1.0 unless the connection was
	// dropped by an unrecovered failure).
	Availability stats.Stream

	// Re-protection accounting (Reprotect only).
	ReprotectOK     int
	ReprotectFailed int

	// Reconfiguration accounting.
	Reconfigs      int
	ReroutedConns  int
	MaxNetworkLoad float64
	// LoadIntegral is ∫ρ dt; MeanLoad = LoadIntegral / horizon.
	LoadIntegral float64
	Horizon      float64
}

// BlockingProbability returns Blocked/Offered.
func (m *Metrics) BlockingProbability() float64 {
	if m.Offered == 0 {
		return 0
	}
	return float64(m.Blocked) / float64(m.Offered)
}

// MeanLoad returns the time-averaged network load.
func (m *Metrics) MeanLoad() float64 {
	if m.Horizon == 0 {
		return 0
	}
	return m.LoadIntegral / m.Horizon
}

// conn is a live connection.
type conn struct {
	id      int
	s, d    int
	req     int64 // obs request ID that admitted it (-1 when untraced)
	primary *wdm.Semilightpath
	backup  *wdm.Semilightpath // nil under Passive or after a switchover
	arrived float64
	holding float64 // +Inf for permanent connections
}

type eventKind int

const (
	evArrival eventKind = iota
	evDeparture
	evFailure
	evRepair
)

type event struct {
	kind eventKind
	time float64
	seq  uint64           // FIFO tie-break for equal times
	req  workload.Request // evArrival
	conn int              // evDeparture
	link int              // evRepair
}

// eventQueue is a slice-backed binary min-heap ordered by (time, seq). Events
// are stored by value in a single reusable backing array, so steady-state
// push/pop allocates nothing — unlike the previous design, which appended
// every event to a grow-only log and heaped indices into it.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(e event) {
	//wdmlint:ignore hotalloc event-heap growth to peak size; amortizes to zero
	*q = append(*q, e)
	h := *q
	for i := len(h) - 1; i > 0; {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	*q = h[:n]
	h = h[:n]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	return top
}

// Sim is a single simulation instance. Create with New, drive with Run.
type Sim struct {
	net    *wdm.Network
	cfg    Config
	rng    *rand.Rand
	router *core.Router // reused across every arrival and reconfiguration

	q   eventQueue
	seq uint64 // next event sequence number

	conns        map[int]*conn
	down         []bool
	forced       [][]wdm.Wavelength // force-locked wavelengths per down link
	lastReconfig float64
	arrivals     int  // total arrivals processed (warm-up accounting)
	failIdx      int  // round-robin cursor into cfg.FailureLinks
	overTh       bool // ρ was ≥ threshold at the last check (crossing detector)
	lastT        float64
	traceErr     error // first error the trace recorder returned
	m            Metrics

	// Free lists: conn structs and semilightpath storage cycle between the
	// pools and the live-connection table, so the steady-state event loop
	// allocates nothing per arrival/departure.
	connPool []*conn
	slPool   []*wdm.Semilightpath
	ids      []int // scratch for the deterministic connection sweeps

	// defaultRoute is the Algorithm-backed routing closure used when the
	// config supplies no RouteFunc. Built once in New so the arrival hot
	// path never allocates a fresh closure per request.
	defaultRoute func(net *wdm.Network, a, b int) (*core.Result, bool)
}

// New returns a simulator over a private clone of the network.
func New(net *wdm.Network, cfg Config) *Sim {
	if cfg.RepairTime == 0 {
		cfg.RepairTime = 10
	}
	if cfg.ReconfigCooldown == 0 {
		cfg.ReconfigCooldown = 1
	}
	// The simulator copies every routing result into pooled storage right
	// after Establish, so the private router can safely hand out arena-backed
	// results that the next routing call overwrites.
	var ropts core.Options
	if cfg.Opts != nil {
		ropts = *cfg.Opts
	}
	ropts.ReuseResult = true
	router := core.NewRouter(&ropts)
	router.SetTracer(cfg.Tracer)
	s := &Sim{
		net:          net.Clone(),
		cfg:          cfg,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		router:       router,
		conns:        map[int]*conn{},
		down:         make([]bool, net.Links()),
		forced:       make([][]wdm.Wavelength, net.Links()),
		lastReconfig: math.Inf(-1),
	}
	s.defaultRoute = func(net *wdm.Network, a, b int) (*core.Result, bool) {
		return s.cfg.Algorithm.routeWith(s.router, net, a, b)
	}
	cfg.Telemetry.bind(s)
	return s
}

// copyPath copies p's hops into pooled sim-owned storage. Results handed out
// by the shared router alias its arena and are only valid until the next
// routing call; the copy pins them for the connection's lifetime.
func (s *Sim) copyPath(p *wdm.Semilightpath) *wdm.Semilightpath {
	if p == nil {
		return nil
	}
	var c *wdm.Semilightpath
	if n := len(s.slPool); n > 0 {
		c = s.slPool[n-1]
		s.slPool = s.slPool[:n-1]
	} else {
		//wdmlint:ignore hotalloc pool-miss constructor; steady state pops the free list
		c = &wdm.Semilightpath{}
	}
	c.Hops = append(c.Hops[:0], p.Hops...)
	return c
}

// putPath returns sim-owned path storage to the free list. Only call once the
// path's wavelengths are released and no bookkeeping references it.
func (s *Sim) putPath(p *wdm.Semilightpath) {
	if p != nil {
		//wdmlint:ignore hotalloc free-list growth; amortizes to zero once warm
		s.slPool = append(s.slPool, p)
	}
}

func (s *Sim) getConn() *conn {
	if n := len(s.connPool); n > 0 {
		c := s.connPool[n-1]
		s.connPool = s.connPool[:n-1]
		*c = conn{}
		return c
	}
	//wdmlint:ignore hotalloc pool-miss constructor; steady state pops the free list
	return &conn{}
}

func (s *Sim) putConn(c *conn) {
	//wdmlint:ignore hotalloc free-list growth; amortizes to zero once warm
	s.connPool = append(s.connPool, c)
}

// tracing reports whether the event stream is recorded — used to skip detail
// formatting when nobody is listening.
func (s *Sim) tracing() bool { return s.cfg.Trace != nil }

// Network exposes the simulator's network (for inspection in tests and
// examples; mutating it mid-run is undefined).
func (s *Sim) Network() *wdm.Network { return s.net }

func (s *Sim) push(e event) {
	e.seq = s.seq
	s.seq++
	s.q.push(e)
}

// emit records a trace event when tracing is enabled. req is the obs request
// ID the event correlates with (-1 for none). Trace failures never abort the
// simulation; the first one is kept and reported via TraceErr.
//
//wdm:coldpath event emission is a no-op unless a trace sink is attached; sinks are diagnostic-only
func (s *Sim) emit(kind trace.Kind, connID, link int, req int64, detail string) {
	if s.cfg.Trace == nil {
		return
	}
	err := s.cfg.Trace.Record(trace.Event{Time: s.lastT, Kind: kind, Conn: connID, Link: link, Req: int(req), Detail: detail})
	if err != nil && s.traceErr == nil {
		s.traceErr = err
	}
}

// TraceErr returns the first error the trace recorder reported, or nil. A
// non-nil result means the event stream on disk is incomplete even though
// the simulation itself finished normally.
func (s *Sim) TraceErr() error { return s.traceErr }

// Run processes the request stream to completion (all arrivals, departures,
// failures and repairs) and returns the metrics.
//
//wdm:hotpath
func (s *Sim) Run(reqs []workload.Request) *Metrics {
	horizon := 0.0
	for _, r := range reqs {
		s.push(event{kind: evArrival, time: r.Arrival, req: r})
		if d := r.Departure(); !math.IsInf(d, 1) && d > horizon {
			horizon = d
		}
		if r.Arrival > horizon {
			horizon = r.Arrival
		}
	}
	// Pre-schedule failure events over the horizon.
	if s.cfg.FailureRate > 0 && horizon > 0 {
		t := 0.0
		for {
			t += s.rng.ExpFloat64() / s.cfg.FailureRate
			if t >= horizon {
				break
			}
			s.push(event{kind: evFailure, time: t})
		}
	}

	for len(s.q) > 0 {
		e := s.q.pop()
		s.advanceClock(e.time)
		switch e.kind {
		case evArrival:
			s.handleArrival(e.req)
		case evDeparture:
			s.handleDeparture(e.conn)
		case evFailure:
			s.handleFailure()
		case evRepair:
			s.handleRepair(e.link)
		}
		s.maybeReconfigure(e.time)
	}
	s.m.Horizon = s.lastT
	s.cfg.Telemetry.finish()
	s.syncArrivalGauges()
	return &s.m
}

// advanceClock integrates ρ over the elapsed interval, seals completed
// telemetry windows, and refreshes the live progress gauges.
func (s *Sim) advanceClock(t float64) {
	// Seal windows that ended strictly before t, so the probe samples the
	// network as of the last event inside each window.
	s.cfg.Telemetry.advance(t)
	rho := s.net.NetworkLoad()
	if rho > s.m.MaxNetworkLoad {
		s.m.MaxNetworkLoad = rho
	}
	if t > s.lastT {
		s.m.LoadIntegral += rho * (t - s.lastT)
		s.lastT = t
	}
	instr.networkLoad.Set(rho)
	instr.liveConns.Set(float64(len(s.conns)))
}

// syncArrivalGauges publishes the running offered count and blocking
// probability so a /metrics scrape mid-run reports progress, not just
// end-of-run totals.
func (s *Sim) syncArrivalGauges() {
	instr.offered.Set(float64(s.m.Offered))
	instr.blockingProb.Set(s.m.BlockingProbability())
	instr.liveConns.Set(float64(len(s.conns)))
}

func (s *Sim) handleArrival(r workload.Request) {
	s.arrivals++
	// Keep the /metrics progress gauges in step with the run counters on
	// every exit path.
	defer s.syncArrivalGauges()
	measured := s.arrivals > s.cfg.WarmupRequests
	if measured {
		s.m.Offered++
	}
	// The request is routed before its arrival event is emitted, so the
	// arrival already carries the obs request ID; emission order (arrival,
	// then accept/block, at the same timestamp) is unchanged.
	c := s.getConn()
	c.id, c.s, c.d, c.req = r.ID, r.Src, r.Dst, -1
	switch s.cfg.Restoration {
	case Active:
		route := s.cfg.RouteFunc
		viaRouter := route == nil
		if route == nil {
			route = s.defaultRoute // built once in New; no per-arrival closure
		}
		rt := instr.routeTime.Start()
		tt := s.cfg.Telemetry.routeStart()
		res, ok := route(s.net, r.Src, r.Dst)
		instr.routeTime.Stop(rt)
		if viaRouter {
			c.req = s.router.LastTraceID()
		}
		if s.tracing() {
			//wdmlint:ignore hotalloc evaluated only when tracing is enabled (s.tracing() guard)
			s.emit(trace.Arrival, r.ID, -1, c.req, fmt.Sprintf("%d->%d", r.Src, r.Dst))
		}
		if !ok || core.Establish(s.net, res) != nil {
			if measured {
				s.m.Blocked++
			}
			instr.blocked.Inc()
			s.cfg.Telemetry.routeDone(tt, true)
			s.emit(trace.Block, r.ID, -1, c.req, "")
			s.putConn(c)
			return
		}
		s.cfg.Telemetry.routeDone(tt, false)
		c.primary, c.backup = s.copyPath(res.Primary), s.copyPath(res.Backup)
		if measured {
			s.m.Cost.Add(res.Cost)
			s.m.PathLoad.Add(res.PathLoad)
		}
		if s.tracing() {
			//wdmlint:ignore hotalloc evaluated only when tracing is enabled (s.tracing() guard)
			s.emit(trace.Accept, r.ID, -1, c.req, fmt.Sprintf("cost=%.4g", res.Cost))
		}
	case Passive:
		tc := s.cfg.Tracer.Start("passive-optimal", r.Src, r.Dst)
		c.req = tc.ReqID()
		rt := instr.routeTime.Start()
		tt := s.cfg.Telemetry.routeStart()
		p, cost, ok := lightpath.Optimal(s.net, r.Src, r.Dst, nil)
		instr.routeTime.Stop(rt)
		if s.tracing() {
			//wdmlint:ignore hotalloc evaluated only when tracing is enabled (s.tracing() guard)
			s.emit(trace.Arrival, r.ID, -1, c.req, fmt.Sprintf("%d->%d", r.Src, r.Dst))
		}
		if !ok || s.net.Reserve(p) != nil {
			if measured {
				s.m.Blocked++
			}
			instr.blocked.Inc()
			s.cfg.Telemetry.routeDone(tt, true)
			tc.Finish(obs.StatusBlocked)
			s.emit(trace.Block, r.ID, -1, c.req, "")
			s.putConn(c)
			return
		}
		s.cfg.Telemetry.routeDone(tt, false)
		c.primary = p
		if measured {
			s.m.Cost.Add(cost)
		}
		tc.Float("cost", cost)
		tc.Int("hops", int64(p.Len()))
		tc.Finish(obs.StatusOK)
		if s.tracing() {
			//wdmlint:ignore hotalloc evaluated only when tracing is enabled (s.tracing() guard)
			s.emit(trace.Accept, r.ID, -1, c.req, fmt.Sprintf("cost=%.4g", cost))
		}
	}
	instr.established.Inc()
	if measured {
		s.m.Accepted++
		s.m.Hops.Add(float64(c.primary.Len()))
	}
	c.arrived = r.Arrival
	c.holding = r.Holding
	s.conns[c.id] = c
	if d := r.Departure(); !math.IsInf(d, 1) {
		s.push(event{kind: evDeparture, time: d, conn: c.id})
	}
}

func (s *Sim) handleDeparture(id int) {
	c, ok := s.conns[id]
	if !ok {
		return // dropped earlier by an unrecovered failure
	}
	delete(s.conns, id)
	instr.teardowns.Inc()
	s.emit(trace.Depart, id, -1, c.req, "")
	s.m.Availability.Add(1)
	s.releasePath(c.primary)
	s.putPath(c.primary)
	if c.backup != nil {
		s.releasePath(c.backup)
		s.putPath(c.backup)
	}
	s.putConn(c)
}

// releasePath returns a path's wavelengths, except that hops on currently
// down links stay locked (transferred to the forced set) until repair.
func (s *Sim) releasePath(p *wdm.Semilightpath) {
	for _, h := range p.Hops {
		if s.down[h.Link] {
			//wdmlint:ignore hotalloc free-list growth; amortizes to zero once warm
			s.forced[h.Link] = append(s.forced[h.Link], h.Wavelength)
			continue
		}
		if err := s.net.Release(h.Link, h.Wavelength); err != nil {
			panic("netsim: inconsistent release: " + err.Error())
		}
	}
}

// handleFailure picks a random up link, takes it down, and restores the
// affected connections per the configured discipline.
//
//wdm:coldpath failures are rare events, amortized over many arrivals
func (s *Sim) handleFailure() {
	link := -1
	if n := len(s.cfg.FailureLinks); n > 0 {
		for tries := 0; tries < n; tries++ {
			cand := s.cfg.FailureLinks[s.failIdx%n]
			s.failIdx++
			if !s.down[cand] {
				link = cand
				break
			}
		}
		if link < 0 {
			return
		}
	} else {
		up := s.ids[:0]
		for id := 0; id < s.net.Links(); id++ {
			if !s.down[id] {
				up = append(up, id)
			}
		}
		s.ids = up
		if len(up) == 0 {
			return
		}
		link = up[s.rng.Intn(len(up))]
	}
	s.m.FailureEvents++
	instr.failures.Inc()
	s.emit(trace.Failure, -1, link, -1, "")
	s.down[link] = true
	// Quarantine the link: lock all still-available wavelengths.
	l := s.net.Link(link)
	for _, lam := range l.Avail().Slice() {
		if err := s.net.Use(link, lam); err != nil {
			panic("netsim: quarantine failed: " + err.Error())
		}
		s.forced[link] = append(s.forced[link], lam)
	}
	s.push(event{kind: evRepair, time: s.lastT + s.cfg.RepairTime, link: link})

	// Restore affected connections (deterministic order).
	ids := s.ids[:0]
	for id := range s.conns {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	s.ids = ids
	for _, id := range ids {
		c := s.conns[id]
		primaryHit := pathUses(c.primary, link)
		backupHit := c.backup != nil && pathUses(c.backup, link)
		switch {
		case primaryHit:
			s.m.AffectedConns++
			s.restore(c, link)
		case backupHit:
			// Backup degraded: release it; the connection keeps running
			// unprotected (or re-protected when configured).
			s.m.BackupLost++
			s.releasePath(c.backup)
			s.putPath(c.backup)
			c.backup = nil
			s.reprotect(c)
		}
	}
}

// reprotect tries to reserve a fresh backup, edge-disjoint from the current
// primary, for a connection that lost its protection.
func (s *Sim) reprotect(c *conn) {
	if !s.cfg.Reprotect || c.backup != nil || c.primary == nil {
		return
	}
	used := make(map[int]bool, c.primary.Len())
	for _, h := range c.primary.Hops {
		used[h.Link] = true
	}
	p, _, ok := lightpath.Optimal(s.net, c.s, c.d, &lightpath.Options{
		AllowedLinks: func(id int) bool { return !used[id] },
	})
	if !ok || s.net.Reserve(p) != nil {
		s.m.ReprotectFailed++
		return
	}
	c.backup = p
	s.m.ReprotectOK++
	s.emit(trace.Reprotect, c.id, -1, c.req, "")
}

// restore recovers a connection whose primary crossed the failed link.
func (s *Sim) restore(c *conn, failedLink int) {
	defer instr.restoreTime.Stop(instr.restoreTime.Start())
	s.releasePath(c.primary)
	s.putPath(c.primary)
	c.primary = nil
	if c.backup != nil {
		// Activate approach: instant switchover to the pre-reserved backup,
		// which is edge-disjoint from the failed primary. It may itself
		// cross a link downed by an earlier overlapping failure.
		if pathDown(c.backup, s.down) {
			s.releasePath(c.backup)
			s.putPath(c.backup)
			c.backup = nil
			s.dropConn(c)
			return
		}
		c.primary, c.backup = c.backup, nil
		s.m.Recovered++
		instr.restored.Inc()
		s.m.RecoveryWork.Add(0)
		s.emit(trace.Switchover, c.id, failedLink, c.req, "")
		s.reprotect(c)
		return
	}
	// Passive approach: compute and signal a fresh route now.
	p, _, ok := lightpath.Optimal(s.net, c.s, c.d, nil)
	if !ok || s.net.Reserve(p) != nil {
		s.dropConn(c)
		return
	}
	c.primary = p
	s.m.Recovered++
	instr.restored.Inc()
	s.cfg.Telemetry.rerouted()
	s.m.RecoveryWork.Add(float64(p.Len()))
	s.emit(trace.Reroute, c.id, failedLink, c.req, "passive-restore")
}

func (s *Sim) dropConn(c *conn) {
	s.m.RecoveryFailed++
	instr.dropped.Inc()
	delete(s.conns, c.id)
	if !math.IsInf(c.holding, 1) && c.holding > 0 {
		served := (s.lastT - c.arrived) / c.holding
		if served > 1 {
			served = 1
		}
		if served < 0 {
			served = 0
		}
		s.m.Availability.Add(served)
	}
	s.emit(trace.Drop, c.id, -1, c.req, "")
	s.putConn(c)
}

func (s *Sim) handleRepair(link int) {
	s.emit(trace.Repair, -1, link, -1, "")
	s.down[link] = false
	for _, lam := range s.forced[link] {
		if err := s.net.Release(link, lam); err != nil {
			panic("netsim: repair release failed: " + err.Error())
		}
	}
	s.forced[link] = s.forced[link][:0]
}

// maybeReconfigure counts and performs a reconfiguration when ρ crosses the
// threshold from below: the connections riding the most loaded link are
// rerouted with the load-minimising algorithm. This is the §4 accounting —
// load-aware routing keeps ρ below the threshold longer, so it crosses (and
// reconfigures) less often.
//
//wdm:coldpath reconfiguration is cooldown-gated and amortized over many arrivals
func (s *Sim) maybeReconfigure(t float64) {
	th := s.cfg.ReconfigThreshold
	if th <= 0 {
		return
	}
	rho := s.net.NetworkLoad()
	if rho < th {
		s.overTh = false
		return
	}
	if s.overTh {
		return // this excursion above the threshold was already handled
	}
	if t-s.lastReconfig < s.cfg.ReconfigCooldown {
		return // keep the crossing pending until the cooldown expires
	}
	s.overTh = true
	s.lastReconfig = t
	s.m.Reconfigs++
	instr.reconfigs.Inc()
	s.cfg.Telemetry.reconfigEvent()
	if s.tracing() {
		s.emit(trace.Reconfig, -1, -1, -1, fmt.Sprintf("rho=%.3f", rho))
	}
	// Most loaded link.
	worst, rho := -1, -1.0
	for id := 0; id < s.net.Links(); id++ {
		if s.down[id] {
			continue
		}
		if r := s.net.Link(id).Load(); r > rho {
			rho = r
			worst = id
		}
	}
	if worst < 0 {
		return
	}
	ids := s.ids[:0]
	for id, c := range s.conns {
		if pathUses(c.primary, worst) || (c.backup != nil && pathUses(c.backup, worst)) {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	s.ids = ids
	for _, id := range ids {
		c := s.conns[id]
		oldP, oldB := c.primary, c.backup
		s.releasePath(oldP)
		if oldB != nil {
			s.releasePath(oldB)
		}
		res, ok := s.router.MinLoad(s.net, c.s, c.d)
		if ok && core.Establish(s.net, res) == nil {
			c.primary, c.backup = s.copyPath(res.Primary), s.copyPath(res.Backup)
			c.req = s.router.LastTraceID() // the connection now rides this trace's pair
			s.m.ReroutedConns++
			s.cfg.Telemetry.rerouted()
			s.emit(trace.Reroute, c.id, worst, c.req, "reconfig")
			s.putPath(oldP)
			s.putPath(oldB)
			continue
		}
		// Reroute failed: put the old paths back (nothing else touched the
		// network since release, so this cannot fail unless a path crossed
		// a down link, whose hop stayed locked in the forced set).
		s.rereserve(oldP)
		if oldB != nil {
			s.rereserve(oldB)
		}
		c.primary, c.backup = oldP, oldB
	}
}

// rereserve undoes releasePath: hops on down links were kept in the forced
// set and must be reclaimed from it rather than re-used.
func (s *Sim) rereserve(p *wdm.Semilightpath) {
	for _, h := range p.Hops {
		if s.down[h.Link] {
			// The wavelength is still locked in the forced set; hand it
			// back to the connection by removing the forced bookkeeping.
			fl := s.forced[h.Link]
			for i, lam := range fl {
				if lam == h.Wavelength {
					s.forced[h.Link] = append(fl[:i], fl[i+1:]...)
					break
				}
			}
			continue
		}
		if err := s.net.Use(h.Link, h.Wavelength); err != nil {
			panic("netsim: rereserve failed: " + err.Error())
		}
	}
}

func pathUses(p *wdm.Semilightpath, link int) bool {
	for _, h := range p.Hops {
		if h.Link == link {
			return true
		}
	}
	return false
}

func pathDown(p *wdm.Semilightpath, down []bool) bool {
	for _, h := range p.Hops {
		if down[h.Link] {
			return true
		}
	}
	return false
}

// LiveConnections returns the number of currently established connections.
func (s *Sim) LiveConnections() int { return len(s.conns) }
