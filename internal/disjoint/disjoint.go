// Package disjoint finds a pair of edge-disjoint directed paths of minimum
// total weight — Suurballe's algorithm [21], which the paper's
// Find_Two_Paths procedure instantiates. Two interchangeable implementations
// are provided: Suurballe (Dijkstra with potentials, the paper's
// O(m log n) term) and Bhandari (Bellman–Ford on a residual graph with
// negated arcs), plus the naive TwoStep heuristic used as the E7 baseline.
package disjoint

import (
	"math"
	"sort"

	"repro/internal/graph"
)

// Pair is a pair of edge-disjoint paths from s to t, each a sequence of
// edge IDs of the input graph, plus their combined weight.
type Pair struct {
	Path1  []int
	Path2  []int
	Weight float64
}

// Suurballe returns a minimum-total-weight pair of edge-disjoint paths from
// s to t over the enabled edges of g, or ok=false if no such pair exists.
// All enabled edge weights must be non-negative. It is the one-shot wrapper
// around Workspace.Suurballe; hot paths should hold a Workspace and call it
// directly to avoid the per-call scratch allocations.
func Suurballe(g *graph.Graph, s, t int) (*Pair, bool) {
	var ws Workspace
	return ws.Suurballe(g, s, t)
}

// Bhandari computes the same optimum as Suurballe but runs Bellman–Ford on a
// residual graph whose P1 reversals carry negated original weights. It is
// kept as an independent oracle: property tests assert the two agree.
func Bhandari(g *graph.Graph, s, t int) (*Pair, bool) {
	if s == t {
		return nil, false
	}
	d1 := g.Dijkstra(s)
	if !d1.Reached(t) {
		return nil, false
	}
	p1 := d1.PathTo(t, g)

	m := g.M()
	h := graph.New(g.N())
	onP1 := make([]bool, m)
	for _, id := range p1 {
		onP1[id] = true
	}
	for id := 0; id < m; id++ {
		if g.Disabled(id) || onP1[id] {
			continue
		}
		e := g.Edge(id)
		h.AddEdgeAux(e.From, e.To, e.Weight, id)
	}
	for _, id := range p1 {
		e := g.Edge(id)
		h.AddEdgeAux(e.To, e.From, -e.Weight, ^id)
	}

	d2, ok := h.BellmanFord(s)
	if !ok || !d2.Reached(t) {
		return nil, false
	}
	q := d2.PathTo(t, h)

	return combine(g, s, t, p1, q, h)
}

// combine cancels interlacing edges between P1 and the second-pass path Q
// (edges of Q with Aux = ^origID are reversals of P1 edges) and decomposes
// the remaining edge multiset into two edge-disjoint s→t paths.
func combine(g *graph.Graph, s, t int, p1, q []int, h *graph.Graph) (*Pair, bool) {
	use := make(map[int]int) // original edge ID -> multiplicity (0 or 1)
	for _, id := range p1 {
		use[id]++
	}
	for _, hid := range q {
		aux := h.Edge(hid).Aux
		if aux < 0 {
			delete(use, ^aux) // reversal cancels the P1 edge
		} else {
			use[aux]++
		}
	}
	// Build adjacency over the surviving edges, in sorted edge-ID order so
	// the decomposition (and hence which path is reported first) is
	// deterministic.
	ids := make([]int, 0, len(use))
	for id, mult := range use {
		if mult <= 0 {
			continue
		}
		if mult > 1 {
			return nil, false // defensive: should not happen for simple paths
		}
		ids = append(ids, id)
	}
	sort.Ints(ids)
	adj := make(map[int][]int) // node -> outgoing original edge IDs
	total := 0.0
	edgeCount := len(ids)
	for _, id := range ids {
		e := g.Edge(id)
		adj[e.From] = append(adj[e.From], id)
		total += e.Weight
	}
	extract := func() []int {
		var path []int
		at := s
		for at != t {
			out := adj[at]
			if len(out) == 0 {
				return nil
			}
			id := out[len(out)-1]
			adj[at] = out[:len(out)-1]
			path = append(path, id)
			at = g.Edge(id).To
			if len(path) > edgeCount {
				return nil // cycle guard
			}
		}
		return path
	}
	path1 := extract()
	path2 := extract()
	if path1 == nil || path2 == nil {
		return nil, false
	}
	return &Pair{Path1: path1, Path2: path2, Weight: total}, true
}

// TwoStep is the naive baseline: take a shortest path, delete its edges, take
// another shortest path. It can fail on "trap" topologies where an optimal
// pair exists but the unconstrained shortest path blocks both, and it is
// never cheaper than Suurballe when it succeeds.
func TwoStep(g *graph.Graph, s, t int) (*Pair, bool) {
	if s == t {
		return nil, false
	}
	d1 := g.Dijkstra(s)
	if !d1.Reached(t) {
		return nil, false
	}
	p1 := d1.PathTo(t, g)
	for _, id := range p1 {
		g.Disable(id)
	}
	d2 := g.Dijkstra(s)
	var p2 []int
	if d2.Reached(t) {
		p2 = d2.PathTo(t, g)
	}
	for _, id := range p1 {
		g.Enable(id)
	}
	if p2 == nil {
		return nil, false
	}
	return &Pair{Path1: p1, Path2: p2, Weight: g.PathWeight(p1) + g.PathWeight(p2)}, true
}

// BruteForce finds the exact minimum-weight edge-disjoint pair by enumerating
// simple paths — exponential, for tests and tiny exact baselines only.
func BruteForce(g *graph.Graph, s, t int) (*Pair, bool) {
	if s == t {
		return nil, false
	}
	best := math.Inf(1)
	var bestPair *Pair
	g.SimplePaths(s, t, 0, func(pa []int) bool {
		p1 := append([]int(nil), pa...)
		w1 := g.PathWeight(p1)
		if w1 >= best {
			return true
		}
		for _, id := range p1 {
			g.Disable(id)
		}
		g.SimplePaths(s, t, 0, func(pb []int) bool {
			w2 := g.PathWeight(pb)
			if w1+w2 < best {
				best = w1 + w2
				bestPair = &Pair{
					Path1:  p1,
					Path2:  append([]int(nil), pb...),
					Weight: best,
				}
			}
			return true
		})
		for _, id := range p1 {
			g.Enable(id)
		}
		return true
	})
	return bestPair, bestPair != nil
}
