// Package lint is a self-contained static-analysis framework for the
// repository's domain invariants. The routing engine rests on conventions the
// Go compiler cannot see — every wdm.Network mutation must bump a version
// counter or the skeleton cache serves stale routes, workspaces must not be
// copied, routing output must be deterministic for the differential harness —
// and this package makes them machine-checked.
//
// The framework is deliberately stdlib-only: packages are enumerated with
// `go list -json`, parsed with go/parser and typechecked with go/types;
// dependencies are imported from the build cache's export data (no
// golang.org/x/tools). Analyzers implement the Analyzer interface and report
// Diagnostics through a Pass; findings can be silenced case by case with a
//
//	//wdmlint:ignore <rule> <reason>
//
// directive on the offending line or on a comment line directly above it.
// The reason is mandatory: a suppression without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named rule. Exactly one of Run and RunGlobal must be set:
// Run sees one package at a time; RunGlobal sees the whole analyzed package
// set at once — the flow-aware analyzers that need a program-wide call graph
// use it.
type Analyzer struct {
	// Name identifies the rule in output and in ignore directives.
	Name string
	// Doc is a one-line description shown by `wdmlint -list`.
	Doc string
	// Run inspects one package and reports findings on the pass.
	Run func(*Pass)
	// RunGlobal inspects every analyzed package in one pass, with a cache
	// shared across analyzers for expensive program-wide structures (the
	// call graph is built once per Run invocation, not once per rule).
	RunGlobal func(*GlobalPass)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Rule     string         `json:"rule"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
	Package  string         `json:"package"`
	Suppress bool           `json:"-"` // set by the runner when an ignore directive covers it
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Rule, d.Message)
}

// Pass carries one typechecked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *types.Package
	Info     *types.Info
	Fset     *token.FileSet
	Files    []*ast.File

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Rule:    p.Analyzer.Name,
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
		Package: p.Pkg.Path(),
	})
}

// TypeOf returns the static type of e, or nil when untyped.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes (uses or defs).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Info.ObjectOf(id) }

// Cache memoizes program-wide structures (the call graph, fact tables)
// across the analyzers of one Run invocation. It is keyed by string so the
// framework does not need to know the concrete types the rule packages
// build on top of it.
type Cache struct {
	m map[string]any
}

// Get returns the cached value under key, building and storing it on first
// use. Run invocations are single-goroutine, so no locking is needed.
func (c *Cache) Get(key string, build func() any) any {
	if v, ok := c.m[key]; ok {
		return v
	}
	v := build()
	c.m[key] = v
	return v
}

// GlobalPass carries the whole analyzed package set through one RunGlobal
// analyzer.
type GlobalPass struct {
	Analyzer *Analyzer
	Pkgs     []*Package
	Cache    *Cache

	diags *[]Diagnostic
}

// Reportf records a finding at pos, attributed to pkg (the package whose
// source contains pos — attribution is what routes suppression directives).
func (gp *GlobalPass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	*gp.diags = append(*gp.diags, Diagnostic{
		Rule:    gp.Analyzer.Name,
		Pos:     pkg.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
		Package: pkg.Types.Path(),
	})
}

// PkgPathIs reports whether pkg's import path is suffix, or ends in
// "/"+suffix — the path-suffix matching every analyzer uses so that fixture
// packages under testdata exercise the same code paths as the real tree.
func PkgPathIs(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// NamedType reports whether t (or the type t points to) is the named type
// pkgSuffix.name, resolving through aliases but not through further
// indirection.
func NamedType(t types.Type, pkgSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && PkgPathIs(obj.Pkg(), pkgSuffix)
}

// WalkStack walks every node of f in source order, calling fn with the node
// and the stack of its ancestors (outermost first, node not included). It is
// the stdlib-only stand-in for x/tools' inspector.WithStack.
func WalkStack(f *ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// Run applies every analyzer to every package and returns the surviving
// findings sorted by position, with suppression directives already applied.
// Malformed directives (missing rule or reason) are reported under the
// "wdmlint" pseudo-rule.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	cache := &Cache{m: map[string]any{}}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				diags:    &diags,
			}
			a.Run(pass)
		}
		diags = append(diags, malformedDirectives(pkg)...)
	}
	for _, a := range analyzers {
		if a.RunGlobal == nil {
			continue
		}
		a.RunGlobal(&GlobalPass{Analyzer: a, Pkgs: pkgs, Cache: cache, diags: &diags})
	}
	diags = applySuppressions(pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Rule < diags[j].Rule
	})
	out := diags[:0]
	for _, d := range diags {
		if !d.Suppress {
			out = append(out, d)
		}
	}
	return out
}
