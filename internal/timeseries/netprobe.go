package timeseries

import (
	"repro/internal/bitset"
	"repro/internal/wdm"
)

// LinkState is one link's utilization at probe time.
type LinkState struct {
	ID   int `json:"id"`
	From int `json:"from"`
	To   int `json:"to"`
	// N and Used are the installed and in-use wavelength counts; Load is
	// Used/N, the per-link ρ(e) of Eq. 2.
	N    int     `json:"n"`
	Used int     `json:"used"`
	Load float64 `json:"load"`
	// Frag is the first-fit fragmentation of the availability set
	// Λ_avail(e): 1 − longest contiguous free run / free count. 0 means the
	// free wavelengths form one block (first-fit finds them immediately and
	// wide-channel requests fit); values near 1 mean the free capacity is
	// scattered into single-wavelength islands.
	Frag float64 `json:"frag"`
}

// NetState is a point-in-time utilization snapshot of the whole network —
// the payload behind the /debug/net endpoint, sampled once per telemetry
// window so concurrent readers never touch the live (unsynchronised)
// wdm.Network.
type NetState struct {
	Time  float64 `json:"t"`
	Nodes int     `json:"nodes"`
	W     int     `json:"w"`
	// ActiveConns is the number of live connections (as reported by the
	// prober; -1 when unknown).
	ActiveConns int `json:"active_conns"`
	// MeanLoad and MaxLoad aggregate ρ(e) over links that carry
	// wavelengths; MaxLoad is the network load ρ of Eq. 2.
	MeanLoad float64 `json:"mean_load"`
	MaxLoad  float64 `json:"max_load"`
	// MeanFrag averages per-link first-fit fragmentation.
	MeanFrag float64 `json:"mean_frag"`
	// TotalAvail counts free (link, wavelength) pairs network-wide.
	TotalAvail int         `json:"total_avail"`
	Links      []LinkState `json:"links"`
	// Contention, when the prober supplies it, is the top-K most contended
	// links: the ones whose busy channels most often made an optimistic
	// admission lose its commit-time race. Sorted by conflict count,
	// descending; absent for probers that do not track commit conflicts
	// (the batch simulator).
	Contention []LinkContention `json:"contention,omitempty"`
}

// LinkContention is one entry of NetState.Contention: a link plus the
// cumulative number of commit-time reservation conflicts it caused.
type LinkContention struct {
	Link      int     `json:"link"`
	From      int     `json:"from"`
	To        int     `json:"to"`
	Conflicts int64   `json:"conflicts"`
	Load      float64 `json:"load"`
}

// Fragmentation returns the first-fit fragmentation of an availability set:
// 1 − longest contiguous free run / free count, and 0 for an empty or
// perfectly contiguous set.
func Fragmentation(avail *bitset.Set) float64 {
	free := avail.Count()
	if free == 0 {
		return 0
	}
	return 1 - float64(avail.LongestRun())/float64(free)
}

// ProbeNetwork captures the utilization state of net at time t. The caller
// must hold whatever synchronisation protects net (the simulator probes
// from its own goroutine at window seals); the returned NetState is
// immutable and safe to publish to concurrent readers.
func ProbeNetwork(net *wdm.Network, t float64, activeConns int) *NetState {
	ns := &NetState{
		Time:        t,
		Nodes:       net.Nodes(),
		W:           net.W(),
		ActiveConns: activeConns,
		Links:       make([]LinkState, net.Links()),
	}
	carrying := 0
	for id := 0; id < net.Links(); id++ {
		l := net.Link(id)
		ls := LinkState{ID: id, From: l.From, To: l.To, N: l.N(), Used: l.U()}
		avail := l.Avail()
		ns.TotalAvail += avail.Count()
		if ls.N > 0 {
			ls.Load = float64(ls.Used) / float64(ls.N)
			ls.Frag = Fragmentation(avail)
			carrying++
			ns.MeanLoad += ls.Load
			ns.MeanFrag += ls.Frag
			if ls.Load > ns.MaxLoad {
				ns.MaxLoad = ls.Load
			}
		}
		ns.Links[id] = ls
	}
	if carrying > 0 {
		ns.MeanLoad /= float64(carrying)
		ns.MeanFrag /= float64(carrying)
	}
	return ns
}
