//go:build !race

// Allocation-regression tests, excluded from -race runs (the detector's
// instrumentation breaks testing.AllocsPerOp accounting).
package netsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/topo"
	"repro/internal/workload"
)

// TestNilTelemetryAddsNoAllocs pins the collector-off contract on the
// simulator's routing hot path, matching internal/core's tracer bar: with
// Config.Telemetry unset, every telemetry hook the arrival path runs —
// routeStart, routeDone, rerouted, reconfigEvent, advance — must cost only
// nil checks, zero allocations and zero clock reads.
func TestNilTelemetryAddsNoAllocs(t *testing.T) {
	var tel *Telemetry
	if n := testing.AllocsPerRun(200, func() {
		t0 := tel.routeStart()
		tel.routeDone(t0, false)
		tel.routeDone(t0, true)
		tel.rerouted()
		tel.reconfigEvent()
		tel.advance(1e9)
		tel.finish()
	}); n != 0 {
		t.Fatalf("nil telemetry hooks allocate %v per op, want 0", n)
	}
}

// simLoopAllocBudget is the whole-run allocation budget for the headline
// NSFNET dynamic scenario (200 arrivals, candidate tier on): network clone +
// shared-skeleton build + event/pool warm-up plus the residual per-arrival
// cost. Measured ~1.8k; the margin absorbs runtime and map-layout noise
// without letting a leaked per-arrival allocation (≥ 200/run) slip through.
const simLoopAllocBudget = 2600

// TestSimLoopAllocBudget pins the simulator's steady-state allocation
// behavior end to end: pooled conn/path storage, the value-heap event queue,
// arena-backed routing results, and the incremental-reweight path together
// must keep a full 200-arrival run under the budget.
func TestSimLoopAllocBudget(t *testing.T) {
	reqs := workload.Poisson(workload.PoissonConfig{
		Nodes: 14, ArrivalRate: 10, MeanHolding: 2, Count: 200, Seed: 7,
	})
	net := topo.NSFNET(topo.Config{W: 8})
	tab := core.NewCandidateTable(net, 4)
	run := func() {
		sim := New(net, Config{
			Algorithm: MinCost,
			Opts:      &core.Options{CandidateTable: tab},
		})
		sim.Run(reqs)
	}
	run() // warm shared caches outside the measured window
	if n := testing.AllocsPerRun(3, run); n > simLoopAllocBudget {
		t.Fatalf("dynamic sim run allocates %.0f, budget %d", n, simLoopAllocBudget)
	}
}
