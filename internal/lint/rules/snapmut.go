package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/facts"
)

// SnapMut guards the serve daemon's snapshot-isolation contract: a
// wdm.Network obtained from CloneSince or from a published serve snapshot is
// frozen — readers route on it lock-free precisely because nobody writes it.
// A single mutating call on a snapshot corrupts every concurrent reader of
// that epoch, and the race detector only catches it if two goroutines collide
// during the test run. This rule catches it statically.
//
// Mutating methods are classified the same way versionbump classifies them
// (rooted writes, version bumps, availability surgery) and the property is
// propagated backward over the call graph: a function that passes a network
// to a mutator is itself a mutator of that parameter. Snapshot values are
// tracked intra-procedurally from their three sources — CloneSince results,
// the serve snapshot's net field, and Engine.Snapshot — through local
// aliasing, and every call that feeds one into a mutator is a finding. The
// committer never trips the rule because it operates on the store's private
// working copy, which is never obtained from a snapshot source.
var SnapMut = &lint.Analyzer{
	Name:      "snapmut",
	Doc:       "wdm.Network values from CloneSince or serve snapshots are frozen; mutating methods may only run on the committer's working copy",
	RunGlobal: runSnapMut,
}

// smFact is a per-function mutation fact: the set of parameter indices
// (0 = receiver, 1..n = declared parameters) through which the function
// transitively mutates a wdm.Network, each mapped to the name of the
// ultimate mutating method reached ("Network.Use").
type smFact map[int]string

func runSnapMut(gp *lint.GlobalPass) {
	g := callgraph.For(gp.Cache, gp.Pkgs)

	// Seed: every wdm.Network method whose body writes rooted state, bumps a
	// version counter, or mutates availability sets mutates its receiver.
	seed := map[*callgraph.Node]smFact{}
	for _, n := range g.Order {
		if n.Decl.Recv == nil || n.Decl.Body == nil || len(n.Decl.Recv.List[0].Names) == 0 {
			continue
		}
		recv := n.Decl.Recv.List[0]
		if !lint.NamedType(n.Pkg.Info.TypeOf(recv.Type), vbPkg, vbType) {
			continue
		}
		recvObj := n.Pkg.Info.ObjectOf(recv.Names[0])
		if recvObj == nil {
			continue
		}
		res := scanNetworkMethod(n.Pkg.Info, n.Decl.Body, recvObj)
		if res.writes || res.bumps || res.availWrites {
			seed[n] = smFact{0: smLabel(n)}
		}
	}

	// Propagate backward: a caller that feeds one of its own parameters (or
	// receiver) into a mutated parameter of a callee mutates that parameter.
	paramIdx := map[*callgraph.Node]map[types.Object]int{}
	mut := facts.Propagate(g, seed, facts.Backward,
		func(dst *callgraph.Node, old smFact, had bool, in smFact, e *callgraph.Edge) (smFact, bool) {
			params := smParams(dst, paramIdx)
			changed := false
			for j, witness := range in {
				arg := smArgAt(e, j)
				if arg == nil {
					continue
				}
				id, ok := unparen(arg).(*ast.Ident)
				if !ok {
					continue
				}
				idx, ok := params[e.Caller.Pkg.Info.ObjectOf(id)]
				if !ok {
					continue
				}
				if _, dup := old[idx]; dup {
					continue
				}
				if old == nil {
					old = smFact{}
				}
				old[idx] = witness
				changed = true
			}
			return old, changed
		})

	// Flag: in every function, track snapshot-tainted values through local
	// aliasing and report each call edge that feeds one into a mutated
	// parameter.
	for _, n := range g.Order {
		if n.Decl.Body == nil {
			continue
		}
		tainted := smCollectTaint(n.Pkg.Info, n.Decl.Body)
		type siteParam struct {
			pos token.Pos
			j   int
		}
		reported := map[siteParam]bool{}
		for _, e := range n.Out {
			fact := mut[e.Callee]
			if fact == nil {
				continue
			}
			for j, witness := range fact {
				arg := smArgAt(e, j)
				if arg == nil || !smTainted(n.Pkg.Info, tainted, arg) {
					continue
				}
				key := siteParam{e.Site.Pos(), j}
				if reported[key] {
					continue
				}
				reported[key] = true
				label := smLabel(e.Callee)
				switch {
				case j == 0 && witness == label:
					gp.Reportf(n.Pkg, arg.Pos(),
						"calling mutating method %s on a snapshot network; snapshots from CloneSince are frozen — only the committer's working copy may change",
						label)
				case j == 0:
					gp.Reportf(n.Pkg, arg.Pos(),
						"calling %s on a snapshot network; it mutates the network via %s, and snapshots from CloneSince are frozen",
						label, witness)
				default:
					gp.Reportf(n.Pkg, arg.Pos(),
						"passing a snapshot network to %s, which mutates it via %s; snapshots from CloneSince are frozen",
						label, witness)
				}
			}
		}
	}
}

// smLabel names a node for diagnostics: Recv.Method for methods, pkg.Func
// for functions.
func smLabel(n *callgraph.Node) string {
	sig := n.Func.Type().(*types.Signature)
	if r := sig.Recv(); r != nil {
		t := r.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + n.Func.Name()
		}
	}
	return n.Func.Pkg().Name() + "." + n.Func.Name()
}

// smParams maps a node's receiver and parameter objects to fact indices
// (receiver 0, parameters 1..n), memoized in cache.
func smParams(n *callgraph.Node, cache map[*callgraph.Node]map[types.Object]int) map[types.Object]int {
	if m, ok := cache[n]; ok {
		return m
	}
	m := map[types.Object]int{}
	sig := n.Func.Type().(*types.Signature)
	if r := sig.Recv(); r != nil {
		m[r] = 0
	}
	for i := 0; i < sig.Params().Len(); i++ {
		m[sig.Params().At(i)] = i + 1
	}
	cache[n] = m
	return m
}

// smArgAt returns the caller-side expression that flows into callee
// parameter index j (0 = receiver) at edge e, or nil when the site cannot
// name it (bound method value: the receiver was captured elsewhere).
func smArgAt(e *callgraph.Edge, j int) ast.Expr {
	site := e.Site
	sig := e.Callee.Func.Type().(*types.Signature)
	if sig.Recv() != nil {
		if sel, ok := unparen(site.Fun).(*ast.SelectorExpr); ok {
			if s, ok := e.Caller.Pkg.Info.Selections[sel]; ok {
				switch s.Kind() {
				case types.MethodVal:
					if j == 0 {
						return sel.X
					}
					if j-1 < len(site.Args) {
						return site.Args[j-1]
					}
					return nil
				case types.MethodExpr:
					// T.M(recv, args...): the receiver is the first argument.
					if j < len(site.Args) {
						return site.Args[j]
					}
					return nil
				}
			}
		}
		// Call through a bound method value: the receiver is not at the site.
		if j == 0 {
			return nil
		}
	}
	if j >= 1 && j-1 < len(site.Args) {
		return site.Args[j-1]
	}
	return nil
}

// smCollectTaint computes the set of local objects in body that alias a
// snapshot network, to a fixed point over the body's assignments. Sources:
// CloneSince results, the net field of serve's snapshot struct, and the
// network result of serve's Engine.Snapshot.
func smCollectTaint(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	taintLHS := func(lhs ast.Expr) bool {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return false
		}
		obj := info.ObjectOf(id)
		if obj == nil || tainted[obj] {
			return false
		}
		tainted[obj] = true
		return true
	}
	scan := func() bool {
		changed := false
		ast.Inspect(body, func(node ast.Node) bool {
			switch x := node.(type) {
			case *ast.AssignStmt:
				if len(x.Rhs) == 1 && len(x.Lhs) > 1 {
					// Tuple assignment from a multi-result call.
					if call, ok := unparen(x.Rhs[0]).(*ast.CallExpr); ok {
						for _, i := range smTaintedResults(info, call) {
							if i < len(x.Lhs) && taintLHS(x.Lhs[i]) {
								changed = true
							}
						}
					}
					return true
				}
				for i, rhs := range x.Rhs {
					if i < len(x.Lhs) && smTainted(info, tainted, rhs) && taintLHS(x.Lhs[i]) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				if len(x.Values) == 1 && len(x.Names) > 1 {
					if call, ok := unparen(x.Values[0]).(*ast.CallExpr); ok {
						for _, i := range smTaintedResults(info, call) {
							if i < len(x.Names) && taintLHS(x.Names[i]) {
								changed = true
							}
						}
					}
					return true
				}
				for i, v := range x.Values {
					if i < len(x.Names) && smTainted(info, tainted, v) && taintLHS(x.Names[i]) {
						changed = true
					}
				}
			}
			return true
		})
		return changed
	}
	for scan() {
	}
	return tainted
}

// smTainted reports whether e evaluates to a snapshot network: a tainted
// local, a taint source expression, or a pointer/indirection of one.
func smTainted(info *types.Info, tainted map[types.Object]bool, e ast.Expr) bool {
	e = unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(x)
		return obj != nil && tainted[obj]
	case *ast.SelectorExpr:
		return smSnapshotField(info, x)
	case *ast.CallExpr:
		for _, i := range smTaintedResults(info, x) {
			if i == 0 {
				return true
			}
		}
		return false
	case *ast.UnaryExpr:
		return x.Op == token.AND && smTainted(info, tainted, x.X)
	case *ast.StarExpr:
		return smTainted(info, tainted, x.X)
	}
	return false
}

// smSnapshotField reports whether sel reads the frozen network out of a
// published serve snapshot (snapshot.net).
func smSnapshotField(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	return s.Obj().Name() == "net" &&
		lint.NamedType(s.Recv(), "serve", "snapshot") &&
		lint.NamedType(s.Obj().Type(), vbPkg, vbType)
}

// smTaintedResults returns the result indices of call that yield a snapshot
// network: CloneSince on a wdm.Network (result 0) and Snapshot on a serve
// Engine (result 1).
func smTaintedResults(info *types.Info, call *ast.CallExpr) []int {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil
	}
	m := s.Obj()
	switch {
	case m.Name() == "CloneSince" && lint.NamedType(s.Recv(), vbPkg, vbType):
		return []int{0}
	case m.Name() == "Snapshot" && lint.NamedType(s.Recv(), "serve", "Engine"):
		return []int{1}
	}
	return nil
}
