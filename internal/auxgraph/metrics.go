package auxgraph

import "repro/internal/metrics"

// instruments holds the package's metric hooks. All fields are nil until
// EnableMetrics is called, and nil instruments are no-ops, so the layer is
// default-off.
type instruments struct {
	builds    *metrics.Counter
	buildTime *metrics.Timer
	vertices  *metrics.Histogram
	edges     *metrics.Histogram
}

var instr instruments

// EnableMetrics registers the package's instruments on r and routes all
// subsequent Build calls through them. A nil registry disables them again.
func EnableMetrics(r *metrics.Registry) {
	instr = instruments{
		builds:    r.Counter("auxgraph_builds_total", "auxiliary graphs constructed"),
		buildTime: r.Timer("auxgraph_build_seconds", "auxiliary graph construction time"),
		vertices:  r.Histogram("auxgraph_vertices", "vertex count per auxiliary graph", metrics.SizeBuckets()),
		edges:     r.Histogram("auxgraph_edges", "edge count per auxiliary graph", metrics.SizeBuckets()),
	}
}
