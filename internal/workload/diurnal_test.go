package workload

import (
	"math"
	"reflect"
	"testing"
)

func diurnalCfg(count int, seed int64) DiurnalConfig {
	return DiurnalConfig{
		MatrixConfig: MatrixConfig{
			Matrix: NewUniformMatrix(10), ArrivalRate: 10, MeanHolding: 1,
			Count: count, Seed: seed,
		},
		Period: 100, Amp: 0.8,
	}
}

func TestDiurnalPoissonBasics(t *testing.T) {
	reqs := DiurnalPoisson(diurnalCfg(2000, 4))
	if len(reqs) != 2000 {
		t.Fatalf("generated %d requests, want 2000", len(reqs))
	}
	last := 0.0
	for i, r := range reqs {
		if r.ID != i {
			t.Fatalf("request %d has ID %d", i, r.ID)
		}
		if r.Arrival < last {
			t.Fatal("arrivals not sorted")
		}
		last = r.Arrival
		if r.Src == r.Dst || r.Src < 0 || r.Src >= 10 || r.Dst < 0 || r.Dst >= 10 {
			t.Fatalf("bad endpoints %d->%d", r.Src, r.Dst)
		}
		if r.Holding <= 0 {
			t.Fatalf("non-positive holding %g", r.Holding)
		}
	}
}

func TestDiurnalPoissonDeterministic(t *testing.T) {
	a := DiurnalPoisson(diurnalCfg(500, 7))
	b := DiurnalPoisson(diurnalCfg(500, 7))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different streams")
	}
	c := DiurnalPoisson(diurnalCfg(500, 8))
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical streams")
	}
}

// TestDiurnalPoissonModulates verifies the thinning actually shapes the rate:
// arrivals during high-rate phases (sin > 0) must substantially outnumber
// those in low-rate phases.
func TestDiurnalPoissonModulates(t *testing.T) {
	cfg := diurnalCfg(20000, 11)
	reqs := DiurnalPoisson(cfg)
	var peak, trough int
	for _, r := range reqs {
		if math.Sin(2*math.Pi*r.Arrival/cfg.Period) > 0 {
			peak++
		} else {
			trough++
		}
	}
	// With Amp 0.8 the half-cycle rate means are 1±0.51 of base, so the
	// peak share should approach 75%; 60% is a loose, seed-stable floor.
	if float64(peak) < 0.6*float64(len(reqs)) {
		t.Fatalf("peak-phase arrivals %d of %d — rate not modulated", peak, len(reqs))
	}
	if trough == 0 {
		t.Fatal("no trough-phase arrivals at Amp 0.8")
	}
}

func TestDiurnalPoissonValidation(t *testing.T) {
	for name, mutate := range map[string]func(*DiurnalConfig){
		"zero period": func(c *DiurnalConfig) { c.Period = 0 },
		"neg amp":     func(c *DiurnalConfig) { c.Amp = -0.1 },
		"amp one":     func(c *DiurnalConfig) { c.Amp = 1 },
		"nil matrix":  func(c *DiurnalConfig) { c.Matrix = nil },
	} {
		cfg := diurnalCfg(10, 1)
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: DiurnalPoisson did not panic", name)
				}
			}()
			DiurnalPoisson(cfg)
		}()
	}
}
