package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint"
)

// MapDet guards reproducibility: the differential harness replays an
// operation stream against two router arms and requires bit-exact agreement,
// so everything that feeds a returned path or cost in the deterministic
// packages must be order-stable. Go randomises map iteration order per run;
// a bare `range m` that influences output makes failures unreproducible and
// the fresh/warm comparison flaky. The accepted shape is the sorted-key
// idiom: collect keys (or values) into a slice inside the loop and sort it
// before use.
var MapDet = &lint.Analyzer{
	Name: "mapdet",
	Doc:  "map iteration in deterministic packages (auxgraph, disjoint, core, check) must use the sorted-key idiom",
	Run:  runMapDet,
}

// mdPackages must produce identical output for identical input.
var mdPackages = []string{"auxgraph", "disjoint", "core", "check", "check/harness"}

func runMapDet(p *lint.Pass) {
	det := false
	for _, name := range mdPackages {
		if lint.PkgPathIs(p.Pkg, name) {
			det = true
			break
		}
	}
	if !det {
		return
	}
	for _, f := range p.Files {
		lint.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			t := p.TypeOf(rng.X)
			if t == nil {
				return
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return
			}
			if sortedAfter(p, enclosingFuncBody(stack), rng.End()) {
				return // sorted-key idiom: the collected keys are ordered before use
			}
			p.Reportf(rng.Pos(),
				"map iteration order is nondeterministic; collect keys into a slice and sort before use, or justify with a wdmlint:ignore directive")
		})
	}
}

// enclosingFuncBody returns the body of the innermost function in stack, or
// nil at file scope.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// sortedAfter reports whether body contains a call into package sort or
// slices positioned after pos — the signature of the sorted-key idiom.
func sortedAfter(p *lint.Pass, body *ast.BlockStmt, pos token.Pos) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := p.ObjectOf(id).(*types.PkgName); ok {
			switch pn.Imported().Path() {
			case "sort", "slices":
				found = true
				return false
			}
		}
		return true
	})
	return found
}
