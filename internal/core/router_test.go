package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/internal/topo"
	"repro/internal/wdm"
)

// resultKey captures everything a routing decision influences downstream:
// feasibility, costs, load, and the exact hop sequences.
type resultKey struct {
	ok                      bool
	cost, auxWeight, load   float64
	threshold               float64
	primaryHops, backupHops string
}

func keyOf(net *wdm.Network, r *Result, ok bool) resultKey {
	if !ok {
		return resultKey{}
	}
	fmtHops := func(p *wdm.Semilightpath) string {
		s := ""
		for _, h := range p.Hops {
			s += string(rune('A'+h.Link%26)) + string(rune('0'+h.Wavelength%10))
		}
		return s
	}
	return resultKey{
		ok:          true,
		cost:        r.Cost,
		auxWeight:   r.AuxWeight,
		load:        r.PathLoad,
		threshold:   r.Threshold,
		primaryHops: fmtHops(r.Primary),
		backupHops:  fmtHops(r.Backup),
	}
}

// TestRouterMatchesOneShotOnStream is the differential test for the
// reweight-in-place hot path: the same request stream is routed twice — once
// with a fresh Router per request (every call builds its auxiliary graph from
// scratch) and once with a single reused Router (skeletons built once, then
// reweighted incrementally as reservations accumulate and connections tear
// down). Each arm owns a network clone driven through the identical
// establish/teardown sequence; every routing decision must match exactly.
func TestRouterMatchesOneShotOnStream(t *testing.T) {
	base := topo.NSFNET(topo.Config{W: 4})
	netFresh := base.Clone()
	netWarm := base.Clone()
	warm := NewRouter(nil)
	rng := rand.New(rand.NewSource(99))

	type live struct{ fresh, warm *Result }
	var established []live
	routed, blocked := 0, 0
	for i := 0; i < 160; i++ {
		s := rng.Intn(base.Nodes())
		d := rng.Intn(base.Nodes() - 1)
		if d >= s {
			d++
		}
		var rF, rW *Result
		var okF, okW bool
		switch i % 3 {
		case 0:
			rF, okF = ApproxMinCost(netFresh, s, d, nil)
			rW, okW = warm.ApproxMinCost(netWarm, s, d)
		case 1:
			rF, okF = MinLoad(netFresh, s, d, nil)
			rW, okW = warm.MinLoad(netWarm, s, d)
		case 2:
			rF, okF = MinLoadCost(netFresh, s, d, nil)
			rW, okW = warm.MinLoadCost(netWarm, s, d)
		}
		kF, kW := keyOf(netFresh, rF, okF), keyOf(netWarm, rW, okW)
		if kF != kW {
			t.Fatalf("request %d (%d->%d, alg %d): fresh %+v != warm %+v", i, s, d, i%3, kF, kW)
		}
		if !okF {
			blocked++
			continue
		}
		routed++
		if err := Establish(netFresh, rF); err != nil {
			t.Fatalf("request %d: fresh establish: %v", i, err)
		}
		if err := Establish(netWarm, rW); err != nil {
			t.Fatalf("request %d: warm establish: %v", i, err)
		}
		// The warm result aliases router workspaces only for the aux pair,
		// not the semilightpaths, so retaining it across calls is safe.
		established = append(established, live{fresh: rF, warm: rW})
		// Tear a random earlier connection down every few arrivals so the
		// stream exercises Release (and the conversion-cache invalidation)
		// as well as Use.
		if len(established) > 4 && i%5 == 4 {
			j := rng.Intn(len(established))
			c := established[j]
			established = append(established[:j], established[j+1:]...)
			if err := Teardown(netFresh, c.fresh); err != nil {
				t.Fatalf("request %d: fresh teardown: %v", i, err)
			}
			if err := Teardown(netWarm, c.warm); err != nil {
				t.Fatalf("request %d: warm teardown: %v", i, err)
			}
		}
		if lF, lW := netFresh.NetworkLoad(), netWarm.NetworkLoad(); lF != lW {
			t.Fatalf("request %d: network load diverged: fresh %v warm %v", i, lF, lW)
		}
	}
	if routed == 0 || blocked == 0 {
		t.Fatalf("stream not exercising both outcomes: routed=%d blocked=%d", routed, blocked)
	}
}

// TestRouterRebindAndTopoInvalidation covers the two skeleton-invalidation
// paths: routing on a different network drops the cache, and a structural
// change (AddLink) on the same network forces a rebuild via TopoVersion.
func TestRouterRebindAndTopoInvalidation(t *testing.T) {
	r := NewRouter(nil)
	net1 := topo.NSFNET(topo.Config{W: 4})
	res1, ok := r.ApproxMinCost(net1, 0, 9)
	if !ok {
		t.Fatal("route on net1 failed")
	}

	// Rebind to a different network.
	net2 := topo.Ring(8, topo.Config{W: 4})
	if _, ok := r.ApproxMinCost(net2, 0, 4); !ok {
		t.Fatal("route on net2 failed")
	}

	// Structural change: add a cheap shortcut 0→9 plus return fibers; the
	// cached skeleton must be rebuilt, and the new link must be usable.
	net1.AddUniformLink(0, 9, 0.01)
	net1.AddUniformLink(9, 0, 0.01)
	res2, ok := r.ApproxMinCost(net1, 0, 9)
	if !ok {
		t.Fatal("route after AddLink failed")
	}
	if res2.Cost >= res1.Cost {
		t.Fatalf("shortcut not used after AddLink: cost %v -> %v", res1.Cost, res2.Cost)
	}
	uses := false
	for _, h := range res2.Primary.Hops {
		if h.Link >= net1.Links()-2 {
			uses = true
		}
	}
	if !uses {
		t.Fatal("primary does not use the new shortcut link")
	}
}

// TestRouterParallelPerWorker runs one Router per worker goroutine over
// independent network clones — the sweep pattern of the bench harness. Run
// under -race this doubles as the data-race check for the workspace reuse;
// the assertion checks cross-worker determinism (every worker that routes
// sample i gets the result a fresh one-shot call gets).
func TestRouterParallelPerWorker(t *testing.T) {
	base := topo.NSFNET(topo.Config{W: 4})
	const n = 64
	type out struct {
		cost float64
		ok   bool
	}
	want := make([]out, n)
	for i := 0; i < n; i++ {
		net := base.Clone()
		s, d := i%14, (i*5+3)%14
		if s == d {
			continue
		}
		r, ok := ApproxMinCost(net, s, d, nil)
		if ok {
			want[i] = out{cost: r.Cost, ok: true}
		}
	}
	got := parallel.MapWithState(n, 8,
		func() *Router { return NewRouter(nil) },
		func(rt *Router, i int) out {
			net := base.Clone()
			s, d := i%14, (i*5+3)%14
			if s == d {
				return out{}
			}
			r, ok := rt.ApproxMinCost(net, s, d)
			if !ok {
				return out{}
			}
			return out{cost: r.Cost, ok: true}
		})
	for i := range want {
		if want[i].ok != got[i].ok || math.Abs(want[i].cost-got[i].cost) > 1e-12 {
			t.Fatalf("sample %d: sequential %+v != parallel %+v", i, want[i], got[i])
		}
	}
}
