package serve

import (
	"container/heap"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/wdm"
	"repro/internal/workload"
)

// simEvent mirrors netsim's (time, seq) event ordering so the serve arm of
// the differential test processes the identical arrival/departure schedule.
type simEvent struct {
	time    float64
	seq     uint64
	arrival bool
	req     workload.Request // arrival
	id      int64            // departure
}

type simQueue []simEvent

func (q simQueue) Len() int { return len(q) }
func (q simQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q simQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *simQueue) Push(x any)   { *q = append(*q, x.(simEvent)) }
func (q *simQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

type decision struct {
	ok   bool
	cost float64
}

// TestServeMatchesBatch is the differential gate: the same seeded Poisson
// arrival/departure sequence, run through the batch simulator (netsim.Sim)
// and through the daemon engine (single shard, requests serialized), must
// produce identical accept/block decisions and bit-exact route costs —
// provision/teardown over epoch snapshots is semantically the plain batch
// loop when concurrency is taken away.
func TestServeMatchesBatch(t *testing.T) {
	reqs := workload.Poisson(workload.PoissonConfig{
		Nodes:       14,
		ArrivalRate: 5,
		MeanHolding: 4,
		Count:       600,
		Seed:        7,
	})

	// Sim arm: capture every routing decision in arrival-processing order
	// through RouteFunc, using a router configured exactly like the engine's
	// single shard.
	simRouter := core.NewRouter(&core.Options{ReuseResult: true})
	var simDecisions []decision
	sim := netsim.New(nsf(8), netsim.Config{
		RouteFunc: func(net *wdm.Network, s, d int) (*core.Result, bool) {
			res, ok := simRouter.MinLoadCost(net, s, d)
			dec := decision{ok: ok}
			if ok {
				dec.cost = res.Cost
			}
			simDecisions = append(simDecisions, dec)
			return res, ok
		},
	})
	m := sim.Run(reqs)
	if len(simDecisions) != len(reqs) {
		t.Fatalf("sim routed %d of %d arrivals", len(simDecisions), len(reqs))
	}

	// Serve arm: one shard, default min-load-cost, driven serially in the
	// exact (time, seq) event order netsim uses — arrivals pre-pushed with
	// seq 0..n-1, departures pushed at accept time with subsequent seqs.
	e := startEngine(t, nsf(8), Config{Shards: 1, Algorithm: AlgoMinLoadCost})
	q := make(simQueue, 0, len(reqs))
	var seq uint64
	for _, r := range reqs {
		heap.Push(&q, simEvent{time: r.Arrival, seq: seq, arrival: true, req: r})
		seq++
	}
	accepted, blocked, arrivalIdx := 0, 0, 0
	for q.Len() > 0 {
		ev := heap.Pop(&q).(simEvent)
		if !ev.arrival {
			if resp := e.Teardown(ev.id); !resp.Accepted {
				t.Fatalf("serve teardown %d rejected: %+v", ev.id, resp)
			}
			continue
		}
		r := ev.req
		resp := e.Provision(Request{ID: int64(r.ID), Src: r.Src, Dst: r.Dst})
		dec := simDecisions[arrivalIdx]
		arrivalIdx++
		if resp.Accepted != dec.ok {
			t.Fatalf("arrival %d (conn %d, %d->%d): serve accepted=%v, sim accepted=%v",
				arrivalIdx-1, r.ID, r.Src, r.Dst, resp.Accepted, dec.ok)
		}
		if resp.Accepted {
			if resp.Cost != dec.cost { // bit-exact: same router, same state
				t.Fatalf("arrival %d (conn %d): serve cost %v, sim cost %v",
					arrivalIdx-1, r.ID, resp.Cost, dec.cost)
			}
			accepted++
			heap.Push(&q, simEvent{time: r.Departure(), seq: seq, id: int64(r.ID)})
			seq++
		} else {
			blocked++
			if resp.Reason != ReasonNoRoute {
				t.Fatalf("serve blocked %d for %q, want %q (serialized run cannot conflict)", r.ID, resp.Reason, ReasonNoRoute)
			}
		}
	}
	if arrivalIdx != len(reqs) {
		t.Fatalf("serve arm processed %d of %d arrivals", arrivalIdx, len(reqs))
	}

	// Aggregate decisions must agree exactly.
	if accepted != m.Accepted || blocked != m.Blocked {
		t.Fatalf("decision mismatch: serve %d accepted / %d blocked, sim %d / %d",
			accepted, blocked, m.Accepted, m.Blocked)
	}
	if m.Offered != len(reqs) {
		t.Fatalf("sim offered %d of %d", m.Offered, len(reqs))
	}

	// Strongest check: both arms end in bit-identical network states.
	_, snap := e.Snapshot()
	if !availEqual(snap, sim.Network()) {
		t.Fatal("final availability diverges between serve and batch simulator")
	}
	if e.LiveConnections() != sim.LiveConnections() {
		t.Fatalf("live connections: serve %d, sim %d", e.LiveConnections(), sim.LiveConnections())
	}
}
