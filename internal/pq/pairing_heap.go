package pq

// PairingHeap is a min-ordered pairing heap keyed by float64 priorities with
// an arbitrary integer payload. It supports O(1) amortized Push and Meld and
// O(log n) amortized Pop, with decrease-key via node handles. Pairing heaps
// are the standard practical stand-in for the Fibonacci heaps cited by the
// paper's complexity analysis.
type PairingHeap struct {
	root *PairingNode
	size int
}

// PairingNode is a handle to an element inside a PairingHeap. Handles stay
// valid until the element is popped.
type PairingNode struct {
	Value    int
	priority float64

	child, sibling, prev *PairingNode // prev: parent if first child, else left sibling
}

// Priority returns the node's current priority.
func (n *PairingNode) Priority() float64 { return n.priority }

// NewPairingHeap returns an empty pairing heap.
func NewPairingHeap() *PairingHeap { return &PairingHeap{} }

// Len returns the number of elements.
func (h *PairingHeap) Len() int { return h.size }

// Empty reports whether the heap has no elements.
func (h *PairingHeap) Empty() bool { return h.root == nil }

// Push inserts value with the given priority and returns its handle.
func (h *PairingHeap) Push(value int, priority float64) *PairingNode {
	n := &PairingNode{Value: value, priority: priority}
	h.root = meld(h.root, n)
	h.size++
	return n
}

// Peek returns the minimum element without removing it. It panics if empty.
func (h *PairingHeap) Peek() (value int, priority float64) {
	if h.root == nil {
		panic("pq: Peek on empty pairing heap")
	}
	return h.root.Value, h.root.priority
}

// Pop removes and returns the minimum element. It panics if empty.
func (h *PairingHeap) Pop() (value int, priority float64) {
	if h.root == nil {
		panic("pq: Pop from empty pairing heap")
	}
	r := h.root
	h.root = mergePairs(r.child)
	if h.root != nil {
		h.root.prev = nil
		h.root.sibling = nil
	}
	h.size--
	r.child, r.sibling, r.prev = nil, nil, nil
	return r.Value, r.priority
}

// DecreaseKey lowers the priority of the element behind handle n. It panics
// if the new priority is greater than the current one.
func (h *PairingHeap) DecreaseKey(n *PairingNode, priority float64) {
	if priority > n.priority {
		panic("pq: DecreaseKey with larger priority")
	}
	n.priority = priority
	if n == h.root {
		return
	}
	// Detach n from its sibling list.
	if n.prev.child == n { // n is the first child of its parent
		n.prev.child = n.sibling
	} else {
		n.prev.sibling = n.sibling
	}
	if n.sibling != nil {
		n.sibling.prev = n.prev
	}
	n.sibling, n.prev = nil, nil
	h.root = meld(h.root, n)
}

// Meld merges other into h, emptying other.
func (h *PairingHeap) Meld(other *PairingHeap) {
	if other == h || other == nil || other.root == nil {
		return
	}
	h.root = meld(h.root, other.root)
	h.size += other.size
	other.root = nil
	other.size = 0
}

func meld(a, b *PairingNode) *PairingNode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if b.priority < a.priority {
		a, b = b, a
	}
	// b becomes the first child of a.
	b.prev = a
	b.sibling = a.child
	if a.child != nil {
		a.child.prev = b
	}
	a.child = b
	a.prev = nil
	a.sibling = nil
	return a
}

// mergePairs performs the two-pass pairing over a sibling list.
func mergePairs(first *PairingNode) *PairingNode {
	if first == nil {
		return nil
	}
	// Pass 1: meld adjacent pairs left to right.
	var pairs []*PairingNode
	for first != nil {
		a := first
		b := first.sibling
		if b != nil {
			first = b.sibling
			a.sibling, a.prev = nil, nil
			b.sibling, b.prev = nil, nil
			pairs = append(pairs, meld(a, b))
		} else {
			first = nil
			a.sibling, a.prev = nil, nil
			pairs = append(pairs, a)
		}
	}
	// Pass 2: meld right to left.
	res := pairs[len(pairs)-1]
	for i := len(pairs) - 2; i >= 0; i-- {
		res = meld(res, pairs[i])
	}
	return res
}
