package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"

	"strings"
	"sync"
)

// PackageSpec describes one package to load. Specs for packages that are only
// imported (Analyze false) need just ImportPath and ExportFile; specs to be
// analyzed are typechecked from source and must list their files. Specs must
// be ordered dependencies-first (the order `go list -deps` produces).
type PackageSpec struct {
	ImportPath string
	Dir        string
	Files      []string // absolute paths of the package's .go files
	ExportFile string   // compiled export data, for import resolution
	Imports    []string // direct imports, for the parallel typecheck schedule
	Analyze    bool     // typecheck from source and run analyzers
}

// Package is one typechecked package ready for analysis.
type Package struct {
	Types *types.Package
	Info  *types.Info
	Fset  *token.FileSet
	Files []*ast.File
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Imports    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the JSON
// package stream.
func goList(dir string, args ...string) ([]listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", args, err, stderr.Bytes())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// List enumerates the packages matching patterns (relative to dir) together
// with their transitive dependencies, dependencies-first. Packages matching
// the patterns themselves are marked Analyze; dependencies resolve from
// export data only.
func List(dir string, patterns ...string) ([]PackageSpec, error) {
	listed, err := goList(dir, append([]string{"-deps", "-export", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var specs []PackageSpec
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		spec := PackageSpec{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			ExportFile: p.Export,
			Imports:    p.Imports,
			Analyze:    !p.DepOnly,
		}
		for _, f := range p.GoFiles {
			spec.Files = append(spec.Files, filepath.Join(p.Dir, f))
		}
		specs = append(specs, spec)
	}
	// A dependency-only package that imports an analyzed package would mix
	// export-data types with source-checked types for the same import path —
	// two distinct *types.Package instances, and spurious mismatch errors.
	// Promote such packages to source analysis; one forward pass suffices
	// because the specs are ordered dependencies-first. A full ./... run
	// never promotes (stdlib deps do not import repo packages); incremental
	// -since loads can.
	analyzed := map[string]bool{}
	for i := range specs {
		s := &specs[i]
		if !s.Analyze {
			for _, imp := range s.Imports {
				if analyzed[imp] {
					s.Analyze = true
					break
				}
			}
		}
		if s.Analyze {
			analyzed[s.ImportPath] = true
		}
	}
	return specs, nil
}

// exportData is the process-wide cache of compiled export data: each export
// file is read from disk at most once per process, no matter how many loads
// or importer instances ask for it (the gc importer re-opens its input per
// package; this keeps the repeated reads in memory).
var exportData = struct {
	mu sync.Mutex
	m  map[string][]byte
}{m: map[string][]byte{}}

func readExportFile(file string) ([]byte, error) {
	exportData.mu.Lock()
	defer exportData.mu.Unlock()
	if b, ok := exportData.m[file]; ok {
		return b, nil
	}
	b, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	exportData.m[file] = b
	return b, nil
}

// exportLookup resolves import paths to export data, preferring files named
// by the specs and falling back to one `go list -export` call per unknown
// path (cached). It is the lookup function handed to the gc importer.
type exportLookup struct {
	mu    sync.Mutex
	files map[string]string // import path -> export file
}

func (l *exportLookup) lookup(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	file, ok := l.files[path]
	l.mu.Unlock()
	if !ok {
		listed, err := goList("", "-export", "--", path)
		if err != nil {
			return nil, err
		}
		if len(listed) != 1 || listed[0].Export == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		file = listed[0].Export
		l.mu.Lock()
		l.files[path] = file
		l.mu.Unlock()
	}
	b, err := readExportFile(file)
	if err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(b)), nil
}

// checkState is the shared state of one parallel Check: the source-checked
// packages (filled as their goroutines finish) and the mutex-guarded
// export-data importer every worker falls back to.
type checkState struct {
	mu       sync.Mutex
	own      map[string]*types.Package
	fallback types.Importer
	done     map[string]chan struct{} // closed when the path's typecheck finished
	errs     map[string]error
}

// pkgImporter resolves imports for one package being typechecked: imports of
// other analyzed packages block until their goroutine has finished, imports
// of dependency-only packages read export data.
type pkgImporter struct{ st *checkState }

func (imp pkgImporter) Import(path string) (*types.Package, error) {
	st := imp.st
	if ch, ok := st.done[path]; ok {
		<-ch
		st.mu.Lock()
		pkg, err := st.own[path], st.errs[path]
		st.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("import %q: %v", path, err)
		}
		return pkg, nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.fallback.Import(path)
}

// Check parses and typechecks every Analyze spec, resolving imports against
// sibling specs and export data. Packages are typechecked concurrently: each
// spec's worker blocks only on the analyzed packages it imports, so
// independent subtrees of the dependency graph check in parallel instead of
// serially re-walking the whole graph. Syntax and type errors abort the
// load: analyzers only ever see well-typed packages.
func Check(specs []PackageSpec) ([]*Package, error) {
	fset := token.NewFileSet()
	lookup := &exportLookup{files: map[string]string{}}
	for _, s := range specs {
		if s.ExportFile != "" {
			lookup.files[s.ImportPath] = s.ExportFile
		}
	}
	st := &checkState{
		own:      map[string]*types.Package{},
		fallback: importer.ForCompiler(fset, "gc", lookup.lookup),
		done:     map[string]chan struct{}{},
		errs:     map[string]error{},
	}
	var analyze []PackageSpec
	for _, s := range specs {
		if s.Analyze {
			analyze = append(analyze, s)
			st.done[s.ImportPath] = make(chan struct{})
		}
	}

	results := make([]*Package, len(analyze))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, s := range analyze {
		wg.Add(1)
		go func(i int, s PackageSpec) {
			defer wg.Done()
			defer close(st.done[s.ImportPath])
			// Wait for analyzed imports before taking a worker slot, so a
			// blocked package never starves the workers it is waiting on —
			// with one slot, blocking inside it would deadlock. Specs without
			// import lists (hand-built fixture specs) conservatively wait on
			// every earlier analyzed spec: the documented dependencies-first
			// order makes that set a superset of their analyzed imports, and
			// waiting happens before acquiring the slot, so it cannot cycle.
			deps := s.Imports
			if deps == nil {
				for _, p := range analyze[:i] {
					deps = append(deps, p.ImportPath)
				}
			}
			for _, dep := range deps {
				if ch, ok := st.done[dep]; ok {
					<-ch
				}
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			pkg, err := checkOne(fset, pkgImporter{st}, s)
			st.mu.Lock()
			if err != nil {
				st.errs[s.ImportPath] = err
			} else {
				st.own[s.ImportPath] = pkg.Types
				results[i] = pkg
			}
			st.mu.Unlock()
		}(i, s)
	}
	wg.Wait()

	// Report the dependencies-first earliest failure: it is the root cause —
	// later packages fail only because their import did.
	for _, s := range analyze {
		if err := st.errs[s.ImportPath]; err != nil {
			return nil, err
		}
	}
	return results, nil
}

// checkOne parses and typechecks a single spec.
func checkOne(fset *token.FileSet, imp types.Importer, s PackageSpec) (*Package, error) {
	var files []*ast.File
	for _, name := range s.Files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(s.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typechecking %s: %v", s.ImportPath, err)
	}
	return &Package{Types: tpkg, Info: info, Fset: fset, Files: files}, nil
}

// loadCache memoizes Load results per process, so repeated loads of the same
// patterns (the self-gate test plus a driver run in one binary, or repeated
// analyzer passes) typecheck the dependency graph once.
var loadCache = struct {
	mu sync.Mutex
	m  map[string]loadResult
}{m: map[string]loadResult{}}

type loadResult struct {
	pkgs []*Package
	err  error
}

// Load is List followed by Check: the one-call entry point the driver and the
// self-test use. Results are memoized per (dir, patterns) for the life of the
// process.
func Load(dir string, patterns ...string) ([]*Package, error) {
	key := dir + "\x00" + strings.Join(patterns, "\x00")
	loadCache.mu.Lock()
	cached, ok := loadCache.m[key]
	loadCache.mu.Unlock()
	if ok {
		return cached.pkgs, cached.err
	}
	specs, err := List(dir, patterns...)
	var pkgs []*Package
	if err == nil {
		pkgs, err = Check(specs)
	}
	loadCache.mu.Lock()
	loadCache.m[key] = loadResult{pkgs: pkgs, err: err}
	loadCache.mu.Unlock()
	return pkgs, err
}
