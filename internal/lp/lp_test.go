package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleLE(t *testing.T) {
	// min −x −2y  s.t.  x + y ≤ 4,  x ≤ 2,  y ≤ 3  →  x=1? Check corners:
	// best is x=1,y=3 → −7.
	p := NewProblem(2, []float64{-1, -2})
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 4)
	p.AddConstraint(map[int]float64{0: 1}, LE, 2)
	p.AddConstraint(map[int]float64{1: 1}, LE, 3)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Obj, -7) {
		t.Fatalf("obj = %g, want -7", s.Obj)
	}
	if !approx(s.X[0], 1) || !approx(s.X[1], 3) {
		t.Fatalf("x = %v", s.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min x + y  s.t.  x + y = 2,  x ≥ 0.5  → obj 2, e.g. x=0.5,y=1.5.
	p := NewProblem(2, []float64{1, 1})
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 2)
	p.AddConstraint(map[int]float64{0: 1}, GE, 0.5)
	s := p.Solve()
	if s.Status != Optimal || !approx(s.Obj, 2) {
		t.Fatalf("status=%v obj=%g", s.Status, s.Obj)
	}
	if s.X[0] < 0.5-1e-9 {
		t.Fatalf("x0 = %g violates GE", s.X[0])
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1, []float64{1})
	p.AddConstraint(map[int]float64{0: 1}, LE, 1)
	p.AddConstraint(map[int]float64{0: 1}, GE, 2)
	if s := p.Solve(); s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
	// x ≥ 0 conflicts with x ≤ −1.
	p2 := NewProblem(1, []float64{0})
	p2.AddConstraint(map[int]float64{0: 1}, LE, -1)
	if s := p2.Solve(); s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1, []float64{-1})
	p.AddConstraint(map[int]float64{0: 1}, GE, 1)
	if s := p.Solve(); s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// −x ≤ −2  means x ≥ 2; min x → 2.
	p := NewProblem(1, []float64{1})
	p.AddConstraint(map[int]float64{0: -1}, LE, -2)
	s := p.Solve()
	if s.Status != Optimal || !approx(s.Obj, 2) {
		t.Fatalf("status=%v obj=%g", s.Status, s.Obj)
	}
}

func TestDegenerateLP(t *testing.T) {
	// A classic degenerate corner; must still terminate at optimum.
	p := NewProblem(3, []float64{-0.75, 150, -0.02})
	p.AddConstraint(map[int]float64{0: 0.25, 1: -60, 2: -0.04}, LE, 0)
	p.AddConstraint(map[int]float64{0: 0.5, 1: -90, 2: -0.02}, LE, 0)
	p.AddConstraint(map[int]float64{2: 1}, LE, 1)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Obj, -0.05) {
		// Known optimum of this Beale-style instance (scaled):
		// x = (1/25? ) — verify the objective only loosely: must be ≤ −0.02.
		if s.Obj > -0.02 {
			t.Fatalf("obj = %g, expected ≤ -0.02", s.Obj)
		}
	}
}

func TestZeroConstraintProblem(t *testing.T) {
	// No constraints: min 0·x is optimal at 0 immediately.
	p := NewProblem(2, []float64{0, 0})
	s := p.Solve()
	if s.Status != Optimal || !approx(s.Obj, 0) {
		t.Fatalf("status=%v obj=%g", s.Status, s.Obj)
	}
}

func TestRedundantEquality(t *testing.T) {
	// Duplicate equalities leave a basic artificial on a zero row; the
	// solver must still return the optimum.
	p := NewProblem(2, []float64{1, 2})
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 3)
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 3)
	p.AddConstraint(map[int]float64{0: 1}, LE, 2)
	s := p.Solve()
	if s.Status != Optimal || !approx(s.Obj, 4) { // x=2, y=1
		t.Fatalf("status=%v obj=%g x=%v", s.Status, s.Obj, s.X)
	}
}

func TestTransportationLP(t *testing.T) {
	// 2 supplies (3, 4), 2 demands (5, 2); costs [[1,4],[2,1]].
	// Vars x00,x01,x10,x11. Optimal: x00=3, x10=2, x11=2 → 3+4+2 = 9.
	p := NewProblem(4, []float64{1, 4, 2, 1})
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 3)
	p.AddConstraint(map[int]float64{2: 1, 3: 1}, EQ, 4)
	p.AddConstraint(map[int]float64{0: 1, 2: 1}, EQ, 5)
	p.AddConstraint(map[int]float64{1: 1, 3: 1}, EQ, 2)
	s := p.Solve()
	if s.Status != Optimal || !approx(s.Obj, 9) {
		t.Fatalf("status=%v obj=%g x=%v", s.Status, s.Obj, s.X)
	}
}

func TestShortestPathAsLP(t *testing.T) {
	// Unit-flow LP on the diamond 0→1(1), 0→2(4), 1→2(2), 1→3(7), 2→3(1):
	// min cost flow of one unit 0→3 = 4 (matches graph.Dijkstra's diamond).
	costs := []float64{1, 4, 2, 7, 1}
	arcs := [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}}
	p := NewProblem(5, costs)
	for v := 0; v < 4; v++ {
		coef := map[int]float64{}
		for j, a := range arcs {
			if a[0] == v {
				coef[j] = coef[j] + 1
			}
			if a[1] == v {
				coef[j] = coef[j] - 1
			}
		}
		switch v {
		case 0:
			p.AddConstraint(coef, EQ, 1)
		case 3:
			p.AddConstraint(coef, EQ, -1)
		default:
			p.AddConstraint(coef, EQ, 0)
		}
	}
	s := p.Solve()
	if s.Status != Optimal || !approx(s.Obj, 4) {
		t.Fatalf("status=%v obj=%g x=%v", s.Status, s.Obj, s.X)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewProblem(1, []float64{1})
	p.AddConstraint(map[int]float64{0: 1}, GE, 1)
	c := p.Clone()
	c.AddConstraint(map[int]float64{0: 1}, GE, 5)
	if p.NumConstraints() != 1 || c.NumConstraints() != 2 {
		t.Fatal("clone not independent")
	}
	if s := p.Solve(); !approx(s.Obj, 1) {
		t.Fatalf("p obj = %g", s.Obj)
	}
	if s := c.Solve(); !approx(s.Obj, 5) {
		t.Fatalf("c obj = %g", s.Obj)
	}
}

func TestValidationPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"objLen": func() { NewProblem(2, []float64{1}) },
		"varIdx": func() {
			p := NewProblem(1, []float64{1})
			p.AddConstraint(map[int]float64{5: 1}, LE, 1)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterationLimit: "iteration-limit",
		Status(9): "Status(9)",
	} {
		if s.String() != want {
			t.Errorf("String(%d) = %q", int(s), s.String())
		}
	}
}

// Randomized: generate feasible bounded LPs with a known feasible point and
// verify (a) the returned solution satisfies all constraints, (b) the
// objective is no worse than the known point's.
func TestRandomFeasibleLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(5)
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = rng.Float64()*4 - 2
		}
		// Known point.
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = rng.Float64() * 3
		}
		p := NewProblem(n, obj)
		// Box to keep it bounded.
		for j := 0; j < n; j++ {
			p.AddConstraint(map[int]float64{j: 1}, LE, 10)
		}
		type con struct {
			coef map[int]float64
			rel  Rel
			rhs  float64
		}
		var cons []con
		for k := 0; k < 4; k++ {
			coef := map[int]float64{}
			lhs := 0.0
			for j := 0; j < n; j++ {
				c := rng.Float64()*4 - 2
				coef[j] = c
				lhs += c * x0[j]
			}
			var rel Rel
			var rhs float64
			switch rng.Intn(2) {
			case 0:
				rel, rhs = LE, lhs+rng.Float64()
			default:
				rel, rhs = GE, lhs-rng.Float64()
			}
			p.AddConstraint(coef, rel, rhs)
			cons = append(cons, con{coef, rel, rhs})
		}
		s := p.Solve()
		if s.Status != Optimal {
			t.Fatalf("trial %d: status = %v", trial, s.Status)
		}
		// Feasibility of the returned point.
		for _, c := range cons {
			lhs := 0.0
			for j, v := range c.coef {
				lhs += v * s.X[j]
			}
			switch c.rel {
			case LE:
				if lhs > c.rhs+1e-6 {
					t.Fatalf("trial %d: LE violated (%g > %g)", trial, lhs, c.rhs)
				}
			case GE:
				if lhs < c.rhs-1e-6 {
					t.Fatalf("trial %d: GE violated (%g < %g)", trial, lhs, c.rhs)
				}
			}
		}
		for j, v := range s.X {
			if v < -1e-7 || v > 10+1e-6 {
				t.Fatalf("trial %d: x[%d] = %g out of box", trial, j, v)
			}
		}
		// Optimality vs known point (clip x0 into the box — it already is).
		objAt := func(x []float64) float64 {
			z := 0.0
			for j := range x {
				z += obj[j] * x[j]
			}
			return z
		}
		// x0 may violate the random constraints slack we added? No: we built
		// rhs from lhs at x0 with slack in the feasible direction.
		if s.Obj > objAt(x0)+1e-6 {
			t.Fatalf("trial %d: obj %g worse than feasible point %g", trial, s.Obj, objAt(x0))
		}
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 40
	obj := make([]float64, n)
	for j := range obj {
		obj[j] = rng.Float64()
	}
	p := NewProblem(n, obj)
	for i := 0; i < 60; i++ {
		coef := map[int]float64{}
		for j := 0; j < n; j++ {
			coef[j] = rng.Float64()
		}
		p.AddConstraint(coef, GE, 1)
	}
	for j := 0; j < n; j++ {
		p.AddConstraint(map[int]float64{j: 1}, LE, 5)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := p.Solve(); s.Status != Optimal {
			b.Fatal(s.Status)
		}
	}
}

func TestUnboundedAfterPhase1(t *testing.T) {
	// Needs an artificial start (GE constraint) and then an unbounded
	// phase 2 in a different direction.
	p := NewProblem(2, []float64{0, -1})
	p.AddConstraint(map[int]float64{0: 1}, GE, 2)
	if s := p.Solve(); s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestManyEqualitiesStress(t *testing.T) {
	// A chain of equalities x_i − x_{i+1} = 1 with x_0 = 50 pins every
	// variable; minimize the last one.
	n := 30
	obj := make([]float64, n)
	obj[n-1] = 1
	p := NewProblem(n, obj)
	p.AddConstraint(map[int]float64{0: 1}, EQ, 50)
	for i := 0; i+1 < n; i++ {
		p.AddConstraint(map[int]float64{i: 1, i + 1: -1}, EQ, 1)
	}
	s := p.Solve()
	if s.Status != Optimal || !approx(s.Obj, float64(50-(n-1))) {
		t.Fatalf("status=%v obj=%g", s.Status, s.Obj)
	}
	for i := 0; i < n; i++ {
		if !approx(s.X[i], float64(50-i)) {
			t.Fatalf("x[%d] = %g", i, s.X[i])
		}
	}
}
