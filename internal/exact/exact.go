// Package exact provides two independent exact solvers for the optimal
// edge-disjoint semilightpath problem (§3.1), usable on small instances:
//
//   - ILP: builds the paper's 0/1 integer program (Eqs. 3–21), with the
//     conversion-cost terms (17)–(18) linearised as
//     z ≥ (x^{l1}_{e1} + x^{l2}_{e2} − 1)·c_v(λ_{l1}, λ_{l2}), z ≥ 0,
//     and solves it with branch-and-bound over LP relaxations.
//   - Exhaustive: enumerates pairs of edge-disjoint node-simple routes and
//     optimally wavelength-assigns each fixed route by DP (assignment
//     decomposes per path once the routes are fixed).
//
// Both solvers optimise over node-simple paths, exactly the feasible set the
// paper's degree constraints (Ineqs. 5–6, 11–12) induce. Agreement between
// them is itself an experiment (E9).
package exact

import (
	"math"

	"repro/internal/ilp"
	"repro/internal/lightpath"
	"repro/internal/lp"
	"repro/internal/wdm"
)

// Solution is an exact optimum: two edge-disjoint semilightpaths and the
// Eq. 3 objective value (cost sum of both paths).
type Solution struct {
	Primary *wdm.Semilightpath
	Backup  *wdm.Semilightpath
	Cost    float64
}

// Exhaustive finds the optimal edge-disjoint pair by route enumeration.
// maxRoutes caps the number of simple routes considered per endpoint pair
// (0 = 100000); if the cap is hit the result may be suboptimal, signalled by
// truncated = true.
func Exhaustive(net *wdm.Network, s, t int, maxRoutes int) (sol *Solution, truncated bool, ok bool) {
	if maxRoutes <= 0 {
		maxRoutes = 100000
	}
	if s == t || s < 0 || t < 0 || s >= net.Nodes() || t >= net.Nodes() {
		return nil, false, false
	}
	routes, truncated := enumerateRoutes(net, s, t, maxRoutes)
	if len(routes) < 2 {
		return nil, truncated, false
	}
	type assigned struct {
		path *wdm.Semilightpath
		cost float64
		used map[int]bool
	}
	cache := make([]assigned, len(routes))
	for i, r := range routes {
		p, c, okA := lightpath.AssignWavelengths(net, r)
		if !okA {
			cache[i] = assigned{cost: math.Inf(1)}
			continue
		}
		used := make(map[int]bool, len(r))
		for _, id := range r {
			used[id] = true
		}
		cache[i] = assigned{path: p, cost: c, used: used}
	}
	best := math.Inf(1)
	var bi, bj = -1, -1
	for i := range cache {
		if math.IsInf(cache[i].cost, 1) {
			continue
		}
		for j := i + 1; j < len(cache); j++ {
			if math.IsInf(cache[j].cost, 1) {
				continue
			}
			total := cache[i].cost + cache[j].cost
			if total >= best {
				continue
			}
			disjointPair := true
			for id := range cache[j].used {
				if cache[i].used[id] {
					disjointPair = false
					break
				}
			}
			if disjointPair {
				best = total
				bi, bj = i, j
			}
		}
	}
	if bi < 0 {
		return nil, truncated, false
	}
	return &Solution{Primary: cache[bi].path, Backup: cache[bj].path, Cost: best}, truncated, true
}

// enumerateRoutes lists node-simple routes (link-ID sequences) from s to t
// over links with available wavelengths.
func enumerateRoutes(net *wdm.Network, s, t, cap int) ([][]int, bool) {
	var routes [][]int
	truncated := false
	onPath := make([]bool, net.Nodes())
	var route []int
	var dfs func(u int)
	dfs = func(u int) {
		if truncated {
			return
		}
		if u == t {
			if len(routes) >= cap {
				truncated = true
				return
			}
			routes = append(routes, append([]int(nil), route...))
			return
		}
		onPath[u] = true
		for _, id := range net.Out(u) {
			if truncated {
				break
			}
			l := net.Link(id)
			if l.Avail().Empty() || onPath[l.To] || l.To == s {
				continue
			}
			route = append(route, id)
			dfs(l.To)
			route = route[:len(route)-1]
		}
		onPath[u] = false
	}
	dfs(s)
	return routes, truncated
}

// ILPConfig tunes the integer-programming solve.
type ILPConfig struct {
	// MaxNodes caps branch-and-bound nodes (0 = ilp default).
	MaxNodes int
}

// ILPStats reports solver effort, used by the E9 experiment.
type ILPStats struct {
	Vars        int
	Constraints int
	Nodes       int
}

// ILP builds the paper's Eq. 3–21 program for a request (s, t) on the
// residual network and solves it exactly. ok is false when the program is
// infeasible (no two edge-disjoint semilightpaths exist) or the node limit
// was hit without an incumbent.
func ILP(net *wdm.Network, s, t int, cfg ILPConfig) (sol *Solution, stats ILPStats, ok bool) {
	if s == t || s < 0 || t < 0 || s >= net.Nodes() || t >= net.Nodes() {
		return nil, stats, false
	}
	b := newBuilder(net, s, t)
	prob, binaries := b.build()
	stats.Vars = prob.NumVars()
	stats.Constraints = prob.NumConstraints()
	res := ilp.Solve(prob, binaries, ilp.Config{MaxNodes: cfg.MaxNodes})
	stats.Nodes = res.Nodes
	if !res.Found || res.Status != ilp.Optimal {
		return nil, stats, false
	}
	p1, ok1 := b.extractPath(res.X, b.xVar)
	p2, ok2 := b.extractPath(res.X, b.yVar)
	if !ok1 || !ok2 {
		return nil, stats, false
	}
	return &Solution{Primary: p1, Backup: p2, Cost: res.Obj}, stats, true
}

// builder assembles the Eq. 3–21 program.
type builder struct {
	net  *wdm.Network
	s, t int

	// xVar[e][λ] / yVar[e][λ] = variable index, −1 when λ unavailable on e.
	xVar [][]int
	yVar [][]int
	nv   int
	obj  []float64

	// zPairs lists consecutive-link pairs needing a conversion variable.
	zVar map[[2]int]int // (e1,e2) -> z variable (primary)
	tVar map[[2]int]int // (e1,e2) -> t variable (backup)
}

func newBuilder(net *wdm.Network, s, t int) *builder {
	return &builder{net: net, s: s, t: t,
		zVar: map[[2]int]int{}, tVar: map[[2]int]int{}}
}

func (b *builder) newVar(cost float64) int {
	b.obj = append(b.obj, cost)
	b.nv++
	return b.nv - 1
}

func (b *builder) build() (*lp.Problem, []int) {
	net := b.net
	m := net.Links()
	w := net.W()
	b.xVar = make([][]int, m)
	b.yVar = make([][]int, m)
	var binaries []int
	for e := 0; e < m; e++ {
		b.xVar[e] = make([]int, w)
		b.yVar[e] = make([]int, w)
		for lam := 0; lam < w; lam++ {
			b.xVar[e][lam] = -1
			b.yVar[e][lam] = -1
		}
		l := net.Link(e)
		l.Avail().ForEach(func(lam int) bool {
			b.xVar[e][lam] = b.newVar(l.Cost(lam))
			binaries = append(binaries, b.xVar[e][lam])
			b.yVar[e][lam] = b.newVar(l.Cost(lam))
			binaries = append(binaries, b.yVar[e][lam])
			return true
		})
	}
	// Conversion variables z_{e1,e2} (primary) and t_{e1,e2} (backup) for
	// every consecutive pair head(e1) = tail(e2).
	for e1 := 0; e1 < m; e1++ {
		l1 := net.Link(e1)
		if l1.Avail().Empty() {
			continue
		}
		for _, e2 := range net.Out(l1.To) {
			if e2 == e1 || net.Link(e2).Avail().Empty() {
				continue
			}
			b.zVar[[2]int{e1, e2}] = b.newVar(1)
			b.tVar[[2]int{e1, e2}] = b.newVar(1)
		}
	}

	prob := lp.NewProblem(b.nv, b.obj)
	b.addPathConstraints(prob, b.xVar) // Ineqs. 4–9
	b.addPathConstraints(prob, b.yVar) // Ineqs. 10–15
	// Ineq. 16: edge-disjointness.
	for e := 0; e < m; e++ {
		coef := map[int]float64{}
		for lam := 0; lam < w; lam++ {
			if v := b.xVar[e][lam]; v >= 0 {
				coef[v] = 1
			}
			if v := b.yVar[e][lam]; v >= 0 {
				coef[v] = coef[v] + 1
			}
		}
		if len(coef) > 0 {
			prob.AddConstraint(coef, lp.LE, 1)
		}
	}
	// Ineqs. 17/20 and 18/21: conversion costs (and conversion legality).
	b.addConversionConstraints(prob, b.xVar, b.zVar)
	b.addConversionConstraints(prob, b.yVar, b.tVar)
	return prob, binaries
}

// addPathConstraints adds the unit-flow path constraints (Ineqs. 4–9 for the
// primary variables or 10–15 for the backup).
func (b *builder) addPathConstraints(prob *lp.Problem, vars [][]int) {
	net := b.net
	w := net.W()
	// (4): one wavelength per used link.
	for e := range vars {
		coef := map[int]float64{}
		for lam := 0; lam < w; lam++ {
			if v := vars[e][lam]; v >= 0 {
				coef[v] = 1
			}
		}
		if len(coef) > 0 {
			prob.AddConstraint(coef, lp.LE, 1)
		}
	}
	sumLinks := func(ids []int) map[int]float64 {
		coef := map[int]float64{}
		for _, e := range ids {
			for lam := 0; lam < w; lam++ {
				if v := vars[e][lam]; v >= 0 {
					coef[v] = coef[v] + 1
				}
			}
		}
		return coef
	}
	for i := 0; i < net.Nodes(); i++ {
		out := sumLinks(net.Out(i))
		in := sumLinks(net.In(i))
		// (5): at most one outgoing, i ≠ t.
		if i != b.t && len(out) > 0 {
			prob.AddConstraint(out, lp.LE, 1)
		}
		// (6): at most one incoming, i ≠ s.
		if i != b.s && len(in) > 0 {
			prob.AddConstraint(in, lp.LE, 1)
		}
		switch i {
		case b.s:
			// (8): unit flow out of s. The constraints as literally written
			// in the paper also admit in(s) = out(t) = 1 — a cycle through s
			// paired with a cycle through t and no s→t connectivity at all —
			// so we add the implied in(s) = 0 to close that hole.
			prob.AddConstraint(out, lp.EQ, 1)
			if len(in) > 0 {
				prob.AddConstraint(in, lp.EQ, 0)
			}
		case b.t:
			// (9): unit flow into t, plus the implied out(t) = 0 (see above).
			prob.AddConstraint(in, lp.EQ, 1)
			if len(out) > 0 {
				prob.AddConstraint(out, lp.EQ, 0)
			}
		default:
			// (7): conservation.
			coef := map[int]float64{}
			for v, c := range out {
				coef[v] = c
			}
			for v, c := range in {
				coef[v] = coef[v] - c
			}
			if len(coef) > 0 {
				prob.AddConstraint(coef, lp.EQ, 0)
			}
		}
	}
}

// addConversionConstraints encodes z ≥ (x1 + x2 − 1)·c for every allowed
// wavelength pair on consecutive links, and x1 + x2 ≤ 1 for disallowed
// pairs.
func (b *builder) addConversionConstraints(prob *lp.Problem, vars [][]int, zv map[[2]int]int) {
	net := b.net
	for key, z := range zv {
		e1, e2 := key[0], key[1]
		v := net.Link(e1).To
		conv := net.Converter(v)
		net.Link(e1).Avail().ForEach(func(l1 int) bool {
			x1 := vars[e1][l1]
			net.Link(e2).Avail().ForEach(func(l2 int) bool {
				x2 := vars[e2][l2]
				if l1 == l2 {
					return true // identity conversion is free
				}
				if !conv.Allowed(l1, l2) {
					prob.AddConstraint(map[int]float64{x1: 1, x2: 1}, lp.LE, 1)
					return true
				}
				c := conv.Cost(l1, l2)
				if c == 0 {
					return true
				}
				// z − c·x1 − c·x2 ≥ −c.
				prob.AddConstraint(map[int]float64{z: 1, x1: -c, x2: -c}, lp.GE, -c)
				return true
			})
			return true
		})
	}
}

// extractPath walks the selected variables from s to t and builds the
// semilightpath.
func (b *builder) extractPath(x []float64, vars [][]int) (*wdm.Semilightpath, bool) {
	net := b.net
	w := net.W()
	// next[u] = (link, λ) chosen leaving u, if any.
	type sel struct{ link, lam int }
	next := make(map[int]sel)
	for e := range vars {
		for lam := 0; lam < w; lam++ {
			v := vars[e][lam]
			if v >= 0 && x[v] > 0.5 {
				from := net.Link(e).From
				if _, dup := next[from]; dup {
					return nil, false
				}
				next[from] = sel{e, lam}
			}
		}
	}
	var hops []wdm.Hop
	at := b.s
	for at != b.t {
		s, okN := next[at]
		if !okN || len(hops) > net.Links() {
			return nil, false
		}
		delete(next, at)
		hops = append(hops, wdm.Hop{Link: s.link, Wavelength: s.lam})
		at = net.Link(s.link).To
	}
	// Selected variables not on the walk would be a cost-increasing cycle;
	// with strictly positive link costs the optimum has none, and if costs
	// are zero a dangling cycle does not change the objective. Accept.
	return &wdm.Semilightpath{Hops: hops}, true
}

// BuildILPForDebug exposes the Eq. 3–21 program builder for diagnostic
// tooling and tests.
func BuildILPForDebug(net *wdm.Network, s, t int) (*lp.Problem, []int) {
	b := newBuilder(net, s, t)
	return b.build()
}
