// Package obs is the request-scoped tracing layer of the routing engine: a
// span tracer that records what one (s, t) request actually did — which
// auxiliary-graph reweights ran, whether the skeleton cache hit, how hard
// Suurballe searched, which G_i the Lemma 2 refinement walked — plus a
// fixed-size flight recorder that retains the last N request traces for
// post-hoc dumps.
//
// Where package metrics answers "how is the engine doing in aggregate",
// package obs answers "why did request #1374 get an expensive pair". The
// same two properties that make metrics safe in hot paths hold here:
//
//   - Nil safety: every method on a nil *Tracer and a nil *Trace is a no-op,
//     so instrumented code calls unconditionally. A disabled tracer hands
//     out nil traces, which means tracing off costs exactly one atomic load
//     per request and zero allocations (asserted by the regression test in
//     internal/core).
//   - Concurrency: the flight recorder is safe for concurrent Add/Dump/Find
//     (a debug HTTP handler dumps while the simulator records). A *Trace
//     itself is single-goroutine like the Router that writes it, and must
//     not be mutated after Finish.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Statuses a request trace can finish with.
const (
	StatusOK      = "ok"      // a disjoint pair was found and mapped
	StatusBlocked = "blocked" // no feasible pair (request blocked/dropped)
	StatusError   = "error"   // internal failure (defensive paths)
)

// Config parameterises a Tracer.
type Config struct {
	// Capacity is the flight-recorder ring size (DefaultCapacity if 0).
	Capacity int
	// OnFailure, when non-nil, runs once — on the first trace that finishes
	// with a status other than StatusOK — with the recorder holding that
	// trace. Typical use: dump the ring to a file so the window around the
	// first blocked request survives even if the process dies later.
	OnFailure func(*FlightRecorder, *Trace)
}

// Tracer hands out request traces. A nil *Tracer is permanently off; a
// non-nil one can be toggled at runtime (Enable/Disable) and starts enabled.
type Tracer struct {
	enabled atomic.Bool
	reqID   atomic.Int64
	fr      *FlightRecorder

	failureOnce sync.Once
	onFailure   func(*FlightRecorder, *Trace)
}

// New returns an enabled Tracer with a flight recorder of cfg.Capacity.
func New(cfg Config) *Tracer {
	t := &Tracer{
		fr:        NewFlightRecorder(cfg.Capacity),
		onFailure: cfg.OnFailure,
	}
	t.enabled.Store(true)
	return t
}

// Enable turns the tracer on. No-op on nil.
func (t *Tracer) Enable() {
	if t != nil {
		t.enabled.Store(true)
	}
}

// Disable turns the tracer off: Start returns nil until Enable. Traces
// already started continue to record and land in the flight recorder.
func (t *Tracer) Disable() {
	if t != nil {
		t.enabled.Store(false)
	}
}

// Enabled reports whether Start currently hands out traces.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Flight returns the tracer's flight recorder (nil for a nil tracer).
func (t *Tracer) Flight() *FlightRecorder {
	if t == nil {
		return nil
	}
	return t.fr
}

// Start opens a trace for one routing request with a fresh monotonic ID
// (IDs start at 1; 0 is never issued, so a zero Req field in correlated
// logs is distinguishable from the first request). Returns nil — and
// performs no allocation — when the tracer is nil or disabled. The caller
// must Finish the trace to land it in the flight recorder.
//
//wdm:coldpath nil-safe tracing no-op unless a diagnostic tracer is enabled
func (t *Tracer) Start(kind string, s, d int) *Trace {
	if t == nil || !t.enabled.Load() {
		return nil
	}
	return &Trace{
		Req:   t.reqID.Add(1),
		Kind:  kind,
		S:     s,
		T:     d,
		Start: time.Now(),
		tr:    t,
	}
}

// LastID returns the most recently issued request ID (0 before the first).
func (t *Tracer) LastID() int64 {
	if t == nil {
		return 0
	}
	return t.reqID.Load()
}

// AttrKind tags which field of an Attr carries the value.
type AttrKind uint8

// Attribute kinds.
const (
	AttrInt AttrKind = iota
	AttrFloat
	AttrStr
	AttrBool
)

// Attr is one typed key/value attribute on a span or a trace. Exactly one
// of I/F/S is meaningful, selected by Kind (AttrBool stores 0/1 in I).
type Attr struct {
	Key  string
	Kind AttrKind
	I    int64
	F    float64
	S    string
}

// Value returns the attribute's value as an any (for JSON rendering).
func (a Attr) Value() any {
	switch a.Kind {
	case AttrFloat:
		return a.F
	case AttrStr:
		return a.S
	case AttrBool:
		return a.I != 0
	}
	return a.I
}

// Span is one timed phase inside a request trace. T0/T1 are offsets from
// the trace start; T1 < 0 marks a span that was never ended.
type Span struct {
	Name   string
	T0, T1 time.Duration
	Attrs  []Attr
}

// Dur returns the span duration (0 for an unfinished span).
func (s *Span) Dur() time.Duration {
	if s.T1 < 0 {
		return 0
	}
	return s.T1 - s.T0
}

// Trace is the record of one routing request. Fields are exported for
// encoding; writers use the methods. All methods are no-ops on nil, so
// instrumented code never branches.
type Trace struct {
	Req    int64
	Kind   string // algorithm, e.g. "min-cost"
	S, T   int
	Start  time.Time
	End    time.Time // set by Finish
	Status string    // set by Finish
	Spans  []Span
	Attrs  []Attr

	// Payload carries an optional structured result attached by the
	// producer — the router stores the *explain.Report here so the debug
	// endpoints can re-render a request without re-routing it.
	Payload any

	tr *Tracer
}

// ReqID returns the trace's request ID, or -1 for a nil trace — the
// "absent" convention shared with trace.Event.Req.
func (t *Trace) ReqID() int64 {
	if t == nil {
		return -1
	}
	return t.Req
}

// Begin opens a span and returns its index (-1 on a nil trace). Spans may
// nest or interleave freely; they are kept in open order.
//
//wdm:coldpath nil-safe tracing no-op unless a diagnostic tracer is enabled
func (t *Trace) Begin(name string) int {
	if t == nil {
		return -1
	}
	t.Spans = append(t.Spans, Span{Name: name, T0: time.Since(t.Start), T1: -1})
	return len(t.Spans) - 1
}

// EndSpan closes the span opened at index i. Invalid indexes are ignored.
func (t *Trace) EndSpan(i int) {
	if t == nil || i < 0 || i >= len(t.Spans) {
		return
	}
	t.Spans[i].T1 = time.Since(t.Start)
}

// SpanInt attaches an integer attribute to span i.
//
//wdm:coldpath nil-safe tracing no-op unless a diagnostic tracer is enabled
func (t *Trace) SpanInt(i int, key string, v int64) {
	if t == nil || i < 0 || i >= len(t.Spans) {
		return
	}
	t.Spans[i].Attrs = append(t.Spans[i].Attrs, Attr{Key: key, Kind: AttrInt, I: v})
}

// SpanFloat attaches a float attribute to span i.
//
//wdm:coldpath nil-safe tracing no-op unless a diagnostic tracer is enabled
func (t *Trace) SpanFloat(i int, key string, v float64) {
	if t == nil || i < 0 || i >= len(t.Spans) {
		return
	}
	t.Spans[i].Attrs = append(t.Spans[i].Attrs, Attr{Key: key, Kind: AttrFloat, F: v})
}

// SpanStr attaches a string attribute to span i.
//
//wdm:coldpath nil-safe tracing no-op unless a diagnostic tracer is enabled
func (t *Trace) SpanStr(i int, key, v string) {
	if t == nil || i < 0 || i >= len(t.Spans) {
		return
	}
	t.Spans[i].Attrs = append(t.Spans[i].Attrs, Attr{Key: key, Kind: AttrStr, S: v})
}

// SpanBool attaches a boolean attribute to span i.
//
//wdm:coldpath nil-safe tracing no-op unless a diagnostic tracer is enabled
func (t *Trace) SpanBool(i int, key string, v bool) {
	if t == nil || i < 0 || i >= len(t.Spans) {
		return
	}
	b := int64(0)
	if v {
		b = 1
	}
	t.Spans[i].Attrs = append(t.Spans[i].Attrs, Attr{Key: key, Kind: AttrBool, I: b})
}

// Int attaches a request-level integer attribute.
//
//wdm:coldpath nil-safe tracing no-op unless a diagnostic tracer is enabled
func (t *Trace) Int(key string, v int64) {
	if t == nil {
		return
	}
	t.Attrs = append(t.Attrs, Attr{Key: key, Kind: AttrInt, I: v})
}

// Float attaches a request-level float attribute.
//
//wdm:coldpath nil-safe tracing no-op unless a diagnostic tracer is enabled
func (t *Trace) Float(key string, v float64) {
	if t == nil {
		return
	}
	t.Attrs = append(t.Attrs, Attr{Key: key, Kind: AttrFloat, F: v})
}

// Str attaches a request-level string attribute.
//
//wdm:coldpath nil-safe tracing no-op unless a diagnostic tracer is enabled
func (t *Trace) Str(key, v string) {
	if t == nil {
		return
	}
	t.Attrs = append(t.Attrs, Attr{Key: key, Kind: AttrStr, S: v})
}

// SetPayload attaches a structured result to the trace.
//
//wdm:coldpath nil-safe tracing no-op unless a diagnostic tracer is enabled
func (t *Trace) SetPayload(v any) {
	if t != nil {
		t.Payload = v
	}
}

// Finish stamps the end time and status and hands the trace to the flight
// recorder. A trace must not be written to (or Finished again) afterwards:
// concurrent dumpers read it without locks.
//
//wdm:coldpath nil-safe tracing no-op unless a diagnostic tracer is enabled
func (t *Trace) Finish(status string) {
	if t == nil {
		return
	}
	t.End = time.Now()
	t.Status = status
	tr := t.tr
	if tr == nil {
		return
	}
	tr.fr.Add(t)
	if status != StatusOK && tr.onFailure != nil {
		tr.failureOnce.Do(func() { tr.onFailure(tr.fr, t) })
	}
}
