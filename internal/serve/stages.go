package serve

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/timeseries"
	"repro/internal/wdm"
)

// stageNanos is the per-request latency attribution ledger. The shard and
// finishOp stamp contiguous wall-clock segments into it so that
//
//	queue + snap + route + commit + reroute == requestTime
//
// holds by construction (every stamp closes the previous segment; finishOp
// folds the tail into commit). The identity is what makes the stage timers
// trustworthy for capacity work: a stage sum that drifts from the end-to-end
// histogram means unattributed time, and TestStageSumMatchesRequestTime pins
// the two within 5% on a soak.
//
// Segment boundaries:
//
//	queue   t0 → shard dequeue (dispatch, validation, queue wait)
//	snap    dequeue → snapshot loaded (plus registry lookup + path copy for
//	        teardown/reroute)
//	route   snapshot → routing done, first attempt only
//	commit  routing done → commit verdict received, first attempt, plus the
//	        final reply delivery back to the caller
//	reroute whole retry attempts after a lost commit race (snapshot + route +
//	        commit of attempts ≥ 2, attributed as one stage)
//
// All fields live inside the op (already heap-allocated per request), so
// stage accounting adds zero allocations to the //wdm:hotpath shard loops —
// TestProvisionAllocs pins that budget.
type stageNanos struct {
	queue   int64
	snap    int64
	route   int64
	commit  int64
	reroute int64
	tier    core.Tier // routing tier of the first attempt
}

// observeStages folds one finished request's ledger into the process-wide
// stage timers and the per-window telemetry histograms. Zero-valued stages
// are skipped so e.g. teardowns (which never route) do not pollute the route
// histogram's count; skipping zeros cannot break the sum identity because a
// zero adds nothing to any Sum().
func (e *Engine) observeStages(o *op) {
	d := time.Duration(o.st.queue)
	instr.stageQueue.Observe(d)
	if o.st.snap > 0 {
		instr.stageSnapshot.Observe(time.Duration(o.st.snap))
	}
	if o.st.route > 0 {
		rd := time.Duration(o.st.route)
		instr.stageRoute.Observe(rd)
		if o.st.tier == core.TierCandidate {
			instr.stageRouteCand.Observe(rd)
		} else {
			instr.stageRouteEx.Observe(rd)
		}
	}
	if o.st.commit > 0 {
		instr.stageCommit.Observe(time.Duration(o.st.commit))
	}
	if o.st.reroute > 0 {
		instr.stageReroute.Observe(time.Duration(o.st.reroute))
	}
}

// ShardStats is one shard's attribution row in /status: which shard is
// hot, how often its optimistic admissions lose the commit race, and how
// deep its queue is right now.
type ShardStats struct {
	Shard     int   `json:"shard"`
	Ops       int64 `json:"ops"`
	Conflicts int64 `json:"conflicts"`
	Retries   int64 `json:"retries"`
	QueueLen  int   `json:"queue_len"`
}

// shardDetail snapshots the per-shard attribution counters.
func (e *Engine) shardDetail() []ShardStats {
	out := make([]ShardStats, len(e.shards))
	for i, sh := range e.shards {
		out[i] = ShardStats{
			Shard:     sh.idx,
			Ops:       sh.ops.Load(),
			Conflicts: sh.conflicts.Load(),
			Retries:   sh.retries.Load(),
			QueueLen:  len(sh.q),
		}
	}
	return out
}

// noteContention charges commit-time reservation conflicts to the links that
// caused them. It runs on the committer goroutine right after the failed
// reservation rolled back, so a hop whose wavelength is unavailable in cur is
// exactly a hop some other connection beat this op to.
func (e *Engine) noteContention(o *op) {
	cur := e.store.cur
	for _, hs := range [2][]wdm.Hop{o.primary, o.backup} {
		for _, h := range hs {
			if h.Link >= 0 && h.Link < len(e.contention) && !cur.Link(h.Link).HasAvail(h.Wavelength) {
				e.contention[h.Link].Add(1)
			}
		}
	}
}

// topContention returns the k most conflict-charged links, descending, with
// current load joined in from the sealed NetState. It runs once per telemetry
// window (cold path); links that never caused a conflict are omitted.
func (e *Engine) topContention(k int, ns *timeseries.NetState) []timeseries.LinkContention {
	out := make([]timeseries.LinkContention, 0, k)
	for id := range e.contention {
		n := e.contention[id].Load()
		if n == 0 {
			continue
		}
		lc := timeseries.LinkContention{Link: id, Conflicts: n}
		if id < len(ns.Links) {
			lc.From, lc.To, lc.Load = ns.Links[id].From, ns.Links[id].To, ns.Links[id].Load
		}
		out = append(out, lc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Conflicts != out[j].Conflicts {
			return out[i].Conflicts > out[j].Conflicts
		}
		return out[i].Link < out[j].Link
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
