// Package facts propagates per-function properties over the static call
// graph, so analyzers can reason transitively: "everything reachable from an
// annotated hot-path root is hot", "every function that (indirectly) calls a
// mutating method through one of its parameters is itself a mutator". It is
// the fixed-point layer between the call graph and the rules.
package facts

import (
	"repro/internal/lint/callgraph"
)

// Direction selects which way a fact flows along call edges.
type Direction int

const (
	// Forward flows facts from callers to callees: a property of a function
	// extends to everything it calls (reachability from roots).
	Forward Direction = iota
	// Backward flows facts from callees to callers: a property of a callee
	// infects everything that calls it (mutation, panics, blocking).
	Backward
)

// Propagate computes the fixed point of a fact set over g. seed holds the
// initial facts; merge folds a fact arriving over edge e into the fact the
// destination already has (zero value T on first arrival) and reports
// whether the destination changed — returning false stops propagation
// through that node, which is how analyzers encode boundaries. The returned
// map holds the final fact of every node that received one.
func Propagate[T any](g *callgraph.Graph, seed map[*callgraph.Node]T, dir Direction, merge func(dst *callgraph.Node, old T, hadOld bool, in T, e *callgraph.Edge) (T, bool)) map[*callgraph.Node]T {
	out := make(map[*callgraph.Node]T, len(seed))
	work := make([]*callgraph.Node, 0, len(seed))
	// Deterministic worklist order: graph order for seeds, FIFO afterwards.
	for _, n := range g.Order {
		if f, ok := seed[n]; ok {
			out[n] = f
			work = append(work, n)
		}
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		fact := out[n]
		edges := n.Out
		if dir == Backward {
			edges = n.In
		}
		for _, e := range edges {
			dst := e.Callee
			if dir == Backward {
				dst = e.Caller
			}
			old, had := out[dst]
			next, changed := merge(dst, old, had, fact, e)
			if !changed {
				continue
			}
			out[dst] = next
			work = append(work, dst)
		}
	}
	return out
}

// Reach is the reachability special case of Propagate: it flood-fills from
// roots in dir, skipping nodes for which skip returns true (boundaries), and
// returns for every reached node the edge it was first reached over — the
// parent pointers a rule follows to print the full call chain back to a
// root. Roots map to a nil edge.
func Reach(g *callgraph.Graph, roots []*callgraph.Node, dir Direction, skip func(*callgraph.Node) bool) map[*callgraph.Node]*callgraph.Edge {
	seed := make(map[*callgraph.Node]*callgraph.Edge, len(roots))
	for _, r := range roots {
		if skip == nil || !skip(r) {
			seed[r] = nil
		}
	}
	return Propagate(g, seed, dir, func(dst *callgraph.Node, old *callgraph.Edge, had bool, _ *callgraph.Edge, e *callgraph.Edge) (*callgraph.Edge, bool) {
		if had || (skip != nil && skip(dst)) {
			return old, false
		}
		return e, true
	})
}

// Chain reconstructs the call chain that made n reachable, using the parent
// edges Reach returned: the result starts at a root and ends at n. Forward
// reachability gives root → … → n; Backward gives n's transitive caller
// chain in the same root-first order.
func Chain(parents map[*callgraph.Node]*callgraph.Edge, n *callgraph.Node, dir Direction) []*callgraph.Node {
	var rev []*callgraph.Node
	for cur := n; ; {
		rev = append(rev, cur)
		e, ok := parents[cur]
		if !ok || e == nil {
			break
		}
		if dir == Forward {
			cur = e.Caller
		} else {
			cur = e.Callee
		}
		if len(rev) > len(parents)+1 {
			break // defensive: cyclic parents cannot happen, but never loop
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
