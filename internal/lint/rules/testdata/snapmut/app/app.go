// Package app exercises snapshot taint through local aliasing and chained
// calls, outside the serve package.
package app

import "fix/snapmut/wdm"

// refresh clones and mutates the clone: findings on both the direct call
// and the alias.
func refresh(g, prev *wdm.Network, v uint64) *wdm.Network {
	c := g.CloneSince(prev, v)
	c.Use(1)
	n := c
	n.Reserve(2)
	return c
}

// chain mutates an unnamed snapshot immediately: finding.
func chain(g *wdm.Network) {
	g.CloneSince(nil, 0).Use(3)
}

// warm mutates a network it was handed directly — not a snapshot: clean.
func warm(g *wdm.Network) {
	g.Use(0)
}

// inspect reads a snapshot: clean.
func inspect(g *wdm.Network) int {
	c := g.CloneSince(nil, 0)
	return c.Lambdas()
}

// migrate mutates a snapshot under a recorded exception: suppressed.
func migrate(g *wdm.Network) {
	c := g.CloneSince(nil, 0)
	c.Use(0) //wdmlint:ignore snapmut fixture records a deliberate one-off migration
}
