package graph

import (
	"sort"
)

// Yen computes up to K shortest loopless (vertex-simple) paths from s to t
// over the enabled edges, in non-decreasing weight order, using Yen's
// deviation algorithm with Dijkstra as the spur oracle. Edge weights must be
// non-negative. It returns fewer than K paths when the graph does not
// contain them.
func (g *Graph) Yen(s, t, K int) [][]int {
	if K <= 0 || s == t {
		return nil
	}
	first := g.Dijkstra(s)
	if !first.Reached(t) {
		return nil
	}
	A := [][]int{first.PathTo(t, g)}

	type candidate struct {
		path   []int
		weight float64
	}
	var B []candidate
	seen := map[string]bool{pathKey(A[0]): true}

	// Scratch tracking of temporarily disabled edges.
	var disabled []int
	disable := func(id int) {
		if !g.Disabled(id) {
			g.Disable(id)
			disabled = append(disabled, id)
		}
	}
	restore := func() {
		for _, id := range disabled {
			g.Enable(id)
		}
		disabled = disabled[:0]
	}

	for k := 1; k < K; k++ {
		prev := A[k-1]
		// Nodes along prev: spur node i is the head of the i-th prefix.
		spurNode := s
		for i := 0; i <= len(prev)-1; i++ {
			rootPath := prev[:i]
			// Remove edges that would recreate an already-accepted path
			// with the same root.
			for _, accepted := range A {
				if len(accepted) > i && samePrefix(accepted[:i], rootPath) {
					disable(accepted[i])
				}
			}
			// Remove root-path vertices (except the spur node) by
			// disabling all their incident edges.
			for _, id := range rootPath {
				v := g.Edge(id).From
				if v == spurNode {
					continue
				}
				for _, e := range g.Out(v) {
					disable(e)
				}
				for _, e := range g.In(v) {
					disable(e)
				}
			}
			spur := g.Dijkstra(spurNode)
			if spur.Reached(t) {
				spurPath := spur.PathTo(t, g)
				total := append(append([]int(nil), rootPath...), spurPath...)
				key := pathKey(total)
				if !seen[key] {
					seen[key] = true
					B = append(B, candidate{path: total, weight: g.PathWeight(total)})
				}
			}
			restore()
			if i < len(prev) {
				spurNode = g.Edge(prev[i]).To
			}
		}
		if len(B) == 0 {
			break
		}
		sort.SliceStable(B, func(a, b int) bool { return B[a].weight < B[b].weight })
		A = append(A, B[0].path)
		B = B[1:]
	}
	return A
}

func samePrefix(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func pathKey(path []int) string {
	// Compact byte encoding of the edge-ID sequence.
	buf := make([]byte, 0, len(path)*4)
	for _, id := range path {
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(buf)
}
