// Package app exercises the errcheck-lite rule against the fixture recorder
// and write-path file handles.
package app

import (
	"context"
	"io"
	"os"

	"fix/errcheck/http"
	"fix/errcheck/obs"
	"fix/errcheck/pprof"
	"fix/errcheck/serve"
	"fix/errcheck/timeseries"
	"fix/errcheck/trace"
)

// DropFlush discards the flush error: finding.
func DropFlush(r *trace.Recorder) {
	r.Record(1)
	r.Flush()
}

// DeferClose discards the close error at exit: finding.
func DeferClose(r *trace.Recorder) {
	defer r.Close()
	r.Record(2)
}

// Checked propagates the flush error: clean.
func Checked(r *trace.Recorder) error {
	r.Record(3)
	return r.Flush()
}

// WriteFile creates a file and drops the close error after writing: finding.
func WriteFile(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}

// ReadFile only reads, so the deferred close has nothing buffered: clean.
func ReadFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 8)
	n, err := f.Read(buf)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// Shutdown drops the close error on a recorder that was already flushed; the
// directive records why that is safe.
func Shutdown(r *trace.Recorder) {
	if err := r.Flush(); err != nil {
		return
	}
	r.Close() //wdmlint:ignore errcheck-lite already flushed, close only releases the sink
}

// BadDirective carries an ignore comment with no reason: the directive is
// rejected and the finding stays.
func BadDirective(r *trace.Recorder) {
	r.Flush() //wdmlint:ignore errcheck-lite
}

// DropDump discards the flight-recorder dump error: finding.
func DropDump(f *obs.Flight, w io.Writer) {
	f.Add(1)
	f.Dump(w)
}

// DropDumpFile discards the dump-to-file error in a goroutine: finding.
func DropDumpFile(f *obs.Flight) {
	go f.DumpFile("/tmp/flight.jsonl")
}

// CheckedDump propagates the dump error: clean.
func CheckedDump(f *obs.Flight, w io.Writer) error {
	f.Add(2)
	return f.Dump(w)
}

// DropSinkFlush discards the telemetry sink flush error: finding.
func DropSinkFlush(s *timeseries.JSONL) {
	s.WriteSnapshot(1)
	s.Flush()
}

// DeferSinkClose discards the sink close error at exit: finding.
func DeferSinkClose(s *timeseries.JSONL) {
	defer s.Close()
	s.WriteSnapshot(2)
}

// CheckedSink propagates the close error: clean.
func CheckedSink(s *timeseries.JSONL) error {
	s.WriteSnapshot(3)
	return s.Close()
}

// DropShutdown discards the graceful-drain verdict: finding.
func DropShutdown(srv *http.Server, ctx context.Context) {
	srv.Shutdown(ctx)
}

// DeferShutdown discards it at exit: finding.
func DeferShutdown(srv *http.Server, ctx context.Context) error {
	defer srv.Shutdown(ctx)
	return srv.ListenAndServe()
}

// CheckedShutdown propagates the drain verdict: clean.
func CheckedShutdown(srv *http.Server, ctx context.Context) error {
	return srv.Shutdown(ctx)
}

// DropProfileStart discards the CPU-profile start verdict: finding.
func DropProfileStart(w io.Writer) {
	pprof.StartCPUProfile(w)
	defer pprof.StopCPUProfile()
}

// DropHeapProfile discards the heap-profile write error: finding.
func DropHeapProfile(w io.Writer) {
	pprof.WriteHeapProfile(w)
}

// CheckedProfileStart propagates the start verdict: clean.
func CheckedProfileStart(w io.Writer) error {
	if err := pprof.StartCPUProfile(w); err != nil {
		return err
	}
	defer pprof.StopCPUProfile()
	return pprof.WriteHeapProfile(w)
}

// DropEngineClose discards the engine's first sink error: finding.
func DropEngineClose(e *serve.Engine) {
	e.Close()
}

// CheckedEngineClose propagates it: clean.
func CheckedEngineClose(e *serve.Engine) error {
	if err := e.Start(); err != nil {
		return err
	}
	return e.Close()
}
