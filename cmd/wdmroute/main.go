// wdmroute routes a single connection request on a named topology and
// prints the resulting primary/backup semilightpaths with their wavelength
// assignments, cost breakdown, and load contribution:
//
//	wdmroute -topo nsfnet -w 8 -s 0 -t 13 -algo min-load-cost
//	wdmroute -topo waxman -n 30 -seed 7 -s 0 -t 29 -algo min-cost
//
// With -explain the request is routed through a traced router and the full
// explain report is rendered instead: per-hop w(e,λ), per-node conversion
// costs c_v(λp,λq), phase timings mapped to Theorem 1 terms, and the
// Theorem 2 factor-2 bound check. -json emits the same report as JSON.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/explain"
	"repro/internal/wdm"
)

func route(r *core.Router, algo string, net *wdm.Network, s, t int) (*core.Result, bool, error) {
	switch algo {
	case "min-cost":
		res, ok := r.ApproxMinCost(net, s, t)
		return res, ok, nil
	case "min-load":
		res, ok := r.MinLoad(net, s, t)
		return res, ok, nil
	case "min-load-cost":
		res, ok := r.MinLoadCost(net, s, t)
		return res, ok, nil
	case "two-step":
		res, ok := r.TwoStepMinCost(net, s, t)
		return res, ok, nil
	case "node-disjoint":
		res, ok := r.ApproxMinCostNodeDisjoint(net, s, t)
		return res, ok, nil
	}
	return nil, false, fmt.Errorf("unknown algorithm %q (min-cost, min-load, min-load-cost, two-step, node-disjoint)", algo)
}

func main() {
	topoName := flag.String("topo", "nsfnet", "topology: nsfnet, arpa2, ring, grid, waxman, complete")
	file := flag.String("file", "", "load topology from a JSON file instead of -topo")
	n := flag.Int("n", 16, "node count for parametric topologies")
	w := flag.Int("w", 8, "wavelengths per fiber")
	seed := flag.Int64("seed", 1, "seed for random topologies")
	s := flag.Int("s", 0, "source node")
	t := flag.Int("t", 13, "destination node")
	algo := flag.String("algo", "min-cost", "routing algorithm")
	explainFlag := flag.Bool("explain", false, "print the full route explanation (hops, conversions, phases, Theorem 2 bound)")
	jsonFlag := flag.Bool("json", false, "with -explain, emit the report as JSON")
	version := cli.VersionFlag()
	flag.Parse()
	cli.HandleVersion(*version)

	var net *wdm.Network
	var err error
	net, err = cli.LoadOrBuild(*file, *topoName, *n, *w, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *s < 0 || *s >= net.Nodes() || *t < 0 || *t >= net.Nodes() || *s == *t {
		fmt.Fprintf(os.Stderr, "invalid request %d→%d on %d-node topology\n", *s, *t, net.Nodes())
		os.Exit(1)
	}

	// A single request is cheap, so tracing is always on: the explain report
	// is the trace payload, rendered with -explain and discarded otherwise.
	tr := obs.New(obs.Config{Capacity: 1})
	router := core.NewRouter(nil)
	router.SetTracer(tr)
	r, ok, err := route(router, *algo, net, *s, *t)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !ok {
		fmt.Printf("request %d→%d: no two edge-disjoint semilightpaths exist\n", *s, *t)
		os.Exit(2)
	}

	if *explainFlag {
		rep, okRep := payload(tr.Flight().Find(router.LastTraceID()))
		if !okRep {
			fmt.Fprintf(os.Stderr, "internal error: no explain report for request %d→%d\n", *s, *t)
			os.Exit(1)
		}
		if *jsonFlag {
			err = rep.WriteJSON(os.Stdout)
		} else {
			fmt.Printf("topology %s (n=%d, m=%d directed links, W=%d)\n",
				*topoName, net.Nodes(), net.Links(), net.W())
			err = rep.WriteText(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("topology   %s (n=%d, m=%d directed links, W=%d)\n",
		*topoName, net.Nodes(), net.Links(), net.W())
	fmt.Printf("request    %d → %d via %s\n", *s, *t, *algo)
	fmt.Printf("primary    %s\n", r.Primary.Format(net))
	fmt.Printf("           link cost %.4g + conversion cost %.4g = %.4g\n",
		r.Primary.LinkCost(net), r.Primary.ConvCost(net), r.Primary.Cost(net))
	fmt.Printf("backup     %s\n", r.Backup.Format(net))
	fmt.Printf("           link cost %.4g + conversion cost %.4g = %.4g\n",
		r.Backup.LinkCost(net), r.Backup.ConvCost(net), r.Backup.Cost(net))
	fmt.Printf("pair cost  %.4g (aux-graph bound ω = %.4g)\n", r.Cost, r.AuxWeight)
	fmt.Printf("path load  %.4g", r.PathLoad)
	if r.Threshold > 0 {
		fmt.Printf("  (MinCog threshold ϑ = %.4g after %d rounds)", r.Threshold, r.Iterations)
	}
	fmt.Println()
}

func payload(tc *obs.Trace) (*explain.Report, bool) {
	if tc == nil {
		return nil, false
	}
	rep, ok := tc.Payload.(*explain.Report)
	return rep, ok
}
