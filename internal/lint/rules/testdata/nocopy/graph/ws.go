// Package graph is a fixture defining a registered workspace type.
package graph

// Workspace owns generation-stamped scratch state; copying it forks the
// generation counter and the copy reads stale memory.
type Workspace struct {
	dist []float64
	gen  uint32
}

// Reset advances the generation.
func (ws *Workspace) Reset() { ws.gen++ }

// Len reports the scratch size.
func (ws *Workspace) Len() int { return len(ws.dist) }

// Gen reports the current generation.
func (ws *Workspace) Gen() uint32 { return ws.gen }
