package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime/debug"
	"sync"

	"repro/internal/auxgraph"
	"repro/internal/core"
	"repro/internal/disjoint"
	"repro/internal/metrics"
	"repro/internal/netsim"

	// Register the pprof handlers on http.DefaultServeMux for StartPprof.
	_ "net/http/pprof"
)

// EnableAllMetrics creates a registry and switches on instrumentation in
// every engine package (auxgraph, disjoint, core, netsim). Call once at
// process start when any observability flag is set; without it the
// instruments stay nil and cost nothing.
func EnableAllMetrics() *metrics.Registry {
	r := metrics.NewRegistry()
	auxgraph.EnableMetrics(r)
	disjoint.EnableMetrics(r)
	core.EnableMetrics(r)
	netsim.EnableMetrics(r)
	return r
}

var metricsHandlerOnce sync.Once

// StartPprof serves net/http/pprof under /debug/pprof/ on addr (e.g.
// "localhost:6060") in a background goroutine and returns the bound address.
// When r is non-nil, a Prometheus /metrics endpoint is served too, so a
// long-running simulation can be scraped while it works.
func StartPprof(addr string, r *metrics.Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	if r != nil {
		metricsHandlerOnce.Do(func() {
			http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "text/plain; version=0.0.4")
				_ = r.WritePrometheus(w)
			})
		})
	}
	go func() { _ = http.Serve(ln, nil) }()
	return ln.Addr().String(), nil
}

// Version renders the module path and VCS revision baked into the binary by
// the Go toolchain (runtime/debug.ReadBuildInfo).
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "repro (no build info)"
	}
	rev, modified := "", false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			modified = s.Value == "true"
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		rev = "devel"
	}
	if modified {
		rev += "+dirty"
	}
	return fmt.Sprintf("%s %s (%s, rev %s)", bi.Main.Path, bi.Main.Version, bi.GoVersion, rev)
}

// VersionFlag registers the shared -version flag on the default flag set.
// Call HandleVersion with its value right after flag.Parse.
func VersionFlag() *bool {
	return flag.Bool("version", false, "print version information and exit")
}

// HandleVersion prints the version and exits when show is set.
func HandleVersion(show bool) {
	if show {
		fmt.Println(Version())
		os.Exit(0)
	}
}

// SimStats is the JSON-friendly projection of a netsim run's counters,
// embedded in the end-of-run summary so benchmark trajectories can be
// diffed across commits by machine.
type SimStats struct {
	Offered      int     `json:"offered"`
	Accepted     int     `json:"accepted"`
	Blocked      int     `json:"blocked"`
	BlockingProb float64 `json:"blocking_prob"`
	CostMean     float64 `json:"cost_mean"`
	CostMax      float64 `json:"cost_max"`
	HopsMean     float64 `json:"hops_mean"`
	MeanLoad     float64 `json:"mean_load"`
	MaxLoad      float64 `json:"max_load"`
	Horizon      float64 `json:"horizon"`

	Reconfigs     int `json:"reconfigs,omitempty"`
	ReroutedConns int `json:"rerouted_conns,omitempty"`

	FailureEvents    int     `json:"failure_events,omitempty"`
	AffectedConns    int     `json:"affected_conns,omitempty"`
	Recovered        int     `json:"recovered,omitempty"`
	RecoveryFailed   int     `json:"recovery_failed,omitempty"`
	BackupLost       int     `json:"backup_lost,omitempty"`
	AvailabilityMean float64 `json:"availability_mean,omitempty"`
}

// SummarizeSim projects the simulator metrics into SimStats.
func SummarizeSim(m *netsim.Metrics) SimStats {
	return SimStats{
		Offered:          m.Offered,
		Accepted:         m.Accepted,
		Blocked:          m.Blocked,
		BlockingProb:     m.BlockingProbability(),
		CostMean:         m.Cost.Mean(),
		CostMax:          m.Cost.Max(),
		HopsMean:         m.Hops.Mean(),
		MeanLoad:         m.MeanLoad(),
		MaxLoad:          m.MaxNetworkLoad,
		Horizon:          m.Horizon,
		Reconfigs:        m.Reconfigs,
		ReroutedConns:    m.ReroutedConns,
		FailureEvents:    m.FailureEvents,
		AffectedConns:    m.AffectedConns,
		Recovered:        m.Recovered,
		RecoveryFailed:   m.RecoveryFailed,
		BackupLost:       m.BackupLost,
		AvailabilityMean: m.Availability.Mean(),
	}
}

// RunSummary is the structured end-of-run document emitted by -summary-out:
// the binary version, the run configuration, the simulator statistics, and a
// snapshot of every live metric.
type RunSummary struct {
	Version string                   `json:"version"`
	Config  any                      `json:"config"`
	Stats   any                      `json:"stats"`
	Metrics []metrics.MetricSnapshot `json:"metrics,omitempty"`
}

func writeSummaryTo(w io.Writer, cfg, simStats any, r *metrics.Registry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(RunSummary{
		Version: Version(),
		Config:  cfg,
		Stats:   simStats,
		Metrics: r.Snapshot(),
	})
}

// WriteSummary writes a RunSummary as indented JSON to path. r may be nil
// (the metrics section is then omitted).
func WriteSummary(path string, cfg, simStats any, r *metrics.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = writeSummaryTo(f, cfg, simStats, r)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
