// Package workload generates connection-request streams for the dynamic
// traffic model of §2: requests "arrive to and depart from the network in a
// random manner" and are processed one by one. The canonical generator is a
// Poisson arrival process with exponentially distributed holding times and
// uniformly random distinct endpoints, parameterised by offered load in
// Erlang (arrival rate × mean holding time). Every generator is
// deterministic for a given seed.
package workload

import (
	"math"
	"math/rand"
)

// Request is one connection request.
type Request struct {
	ID      int
	Src     int
	Dst     int
	Arrival float64 // arrival time
	Holding float64 // holding duration; the connection departs at Arrival+Holding
}

// Departure returns the teardown time of the request.
func (r Request) Departure() float64 { return r.Arrival + r.Holding }

// PoissonConfig parameterises Poisson.
type PoissonConfig struct {
	// Nodes is the number of network nodes (endpoints drawn uniformly,
	// src ≠ dst).
	Nodes int
	// ArrivalRate is the Poisson arrival rate λ (requests per time unit).
	ArrivalRate float64
	// MeanHolding is the mean of the exponential holding time 1/μ.
	MeanHolding float64
	// Count is the number of requests to generate.
	Count int
	// Seed makes the stream reproducible.
	Seed int64
	// HotPairs, when non-empty, draws this fraction of requests from the
	// listed (src, dst) pairs instead of uniformly (skewed traffic).
	HotPairs []Pair
	// HotFraction is the probability a request uses a hot pair (0 disables).
	HotFraction float64
}

// Pair is an endpoint pair.
type Pair struct{ Src, Dst int }

// OfferedLoad returns the offered traffic in Erlang, λ/μ.
func (c PoissonConfig) OfferedLoad() float64 { return c.ArrivalRate * c.MeanHolding }

// Poisson generates a request stream per the config. It panics on invalid
// parameters.
func Poisson(c PoissonConfig) []Request {
	if c.Nodes < 2 {
		panic("workload: need at least 2 nodes")
	}
	if c.ArrivalRate <= 0 || c.MeanHolding <= 0 || c.Count < 0 {
		panic("workload: invalid Poisson parameters")
	}
	if c.HotFraction < 0 || c.HotFraction > 1 {
		panic("workload: invalid hot fraction")
	}
	if c.HotFraction > 0 && len(c.HotPairs) == 0 {
		panic("workload: hot fraction without hot pairs")
	}
	rng := rand.New(rand.NewSource(c.Seed))
	reqs := make([]Request, c.Count)
	t := 0.0
	for i := range reqs {
		t += rng.ExpFloat64() / c.ArrivalRate
		var src, dst int
		if c.HotFraction > 0 && rng.Float64() < c.HotFraction {
			p := c.HotPairs[rng.Intn(len(c.HotPairs))]
			src, dst = p.Src, p.Dst
		} else {
			src = rng.Intn(c.Nodes)
			dst = rng.Intn(c.Nodes - 1)
			if dst >= src {
				dst++
			}
		}
		reqs[i] = Request{
			ID:      i,
			Src:     src,
			Dst:     dst,
			Arrival: t,
			Holding: rng.ExpFloat64() * c.MeanHolding,
		}
	}
	return reqs
}

// Batch generates count simultaneous (arrival 0, infinite holding) requests
// with uniform random distinct endpoints — the static provisioning workload
// used by the cost-ratio experiments.
func Batch(nodes, count int, seed int64) []Request {
	if nodes < 2 || count < 0 {
		panic("workload: invalid batch parameters")
	}
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]Request, count)
	for i := range reqs {
		src := rng.Intn(nodes)
		dst := rng.Intn(nodes - 1)
		if dst >= src {
			dst++
		}
		reqs[i] = Request{ID: i, Src: src, Dst: dst, Holding: math.Inf(1)}
	}
	return reqs
}

// AllPairs lists every ordered (src, dst) pair once, arrival 0 — used by
// exhaustive per-pair measurements on fixed topologies.
func AllPairs(nodes int) []Request {
	var reqs []Request
	id := 0
	for s := 0; s < nodes; s++ {
		for d := 0; d < nodes; d++ {
			if s == d {
				continue
			}
			reqs = append(reqs, Request{ID: id, Src: s, Dst: d, Holding: math.Inf(1)})
			id++
		}
	}
	return reqs
}
