package rules

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/callgraph"
	"repro/internal/lint/facts"
)

// HotAlloc guards the steady-state allocation-free routing path. Functions
// annotated
//
//	//wdm:hotpath
//
// in their doc comment are roots of the per-request hot path (DijkstraInto,
// ReweightAt, Suurballe, AssignInto, the netsim event loop, the serve shard
// route path); everything they transitively reach over the static call graph
// inherits the contract: no allocation-inducing constructs. The runtime
// alloc gates (`!race` alloc tests) pin the allocation count of the paths
// they exercise — this rule covers the branches they do not, at compile
// time, and reports the full call chain from the annotated root so a finding
// deep in a helper is actionable.
//
// Amortised subroutines that a hot path legitimately enters but that are not
// themselves steady-state (cache-miss skeleton builds, one-time table
// construction, tracing with the tracer enabled) opt out with
//
//	//wdm:coldpath <reason>
//
// which stops propagation at that function; the reason is mandatory.
// Growth-guarded allocations — a make or append under an if whose condition
// reads cap() or len() — are the workspace warm-up idiom and are exempt, as
// is append whose first operand is a slice expression (the append(buf[:0],
// …) reuse idiom).
var HotAlloc = &lint.Analyzer{
	Name:      "hotalloc",
	Doc:       "functions reachable from a //wdm:hotpath root must not allocate (make/new, composite literals, growing append, fmt.Sprintf, string conversions, boxing, capturing closures)",
	RunGlobal: runHotAlloc,
}

const (
	hotDirective  = "//wdm:hotpath"
	coldDirective = "//wdm:coldpath"
)

// haAllocators are external (non-analyzed) callees known to allocate.
var haAllocators = map[string]bool{
	"fmt.Sprintf":  true,
	"fmt.Sprint":   true,
	"fmt.Sprintln": true,
	"fmt.Errorf":   true,
	"fmt.Appendf":  true,
	"errors.New":   true,
}

func runHotAlloc(gp *lint.GlobalPass) {
	g := callgraph.For(gp.Cache, gp.Pkgs)

	var roots []*callgraph.Node
	cold := map[*callgraph.Node]bool{}
	for _, n := range g.Order {
		switch dir, reason := haDirective(n.Decl.Doc); dir {
		case hotDirective:
			roots = append(roots, n)
		case coldDirective:
			if reason == "" {
				gp.Reportf(n.Pkg, n.Decl.Pos(),
					"%s on %s is missing its reason: want %s <why this function may allocate>",
					coldDirective, n.Func.Name(), coldDirective)
			}
			cold[n] = true
		}
	}
	parents := facts.Reach(g, roots, facts.Forward, func(n *callgraph.Node) bool { return cold[n] })

	// Deterministic report order: nodes in source order.
	hot := make([]*callgraph.Node, 0, len(parents))
	for _, n := range g.Order {
		if _, ok := parents[n]; ok {
			hot = append(hot, n)
		}
	}
	for _, n := range hot {
		chain := haChain(parents, n)
		haScan(gp, n, chain)
	}
}

// haDirective extracts a hotpath/coldpath directive from a doc comment.
func haDirective(doc *ast.CommentGroup) (directive, reason string) {
	if doc == nil {
		return "", ""
	}
	for _, c := range doc.List {
		switch {
		case c.Text == hotDirective || strings.HasPrefix(c.Text, hotDirective+" "):
			return hotDirective, ""
		case strings.HasPrefix(c.Text, coldDirective):
			return coldDirective, strings.TrimSpace(strings.TrimPrefix(c.Text, coldDirective))
		}
	}
	return "", ""
}

// haChain renders the call chain from the annotated root to n.
func haChain(parents map[*callgraph.Node]*callgraph.Edge, n *callgraph.Node) string {
	nodes := facts.Chain(parents, n, facts.Forward)
	parts := make([]string, len(nodes))
	for i, c := range nodes {
		parts[i] = haFuncLabel(c.Func)
	}
	return strings.Join(parts, " → ")
}

// haFuncLabel renders pkg.Func or pkg.(Recv).Method.
func haFuncLabel(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// haScan walks one hot function's body (nested literals included — the call
// graph attributes them here) and reports every allocation-inducing
// construct.
func haScan(gp *lint.GlobalPass, n *callgraph.Node, chain string) {
	if n.Decl.Body == nil {
		return
	}
	info := n.Pkg.Info
	report := func(pos token.Pos, desc string) {
		gp.Reportf(n.Pkg, pos, "%s on the hot path (%s)", desc, chain)
	}
	var walk func(node ast.Node, guarded bool, inLit *ast.FuncLit)
	walk = func(root ast.Node, guarded bool, inLit *ast.FuncLit) {
		ast.Inspect(root, func(node ast.Node) bool {
			switch x := node.(type) {
			case *ast.IfStmt:
				g := guarded || haGrowthGuard(x.Cond, info)
				if x.Init != nil {
					walk(x.Init, guarded, inLit)
				}
				walk(x.Cond, guarded, inLit)
				walk(x.Body, g, inLit)
				if x.Else != nil {
					walk(x.Else, guarded, inLit)
				}
				return false
			case *ast.ForStmt:
				// A for loop whose condition reads cap/len is the
				// grow-until-big-enough warm-up shape.
				if x.Cond != nil && haGrowthGuard(x.Cond, info) {
					if x.Init != nil {
						walk(x.Init, guarded, inLit)
					}
					walk(x.Cond, guarded, inLit)
					if x.Post != nil {
						walk(x.Post, true, inLit)
					}
					walk(x.Body, true, inLit)
					return false
				}
			case *ast.FuncLit:
				if caps := haCaptures(x, info); len(caps) > 0 {
					report(x.Pos(), fmt.Sprintf("closure capturing %s allocates", strings.Join(caps, ", ")))
				}
				walk(x.Body, guarded, x)
				return false
			case *ast.UnaryExpr:
				if x.Op == token.AND && !guarded {
					if _, ok := unparen(x.X).(*ast.CompositeLit); ok {
						report(x.Pos(), "&composite-literal allocates")
					}
				}
			case *ast.CompositeLit:
				if guarded {
					return true
				}
				if t := info.TypeOf(x); t != nil {
					switch t.Underlying().(type) {
					case *types.Slice:
						report(x.Pos(), "slice literal allocates")
					case *types.Map:
						report(x.Pos(), "map literal allocates")
					}
				}
			case *ast.CallExpr:
				haScanCall(gp, n, x, guarded, report)
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Lhs {
						haCheckBox(info, info.TypeOf(x.Lhs[i]), x.Rhs[i], "assignment boxes", report)
					}
				}
			case *ast.ReturnStmt:
				sig := haEnclosingSig(info, n, inLit)
				if sig != nil && sig.Results().Len() == len(x.Results) {
					for i, r := range x.Results {
						haCheckBox(info, sig.Results().At(i).Type(), r, "return boxes", report)
					}
				}
			}
			return true
		})
	}
	walk(n.Decl.Body, false, nil)
}

// haScanCall classifies one call on the hot path: builtin allocators,
// denylisted external allocators, string conversions, and boxing at the
// arguments of analyzed callees.
func haScanCall(gp *lint.GlobalPass, n *callgraph.Node, call *ast.CallExpr, guarded bool, report func(token.Pos, string)) {
	info := n.Pkg.Info
	fun := unparen(call.Fun)

	// Conversions: string ↔ []byte/[]rune allocate; conversions to
	// interface types box.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		to := tv.Type
		if len(call.Args) == 1 {
			from := info.TypeOf(call.Args[0])
			if haStringConv(from, to) {
				report(call.Pos(), "string ↔ []byte conversion allocates")
				return
			}
			if types.IsInterface(to) && from != nil && !types.IsInterface(from) && !haIsNil(info, call.Args[0]) {
				report(call.Pos(), fmt.Sprintf("conversion to %s boxes", types.TypeString(to, types.RelativeTo(n.Pkg.Types))))
				return
			}
		}
		return
	}
	if tv, ok := info.Types[fun]; ok && tv.IsBuiltin() {
		name := ""
		switch f := fun.(type) {
		case *ast.Ident:
			name = f.Name
		case *ast.SelectorExpr:
			name = f.Sel.Name
		}
		switch name {
		case "make":
			if !guarded {
				report(call.Pos(), "make allocates")
			}
		case "new":
			if !guarded {
				report(call.Pos(), "new allocates")
			}
		case "append":
			if guarded || len(call.Args) == 0 {
				return
			}
			if _, ok := unparen(call.Args[0]).(*ast.SliceExpr); ok {
				return // append(buf[:0], …) reuse idiom
			}
			report(call.Pos(), "append may grow its backing array")
		}
		return
	}

	// Denylisted external allocators.
	if name, ok := haCalleeName(info, fun); ok && haAllocators[name] {
		if !guarded {
			report(call.Pos(), name+" allocates")
		}
		return
	}

	// Boxing at call arguments: a concrete value passed for an interface
	// parameter.
	sig := haCallSig(info, fun)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // passing a slice through …, no per-arg boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		haCheckBox(info, pt, arg, "argument boxes", report)
	}
}

// haCheckBox reports a concrete, non-nil value converted implicitly to an
// interface type.
func haCheckBox(info *types.Info, to types.Type, from ast.Expr, what string, report func(token.Pos, string)) {
	if to == nil || !types.IsInterface(to) {
		return
	}
	ft := info.TypeOf(from)
	if ft == nil || types.IsInterface(ft) || haIsNil(info, from) {
		return
	}
	report(from.Pos(), fmt.Sprintf("%s a %s into an interface", what, ft.String()))
}

// haStringConv reports a string ↔ []byte or string ↔ []rune conversion.
func haStringConv(from, to types.Type) bool {
	if from == nil || to == nil {
		return false
	}
	str := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	byteish := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
			b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (str(from) && byteish(to)) || (byteish(from) && str(to))
}

// haIsNil reports whether e is the predeclared nil.
func haIsNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// haCalleeName returns "pkg.Func" for calls into non-analyzed packages.
func haCalleeName(info *types.Info, fun ast.Expr) (string, bool) {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	return fn.Pkg().Name() + "." + fn.Name(), true
}

// haCallSig resolves the signature of a call for boxing analysis.
func haCallSig(info *types.Info, fun ast.Expr) *types.Signature {
	t := info.TypeOf(fun)
	if t == nil {
		return nil
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	return sig
}

// haGrowthGuard reports whether cond reads cap() or len() — the workspace
// warm-up guard shape (`if cap(ws.buf) < n { ws.buf = make(...) }`).
func haGrowthGuard(cond ast.Expr, info *types.Info) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsBuiltin() && (id.Name == "cap" || id.Name == "len") {
			found = true
			return false
		}
		return true
	})
	return found
}

// haCaptures lists the free variables of lit: identifiers resolving to
// variables declared outside the literal (excluding package-level state,
// which needs no closure cell).
func haCaptures(lit *ast.FuncLit, info *types.Info) []string {
	seen := map[*types.Var]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Parent() == nil {
			return true
		}
		// Package-level variables are not captured.
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			seen[v] = true
			names = append(names, v.Name())
		}
		return true
	})
	sort.Strings(names)
	return names
}

// haEnclosingSig returns the signature whose results a return statement in
// inLit (or the declared function when nil) targets.
func haEnclosingSig(info *types.Info, n *callgraph.Node, inLit *ast.FuncLit) *types.Signature {
	if inLit != nil {
		if t := info.TypeOf(inLit); t != nil {
			if sig, ok := t.(*types.Signature); ok {
				return sig
			}
		}
		return nil
	}
	return n.Func.Type().(*types.Signature)
}
