// Package ilp solves small mixed 0/1 integer programs by LP-relaxation
// branch-and-bound, the exact machinery behind the paper's §3.1 formulation.
// Designated binary variables are branched to {0, 1}; all other variables
// stay continuous (the z_ijk/t_ijk conversion-cost terms of Eqs. 17–21).
package ilp

import (
	"fmt"
	"math"

	"repro/internal/lp"
)

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal means the best integer-feasible solution was proven optimal.
	Optimal Status = iota
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// NodeLimit means the search was truncated; Obj/X hold the incumbent if
	// Found is true.
	NodeLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case NodeLimit:
		return "node-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Config tunes the search.
type Config struct {
	// MaxNodes caps the number of branch-and-bound nodes (0 = 200000).
	MaxNodes int
	// IntTol is the integrality tolerance (0 = 1e-6).
	IntTol float64
}

// Result is the outcome of Solve.
type Result struct {
	Status Status
	// Found reports whether any integer-feasible incumbent was discovered.
	Found bool
	// X is the incumbent solution (valid when Found).
	X []float64
	// Obj is the incumbent objective (valid when Found).
	Obj float64
	// Nodes is the number of branch-and-bound nodes explored.
	Nodes int
}

// Solve minimizes the given problem with the listed variables restricted to
// {0, 1}. Upper bounds x_j ≤ 1 for the binaries are added automatically.
func Solve(base *lp.Problem, binaries []int, cfg Config) Result {
	if cfg.MaxNodes == 0 {
		cfg.MaxNodes = 200000
	}
	if cfg.IntTol == 0 {
		cfg.IntTol = 1e-6
	}
	root := base.Clone()
	for _, j := range binaries {
		root.AddConstraint(map[int]float64{j: 1}, lp.LE, 1)
	}

	type node struct {
		fix map[int]float64 // var -> 0 or 1
	}
	stack := []node{{fix: map[int]float64{}}}
	res := Result{Status: Infeasible}
	best := math.Inf(1)

	for len(stack) > 0 {
		if res.Nodes >= cfg.MaxNodes {
			res.Status = NodeLimit
			return res
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Nodes++

		prob := root.Clone()
		for j, v := range nd.fix {
			prob.AddConstraint(map[int]float64{j: 1}, lp.EQ, v)
		}
		sol := prob.Solve()
		if sol.Status != lp.Optimal {
			continue // infeasible or pathological subproblem: prune
		}
		if sol.Obj >= best-1e-9 {
			continue // bound
		}
		// Find the most fractional binary.
		branch := -1
		worst := cfg.IntTol
		for _, j := range binaries {
			f := math.Abs(sol.X[j] - math.Round(sol.X[j]))
			if f > worst {
				worst = f
				branch = j
			}
		}
		if branch == -1 {
			// Integer feasible: new incumbent.
			best = sol.Obj
			res.Found = true
			res.Obj = sol.Obj
			res.X = append([]float64(nil), sol.X...)
			// Snap binaries exactly.
			for _, j := range binaries {
				res.X[j] = math.Round(res.X[j])
			}
			continue
		}
		// Branch: explore the rounding-nearest child last (popped first).
		near := math.Round(sol.X[branch])
		far := 1 - near
		fixFar := cloneFix(nd.fix)
		fixFar[branch] = far
		stack = append(stack, node{fix: fixFar})
		fixNear := cloneFix(nd.fix)
		fixNear[branch] = near
		stack = append(stack, node{fix: fixNear})
	}
	if res.Found {
		res.Status = Optimal
	}
	return res
}

func cloneFix(m map[int]float64) map[int]float64 {
	c := make(map[int]float64, len(m)+1)
	for k, v := range m {
		c[k] = v
	}
	return c
}
