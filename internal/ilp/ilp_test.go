package ilp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestKnapsack(t *testing.T) {
	// max 10a + 6b + 4c s.t. a+b+c ≤ 2 (binary) → min −obj.
	// Best pair: a+b = 16.
	p := lp.NewProblem(3, []float64{-10, -6, -4})
	p.AddConstraint(map[int]float64{0: 1, 1: 1, 2: 1}, lp.LE, 2)
	r := Solve(p, []int{0, 1, 2}, Config{})
	if r.Status != Optimal || !r.Found {
		t.Fatalf("status = %v found=%v", r.Status, r.Found)
	}
	if !approx(r.Obj, -16) {
		t.Fatalf("obj = %g, want -16", r.Obj)
	}
	if !approx(r.X[0], 1) || !approx(r.X[1], 1) || !approx(r.X[2], 0) {
		t.Fatalf("x = %v", r.X)
	}
}

func TestFractionalLPIntegerGap(t *testing.T) {
	// LP relaxation of: min −(x+y), x+y ≤ 1.5, binary → LP gives 1.5,
	// ILP must give 1 (one variable at 1).
	p := lp.NewProblem(2, []float64{-1, -1})
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, lp.LE, 1.5)
	r := Solve(p, []int{0, 1}, Config{})
	if r.Status != Optimal || !approx(r.Obj, -1) {
		t.Fatalf("status=%v obj=%g", r.Status, r.Obj)
	}
	if math.Abs(r.X[0]+r.X[1]-1) > 1e-6 {
		t.Fatalf("x = %v, want exactly one selected", r.X)
	}
}

func TestInfeasibleILP(t *testing.T) {
	// x binary with x ≥ 0.4 and x ≤ 0.6: LP feasible, no integer point.
	p := lp.NewProblem(1, []float64{1})
	p.AddConstraint(map[int]float64{0: 1}, lp.GE, 0.4)
	p.AddConstraint(map[int]float64{0: 1}, lp.LE, 0.6)
	r := Solve(p, []int{0}, Config{})
	if r.Status != Infeasible || r.Found {
		t.Fatalf("status = %v found=%v", r.Status, r.Found)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min y subject to y ≥ 2.5·x, y ≥ 1−x, x binary, y continuous.
	// x=0 → y ≥ 1; x=1 → y ≥ 2.5. Optimum y=1 at x=0.
	p := lp.NewProblem(2, []float64{0, 1})
	p.AddConstraint(map[int]float64{1: 1, 0: -2.5}, lp.GE, 0)
	p.AddConstraint(map[int]float64{1: 1, 0: 1}, lp.GE, 1)
	r := Solve(p, []int{0}, Config{})
	if r.Status != Optimal || !approx(r.Obj, 1) {
		t.Fatalf("status=%v obj=%g x=%v", r.Status, r.Obj, r.X)
	}
	if !approx(r.X[0], 0) {
		t.Fatalf("x0 = %g, want 0", r.X[0])
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem requiring several nodes with MaxNodes=1 must return
	// NodeLimit.
	p := lp.NewProblem(2, []float64{-1, -1})
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, lp.LE, 1.5)
	r := Solve(p, []int{0, 1}, Config{MaxNodes: 1})
	if r.Status != NodeLimit {
		t.Fatalf("status = %v, want node-limit", r.Status)
	}
}

func TestAssignmentProblem(t *testing.T) {
	// 3×3 assignment, cost matrix; optimum = 1+2+2 = 5 (perm 0→2? check):
	// C = [[4,1,3],[2,0,5],[3,2,2]] → best perm (0→1,1→0,2→2)=1+2+2=5.
	C := [][]float64{{4, 1, 3}, {2, 0, 5}, {3, 2, 2}}
	obj := make([]float64, 9)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			obj[i*3+j] = C[i][j]
		}
	}
	p := lp.NewProblem(9, obj)
	bins := make([]int, 9)
	for k := range bins {
		bins[k] = k
	}
	for i := 0; i < 3; i++ {
		rowC := map[int]float64{}
		colC := map[int]float64{}
		for j := 0; j < 3; j++ {
			rowC[i*3+j] = 1
			colC[j*3+i] = 1
		}
		p.AddConstraint(rowC, lp.EQ, 1)
		p.AddConstraint(colC, lp.EQ, 1)
	}
	r := Solve(p, bins, Config{})
	if r.Status != Optimal || !approx(r.Obj, 5) {
		t.Fatalf("status=%v obj=%g", r.Status, r.Obj)
	}
}

// Cross-check against exhaustive enumeration on random small knapsacks.
func TestRandomKnapsacksAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(6)
		val := make([]float64, n)
		wt := make([]float64, n)
		for j := 0; j < n; j++ {
			val[j] = 1 + rng.Float64()*9
			wt[j] = 1 + rng.Float64()*9
		}
		capy := rng.Float64() * 20
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = -val[j]
		}
		p := lp.NewProblem(n, obj)
		coef := map[int]float64{}
		for j := 0; j < n; j++ {
			coef[j] = wt[j]
		}
		p.AddConstraint(coef, lp.LE, capy)
		bins := make([]int, n)
		for j := range bins {
			bins[j] = j
		}
		r := Solve(p, bins, Config{})
		if r.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, r.Status)
		}
		// Brute force.
		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			w, v := 0.0, 0.0
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					w += wt[j]
					v += val[j]
				}
			}
			if w <= capy && v > best {
				best = v
			}
		}
		if !approx(-r.Obj, best) {
			t.Fatalf("trial %d: ilp %g, brute %g", trial, -r.Obj, best)
		}
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		NodeLimit: "node-limit", Status(7): "Status(7)",
	} {
		if s.String() != want {
			t.Errorf("String = %q, want %q", s.String(), want)
		}
	}
}

func BenchmarkKnapsack12(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	n := 12
	obj := make([]float64, n)
	coef := map[int]float64{}
	for j := 0; j < n; j++ {
		obj[j] = -(1 + rng.Float64()*9)
		coef[j] = 1 + rng.Float64()*9
	}
	p := lp.NewProblem(n, obj)
	p.AddConstraint(coef, lp.LE, 30)
	bins := make([]int, n)
	for j := range bins {
		bins[j] = j
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := Solve(p, bins, Config{}); r.Status != Optimal {
			b.Fatal(r.Status)
		}
	}
}
