package workload

import (
	"math"
	"testing"
)

func TestUniformMatrix(t *testing.T) {
	m := NewUniformMatrix(4)
	if m.Nodes() != 4 {
		t.Fatal("dimension wrong")
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 1.0
			if i == j {
				want = 0
			}
			if m.Weight[i][j] != want {
				t.Fatalf("Weight[%d][%d] = %g", i, j, m.Weight[i][j])
			}
		}
	}
}

func TestGravityMatrixShape(t *testing.T) {
	m := NewGravityMatrix([]float64{10, 1, 1})
	// Pair (0,1) weight 10, (1,2) weight 1.
	if m.Weight[0][1] != 10 || m.Weight[1][2] != 1 || m.Weight[1][1] != 0 {
		t.Fatalf("weights wrong: %v", m.Weight)
	}
	for name, fn := range map[string]func(){
		"short": func() { NewGravityMatrix([]float64{1}) },
		"zero":  func() { NewGravityMatrix([]float64{1, 0}) },
		"nan":   func() { NewGravityMatrix([]float64{1, math.NaN()}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMatrixPoissonEndpointFrequencies(t *testing.T) {
	// Population 0 dominates: pairs touching node 0 should dominate.
	m := NewGravityMatrix([]float64{8, 1, 1, 1})
	reqs := MatrixPoisson(MatrixConfig{
		Matrix: m, ArrivalRate: 1, MeanHolding: 1, Count: 20000, Seed: 5,
	})
	touching0 := 0
	for _, r := range reqs {
		if r.Src == r.Dst {
			t.Fatal("self-pair generated")
		}
		if r.Src == 0 || r.Dst == 0 {
			touching0++
		}
	}
	// Total weight: pairs with 0: 6 ordered pairs × 8 = 48; others: 6 × 1.
	// Expected fraction 48/54 ≈ 0.889.
	frac := float64(touching0) / float64(len(reqs))
	if frac < 0.86 || frac > 0.92 {
		t.Fatalf("node-0 fraction = %g, want ≈ 0.889", frac)
	}
}

func TestHoldingDistributions(t *testing.T) {
	m := NewUniformMatrix(5)
	base := MatrixConfig{Matrix: m, ArrivalRate: 1, MeanHolding: 2, Count: 30000, Seed: 9}

	det := base
	det.Holding = HoldingDeterministic
	for _, r := range MatrixPoisson(det)[:100] {
		if r.Holding != 2 {
			t.Fatalf("deterministic holding = %g", r.Holding)
		}
	}

	check := func(dist HoldingDist, name string) {
		cfg := base
		cfg.Holding = dist
		sum := 0.0
		reqs := MatrixPoisson(cfg)
		for _, r := range reqs {
			if r.Holding <= 0 {
				t.Fatalf("%s: non-positive holding", name)
			}
			sum += r.Holding
		}
		mean := sum / float64(len(reqs))
		if math.Abs(mean-2) > 0.15 {
			t.Fatalf("%s: mean holding = %g, want ≈ 2", name, mean)
		}
	}
	check(HoldingExponential, "exponential")
	check(HoldingPareto, "pareto")

	// Pareto is heavier-tailed: its max dwarfs the deterministic mean.
	cfg := base
	cfg.Holding = HoldingPareto
	maxH := 0.0
	for _, r := range MatrixPoisson(cfg) {
		if r.Holding > maxH {
			maxH = r.Holding
		}
	}
	if maxH < 10 {
		t.Fatalf("pareto max = %g, expected a heavy tail", maxH)
	}
}

func TestMatrixPoissonValidation(t *testing.T) {
	m := NewUniformMatrix(3)
	for name, cfg := range map[string]MatrixConfig{
		"nilMatrix": {ArrivalRate: 1, MeanHolding: 1, Count: 1},
		"rate":      {Matrix: m, ArrivalRate: 0, MeanHolding: 1, Count: 1},
		"holding":   {Matrix: m, ArrivalRate: 1, MeanHolding: 0, Count: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			MatrixPoisson(cfg)
		}()
	}
	// A matrix with no positive entries panics.
	empty := &Matrix{Weight: [][]float64{{0, 0}, {0, 0}}}
	defer func() {
		if recover() == nil {
			t.Error("empty matrix should panic")
		}
	}()
	MatrixPoisson(MatrixConfig{Matrix: empty, ArrivalRate: 1, MeanHolding: 1, Count: 1})
}

func TestMatrixPoissonDeterministic(t *testing.T) {
	m := NewGravityMatrix([]float64{3, 2, 1})
	cfg := MatrixConfig{Matrix: m, ArrivalRate: 2, MeanHolding: 1, Count: 100, Seed: 4}
	a := MatrixPoisson(cfg)
	b := MatrixPoisson(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different streams")
		}
	}
}
