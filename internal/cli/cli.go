// Package cli holds the flag-value parsing shared by the command-line
// tools: topology construction by name, algorithm and restoration-mode
// lookup. Keeping it here makes the behaviour testable and identical across
// wdmroute, wdmsim and wdmtopo.
package cli

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/topofile"
	"repro/internal/wdm"
)

// TopologyNames lists the accepted -topo values.
var TopologyNames = []string{"nsfnet", "arpa2", "ring", "grid", "waxman", "complete"}

// BuildTopology constructs a named topology. n seeds the parametric
// generators (ring/grid/waxman/complete node counts); seed drives the
// random ones.
func BuildTopology(name string, n, w int, seed int64) (*wdm.Network, error) {
	cfg := topo.Config{W: w}
	switch name {
	case "nsfnet":
		return topo.NSFNET(cfg), nil
	case "arpa2":
		return topo.ARPA2(cfg), nil
	case "ring":
		return topo.Ring(n, cfg), nil
	case "grid":
		return topo.Grid(n, n, cfg), nil
	case "waxman":
		return topo.Waxman(n, 0.4, 0.4, seed, cfg), nil
	case "complete":
		return topo.Complete(n, cfg), nil
	}
	return nil, fmt.Errorf("unknown topology %q (want one of %v)", name, TopologyNames)
}

// LoadOrBuild loads a JSON topology when file is non-empty, otherwise
// builds the named one.
func LoadOrBuild(file, name string, n, w int, seed int64) (*wdm.Network, error) {
	if file != "" {
		return topofile.Load(file)
	}
	return BuildTopology(name, n, w, seed)
}

// ParseAlgorithm maps a -algo value to the simulator enum.
func ParseAlgorithm(s string) (netsim.Algorithm, error) {
	switch s {
	case "min-cost":
		return netsim.MinCost, nil
	case "min-load":
		return netsim.MinLoad, nil
	case "min-load-cost":
		return netsim.MinLoadCost, nil
	case "two-step":
		return netsim.TwoStep, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (min-cost, min-load, min-load-cost, two-step)", s)
}

// ParseRestoration maps a -restore value to the simulator enum.
func ParseRestoration(s string) (netsim.Restoration, error) {
	switch s {
	case "active":
		return netsim.Active, nil
	case "passive":
		return netsim.Passive, nil
	}
	return 0, fmt.Errorf("unknown restoration %q (active, passive)", s)
}
