// Package timeseries is the temporal telemetry layer: where package metrics
// answers "how is the engine doing in aggregate" and package obs answers
// "why did request #1374 get an expensive pair", this package answers "how
// did latency, blocking and load evolve over the run" — the time-series
// form of the paper's §4 claim that folding load into RWA keeps the network
// below the reconfiguration threshold longer.
//
// A Collector buckets samples into fixed-width windows on a pluggable clock
// (sim-time from the simulator, wall-clock for live serving) and seals each
// completed window into an immutable Snapshot: per-window quantiles
// (p50/p95/p99) from rolling log-bucket histograms, windowed rates, guarded
// ratios (empty window ⇒ 0, never NaN), and min/max/mean gauges. Sealed
// windows land in a bounded ring (O(Retention) memory no matter how long
// the run is) and, optionally, stream to a Sink (JSONL/CSV export), so a
// 1M-request soak retains recent history for live probes while the full
// curve goes to disk.
//
// Concurrency contract: one owner goroutine drives Observe/Add/Set and
// Advance/Seal (the simulator loop); Snapshots, Len and the counters are
// safe to call from any goroutine (debug HTTP handlers scrape mid-run).
// Nil safety matches package metrics: every method on a nil *Collector and
// on nil instrument handles is a no-op, so instrumented code calls
// unconditionally and telemetry off costs only a nil check.
package timeseries

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// DefaultRetention is the ring capacity when Config.Retention is 0.
const DefaultRetention = 1024

// Config parameterises a Collector.
type Config struct {
	// Window is the width of one aggregation window in clock seconds.
	Window float64
	// Retention is how many sealed windows the ring keeps
	// (DefaultRetention if 0). Older windows are evicted from the ring but
	// were already streamed to the Sink, if one is set.
	Retention int
	// Clock is the time source windows are cut against.
	Clock Clock
}

// Sink consumes sealed windows as they close — the streaming export hook.
// WriteSnapshot runs on the collector's owner goroutine; the snapshot is
// immutable and may be retained.
type Sink interface {
	WriteSnapshot(*Snapshot) error
}

// Collector buckets samples into clock windows. Create with New; a nil
// *Collector is permanently off and hands out nil instruments.
type Collector struct {
	mu  sync.Mutex
	cfg Config

	hists  []*histSeries
	rates  []*rateSeries
	ratios []*ratioSeries
	gauges []*gaugeSeries

	onSeal   []func(t float64)
	onSealed []func(*Snapshot)
	sink     Sink
	sinkErr  error

	curIdx      uint64
	ring        []Snapshot
	ringHead    int // next slot to overwrite
	ringLen     int
	sealedTotal uint64
}

// New returns a collector cutting windows of cfg.Window seconds against
// cfg.Clock. It panics on a non-positive window or a nil clock.
func New(cfg Config) *Collector {
	if cfg.Window <= 0 || math.IsInf(cfg.Window, 0) || math.IsNaN(cfg.Window) {
		panic("timeseries: window width must be positive and finite")
	}
	if cfg.Clock == nil {
		panic("timeseries: clock required")
	}
	if cfg.Retention <= 0 {
		cfg.Retention = DefaultRetention
	}
	c := &Collector{
		cfg:  cfg,
		ring: make([]Snapshot, cfg.Retention),
	}
	c.curIdx = c.windowIndex(cfg.Clock.Now())
	return c
}

// Window returns the configured window width (0 on nil).
func (c *Collector) Window() float64 {
	if c == nil {
		return 0
	}
	return c.cfg.Window
}

func (c *Collector) windowIndex(t float64) uint64 {
	if t <= 0 {
		return 0
	}
	return uint64(t / c.cfg.Window)
}

func checkName(name string) {
	if name == "" {
		panic("timeseries: empty series name")
	}
}

// Histogram registers (or returns) the windowed histogram named name, with
// log-spaced bucket bounds (nil defaults to DefaultLatencyBuckets). Per
// window it reports count/sum/mean/min/max and bucketed p50/p95/p99.
func (c *Collector) Histogram(name string, bounds []float64) *Histogram {
	if c == nil {
		return nil
	}
	checkName(name)
	if bounds == nil {
		bounds = DefaultLatencyBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("timeseries: histogram bounds not strictly increasing")
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.hists {
		if s.name == name {
			return &Histogram{c: c, s: s}
		}
	}
	s := &histSeries{
		name:   name,
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
	c.hists = append(c.hists, s)
	return &Histogram{c: c, s: s}
}

// Rate registers (or returns) the windowed counter named name; each sealed
// window reports the count and the count divided by the window width.
func (c *Collector) Rate(name string) *Rate {
	if c == nil {
		return nil
	}
	checkName(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.rates {
		if s.name == name {
			return &Rate{c: c, s: s}
		}
	}
	s := &rateSeries{name: name}
	c.rates = append(c.rates, s)
	return &Rate{c: c, s: s}
}

// Ratio registers (or returns) the windowed ratio named name — a
// numerator/denominator pair whose per-window value is num/den, reported as
// 0 (never NaN) when the window saw no denominator events.
func (c *Collector) Ratio(name string) *Ratio {
	if c == nil {
		return nil
	}
	checkName(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.ratios {
		if s.name == name {
			return &Ratio{c: c, s: s}
		}
	}
	s := &ratioSeries{name: name}
	c.ratios = append(c.ratios, s)
	return &Ratio{c: c, s: s}
}

// Gauge registers (or returns) the windowed gauge named name; each sealed
// window reports the last/min/max/mean of the values set during it.
func (c *Collector) Gauge(name string) *Gauge {
	if c == nil {
		return nil
	}
	checkName(name)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.gauges {
		if s.name == name {
			return &Gauge{c: c, s: s}
		}
	}
	s := &gaugeSeries{name: name}
	c.gauges = append(c.gauges, s)
	return &Gauge{c: c, s: s}
}

// OnSeal registers a probe that runs once per window, just before the
// window closes, with the window's nominal end time. Probes run on the
// owner goroutine and may set gauges and add to rates — the values land in
// the closing window — which is how per-window network-state sampling
// (link loads, fragmentation, active lightpaths) hooks in. Register probes
// before the run starts.
func (c *Collector) OnSeal(fn func(t float64)) {
	if c == nil || fn == nil {
		return
	}
	c.mu.Lock()
	c.onSeal = append(c.onSeal, fn)
	c.mu.Unlock()
}

// OnSealed registers an observer that runs once per window, just after the
// window has sealed, with the immutable sealed snapshot. Unlike OnSeal
// probes (which feed values *into* the closing window), OnSealed observers
// consume finished windows — the hook the SLO watchdog evaluates burn rates
// through. Observers run unlocked on the sealing goroutine and may call any
// collector method except Advance/Seal. Register before the run starts.
func (c *Collector) OnSealed(fn func(*Snapshot)) {
	if c == nil || fn == nil {
		return
	}
	c.mu.Lock()
	c.onSealed = append(c.onSealed, fn)
	c.mu.Unlock()
}

// SetSink streams every subsequently sealed window to s. The first write
// error is retained (SinkErr) and stops further writes, mirroring
// trace.JSONL: a dead sink costs one failure, not one per window.
func (c *Collector) SetSink(s Sink) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.sink = s
	c.mu.Unlock()
}

// SinkErr returns the first error the sink reported, or nil. Non-nil means
// the exported series on disk is incomplete even though the run finished.
func (c *Collector) SinkErr() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sinkErr
}

// Advance rolls the collector forward to time t, sealing every window whose
// end lies at or before t. The owner goroutine calls it with each event
// timestamp (sim-time) or periodically (wall-clock). Gaps emit empty
// windows, so exported curves stay continuous through idle stretches.
func (c *Collector) Advance(t float64) {
	if c == nil {
		return
	}
	target := c.windowIndex(t)
	for {
		c.mu.Lock()
		if target <= c.curIdx {
			c.mu.Unlock()
			return
		}
		sealEnd := float64(c.curIdx+1) * c.cfg.Window
		probes := c.onSeal
		c.mu.Unlock()
		// Probes run unlocked so they can use the public instrument API;
		// the single-owner contract keeps this safe.
		for _, fn := range probes {
			fn(sealEnd)
		}
		c.mu.Lock()
		snap := c.sealLocked()
		observers := c.onSealed
		c.mu.Unlock()
		for _, fn := range observers {
			fn(snap)
		}
	}
}

// Tick is Advance(clock.Now()) — the wall-clock driver.
func (c *Collector) Tick() {
	if c == nil {
		return
	}
	c.Advance(c.cfg.Clock.Now())
}

// Seal closes the currently open window even though the clock has not
// reached its end — the end-of-run flush, so a partial final window still
// reaches the ring and the sink. Probes run first, as on a normal seal.
func (c *Collector) Seal() {
	if c == nil {
		return
	}
	c.mu.Lock()
	sealEnd := float64(c.curIdx+1) * c.cfg.Window
	probes := c.onSeal
	c.mu.Unlock()
	for _, fn := range probes {
		fn(sealEnd)
	}
	c.mu.Lock()
	snap := c.sealLocked()
	observers := c.onSealed
	c.mu.Unlock()
	for _, fn := range observers {
		fn(snap)
	}
}

// sealLocked snapshots the open window into the ring (and sink) and opens
// the next one, returning the sealed snapshot for the OnSealed observers.
// Caller holds c.mu.
//
//wdm:coldpath window sealing runs once per telemetry window, amortized over the arrivals in it
func (c *Collector) sealLocked() *Snapshot {
	snap := Snapshot{
		Window: c.curIdx,
		Start:  float64(c.curIdx) * c.cfg.Window,
		End:    float64(c.curIdx+1) * c.cfg.Window,
	}
	for _, s := range c.hists {
		snap.Hists = append(snap.Hists, s.value())
		s.reset()
	}
	for _, s := range c.rates {
		snap.Rates = append(snap.Rates, s.value(c.cfg.Window))
		s.reset()
	}
	for _, s := range c.ratios {
		snap.Ratios = append(snap.Ratios, s.value())
		s.reset()
	}
	for _, s := range c.gauges {
		snap.Gauges = append(snap.Gauges, s.value())
		s.reset()
	}
	// Byte-stable export ordering regardless of registration order.
	sort.Slice(snap.Hists, func(i, j int) bool { return snap.Hists[i].Name < snap.Hists[j].Name })
	sort.Slice(snap.Rates, func(i, j int) bool { return snap.Rates[i].Name < snap.Rates[j].Name })
	sort.Slice(snap.Ratios, func(i, j int) bool { return snap.Ratios[i].Name < snap.Ratios[j].Name })
	sort.Slice(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })

	c.ring[c.ringHead] = snap
	c.ringHead = (c.ringHead + 1) % len(c.ring)
	if c.ringLen < len(c.ring) {
		c.ringLen++
	}
	c.sealedTotal++
	c.curIdx++
	if c.sink != nil && c.sinkErr == nil {
		if err := c.sink.WriteSnapshot(&snap); err != nil {
			c.sinkErr = fmt.Errorf("timeseries: sink: %w", err)
		}
	}
	return &snap
}

// Len returns the number of sealed windows currently retained.
func (c *Collector) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ringLen
}

// TotalSealed returns how many windows have been sealed over the
// collector's lifetime (including ones since evicted from the ring).
func (c *Collector) TotalSealed() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sealedTotal
}

// Evicted returns how many sealed windows have aged out of the ring.
func (c *Collector) Evicted() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sealedTotal - uint64(c.ringLen)
}

// Snapshots returns up to last retained windows, oldest first (all retained
// windows when last <= 0). The returned snapshots are copies safe to hold.
func (c *Collector) Snapshots(last int) []Snapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ringLen
	if last > 0 && last < n {
		n = last
	}
	if n == 0 {
		return nil
	}
	out := make([]Snapshot, n)
	// ringHead is the next overwrite slot, i.e. one past the newest entry.
	start := (c.ringHead - n + len(c.ring)) % len(c.ring)
	for i := 0; i < n; i++ {
		out[i] = c.ring[(start+i)%len(c.ring)]
	}
	return out
}

// Latest returns the newest sealed window, or nil when none sealed yet.
func (c *Collector) Latest() *Snapshot {
	s := c.Snapshots(1)
	if len(s) == 0 {
		return nil
	}
	return &s[0]
}

// DefaultLatencyBuckets is the default histogram bucketing for routing
// latencies: 1µs → 10s at 9 bounds per decade, so a bucketed quantile
// over-estimates the exact one by at most 10^(1/9) ≈ 1.29×.
func DefaultLatencyBuckets() []float64 { return LogBuckets(1e-6, 10, 9) }

// LogBuckets returns log-spaced upper bounds from lo up to and including
// the first bound ≥ hi, with perDecade bounds per factor of 10.
func LogBuckets(lo, hi float64, perDecade int) []float64 {
	if lo <= 0 || hi <= lo || perDecade < 1 {
		panic("timeseries: invalid log bucket spec")
	}
	ratio := math.Pow(10, 1/float64(perDecade))
	var out []float64
	for b := lo; ; b *= ratio {
		out = append(out, b)
		if b >= hi {
			return out
		}
	}
}
