// Quickstart: build a small WDM network, route one robust connection
// (primary + edge-disjoint backup), reserve it, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 6-node metro network, 4 wavelengths per fiber. AddUniformLink gives
	// every wavelength the same traversal cost (the paper's assumption (ii));
	// wavelength conversion costs 0.5 everywhere (assumption (i)).
	net := repro.NewNetwork(6, 4)
	net.SetAllConverters(repro.NewFullConverter(4, 0.5))
	spans := [][3]float64{
		{0, 1, 1}, {1, 2, 1}, {2, 5, 1}, // north corridor
		{0, 3, 2}, {3, 4, 2}, {4, 5, 2}, // south corridor
		{1, 4, 1.5}, {2, 4, 1}, // cross links
	}
	for _, s := range spans {
		net.AddUniformLink(int(s[0]), int(s[1]), s[2])
		net.AddUniformLink(int(s[1]), int(s[0]), s[2])
	}

	// Route a robust connection 0 → 5: two edge-disjoint semilightpaths
	// minimising the total cost (§3.3 of the paper). A Router reuses its
	// internal graph structures across requests; for a single request,
	// repro.ApproxMinCost(net, 0, 5, nil) is equivalent.
	router := repro.NewRouter(nil)
	route, ok := router.ApproxMinCost(net, 0, 5)
	if !ok {
		log.Fatal("no two edge-disjoint semilightpaths exist")
	}
	fmt.Println("primary: ", route.Primary.Format(net))
	fmt.Println("backup:  ", route.Backup.Format(net))
	fmt.Printf("pair cost %.3g (aux-graph bound ω = %.3g)\n", route.Cost, route.AuxWeight)

	// Reserve both paths. The backup's wavelengths are locked now, so a
	// single link failure on the primary can be survived by switching over
	// instantly — the paper's "activate" approach.
	if err := repro.Establish(net, route); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network load after establishment: ρ = %.3g\n", net.NetworkLoad())

	// A second request now sees the residual network and routes around the
	// reserved capacity.
	route2, ok := router.MinLoadCost(net, 3, 2)
	if !ok {
		log.Fatal("second request blocked")
	}
	fmt.Println("second request primary:", route2.Primary.Format(net))
	fmt.Printf("network load with both connections: ρ = %.3g\n", func() float64 {
		if err := repro.Establish(net, route2); err != nil {
			log.Fatal(err)
		}
		return net.NetworkLoad()
	}())

	// Connections release their wavelengths on teardown.
	if err := repro.Teardown(net, route); err != nil {
		log.Fatal(err)
	}
	if err := repro.Teardown(net, route2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network load after teardown: ρ = %.3g\n", net.NetworkLoad())
}
