// Package serve is a fixture mirroring the daemon's snapshot store: a
// published snapshot wraps a frozen network, the committer owns cur.
package serve

import "fix/snapmut/wdm"

type snapshot struct {
	version uint64
	net     *wdm.Network
}

// Engine mirrors the daemon: a private working copy plus a published epoch.
type Engine struct {
	cur  *wdm.Network
	snap *snapshot
}

// Snapshot returns the current epoch and its frozen network: the second
// taint source.
func (e *Engine) Snapshot() (uint64, *wdm.Network) {
	return e.snap.version, e.snap.net
}

// publish builds the next epoch from the committer's working copy: clean —
// the CloneSince result is stored, never mutated, and handing the previous
// frozen net to CloneSince only reads it.
func (e *Engine) publish() {
	e.snap = &snapshot{
		version: e.snap.version + 1,
		net:     e.cur.CloneSince(e.snap.net, e.snap.version),
	}
}

// commit mutates the committer's private working copy: clean.
func (e *Engine) commit(i int) {
	e.cur.Use(i)
}

// routeBad mutates the network straight out of a snapshot: finding.
func (e *Engine) routeBad(i int) {
	e.snap.net.Use(i)
}

// apply mutates whatever network it is handed: classified a mutator of its
// first parameter by backward propagation.
func apply(n *wdm.Network, i int) {
	n.Use(i)
}

// rerouteBad feeds a snapshot network into the mutating helper: finding.
func (e *Engine) rerouteBad(i int) {
	apply(e.snap.net, i)
}

// readOnly routes on a snapshot without mutating it: clean.
func (e *Engine) readOnly() int {
	_, net := e.Snapshot()
	return net.Lambdas()
}

// snapFromEngine mutates the network returned by Engine.Snapshot: finding
// through the tuple-assignment taint.
func snapFromEngine(e *Engine) {
	_, net := e.Snapshot()
	net.Use(0)
}
