package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// DefaultCapacity is the flight-recorder ring size when Config.Capacity is 0.
const DefaultCapacity = 256

// FlightRecorder is a fixed-size ring of finished request traces: the last
// N requests are always available for a dump, like an aircraft flight
// recorder. Add/Snapshot/Find/Dump are safe for concurrent use; the traces
// themselves are immutable after Finish, so dumping never blocks recording
// for longer than the ring copy.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []*Trace // ring storage, len == capacity
	next  int      // next write position
	total int64    // traces ever added
}

// NewFlightRecorder returns a recorder retaining the last capacity traces
// (DefaultCapacity if capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &FlightRecorder{buf: make([]*Trace, capacity)}
}

// Add appends a finished trace, evicting the oldest when full. No-op on nil.
func (f *FlightRecorder) Add(t *Trace) {
	if f == nil || t == nil {
		return
	}
	f.mu.Lock()
	f.buf[f.next] = t
	f.next = (f.next + 1) % len(f.buf)
	f.total++
	f.mu.Unlock()
}

// Len returns the number of retained traces (≤ capacity).
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.total < int64(len(f.buf)) {
		return int(f.total)
	}
	return len(f.buf)
}

// Total returns the number of traces ever recorded, including evicted ones.
func (f *FlightRecorder) Total() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Snapshot returns the retained traces, oldest first.
func (f *FlightRecorder) Snapshot() []*Trace {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.buf)
	out := make([]*Trace, 0, n)
	start := f.next // oldest slot once the ring has wrapped
	if f.total < int64(n) {
		start = 0
	}
	for i := 0; i < n; i++ {
		if t := f.buf[(start+i)%n]; t != nil {
			out = append(out, t)
		}
	}
	return out
}

// Find returns the retained trace with the given request ID, or nil.
func (f *FlightRecorder) Find(req int64) *Trace {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, t := range f.buf {
		if t != nil && t.Req == req {
			return t
		}
	}
	return nil
}

// traceJSON is the JSONL wire form of one trace. Attributes render as maps
// so a dump joins naturally against other JSONL streams (the simulator
// event log keys the same request IDs in its "req" field).
type traceJSON struct {
	Req     int64          `json:"req"`
	Kind    string         `json:"kind"`
	S       int            `json:"s"`
	T       int            `json:"t"`
	Start   time.Time      `json:"start"`
	DurSec  float64        `json:"dur_s"`
	Status  string         `json:"status"`
	Attrs   map[string]any `json:"attrs,omitempty"`
	Spans   []spanJSON     `json:"spans,omitempty"`
	Payload any            `json:"payload,omitempty"`
}

type spanJSON struct {
	Name   string         `json:"name"`
	T0Sec  float64        `json:"t0_s"`
	DurSec float64        `json:"dur_s"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// wire projects a trace into its JSONL form.
func wire(t *Trace) traceJSON {
	j := traceJSON{
		Req:     t.Req,
		Kind:    t.Kind,
		S:       t.S,
		T:       t.T,
		Start:   t.Start,
		DurSec:  t.End.Sub(t.Start).Seconds(),
		Status:  t.Status,
		Attrs:   attrMap(t.Attrs),
		Payload: t.Payload,
	}
	for i := range t.Spans {
		sp := &t.Spans[i]
		j.Spans = append(j.Spans, spanJSON{
			Name:   sp.Name,
			T0Sec:  sp.T0.Seconds(),
			DurSec: sp.Dur().Seconds(),
			Attrs:  attrMap(sp.Attrs),
		})
	}
	return j
}

// Dump writes the retained traces as JSONL, oldest first. The snapshot is
// taken once up front, so a dump is consistent even while requests keep
// landing. The error must be checked: a partial dump is silent data loss
// (wdmlint errcheck-lite enforces this).
func (f *FlightRecorder) Dump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, t := range f.Snapshot() {
		if err := enc.Encode(wire(t)); err != nil {
			return fmt.Errorf("obs: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	return nil
}

// DumpReq writes only the retained traces with the given request ID as
// JSONL — the `?req=` filter behind /debug/flight, so one slow HTTP response
// (whose X-Wdmd-Req header carries the ID) joins to its spans in one curl.
// Like Dump, the error must be checked. It reports whether any trace matched.
func (f *FlightRecorder) DumpReq(w io.Writer, req int64) (bool, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	found := false
	for _, t := range f.Snapshot() {
		if t.Req != req {
			continue
		}
		found = true
		if err := enc.Encode(wire(t)); err != nil {
			return found, fmt.Errorf("obs: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return found, fmt.Errorf("obs: %w", err)
	}
	return found, nil
}

// DumpFile writes the retained traces as JSONL to path (truncating it).
func (f *FlightRecorder) DumpFile(path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	err = f.Dump(fh)
	if cerr := fh.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("obs: %w", cerr)
	}
	return err
}
