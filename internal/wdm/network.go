// Package wdm models a wavelength-routed optical network after §2 of the
// paper: a directed graph G = (V, E, Λ) where each link e carries a
// wavelength set Λ(e) with per-(link, wavelength) traversal costs w(e, λ),
// and each node owns a wavelength-conversion switch with conversion costs
// c_v(λp, λq). The residual network is represented in place by the
// availability set Λ_avail(e) ⊆ Λ(e): wavelengths currently held by live
// connections are removed from it and restored on release.
package wdm

import (
	"fmt"
	"math"

	"repro/internal/bitset"
)

// Wavelength indexes a channel in the global wavelength set Λ = {λ_0 … λ_{W-1}}.
type Wavelength = int

// Link is a directed fiber link e = <From, To> with its wavelength inventory.
type Link struct {
	ID   int
	From int
	To   int

	lambda *bitset.Set // Λ(e): wavelengths installed on the link
	avail  *bitset.Set // Λ_avail(e): installed and not held by any connection
	cost   []float64   // cost[λ] = w(e, λ); +Inf for λ ∉ Λ(e)
}

// Lambda returns Λ(e) (do not mutate).
func (l *Link) Lambda() *bitset.Set { return l.lambda }

// Avail returns Λ_avail(e) (do not mutate).
func (l *Link) Avail() *bitset.Set { return l.avail }

// N returns N(e) = |Λ(e)|, the installed wavelength count.
func (l *Link) N() int { return l.lambda.Count() }

// U returns U(e) = |Λ(e)| − |Λ_avail(e)|, the in-use wavelength count.
func (l *Link) U() int { return l.lambda.Count() - l.avail.Count() }

// Load returns ρ(e) = U(e)/N(e) per Eq. 2. A link with no wavelengths has
// load 1 (it can carry nothing).
func (l *Link) Load() float64 {
	n := l.N()
	if n == 0 {
		return 1
	}
	return float64(l.U()) / float64(n)
}

// Cost returns w(e, λ), or +Inf if λ is not installed on the link.
func (l *Link) Cost(lambda Wavelength) float64 { return l.cost[lambda] }

// HasAvail reports whether λ is currently available on the link.
func (l *Link) HasAvail(lambda Wavelength) bool { return l.avail.Contains(lambda) }

// MeanAvailCost returns Σ_{λ ∈ Λ_avail(e)} w(e, λ) / |Λ_avail(e)|, the §3.3.1
// auxiliary-graph weight for the link's edge. It returns +Inf when no
// wavelength is available.
func (l *Link) MeanAvailCost() float64 {
	cnt := l.avail.Count()
	if cnt == 0 {
		return math.Inf(1)
	}
	sum := 0.0
	//wdmlint:ignore hotalloc non-escaping ForEach visitor; stays on the stack
	l.avail.ForEach(func(lam int) bool {
		sum += l.cost[lam]
		return true
	})
	return sum / float64(cnt)
}

// MeanInstalledCost returns Σ_{λ ∈ Λ_avail(e)} w(e, λ) / N(e), the §4.2
// G_rc link weight (the paper divides by N(e), not |Λ_avail(e)|).
func (l *Link) MeanInstalledCost() float64 {
	n := l.N()
	if n == 0 {
		return math.Inf(1)
	}
	sum := 0.0
	//wdmlint:ignore hotalloc non-escaping ForEach visitor; stays on the stack
	l.avail.ForEach(func(lam int) bool {
		sum += l.cost[lam]
		return true
	})
	return sum / float64(n)
}

// Converter models the wavelength-conversion switch at a node. Conversions
// may be disallowed; c_v(λ, λ) must be 0 for every implementation
// (the paper fixes the identity conversion as free).
type Converter interface {
	// Allowed reports whether the switch can convert from λp to λq.
	Allowed(from, to Wavelength) bool
	// Cost returns c_v(λp, λq). Meaningful only when Allowed(from, to).
	Cost(from, to Wavelength) float64
}

// Network is the WDM network G(V, E, Λ).
type Network struct {
	n     int
	w     int
	links []*Link
	out   [][]int // out[v] = link IDs with From == v (E_out(v))
	in    [][]int // in[v] = link IDs with To == v (E_in(v))
	conv  []Converter
	srlg  [][]int // srlg[link] = shared-risk group IDs (lazily allocated)

	// Change counters for cache invalidation (see StateVersion/TopoVersion).
	stateVersion uint64
	topoVersion  uint64

	// stamp[e] is the change journal: the StateVersion at which link e's
	// availability set last changed (see LinkStamp).
	stamp []uint64
}

// NewNetwork returns a network with n nodes, W wavelengths per system, and
// full wavelength conversion at unit cost at every node (the §3.3
// assumption); override per node with SetConverter.
func NewNetwork(n, w int) *Network {
	if n < 0 || w <= 0 {
		panic("wdm: invalid network dimensions")
	}
	net := &Network{
		n:    n,
		w:    w,
		out:  make([][]int, n),
		in:   make([][]int, n),
		conv: make([]Converter, n),
	}
	full := NewFullConverter(w, 1)
	for v := range net.conv {
		net.conv[v] = full
	}
	return net
}

// Nodes returns |V|.
func (g *Network) Nodes() int { return g.n }

// W returns the number of wavelengths |Λ|.
func (g *Network) W() int { return g.w }

// Links returns |E|.
func (g *Network) Links() int { return len(g.links) }

// Link returns the link with the given ID.
func (g *Network) Link(id int) *Link { return g.links[id] }

// Out returns E_out(v), the IDs of links leaving v.
func (g *Network) Out(v int) []int { return g.out[v] }

// In returns E_in(v), the IDs of links entering v.
func (g *Network) In(v int) []int { return g.in[v] }

// Converter returns the conversion switch at node v.
func (g *Network) Converter(v int) Converter { return g.conv[v] }

// SetConverter installs a conversion switch at node v.
func (g *Network) SetConverter(v int, c Converter) {
	g.conv[v] = c
	g.bumpTopo()
}

// SetAllConverters installs the same switch at every node.
func (g *Network) SetAllConverters(c Converter) {
	for v := range g.conv {
		g.conv[v] = c
	}
	g.bumpTopo()
}

// StateVersion is a counter that advances on every change to the residual
// state — wavelength reservations and releases as well as structural changes.
// Derived structures (auxiliary-graph weights, caches of availability-based
// quantities) are valid exactly while the version they were computed at still
// matches.
func (g *Network) StateVersion() uint64 { return g.stateVersion }

// TopoVersion advances on structural changes only — links added or converters
// replaced — the events that invalidate the auxiliary-graph skeleton (vertex
// and edge inventory), as opposed to reservations, which invalidate only
// weights.
func (g *Network) TopoVersion() uint64 { return g.topoVersion }

// bumpTopo records a structural change (which is also a state change).
func (g *Network) bumpTopo() {
	g.topoVersion++
	g.stateVersion++
}

// bumpState records a residual-state change (reservation or release). Every
// mutating method must call bumpState or bumpTopo — the wdmlint versionbump
// rule enforces it — or derived caches serve stale data.
func (g *Network) bumpState() {
	g.stateVersion++
}

// touchLink records an availability change on one link: it advances
// StateVersion and stamps the link's journal entry with the new version.
// Every mutation of a link's avail set must go through touchLink or touchAll
// — the wdmlint versionbump rule enforces it — or incremental consumers of
// the journal (auxgraph's dirty-link reweight) serve stale weights.
func (g *Network) touchLink(id int) {
	g.bumpState()
	g.stamp[id] = g.stateVersion
}

// touchAll records an availability change on every link at once.
func (g *Network) touchAll() {
	g.bumpState()
	for i := range g.stamp {
		g.stamp[i] = g.stateVersion
	}
}

// LinkStamp returns the StateVersion at which link id's availability set last
// changed. The journal contract: a per-link quantity computed from
// availability at StateVersion v is still fresh for link e iff
// LinkStamp(e) ≤ v — provided TopoVersion has not moved, since structural
// changes (new links, converter swaps, SRLG edits) invalidate derived
// structures wholesale without stamping individual links.
func (g *Network) LinkStamp(id int) uint64 { return g.stamp[id] }

// AddLink adds a directed link from → to carrying the given wavelengths at
// the given per-wavelength costs and returns its ID. costs[i] is the cost of
// wavelengths[i]; every cost must be non-negative and finite.
func (g *Network) AddLink(from, to int, wavelengths []Wavelength, costs []float64) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		panic(fmt.Sprintf("wdm: link (%d,%d) out of range [0,%d)", from, to, g.n))
	}
	if len(wavelengths) != len(costs) {
		panic("wdm: wavelengths/costs length mismatch")
	}
	l := &Link{
		ID:     len(g.links),
		From:   from,
		To:     to,
		lambda: bitset.New(g.w),
		avail:  bitset.New(g.w),
		cost:   make([]float64, g.w),
	}
	for i := range l.cost {
		l.cost[i] = math.Inf(1)
	}
	for i, lam := range wavelengths {
		if lam < 0 || lam >= g.w {
			panic(fmt.Sprintf("wdm: wavelength %d out of range [0,%d)", lam, g.w))
		}
		if costs[i] < 0 || math.IsInf(costs[i], 0) || math.IsNaN(costs[i]) {
			panic(fmt.Sprintf("wdm: invalid cost %g for λ%d", costs[i], lam))
		}
		l.lambda.Add(lam)
		l.avail.Add(lam)
		l.cost[lam] = costs[i]
	}
	g.links = append(g.links, l)
	g.out[from] = append(g.out[from], l.ID)
	g.in[to] = append(g.in[to], l.ID)
	g.bumpTopo()
	g.stamp = append(g.stamp, g.stateVersion)
	return l.ID
}

// AddUniformLink adds a link carrying all W wavelengths at one uniform cost
// (assumption (ii) of §3.3) and returns its ID.
func (g *Network) AddUniformLink(from, to int, cost float64) int {
	lams := make([]Wavelength, g.w)
	costs := make([]float64, g.w)
	for i := range lams {
		lams[i] = i
		costs[i] = cost
	}
	return g.AddLink(from, to, lams, costs)
}

// AddUniformPair adds links in both directions with the same uniform cost
// and returns both IDs.
func (g *Network) AddUniformPair(a, b int, cost float64) (ab, ba int) {
	return g.AddUniformLink(a, b, cost), g.AddUniformLink(b, a, cost)
}

// ConvCost returns c_v(λp, λq), or +Inf when the conversion is not allowed.
func (g *Network) ConvCost(v int, from, to Wavelength) float64 {
	if from == to {
		return 0
	}
	c := g.conv[v]
	if !c.Allowed(from, to) {
		return math.Inf(1)
	}
	return c.Cost(from, to)
}

// Use marks λ on link id as held by a connection. It returns an error if the
// wavelength is not currently available.
func (g *Network) Use(id int, lambda Wavelength) error {
	l := g.links[id]
	if lambda < 0 || lambda >= g.w {
		//wdmlint:ignore hotalloc error return path; never taken on the admit path
		return fmt.Errorf("wdm: λ%d out of range [0,%d)", lambda, g.w)
	}
	if !l.lambda.Contains(lambda) {
		//wdmlint:ignore hotalloc error return path; never taken on the admit path
		return fmt.Errorf("wdm: λ%d not installed on link %d", lambda, id)
	}
	if !l.avail.Contains(lambda) {
		//wdmlint:ignore hotalloc error return path; never taken on the admit path
		return fmt.Errorf("wdm: λ%d already in use on link %d", lambda, id)
	}
	l.avail.Remove(lambda)
	g.touchLink(id)
	return nil
}

// Release returns λ on link id to the available pool. It returns an error if
// the wavelength was not in use.
func (g *Network) Release(id int, lambda Wavelength) error {
	l := g.links[id]
	if lambda < 0 || lambda >= g.w {
		//wdmlint:ignore hotalloc error return path; never taken on the admit path
		return fmt.Errorf("wdm: λ%d out of range [0,%d)", lambda, g.w)
	}
	if !l.lambda.Contains(lambda) {
		//wdmlint:ignore hotalloc error return path; never taken on the admit path
		return fmt.Errorf("wdm: λ%d not installed on link %d", lambda, id)
	}
	if l.avail.Contains(lambda) {
		//wdmlint:ignore hotalloc error return path; never taken on the admit path
		return fmt.Errorf("wdm: λ%d not in use on link %d", lambda, id)
	}
	l.avail.Add(lambda)
	g.touchLink(id)
	return nil
}

// NetworkLoad returns ρ = max_e ρ(e) over links that carry wavelengths
// (Eq. 2). An empty network has load 0.
func (g *Network) NetworkLoad() float64 {
	rho := 0.0
	for _, l := range g.links {
		if l.N() == 0 {
			continue
		}
		if r := l.Load(); r > rho {
			rho = r
		}
	}
	return rho
}

// MaxDegree returns max_v (|E_in(v)| + |E_out(v)|), the d of the paper's
// complexity bounds.
func (g *Network) MaxDegree() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if t := len(g.in[v]) + len(g.out[v]); t > d {
			d = t
		}
	}
	return d
}

// Clone returns a deep copy of the network, including availability state.
// Converters are shared (they are immutable).
func (g *Network) Clone() *Network {
	c := &Network{
		n:            g.n,
		w:            g.w,
		out:          make([][]int, g.n),
		in:           make([][]int, g.n),
		conv:         append([]Converter(nil), g.conv...),
		stateVersion: g.stateVersion,
		topoVersion:  g.topoVersion,
		stamp:        append([]uint64(nil), g.stamp...),
	}
	for v := 0; v < g.n; v++ {
		c.out[v] = append([]int(nil), g.out[v]...)
		c.in[v] = append([]int(nil), g.in[v]...)
	}
	if g.srlg != nil {
		c.srlg = make([][]int, len(g.srlg))
		for i, gs := range g.srlg {
			c.srlg[i] = append([]int(nil), gs...)
		}
	}
	c.links = make([]*Link, len(g.links))
	for i, l := range g.links {
		c.links[i] = &Link{
			ID:     l.ID,
			From:   l.From,
			To:     l.To,
			lambda: l.lambda.Clone(),
			avail:  l.avail.Clone(),
			cost:   append([]float64(nil), l.cost...),
		}
	}
	return c
}

// ResetAvailability restores Λ_avail(e) = Λ(e) on every link, i.e. tears
// down every connection.
func (g *Network) ResetAvailability() {
	for _, l := range g.links {
		l.avail.CopyFrom(l.lambda)
	}
	g.touchAll()
}

// TotalAvailable returns the total count of available (link, wavelength)
// pairs — a capacity gauge used by the simulator's statistics.
func (g *Network) TotalAvailable() int {
	t := 0
	for _, l := range g.links {
		t += l.avail.Count()
	}
	return t
}

// SetSRLG assigns shared-risk link group IDs to a link. Links sharing any
// group are assumed to fail together (same conduit, duct or span), so a
// backup protecting against such risks must avoid every group of its
// primary. Calling SetSRLG replaces the link's previous groups. It counts as
// a structural change: risk groups alter which backups are legal, so cached
// routing structures must not outlive it.
func (g *Network) SetSRLG(id int, groups ...int) {
	if g.srlg == nil {
		g.srlg = make([][]int, len(g.links))
	}
	for len(g.srlg) < len(g.links) {
		g.srlg = append(g.srlg, nil)
	}
	g.srlg[id] = append([]int(nil), groups...)
	g.bumpTopo()
}

// SRLGs returns the shared-risk groups of a link (nil when none assigned).
func (g *Network) SRLGs(id int) []int {
	if g.srlg == nil || id >= len(g.srlg) {
		return nil
	}
	return g.srlg[id]
}

// SharesRisk reports whether two links belong to a common shared-risk group.
func (g *Network) SharesRisk(a, b int) bool {
	ga, gb := g.SRLGs(a), g.SRLGs(b)
	if len(ga) == 0 || len(gb) == 0 {
		return false
	}
	for _, x := range ga {
		for _, y := range gb {
			if x == y {
				return true
			}
		}
	}
	return false
}
