package harness

import (
	"testing"

	"repro/internal/check"
)

// FuzzDifferential lets the fuzzer drive the generator seed and size budget
// directly: whatever instance comes out must survive the full differential
// run — both router arms agreeing, every invariant holding, exact
// comparisons passing on eligible instances — without a violation or panic.
func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), uint8(6))
	f.Add(int64(42), uint8(4))
	f.Add(int64(-7), uint8(9))
	f.Fuzz(func(t *testing.T, seed int64, size uint8) {
		maxNodes := 4 + int(size%5) // 4..8
		in := check.GenerateSeeded(seed, maxNodes)
		cfg := Config{Exact: maxNodes <= 6, NoShrink: true}
		if err := RunInstance(in, cfg, nil); err != nil {
			t.Fatalf("seed %d size %d: %v", seed, maxNodes, err)
		}
	})
}
