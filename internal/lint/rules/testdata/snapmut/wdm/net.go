// Package wdm is a fixture mirroring the real network type for the
// snapshot-mutation rule: Use mutates, Reserve mutates by delegation,
// CloneSince and Lambdas only read.
package wdm

// Network mirrors the real wdm.Network.
type Network struct {
	links        []int
	stateVersion uint64
}

func (g *Network) bumpState() { g.stateVersion++ }

// Use mutates residual state: a seeded mutator.
func (g *Network) Use(i int) {
	g.links[i] = 0
	g.bumpState()
}

// Reserve delegates to Use: a mutator by call-graph propagation.
func (g *Network) Reserve(i int) { g.Use(i) }

// Lambdas is a getter: safe on snapshots.
func (g *Network) Lambdas() int { return len(g.links) }

// CloneSince returns a frozen copy, reading both networks and mutating
// neither — its result is the taint source.
func (g *Network) CloneSince(prev *Network, prevVersion uint64) *Network {
	c := &Network{stateVersion: g.stateVersion}
	c.links = make([]int, len(g.links))
	copy(c.links, g.links)
	_, _ = prev, prevVersion
	return c
}
