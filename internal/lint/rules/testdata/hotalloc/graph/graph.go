// Package graph holds the hot-path helpers the fixture root reaches, so the
// goldens cover cross-package call chains.
package graph

import "fmt"

// Workspace mirrors the reusable-buffer shape of the real solver.
type Workspace struct {
	dist []int64
	heap []int
}

// Relax is reached from the hot root; its error branch allocates. The branch
// is exactly the shape the runtime alloc gates provably miss: the alloc-count
// tests only drive non-negative weights, so the Sprintf below never executes
// under them — only the static chain from the annotated root sees it.
func (ws *Workspace) Relax(n int, w int64) {
	if w < 0 {
		panic(fmt.Sprintf("negative weight %d", w))
	}
	ws.dist[n] = w
}

// Grow warms the workspace under capacity guards: clean (the warm-up idiom).
func (ws *Workspace) Grow(n int) {
	if cap(ws.dist) < n {
		ws.dist = make([]int64, n)
	}
	for len(ws.heap) < n {
		ws.heap = append(ws.heap, 0)
	}
	ws.heap = append(ws.heap[:0], ws.heap...)
}

// Spill allocates unconditionally: finding, attributed through the chain
// from the annotated root.
func (ws *Workspace) Spill() []int {
	out := make([]int, len(ws.heap))
	copy(out, ws.heap)
	return out
}

// Trace allocates but is a declared cold boundary: clean, and propagation
// stops here.
//
//wdm:coldpath tracing is enabled only in diagnostic runs
func (ws *Workspace) Trace(id int) string {
	return fmt.Sprintf("node %d", id)
}

// Stale declares a cold boundary without a reason: finding on the directive.
//
//wdm:coldpath
func (ws *Workspace) Stale() {}
