package bitset

import (
	"math/rand"
	"testing"
)

// longestRunNaive is the bit-at-a-time reference implementation.
func longestRunNaive(s *Set) int {
	best, run := 0, 0
	for i := 0; i < s.Cap(); i++ {
		if s.Contains(i) {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 0
		}
	}
	return best
}

func TestLongestRunEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		set  *Set
		want int
	}{
		{"empty", New(128), 0},
		{"zero capacity", New(0), 0},
		{"single bit", FromSlice(128, []int{77}), 1},
		{"full one word", NewFull(64), 64},
		{"full two words", NewFull(128), 128},
		{"full odd capacity", NewFull(130), 130},
		{"run crossing word boundary", FromSlice(128, []int{62, 63, 64, 65, 66}), 5},
		{"run ending at word boundary", FromSlice(128, []int{60, 61, 62, 63}), 4},
		{"run starting at word boundary", FromSlice(128, []int{64, 65, 66}), 3},
		{"full word bridging neighbours", FromSlice(192, []int{63, 64}), 2},
		{"alternating", FromSlice(64, []int{0, 2, 4, 6, 8, 10}), 1},
		{"two runs picks longer", FromSlice(64, []int{0, 1, 2, 10, 11, 12, 13, 14}), 5},
	}
	// Full middle word flanked by trailing/leading ones: 1 + 64 + 1.
	span := New(192)
	for i := 63; i <= 128; i++ {
		span.Add(i)
	}
	cases = append(cases, struct {
		name string
		set  *Set
		want int
	}{"full word with flanks", span, 66})

	for _, c := range cases {
		if got := c.set.LongestRun(); got != c.want {
			t.Errorf("%s: LongestRun = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestLongestRunMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(300)
		s := New(n)
		// Mix densities so some trials have long runs, others sparse bits.
		p := rng.Float64()
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				s.Add(i)
			}
		}
		if got, want := s.LongestRun(), longestRunNaive(s); got != want {
			t.Fatalf("trial %d (n=%d): LongestRun = %d, naive = %d, set %v", trial, n, got, want, s)
		}
	}
}

func BenchmarkLongestRun(b *testing.B) {
	s := New(1024)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1024; i++ {
		if rng.Intn(3) > 0 {
			s.Add(i)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.LongestRun()
	}
}
