package provision

import (
	"testing"

	"repro/internal/check"
)

// TestProvisionOnGeneratedInstances runs batch provisioning — including the
// improvement passes, which exercise the teardown/re-establish path — over
// generated topologies and demand sets, auditing every placement with the
// check oracle and verifying full capacity conservation after release.
func TestProvisionOnGeneratedInstances(t *testing.T) {
	configs := []Config{
		{Router: MinCost},
		{Router: MinLoadCost, Order: LongestFirst},
		{Router: NodeDisjoint, Order: ShortestFirst},
		{Router: MinCost, ImprovePasses: 2},
		{Router: MinLoadCost, ImprovePasses: 1},
	}
	for seed := int64(0); seed < 12; seed++ {
		in := check.GenerateSeeded(seed, 7)
		var demands []Demand
		for i, op := range in.Ops {
			if op.Teardown < 0 {
				demands = append(demands, Demand{ID: i, Src: op.Src, Dst: op.Dst})
			}
		}
		for ci, cfg := range configs {
			net, err := in.Build()
			if err != nil {
				t.Fatalf("seed %d: build: %v", seed, err)
			}
			baseAvail := net.TotalAvailable()
			res := Provision(net, demands, cfg)
			if res.Placed+res.Failed != len(demands) {
				t.Fatalf("seed %d cfg %d: %d placed + %d failed ≠ %d demands",
					seed, ci, res.Placed, res.Failed, len(demands))
			}
			if len(res.Placements) != len(demands) {
				t.Fatalf("seed %d cfg %d: %d placements for %d demands",
					seed, ci, len(res.Placements), len(demands))
			}
			totalCost := 0.0
			for _, pl := range res.Placements {
				if pl.Route == nil {
					continue
				}
				d := pl.Demand
				if err := check.Path(net, pl.Route.Primary, d.Src, d.Dst); err != nil {
					t.Fatalf("seed %d cfg %d demand %d: primary: %v", seed, ci, d.ID, err)
				}
				if err := check.Path(net, pl.Route.Backup, d.Src, d.Dst); err != nil {
					t.Fatalf("seed %d cfg %d demand %d: backup: %v", seed, ci, d.ID, err)
				}
				if err := check.Reserved(net, pl.Route.Primary); err != nil {
					t.Fatalf("seed %d cfg %d demand %d: primary: %v", seed, ci, d.ID, err)
				}
				if err := check.Reserved(net, pl.Route.Backup); err != nil {
					t.Fatalf("seed %d cfg %d demand %d: backup: %v", seed, ci, d.ID, err)
				}
				if err := check.EdgeDisjoint(pl.Route.Primary, pl.Route.Backup); err != nil {
					t.Fatalf("seed %d cfg %d demand %d: %v", seed, ci, d.ID, err)
				}
				if cfg.Router == NodeDisjoint {
					if err := check.NodeDisjoint(net, pl.Route.Primary, pl.Route.Backup, d.Src, d.Dst); err != nil {
						t.Fatalf("seed %d cfg %d demand %d: %v", seed, ci, d.ID, err)
					}
				}
				// The recorded cost must match the Eq. 1 recomputation on the
				// final residual state (per-link costs are load-independent).
				got := check.PathCost(net, pl.Route.Primary) + check.PathCost(net, pl.Route.Backup)
				if err := check.Cost(net, pl.Route.Primary, check.PathCost(net, pl.Route.Primary)); err != nil {
					t.Fatalf("seed %d cfg %d demand %d: %v", seed, ci, d.ID, err)
				}
				if diff := got - pl.Route.Cost; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("seed %d cfg %d demand %d: recorded cost %g, recomputed %g",
						seed, ci, d.ID, pl.Route.Cost, got)
				}
				totalCost += pl.Route.Cost
			}
			if diff := totalCost - res.TotalCost; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("seed %d cfg %d: TotalCost = %g, placements sum to %g",
					seed, ci, res.TotalCost, totalCost)
			}
			if got := net.NetworkLoad(); got != res.NetworkLoad {
				t.Fatalf("seed %d cfg %d: NetworkLoad = %g, network says %g",
					seed, ci, res.NetworkLoad, got)
			}
			if err := check.LoadAccounting(net); err != nil {
				t.Fatalf("seed %d cfg %d: %v", seed, ci, err)
			}

			// Release everything: improvement passes must not have leaked
			// channels from their teardown/re-establish churn.
			for _, pl := range res.Placements {
				if pl.Route == nil {
					continue
				}
				if err := net.ReleasePath(pl.Route.Primary); err != nil {
					t.Fatalf("seed %d cfg %d: release primary: %v", seed, ci, err)
				}
				if err := net.ReleasePath(pl.Route.Backup); err != nil {
					t.Fatalf("seed %d cfg %d: release backup: %v", seed, ci, err)
				}
			}
			if got := net.TotalAvailable(); got != baseAvail {
				t.Fatalf("seed %d cfg %d: capacity leak: %d available, want %d", seed, ci, got, baseAvail)
			}
			if rho := net.NetworkLoad(); rho != 0 {
				t.Fatalf("seed %d cfg %d: ρ = %g after release", seed, ci, rho)
			}
		}
	}
}
