package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ParseMatrix reads a traffic matrix from a plain text table: one
// whitespace-separated row per line, `#` starts a comment, blank lines are
// skipped. The matrix must be square with n ≥ 2, every entry finite and
// non-negative, and at least one positive off-diagonal entry (otherwise no
// request could ever be drawn). Diagonal entries are forced to zero — self
// traffic is meaningless.
func ParseMatrix(r io.Reader) (*Matrix, error) {
	var rows [][]float64
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		row := make([]float64, len(fields))
		for j, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: line %d: bad entry %q", line, f)
			}
			if v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
				return nil, fmt.Errorf("workload: line %d: entry %g must be finite and non-negative", line, v)
			}
			row[j] = v
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: read matrix: %w", err)
	}
	n := len(rows)
	if n < 2 {
		return nil, fmt.Errorf("workload: matrix needs ≥ 2 rows, has %d", n)
	}
	positive := false
	for i, row := range rows {
		if len(row) != n {
			return nil, fmt.Errorf("workload: row %d has %d entries, want %d (square matrix)", i, len(row), n)
		}
		row[i] = 0
		for j, v := range row {
			if i != j && v > 0 {
				positive = true
			}
		}
	}
	if !positive {
		return nil, fmt.Errorf("workload: matrix has no positive off-diagonal entry")
	}
	return &Matrix{Weight: rows}, nil
}

// Encode writes the matrix in the format ParseMatrix reads. %g round-trips
// float64 exactly, so Encode → ParseMatrix is the identity (modulo the
// forced-zero diagonal).
func (m *Matrix) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, row := range m.Weight {
		for j, v := range row {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%g", v); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
