package netsim

import (
	"testing"

	"repro/internal/metrics"
)

func TestSimMetricsMatchRunCounters(t *testing.T) {
	r := metrics.NewRegistry()
	EnableMetrics(r)
	defer EnableMetrics(nil)

	sim := New(nsf(4), Config{
		Algorithm:   MinCost,
		Restoration: Active,
		FailureRate: 0.5,
		RepairTime:  2,
		Seed:        5,
	})
	m := sim.Run(poisson(14, 400, 25, 5))

	// No warm-up configured, so the sim counters and the metric counters
	// describe the same population.
	if got := r.Counter("netsim_established_total", "").Value(); got != int64(m.Accepted) {
		t.Fatalf("established = %d, accepted = %d", got, m.Accepted)
	}
	if got := r.Counter("netsim_blocked_total", "").Value(); got != int64(m.Blocked) {
		t.Fatalf("blocked = %d, want %d", got, m.Blocked)
	}
	if got := r.Counter("netsim_failures_total", "").Value(); got != int64(m.FailureEvents) {
		t.Fatalf("failures = %d, want %d", got, m.FailureEvents)
	}
	if got := r.Counter("netsim_restored_total", "").Value(); got != int64(m.Recovered) {
		t.Fatalf("restored = %d, want %d", got, m.Recovered)
	}
	if got := r.Counter("netsim_dropped_total", "").Value(); got != int64(m.RecoveryFailed) {
		t.Fatalf("dropped = %d, want %d", got, m.RecoveryFailed)
	}
	// Teardowns: every accepted connection either departed normally or was
	// dropped by an unrecovered failure.
	tear := r.Counter("netsim_teardown_total", "").Value()
	if tear+int64(m.RecoveryFailed) != int64(m.Accepted) {
		t.Fatalf("teardowns %d + dropped %d != accepted %d", tear, m.RecoveryFailed, m.Accepted)
	}
	// Routing latency histogram saw every arrival.
	if n := r.Histogram("netsim_route_seconds", "", nil).Count(); n != int64(m.Offered) {
		t.Fatalf("route observations = %d, offered = %d", n, m.Offered)
	}
	if m.Recovered > 0 {
		if n := r.Histogram("netsim_restore_seconds", "", nil).Count(); n == 0 {
			t.Fatal("no restoration latency observations")
		}
	}
}
