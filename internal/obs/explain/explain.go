// Package explain renders a per-request routing report: how the Eq. 1 cost
// of a routed pair decomposes into per-link w(e, λ) and per-node conversion
// terms, where the time went (phase spans mapped onto the Theorem 1
// complexity terms), and whether the Lemma 2 bound — the checkable half of
// the Theorem 2 factor-2 guarantee — actually held for this request.
//
// The cost recomputation deliberately mirrors the first-principles oracle
// in internal/check term for term, in the same summation order, so a
// report's per-path totals agree bit-exactly with check.PathCost; a test
// in this package asserts that on generated instances. The package depends
// only on wdm and obs (never on core), so the router can attach a *Report
// to its trace payload without an import cycle.
package explain

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/obs"
	"repro/internal/wdm"
)

// Input is the routed result to explain — field-for-field the slice of
// core.Result the report needs, plus the request identity. Primary is
// required; Backup may be nil (single-path disciplines).
type Input struct {
	Req        int64 // span request ID (-1 when unknown)
	Algorithm  string
	S, T       int
	Primary    *wdm.Semilightpath
	Backup     *wdm.Semilightpath
	Cost       float64 // the router's reported pair cost
	AuxWeight  float64 // ω(P₁) + ω(P₂), 0 when no auxiliary pair exists
	LoadAux    bool    // ω is congestion-weighted (G_c), not comparable to Eq. 1 cost
	NaiveCost  float64 // first-fit cost (+Inf when infeasible)
	Threshold  float64 // MinCog ϑ (load variants)
	Iterations int     // MinCog rounds
	PathLoad   float64
}

// Conv is one wavelength conversion at an intermediate node: the λp → λq
// switch entering the next hop, priced at c_v(λp, λq).
type Conv struct {
	Node int            `json:"node"`
	From wdm.Wavelength `json:"from_lambda"`
	To   wdm.Wavelength `json:"to_lambda"`
	Cost float64        `json:"cost"`
}

// Hop is one link traversal with its Eq. 1 weight. Conv, when non-nil, is
// the conversion performed at this hop's head node into the next hop.
type Hop struct {
	Link   int            `json:"link"`
	From   int            `json:"from"`
	To     int            `json:"to"`
	Lambda wdm.Wavelength `json:"lambda"`
	W      float64        `json:"w"` // w(e, λ)
	Conv   *Conv          `json:"conv,omitempty"`
}

// Path is one semilightpath with its cost breakdown. Cost is recomputed in
// check.PathCost's summation order (link weight of hop i, then the
// conversion entering hop i), so it is bit-identical to the oracle; it
// equals LinkCost + ConvCost up to float association.
type Path struct {
	Hops     []Hop   `json:"hops"`
	LinkCost float64 `json:"link_cost"`
	ConvCost float64 `json:"conv_cost"`
	Cost     float64 `json:"cost"`
}

// Bound is the per-request Lemma 2 / Theorem 2 audit: the refined pair
// cost must not exceed the auxiliary-graph pair weight ω, and ω ≤ 2·OPT
// under the §3.3 assumptions — so Holds certifies this request's factor-2
// guarantee. Checked is false when the algorithm produced no auxiliary
// pair (two-step baseline) or when the pair weight is congestion-based
// (MinLoad's G_c, incommensurable with Eq. 1 cost); Holds is then vacuous.
type Bound struct {
	Checked   bool    `json:"checked"`
	AuxWeight float64 `json:"aux_weight"`
	PairCost  float64 `json:"pair_cost"`
	Slack     float64 `json:"slack"` // AuxWeight − PairCost (≥ −eps when Holds)
	Holds     bool    `json:"holds"`
}

// Phase is the aggregate of all spans with one name, mapped to the paper
// term it implements.
type Phase struct {
	Name    string  `json:"name"`
	Term    string  `json:"term"`
	Count   int     `json:"count"`
	Seconds float64 `json:"seconds"`
}

// Report is the full explanation of one routed request.
type Report struct {
	Req          int64    `json:"req"`
	Algorithm    string   `json:"algorithm"`
	S            int      `json:"s"`
	T            int      `json:"t"`
	Primary      Path     `json:"primary"`
	Backup       *Path    `json:"backup,omitempty"`
	PairCost     float64  `json:"pair_cost"`     // recomputed Primary.Cost + Backup.Cost
	ReportedCost float64  `json:"reported_cost"` // the router's res.Cost
	AuxWeight    float64  `json:"aux_weight,omitempty"`
	NaiveCost    *float64 `json:"naive_cost,omitempty"` // omitted when first-fit was infeasible (+Inf)
	Threshold    float64  `json:"threshold,omitempty"`
	Iterations   int      `json:"iterations,omitempty"`
	PathLoad     float64  `json:"path_load"`
	Bound        Bound    `json:"bound"`
	Phases       []Phase  `json:"phases,omitempty"`
}

// boundEps matches the mixed tolerance of check.approxEq: the refined and
// auxiliary costs come from different float summation orders, so a strict
// ≤ would flag round-off as a violated guarantee.
const boundEps = 1e-9

// buildPath decomposes one semilightpath. The running total mirrors
// check.PathCost exactly: hop i's link weight is added before the
// conversion entering hop i, identity conversions add nothing, and a
// disallowed conversion poisons the total to +Inf.
func buildPath(net *wdm.Network, p *wdm.Semilightpath) Path {
	out := Path{Hops: make([]Hop, len(p.Hops))}
	for i, h := range p.Hops {
		l := net.Link(h.Link)
		w := l.Cost(h.Wavelength)
		out.Hops[i] = Hop{Link: h.Link, From: l.From, To: l.To, Lambda: h.Wavelength, W: w}
		out.LinkCost += w
		out.Cost += w
		if i > 0 {
			prev := p.Hops[i-1].Wavelength
			if prev != h.Wavelength {
				v := net.Link(p.Hops[i-1].Link).To
				cc := math.Inf(1)
				if net.Converter(v).Allowed(prev, h.Wavelength) {
					cc = net.Converter(v).Cost(prev, h.Wavelength)
				}
				out.Hops[i-1].Conv = &Conv{Node: v, From: prev, To: h.Wavelength, Cost: cc}
				out.ConvCost += cc
				out.Cost += cc
			}
		}
	}
	return out
}

// Build assembles the report for one routed request. Phase timings are not
// filled in here; call AddPhases with the request's trace when one exists.
func Build(net *wdm.Network, in Input) *Report {
	r := &Report{
		Req:          in.Req,
		Algorithm:    in.Algorithm,
		S:            in.S,
		T:            in.T,
		ReportedCost: in.Cost,
		AuxWeight:    in.AuxWeight,
		Threshold:    in.Threshold,
		Iterations:   in.Iterations,
		PathLoad:     in.PathLoad,
	}
	if !math.IsInf(in.NaiveCost, 1) && in.NaiveCost != 0 {
		nc := in.NaiveCost
		r.NaiveCost = &nc
	}
	r.Primary = buildPath(net, in.Primary)
	r.PairCost = r.Primary.Cost
	if in.Backup != nil {
		b := buildPath(net, in.Backup)
		r.Backup = &b
		r.PairCost += b.Cost
	}
	r.Bound = Bound{
		Checked:   in.AuxWeight > 0 && !in.LoadAux,
		AuxWeight: in.AuxWeight,
		PairCost:  r.PairCost,
		Slack:     in.AuxWeight - r.PairCost,
	}
	if r.Bound.Checked {
		tol := boundEps * (1 + math.Abs(in.AuxWeight))
		r.Bound.Holds = r.PairCost <= in.AuxWeight+tol
	}
	return r
}

// phaseTerm maps router span names onto the Theorem 1 complexity terms
// (the same attribution DESIGN.md §7 uses for the phase timers).
var phaseTerm = map[string]string{
	"skeleton-build": "auxiliary-graph construction (Theorem 1 O(n·d + n·W²) term)",
	"reweight":       "auxiliary-graph reweight (Theorem 1 O(n·d + n·W²) term)",
	"suurballe":      "edge-disjoint pair search (Theorem 1 O(m log n) term)",
	"refine":         "Lemma 2 refinement (Theorem 1 O(n·W·log(nW)) term)",
	"mincog":         "MinCog threshold search (§4.1 doubling rounds)",
}

// AddPhases aggregates the trace's spans by name into the report's phase
// table, in first-appearance order. A nil trace leaves the report as-is.
func (r *Report) AddPhases(t *obs.Trace) {
	if t == nil {
		return
	}
	idx := map[string]int{}
	for i := range t.Spans {
		sp := &t.Spans[i]
		j, ok := idx[sp.Name]
		if !ok {
			term := phaseTerm[sp.Name]
			if term == "" {
				term = sp.Name
			}
			j = len(r.Phases)
			idx[sp.Name] = j
			r.Phases = append(r.Phases, Phase{Name: sp.Name, Term: term})
		}
		r.Phases[j].Count++
		r.Phases[j].Seconds += sp.Dur().Seconds()
	}
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// writePath renders one path section of the text report.
func writePath(w io.Writer, label string, p *Path) error {
	if _, err := fmt.Fprintf(w, "%-8s cost %.6g = link %.6g + conversion %.6g\n",
		label, p.Cost, p.LinkCost, p.ConvCost); err != nil {
		return err
	}
	for i := range p.Hops {
		h := &p.Hops[i]
		if _, err := fmt.Fprintf(w, "  hop %-2d  %d -[e%d:λ%d]-> %d   w(e%d,λ%d) = %.6g\n",
			i, h.From, h.Link, h.Lambda, h.To, h.Link, h.Lambda, h.W); err != nil {
			return err
		}
		if h.Conv != nil {
			if _, err := fmt.Fprintf(w, "          conv at node %d: λ%d→λ%d   c_%d(λ%d,λ%d) = %.6g\n",
				h.Conv.Node, h.Conv.From, h.Conv.To, h.Conv.Node, h.Conv.From, h.Conv.To, h.Conv.Cost); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteText renders the human-readable report.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "request  %d → %d via %s", r.S, r.T, r.Algorithm); err != nil {
		return err
	}
	if r.Req > 0 {
		if _, err := fmt.Fprintf(w, "  (trace req %d)", r.Req); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	if err := writePath(w, "primary", &r.Primary); err != nil {
		return err
	}
	if r.Backup != nil {
		if err := writePath(w, "backup", r.Backup); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "pair     cost %.6g (router reported %.6g)\n", r.PairCost, r.ReportedCost); err != nil {
		return err
	}
	if r.NaiveCost != nil {
		if _, err := fmt.Fprintf(w, "         first-fit (unrefined) cost %.6g — refinement saved %.6g\n",
			*r.NaiveCost, *r.NaiveCost-r.ReportedCost); err != nil {
			return err
		}
	}
	if r.Threshold > 0 {
		if _, err := fmt.Fprintf(w, "         MinCog threshold ϑ = %.6g after %d rounds\n", r.Threshold, r.Iterations); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "load     path load %.6g\n", r.PathLoad); err != nil {
		return err
	}
	switch {
	case !r.Bound.Checked:
		if _, err := fmt.Fprintln(w, "bound    no cost-weighted auxiliary pair — Lemma 2 bound not applicable"); err != nil {
			return err
		}
	case r.Bound.Holds:
		if _, err := fmt.Fprintf(w, "bound    pair cost %.6g ≤ ω %.6g (Lemma 2 holds; ω ≤ 2·OPT under §3.3 ⇒ factor-2 certified)\n",
			r.Bound.PairCost, r.Bound.AuxWeight); err != nil {
			return err
		}
	default:
		if _, err := fmt.Fprintf(w, "bound    VIOLATED: pair cost %.6g > ω %.6g (slack %.3g)\n",
			r.Bound.PairCost, r.Bound.AuxWeight, r.Bound.Slack); err != nil {
			return err
		}
	}
	if len(r.Phases) > 0 {
		if _, err := fmt.Fprintln(w, "phases"); err != nil {
			return err
		}
		for _, ph := range r.Phases {
			if _, err := fmt.Fprintf(w, "  %-16s %9.1fµs ×%-3d %s\n",
				ph.Name, ph.Seconds*1e6, ph.Count, ph.Term); err != nil {
				return err
			}
		}
	}
	return nil
}

// SortPhasesBySeconds orders the phase table by descending time — handy
// when rendering many-round MinCog traces where reweight dominates.
func (r *Report) SortPhasesBySeconds() {
	sort.SliceStable(r.Phases, func(i, j int) bool {
		return r.Phases[i].Seconds > r.Phases[j].Seconds
	})
}
