package topofile

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode exercises the JSON topology parser: it must never panic, and
// every accepted input must build a structurally sound network that
// round-trips through Describe/Encode/Decode.
func FuzzDecode(f *testing.F) {
	f.Add(sample)
	f.Add(`{"nodes": 1, "wavelengths": 1, "links": []}`)
	f.Add(`{"nodes": 3, "wavelengths": 2, "converter": {"kind": "none"},
		"links": [{"from": 0, "to": 1, "wavelengths": [1], "costs": [0.5]}]}`)
	f.Add(`{"nodes": -1}`)
	f.Add(`{"nodes": 2, "wavelengths": 1, "links": [{"from": 0, "to": 1, "cost": 1e309}]}`)
	f.Fuzz(func(t *testing.T, src string) {
		net, err := Decode(strings.NewReader(src))
		if err != nil {
			return
		}
		if net.Nodes() < 1 || net.W() < 1 {
			t.Fatalf("accepted invalid dimensions: %d nodes, W=%d", net.Nodes(), net.W())
		}
		for id := 0; id < net.Links(); id++ {
			l := net.Link(id)
			if l.From < 0 || l.From >= net.Nodes() || l.To < 0 || l.To >= net.Nodes() {
				t.Fatalf("link %d endpoints out of range", id)
			}
			if l.From == l.To {
				t.Fatalf("accepted self-loop at %d", l.From)
			}
		}
		// Round trip.
		desc := Describe(net, ConverterSpec{Kind: "full", Cost: 0.5})
		var buf bytes.Buffer
		if err := desc.Encode(&buf); err != nil {
			t.Fatalf("encode failed: %v", err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if back.Nodes() != net.Nodes() || back.Links() != net.Links() {
			t.Fatal("round trip changed structure")
		}
	})
}
