// Package repro is the public API of a full reproduction of
// "Robust Routing in Wide-Area WDM Networks" (Weifa Liang, IPPS 2001).
//
// The paper's problem: given a connection request (s, t) in a
// wavelength-routed WDM network with per-(link, wavelength) costs and
// per-node wavelength-conversion costs, establish two edge-disjoint
// semilightpaths — a primary route and a pre-reserved backup that survives
// any single link failure — while minimising either the pair's total cost
// (§3) or both the network load and the cost (§4).
//
// The facade re-exports the building blocks:
//
//   - Network modelling (wdm): NewNetwork, AddLink/AddUniformLink,
//     converters, wavelength reservation, the network load ρ of Eq. 2.
//   - Routing (core): ApproxMinCost (§3.3, 2-approximation), MinLoad
//     (§4.1 Find_Two_Paths_MinCog, load ratio < 3), MinLoadCost (§4.2
//     two-phase), TwoStepMinCost (naive baseline), plus Establish/Teardown.
//   - Exact solvers (exact): the §3.1 integer program and an exhaustive
//     oracle for small instances.
//   - Topologies (topo): NSFNET, ARPA2, Ring, Grid, Waxman, Complete.
//   - Dynamic traffic (workload, netsim): Poisson request streams, the
//     event-driven simulator with failure injection, active/passive
//     restoration, and reconfiguration accounting.
//
// Quickstart:
//
//	net := repro.NSFNET(repro.TopoConfig{W: 8})
//	route, ok := repro.ApproxMinCost(net, 0, 13, nil)
//	if ok {
//		_ = repro.Establish(net, route) // reserve primary + backup
//	}
package repro

import (
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/lightpath"
	"repro/internal/netsim"
	"repro/internal/provision"
	"repro/internal/reconfig"
	"repro/internal/sbpp"
	"repro/internal/topo"
	"repro/internal/topofile"
	"repro/internal/wdm"
	"repro/internal/workload"
)

// Network is the WDM network G(V, E, Λ) of §2.
type Network = wdm.Network

// Link is a directed fiber link with its wavelength inventory.
type Link = wdm.Link

// Wavelength indexes a channel in Λ.
type Wavelength = wdm.Wavelength

// Semilightpath is a route with per-link wavelength assignment (Eq. 1 cost).
type Semilightpath = wdm.Semilightpath

// Hop is one (link, wavelength) step of a semilightpath.
type Hop = wdm.Hop

// Converter models a node's wavelength-conversion switch.
type Converter = wdm.Converter

// NewNetwork returns an empty network with n nodes and w wavelengths.
func NewNetwork(n, w int) *Network { return wdm.NewNetwork(n, w) }

// NewFullConverter allows any conversion at a uniform cost (§3.3
// assumption (i)).
func NewFullConverter(w int, cost float64) Converter { return wdm.NewFullConverter(w, cost) }

// NewNoConverter forbids conversion (wavelength continuity).
func NewNoConverter() Converter { return wdm.NoConverter{} }

// NewRangeConverter allows conversion within a wavelength-index distance k.
func NewRangeConverter(k int, unitCost float64) Converter {
	return wdm.NewRangeConverter(k, unitCost)
}

// NewMatrixConverter uses an explicit conversion-cost table (§2); negative
// entries mark disallowed conversions.
func NewMatrixConverter(w int, table [][]float64) Converter {
	return wdm.NewMatrixConverter(w, table)
}

// RouteOptions tunes the approximate routers.
type RouteOptions = core.Options

// Route is a routed request: primary + backup plus diagnostics.
type Route = core.Result

// Router is a reusable routing engine: it keeps its auxiliary-graph
// skeletons and disjoint-path search workspaces across calls, so a long-lived
// caller routes requests without per-request graph construction or
// allocation. The one-shot functions below are equivalent to a fresh Router
// per call. A Router is not safe for concurrent use; give each goroutine its
// own.
type Router = core.Router

// NewRouter returns a reusable Router with the given options (nil for
// defaults).
func NewRouter(opts *RouteOptions) *Router { return core.NewRouter(opts) }

// ApproxMinCost finds two edge-disjoint semilightpaths minimising the cost
// sum (§3.3): auxiliary graph + Suurballe + Lemma 2 refinement. It is a
// 2-approximation under the paper's assumptions (Theorem 2).
func ApproxMinCost(net *Network, s, t int, opts *RouteOptions) (*Route, bool) {
	return core.ApproxMinCost(net, s, t, opts)
}

// MinLoad finds two edge-disjoint semilightpaths minimising the network load
// via the Find_Two_Paths_MinCog threshold search (§4.1, Theorem 3).
func MinLoad(net *Network, s, t int, opts *RouteOptions) (*Route, bool) {
	return core.MinLoad(net, s, t, opts)
}

// MinLoadCost minimises load first, then cost within the found load bound
// (§4.2).
func MinLoadCost(net *Network, s, t int, opts *RouteOptions) (*Route, bool) {
	return core.MinLoadCost(net, s, t, opts)
}

// TwoStepMinCost is the naive shortest-then-remove baseline.
func TwoStepMinCost(net *Network, s, t int, opts *RouteOptions) (*Route, bool) {
	return core.TwoStepMinCost(net, s, t, opts)
}

// MinCostNodeDisjoint finds an internally node-disjoint primary/backup pair —
// the stronger §1 protection discipline that survives single node failures.
func MinCostNodeDisjoint(net *Network, s, t int, opts *RouteOptions) (*Route, bool) {
	return core.ApproxMinCostNodeDisjoint(net, s, t, opts)
}

// MultiRoute is a k-protected connection (1 primary + k−1 backups).
type MultiRoute = core.MultiResult

// MinCostK routes k pairwise edge-disjoint semilightpaths — 1+(k−1)
// protection surviving any k−1 simultaneous link failures (k = 2 is the
// paper's problem).
func MinCostK(net *Network, s, t, k int, opts *RouteOptions) (*MultiRoute, bool) {
	return core.ApproxMinCostK(net, s, t, k, opts)
}

// EstablishKPaths reserves all paths of a k-protected route atomically.
func EstablishKPaths(net *Network, r *MultiRoute) error { return core.EstablishK(net, r) }

// TeardownKPaths releases all paths of a k-protected route.
func TeardownKPaths(net *Network, r *MultiRoute) error { return core.TeardownK(net, r) }

// MinCostSRLG routes with a backup that avoids every shared-risk link group
// (SRLG) of its primary, so a whole-duct cut cannot take out both paths.
// maxPrimaries bounds the k-shortest primary retries (0 = default 8).
func MinCostSRLG(net *Network, s, t, maxPrimaries int, opts *RouteOptions) (*Route, bool) {
	return core.ApproxMinCostSRLG(net, s, t, maxPrimaries, opts)
}

// OptimalSemilightpath returns a single minimum-cost semilightpath (the
// Liang–Shen layered-graph algorithm the refinement step builds on).
func OptimalSemilightpath(net *Network, s, t int) (*Semilightpath, float64, bool) {
	return lightpath.Optimal(net, s, t, nil)
}

// BoundedSemilightpath returns the minimum-cost semilightpath using at most
// maxHops links — the delay-constrained variant (§2 lists route delay among
// the network resources).
func BoundedSemilightpath(net *Network, s, t, maxHops int) (*Semilightpath, float64, bool) {
	return lightpath.OptimalBounded(net, s, t, maxHops, nil)
}

// KShortestSemilightpaths enumerates up to k semilightpaths in ascending
// Eq. 1 cost order (Yen's algorithm on the layered graph).
func KShortestSemilightpaths(net *Network, s, t, k int) []*Semilightpath {
	return lightpath.KShortest(net, s, t, k)
}

// Establish reserves both paths of a route atomically.
func Establish(net *Network, r *Route) error { return core.Establish(net, r) }

// Teardown releases both paths of an established route.
func Teardown(net *Network, r *Route) error { return core.Teardown(net, r) }

// ExactSolution is an exact optimum from the §3.1 solvers.
type ExactSolution = exact.Solution

// ExactILP solves the paper's Eq. 3–21 integer program (small instances).
func ExactILP(net *Network, s, t int) (*ExactSolution, bool) {
	sol, _, ok := exact.ILP(net, s, t, exact.ILPConfig{})
	return sol, ok
}

// ExactExhaustive solves the problem by route-pair enumeration (small
// instances).
func ExactExhaustive(net *Network, s, t int) (*ExactSolution, bool) {
	sol, _, ok := exact.Exhaustive(net, s, t, 0)
	return sol, ok
}

// TopoConfig sets wavelengths and costs for the topology generators.
type TopoConfig = topo.Config

// NSFNET returns the 14-node NSFNET backbone.
func NSFNET(c TopoConfig) *Network { return topo.NSFNET(c) }

// ARPA2 returns a 20-node ARPA-2-style backbone.
func ARPA2(c TopoConfig) *Network { return topo.ARPA2(c) }

// Ring returns a bidirectional n-node ring.
func Ring(n int, c TopoConfig) *Network { return topo.Ring(n, c) }

// Grid returns an r×cols bidirectional mesh.
func Grid(r, cols int, c TopoConfig) *Network { return topo.Grid(r, cols, c) }

// Waxman returns a random Waxman graph (seeded, biconnected).
func Waxman(n int, alpha, beta float64, seed int64, c TopoConfig) *Network {
	return topo.Waxman(n, alpha, beta, seed, c)
}

// Complete returns the complete graph on n nodes.
func Complete(n int, c TopoConfig) *Network { return topo.Complete(n, c) }

// Request is a dynamic connection request.
type Request = workload.Request

// PoissonConfig parameterises the Poisson request generator.
type PoissonConfig = workload.PoissonConfig

// HotPair is a skewed-traffic endpoint pair for PoissonConfig.HotPairs.
type HotPair = workload.Pair

// Poisson generates a seeded Poisson request stream (§2 traffic model).
func Poisson(c PoissonConfig) []Request { return workload.Poisson(c) }

// TrafficMatrix weights request rates per node pair.
type TrafficMatrix = workload.Matrix

// MatrixConfig parameterises matrix-driven request generation.
type MatrixConfig = workload.MatrixConfig

// Holding-time distributions for MatrixPoisson.
const (
	HoldingExponential   = workload.HoldingExponential
	HoldingDeterministic = workload.HoldingDeterministic
	HoldingPareto        = workload.HoldingPareto
)

// NewUniformMatrix returns the all-ones traffic matrix.
func NewUniformMatrix(n int) *TrafficMatrix { return workload.NewUniformMatrix(n) }

// NewGravityMatrix returns a gravity-model matrix (rates ∝ pop[s]·pop[d]).
func NewGravityMatrix(pop []float64) *TrafficMatrix { return workload.NewGravityMatrix(pop) }

// MatrixPoisson generates Poisson arrivals with matrix-weighted endpoints
// and a selectable holding-time distribution.
func MatrixPoisson(c MatrixConfig) []Request { return workload.MatrixPoisson(c) }

// Sim is the event-driven dynamic-traffic simulator.
type Sim = netsim.Sim

// SimConfig parameterises a simulation run.
type SimConfig = netsim.Config

// SimMetrics aggregates a simulation run.
type SimMetrics = netsim.Metrics

// Routing algorithms for the simulator.
const (
	AlgoMinCost     = netsim.MinCost
	AlgoMinLoad     = netsim.MinLoad
	AlgoMinLoadCost = netsim.MinLoadCost
	AlgoTwoStep     = netsim.TwoStep
)

// Restoration disciplines for the simulator.
const (
	RestoreActive  = netsim.Active
	RestorePassive = netsim.Passive
)

// NewSim returns a simulator over a private clone of the network.
func NewSim(net *Network, cfg SimConfig) *Sim { return netsim.New(net, cfg) }

// Demand is one static-provisioning request.
type Demand = provision.Demand

// ProvisionConfig tunes the static provisioner.
type ProvisionConfig = provision.Config

// ProvisionResult summarises a provisioning run.
type ProvisionResult = provision.Result

// Static-provisioning routers and demand orderings.
const (
	ProvisionMinCost      = provision.MinCost
	ProvisionMinLoadCost  = provision.MinLoadCost
	ProvisionNodeDisjoint = provision.NodeDisjoint

	OrderInput         = provision.InOrder
	OrderLongestFirst  = provision.LongestFirst
	OrderShortestFirst = provision.ShortestFirst
)

// Provision routes a batch of static demands on the network (offline
// fault-tolerant design), reserving capacity for every placed pair.
func Provision(net *Network, demands []Demand, cfg ProvisionConfig) *ProvisionResult {
	return provision.Provision(net, demands, cfg)
}

// SharedProtection manages shared-backup path protection (SBPP): backup
// wavelength channels are shared between connections whose primaries are
// link-disjoint, saving most of the dedicated-backup capacity under the
// single-link-failure model.
type SharedProtection = sbpp.Manager

// SharedConnection is a connection managed by SharedProtection.
type SharedConnection = sbpp.Connection

// NewSharedProtection wraps the network with SBPP bookkeeping (the network
// is taken over; clone it first to keep the original).
func NewSharedProtection(net *Network) *SharedProtection { return sbpp.NewManager(net) }

// LiveConnection describes an established connection for Reoptimize.
type LiveConnection = reconfig.Connection

// ReconfigResult reports a reconfiguration run.
type ReconfigResult = reconfig.Result

// Reoptimize performs a full network reconfiguration: connections on the
// most loaded links are re-routed with the load-minimising router until the
// network load ρ stops improving — the frozen-network operation the §4
// load-aware routing reduces the need for.
func Reoptimize(net *Network, conns []*LiveConnection, maxRounds int, opts *RouteOptions) *ReconfigResult {
	return reconfig.Optimize(net, conns, maxRounds, opts)
}

// LoadTopology reads a network from the JSON interchange format.
func LoadTopology(path string) (*Network, error) { return topofile.Load(path) }

// SaveTopology writes a network to the JSON interchange format.
func SaveTopology(path string, net *Network, conv topofile.ConverterSpec) error {
	return topofile.Save(path, topofile.Describe(net, conv))
}
