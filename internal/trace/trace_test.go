package trace

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestBufferRecordsAndCounts(t *testing.T) {
	var b Buffer
	b.Record(Event{Time: 1, Kind: Arrival, Conn: 0})
	b.Record(Event{Time: 2, Kind: Accept, Conn: 0})
	b.Record(Event{Time: 3, Kind: Arrival, Conn: 1})
	if b.Count("") != 3 {
		t.Fatalf("total = %d", b.Count(""))
	}
	if b.Count(Arrival) != 2 || b.Count(Accept) != 1 || b.Count(Block) != 0 {
		t.Fatal("per-kind counts wrong")
	}
	evs := b.Events()
	if len(evs) != 3 || evs[1].Kind != Accept {
		t.Fatalf("Events = %v", evs)
	}
	// Returned slice is a copy.
	evs[0].Kind = Drop
	if b.Events()[0].Kind != Arrival {
		t.Fatal("Events leaked internal slice")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	want := []Event{
		{Time: 0.5, Kind: Arrival, Conn: 7, Detail: "0->5"},
		{Time: 1.25, Kind: Failure, Link: 3},
		{Time: 2, Kind: Reconfig, Detail: "rho=0.61"},
	}
	for _, e := range want {
		if err := j.Record(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("lines = %d", lines)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad input accepted")
	}
	evs, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(evs) != 0 {
		t.Fatal("empty input should yield no events")
	}
}

func TestTeeAndNop(t *testing.T) {
	var a, b Buffer
	r := Tee(&a, &b, Nop{})
	if err := r.Record(Event{Kind: Drop}); err != nil {
		t.Fatal(err)
	}
	if a.Count(Drop) != 1 || b.Count(Drop) != 1 {
		t.Fatal("tee did not fan out")
	}
}

// failWriter fails every Write after the first okBytes bytes.
type failWriter struct {
	okBytes int
	wrote   int
	err     error
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.wrote+len(p) > w.okBytes {
		return 0, w.err
	}
	w.wrote += len(p)
	return len(p), nil
}

func TestJSONLFailingWriter(t *testing.T) {
	sink := errors.New("disk full")
	j := NewJSONL(&failWriter{okBytes: 0, err: sink})

	// The internal buffer absorbs events until it fills; the write error
	// must surface through Record by then, and stick afterwards.
	var first error
	for i := 0; i < 200 && first == nil; i++ {
		first = j.Record(Event{Time: float64(i), Kind: Arrival, Conn: i})
	}
	if first == nil {
		t.Fatal("failing writer never surfaced through Record")
	}
	if !errors.Is(first, sink) {
		t.Fatalf("Record error = %v, want wrapped %v", first, sink)
	}
	if err := j.Record(Event{Kind: Accept}); !errors.Is(err, sink) {
		t.Fatalf("error not sticky: %v", err)
	}
	if !errors.Is(j.Err(), sink) || !errors.Is(j.Flush(), sink) {
		t.Fatal("Err/Flush should report the recorded failure")
	}
}

func TestJSONLFlushSurfacesWriteError(t *testing.T) {
	sink := errors.New("pipe closed")
	j := NewJSONL(&failWriter{okBytes: 0, err: sink})
	// One small event stays inside the buffer, so Record succeeds...
	if err := j.Record(Event{Kind: Arrival}); err != nil {
		t.Fatalf("buffered Record failed early: %v", err)
	}
	// ...and the failure is only observable at Flush time.
	if err := j.Flush(); !errors.Is(err, sink) {
		t.Fatalf("Flush = %v, want wrapped %v", err, sink)
	}
}

// closableBuf records whether Close was called.
type closableBuf struct {
	bytes.Buffer
	closed bool
}

func (c *closableBuf) Close() error {
	c.closed = true
	return nil
}

func TestJSONLCloseFlushesAndCloses(t *testing.T) {
	var sink closableBuf
	j := NewJSONL(&sink)
	if err := j.Record(Event{Time: 1, Kind: Accept, Conn: 9}); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 0 {
		t.Fatal("event bypassed the buffer")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if !sink.closed {
		t.Fatal("Close did not close the underlying writer")
	}
	evs, err := ReadJSONL(&sink)
	if err != nil || len(evs) != 1 || evs[0].Conn != 9 {
		t.Fatalf("after Close: events %v, err %v", evs, err)
	}
}

func TestBufferConcurrentRecord(t *testing.T) {
	const workers, perWorker = 8, 500
	var b Buffer
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_ = b.Record(Event{Time: float64(i), Kind: Arrival, Conn: w})
				if i%64 == 0 {
					_ = b.Events() // interleave reads with writes
					_ = b.Count(Arrival)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := b.Count(""); got != workers*perWorker {
		t.Fatalf("recorded %d events, want %d", got, workers*perWorker)
	}
}

func TestEventReqDefaultsToAbsent(t *testing.T) {
	// Logs written before the Req field existed must decode as "no trace"
	// (-1), not as request 0; logs that carry req must keep it.
	legacy := `{"t":1.5,"kind":"accept","conn":3,"link":-1}
{"t":2,"kind":"arrival","conn":4,"link":-1,"req":17}
{"t":3,"kind":"failure","conn":-1,"link":2,"req":-1}
`
	events, err := ReadJSONL(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("decoded %d events", len(events))
	}
	if events[0].Req != -1 {
		t.Errorf("legacy event Req = %d, want -1", events[0].Req)
	}
	if events[1].Req != 17 || events[2].Req != -1 {
		t.Errorf("explicit Req mangled: %d, %d", events[1].Req, events[2].Req)
	}

	// And a freshly recorded event round-trips its Req through JSONL.
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	if err := j.Record(Event{Time: 9, Kind: Block, Conn: 7, Link: -1, Req: 42}); err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Req != 42 {
		t.Fatalf("round-trip lost Req: %+v", back)
	}
}
