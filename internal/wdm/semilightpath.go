package wdm

import (
	"fmt"
	"strings"
)

// Hop is one step of a semilightpath: a link traversed on a specific
// wavelength.
type Hop struct {
	Link       int        // link ID in the network
	Wavelength Wavelength // λ assigned to the link
}

// Semilightpath is a directed path with a wavelength assigned to every link
// (§2). Conversion switch settings at intermediate nodes are implied by
// consecutive hop wavelengths.
type Semilightpath struct {
	Hops []Hop
}

// Len returns the number of links on the path.
func (p *Semilightpath) Len() int { return len(p.Hops) }

// Source returns the first node of the path (panics on an empty path).
func (p *Semilightpath) Source(g *Network) int { return g.Link(p.Hops[0].Link).From }

// Dest returns the last node of the path (panics on an empty path).
func (p *Semilightpath) Dest(g *Network) int { return g.Link(p.Hops[len(p.Hops)-1].Link).To }

// LinkIDs returns the link IDs along the path in order.
func (p *Semilightpath) LinkIDs() []int {
	ids := make([]int, len(p.Hops))
	for i, h := range p.Hops {
		ids[i] = h.Link
	}
	return ids
}

// Nodes returns the node sequence visited by the path (length Len()+1).
func (p *Semilightpath) Nodes(g *Network) []int {
	if len(p.Hops) == 0 {
		return nil
	}
	nodes := make([]int, 0, len(p.Hops)+1)
	nodes = append(nodes, g.Link(p.Hops[0].Link).From)
	for _, h := range p.Hops {
		nodes = append(nodes, g.Link(h.Link).To)
	}
	return nodes
}

// LinkCost returns Σ w(e_i, λ_i), the traversal component of Eq. 1.
func (p *Semilightpath) LinkCost(g *Network) float64 {
	c := 0.0
	for _, h := range p.Hops {
		c += g.Link(h.Link).Cost(h.Wavelength)
	}
	return c
}

// ConvCost returns Σ c_{head(e_i)}(λ_i, λ_{i+1}), the conversion component
// of Eq. 1.
func (p *Semilightpath) ConvCost(g *Network) float64 {
	c := 0.0
	for i := 0; i+1 < len(p.Hops); i++ {
		v := g.Link(p.Hops[i].Link).To
		c += g.ConvCost(v, p.Hops[i].Wavelength, p.Hops[i+1].Wavelength)
	}
	return c
}

// Cost returns C(P) per Eq. 1: link traversal costs plus conversion costs at
// intermediate nodes.
func (p *Semilightpath) Cost(g *Network) float64 {
	return p.LinkCost(g) + p.ConvCost(g)
}

// Validate checks that the path is a connected directed walk from src to dst,
// that every hop's wavelength is installed on its link, and that every
// implied conversion is allowed by the intermediate node's switch. It does
// NOT require wavelengths to be currently available; use ValidateAvailable
// for that.
func (p *Semilightpath) Validate(g *Network, src, dst int) error {
	if len(p.Hops) == 0 {
		return fmt.Errorf("wdm: empty semilightpath")
	}
	at := src
	for i, h := range p.Hops {
		if h.Link < 0 || h.Link >= g.Links() {
			return fmt.Errorf("wdm: hop %d: link %d out of range", i, h.Link)
		}
		l := g.Link(h.Link)
		if l.From != at {
			return fmt.Errorf("wdm: hop %d: link %d starts at node %d, expected %d", i, h.Link, l.From, at)
		}
		if h.Wavelength < 0 || h.Wavelength >= g.W() || !l.Lambda().Contains(h.Wavelength) {
			return fmt.Errorf("wdm: hop %d: λ%d not installed on link %d", i, h.Wavelength, h.Link)
		}
		if i > 0 {
			prev := p.Hops[i-1]
			if prev.Wavelength != h.Wavelength && !g.Converter(at).Allowed(prev.Wavelength, h.Wavelength) {
				return fmt.Errorf("wdm: hop %d: conversion λ%d→λ%d not allowed at node %d",
					i, prev.Wavelength, h.Wavelength, at)
			}
		}
		at = l.To
	}
	if at != dst {
		return fmt.Errorf("wdm: path ends at node %d, expected %d", at, dst)
	}
	return nil
}

// ValidateAvailable is Validate plus the requirement that every hop's
// wavelength is currently in Λ_avail of its link.
func (p *Semilightpath) ValidateAvailable(g *Network, src, dst int) error {
	if err := p.Validate(g, src, dst); err != nil {
		return err
	}
	for i, h := range p.Hops {
		if !g.Link(h.Link).HasAvail(h.Wavelength) {
			return fmt.Errorf("wdm: hop %d: λ%d on link %d is in use", i, h.Wavelength, h.Link)
		}
	}
	return nil
}

// EdgeDisjoint reports whether p and q share no physical link.
func (p *Semilightpath) EdgeDisjoint(q *Semilightpath) bool {
	seen := make(map[int]bool, len(p.Hops))
	for _, h := range p.Hops {
		seen[h.Link] = true
	}
	for _, h := range q.Hops {
		if seen[h.Link] {
			return false
		}
	}
	return true
}

// String renders the path as "0 -[e3:λ1]-> 2 -[e7:λ1]-> 5".
func (p *Semilightpath) String() string {
	if len(p.Hops) == 0 {
		return "<empty>"
	}
	var b strings.Builder
	for i, h := range p.Hops {
		if i == 0 {
			fmt.Fprintf(&b, "·")
		}
		fmt.Fprintf(&b, " -[e%d:λ%d]-> ·", h.Link, h.Wavelength)
	}
	return b.String()
}

// Format renders the path with concrete node IDs from the network.
func (p *Semilightpath) Format(g *Network) string {
	if len(p.Hops) == 0 {
		return "<empty>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d", p.Source(g))
	for _, h := range p.Hops {
		fmt.Fprintf(&b, " -[e%d:λ%d]-> %d", h.Link, h.Wavelength, g.Link(h.Link).To)
	}
	return b.String()
}

// Reserve atomically locks every (link, wavelength) pair on the path. Either
// all hops are reserved or none are (on error the partial reservation is
// rolled back).
func (g *Network) Reserve(p *Semilightpath) error {
	for i, h := range p.Hops {
		if err := g.Use(h.Link, h.Wavelength); err != nil {
			for j := 0; j < i; j++ {
				// Rollback cannot fail: we just reserved these.
				if rerr := g.Release(p.Hops[j].Link, p.Hops[j].Wavelength); rerr != nil {
					//wdmlint:ignore hotalloc panic-path formatting; unreachable in a correct run
					panic(fmt.Sprintf("wdm: rollback failed: %v", rerr))
				}
			}
			//wdmlint:ignore hotalloc error return path; never taken on the admit path
			return fmt.Errorf("wdm: reserve hop %d: %w", i, err)
		}
	}
	return nil
}

// ReleasePath returns every (link, wavelength) pair on the path to the pool.
func (g *Network) ReleasePath(p *Semilightpath) error {
	for i, h := range p.Hops {
		if err := g.Release(h.Link, h.Wavelength); err != nil {
			//wdmlint:ignore hotalloc error return path; never taken on the admit path
			return fmt.Errorf("wdm: release hop %d: %w", i, err)
		}
	}
	return nil
}
