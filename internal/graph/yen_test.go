package graph

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestYenDiamond(t *testing.T) {
	g := diamond()
	paths := g.Yen(0, 3, 5)
	// Exactly three simple paths exist: 0-1-3 (8? recompute): edges
	// 0→1(1), 0→2(4), 1→2(2), 1→3(7), 2→3(1):
	// 0-1-2-3 = 4, 0-2-3 = 5, 0-1-3 = 8.
	if len(paths) != 3 {
		t.Fatalf("found %d paths, want 3", len(paths))
	}
	want := []float64{4, 5, 8}
	for i, p := range paths {
		if err := g.ValidatePath(p, 0, 3); err != nil {
			t.Fatal(err)
		}
		if math.Abs(g.PathWeight(p)-want[i]) > 1e-9 {
			t.Fatalf("path %d weight = %g, want %g", i, g.PathWeight(p), want[i])
		}
	}
}

func TestYenDegenerate(t *testing.T) {
	g := diamond()
	if g.Yen(0, 0, 3) != nil {
		t.Fatal("s == t should yield nil")
	}
	if g.Yen(0, 3, 0) != nil {
		t.Fatal("K = 0 should yield nil")
	}
	if g.Yen(3, 0, 2) != nil {
		t.Fatal("unreachable should yield nil")
	}
}

func TestYenParallelEdges(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 1, 3)
	paths := g.Yen(0, 1, 5)
	if len(paths) != 3 {
		t.Fatalf("found %d paths, want 3", len(paths))
	}
	for i, w := range []float64{1, 2, 3} {
		if g.PathWeight(paths[i]) != w {
			t.Fatalf("path %d weight %g, want %g", i, g.PathWeight(paths[i]), w)
		}
	}
}

func TestYenLeavesGraphIntact(t *testing.T) {
	g := diamond()
	g.Disable(3) // 1→3
	g.Yen(0, 3, 4)
	if !g.Disabled(3) {
		t.Fatal("Yen re-enabled a caller-disabled edge")
	}
	for id := 0; id < g.M(); id++ {
		if id != 3 && g.Disabled(id) {
			t.Fatalf("Yen left edge %d disabled", id)
		}
	}
	// And it respected the disabled edge: 0-1-3 must be absent.
	for _, p := range g.Yen(0, 3, 5) {
		for _, id := range p {
			if id == 3 {
				t.Fatal("Yen used a disabled edge")
			}
		}
	}
}

// Brute-force K shortest simple paths for cross-checking.
func bruteKShortest(g *Graph, s, t, k int) []float64 {
	var weights []float64
	g.SimplePaths(s, t, 0, func(p []int) bool {
		weights = append(weights, g.PathWeight(p))
		return true
	})
	sort.Float64s(weights)
	if len(weights) > k {
		weights = weights[:k]
	}
	return weights
}

func TestYenMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(4)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 1+rng.Float64()*5)
			}
		}
		const k = 6
		paths := g.Yen(0, n-1, k)
		want := bruteKShortest(g, 0, n-1, k)
		if len(paths) != len(want) {
			t.Fatalf("trial %d: yen found %d, brute %d", trial, len(paths), len(want))
		}
		seen := map[string]bool{}
		prev := 0.0
		for i, p := range paths {
			if err := g.ValidatePath(p, 0, n-1); err != nil {
				t.Fatal(err)
			}
			// Vertex-simple.
			visited := map[int]bool{0: true}
			for _, id := range p {
				v := g.Edge(id).To
				if visited[v] {
					t.Fatalf("trial %d: path %d revisits vertex %d", trial, i, v)
				}
				visited[v] = true
			}
			key := pathKey(p)
			if seen[key] {
				t.Fatalf("trial %d: duplicate path", trial)
			}
			seen[key] = true
			w := g.PathWeight(p)
			if w < prev-1e-9 {
				t.Fatalf("trial %d: weights not sorted", trial)
			}
			prev = w
			if math.Abs(w-want[i]) > 1e-9 {
				t.Fatalf("trial %d: path %d weight %g, want %g", trial, i, w, want[i])
			}
		}
	}
}

func BenchmarkYen8(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := New(60)
	for i := 0; i < 300; i++ {
		u, v := rng.Intn(60), rng.Intn(60)
		if u != v {
			g.AddEdge(u, v, 1+rng.Float64())
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Yen(i%60, (i+30)%60, 8)
	}
}
