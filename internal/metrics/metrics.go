// Package metrics is the dependency-free instrumentation layer for the
// routing engine and simulator. It provides atomic counters, gauges,
// histograms with fixed log-spaced buckets, and phase timers, collected in a
// Registry that renders snapshots in the Prometheus text exposition format
// or as JSON.
//
// Two properties make it safe to wire into hot paths unconditionally:
//
//   - Nil safety: every method on a nil instrument (and on a nil *Registry)
//     is a no-op, so instrumentation is off by default and costs only a nil
//     check when disabled. Packages expose EnableMetrics(*Registry) and keep
//     nil instruments until it is called.
//   - Concurrency safety: all updates are lock-free atomics; snapshots may
//     race with updates and are only point-in-time consistent per value,
//     which is the usual Prometheus contract.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing integer. The zero value is ready;
// a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n < 0 panics: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	if n < 0 {
		panic("metrics: counter decrement")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float value that can go up and down. A nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the value by d (atomically, via CAS).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (upper bounds, with an
// implicit +Inf overflow bucket) and tracks the total sum and count. A nil
// *Histogram is a no-op.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds (le semantics)
	counts  []atomic.Int64
	n       atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram builds a standalone histogram (outside any registry) over the
// given strictly increasing upper bounds; nil bounds default to time buckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = TimeBuckets()
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds not strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe folds one sample into the histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns Sum/Count (0 when empty).
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// Bucket is one cumulative histogram bucket: the count of observations ≤ LE.
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// MarshalJSON renders LE as a string so the +Inf overflow bucket stays
// valid JSON (encoding/json rejects infinite numbers).
func (b Bucket) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, fmtFloat(b.LE), b.Count)), nil
}

// UnmarshalJSON parses the string-encoded LE back ("+Inf" included).
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		LE    string `json:"le"`
		Count int64  `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	le, err := strconv.ParseFloat(raw.LE, 64)
	if err != nil {
		return fmt.Errorf("metrics: bad bucket bound %q: %w", raw.LE, err)
	}
	b.LE, b.Count = le, raw.Count
	return nil
}

// Buckets returns the cumulative buckets, ending with the +Inf bucket whose
// count equals Count().
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	out := make([]Bucket, len(h.counts))
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		out[i] = Bucket{LE: le, Count: cum}
	}
	return out
}

// Quantile returns an upper-bound estimate of the q-quantile (0 ≤ q ≤ 1):
// the smallest bucket bound whose cumulative count covers q. Returns +Inf
// when the quantile lands in the overflow bucket, 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// Timer observes phase durations (in seconds) into a histogram. Use as
//
//	defer t.Stop(t.Start())
//
// or split Start/Stop around the phase. A nil *Timer is a no-op and its
// Start avoids the clock read entirely.
type Timer struct {
	h *Histogram
}

// Start returns the phase start time (zero for a nil timer).
func (t *Timer) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// Stop records the elapsed time since start. A zero start (nil timer at
// Start time) records nothing.
func (t *Timer) Stop(start time.Time) {
	if t == nil || start.IsZero() {
		return
	}
	t.h.Observe(time.Since(start).Seconds())
}

// Observe records an already-measured duration — the hook for callers that
// stamp timestamps themselves (stage attribution accumulates nanoseconds in
// request state and folds them in once at the end of the request).
func (t *Timer) Observe(d time.Duration) {
	if t == nil || d < 0 {
		return
	}
	t.h.Observe(d.Seconds())
}

// Hist exposes the underlying histogram (nil for a nil timer).
func (t *Timer) Hist() *Histogram {
	if t == nil {
		return nil
	}
	return t.h
}

// LogBuckets returns log-spaced upper bounds from lo up to and including the
// first bound ≥ hi, with perDecade bounds per factor of 10. lo must be
// positive and hi > lo.
func LogBuckets(lo, hi float64, perDecade int) []float64 {
	if lo <= 0 || hi <= lo || perDecade < 1 {
		panic("metrics: invalid log bucket spec")
	}
	ratio := math.Pow(10, 1/float64(perDecade))
	var out []float64
	for b := lo; ; b *= ratio {
		out = append(out, b)
		if b >= hi {
			return out
		}
	}
}

// TimeBuckets is the default duration bucketing: 1µs → 10s, 3 per decade.
func TimeBuckets() []float64 { return LogBuckets(1e-6, 10, 3) }

// SizeBuckets is the default size/count bucketing: 1 → 10⁶, 3 per decade.
func SizeBuckets() []float64 { return LogBuckets(1, 1e6, 3) }

// metric kinds in exposition output.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

type metric struct {
	name string
	help string
	kind string
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry names and collects instruments. A nil *Registry hands out nil
// instruments, so a single conditional at setup time turns the whole layer
// on or off.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*metric
	order  []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metric{}}
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// lookup registers a new metric under name (constructing its instrument
// under the registry lock) or returns the existing one, panicking on a kind
// clash (a programming error, like Prometheus client libraries treat it).
func (r *Registry) lookup(name, help, kind string, bounds []float64) *metric {
	if !validName(name) {
		panic("metrics: invalid metric name " + strconv.Quote(name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		m.h = NewHistogram(bounds)
	}
	r.byName[name] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns the counter registered under name, creating it on first
// use. Nil receiver → nil counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, nil).c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, nil).g
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds on first use (nil bounds → TimeBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, bounds).h
}

// Timer returns a phase timer whose histogram (of seconds) is registered
// under name with the default time buckets.
func (r *Registry) Timer(name, help string) *Timer {
	if r == nil {
		return nil
	}
	return &Timer{h: r.Histogram(name, help, TimeBuckets())}
}

// snapshotOrder returns the metrics in registration order.
func (r *Registry) snapshotOrder() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metric(nil), r.order...)
}

func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, m := range r.snapshotOrder() {
		if m.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.name, escapeHelp(m.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", m.name, m.c.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s %s\n", m.name, fmtFloat(m.g.Value()))
		case kindHistogram:
			for _, bk := range m.h.Buckets() {
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.name, fmtFloat(bk.LE), bk.Count)
			}
			fmt.Fprintf(&b, "%s_sum %s\n", m.name, fmtFloat(m.h.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", m.name, m.h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// MetricSnapshot is the JSON form of one metric.
type MetricSnapshot struct {
	Name string `json:"name"`
	Type string `json:"type"`
	Help string `json:"help,omitempty"`
	// Counter/gauge value.
	Value *float64 `json:"value,omitempty"`
	// Histogram summary.
	Count   *int64   `json:"count,omitempty"`
	Sum     *float64 `json:"sum,omitempty"`
	Mean    *float64 `json:"mean,omitempty"`
	P50     *float64 `json:"p50,omitempty"`
	P99     *float64 `json:"p99,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// fptr returns a pointer to v, or nil when v is not finite — non-finite
// values are omitted from the JSON snapshot rather than breaking it.
func fptr(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

// Snapshot captures all metrics in registration order. A nil registry
// yields nil.
func (r *Registry) Snapshot() []MetricSnapshot {
	if r == nil {
		return nil
	}
	var out []MetricSnapshot
	for _, m := range r.snapshotOrder() {
		s := MetricSnapshot{Name: m.name, Type: m.kind, Help: m.help}
		switch m.kind {
		case kindCounter:
			s.Value = fptr(float64(m.c.Value()))
		case kindGauge:
			s.Value = fptr(m.g.Value())
		case kindHistogram:
			n := m.h.Count()
			s.Count = &n
			s.Sum = fptr(m.h.Sum())
			s.Mean = fptr(m.h.Mean())
			s.P50 = fptr(m.h.Quantile(0.5))
			s.P99 = fptr(m.h.Quantile(0.99))
			s.Buckets = m.h.Buckets()
		}
		out = append(out, s)
	}
	return out
}

// WriteJSON renders the snapshot as an indented JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteFile writes the registry to path, choosing the format by suffix:
// ".json" → JSON snapshot, anything else → Prometheus text exposition.
// A nil registry still writes a valid (empty) document.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = r.WriteJSON(f)
	} else {
		err = r.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
