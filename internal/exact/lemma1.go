package exact

import (
	"fmt"

	"repro/internal/wdm"
)

// Lemma 1 (§3.2) proves NP-hardness by reducing the two minimum-cost
// edge-disjoint paths problem with per-path edge costs [Li–McCormick–
// Simchi-Levi] to the optimal edge-disjoint semilightpath problem without
// wavelength conversion. This file implements the reduction constructively
// so the equivalence can be checked computationally (it is exercised by the
// tests, which compare both sides by brute force on small instances).

// PairEdge is an edge of the two-cost instance: traversing it costs W1 on
// the first path and W2 on the second. The reduction uses weights in
// {(0,0), (0,1), (1,0)}; a weight of 1 means "this path may not use the
// edge" in the zero-cost decision problem.
type PairEdge struct {
	From, To int
	W1, W2   int
}

// Lemma1Reduction builds the WDM instance of the paper's reduction: two
// wavelengths, no conversion anywhere, and for each edge
//
//	(0,0) → both λ1 and λ2 installed,
//	(1,0) → only λ2 installed (the λ1-path cannot use the edge),
//	(0,1) → only λ1 installed,
//
// all at zero traversal cost. Two zero-cost edge-disjoint paths — one
// riding λ1, the other λ2 — exist in the WDM instance iff the two-cost
// instance has a zero-cost solution.
func Lemma1Reduction(n int, edges []PairEdge) (*wdm.Network, error) {
	net := wdm.NewNetwork(n, 2)
	net.SetAllConverters(wdm.NoConverter{})
	for _, e := range edges {
		switch {
		case e.W1 == 0 && e.W2 == 0:
			net.AddLink(e.From, e.To, []wdm.Wavelength{0, 1}, []float64{0, 0})
		case e.W1 == 1 && e.W2 == 0:
			net.AddLink(e.From, e.To, []wdm.Wavelength{1}, []float64{0})
		case e.W1 == 0 && e.W2 == 1:
			net.AddLink(e.From, e.To, []wdm.Wavelength{0}, []float64{0})
		default:
			return nil, fmt.Errorf("exact: Lemma 1 weights must be (0,0), (1,0) or (0,1); got (%d,%d)", e.W1, e.W2)
		}
	}
	return net, nil
}

// HasZeroCostSplitPair decides (by exhaustive enumeration; the problem is
// NP-complete) whether the WDM instance admits two edge-disjoint lightpaths
// from s to t with one assigned λ0 throughout and the other λ1 throughout.
// This is exactly the question the Lemma 1 reduction encodes.
func HasZeroCostSplitPair(net *wdm.Network, s, t int) bool {
	paths0 := lightRoutes(net, s, t, 0)
	if len(paths0) == 0 {
		return false
	}
	paths1 := lightRoutes(net, s, t, 1)
	for _, p0 := range paths0 {
		used := map[int]bool{}
		for _, id := range p0 {
			used[id] = true
		}
		for _, p1 := range paths1 {
			ok := true
			for _, id := range p1 {
				if used[id] {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
	}
	return false
}

// lightRoutes lists all node-simple routes from s to t whose every link
// carries wavelength lam.
func lightRoutes(net *wdm.Network, s, t int, lam wdm.Wavelength) [][]int {
	var routes [][]int
	onPath := make([]bool, net.Nodes())
	var route []int
	var dfs func(u int)
	dfs = func(u int) {
		if u == t {
			routes = append(routes, append([]int(nil), route...))
			return
		}
		onPath[u] = true
		for _, id := range net.Out(u) {
			l := net.Link(id)
			if !l.Lambda().Contains(lam) || onPath[l.To] || l.To == s {
				continue
			}
			route = append(route, id)
			dfs(l.To)
			route = route[:len(route)-1]
		}
		onPath[u] = false
	}
	dfs(s)
	return routes
}

// TwoCostZeroSolution decides the original two-cost problem directly (the
// left side of the reduction): do two edge-disjoint s→t paths exist with
// the first path using only W1 = 0 edges and the second only W2 = 0 edges?
func TwoCostZeroSolution(n int, edges []PairEdge, s, t int) bool {
	// Enumerate simple paths over the allowed edge sets.
	adj := make([][]int, n)
	for i, e := range edges {
		adj[e.From] = append(adj[e.From], i)
	}
	var enumerate func(costOf func(PairEdge) int) [][]int
	enumerate = func(costOf func(PairEdge) int) [][]int {
		var routes [][]int
		onPath := make([]bool, n)
		var route []int
		var dfs func(u int)
		dfs = func(u int) {
			if u == t {
				routes = append(routes, append([]int(nil), route...))
				return
			}
			onPath[u] = true
			for _, ei := range adj[u] {
				e := edges[ei]
				if costOf(e) != 0 || onPath[e.To] || e.To == s {
					continue
				}
				route = append(route, ei)
				dfs(e.To)
				route = route[:len(route)-1]
			}
			onPath[u] = false
		}
		dfs(s)
		return routes
	}
	first := enumerate(func(e PairEdge) int { return e.W1 })
	second := enumerate(func(e PairEdge) int { return e.W2 })
	for _, p1 := range first {
		used := map[int]bool{}
		for _, ei := range p1 {
			used[ei] = true
		}
		for _, p2 := range second {
			ok := true
			for _, ei := range p2 {
				if used[ei] {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
	}
	return false
}
