package graph

import (
	"fmt"

	"repro/internal/pq"
)

// Workspace owns the per-call scratch state of a shortest-path computation —
// distance and predecessor arrays plus the indexed heap — so repeated
// searches reuse one allocation. Stale entries are invalidated by a
// generation counter instead of an O(n) clear: dist[v]/prevEdge[v] are
// meaningful only while stamp[v] equals the current generation, so beginning
// a new search costs O(1) (plus an amortised array growth when the graph is
// larger than any seen before).
//
// The zero value is ready to use. A Workspace is not safe for concurrent
// use; give each goroutine its own.
type Workspace struct {
	dist     []float64
	prevEdge []int
	stamp    []uint32
	gen      uint32
	heap     pq.IndexedHeap

	src int
	n   int

	// Search-effort counters for the last search, mirroring
	// PathResult.Relaxations / PathResult.HeapOps.
	relaxations int64
	heapOps     int64
}

// NewWorkspace returns an empty workspace. Equivalent to &Workspace{}; it
// exists for symmetry with the other constructors.
func NewWorkspace() *Workspace { return &Workspace{} }

// begin prepares the workspace for a search over n vertices: grows the
// arrays, empties the heap, and advances the generation so every previous
// entry reads as unvisited.
func (ws *Workspace) begin(n int) {
	ws.n = n
	for len(ws.dist) < n {
		ws.dist = append(ws.dist, 0)
		ws.prevEdge = append(ws.prevEdge, -1)
		ws.stamp = append(ws.stamp, 0)
	}
	ws.heap.Grow(n)
	ws.heap.Reset()
	ws.gen++
	if ws.gen == 0 { // wrapped: stale stamps could collide, clear them
		for i := range ws.stamp {
			ws.stamp[i] = 0
		}
		ws.gen = 1
	}
	ws.relaxations = 0
	ws.heapOps = 0
}

// visit records the tentative distance and tree edge of v.
func (ws *Workspace) visit(v int, d float64, edge int) {
	ws.dist[v] = d
	ws.prevEdge[v] = edge
	ws.stamp[v] = ws.gen
}

// Source returns the source vertex of the last search.
func (ws *Workspace) Source() int { return ws.src }

// Dist returns the shortest distance from the source to v, or Inf when v was
// not reached by the last search.
func (ws *Workspace) Dist(v int) float64 {
	if ws.stamp[v] != ws.gen {
		return Inf
	}
	return ws.dist[v]
}

// Reached reports whether v was reached by the last search.
func (ws *Workspace) Reached(v int) bool { return ws.stamp[v] == ws.gen }

// PrevEdge returns the tree edge used to reach v, or -1 at the source or
// when v was not reached.
func (ws *Workspace) PrevEdge(v int) int {
	if ws.stamp[v] != ws.gen {
		return -1
	}
	return ws.prevEdge[v]
}

// Relaxations returns the number of edge relaxation attempts of the last
// search (see PathResult.Relaxations).
func (ws *Workspace) Relaxations() int64 { return ws.relaxations }

// HeapOps returns the number of heap operations of the last search (see
// PathResult.HeapOps).
func (ws *Workspace) HeapOps() int64 { return ws.heapOps }

// AppendPathTo appends the edge-ID path from the source to v onto buf and
// returns the extended slice, or (buf unchanged, false) when v is
// unreachable. Passing buf[:0] of a retained slice makes path extraction
// allocation-free once the buffer has warmed up.
func (ws *Workspace) AppendPathTo(buf []int, v int, g *Graph) ([]int, bool) {
	if !ws.Reached(v) {
		return buf, false
	}
	start := len(buf)
	for v != ws.src {
		e := ws.prevEdge[v]
		if e < 0 {
			return buf[:start], false // defensive: broken tree
		}
		//wdmlint:ignore hotalloc appends into the caller's reusable path buffer; amortizes to zero
		buf = append(buf, e)
		v = g.Edge(e).From
	}
	// Reverse the appended segment in place.
	for i, j := start, len(buf)-1; i < j; i, j = i+1, j-1 {
		buf[i], buf[j] = buf[j], buf[i]
	}
	return buf, true
}

// Result materialises the last search as a standalone PathResult sized for a
// graph of n vertices. The result aliases the workspace arrays: it stays
// valid only until the next search on this workspace.
func (ws *Workspace) Result(n int) *PathResult {
	for v := 0; v < n; v++ {
		if ws.stamp[v] != ws.gen {
			ws.dist[v] = Inf
			ws.prevEdge[v] = -1
		}
	}
	return &PathResult{
		Dist:        ws.dist[:n],
		PrevEdge:    ws.prevEdge[:n],
		Source:      ws.src,
		Relaxations: ws.relaxations,
		HeapOps:     ws.heapOps,
	}
}

// DijkstraInto computes single-source shortest paths from src over enabled
// edges using ws for all scratch state. After the workspace has warmed up to
// the graph size the search performs no heap allocations. Results are read
// through the workspace accessors (Dist, Reached, AppendPathTo, …) and stay
// valid until the next search on the same workspace. All enabled edge
// weights must be non-negative; it panics otherwise.
//
//wdm:hotpath
func (g *Graph) DijkstraInto(ws *Workspace, src int) {
	ws.begin(g.n)
	ws.src = src
	ws.visit(src, 0, -1)
	h := &ws.heap
	h.Push(src, 0)
	ws.heapOps++
	for !h.Empty() {
		u, du := h.Pop()
		ws.heapOps++
		if du > ws.dist[u] {
			continue
		}
		for _, id := range g.out[u] {
			if g.disabled[id] {
				continue
			}
			e := &g.edges[id]
			if e.Weight < 0 {
				//wdmlint:ignore hotalloc panic-path formatting; unreachable in a correct run
				panic(fmt.Sprintf("graph: Dijkstra on negative edge %d (weight %g)", id, e.Weight))
			}
			ws.relaxations++
			nd := du + e.Weight
			to := e.To
			if ws.stamp[to] != ws.gen {
				ws.visit(to, nd, id)
				h.Push(to, nd)
				ws.heapOps++
			} else if nd < ws.dist[to] {
				ws.dist[to] = nd
				ws.prevEdge[to] = id
				h.PushOrDecrease(to, nd)
				ws.heapOps++
			}
		}
	}
}
