// Package other is not on the deterministic list: map iteration is fine here.
package other

// Sum folds map values in iteration order: clean (package out of scope).
func Sum(m map[int]float64) float64 {
	total := 0.0
	for _, c := range m {
		total += c
	}
	return total
}
