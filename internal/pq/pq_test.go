package pq

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestIndexedHeapBasic(t *testing.T) {
	h := NewIndexedHeap(10)
	if !h.Empty() || h.Len() != 0 {
		t.Fatal("new heap not empty")
	}
	h.Push(3, 5.0)
	h.Push(1, 2.0)
	h.Push(7, 9.0)
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	if id, p := h.Peek(); id != 1 || p != 2.0 {
		t.Fatalf("Peek = (%d, %g)", id, p)
	}
	id, p := h.Pop()
	if id != 1 || p != 2.0 {
		t.Fatalf("Pop = (%d, %g)", id, p)
	}
	if h.Contains(1) {
		t.Fatal("popped item still contained")
	}
	if id, _ := h.Pop(); id != 3 {
		t.Fatalf("second Pop = %d", id)
	}
	if id, _ := h.Pop(); id != 7 {
		t.Fatalf("third Pop = %d", id)
	}
	if !h.Empty() {
		t.Fatal("heap should be empty")
	}
}

func TestIndexedHeapDecreaseKey(t *testing.T) {
	h := NewIndexedHeap(5)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	h.DecreaseKey(2, 5)
	if id, p := h.Pop(); id != 2 || p != 5 {
		t.Fatalf("Pop after DecreaseKey = (%d, %g)", id, p)
	}
	if h.Priority(2) != 5 {
		t.Fatalf("Priority(2) = %g", h.Priority(2))
	}
}

func TestIndexedHeapPushOrDecrease(t *testing.T) {
	h := NewIndexedHeap(3)
	if !h.PushOrDecrease(0, 10) {
		t.Fatal("initial PushOrDecrease should change heap")
	}
	if h.PushOrDecrease(0, 15) {
		t.Fatal("larger priority should not change heap")
	}
	if !h.PushOrDecrease(0, 3) {
		t.Fatal("smaller priority should change heap")
	}
	if _, p := h.Pop(); p != 3 {
		t.Fatalf("priority = %g, want 3", p)
	}
}

func TestIndexedHeapRemove(t *testing.T) {
	h := NewIndexedHeap(5)
	for i := 0; i < 5; i++ {
		h.Push(i, float64(5-i))
	}
	h.Remove(4) // priority 1, the minimum
	if id, _ := h.Pop(); id != 3 {
		t.Fatalf("Pop after Remove = %d, want 3", id)
	}
	h.Remove(0)
	var got []int
	for !h.Empty() {
		id, _ := h.Pop()
		got = append(got, id)
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 1 {
		t.Fatalf("remaining order = %v", got)
	}
}

func TestIndexedHeapReset(t *testing.T) {
	h := NewIndexedHeap(4)
	h.Push(0, 1)
	h.Push(1, 2)
	h.Reset()
	if !h.Empty() || h.Contains(0) || h.Contains(1) {
		t.Fatal("Reset did not clear")
	}
	h.Push(0, 9) // must not panic
	if id, _ := h.Pop(); id != 0 {
		t.Fatal("heap unusable after Reset")
	}
}

func TestIndexedHeapPanics(t *testing.T) {
	cases := map[string]func(){
		"PopEmpty":         func() { NewIndexedHeap(1).Pop() },
		"PeekEmpty":        func() { NewIndexedHeap(1).Peek() },
		"DoublePush":       func() { h := NewIndexedHeap(2); h.Push(0, 1); h.Push(0, 2) },
		"DecreaseAbsent":   func() { NewIndexedHeap(2).DecreaseKey(0, 1) },
		"DecreaseIncrease": func() { h := NewIndexedHeap(2); h.Push(0, 1); h.DecreaseKey(0, 5) },
		"RemoveAbsent":     func() { NewIndexedHeap(2).Remove(0) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: popping everything yields priorities in non-decreasing order.
func TestQuickIndexedHeapSorts(t *testing.T) {
	f := func(prios []float64) bool {
		if len(prios) > 512 {
			prios = prios[:512]
		}
		for i, p := range prios {
			if p != p { // NaN breaks any comparison sort; skip
				prios[i] = 0
			}
		}
		h := NewIndexedHeap(len(prios))
		for i, p := range prios {
			h.Push(i, p)
		}
		prev := math.Inf(-1)
		for !h.Empty() {
			_, p := h.Pop()
			if p < prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPairingHeapBasic(t *testing.T) {
	h := NewPairingHeap()
	if !h.Empty() {
		t.Fatal("new heap not empty")
	}
	h.Push(10, 3)
	h.Push(20, 1)
	h.Push(30, 2)
	if h.Len() != 3 {
		t.Fatalf("Len = %d", h.Len())
	}
	if v, p := h.Peek(); v != 20 || p != 1 {
		t.Fatalf("Peek = (%d, %g)", v, p)
	}
	want := []int{20, 30, 10}
	for _, w := range want {
		v, _ := h.Pop()
		if v != w {
			t.Fatalf("Pop = %d, want %d", v, w)
		}
	}
	if !h.Empty() {
		t.Fatal("should be empty")
	}
}

func TestPairingHeapDecreaseKey(t *testing.T) {
	h := NewPairingHeap()
	h.Push(1, 10)
	n2 := h.Push(2, 20)
	h.Push(3, 30)
	n4 := h.Push(4, 40)
	h.DecreaseKey(n4, 5)
	if v, p := h.Peek(); v != 4 || p != 5 {
		t.Fatalf("Peek after DecreaseKey = (%d, %g)", v, p)
	}
	h.DecreaseKey(n2, 2)
	if v, _ := h.Pop(); v != 2 {
		t.Fatalf("Pop = %d, want 2", v)
	}
	if v, _ := h.Pop(); v != 4 {
		t.Fatalf("Pop = %d, want 4", v)
	}
	if n2.Priority() != 2 {
		t.Fatalf("handle priority = %g", n2.Priority())
	}
}

func TestPairingHeapDecreaseKeyPanics(t *testing.T) {
	h := NewPairingHeap()
	n := h.Push(1, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("increase via DecreaseKey should panic")
		}
	}()
	h.DecreaseKey(n, 20)
}

func TestPairingHeapMeld(t *testing.T) {
	a := NewPairingHeap()
	b := NewPairingHeap()
	a.Push(1, 5)
	a.Push(2, 1)
	b.Push(3, 3)
	b.Push(4, 0)
	a.Meld(b)
	if a.Len() != 4 || b.Len() != 0 {
		t.Fatalf("Len after meld: a=%d b=%d", a.Len(), b.Len())
	}
	want := []int{4, 2, 3, 1}
	for _, w := range want {
		v, _ := a.Pop()
		if v != w {
			t.Fatalf("Pop = %d, want %d", v, w)
		}
	}
	// Melding nil and self are no-ops.
	a.Push(9, 9)
	a.Meld(nil)
	a.Meld(a)
	if a.Len() != 1 {
		t.Fatalf("Len after degenerate melds = %d", a.Len())
	}
}

// Randomized cross-check of both heaps against a reference sort, with
// interleaved decrease-keys.
func TestHeapsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		prios := make([]float64, n)
		for i := range prios {
			prios[i] = rng.Float64() * 100
		}
		ih := NewIndexedHeap(n)
		ph := NewPairingHeap()
		handles := make([]*PairingNode, n)
		for i, p := range prios {
			ih.Push(i, p)
			handles[i] = ph.Push(i, p)
		}
		// Random decrease-keys.
		for k := 0; k < n/2; k++ {
			i := rng.Intn(n)
			np := prios[i] * rng.Float64()
			prios[i] = np
			ih.DecreaseKey(i, np)
			ph.DecreaseKey(handles[i], np)
		}
		sorted := append([]float64(nil), prios...)
		sort.Float64s(sorted)
		for _, want := range sorted {
			_, p1 := ih.Pop()
			_, p2 := ph.Pop()
			if p1 != want || p2 != want {
				t.Fatalf("trial %d: pops %g/%g, want %g", trial, p1, p2, want)
			}
		}
	}
}

func BenchmarkIndexedHeapDijkstraPattern(b *testing.B) {
	const n = 4096
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := NewIndexedHeap(n)
		for v := 0; v < n; v++ {
			h.Push(v, rng.Float64())
		}
		for !h.Empty() {
			id, p := h.Pop()
			_ = id
			_ = p
		}
	}
}

func BenchmarkPairingHeapDijkstraPattern(b *testing.B) {
	const n = 4096
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := NewPairingHeap()
		for v := 0; v < n; v++ {
			h.Push(v, rng.Float64())
		}
		for !h.Empty() {
			h.Pop()
		}
	}
}
