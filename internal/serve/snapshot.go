package serve

import (
	"sync/atomic"

	"repro/internal/wdm"
)

// snapshot is one published epoch: an immutable network plus the identifiers
// readers pin themselves to. Once stored in the atomic pointer the network
// is frozen forever — the committer never writes through it, and the next
// epoch's CloneSince only *shares* its link records, never mutates them.
type snapshot struct {
	epoch   uint64
	version uint64 // cur.StateVersion() at publish — the CloneSince watermark
	net     *wdm.Network
}

// store pairs the authoritative mutable network (owned by the committer
// goroutine; nobody else touches cur) with the atomically published read
// snapshot. load is a single atomic pointer read — the whole read side of
// the epoch protocol.
type store struct {
	cur  *wdm.Network // committer-owned; mutated only between publishes
	snap atomic.Pointer[snapshot]
}

// newStore clones net (the engine owns its state privately) and publishes
// epoch 0 as a full clone of the initial state.
func newStore(net *wdm.Network) *store {
	st := &store{cur: net.Clone()}
	st.snap.Store(&snapshot{
		epoch:   0,
		version: st.cur.StateVersion(),
		net:     st.cur.Clone(),
	})
	return st
}

// load returns the current epoch snapshot (lock-free).
func (st *store) load() *snapshot { return st.snap.Load() }

// publish seals the committer's accumulated writes into the next epoch:
// a copy-on-write clone against the previous snapshot (only links stamped
// after the previous publish are copied) swapped in with one atomic store.
// Returns the new epoch. Committer-only.
func (st *store) publish() uint64 {
	prev := st.snap.Load()
	next := &snapshot{
		epoch:   prev.epoch + 1,
		version: st.cur.StateVersion(),
		net:     st.cur.CloneSince(prev.net, prev.version),
	}
	st.snap.Store(next)
	return next.epoch
}
