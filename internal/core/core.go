// Package core implements the paper's robust-routing algorithms: for a
// connection request (s, t) it establishes two edge-disjoint semilightpaths —
// a primary and a pre-reserved backup — under three objectives:
//
//   - ApproxMinCost (§3.3): minimise the cost sum. Build the auxiliary graph
//     G′, find a minimum-weight edge-disjoint pair with Suurballe's
//     algorithm, map each auxiliary path to its induced subgraph G_i, and
//     refine by optimal wavelength assignment (Lemma 2). 2-approximation
//     under the paper's assumptions (Theorem 2).
//   - MinLoad (§4.1, Find_Two_Paths_MinCog): minimise the network load via a
//     doubling threshold search over ϑ and the exponential congestion
//     weights of G_c. Load within 3× of optimal (Theorem 3).
//   - MinLoadCost (§4.2): two phases — fix a feasible load bound ϑ with the
//     MinCog search, then route minimum-cost within that bound on G_rc.
//
// Baselines used by the evaluation: TwoStepMinCost (shortest semilightpath,
// delete, second shortest) and the exact solvers in package exact.
package core

import (
	"math"

	"repro/internal/auxgraph"
	"repro/internal/disjoint"
	"repro/internal/lightpath"
	"repro/internal/obs"
	"repro/internal/wdm"
)

// Options tunes the approximate algorithms.
type Options struct {
	// Base is the exponent base a > 1 for the G_c congestion weights
	// (auxgraph.DefaultBase if 0).
	Base float64
	// MaxIterations caps the MinCog threshold search (default 64).
	MaxIterations int
	// NoRefine skips the Lemma 2 refinement and keeps a first-fit
	// wavelength assignment on the mapped routes (ablation switch).
	NoRefine bool
	// Candidates enables the precomputed candidate-path fast tier for
	// ApproxMinCost: up to k Yen-derived edge-disjoint route pairs per
	// (s, t), generated once from static installed-wavelength weights and
	// cached on the Router, are tried with bitset feasibility checks and
	// per-route optimal wavelength assignment before falling back to the
	// exact auxiliary-graph pipeline. 0 disables the tier.
	Candidates int
	// CandidateTable supplies a pre-built candidate table (NewCandidateTable)
	// shared across routers; it enables the fast tier regardless of
	// Candidates. A prefilled table is read-only, so concurrent routers may
	// share one. It must have been built from the same network the routing
	// calls use, or from a Clone ancestor with identical structure.
	CandidateTable *CandidateTable
	// ReuseResult makes routing calls return Results that alias buffers owned
	// by the Router: the Result, its Semilightpaths and their hop slices are
	// overwritten by the next routing call on the same Router. Callers that
	// consume or copy routes immediately (the simulator's arrival loop) set
	// this to route allocation-free; callers that retain Results must not.
	ReuseResult bool
}

func (o *Options) base() float64 {
	if o == nil || o.Base == 0 {
		return auxgraph.DefaultBase
	}
	return o.Base
}

func (o *Options) maxIter() int {
	if o == nil || o.MaxIterations == 0 {
		return 64
	}
	return o.MaxIterations
}

func (o *Options) noRefine() bool { return o != nil && o.NoRefine }

func (o *Options) reuseResult() bool { return o != nil && o.ReuseResult }

func (o *Options) candidates() int {
	if o == nil {
		return 0
	}
	return o.Candidates
}

func (o *Options) candidateTable() *CandidateTable {
	if o == nil {
		return nil
	}
	return o.CandidateTable
}

// Result is a routed request: two edge-disjoint semilightpaths plus the
// diagnostics the experiments record.
type Result struct {
	Primary *wdm.Semilightpath
	Backup  *wdm.Semilightpath
	// Cost is C(Primary) + C(Backup) per Eq. 1 — after refinement.
	Cost float64
	// AuxWeight is ω(P₁) + ω(P₂), the auxiliary-graph pair weight the
	// Lemma 2 bound compares against (0 for algorithms without an aux pair).
	AuxWeight float64
	// NaiveCost is the cost of the first-fit (unrefined) wavelength
	// assignment on the mapped routes — the C(P₁₁)+C(P₂₂) side of Lemma 2.
	// +Inf when first-fit is infeasible.
	NaiveCost float64
	// Threshold is the load bound ϑ found by the MinCog search (load
	// variants only).
	Threshold float64
	// PathLoad is max over chosen links of (U(e)+1)/N(e) — the network-load
	// contribution of this route if it is established.
	PathLoad float64
	// Iterations is the number of threshold-search rounds (load variants).
	Iterations int
}

// pathLoad computes max (U(e)+1)/N(e) over the links of both paths.
func pathLoad(net *wdm.Network, ps ...*wdm.Semilightpath) float64 {
	rho := 0.0
	for _, p := range ps {
		for _, h := range p.Hops {
			l := net.Link(h.Link)
			if r := float64(l.U()+1) / float64(l.N()); r > rho {
				rho = r
			}
		}
	}
	return rho
}

// firstFit assigns the smallest available wavelength to every link of the
// route and returns the resulting Eq. 1 cost, or +Inf when some implied
// conversion is disallowed. This is the unrefined P_ii assignment of §3.3.
func firstFit(net *wdm.Network, route []int) (*wdm.Semilightpath, float64) {
	//wdmlint:ignore hotalloc non-reuse fallback; serving paths use firstFitInto
	hops := make([]wdm.Hop, len(route))
	for i, id := range route {
		lam := net.Link(id).Avail().Min()
		if lam < 0 {
			return nil, math.Inf(1)
		}
		hops[i] = wdm.Hop{Link: id, Wavelength: lam}
	}
	//wdmlint:ignore hotalloc non-reuse fallback; serving paths use firstFitInto
	p := &wdm.Semilightpath{Hops: hops}
	c := p.Cost(net)
	if math.IsInf(c, 1) { // disallowed conversion surfaces as +Inf ConvCost
		return nil, math.Inf(1)
	}
	return p, c
}

// firstFitInto is firstFit with caller-owned storage: the hop sequence goes
// into *buf (grown as needed) and the semilightpath header into sl.
func firstFitInto(net *wdm.Network, route []int, sl *wdm.Semilightpath, buf *[]wdm.Hop) (*wdm.Semilightpath, float64) {
	hops := (*buf)[:0]
	for _, id := range route {
		lam := net.Link(id).Avail().Min()
		if lam < 0 {
			return nil, math.Inf(1)
		}
		//wdmlint:ignore hotalloc grows the caller-owned hop buffer; amortizes to zero once warm
		hops = append(hops, wdm.Hop{Link: id, Wavelength: lam})
	}
	*buf = hops
	sl.Hops = hops
	c := sl.Cost(net)
	if math.IsInf(c, 1) { // disallowed conversion surfaces as +Inf ConvCost
		return nil, math.Inf(1)
	}
	return sl, c
}

// resultArena is the Router-owned storage behind Options.ReuseResult: the
// Result, the semilightpath headers for the naive and refined assignment of
// both paths, and every hop/route buffer the refinement writes. One routing
// call's output occupies it until the next call.
type resultArena struct {
	res   Result
	sl    [4]wdm.Semilightpath // [2i] = naive, [2i+1] = refined, per path i
	hops  [4][]wdm.Hop
	route [2][]int
	aw    lightpath.AssignWorkspace
}

// mapAndRefine converts an auxiliary pair into two semilightpaths. Each aux
// path is mapped to its physical route; the Lemma 2 refinement then finds
// the optimal wavelength assignment on that route (the optimal semilightpath
// of the induced subgraph G_i, whose links are exactly the route's links).
// ok is false when neither refinement nor first-fit yields a feasible
// assignment for one of the routes (possible only with restricted
// converters). Under Options.ReuseResult everything returned lives in the
// router's arena; otherwise it is freshly allocated.
func (r *Router) mapAndRefine(net *wdm.Network, a *auxgraph.Aux, pair *disjoint.Pair, tc *obs.Trace) (*Result, bool) {
	defer instr.phaseRefine.Stop(instr.phaseRefine.Start())
	reuse := r.opts.reuseResult()
	ar := &r.arena
	var res *Result
	if reuse {
		ar.res = Result{AuxWeight: pair.Weight}
		res = &ar.res
	} else {
		//wdmlint:ignore hotalloc non-reuse branch; ReuseResult callers take the arena path
		res = &Result{AuxWeight: pair.Weight}
	}
	var paths [2]*wdm.Semilightpath
	naiveTotal := 0.0
	for i, auxPath := range [2][]int{pair.Path1, pair.Path2} {
		sp := tc.Begin("refine") // one span per G_i (primary, then backup)
		var route []int
		if reuse {
			ar.route[i] = a.AppendMapPath(ar.route[i][:0], auxPath)
			route = ar.route[i]
		} else {
			route = a.MapPath(auxPath)
		}
		if len(route) == 0 {
			tc.EndSpan(sp)
			return nil, false
		}
		var (
			naive, refined *wdm.Semilightpath
			nc, rc         float64
			okR            bool
		)
		if reuse {
			naive, nc = firstFitInto(net, route, &ar.sl[2*i], &ar.hops[2*i])
			var hops []wdm.Hop
			hops, rc, okR = lightpath.AssignInto(&ar.aw, net, route, ar.hops[2*i+1])
			ar.hops[2*i+1] = hops
			if okR {
				ar.sl[2*i+1].Hops = hops
				refined = &ar.sl[2*i+1]
			}
		} else {
			naive, nc = firstFit(net, route)
			refined, rc, okR = lightpath.AssignWavelengths(net, route)
		}
		naiveTotal += nc
		fallback := false
		switch {
		case r.opts.noRefine() && naive != nil:
			paths[i] = naive
			res.Cost += nc
		case okR:
			paths[i] = refined
			res.Cost += rc
		case naive != nil:
			paths[i] = naive
			res.Cost += nc
			instr.firstFitFallbacks.Inc()
			fallback = true
		default:
			tc.EndSpan(sp)
			return nil, false
		}
		if tc != nil {
			tc.SpanInt(sp, "route_len", int64(len(route)))
			if !math.IsInf(nc, 1) { // +Inf is unrepresentable in JSON dumps
				tc.SpanFloat(sp, "naive_cost", nc)
			}
			if okR {
				tc.SpanFloat(sp, "refined_cost", rc)
			}
			tc.SpanBool(sp, "fallback", fallback)
			tc.EndSpan(sp)
		}
	}
	res.NaiveCost = naiveTotal
	if !math.IsInf(naiveTotal, 1) && naiveTotal > 0 {
		instr.refineRatio.Observe(res.Cost / naiveTotal)
	}
	res.Primary, res.Backup = paths[0], paths[1]
	// Order so the cheaper path serves as primary.
	if res.Backup.Cost(net) < res.Primary.Cost(net) {
		res.Primary, res.Backup = res.Backup, res.Primary
	}
	res.PathLoad = pathLoad(net, res.Primary, res.Backup)
	return res, true
}

// ApproxMinCost routes (s, t) per §3.3: auxiliary graph G′ + Suurballe +
// Lemma 2 refinement. ok is false when no two edge-disjoint semilightpaths
// exist in the residual network (or refinement is infeasible under
// restricted conversion).
// It is the one-shot wrapper around Router.ApproxMinCost; hot paths should
// hold a Router to reuse its skeleton cache and search workspaces.
func ApproxMinCost(net *wdm.Network, s, t int, opts *Options) (*Result, bool) {
	return NewRouter(opts).ApproxMinCost(net, s, t)
}

// ApproxMinCostNodeDisjoint routes (s, t) with an internally node-disjoint
// primary/backup pair — the stronger §1 protection discipline that survives
// single node failures as well as link failures. It reuses the §3.3
// machinery with a unit-capacity hub gadget per intermediate node in the
// auxiliary graph. ok is false when no node-disjoint pair exists.
func ApproxMinCostNodeDisjoint(net *wdm.Network, s, t int, opts *Options) (*Result, bool) {
	return NewRouter(opts).ApproxMinCostNodeDisjoint(net, s, t)
}

// nodesDisjoint reports whether two paths share no intermediate node.
func nodesDisjoint(net *wdm.Network, p, q *wdm.Semilightpath, s, t int) bool {
	seen := map[int]bool{}
	for _, v := range p.Nodes(net) {
		if v != s && v != t {
			seen[v] = true
		}
	}
	for _, v := range q.Nodes(net) {
		if v != s && v != t && seen[v] {
			return false
		}
	}
	return true
}

// thetaBounds returns ϑ_min = min_e (U(e)+1)/N(e) and ϑ_max = max_e … over
// links that still have available wavelengths.
func thetaBounds(net *wdm.Network) (lo, hi float64, any bool) {
	lo, hi = math.Inf(1), 0
	for id := 0; id < net.Links(); id++ {
		l := net.Link(id)
		if l.Avail().Empty() || l.N() == 0 {
			continue
		}
		any = true
		r := float64(l.U()+1) / float64(l.N())
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	return lo, hi, any
}

// MinLoad routes (s, t) per §4.1: find the smallest feasible load bound ϑ by
// the MinCog search over G_c (exponential congestion weights) and return the
// refined pair found at that bound.
//
// The search (Router.minCogSearch) runs the Find_Two_Paths_MinCog doubling
// schedule: it starts at ϑ_min with increment Δ/2^{⌈log₂(1/Δ)⌉} and doubles
// the increment after every infeasible round, finishing with the complete
// residual graph at ϑ_max. The schedule yields the Theorem 3 load ratio < 3:
// a success at ϑ after a failure at ϑ−δ implies ϑ* > ϑ−δ while
// δ ≤ 2·(ϑ−δ−ϑ_min) + Δ/2^{j₀}.
func MinLoad(net *wdm.Network, s, t int, opts *Options) (*Result, bool) {
	return NewRouter(opts).MinLoad(net, s, t)
}

// MinLoadCost routes (s, t) per §4.2: phase 1 fixes the feasible load bound
// ϑ with the MinCog search; phase 2 reweights the auxiliary graph as G_rc
// (same filter, average-cost weights) and routes minimum-cost within the
// bound.
func MinLoadCost(net *wdm.Network, s, t int, opts *Options) (*Result, bool) {
	return NewRouter(opts).MinLoadCost(net, s, t)
}

// TwoStepMinCost is the naive baseline (E7): route an optimal semilightpath,
// remove its physical links, route a second one. It can fail on trap
// topologies where ApproxMinCost succeeds, and is never cheaper.
//
//wdm:coldpath naive baseline for experiments, not the serving path
func TwoStepMinCost(net *wdm.Network, s, t int, opts *Options) (*Result, bool) {
	instr.routeCalls.Inc()
	p1, c1, ok := lightpath.Optimal(net, s, t, nil)
	if !ok {
		return nil, false
	}
	used := make(map[int]bool, p1.Len())
	for _, h := range p1.Hops {
		used[h.Link] = true
	}
	p2, c2, ok := lightpath.Optimal(net, s, t, &lightpath.Options{
		AllowedLinks: func(id int) bool { return !used[id] },
	})
	if !ok {
		return nil, false
	}
	res := &Result{
		Primary:   p1,
		Backup:    p2,
		Cost:      c1 + c2,
		NaiveCost: c1 + c2,
	}
	res.PathLoad = pathLoad(net, p1, p2)
	instr.routeFound.Inc()
	return res, true
}

// OptimalLoadOracle computes the exact minimum achievable path load — the
// smallest c such that two edge-disjoint semilightpath-feasible routes exist
// using only links with (U(e)+1)/N(e) ≤ c. Candidate values are the finite
// set of per-link ratios, so the oracle is exact; it is the reference for
// the Theorem 3 ratio experiment (E3).
func OptimalLoadOracle(net *wdm.Network, s, t int) (float64, bool) {
	return NewRouter(nil).OptimalLoadOracle(net, s, t)
}

// Establish reserves both paths of a routed result on the network. Either
// both paths are reserved or neither.
func Establish(net *wdm.Network, r *Result) error {
	if err := net.Reserve(r.Primary); err != nil {
		return err
	}
	if err := net.Reserve(r.Backup); err != nil {
		if rerr := net.ReleasePath(r.Primary); rerr != nil {
			panic("core: rollback failed: " + rerr.Error())
		}
		return err
	}
	return nil
}

// Teardown releases both paths of an established result.
func Teardown(net *wdm.Network, r *Result) error {
	if err := net.ReleasePath(r.Primary); err != nil {
		return err
	}
	return net.ReleasePath(r.Backup)
}
