// Package http is a fixture standing in for net/http: Shutdown reports
// whether the graceful drain completed, and dropping that error hides
// requests cut off mid-flight.
package http

import "context"

// Server is the fixture stand-in for http.Server.
type Server struct {
	serving bool
}

// ListenAndServe blocks serving requests.
func (s *Server) ListenAndServe() error {
	s.serving = true
	return nil
}

// Shutdown gracefully drains in-flight requests; the error reports whether
// the drain finished before ctx expired.
func (s *Server) Shutdown(ctx context.Context) error {
	s.serving = false
	return ctx.Err()
}
