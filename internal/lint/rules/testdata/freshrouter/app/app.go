// Package app exercises the loop half of the freshrouter rule.
package app

import "fix/freshrouter/core"

// Single is a one-shot call: clean.
func Single() (int, bool) { return core.ApproxMinCost(0, 1) }

// InLoop calls the wrapper per iteration: finding.
func InLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		c, _ := core.ApproxMinCost(0, i)
		total += c
	}
	return total
}

// InRangeClosure buries the call in a closure built inside a range loop:
// finding (the closure runs per iteration all the same).
func InRangeClosure(xs []int) int {
	total := 0
	for _, x := range xs {
		f := func() int {
			c, _ := core.MinLoad(0, x)
			return c
		}
		total += f()
	}
	return total
}

// WarmLoop hoists a Router out of the loop: clean.
func WarmLoop(n int) int {
	r := core.NewRouter()
	total := 0
	for i := 0; i < n; i++ {
		c, _ := r.ApproxMinCost(0, i)
		total += c
	}
	return total
}

// Measured deliberately benchmarks the fresh path; the directive records it.
func Measured(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		c, _ := core.MinLoad(0, i) //wdmlint:ignore freshrouter benchmark arm measures the fresh path on purpose
		total += c
	}
	return total
}
