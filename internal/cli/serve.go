package cli

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/explain"
	"repro/internal/slo"
	"repro/internal/timeseries"
)

// DebugOpts selects which data sources the debug handler exposes. Any field
// may be nil; its endpoints then answer 404 so probes can tell "not enabled"
// from "not yet populated".
type DebugOpts struct {
	// Metrics backs /metrics (Prometheus text exposition).
	Metrics *metrics.Registry
	// Flight backs /debug/flight and /debug/explain/<id>.
	Flight *obs.FlightRecorder
	// Series backs /debug/timeseries: sealed telemetry windows as JSON.
	Series *timeseries.Collector
	// NetState backs /debug/net; it is called per request and should return
	// the latest sealed network snapshot (nil until one exists). Typically
	// (*netsim.Telemetry).NetState.
	NetState func() *timeseries.NetState
	// SLO backs /debug/slo: the watchdog's objective states and burn rates.
	SLO *slo.Watchdog
	// Incidents backs /debug/incidents: captured incident bundles.
	Incidents *slo.Capturer
}

// jsonError writes a structured error body, so programmatic clients of the
// debug API never have to scrape free-text messages on bad parameters.
func jsonError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// DebugMux builds the debug HTTP handler shared by wdmsim -serve and tests:
//
//	/healthz              liveness probe (200 "ok")
//	/metrics              Prometheus text exposition (404 if not enabled)
//	/debug/flight         flight-recorder dump as JSONL, oldest trace first
//	/debug/explain/<id>   explain report for request <id> (JSON; ?format=text)
//	/debug/timeseries     sealed telemetry windows, oldest first (?last=N)
//	/debug/net            latest per-link network-state snapshot
//	/debug/slo            SLO watchdog state and burn rates
//	/debug/incidents      captured incident bundles
//	/debug/pprof/*        the standard runtime profiles
//
// Bad query parameters (non-numeric last=/req=, unknown format=) answer
// HTTP 400 with a JSON {"error": ...} body.
//
// Unlike StartPprof this never touches http.DefaultServeMux, so several
// servers (or tests) can coexist in one process.
func DebugMux(o DebugOpts) *http.ServeMux {
	reg, fr := o.Metrics, o.Flight
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if reg == nil {
			http.Error(w, "metrics registry not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		if fr == nil {
			http.Error(w, "flight recorder not enabled", http.StatusNotFound)
			return
		}
		// Dump into a buffer first: once a partial body is on the wire the
		// status code is committed, so encoding errors could no longer be
		// reported to the client.
		var buf bytes.Buffer
		if q := r.URL.Query().Get("req"); q != "" {
			// ?req=<id> filters the dump to one request's traces — the join
			// target of the X-Wdmd-Req response header.
			id, err := strconv.ParseInt(q, 10, 64)
			if err != nil || id < 0 {
				jsonError(w, http.StatusBadRequest, fmt.Sprintf("bad req=%q: want a non-negative integer", q))
				return
			}
			found, err := fr.DumpReq(&buf, id)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			if !found {
				jsonError(w, http.StatusNotFound, fmt.Sprintf("request %d not in the flight recorder (evicted or never traced)", id))
				return
			}
		} else if err := fr.Dump(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_, _ = buf.WriteTo(w)
	})
	mux.HandleFunc("/debug/explain/", func(w http.ResponseWriter, r *http.Request) {
		if fr == nil {
			http.Error(w, "flight recorder not enabled", http.StatusNotFound)
			return
		}
		idStr := strings.TrimPrefix(r.URL.Path, "/debug/explain/")
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil {
			jsonError(w, http.StatusBadRequest, fmt.Sprintf("bad request id %q", idStr))
			return
		}
		format := r.URL.Query().Get("format")
		if format != "" && format != "text" && format != "json" {
			jsonError(w, http.StatusBadRequest, fmt.Sprintf("bad format=%q: want \"text\" or \"json\"", format))
			return
		}
		tc := fr.Find(id)
		if tc == nil {
			http.Error(w, fmt.Sprintf("request %d not in the flight recorder (evicted or never traced)", id), http.StatusNotFound)
			return
		}
		rep, ok := tc.Payload.(*explain.Report)
		if !ok {
			http.Error(w, fmt.Sprintf("request %d has no explain report (status %s)", id, tc.Status), http.StatusNotFound)
			return
		}
		var buf bytes.Buffer
		if format == "text" {
			err = rep.WriteText(&buf)
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		} else {
			err = rep.WriteJSON(&buf)
			w.Header().Set("Content-Type", "application/json")
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = buf.WriteTo(w)
	})
	mux.HandleFunc("/debug/timeseries", func(w http.ResponseWriter, r *http.Request) {
		if o.Series == nil {
			http.Error(w, "timeseries collector not enabled", http.StatusNotFound)
			return
		}
		last := 0 // 0 = everything retained
		if q := r.URL.Query().Get("last"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 0 {
				jsonError(w, http.StatusBadRequest, fmt.Sprintf("bad last=%q: want a non-negative integer", q))
				return
			}
			last = n
		}
		snaps := o.Series.Snapshots(last)
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snaps); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = buf.WriteTo(w)
	})
	mux.HandleFunc("/debug/net", func(w http.ResponseWriter, _ *http.Request) {
		if o.NetState == nil {
			http.Error(w, "network-state probe not enabled", http.StatusNotFound)
			return
		}
		ns := o.NetState()
		if ns == nil {
			http.Error(w, "no network snapshot sealed yet", http.StatusNotFound)
			return
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ns); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = buf.WriteTo(w)
	})
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, _ *http.Request) {
		if o.SLO == nil {
			http.Error(w, "slo watchdog not enabled", http.StatusNotFound)
			return
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(o.SLO.Status()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = buf.WriteTo(w)
	})
	mux.HandleFunc("/debug/incidents", func(w http.ResponseWriter, _ *http.Request) {
		if o.Incidents == nil {
			http.Error(w, "incident capture not enabled", http.StatusNotFound)
			return
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(o.Incidents.Status()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = buf.WriteTo(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer binds addr (e.g. "localhost:0"), serves DebugMux in a
// background goroutine, and returns the bound address for log lines and CI
// probes. The listener lives until the process exits.
func StartDebugServer(addr string, o DebugOpts) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = http.Serve(ln, DebugMux(o)) }()
	return ln.Addr().String(), nil
}
