//go:build !race

// Allocation-regression tests. The race detector instruments allocations and
// breaks testing.AllocsPerOp accounting, so this file is excluded from -race
// runs; the same scenarios run race-enabled (without the alloc assertions)
// elsewhere in the suite.
package graph

import (
	"math/rand"
	"testing"
)

// TestDijkstraIntoZeroAllocs pins the tentpole property: once a Workspace has
// warmed up to the graph size, DijkstraInto performs no heap allocations.
func TestDijkstraIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New(200)
	for v := 0; v < 200; v++ {
		g.AddEdge(v, (v+1)%200, 1+rng.Float64())
	}
	for i := 0; i < 600; i++ {
		g.AddEdge(rng.Intn(200), rng.Intn(200), 1+rng.Float64()*4)
	}
	ws := NewWorkspace()
	g.DijkstraInto(ws, 0) // warm up
	allocs := testing.AllocsPerRun(100, func() {
		g.DijkstraInto(ws, 3)
	})
	if allocs != 0 {
		t.Fatalf("warm DijkstraInto allocates %.1f/op, want 0", allocs)
	}
}

// TestAppendPathToZeroAllocs verifies path extraction reuses the caller's
// buffer once it has grown to the path length.
func TestAppendPathToZeroAllocs(t *testing.T) {
	g := New(50)
	for v := 0; v < 49; v++ {
		g.AddEdge(v, v+1, 1)
	}
	ws := NewWorkspace()
	g.DijkstraInto(ws, 0)
	buf, ok := ws.AppendPathTo(nil, 49, g)
	if !ok || len(buf) != 49 {
		t.Fatalf("path = %d edges, ok=%v; want 49, true", len(buf), ok)
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf, _ = ws.AppendPathTo(buf[:0], 49, g)
	})
	if allocs != 0 {
		t.Fatalf("warm AppendPathTo allocates %.1f/op, want 0", allocs)
	}
}
