// Package sbpp implements shared-backup path protection on top of the
// paper's model — the standard capacity optimisation the robust-routing
// literature developed next. The paper's activate approach (§1) dedicates a
// wavelength channel to every backup hop; under the single-link-failure
// assumption, two backups never activate simultaneously if their primaries
// share no link, so their backup channels may be shared. This package
// tracks per-channel sharing sets, routes backups to prefer shareable
// channels (zero incremental capacity), and activates backups on failure.
//
// Sharing rule: a backup channel (link, λ) may protect several connections
// iff the union of their primary links is pairwise disjoint — then any
// single link failure triggers at most one of them.
package sbpp

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/lightpath"
	"repro/internal/wdm"
)

// chanKey identifies a wavelength channel.
type chanKey struct {
	link int
	lam  wdm.Wavelength
}

// Connection is a protected connection managed by the Manager.
type Connection struct {
	ID      int
	Src     int
	Dst     int
	Primary *wdm.Semilightpath
	Backup  *wdm.Semilightpath
	// Activated reports whether the backup has been switched in after a
	// failure (the connection is then unprotected).
	Activated bool
}

// Manager owns a network and the backup-sharing bookkeeping. All primary
// channels are exclusively reserved in the underlying network; backup
// channels are reserved once and shared across compatible connections.
type Manager struct {
	net    *wdm.Network
	conns  map[int]*Connection
	shares map[chanKey]map[int]bool // channel -> connection IDs sharing it
	nextID int
}

// NewManager wraps a network (taken over; callers should pass a clone if
// they need the original).
func NewManager(net *wdm.Network) *Manager {
	return &Manager{
		net:    net,
		conns:  map[int]*Connection{},
		shares: map[chanKey]map[int]bool{},
	}
}

// Net returns the managed network (for inspection).
func (m *Manager) Net() *wdm.Network { return m.net }

// Connections returns the number of live connections.
func (m *Manager) Connections() int { return len(m.conns) }

// SharedChannels returns how many backup channels currently protect more
// than one connection.
func (m *Manager) SharedChannels() int {
	n := 0
	for _, set := range m.shares {
		if len(set) > 1 {
			n++
		}
	}
	return n
}

// BackupChannels returns the total number of wavelength channels reserved
// for backups (each shared channel counted once).
func (m *Manager) BackupChannels() int { return len(m.shares) }

// primaryLinks returns the set of primary links of connection id.
func (m *Manager) primaryLinks(id int) map[int]bool {
	set := map[int]bool{}
	c := m.conns[id]
	if c == nil || c.Primary == nil {
		return set
	}
	for _, h := range c.Primary.Hops {
		set[h.Link] = true
	}
	return set
}

// shareable reports whether the channel can additionally protect a
// connection whose primary uses the given links.
func (m *Manager) shareable(key chanKey, newPrimary map[int]bool) bool {
	set, exists := m.shares[key]
	if !exists {
		return false
	}
	for id := range set {
		for l := range m.primaryLinks(id) {
			if newPrimary[l] {
				return false
			}
		}
	}
	return true
}

// Establish routes and reserves a protected connection: an optimal primary
// semilightpath plus an edge-disjoint backup that minimises *incremental*
// backup capacity — shareable backup channels cost nothing, fresh channels
// cost their Eq. 1 weight. ok is false when no protected pair fits.
func (m *Manager) Establish(s, t int) (*Connection, bool) {
	primary, _, ok := lightpath.Optimal(m.net, s, t, nil)
	if !ok {
		return nil, false
	}
	pLinks := map[int]bool{}
	for _, h := range primary.Hops {
		pLinks[h.Link] = true
	}

	// Build the incremental-cost graph over physical links ∉ primary. Each
	// link's weight is the cheapest option: a shareable backup channel
	// (cost ~0) or the cheapest free wavelength. Aux carries the chosen
	// wavelength.
	g := graph.New(m.net.Nodes())
	const shareEps = 1e-6
	for id := 0; id < m.net.Links(); id++ {
		if pLinks[id] {
			continue
		}
		l := m.net.Link(id)
		bestCost := math.Inf(1)
		bestLam := -1
		// Shareable existing backup channels.
		l.Lambda().ForEach(func(lam int) bool {
			key := chanKey{link: id, lam: lam}
			if m.shareable(key, pLinks) {
				if shareEps < bestCost {
					bestCost = shareEps
					bestLam = lam
				}
				return false // one shareable channel is enough
			}
			return true
		})
		// Cheapest free wavelength.
		l.Avail().ForEach(func(lam int) bool {
			if c := l.Cost(lam); c < bestCost {
				bestCost = c
				bestLam = lam
			}
			return true
		})
		if bestLam >= 0 {
			g.AddEdgeAux(l.From, l.To, bestCost, bestLam)
		}
	}
	res := g.Dijkstra(s)
	if !res.Reached(t) {
		return nil, false
	}
	bPath := res.PathTo(t, g)

	// Reserve the primary exclusively.
	if err := m.net.Reserve(primary); err != nil {
		return nil, false
	}
	// Claim backup channels: fresh channels are reserved in the network;
	// shared channels just gain a member.
	var hops []wdm.Hop
	var fresh []wdm.Hop
	claimFailed := false
	for _, eid := range bPath {
		e := g.Edge(eid)
		// Recover the physical link: the aux graph has one edge per link,
		// identified by endpoints + wavelength. Store link id via lookup.
		linkID := m.linkBetween(e.From, e.To, e.Aux, pLinks)
		if linkID < 0 {
			claimFailed = true
			break
		}
		key := chanKey{link: linkID, lam: e.Aux}
		if _, exists := m.shares[key]; !exists {
			if err := m.net.Use(linkID, e.Aux); err != nil {
				claimFailed = true
				break
			}
			m.shares[key] = map[int]bool{}
			fresh = append(fresh, wdm.Hop{Link: linkID, Wavelength: e.Aux})
		}
		hops = append(hops, wdm.Hop{Link: linkID, Wavelength: e.Aux})
	}
	if claimFailed {
		for _, h := range fresh {
			key := chanKey{link: h.Link, lam: h.Wavelength}
			delete(m.shares, key)
			if err := m.net.Release(h.Link, h.Wavelength); err != nil {
				panic("sbpp: rollback failed: " + err.Error())
			}
		}
		if err := m.net.ReleasePath(primary); err != nil {
			panic("sbpp: rollback failed: " + err.Error())
		}
		return nil, false
	}

	c := &Connection{
		ID:      m.nextID,
		Src:     s,
		Dst:     t,
		Primary: primary,
		Backup:  &wdm.Semilightpath{Hops: hops},
	}
	m.nextID++
	m.conns[c.ID] = c
	for _, h := range hops {
		m.shares[chanKey{link: h.Link, lam: h.Wavelength}][c.ID] = true
	}
	return c, true
}

// linkBetween finds the physical link from u to v carrying λ that the
// incremental graph selected (skipping primary links).
func (m *Manager) linkBetween(u, v int, lam wdm.Wavelength, exclude map[int]bool) int {
	for _, id := range m.net.Out(u) {
		if exclude[id] {
			continue
		}
		l := m.net.Link(id)
		if l.To != v || !l.Lambda().Contains(lam) {
			continue
		}
		// Must be either a channel shareable with this primary or free.
		key := chanKey{link: id, lam: lam}
		if _, shared := m.shares[key]; shared {
			if m.shareable(key, exclude) {
				return id
			}
			continue
		}
		if l.HasAvail(lam) {
			return id
		}
	}
	return -1
}

// Teardown releases a connection: primary channels are freed; backup
// channels lose a member and are freed once unshared.
func (m *Manager) Teardown(id int) error {
	c, ok := m.conns[id]
	if !ok {
		return fmt.Errorf("sbpp: unknown connection %d", id)
	}
	delete(m.conns, id)
	if c.Activated {
		// After activation Primary is the former backup and its channels
		// are exclusive to this connection: drop the share entries and
		// release the path once.
		for _, h := range c.Primary.Hops {
			delete(m.shares, chanKey{link: h.Link, lam: h.Wavelength})
		}
		return m.net.ReleasePath(c.Primary)
	}
	if err := m.net.ReleasePath(c.Primary); err != nil {
		return err
	}
	if c.Backup == nil {
		return nil
	}
	for _, h := range c.Backup.Hops {
		key := chanKey{link: h.Link, lam: h.Wavelength}
		set := m.shares[key]
		delete(set, id)
		if len(set) == 0 {
			delete(m.shares, key)
			if err := m.net.Release(h.Link, h.Wavelength); err != nil {
				return err
			}
		}
	}
	return nil
}

// FailLink activates the backup of every connection whose primary crosses
// the failed link. It returns the recovered and lost connection counts;
// connections sharing channels with an activated backup lose their
// protection (their backup is detached) but keep running.
func (m *Manager) FailLink(link int) (recovered, lost, unprotected int) {
	var affected []int
	for id, c := range m.conns {
		if c.Activated {
			continue
		}
		for _, h := range c.Primary.Hops {
			if h.Link == link {
				affected = append(affected, id)
				break
			}
		}
	}
	// Deterministic order.
	for i := 0; i < len(affected); i++ {
		for j := i + 1; j < len(affected); j++ {
			if affected[j] < affected[i] {
				affected[i], affected[j] = affected[j], affected[i]
			}
		}
	}
	for _, id := range affected {
		c := m.conns[id]
		if c.Backup == nil {
			lost++
			delete(m.conns, id)
			continue
		}
		// The sharing rule guarantees no two affected connections contend
		// for the same channel under a single failure; verify defensively.
		ok := true
		for _, h := range c.Backup.Hops {
			set := m.shares[chanKey{link: h.Link, lam: h.Wavelength}]
			if set == nil || !set[id] {
				ok = false
				break
			}
		}
		if !ok {
			lost++
			delete(m.conns, id)
			continue
		}
		// Activate: the backup becomes the (unprotected) working path; all
		// other members of its channels lose their backup.
		for _, h := range c.Backup.Hops {
			key := chanKey{link: h.Link, lam: h.Wavelength}
			for other := range m.shares[key] {
				if other == id {
					continue
				}
				m.detachBackup(other)
				unprotected++
			}
			// Channel becomes exclusive to this connection.
			m.shares[key] = map[int]bool{id: true}
		}
		// Release the failed primary; the backup is the new working path.
		if err := m.net.ReleasePath(c.Primary); err != nil {
			panic("sbpp: primary release failed: " + err.Error())
		}
		c.Primary = c.Backup
		c.Activated = true
		recovered++
	}
	return recovered, lost, unprotected
}

// detachBackup removes a connection's backup (after a sharing partner
// activated), freeing its unshared channels.
func (m *Manager) detachBackup(id int) {
	c := m.conns[id]
	if c == nil || c.Backup == nil {
		return
	}
	for _, h := range c.Backup.Hops {
		key := chanKey{link: h.Link, lam: h.Wavelength}
		set := m.shares[key]
		if set == nil {
			continue
		}
		delete(set, id)
		if len(set) == 0 {
			delete(m.shares, key)
			if err := m.net.Release(h.Link, h.Wavelength); err != nil {
				panic("sbpp: detach release failed: " + err.Error())
			}
		}
	}
	c.Backup = nil
}

// CapacityReport summarises channel usage.
type CapacityReport struct {
	PrimaryChannels int
	BackupChannels  int // distinct reserved backup channels
	BackupDemand    int // backup hop count if every backup were dedicated
	SharedChannels  int
}

// Savings returns the fraction of backup capacity saved by sharing.
func (r CapacityReport) Savings() float64 {
	if r.BackupDemand == 0 {
		return 0
	}
	return 1 - float64(r.BackupChannels)/float64(r.BackupDemand)
}

// Report computes current capacity usage.
func (m *Manager) Report() CapacityReport {
	var r CapacityReport
	for _, c := range m.conns {
		r.PrimaryChannels += c.Primary.Len()
		if c.Backup != nil && !c.Activated {
			r.BackupDemand += c.Backup.Len()
		}
	}
	r.BackupChannels = len(m.shares)
	r.SharedChannels = m.SharedChannels()
	return r
}
