// Command wdmlint runs the repository's domain static-analysis rules (see
// DESIGN.md §10): the conventions the routing engine's correctness rests on —
// version-counter bumps on network mutation, reusable routers on hot paths,
// no copying of workspace types, deterministic map iteration, and checked
// errors on flush/close/encode — enforced at CI time.
//
// Usage:
//
//	wdmlint [-json] [-sarif] [-rules r1,r2] [-since ref] [-list] [packages...]
//
// Packages default to ./... . With -since, packages are derived from the
// files changed since the git ref instead — the fast incremental tier; the
// call-graph rules then see only the changed packages, so the full run stays
// the CI gate. -sarif emits SARIF 2.1.0 for GitHub code scanning. Exit
// status is 1 when findings are reported, 2 when loading or typechecking
// fails. Findings are suppressed case by case with
// `//wdmlint:ignore <rule> <reason>` on the offending line or the line
// above.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/lint"
	"repro/internal/lint/rules"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 (GitHub code scanning)")
	ruleList := flag.String("rules", "", "comma-separated rules to run (default: all)")
	since := flag.String("since", "", "lint only packages with files changed since this git ref")
	list := flag.Bool("list", false, "list available rules and exit")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		fmt.Println(cli.Version())
		return
	}
	if *list {
		for _, a := range rules.All {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	active, err := selectRules(*ruleList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdmlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if *since != "" {
		changed, err := changedPackagePatterns(*since)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wdmlint:", err)
			os.Exit(2)
		}
		if len(changed) == 0 {
			fmt.Fprintf(os.Stderr, "wdmlint: no Go packages changed since %s\n", *since)
			if *sarifOut {
				if err := writeSARIF(os.Stdout, active, nil); err != nil {
					fmt.Fprintln(os.Stderr, "wdmlint:", err)
					os.Exit(2)
				}
			}
			return
		}
		patterns = changed
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wdmlint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, active)
	switch {
	case *sarifOut:
		if err := writeSARIF(os.Stdout, active, diags); err != nil {
			fmt.Fprintln(os.Stderr, "wdmlint:", err)
			os.Exit(2)
		}
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "wdmlint:", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut && !*sarifOut {
			fmt.Fprintf(os.Stderr, "wdmlint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// selectRules resolves a comma-separated rule filter against the registry.
func selectRules(filter string) ([]*lint.Analyzer, error) {
	if filter == "" {
		return rules.All, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range rules.All {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(filter, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
