package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/wdm"
)

// diamondNet: routes 0→1→3 (2), 0→2→3 (4), 0→3 (10).
func diamondNet(w int) *wdm.Network {
	g := wdm.NewNetwork(4, w)
	g.AddUniformLink(0, 1, 1)
	g.AddUniformLink(1, 3, 1)
	g.AddUniformLink(0, 2, 2)
	g.AddUniformLink(2, 3, 2)
	g.AddUniformLink(0, 3, 10)
	g.SetAllConverters(wdm.NewFullConverter(w, 0.5))
	return g
}

// trapNet: the Suurballe trap lifted to WDM (see disjoint tests).
func trapNet(w int) *wdm.Network {
	g := wdm.NewNetwork(6, w)
	g.AddUniformLink(0, 1, 1)
	g.AddUniformLink(1, 4, 1)
	g.AddUniformLink(4, 5, 1)
	g.AddUniformLink(1, 2, 2)
	g.AddUniformLink(2, 5, 2)
	g.AddUniformLink(0, 3, 2)
	g.AddUniformLink(3, 4, 2)
	g.SetAllConverters(wdm.NewFullConverter(w, 0.5))
	return g
}

func checkResult(t *testing.T, net *wdm.Network, r *Result, s, d int) {
	t.Helper()
	if err := r.Primary.ValidateAvailable(net, s, d); err != nil {
		t.Fatalf("primary invalid: %v", err)
	}
	if err := r.Backup.ValidateAvailable(net, s, d); err != nil {
		t.Fatalf("backup invalid: %v", err)
	}
	if !r.Primary.EdgeDisjoint(r.Backup) {
		t.Fatal("paths share a physical link")
	}
	got := r.Primary.Cost(net) + r.Backup.Cost(net)
	if math.Abs(got-r.Cost) > 1e-9 {
		t.Fatalf("Cost = %g, paths sum to %g", r.Cost, got)
	}
}

func TestApproxMinCostDiamond(t *testing.T) {
	net := diamondNet(2)
	r, ok := ApproxMinCost(net, 0, 3, nil)
	if !ok {
		t.Fatal("ApproxMinCost failed")
	}
	checkResult(t, net, r, 0, 3)
	if math.Abs(r.Cost-6) > 1e-9 {
		t.Fatalf("Cost = %g, want 6", r.Cost)
	}
	// Primary is the cheaper path.
	if r.Primary.Cost(net) > r.Backup.Cost(net) {
		t.Fatal("primary should be the cheaper path")
	}
	if r.AuxWeight <= 0 {
		t.Fatal("AuxWeight not recorded")
	}
}

func TestApproxMinCostSurvivesTrap(t *testing.T) {
	net := trapNet(1)
	r, ok := ApproxMinCost(net, 0, 5, nil)
	if !ok {
		t.Fatal("ApproxMinCost failed on trap")
	}
	checkResult(t, net, r, 0, 5)
	if math.Abs(r.Cost-10) > 1e-9 {
		t.Fatalf("Cost = %g, want 10", r.Cost)
	}
	// The naive baseline must fail here.
	if _, ok := TwoStepMinCost(net, 0, 5, nil); ok {
		t.Fatal("TwoStepMinCost should fail on the trap")
	}
}

func TestTwoStepMinCostEasy(t *testing.T) {
	net := diamondNet(1)
	r, ok := TwoStepMinCost(net, 0, 3, nil)
	if !ok {
		t.Fatal("TwoStepMinCost failed")
	}
	checkResult(t, net, r, 0, 3)
	if math.Abs(r.Cost-6) > 1e-9 {
		t.Fatalf("Cost = %g, want 6", r.Cost)
	}
}

func TestApproxMinCostNoPair(t *testing.T) {
	net := wdm.NewNetwork(3, 2)
	net.AddUniformLink(0, 1, 1)
	net.AddUniformLink(1, 2, 1)
	if _, ok := ApproxMinCost(net, 0, 2, nil); ok {
		t.Fatal("found a pair where only one route exists")
	}
	if _, ok := MinLoad(net, 0, 2, nil); ok {
		t.Fatal("MinLoad found a nonexistent pair")
	}
	if _, ok := MinLoadCost(net, 0, 2, nil); ok {
		t.Fatal("MinLoadCost found a nonexistent pair")
	}
}

func TestMinLoadPrefersIdleLinks(t *testing.T) {
	// Two disjoint 2-hop corridors 0→1→5 and 0→2→5 idle, plus a loaded
	// corridor 0→3→5 and a loaded direct link. MinLoad must pick the idle
	// corridors.
	net := wdm.NewNetwork(6, 4)
	a1 := net.AddUniformLink(0, 1, 1)
	a2 := net.AddUniformLink(1, 5, 1)
	b1 := net.AddUniformLink(0, 2, 1)
	b2 := net.AddUniformLink(2, 5, 1)
	c1 := net.AddUniformLink(0, 3, 1)
	c2 := net.AddUniformLink(3, 5, 1)
	d := net.AddUniformLink(0, 5, 1)
	// Load the c corridor and direct link heavily.
	for _, id := range []int{c1, c2, d} {
		net.Use(id, 0)
		net.Use(id, 1)
		net.Use(id, 2)
	}
	r, ok := MinLoad(net, 0, 5, nil)
	if !ok {
		t.Fatal("MinLoad failed")
	}
	checkResult(t, net, r, 0, 5)
	used := map[int]bool{}
	for _, h := range append(append([]wdm.Hop{}, r.Primary.Hops...), r.Backup.Hops...) {
		used[h.Link] = true
	}
	for _, id := range []int{a1, a2, b1, b2} {
		if !used[id] {
			t.Fatalf("idle link %d not used; used=%v", id, used)
		}
	}
	if used[c1] || used[c2] || used[d] {
		t.Fatal("loaded link chosen despite idle alternative")
	}
	if r.PathLoad != 0.25 {
		t.Fatalf("PathLoad = %g, want 0.25", r.PathLoad)
	}
	if r.Iterations < 1 || r.Threshold <= 0 {
		t.Fatalf("search diagnostics missing: %+v", r)
	}
}

func TestMinLoadMatchesOracleHere(t *testing.T) {
	net := wdm.NewNetwork(6, 4)
	ids := []int{
		net.AddUniformLink(0, 1, 1), net.AddUniformLink(1, 5, 1),
		net.AddUniformLink(0, 2, 1), net.AddUniformLink(2, 5, 1),
	}
	_ = ids
	net.AddUniformLink(0, 5, 1)
	oracle, ok := OptimalLoadOracle(net, 0, 5)
	if !ok || oracle != 0.25 {
		t.Fatalf("oracle = %g ok=%v, want 0.25", oracle, ok)
	}
	r, ok := MinLoad(net, 0, 5, nil)
	if !ok {
		t.Fatal("MinLoad failed")
	}
	if r.PathLoad < oracle-1e-9 {
		t.Fatal("achieved load beat the oracle — oracle broken")
	}
}

func TestMinLoadCostBalancesBothObjectives(t *testing.T) {
	// Cheap corridor is loaded; expensive corridor idle. MinLoadCost should
	// route within the feasible load bound but pick cheap links inside it.
	net := wdm.NewNetwork(6, 4)
	// Idle: 0→1→5 cost 2, 0→2→5 cost 6.
	net.AddUniformLink(0, 1, 1)
	net.AddUniformLink(1, 5, 1)
	net.AddUniformLink(0, 2, 3)
	net.AddUniformLink(2, 5, 3)
	// Loaded but cheapest: direct 0→5 cost 0.5 with 3/4 wavelengths used.
	d := net.AddUniformLink(0, 5, 0.25)
	net.Use(d, 0)
	net.Use(d, 1)
	net.Use(d, 2)
	r, ok := MinLoadCost(net, 0, 5, nil)
	if !ok {
		t.Fatal("MinLoadCost failed")
	}
	checkResult(t, net, r, 0, 5)
	// The loaded direct link must be avoided (threshold excludes it).
	for _, p := range []*wdm.Semilightpath{r.Primary, r.Backup} {
		for _, h := range p.Hops {
			if h.Link == d {
				t.Fatal("loaded link used despite load-aware phase")
			}
		}
	}
	// Within the bound, the cheaper idle corridor must serve as primary.
	if math.Abs(r.Primary.Cost(net)-2) > 1e-9 {
		t.Fatalf("primary cost = %g, want 2", r.Primary.Cost(net))
	}
}

func TestEstablishTeardown(t *testing.T) {
	net := diamondNet(2)
	r, ok := ApproxMinCost(net, 0, 3, nil)
	if !ok {
		t.Fatal("route failed")
	}
	if err := Establish(net, r); err != nil {
		t.Fatal(err)
	}
	if net.NetworkLoad() == 0 {
		t.Fatal("establish did not reserve")
	}
	// Establishing the same wavelengths again must fail and roll back.
	if err := Establish(net, r); err == nil {
		t.Fatal("double establish should fail")
	}
	if err := Teardown(net, r); err != nil {
		t.Fatal(err)
	}
	if net.NetworkLoad() != 0 {
		t.Fatal("teardown did not release")
	}
}

func TestNoRefineAblation(t *testing.T) {
	// Make first-fit strictly worse: λ0 expensive on the second link.
	net := wdm.NewNetwork(4, 2)
	net.AddLink(0, 1, []wdm.Wavelength{0, 1}, []float64{1, 1})
	net.AddLink(1, 3, []wdm.Wavelength{0, 1}, []float64{10, 1})
	net.AddUniformLink(0, 2, 2)
	net.AddUniformLink(2, 3, 2)
	net.SetAllConverters(wdm.NewFullConverter(2, 0))
	refined, ok1 := ApproxMinCost(net, 0, 3, nil)
	naive, ok2 := ApproxMinCost(net, 0, 3, &Options{NoRefine: true})
	if !ok1 || !ok2 {
		t.Fatal("routing failed")
	}
	if refined.Cost > naive.Cost {
		t.Fatalf("refined %g worse than naive %g", refined.Cost, naive.Cost)
	}
	if naive.Cost <= refined.Cost {
		// With zero conversion cost and first-fit λ0 on the 10-cost link,
		// naive must pay more on the 0→1→3 corridor.
		if math.Abs(naive.Cost-refined.Cost) < 1e-9 {
			t.Fatal("ablation indistinguishable; expected a gap")
		}
	}
}

func TestDegenerateRequests(t *testing.T) {
	net := diamondNet(1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range request should panic via auxgraph")
		}
	}()
	ApproxMinCost(net, -1, 3, nil)
}

// randomWDM builds a connected random residual network under the paper's
// Theorem 2 assumptions: uniform per-link wavelength costs, full conversion
// with cost ≤ every incident link cost.
func randomWDM(rng *rand.Rand, n, w int, preload bool) *wdm.Network {
	g := wdm.NewNetwork(n, w)
	minCost := math.Inf(1)
	add := func(u, v int) {
		c := 1 + rng.Float64()*4
		if c < minCost {
			minCost = c
		}
		g.AddUniformLink(u, v, c)
	}
	for v := 0; v < n; v++ {
		add(v, (v+1)%n)
		add((v+1)%n, v)
	}
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			add(u, v)
		}
	}
	g.SetAllConverters(wdm.NewFullConverter(w, rng.Float64()*minCost))
	if preload {
		for id := 0; id < g.Links(); id++ {
			for lam := 0; lam < w; lam++ {
				if rng.Float64() < 0.3 {
					g.Use(id, lam)
				}
			}
		}
	}
	return g
}

// Property: Theorem 2 — ApproxMinCost is within 2× of the exact optimum
// under the stated assumptions; and the refined cost never exceeds the
// first-fit cost (Lemma 2 direction we can check exactly).
func TestQuickTheorem2Ratio(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		w := 1 + rng.Intn(2)
		net := randomWDM(rng, n, w, false)
		s, d := 0, n-1
		r, ok := ApproxMinCost(net, s, d, nil)
		sol, _, okE := exact.Exhaustive(net, s, d, 0)
		if ok != okE {
			return false // approx feasibility must match exact feasibility here
		}
		if !ok {
			return true
		}
		if r.Cost > r.NaiveCost+1e-9 {
			return false
		}
		return r.Cost <= 2*sol.Cost+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: all three routers return valid, edge-disjoint, available pairs
// on preloaded networks; MinLoad's achieved load never beats the oracle and
// its threshold ratio respects Theorem 3.
func TestQuickRoutersValidOnLoadedNetworks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(4)
		w := 2 + rng.Intn(3)
		net := randomWDM(rng, n, w, true)
		s, d := 0, n-1
		oracle, okO := OptimalLoadOracle(net, s, d)
		for _, route := range []func(*wdm.Network, int, int, *Options) (*Result, bool){
			ApproxMinCost, MinLoad, MinLoadCost,
		} {
			r, ok := route(net, s, d, nil)
			if !ok {
				continue
			}
			if err := r.Primary.ValidateAvailable(net, s, d); err != nil {
				return false
			}
			if err := r.Backup.ValidateAvailable(net, s, d); err != nil {
				return false
			}
			if !r.Primary.EdgeDisjoint(r.Backup) {
				return false
			}
			if okO && r.PathLoad < oracle-1e-9 {
				return false // beating the oracle means the oracle is wrong
			}
		}
		// Theorem 3 spot check: when MinLoad succeeds, its threshold is
		// within 3× of the smallest feasible threshold.
		if r, ok := MinLoad(net, s, d, nil); ok && okO && oracle > 0 {
			if r.PathLoad > 3*oracle+1e-6 && r.PathLoad > oracle+0.5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkApproxMinCost(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := randomWDM(rng, 50, 8, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApproxMinCost(net, i%50, (i+25)%50, nil)
	}
}

func BenchmarkMinLoadCost(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := randomWDM(rng, 50, 8, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinLoadCost(net, i%50, (i+25)%50, nil)
	}
}

func TestNodeDisjointStricterThanEdgeDisjoint(t *testing.T) {
	// Bowtie: all routes 0→4 pass through node 2. Edge-disjoint pairs exist
	// (two parallel corridors through 2), node-disjoint pairs do not.
	net := wdm.NewNetwork(5, 2)
	net.AddUniformLink(0, 1, 1)
	net.AddUniformLink(1, 2, 1)
	net.AddUniformLink(0, 2, 1)
	net.AddUniformLink(2, 3, 1)
	net.AddUniformLink(3, 4, 1)
	net.AddUniformLink(2, 4, 1)
	net.SetAllConverters(wdm.NewFullConverter(2, 0.5))
	if _, ok := ApproxMinCost(net, 0, 4, nil); !ok {
		t.Fatal("edge-disjoint pair must exist through the bowtie")
	}
	if _, ok := ApproxMinCostNodeDisjoint(net, 0, 4, nil); ok {
		t.Fatal("node-disjoint pair cannot exist through the bowtie")
	}
}

func TestNodeDisjointOnDiamond(t *testing.T) {
	net := diamondNet(2)
	r, ok := ApproxMinCostNodeDisjoint(net, 0, 3, nil)
	if !ok {
		t.Fatal("diamond has node-disjoint pairs")
	}
	checkResult(t, net, r, 0, 3)
	if !nodesDisjoint(net, r.Primary, r.Backup, 0, 3) {
		t.Fatal("paths share an intermediate node")
	}
	// Optimal node-disjoint pair: 0→1→3 (2) + 0→2→3 (4) = 6.
	if math.Abs(r.Cost-6) > 1e-9 {
		t.Fatalf("cost = %g, want 6", r.Cost)
	}
}

// Property: node-disjoint pairs are always node-disjoint and never cheaper
// than the best edge-disjoint pair.
func TestQuickNodeDisjointDominance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(5)
		net := randomWDM(rng, n, 2, false)
		s, d := 0, n-1
		rn, okN := ApproxMinCostNodeDisjoint(net, s, d, nil)
		re, okE := ApproxMinCost(net, s, d, nil)
		if okN {
			if !okE {
				return false // node-disjoint implies edge-disjoint
			}
			if !nodesDisjoint(net, rn.Primary, rn.Backup, s, d) {
				return false
			}
			if err := rn.Primary.ValidateAvailable(net, s, d); err != nil {
				return false
			}
			if err := rn.Backup.ValidateAvailable(net, s, d); err != nil {
				return false
			}
		}
		_ = re
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAlternateTableServesRequests(t *testing.T) {
	net := diamondNet(2)
	tbl := BuildAlternateTable(net, 2, nil)
	if tbl.Alternates(0, 3) < 1 {
		t.Fatal("no alternates for (0,3)")
	}
	if tbl.Alternates(0, 0) != 0 || tbl.Alternates(-1, 3) != 0 {
		t.Fatal("degenerate pairs should have no alternates")
	}
	r, ok := tbl.Route(net, 0, 3)
	if !ok {
		t.Fatal("table route failed on idle network")
	}
	checkResult(t, net, r, 0, 3)
	// First alternate is the idle-network optimum pair (cost 6).
	if math.Abs(r.Cost-6) > 1e-9 {
		t.Fatalf("cost = %g, want 6", r.Cost)
	}
	if _, ok := tbl.Route(net, 0, 0); ok {
		t.Fatal("s == t accepted")
	}
}

func TestAlternateTableFallsBackWhenBusy(t *testing.T) {
	// W=1 diamond: the best pair uses links {0,1} and {2,3}; once reserved,
	// the only remaining alternate must use link 4 (0→3 direct) — but a
	// single link cannot form a pair, so with k=2 the second alternate
	// cannot exist and the request blocks. Verify ordered fallback on a
	// richer network instead: two fully disjoint pair-sets.
	net := wdm.NewNetwork(6, 1)
	// Pair set 1: 0→1→5 and 0→2→5.
	net.AddUniformLink(0, 1, 1)
	net.AddUniformLink(1, 5, 1)
	net.AddUniformLink(0, 2, 1)
	net.AddUniformLink(2, 5, 1)
	// Pair set 2 (more expensive): 0→3→5 and 0→4→5.
	net.AddUniformLink(0, 3, 2)
	net.AddUniformLink(3, 5, 2)
	net.AddUniformLink(0, 4, 2)
	net.AddUniformLink(4, 5, 2)
	net.SetAllConverters(wdm.NewFullConverter(1, 0))
	tbl := BuildAlternateTable(net, 2, nil)
	if got := tbl.Alternates(0, 5); got != 2 {
		t.Fatalf("alternates = %d, want 2", got)
	}
	r1, ok := tbl.Route(net, 0, 5)
	if !ok || math.Abs(r1.Cost-4) > 1e-9 {
		t.Fatalf("first route cost = %v ok=%v", r1, ok)
	}
	if err := Establish(net, r1); err != nil {
		t.Fatal(err)
	}
	// First alternate exhausted (W=1): second must be chosen.
	r2, ok := tbl.Route(net, 0, 5)
	if !ok {
		t.Fatal("fallback alternate not used")
	}
	if math.Abs(r2.Cost-8) > 1e-9 {
		t.Fatalf("fallback cost = %g, want 8", r2.Cost)
	}
	if err := Establish(net, r2); err != nil {
		t.Fatal(err)
	}
	// Everything exhausted now.
	if _, ok := tbl.Route(net, 0, 5); ok {
		t.Fatal("exhausted table still routed")
	}
}

func TestAlternateTableNeverBeatsAdaptive(t *testing.T) {
	// Adaptive routing recomputes on the residual network, so whenever the
	// table finds a pair the adaptive router must find one too.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		net := randomWDM(rng, 6+rng.Intn(3), 2, true)
		tbl := BuildAlternateTable(net, 2, nil)
		s, d := 0, net.Nodes()-1
		_, okT := tbl.Route(net, s, d)
		_, okA := ApproxMinCost(net, s, d, nil)
		if okT && !okA {
			t.Fatalf("trial %d: table routed where adaptive failed", trial)
		}
	}
}

func TestEstablishRollsBackWhenBackupConflicts(t *testing.T) {
	net := diamondNet(1)
	r, ok := ApproxMinCost(net, 0, 3, nil)
	if !ok {
		t.Fatal("routing failed")
	}
	// Steal one wavelength of the backup path before establishing.
	bh := r.Backup.Hops[0]
	if err := net.Use(bh.Link, bh.Wavelength); err != nil {
		t.Fatal(err)
	}
	if err := Establish(net, r); err == nil {
		t.Fatal("establish should fail on stolen backup channel")
	}
	// The primary reservation must have been rolled back.
	for _, h := range r.Primary.Hops {
		if !net.Link(h.Link).HasAvail(h.Wavelength) {
			t.Fatal("primary channel leaked after failed establish")
		}
	}
	// Only the stolen channel remains used.
	if err := net.Release(bh.Link, bh.Wavelength); err != nil {
		t.Fatal(err)
	}
	if net.NetworkLoad() != 0 {
		t.Fatal("unexpected residual usage")
	}
}

func TestTeardownErrorsOnUnreservedPaths(t *testing.T) {
	net := diamondNet(1)
	r, ok := ApproxMinCost(net, 0, 3, nil)
	if !ok {
		t.Fatal("routing failed")
	}
	// Never established: teardown must error, not panic.
	if err := Teardown(net, r); err == nil {
		t.Fatal("teardown of unreserved route should error")
	}
}

func TestOptionsAccessors(t *testing.T) {
	o := &Options{Base: 7, MaxIterations: 3}
	net := diamondNet(2)
	// Exercise the explicit-options paths of the load routers.
	if _, ok := MinLoad(net, 0, 3, o); !ok {
		t.Fatal("MinLoad with explicit options failed")
	}
	if _, ok := MinLoadCost(net, 0, 3, o); !ok {
		t.Fatal("MinLoadCost with explicit options failed")
	}
}

func TestMinLoadCostOnUniformlyIdleNetwork(t *testing.T) {
	// Uniform loads hit the Δ≈0 fast path of the threshold search.
	net := diamondNet(4)
	r, ok := MinLoadCost(net, 0, 3, nil)
	if !ok {
		t.Fatal("MinLoadCost failed on idle network")
	}
	checkResult(t, net, r, 0, 3)
	if r.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1 (uniform-load fast path)", r.Iterations)
	}
}
