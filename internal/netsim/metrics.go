package netsim

import "repro/internal/metrics"

// instruments holds the package's metric hooks; nil (the default) means off.
// All times are wall-clock computation latency, not simulated time — the
// simulator's own clock lives in Metrics.
type instruments struct {
	routeTime   *metrics.Timer
	established *metrics.Counter
	blocked     *metrics.Counter
	teardowns   *metrics.Counter
	failures    *metrics.Counter
	restoreTime *metrics.Timer
	restored    *metrics.Counter
	dropped     *metrics.Counter
	reconfigs   *metrics.Counter

	// Live progress gauges: refreshed as the simulation runs so a /metrics
	// scrape mid-run shows where the run stands, not just end-of-run totals.
	networkLoad  *metrics.Gauge
	liveConns    *metrics.Gauge
	offered      *metrics.Gauge
	blockingProb *metrics.Gauge
}

var instr instruments

// EnableMetrics registers the package's instruments on r and routes all
// subsequent simulator activity through them. A nil registry disables them.
func EnableMetrics(r *metrics.Registry) {
	instr = instruments{
		routeTime:   r.Timer("netsim_route_seconds", "per-request routing computation latency"),
		established: r.Counter("netsim_established_total", "connections established"),
		blocked:     r.Counter("netsim_blocked_total", "requests blocked"),
		teardowns:   r.Counter("netsim_teardown_total", "connections torn down at departure"),
		failures:    r.Counter("netsim_failures_total", "link failure events"),
		restoreTime: r.Timer("netsim_restore_seconds", "per-connection restoration computation latency"),
		restored:    r.Counter("netsim_restored_total", "connections recovered after a failure"),
		dropped:     r.Counter("netsim_dropped_total", "connections lost to an unrecovered failure"),
		reconfigs:   r.Counter("netsim_reconfigs_total", "reconfiguration events triggered"),

		networkLoad:  r.Gauge("netsim_network_load", "current network load rho (max link utilization)"),
		liveConns:    r.Gauge("netsim_live_connections", "connections currently established"),
		offered:      r.Gauge("netsim_offered", "measured requests offered so far"),
		blockingProb: r.Gauge("netsim_blocking_probability", "running blocked/offered ratio over measured requests"),
	}
}
