// wdmtopo inspects and exports topologies: summary statistics, Graphviz DOT
// rendering, and the JSON interchange format understood by wdmroute/wdmsim:
//
//	wdmtopo -topo nsfnet -w 8                  # print statistics
//	wdmtopo -topo arpa2 -format dot            # Graphviz
//	wdmtopo -topo waxman -n 24 -format json    # save/edit/reload
//	wdmtopo -file mynet.json                   # stats for a saved topology
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/auxgraph"
	"repro/internal/cli"
	"repro/internal/disjoint"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/topofile"
	"repro/internal/wdm"
)

func main() {
	topoName := flag.String("topo", "nsfnet", "topology: nsfnet, arpa2, ring, grid, waxman, complete")
	file := flag.String("file", "", "load topology from a JSON file instead")
	n := flag.Int("n", 16, "node count for parametric topologies")
	w := flag.Int("w", 8, "wavelengths per fiber")
	seed := flag.Int64("seed", 1, "seed for random topologies")
	format := flag.String("format", "stats", "output: stats, dot, json")
	version := cli.VersionFlag()
	flag.Parse()
	cli.HandleVersion(*version)

	net, err := cli.LoadOrBuild(*file, *topoName, *n, *w, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch *format {
	case "stats":
		printStats(net)
	case "dot":
		printDOT(net)
	case "json":
		f := topofile.Describe(net, topofile.ConverterSpec{Kind: "full", Cost: 0.5})
		if err := f.Encode(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		os.Exit(1)
	}
}

func printStats(net *wdm.Network) {
	fmt.Printf("nodes            %d\n", net.Nodes())
	fmt.Printf("directed links   %d\n", net.Links())
	fmt.Printf("wavelengths      %d\n", net.W())
	fmt.Printf("max degree d     %d\n", net.MaxDegree())
	var cost stats.Stream
	for id := 0; id < net.Links(); id++ {
		cost.Add(net.Link(id).MeanAvailCost())
	}
	fmt.Printf("link cost        %s\n", cost.String())
	// Robust-routability: fraction of ordered pairs with an edge-disjoint
	// pair (should be 100% for a survivable backbone).
	total, routable := 0, 0
	for s := 0; s < net.Nodes(); s++ {
		for d := 0; d < net.Nodes(); d++ {
			if s == d {
				continue
			}
			total++
			a := auxgraph.Build(net, s, d, auxgraph.Params{Kind: auxgraph.Cost})
			if _, ok := disjoint.Suurballe(a.G, a.S, a.T); ok {
				routable++
			}
		}
	}
	fmt.Printf("robust pairs     %d/%d (%.1f%%)\n", routable, total,
		100*float64(routable)/float64(total))
	// Auxiliary graph size for a representative request (§3.3.1 inventory).
	a := auxgraph.Build(net, 0, net.Nodes()-1, auxgraph.Params{Kind: auxgraph.Cost})
	fmt.Printf("aux graph        %d vertices, %d edges (for request 0→%d)\n",
		a.G.N(), a.G.M(), net.Nodes()-1)
	// Survivability at conduit granularity: bridge spans cannot be
	// protected by any edge-disjoint backup.
	g := graph.New(net.Nodes())
	for id := 0; id < net.Links(); id++ {
		l := net.Link(id)
		g.AddEdge(l.From, l.To, 1)
	}
	if bridges := g.Bridges(); len(bridges) > 0 {
		fmt.Printf("bridge links     %d (unprotectable at conduit granularity)\n", len(bridges))
	} else {
		fmt.Printf("bridge links     none (2-edge-connected)\n")
	}
	// Protection capacity: max k of pairwise edge-disjoint paths per pair
	// (Menger), i.e. the highest protection level any router can offer.
	var conn stats.Stream
	minConn := -1
	for s := 0; s < net.Nodes(); s++ {
		for d := 0; d < net.Nodes(); d++ {
			if s == d {
				continue
			}
			c := g.EdgeConnectivity(s, d)
			conn.Add(float64(c))
			if minConn < 0 || c < minConn {
				minConn = c
			}
		}
	}
	fmt.Printf("pair conn.       min %d, mean %.2f (max protection level k)\n", minConn, conn.Mean())
}

func printDOT(net *wdm.Network) {
	fmt.Println("digraph wdm {")
	fmt.Println("  rankdir=LR; node [shape=circle];")
	for id := 0; id < net.Links(); id++ {
		l := net.Link(id)
		fmt.Printf("  %d -> %d [label=\"e%d w=%.3g λ=%d\"];\n",
			l.From, l.To, id, l.MeanAvailCost(), l.N())
	}
	fmt.Println("}")
}
