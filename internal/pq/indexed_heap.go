// Package pq provides priority queues tuned for shortest-path workloads:
// an indexed binary min-heap with decrease-key over a dense integer key
// space, and a pairing heap for sparse or unbounded key spaces. The paper's
// complexity analysis assumes Fibonacci heaps [Fredman–Tarjan 1987]; both
// structures here have the same practical asymptotics for Dijkstra on the
// graph sizes a wide-area WDM network produces, and the pairing heap matches
// the amortized decrease-key profile closely.
package pq

// IndexedHeap is a binary min-heap over items identified by integers in
// [0, n). Each item has a float64 priority. DecreaseKey, Contains, and
// Remove are O(log n) / O(1) thanks to the position index.
//
// The zero value is not usable; call NewIndexedHeap.
type IndexedHeap struct {
	heap []int     // heap[i] = item id at heap position i
	pos  []int     // pos[id] = heap position of id, or -1
	prio []float64 // prio[id] = current priority of id
}

// NewIndexedHeap returns an empty heap over ids in [0, n).
func NewIndexedHeap(n int) *IndexedHeap {
	h := &IndexedHeap{
		heap: make([]int, 0, n),
		pos:  make([]int, n),
		prio: make([]float64, n),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len returns the number of items currently in the heap.
func (h *IndexedHeap) Len() int { return len(h.heap) }

// Empty reports whether the heap has no items.
func (h *IndexedHeap) Empty() bool { return len(h.heap) == 0 }

// Contains reports whether id is currently in the heap.
func (h *IndexedHeap) Contains(id int) bool { return h.pos[id] >= 0 }

// Priority returns the current priority of id. The result is meaningful only
// if Contains(id) or if id was previously popped.
func (h *IndexedHeap) Priority(id int) float64 { return h.prio[id] }

// Push inserts id with the given priority. It panics if id is already
// present.
func (h *IndexedHeap) Push(id int, priority float64) {
	if h.pos[id] >= 0 {
		panic("pq: Push of item already in heap")
	}
	h.prio[id] = priority
	h.pos[id] = len(h.heap)
	//wdmlint:ignore hotalloc heap growth to peak size; amortizes to zero once warm
	h.heap = append(h.heap, id)
	h.up(len(h.heap) - 1)
}

// Pop removes and returns the item with minimum priority along with that
// priority. It panics on an empty heap.
func (h *IndexedHeap) Pop() (id int, priority float64) {
	if len(h.heap) == 0 {
		panic("pq: Pop from empty heap")
	}
	id = h.heap[0]
	priority = h.prio[id]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.pos[id] = -1
	if last > 0 {
		h.down(0)
	}
	return id, priority
}

// Peek returns the minimum item without removing it.
func (h *IndexedHeap) Peek() (id int, priority float64) {
	if len(h.heap) == 0 {
		panic("pq: Peek on empty heap")
	}
	id = h.heap[0]
	return id, h.prio[id]
}

// DecreaseKey lowers the priority of id to priority. It panics if id is not
// in the heap or the new priority is greater than the current one.
func (h *IndexedHeap) DecreaseKey(id int, priority float64) {
	p := h.pos[id]
	if p < 0 {
		panic("pq: DecreaseKey of item not in heap")
	}
	if priority > h.prio[id] {
		panic("pq: DecreaseKey with larger priority")
	}
	h.prio[id] = priority
	h.up(p)
}

// PushOrDecrease inserts id if absent, or lowers its key if the new priority
// is smaller. It returns true if the heap changed. This is the common
// Dijkstra relaxation helper.
func (h *IndexedHeap) PushOrDecrease(id int, priority float64) bool {
	if h.pos[id] < 0 {
		h.Push(id, priority)
		return true
	}
	if priority < h.prio[id] {
		h.DecreaseKey(id, priority)
		return true
	}
	return false
}

// Remove deletes id from the heap. It panics if absent.
func (h *IndexedHeap) Remove(id int) {
	p := h.pos[id]
	if p < 0 {
		panic("pq: Remove of item not in heap")
	}
	last := len(h.heap) - 1
	h.swap(p, last)
	h.heap = h.heap[:last]
	h.pos[id] = -1
	if p < last {
		h.up(p)
		h.down(p)
	}
}

// Cap returns the size of the id space [0, n) the heap accepts.
func (h *IndexedHeap) Cap() int { return len(h.pos) }

// Grow extends the id space to [0, n), keeping current contents. It is a
// no-op when the heap already accepts n ids. Together with Reset this lets a
// single heap be reused across graphs of different sizes without
// re-allocating (the shortest-path workspaces rely on it).
func (h *IndexedHeap) Grow(n int) {
	for len(h.pos) < n {
		h.pos = append(h.pos, -1)
		h.prio = append(h.prio, 0)
	}
}

// Reset empties the heap, keeping capacity. Priorities of previously popped
// items are no longer meaningful after Reset.
func (h *IndexedHeap) Reset() {
	for _, id := range h.heap {
		h.pos[id] = -1
	}
	h.heap = h.heap[:0]
}

func (h *IndexedHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.pos[h.heap[i]] = i
	h.pos[h.heap[j]] = j
}

func (h *IndexedHeap) less(i, j int) bool {
	return h.prio[h.heap[i]] < h.prio[h.heap[j]]
}

func (h *IndexedHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedHeap) down(i int) {
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
