package check

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := GenerateSeeded(seed, 7)
		b := GenerateSeeded(seed, 7)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two generations differ", seed)
		}
	}
}

func TestGeneratedInstancesValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		in := Generate(rng, 8)
		if err := in.Validate(); err != nil {
			t.Fatalf("instance %d invalid: %v\n%+v", i, err, in)
		}
		if _, err := in.Build(); err != nil {
			t.Fatalf("instance %d does not build: %v", i, err)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	in := GenerateSeeded(11, 7)
	a, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.Nodes() != b.Nodes() || a.Links() != b.Links() || a.W() != b.W() ||
		a.TotalAvailable() != b.TotalAvailable() {
		t.Fatal("two builds of the same instance differ")
	}
	for id := 0; id < a.Links(); id++ {
		la, lb := a.Link(id), b.Link(id)
		if la.From != lb.From || la.To != lb.To || la.N() != lb.N() {
			t.Fatalf("link %d differs between builds", id)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	base := func() *Instance {
		return &Instance{
			Nodes: 3, W: 2, Conv: ConvFull, ConvCost: 0.5,
			Links: []LinkSpec{{From: 0, To: 1, Cost: 1}, {From: 1, To: 2, Cost: 1}},
			Ops: []Op{
				{Teardown: -1, Src: 0, Dst: 2, Algo: AlgoMinCost},
				{Teardown: 0},
			},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base instance invalid: %v", err)
	}
	corrupt := map[string]func(*Instance){
		"no nodes":           func(in *Instance) { in.Nodes = 1 },
		"no wavelengths":     func(in *Instance) { in.W = 0 },
		"bad conv":           func(in *Instance) { in.Conv = 99 },
		"negative conv cost": func(in *Instance) { in.ConvCost = -1 },
		"self loop":          func(in *Instance) { in.Links[0].To = 0 },
		"link endpoint":      func(in *Instance) { in.Links[1].To = 9 },
		"negative cost":      func(in *Instance) { in.Links[0].Cost = -2 },
		"lambda range":       func(in *Instance) { in.Links[0].Lambdas = []int{5}; in.Links[0].Costs = []float64{1} },
		"lambda dupe":        func(in *Instance) { in.Links[0].Lambdas = []int{0, 0}; in.Links[0].Costs = []float64{1, 1} },
		"list mismatch":      func(in *Instance) { in.Links[0].Lambdas = []int{0, 1}; in.Links[0].Costs = []float64{1} },
		"forward teardown":   func(in *Instance) { in.Ops[1].Teardown = 1 },
		"op self loop":       func(in *Instance) { in.Ops[0].Dst = 0 },
		"op endpoint":        func(in *Instance) { in.Ops[0].Src = -3 },
		"op algo":            func(in *Instance) { in.Ops[0].Algo = 42 },
		"double teardown":    func(in *Instance) { in.Ops = append(in.Ops, Op{Teardown: 0}) },
	}
	for name, mutate := range corrupt {
		in := base()
		mutate(in)
		if err := in.Validate(); err == nil {
			t.Errorf("%s: corruption not caught", name)
		}
	}
}

func TestEligible(t *testing.T) {
	in := GenerateSeeded(1, 6)
	in.Conv = ConvFull
	for i := range in.Links {
		in.Links[i].Lambdas, in.Links[i].Costs = nil, nil
	}
	if !in.Eligible() {
		t.Error("uniform full-conversion instance not eligible")
	}
	in.Conv = ConvNone
	if in.Eligible() {
		t.Error("no-conversion instance eligible")
	}
	in.Conv = ConvFull
	in.Links[0].Lambdas, in.Links[0].Costs = []int{0}, []float64{1}
	if in.Eligible() {
		t.Error("heterogeneous-link instance eligible")
	}
}

// TestShrinkMinimises drives the shrinker with a synthetic deterministic
// predicate — "the instance still contains a min-cost establish" — and
// expects a minimal reproduction: exactly one op, two nodes, one wavelength,
// and only links the instance needs to stay valid.
func TestShrinkMinimises(t *testing.T) {
	in := GenerateSeeded(3, 9)
	fails := func(c *Instance) bool {
		for _, op := range c.Ops {
			if op.Teardown < 0 && op.Algo == AlgoMinCost {
				return true
			}
		}
		return false
	}
	if !fails(in) {
		t.Skip("seed produced no min-cost op")
	}
	out := Shrink(in, fails, 0)
	if err := out.Validate(); err != nil {
		t.Fatalf("shrunk instance invalid: %v", err)
	}
	if !fails(out) {
		t.Fatal("shrunk instance no longer fails")
	}
	if len(out.Ops) != 1 {
		t.Errorf("shrunk to %d ops, want 1", len(out.Ops))
	}
	if out.Nodes != 2 {
		t.Errorf("shrunk to %d nodes, want 2", out.Nodes)
	}
	if out.W != 1 {
		t.Errorf("shrunk to W = %d, want 1", out.W)
	}
	if len(out.Links) != 0 {
		t.Errorf("shrunk keeps %d links, want 0 (predicate ignores links)", len(out.Links))
	}
	if fails(in) && in.Nodes < 3 {
		t.Error("original instance mutated by shrinking")
	}
}

func TestShrinkPreservesTeardownDiscipline(t *testing.T) {
	in := &Instance{
		Nodes: 4, W: 2, Conv: ConvFull, ConvCost: 0.25,
		Links: []LinkSpec{
			{From: 0, To: 1, Cost: 1}, {From: 1, To: 0, Cost: 1},
			{From: 1, To: 2, Cost: 1}, {From: 2, To: 1, Cost: 1},
			{From: 2, To: 3, Cost: 1}, {From: 3, To: 2, Cost: 1},
			{From: 3, To: 0, Cost: 1}, {From: 0, To: 3, Cost: 1},
		},
		Ops: []Op{
			{Teardown: -1, Src: 0, Dst: 2, Algo: AlgoMinCost},
			{Teardown: -1, Src: 1, Dst: 3, Algo: AlgoMinLoad},
			{Teardown: 0},
			{Teardown: -1, Src: 2, Dst: 0, Algo: AlgoMinLoadCost},
			{Teardown: 1},
			{Teardown: 3},
		},
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	// Predicate needs the min-load-cost op; everything else should go, and
	// every intermediate candidate must keep teardown indices consistent
	// (Shrink's try() validates each one, so an inconsistency would surface
	// as a failure to shrink at all).
	fails := func(c *Instance) bool {
		for _, op := range c.Ops {
			if op.Teardown < 0 && op.Algo == AlgoMinLoadCost {
				return true
			}
		}
		return false
	}
	out := Shrink(in, fails, 0)
	if err := out.Validate(); err != nil {
		t.Fatalf("shrunk instance invalid: %v", err)
	}
	if len(out.Ops) != 1 || out.Ops[0].Algo != AlgoMinLoadCost {
		t.Fatalf("want a single min-load-cost op, got %+v", out.Ops)
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	in := GenerateSeeded(5, 6)
	art := &Artifact{Err: "op 2 (min-cost): synthetic", Op: 2, Instance: in, Shrunk: GenerateSeeded(6, 4)}
	var buf bytes.Buffer
	if err := art.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(art, got) {
		t.Errorf("round trip changed the artifact:\nin:  %+v\nout: %+v", art, got)
	}
}

func TestDecodeArtifactRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":          "not json",
		"no instance":      `{"Err":"x"}`,
		"invalid instance": `{"Err":"x","Instance":{"Nodes":0,"W":1}}`,
		"unknown field":    `{"Err":"x","Bogus":1,"Instance":{"Nodes":2,"W":1}}`,
	}
	for name, s := range cases {
		if _, err := DecodeArtifact(strings.NewReader(s)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
