// Package parallel runs experiment sweeps across goroutines with
// deterministic results: each task owns its index (and derives its own seed
// from it), so the output is independent of scheduling. This is the fan-out
// layer the benchmark harness uses to fill all cores.
package parallel

import (
	"runtime"
	"sync"
)

// Map evaluates fn(i) for i in [0, n) using up to workers goroutines
// (workers ≤ 0 selects GOMAXPROCS) and returns the results in index order.
func Map[T any](n, workers int, fn func(i int) T) []T {
	if n < 0 {
		panic("parallel: negative task count")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(n) {
			return -1
		}
		i := int(next)
		next++
		return i
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i < 0 {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// ForEach is Map without results.
func ForEach(n, workers int, fn func(i int)) {
	Map(n, workers, func(i int) struct{} {
		fn(i)
		return struct{}{}
	})
}

// Reduce runs fn over [0, n) in parallel and folds the results with combine
// in index order (combine must be associative for the fold order to be
// irrelevant; it is applied sequentially left-to-right over the ordered
// results, so any binary op works deterministically).
func Reduce[T, A any](n, workers int, zero A, fn func(i int) T, combine func(A, T) A) A {
	results := Map(n, workers, fn)
	acc := zero
	for _, r := range results {
		acc = combine(acc, r)
	}
	return acc
}
