// Package app annotates the fixture hot roots and exercises every
// allocation construct the rule classifies.
package app

import (
	"fmt"

	"fix/hotalloc/graph"
)

type labels struct{ a, b string }

// Route is the annotated hot root: clean itself, but everything it reaches
// inherits the contract.
//
//wdm:hotpath
func Route(ws *graph.Workspace, n int) []int {
	ws.Grow(n)
	for i := 0; i < n; i++ {
		ws.Relax(i, int64(i))
	}
	return ws.Spill()
}

// Describe allocates every which way on the hot path: findings.
//
//wdm:hotpath
func Describe(ws *graph.Workspace, name string) {
	ids := []int{1, 2}
	m := map[string]int{}
	l := &labels{a: name}
	bs := []byte(name)
	sink(name)
	f := func() int { return len(ids) + len(bs) + len(m) + len(l.a) }
	_ = f()
	_ = ws.Trace(0) // clean: cold boundary
}

// sink takes an interface; passing it a concrete value boxes at the caller.
func sink(v any) { _ = v }

// Cold allocates but is neither annotated nor reachable from a root: clean.
func Cold() []int { return make([]int, 4) }

// Panic allocates on the hot path under a recorded exception: suppressed.
//
//wdm:hotpath
func Panic(code int) {
	panic(fmt.Sprintf("code %d", code)) //wdmlint:ignore hotalloc unreachable in steady state; a panic aborts the request
}
