package check

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/wdm"
)

// diamond builds the 4-node test network used throughout:
//
//	0 → 1 → 3   (links 0, 1; cost 1 each)
//	0 → 2 → 3   (links 2, 3; cost 2 each)
//
// with W = 2 and full conversion at cost 0.5.
func diamond(t *testing.T) *wdm.Network {
	t.Helper()
	net := wdm.NewNetwork(4, 2)
	net.SetAllConverters(wdm.NewFullConverter(2, 0.5))
	net.AddUniformLink(0, 1, 1)
	net.AddUniformLink(1, 3, 1)
	net.AddUniformLink(0, 2, 2)
	net.AddUniformLink(2, 3, 2)
	return net
}

func slp(hops ...wdm.Hop) *wdm.Semilightpath {
	return &wdm.Semilightpath{Hops: hops}
}

func TestPathAcceptsValidWalks(t *testing.T) {
	net := diamond(t)
	continuous := slp(wdm.Hop{Link: 0, Wavelength: 0}, wdm.Hop{Link: 1, Wavelength: 0})
	if err := Path(net, continuous, 0, 3); err != nil {
		t.Errorf("continuous path rejected: %v", err)
	}
	converting := slp(wdm.Hop{Link: 0, Wavelength: 0}, wdm.Hop{Link: 1, Wavelength: 1})
	if err := Path(net, converting, 0, 3); err != nil {
		t.Errorf("converting path rejected under full conversion: %v", err)
	}
	if err := PathAvailable(net, converting, 0, 3); err != nil {
		t.Errorf("fresh network path not available: %v", err)
	}
}

func TestPathRejectsBrokenWalks(t *testing.T) {
	net := diamond(t)
	cases := map[string]struct {
		p    *wdm.Semilightpath
		s, t int
		want string
	}{
		"empty":         {slp(), 0, 3, "empty"},
		"disconnected":  {slp(wdm.Hop{Link: 0, Wavelength: 0}, wdm.Hop{Link: 3, Wavelength: 0}), 0, 3, "walk is at"},
		"wrong dest":    {slp(wdm.Hop{Link: 0, Wavelength: 0}), 0, 3, "ends at node"},
		"bad link":      {slp(wdm.Hop{Link: 9, Wavelength: 0}), 0, 3, "out of range"},
		"bad lambda":    {slp(wdm.Hop{Link: 0, Wavelength: 7}), 0, 3, "out of range"},
		"bad endpoints": {slp(wdm.Hop{Link: 0, Wavelength: 0}), -1, 1, "out of range"},
	}
	for name, c := range cases {
		err := Path(net, c.p, c.s, c.t)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", name, err, c.want)
		}
	}
}

func TestPathRejectsDisallowedConversion(t *testing.T) {
	net := wdm.NewNetwork(3, 2)
	net.SetAllConverters(wdm.NoConverter{})
	net.AddUniformLink(0, 1, 1)
	net.AddUniformLink(1, 2, 1)
	p := slp(wdm.Hop{Link: 0, Wavelength: 0}, wdm.Hop{Link: 1, Wavelength: 1})
	if err := Path(net, p, 0, 2); err == nil || !strings.Contains(err.Error(), "conversion") {
		t.Errorf("conversion under NoConverter accepted: %v", err)
	}
	if !math.IsInf(PathCost(net, p), 1) {
		t.Errorf("PathCost of illegal conversion = %g, want +Inf", PathCost(net, p))
	}
}

func TestPathRejectsUninstalledWavelength(t *testing.T) {
	net := wdm.NewNetwork(2, 2)
	net.SetAllConverters(wdm.NewFullConverter(2, 0))
	net.AddLink(0, 1, []wdm.Wavelength{0}, []float64{1}) // λ1 not installed
	p := slp(wdm.Hop{Link: 0, Wavelength: 1})
	if err := Path(net, p, 0, 1); err == nil || !strings.Contains(err.Error(), "not installed") {
		t.Errorf("uninstalled wavelength accepted: %v", err)
	}
}

func TestAvailabilityAndReservation(t *testing.T) {
	net := diamond(t)
	p := slp(wdm.Hop{Link: 0, Wavelength: 0}, wdm.Hop{Link: 1, Wavelength: 0})
	if err := Reserved(net, p); err == nil {
		t.Error("Reserved accepted a path whose channels are still available")
	}
	if err := net.Reserve(p); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	if err := Reserved(net, p); err != nil {
		t.Errorf("Reserved rejected an established path: %v", err)
	}
	if err := PathAvailable(net, p, 0, 3); err == nil {
		t.Error("PathAvailable accepted a path whose channels are held")
	}
	if err := LoadAccounting(net); err != nil {
		t.Errorf("LoadAccounting after reserve: %v", err)
	}
	net.ReleasePath(p)
	if err := LoadAccounting(net); err != nil {
		t.Errorf("LoadAccounting after release: %v", err)
	}
}

func TestCostRecomputation(t *testing.T) {
	net := diamond(t)
	// 0→1 on λ0 (1), convert at node 1 (0.5), 1→3 on λ1 (1): total 2.5.
	p := slp(wdm.Hop{Link: 0, Wavelength: 0}, wdm.Hop{Link: 1, Wavelength: 1})
	if got := PathCost(net, p); got != 2.5 {
		t.Errorf("PathCost = %g, want 2.5", got)
	}
	if got, want := PathCost(net, p), p.Cost(net); got != want {
		t.Errorf("PathCost = %g disagrees with Semilightpath.Cost = %g", got, want)
	}
	if err := Cost(net, p, 2.5); err != nil {
		t.Errorf("Cost rejected the true value: %v", err)
	}
	if err := Cost(net, p, 2.5+1e-3); err == nil {
		t.Error("Cost accepted a value off by 1e-3")
	}
}

func TestDisjointness(t *testing.T) {
	net := diamond(t)
	top := slp(wdm.Hop{Link: 0, Wavelength: 0}, wdm.Hop{Link: 1, Wavelength: 0})
	bottom := slp(wdm.Hop{Link: 2, Wavelength: 0}, wdm.Hop{Link: 3, Wavelength: 0})
	if err := EdgeDisjoint(top, bottom); err != nil {
		t.Errorf("disjoint pair rejected: %v", err)
	}
	if err := NodeDisjoint(net, top, bottom, 0, 3); err != nil {
		t.Errorf("node-disjoint pair rejected: %v", err)
	}
	// Same links on different wavelengths still share the physical edge.
	topOther := slp(wdm.Hop{Link: 0, Wavelength: 1}, wdm.Hop{Link: 1, Wavelength: 1})
	if err := EdgeDisjoint(top, topOther); err == nil {
		t.Error("pair sharing links on different wavelengths accepted as edge-disjoint")
	}
	// Edge-disjoint but sharing intermediate node 1.
	net2 := wdm.NewNetwork(4, 2)
	net2.SetAllConverters(wdm.NewFullConverter(2, 0))
	net2.AddUniformLink(0, 1, 1) // 0
	net2.AddUniformLink(1, 3, 1) // 1
	net2.AddUniformLink(0, 1, 1) // 2 (parallel)
	net2.AddUniformLink(1, 3, 1) // 3 (parallel)
	a := slp(wdm.Hop{Link: 0, Wavelength: 0}, wdm.Hop{Link: 1, Wavelength: 0})
	b := slp(wdm.Hop{Link: 2, Wavelength: 0}, wdm.Hop{Link: 3, Wavelength: 0})
	if err := EdgeDisjoint(a, b); err != nil {
		t.Errorf("parallel-link pair rejected as edge-disjoint: %v", err)
	}
	if err := NodeDisjoint(net2, a, b, 0, 3); err == nil {
		t.Error("pair sharing intermediate node 1 accepted as node-disjoint")
	}
}

func TestPairLoad(t *testing.T) {
	net := diamond(t)
	p := slp(wdm.Hop{Link: 0, Wavelength: 0}, wdm.Hop{Link: 1, Wavelength: 0})
	q := slp(wdm.Hop{Link: 2, Wavelength: 0}, wdm.Hop{Link: 3, Wavelength: 0})
	// Fresh network, W = 2: establishing a pair puts (0+1)/2 on each link.
	if got := PairLoad(net, p, q); got != 0.5 {
		t.Errorf("PairLoad = %g, want 0.5", got)
	}
	net.Use(0, 1) // one channel on link 0 already busy → (1+1)/2 = 1
	if got := PairLoad(net, p, q); got != 1 {
		t.Errorf("PairLoad with one busy channel = %g, want 1", got)
	}
}

func TestLoadAccountingTracksUsage(t *testing.T) {
	net := diamond(t)
	if err := LoadAccounting(net); err != nil {
		t.Fatalf("fresh network: %v", err)
	}
	net.Use(0, 0)
	net.Use(0, 1)
	net.Use(3, 1)
	if err := LoadAccounting(net); err != nil {
		t.Errorf("after use: %v", err)
	}
	net.Release(0, 1)
	if err := LoadAccounting(net); err != nil {
		t.Errorf("after release: %v", err)
	}
}

func TestGraphPair(t *testing.T) {
	g := graph.New(4)
	e01 := g.AddEdge(0, 1, 1)
	e13 := g.AddEdge(1, 3, 1)
	e02 := g.AddEdge(0, 2, 2)
	e23 := g.AddEdge(2, 3, 2)
	top, bottom := []int{e01, e13}, []int{e02, e23}
	if err := GraphPair(g, top, bottom, 0, 3, 6); err != nil {
		t.Errorf("valid pair rejected: %v", err)
	}
	if err := GraphPair(g, top, bottom, 0, 3, 5); err == nil {
		t.Error("wrong pair weight accepted")
	}
	if err := GraphPair(g, top, top, 0, 3, 4); err == nil {
		t.Error("self-overlapping pair accepted")
	}
	if err := GraphPath(g, []int{e01, e23}, 0, 3); err == nil {
		t.Error("disconnected edge sequence accepted")
	}
	g.Disable(e13)
	if err := GraphPath(g, top, 0, 3); err == nil {
		t.Error("path over disabled edge accepted")
	}
}

// TestValidatorsAgreeWithProduction cross-checks the oracle against the
// wdm.Semilightpath methods on randomly built paths: both must accept valid
// paths and agree on cost.
func TestValidatorsAgreeWithProduction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		in := Generate(rng, 6)
		net, err := in.Build()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		// Random single-hop and two-hop walks drawn directly from the links.
		for tries := 0; tries < 20; tries++ {
			id := rng.Intn(net.Links())
			l := net.Link(id)
			var lam wdm.Wavelength = -1
			l.Lambda().ForEach(func(x int) bool { lam = x; return false })
			p := slp(wdm.Hop{Link: id, Wavelength: lam})
			if err := Path(net, p, l.From, l.To); err != nil {
				t.Fatalf("single hop rejected: %v", err)
			}
			if err := p.Validate(net, l.From, l.To); err != nil {
				t.Fatalf("production validator disagrees: %v", err)
			}
			if got, want := PathCost(net, p), p.Cost(net); got != want {
				t.Fatalf("cost disagreement: oracle %g, production %g", got, want)
			}
		}
	}
}
