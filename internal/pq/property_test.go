package pq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestHeapsAgreeOnRandomStreams drives the indexed binary heap and the
// pairing heap with the same random push/decrease-key/pop stream and demands
// identical (value, priority) pop sequences. Priorities are drawn unique so
// ties cannot legally reorder the two implementations; decrease-keys always
// go strictly below the current global minimum or strictly between existing
// keys, staying unique.
func TestHeapsAgreeOnRandomStreams(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 64
		ih := NewIndexedHeap(n)
		ph := NewPairingHeap()
		nodes := make([]*PairingNode, n)
		used := map[float64]bool{}
		draw := func() float64 {
			for {
				p := rng.Float64() * 100
				if !used[p] {
					used[p] = true
					return p
				}
			}
		}
		var inHeap []int
		for op := 0; op < 400; op++ {
			switch r := rng.Intn(10); {
			case r < 4: // push a value not currently queued
				id := rng.Intn(n)
				if ih.Contains(id) {
					continue
				}
				p := draw()
				ih.Push(id, p)
				nodes[id] = ph.Push(id, p)
				inHeap = append(inHeap, id)
			case r < 7: // decrease a random queued key
				if len(inHeap) == 0 {
					continue
				}
				id := inHeap[rng.Intn(len(inHeap))]
				cur := ih.Priority(id)
				p := cur * rng.Float64()
				if used[p] {
					continue
				}
				used[p] = true
				ih.DecreaseKey(id, p)
				ph.DecreaseKey(nodes[id], p)
			default: // pop
				if ih.Len() != ph.Len() {
					t.Logf("Len diverged: indexed %d, pairing %d", ih.Len(), ph.Len())
					return false
				}
				if ih.Empty() {
					continue
				}
				iv, ip := ih.Peek()
				pv, pp := ph.Peek()
				if iv != pv || ip != pp {
					t.Logf("Peek diverged: indexed (%d,%g), pairing (%d,%g)", iv, ip, pv, pp)
					return false
				}
				iv, ip = ih.Pop()
				pv, pp = ph.Pop()
				if iv != pv || ip != pp {
					t.Logf("Pop diverged: indexed (%d,%g), pairing (%d,%g)", iv, ip, pv, pp)
					return false
				}
				for k, id := range inHeap {
					if id == iv {
						inHeap = append(inHeap[:k], inHeap[k+1:]...)
						break
					}
				}
			}
		}
		// Drain: the full remaining sequences must match and come out in
		// strictly increasing priority order.
		last := -1.0
		for !ih.Empty() {
			iv, ip := ih.Pop()
			pv, pp := ph.Pop()
			if iv != pv || ip != pp {
				t.Logf("drain diverged: indexed (%d,%g), pairing (%d,%g)", iv, ip, pv, pp)
				return false
			}
			if ip <= last {
				t.Logf("drain not sorted: %g after %g", ip, last)
				return false
			}
			last = ip
		}
		return ph.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
