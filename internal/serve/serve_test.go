package serve

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/topo"
	"repro/internal/wdm"
)

// nsf returns the standard 14-node NSFNET test network.
func nsf(w int) *wdm.Network {
	return topo.NSFNET(topo.Config{W: w})
}

// ring4 returns a 4-node bidirectional ring: the smallest network with two
// edge-disjoint paths between opposite nodes (0→2 via links 0,2 and via
// links 7,5), and little enough capacity that concurrent admissions collide.
func ring4(w int) *wdm.Network {
	return topo.Ring(4, topo.Config{W: w})
}

// startEngine builds and starts an engine, failing the test on error and
// closing it at cleanup.
func startEngine(t *testing.T, net *wdm.Network, cfg Config) *Engine {
	t.Helper()
	e := New(net, cfg)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := e.Close(); err != nil {
			t.Errorf("engine close: %v", err)
		}
	})
	return e
}

// availEqual compares per-link availability sets of two networks.
func availEqual(a, b *wdm.Network) bool {
	if a.Links() != b.Links() {
		return false
	}
	for id := 0; id < a.Links(); id++ {
		as, bs := a.Link(id).Avail().Slice(), b.Link(id).Avail().Slice()
		if len(as) != len(bs) {
			return false
		}
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
	}
	return true
}

// TestConcurrentSmoke is the race-regression gate: 10k mixed requests from
// 16 client goroutines against a live engine, every request answered, then
// a full drain and the oracle audit — capacity conservation included (the
// audit fails if any channel leaks or double-books). Run under -race in CI.
func TestConcurrentSmoke(t *testing.T) {
	net := nsf(8)
	want := net.TotalAvailable()
	e := startEngine(t, net, Config{JournalCap: 200000})
	rep, err := RunSoak(e, SoakConfig{
		Requests:     10000,
		Clients:      16,
		Seed:         1,
		RerouteEvery: 25,
		Drain:        true,
	})
	if err != nil {
		t.Fatalf("soak: %v\n%s", err, rep)
	}
	if !rep.Drained {
		t.Fatal("soak did not drain")
	}
	if rep.Provisions == 0 || rep.Accepted == 0 {
		t.Fatalf("degenerate soak: %s", rep)
	}
	if got := rep.Provisions + rep.Teardowns + rep.Reroutes; got != int64(rep.Requests) {
		t.Fatalf("request accounting: %d provisions + %d teardowns + %d reroutes != %d requests",
			rep.Provisions, rep.Teardowns, rep.Reroutes, rep.Requests)
	}
	if n := e.LiveConnections(); n != 0 {
		t.Fatalf("%d connections survive the drain", n)
	}
	_, snap := e.Snapshot()
	if got := snap.TotalAvailable(); got != want {
		t.Fatalf("capacity not conserved after drain: %d available, want %d", got, want)
	}
}

// TestConflictDetectedAtCommit drives the optimistic-concurrency path
// deterministically: two provisions with byte-identical paths submitted to
// the committer back to back. The first must reserve, the second must be
// reported as a conflict (routed on a snapshot that no longer holds).
func TestConflictDetectedAtCommit(t *testing.T) {
	e := startEngine(t, ring4(4), Config{Shards: 1})

	mk := func(id int64) *op {
		o := newOp(opProvision, id, 0, 2, AlgoMinCost)
		o.primary = []wdm.Hop{{Link: 0, Wavelength: 0}, {Link: 2, Wavelength: 0}}
		o.backup = []wdm.Hop{{Link: 7, Wavelength: 0}, {Link: 5, Wavelength: 0}}
		o.cost = 4
		return o
	}
	o1, o2 := mk(1), mk(2)
	e.commitCh <- o1
	e.commitCh <- o2
	cr1, cr2 := <-o1.commit, <-o2.commit
	if !cr1.ok {
		t.Fatalf("first admission rejected: %+v", cr1)
	}
	if cr2.ok || !cr2.conflict {
		t.Fatalf("second identical admission must conflict, got %+v", cr2)
	}
	if err := e.Audit(); err != nil {
		t.Fatalf("audit after conflict: %v", err)
	}
	// The conflicted op must not have half-applied: exactly the four
	// channels of conn 1 are busy.
	_, snap := e.Snapshot()
	busy := ring4(4).TotalAvailable() - snap.TotalAvailable()
	if busy != 4 {
		t.Fatalf("%d channels busy after one admission + one conflict, want 4", busy)
	}
}

// TestRerouteConflictRestoresOldPaths: a reroute whose new pair lost the
// race must leave the connection exactly on its old paths.
func TestRerouteConflictRestoresOldPaths(t *testing.T) {
	e := startEngine(t, ring4(8), Config{Shards: 1, MaxRetries: -1})

	if resp := e.Provision(Request{ID: 1, Src: 0, Dst: 2}); !resp.Accepted {
		t.Fatalf("provision blocked: %+v", resp)
	}
	c, ok := e.lookupConn(1)
	if !ok {
		t.Fatal("conn 1 not registered")
	}
	oldPrimary := append([]wdm.Hop(nil), c.primary...)
	oldBackup := append([]wdm.Hop(nil), c.backup...)

	// Find a wavelength still free on all four links of the 0→2 pair (W=8 and
	// conn 1 holds only 4 channels, so one exists), then occupy it out of band
	// via a competing provision op — the reroute will target exactly those
	// channels and lose the race deterministically.
	_, snap := e.Snapshot()
	freeLam := -1
	for lam := 0; lam < 8; lam++ {
		if snap.Link(0).HasAvail(lam) && snap.Link(2).HasAvail(lam) &&
			snap.Link(7).HasAvail(lam) && snap.Link(5).HasAvail(lam) {
			freeLam = lam
			break
		}
	}
	if freeLam < 0 {
		t.Fatal("no channel free on all four links to stage the collision")
	}
	occupy := newOp(opProvision, 99, 0, 2, AlgoMinCost)
	occupy.primary = []wdm.Hop{{Link: 0, Wavelength: freeLam}, {Link: 2, Wavelength: freeLam}}
	occupy.backup = []wdm.Hop{{Link: 7, Wavelength: freeLam}, {Link: 5, Wavelength: freeLam}}
	e.commitCh <- occupy
	if cr := <-occupy.commit; !cr.ok {
		t.Fatalf("staging provision failed: %+v", cr)
	}
	// Now the reroute targets exactly the channels conn 99 just took.
	o := newOp(opReroute, 1, 0, 2, AlgoMinCost)
	o.oldPrimary = oldPrimary
	o.oldBackup = oldBackup
	o.primary = []wdm.Hop{{Link: 0, Wavelength: freeLam}, {Link: 2, Wavelength: freeLam}}
	o.backup = []wdm.Hop{{Link: 7, Wavelength: freeLam}, {Link: 5, Wavelength: freeLam}}
	e.commitCh <- o
	cr := <-o.commit
	if cr.ok || !cr.conflict {
		t.Fatalf("reroute onto occupied channels must conflict, got %+v", cr)
	}
	c, _ = e.lookupConn(1)
	for i, h := range c.primary {
		if h != oldPrimary[i] {
			t.Fatalf("primary changed after failed reroute: %v vs %v", c.primary, oldPrimary)
		}
	}
	for i, h := range c.backup {
		if h != oldBackup[i] {
			t.Fatalf("backup changed after failed reroute: %v vs %v", c.backup, oldBackup)
		}
	}
	if err := e.Audit(); err != nil {
		t.Fatalf("audit after reroute conflict: %v", err)
	}
}

// TestHighContentionConflicts hammers a tiny ring from many goroutines so
// optimistic conflicts actually occur end to end, and verifies every one is
// resolved into a legal state (the audit is the arbiter).
func TestHighContentionConflicts(t *testing.T) {
	net := ring4(2)
	want := net.TotalAvailable()
	e := startEngine(t, net, Config{Shards: 4, BatchMax: 8})

	const clients = 8
	const perClient = 150
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				id := int64(client)<<32 | int64(k)
				s, d := client%4, (client+2)%4 // opposite corners: maximum overlap
				if resp := e.Provision(Request{ID: id, Src: s, Dst: d}); resp.Accepted {
					e.Teardown(id)
				}
			}
		}(c)
	}
	wg.Wait()
	if err := e.Audit(); err != nil {
		t.Fatalf("audit after contention: %v", err)
	}
	for _, id := range e.LiveIDs() {
		if resp := e.Teardown(id); !resp.Accepted {
			t.Fatalf("drain teardown %d: %+v", id, resp)
		}
	}
	_, snap := e.Snapshot()
	if got := snap.TotalAvailable(); got != want {
		t.Fatalf("capacity not conserved: %d available, want %d", got, want)
	}
}

// TestJournalReplayMatchesEngine is the linearizability-style check: after a
// concurrent run, replaying the commit-ordered journal serially on the
// initial network must reproduce the engine's exact final state.
func TestJournalReplayMatchesEngine(t *testing.T) {
	initial := nsf(8)
	e := startEngine(t, initial, Config{JournalCap: 100000})
	if _, err := RunSoak(e, SoakConfig{
		Requests:     4000,
		Clients:      12,
		Seed:         3,
		RerouteEvery: 20,
	}); err != nil {
		t.Fatalf("soak: %v", err)
	}
	entries, truncated := e.Journal()
	if truncated {
		t.Fatal("journal truncated; raise JournalCap")
	}
	if len(entries) == 0 {
		t.Fatal("empty journal")
	}
	replayed, err := Replay(initial, entries)
	if err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
	_, snap := e.Snapshot()
	if !availEqual(replayed, snap) {
		t.Fatal("serial replay of the commit order does not reproduce the engine's final availability")
	}
}

// TestDuplicateIDRejected: a live ID cannot be provisioned twice, across
// shards (the committer holds the authoritative registry).
func TestDuplicateIDRejected(t *testing.T) {
	e := startEngine(t, nsf(8), Config{})
	if resp := e.Provision(Request{ID: 7, Src: 0, Dst: 9}); !resp.Accepted {
		t.Fatalf("first provision blocked: %+v", resp)
	}
	resp := e.Provision(Request{ID: 7, Src: 3, Dst: 11})
	if resp.Accepted || resp.Reason != ReasonDuplicateID {
		t.Fatalf("duplicate accepted or wrong reason: %+v", resp)
	}
}

// TestBadRequestRejected covers the request validation envelope.
func TestBadRequestRejected(t *testing.T) {
	e := startEngine(t, nsf(8), Config{})
	for _, req := range []Request{
		{ID: -1, Src: 0, Dst: 1},
		{ID: 1, Src: 0, Dst: 0},
		{ID: 1, Src: -1, Dst: 1},
		{ID: 1, Src: 0, Dst: 14},
		{ID: 1, Src: 0, Dst: 1, Algo: "astar"},
	} {
		if resp := e.Provision(req); resp.Accepted || resp.Reason != ReasonBadRequest {
			t.Fatalf("%+v: want bad-request rejection, got %+v", req, resp)
		}
	}
	if resp := e.Teardown(42); resp.Accepted || resp.Reason != ReasonUnknownConn {
		t.Fatalf("teardown of unknown conn: %+v", resp)
	}
	if resp := e.Reroute(42); resp.Accepted || resp.Reason != ReasonUnknownConn {
		t.Fatalf("reroute of unknown conn: %+v", resp)
	}
}

// TestClosedEngineRejects: requests after Close answer engine-closed rather
// than hanging or panicking.
func TestClosedEngineRejects(t *testing.T) {
	e := New(nsf(8), Config{})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if resp := e.Provision(Request{ID: 1, Src: 0, Dst: 1}); resp.Reason != ReasonClosed {
		t.Fatalf("provision on closed engine: %+v", resp)
	}
	if err := e.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestPerConnectionSerialization: concurrent teardown+reroute storms on the
// same IDs never double-release (the audit and conservation catch it).
func TestPerConnectionSerialization(t *testing.T) {
	net := nsf(16)
	want := net.TotalAvailable()
	e := startEngine(t, net, Config{})
	const conns = 20
	for i := 0; i < conns; i++ {
		if resp := e.Provision(Request{ID: int64(i), Src: i % 14, Dst: (i + 7) % 14}); !resp.Accepted {
			t.Fatalf("setup provision %d blocked: %+v", i, resp)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < conns; i++ {
				switch g % 3 {
				case 0:
					e.Teardown(int64(i))
				case 1:
					e.Reroute(int64(i))
				default:
					e.Provision(Request{ID: int64(100 + g*conns + i), Src: i % 14, Dst: (i + 5) % 14})
				}
			}
		}(g)
	}
	wg.Wait()
	if err := e.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
	for _, id := range e.LiveIDs() {
		if resp := e.Teardown(id); !resp.Accepted {
			t.Fatalf("drain %d: %+v", id, resp)
		}
	}
	_, snap := e.Snapshot()
	if got := snap.TotalAvailable(); got != want {
		t.Fatalf("capacity not conserved: %d, want %d", got, want)
	}
}

// TestStatus sanity-checks the /status aggregates.
func TestStatus(t *testing.T) {
	e := startEngine(t, nsf(8), Config{Shards: 3})
	for i := 0; i < 5; i++ {
		e.Provision(Request{ID: int64(i), Src: 0, Dst: 9})
	}
	st := e.Status()
	if st.Shards != 3 || st.Nodes != 14 || st.W != 8 {
		t.Fatalf("bad static fields: %+v", st)
	}
	if st.Provisions != 5 || st.Accepted+st.Blocked != 5 {
		t.Fatalf("bad counters: %+v", st)
	}
	if st.LiveConns != int(st.Accepted) {
		t.Fatalf("live %d != accepted %d", st.LiveConns, st.Accepted)
	}
	if st.Epoch == 0 {
		t.Fatal("no epoch published after accepted admissions")
	}
}

// TestAlgoRoundTrip pins the Algo enum's string round trip.
func TestAlgoRoundTrip(t *testing.T) {
	for _, a := range []Algo{AlgoMinCost, AlgoMinLoad, AlgoMinLoadCost, AlgoTwoStep} {
		got, err := ParseAlgo(a.String())
		if err != nil || got != a {
			t.Fatalf("round trip %v: got %v, err %v", a, got, err)
		}
	}
	if _, err := ParseAlgo("bogus"); err == nil {
		t.Fatal("ParseAlgo accepted bogus")
	}
	if s := Algo(99).String(); s != fmt.Sprintf("Algo(%d)", 99) {
		t.Fatalf("unknown algo string: %s", s)
	}
}
