package wdm

import "fmt"

// FullConverter allows any wavelength to be converted to any other at one
// uniform cost — assumption (i) of §3.3 ("fully switching is allowed at each
// node ... and the switching cost at a node is identical").
type FullConverter struct {
	w    int
	cost float64
}

// NewFullConverter returns a full-range converter over w wavelengths whose
// every non-identity conversion costs cost.
func NewFullConverter(w int, cost float64) *FullConverter {
	if cost < 0 {
		panic("wdm: negative conversion cost")
	}
	return &FullConverter{w: w, cost: cost}
}

// Allowed implements Converter; every conversion is permitted.
func (c *FullConverter) Allowed(from, to Wavelength) bool { return true }

// UniformCost returns the cost of every non-identity conversion. It exposes
// the converter's closed form so callers aggregating over wavelength pairs
// (auxgraph's conversion-edge means) can replace the generic Σ over
// Allowed(λp, λq) with counting arithmetic on the availability bitsets.
func (c *FullConverter) UniformCost() float64 { return c.cost }

// Cost implements Converter.
func (c *FullConverter) Cost(from, to Wavelength) float64 {
	if from == to {
		return 0
	}
	return c.cost
}

// NoConverter forbids all wavelength conversion: a semilightpath through such
// a node must obey the wavelength-continuity constraint (the Lemma 1 regime).
type NoConverter struct{}

// Allowed implements Converter; only the identity is permitted.
func (NoConverter) Allowed(from, to Wavelength) bool { return from == to }

// Cost implements Converter.
func (NoConverter) Cost(from, to Wavelength) float64 { return 0 }

// RangeConverter allows conversion only between wavelengths within a fixed
// index distance k (limited-range conversion hardware), at a cost
// proportional to the distance.
type RangeConverter struct {
	k        int
	unitCost float64
}

// NewRangeConverter returns a converter permitting |from−to| ≤ k with cost
// unitCost·|from−to|.
func NewRangeConverter(k int, unitCost float64) *RangeConverter {
	if k < 0 || unitCost < 0 {
		panic("wdm: invalid range converter parameters")
	}
	return &RangeConverter{k: k, unitCost: unitCost}
}

// Allowed implements Converter.
func (c *RangeConverter) Allowed(from, to Wavelength) bool {
	d := from - to
	if d < 0 {
		d = -d
	}
	return d <= c.k
}

// Cost implements Converter.
func (c *RangeConverter) Cost(from, to Wavelength) float64 {
	d := from - to
	if d < 0 {
		d = -d
	}
	return c.unitCost * float64(d)
}

// MatrixConverter stores an explicit conversion cost table — "the switching
// operation at a node uses a wavelength conversion table, which is given in
// advance" (§2). A negative entry marks the conversion as disallowed.
type MatrixConverter struct {
	w    int
	cost []float64 // row-major w×w; cost[from*w+to] < 0 means disallowed
}

// NewMatrixConverter returns a converter backed by the given w×w table.
// Diagonal entries must be 0.
func NewMatrixConverter(w int, table [][]float64) *MatrixConverter {
	if len(table) != w {
		panic("wdm: conversion table has wrong row count")
	}
	m := &MatrixConverter{w: w, cost: make([]float64, w*w)}
	for i, row := range table {
		if len(row) != w {
			panic(fmt.Sprintf("wdm: conversion table row %d has wrong length", i))
		}
		if row[i] != 0 {
			panic(fmt.Sprintf("wdm: c(λ%d, λ%d) must be 0, got %g", i, i, row[i]))
		}
		copy(m.cost[i*w:(i+1)*w], row)
	}
	return m
}

// Allowed implements Converter.
func (m *MatrixConverter) Allowed(from, to Wavelength) bool {
	return m.cost[from*m.w+to] >= 0
}

// Cost implements Converter.
func (m *MatrixConverter) Cost(from, to Wavelength) float64 {
	return m.cost[from*m.w+to]
}
