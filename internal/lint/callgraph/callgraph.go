// Package callgraph builds a conservative static call graph over the
// typechecked packages of one lint load, for flow-aware analyzers that need
// to reason about what a function transitively reaches (hot-path allocation
// tracking) or who transitively calls it (mutation classification).
//
// Resolution policy, most precise first:
//
//   - Static dispatch: calls whose callee resolves through go/types to a
//     declared function or a method on a concrete type get exactly one edge.
//   - Interface dispatch: a call through an interface method gets an edge to
//     every analyzed method with that name whose receiver type implements the
//     interface (method-set matching) — a sound over-approximation.
//   - Function values: a call through a variable, parameter, field or result
//     of function type gets an edge to every analyzed function whose value is
//     taken somewhere (referenced outside call position) and whose signature
//     is identical to the call site's — again a sound over-approximation,
//     because a function that is never used as a value cannot be called
//     indirectly.
//
// Function literals are attributed to their enclosing declared function: a
// call inside a closure is an edge from the function that lexically contains
// the closure, and scanning a node's body includes the bodies of its nested
// literals. This keeps the graph keyed by *types.Func — the objects the
// facts layer and suppression directives can name — while remaining
// conservative: a closure's code is reachable wherever its builder is.
//
// The builder is stdlib-only (go/ast + go/types), matching the rest of the
// lint framework.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint"
)

// EdgeKind records how a call site was resolved.
type EdgeKind int

const (
	// Static is a direct call to a declared function or concrete method.
	Static EdgeKind = iota
	// Interface is a call through an interface method, resolved by
	// method-set matching.
	Interface
	// FuncValue is a call through a function value, resolved by signature
	// matching against address-taken functions.
	FuncValue
)

func (k EdgeKind) String() string {
	switch k {
	case Static:
		return "static"
	case Interface:
		return "interface"
	case FuncValue:
		return "funcvalue"
	}
	return "unknown"
}

// Node is one declared function or method of an analyzed package.
type Node struct {
	Func *types.Func
	Decl *ast.FuncDecl
	Pkg  *lint.Package
	Out  []*Edge // calls this function makes
	In   []*Edge // calls that reach this function
}

// Edge is one resolved call site.
type Edge struct {
	Caller, Callee *Node
	Site           *ast.CallExpr
	Kind           EdgeKind
	// Iface is the interface method the site called, for Interface edges.
	Iface *types.Func
}

// Pos returns the call site's position.
func (e *Edge) Pos() token.Pos { return e.Site.Pos() }

// Graph is the call graph of one analyzed package set.
type Graph struct {
	// Nodes maps every declared function of the analyzed packages to its
	// node. Methods are keyed by their *types.Func object, so interface
	// method objects (which have no body) never appear as keys.
	Nodes map[*types.Func]*Node
	// Order lists the nodes in source order (file name, then position) for
	// deterministic iteration.
	Order []*Node
}

// Node returns the graph node for fn, or nil when fn is not a declared
// function of the analyzed packages.
func (g *Graph) Node(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	if n, ok := g.Nodes[fn]; ok {
		return n
	}
	// Generic instantiations resolve to their origin declaration.
	if o := fn.Origin(); o != fn {
		return g.Nodes[o]
	}
	return nil
}

// CacheKey is the key the analyzers share a built graph under in the lint
// run cache.
const CacheKey = "callgraph"

// For returns the call graph of pkgs, building it at most once per cache.
func For(cache *lint.Cache, pkgs []*lint.Package) *Graph {
	return cache.Get(CacheKey, func() any { return Build(pkgs) }).(*Graph)
}

// builder carries the intermediate state of one Build.
type builder struct {
	g *Graph
	// methodsByName indexes every analyzed method by name, for interface
	// dispatch.
	methodsByName map[string][]*Node
	// addressTaken lists every analyzed function or method referenced as a
	// value (outside call position) — the only functions an indirect call
	// can reach.
	addressTaken []*Node
	taken        map[*Node]bool
}

// Build constructs the call graph of pkgs.
func Build(pkgs []*lint.Package) *Graph {
	b := &builder{
		g:             &Graph{Nodes: map[*types.Func]*Node{}},
		methodsByName: map[string][]*Node{},
		taken:         map[*Node]bool{},
	}
	// Pass 1: nodes, the method index, and the address-taken set.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Func: fn, Decl: fd, Pkg: pkg}
				b.g.Nodes[fn] = n
				if fd.Recv != nil {
					b.methodsByName[fn.Name()] = append(b.methodsByName[fn.Name()], n)
				}
			}
		}
	}
	for _, pkg := range pkgs {
		b.collectAddressTaken(pkg)
	}
	// Deterministic node order: position within the shared FileSet.
	for _, n := range b.g.Nodes {
		b.g.Order = append(b.g.Order, n)
	}
	sort.Slice(b.g.Order, func(i, j int) bool {
		pi := b.g.Order[i].Pkg.Fset.Position(b.g.Order[i].Decl.Pos())
		pj := b.g.Order[j].Pkg.Fset.Position(b.g.Order[j].Decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
	// Pass 2: edges.
	for _, n := range b.g.Order {
		b.collectEdges(n)
	}
	return b.g
}

// collectAddressTaken records every function object referenced as a value:
// an identifier or selector denoting a declared function that is not the
// operand of a call. Those are the only candidates for func-value dispatch.
func (b *builder) collectAddressTaken(pkg *lint.Package) {
	for _, f := range pkg.Files {
		lint.WalkStack(f, func(node ast.Node, stack []ast.Node) {
			var obj types.Object
			switch x := node.(type) {
			case *ast.Ident:
				// Selector idents are handled at the SelectorExpr below.
				if len(stack) > 0 {
					if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.Sel == x {
						return
					}
				}
				obj = pkg.Info.Uses[x]
			case *ast.SelectorExpr:
				obj = pkg.Info.Uses[x.Sel]
			default:
				return
			}
			fn, ok := obj.(*types.Func)
			if !ok {
				return
			}
			n := b.g.Node(fn)
			if n == nil || b.taken[n] {
				return
			}
			// In call position? The parent (skipping parens) must be a
			// CallExpr whose Fun is this expression.
			parent := ast.Node(nil)
			expr := node.(ast.Expr)
			for i := len(stack) - 1; i >= 0; i-- {
				if p, ok := stack[i].(*ast.ParenExpr); ok {
					expr = p
					continue
				}
				parent = stack[i]
				break
			}
			if call, ok := parent.(*ast.CallExpr); ok && stripParens(call.Fun) == stripParens(expr) {
				return
			}
			b.taken[n] = true
			b.addressTaken = append(b.addressTaken, n)
		})
	}
}

// collectEdges resolves every call site lexically inside n's declaration
// (including nested function literals) and appends the out-edges.
func (b *builder) collectEdges(n *Node) {
	if n.Decl.Body == nil {
		return
	}
	info := n.Pkg.Info
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := stripParens(call.Fun)
		// Conversions and builtin calls are not edges.
		if tv, ok := info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
			return true
		}
		switch f := fun.(type) {
		case *ast.Ident:
			switch obj := info.Uses[f].(type) {
			case *types.Func:
				b.addStatic(n, call, obj)
			case *types.Var:
				b.addFuncValue(n, call)
			case nil:
				// A locally-defined func literal variable still resolves to
				// a *types.Var via Defs at its definition; Uses covers all
				// call sites, so nothing else to do.
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[f]; ok {
				switch sel.Kind() {
				case types.MethodVal, types.MethodExpr:
					m := sel.Obj().(*types.Func)
					if types.IsInterface(sel.Recv()) {
						b.addInterface(n, call, sel.Recv(), m)
					} else {
						b.addStatic(n, call, m)
					}
				case types.FieldVal:
					b.addFuncValue(n, call) // call through a func-typed field
				}
			} else if obj, ok := info.Uses[f.Sel].(*types.Func); ok {
				// Package-qualified call: pkg.Fn(...).
				b.addStatic(n, call, obj)
			} else if _, ok := info.Uses[f.Sel].(*types.Var); ok {
				b.addFuncValue(n, call) // call through a package-level func var
			}
		case *ast.FuncLit:
			// Immediately-invoked literal: its body is already attributed
			// to n; no edge needed.
		default:
			// Call of an arbitrary expression of function type (index into
			// a table of funcs, result of another call, …).
			if t := info.TypeOf(fun); t != nil {
				if _, ok := t.Underlying().(*types.Signature); ok {
					b.addFuncValue(n, call)
				}
			}
		}
		return true
	})
}

// addEdge links caller and callee.
func (b *builder) addEdge(caller *Node, call *ast.CallExpr, callee *Node, kind EdgeKind, iface *types.Func) {
	e := &Edge{Caller: caller, Callee: callee, Site: call, Kind: kind, Iface: iface}
	caller.Out = append(caller.Out, e)
	callee.In = append(callee.In, e)
}

// addStatic resolves a statically-dispatched call.
func (b *builder) addStatic(caller *Node, call *ast.CallExpr, fn *types.Func) {
	if callee := b.g.Node(fn); callee != nil {
		b.addEdge(caller, call, callee, Static, nil)
	}
}

// addInterface resolves a call through interface method m on receiver type
// recv: an edge to every analyzed method with the same name whose receiver
// type implements the interface and whose signature matches the interface
// method's.
func (b *builder) addInterface(caller *Node, call *ast.CallExpr, recv types.Type, m *types.Func) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	want := m.Type().(*types.Signature)
	for _, cand := range b.methodsByName[m.Name()] {
		sig := cand.Func.Type().(*types.Signature)
		crecv := sig.Recv().Type()
		if !types.Implements(crecv, iface) && !types.Implements(types.NewPointer(crecv), iface) {
			continue
		}
		if !compatibleSignatures(want, sig) {
			continue
		}
		b.addEdge(caller, call, cand, Interface, m)
	}
}

// addFuncValue resolves an indirect call through a function value: an edge
// to every address-taken analyzed function with an identical signature.
func (b *builder) addFuncValue(caller *Node, call *ast.CallExpr) {
	t := caller.Pkg.Info.TypeOf(stripParens(call.Fun))
	if t == nil {
		return
	}
	want, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	for _, cand := range b.addressTaken {
		sig := cand.Func.Type().(*types.Signature)
		if !compatibleSignatures(want, sig) {
			continue
		}
		b.addEdge(caller, call, cand, FuncValue, nil)
	}
}

// compatibleSignatures reports whether a function with signature have could
// be invoked through a site typed want: identical parameter and result
// types, receivers ignored (method values close over theirs).
func compatibleSignatures(want, have *types.Signature) bool {
	return types.Identical(stripRecv(want), stripRecv(have))
}

// stripRecv normalises a signature to its receiver-free form.
func stripRecv(sig *types.Signature) types.Type {
	if sig.Recv() == nil {
		return sig
	}
	return types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
}

func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
