package auxgraph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/disjoint"
	"repro/internal/wdm"
)

// fig1Net builds a small residual network in the spirit of the paper's
// Figure 1: 4 nodes, bidirectional fiber, 2 wavelengths.
func fig1Net() *wdm.Network {
	g := wdm.NewNetwork(4, 2)
	g.AddUniformPair(0, 1, 1)
	g.AddUniformPair(1, 2, 1)
	g.AddUniformPair(0, 3, 1)
	g.AddUniformPair(3, 2, 1)
	g.AddUniformPair(1, 3, 1)
	return g
}

func TestBuildStructureMatchesPaper(t *testing.T) {
	net := fig1Net()
	a := Build(net, 0, 2, Params{Kind: Cost})
	m := net.Links()
	// §3.3.1 / Theorem 1: G′ contains 2m edge-nodes (plus s′ and t″).
	if got, want := a.G.N(), 2*m+2; got != want {
		t.Fatalf("aux vertices = %d, want %d", got, want)
	}
	// One link edge per kept link.
	linkEdges := 0
	for id := 0; id < a.G.M(); id++ {
		if a.G.Edge(id).Aux >= 0 {
			linkEdges++
		}
	}
	if linkEdges != m {
		t.Fatalf("link edges = %d, want %d", linkEdges, m)
	}
	// s′ fans out to |E_out(s)| kept links; t″ fans in from |E_in(t)|.
	if got, want := a.G.OutDegree(a.S), len(net.Out(0)); got != want {
		t.Fatalf("s' out-degree = %d, want %d", got, want)
	}
	if got, want := a.G.InDegree(a.T), len(net.In(2)); got != want {
		t.Fatalf("t'' in-degree = %d, want %d", got, want)
	}
	// Every conversion edge connects an in-node to an out-node of the same
	// physical node.
	for id := 0; id < a.G.M(); id++ {
		e := a.G.Edge(id)
		if e.Aux >= 0 || e.From == a.S || e.To == a.T {
			continue
		}
		var einLink, eoutLink int = -1, -1
		for l := 0; l < m; l++ {
			if a.InNode(l) == e.From {
				einLink = l
			}
			if a.OutNode(l) == e.To {
				eoutLink = l
			}
		}
		if einLink < 0 || eoutLink < 0 {
			t.Fatalf("conversion edge %d does not join in-node to out-node", id)
		}
		if net.Link(einLink).To != net.Link(eoutLink).From {
			t.Fatalf("conversion edge %d spans two different physical nodes", id)
		}
	}
}

func TestCostWeights(t *testing.T) {
	net := wdm.NewNetwork(3, 2)
	l0 := net.AddLink(0, 1, []wdm.Wavelength{0, 1}, []float64{2, 4})
	l1 := net.AddLink(1, 2, []wdm.Wavelength{0, 1}, []float64{1, 1})
	net.SetAllConverters(wdm.NewFullConverter(2, 3))
	a := Build(net, 0, 2, Params{Kind: Cost})
	// Link edge weight = mean avail cost.
	for id := 0; id < a.G.M(); id++ {
		e := a.G.Edge(id)
		switch e.Aux {
		case l0:
			if e.Weight != 3 {
				t.Errorf("link edge of l0 weight = %g, want 3", e.Weight)
			}
		case l1:
			if e.Weight != 1 {
				t.Errorf("link edge of l1 weight = %g, want 1", e.Weight)
			}
		}
	}
	// Conversion edge at node 1: K = 4 ordered pairs (2 identity at 0, 2
	// conversions at 3) → mean 6/4 = 1.5.
	found := false
	for id := 0; id < a.G.M(); id++ {
		e := a.G.Edge(id)
		if e.Aux < 0 && e.From == a.InNode(l0) && e.To == a.OutNode(l1) {
			found = true
			if e.Weight != 1.5 {
				t.Errorf("conversion weight = %g, want 1.5", e.Weight)
			}
		}
	}
	if !found {
		t.Fatal("conversion edge l0→l1 missing")
	}
}

func TestConversionEdgeRequiresFeasiblePair(t *testing.T) {
	// Incoming link carries only λ0, outgoing only λ1, and node 1 cannot
	// convert: no conversion edge may exist.
	net := wdm.NewNetwork(3, 2)
	l0 := net.AddLink(0, 1, []wdm.Wavelength{0}, []float64{1})
	l1 := net.AddLink(1, 2, []wdm.Wavelength{1}, []float64{1})
	net.SetAllConverters(wdm.NoConverter{})
	a := Build(net, 0, 2, Params{Kind: Cost})
	for id := 0; id < a.G.M(); id++ {
		e := a.G.Edge(id)
		if e.Aux < 0 && e.From == a.InNode(l0) && e.To == a.OutNode(l1) {
			t.Fatal("infeasible conversion edge present")
		}
	}
	if a.G.Reachable(a.S, a.T) {
		t.Fatal("t'' should be unreachable under wavelength continuity")
	}
	// Identity conversion suffices when wavelengths overlap.
	net2 := wdm.NewNetwork(3, 2)
	net2.AddLink(0, 1, []wdm.Wavelength{0}, []float64{1})
	net2.AddLink(1, 2, []wdm.Wavelength{0}, []float64{1})
	net2.SetAllConverters(wdm.NoConverter{})
	a2 := Build(net2, 0, 2, Params{Kind: Cost})
	if !a2.G.Reachable(a2.S, a2.T) {
		t.Fatal("identity conversion should connect matching wavelengths")
	}
}

func TestLoadFilterAndWeights(t *testing.T) {
	net := wdm.NewNetwork(2, 4)
	id := net.AddUniformLink(0, 1, 1)
	net.Use(id, 0) // load 1/4
	// ϑ = 0.2 drops the link (load 0.25 ≥ 0.2).
	a := Build(net, 0, 1, Params{Kind: Load, Threshold: 0.2})
	if a.OutNode(id) != -1 || a.InNode(id) != -1 {
		t.Fatal("overloaded link not filtered")
	}
	// ϑ = 0.3 keeps it; weight = a^{2/4} − a^{1/4}.
	a = Build(net, 0, 1, Params{Kind: Load, Threshold: 0.3, Base: 10})
	var w float64 = -1
	for eid := 0; eid < a.G.M(); eid++ {
		if a.G.Edge(eid).Aux == id {
			w = a.G.Edge(eid).Weight
		}
	}
	want := math.Pow(10, 0.5) - math.Pow(10, 0.25)
	if math.Abs(w-want) > 1e-12 {
		t.Fatalf("load weight = %g, want %g", w, want)
	}
	// Conversion and terminal edges weigh 0 in G_c.
	for eid := 0; eid < a.G.M(); eid++ {
		e := a.G.Edge(eid)
		if e.Aux < 0 && e.Weight != 0 {
			t.Fatalf("non-link edge weight = %g, want 0", e.Weight)
		}
	}
}

func TestLoadCostWeights(t *testing.T) {
	net := wdm.NewNetwork(2, 4)
	id := net.AddUniformLink(0, 1, 2)
	net.Use(id, 0)
	a := Build(net, 0, 1, Params{Kind: LoadCost, Threshold: 0.5})
	// G_rc link weight = Σ_{avail} w / N = 3·2/4 = 1.5.
	for eid := 0; eid < a.G.M(); eid++ {
		if a.G.Edge(eid).Aux == id {
			if got := a.G.Edge(eid).Weight; got != 1.5 {
				t.Fatalf("G_rc weight = %g, want 1.5", got)
			}
			return
		}
	}
	t.Fatal("link edge missing")
}

func TestExhaustedLinksFiltered(t *testing.T) {
	net := wdm.NewNetwork(2, 1)
	id := net.AddUniformLink(0, 1, 1)
	net.Use(id, 0)
	a := Build(net, 0, 1, Params{Kind: Cost})
	if a.OutNode(id) != -1 {
		t.Fatal("exhausted link should be filtered from the residual graph")
	}
}

func TestBuildPanics(t *testing.T) {
	net := fig1Net()
	for name, fn := range map[string]func(){
		"badSrc":  func() { Build(net, -1, 1, Params{}) },
		"badDst":  func() { Build(net, 0, 99, Params{}) },
		"badBase": func() { Build(net, 0, 1, Params{Kind: Load, Threshold: 1, Base: 0.5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMapPathRoundTrip(t *testing.T) {
	net := fig1Net()
	a := Build(net, 0, 2, Params{Kind: Cost})
	pair, ok := disjoint.Suurballe(a.G, a.S, a.T)
	if !ok {
		t.Fatal("Figure-1 network must admit a disjoint pair")
	}
	links1 := a.MapPath(pair.Path1)
	links2 := a.MapPath(pair.Path2)
	// Each mapped sequence is a connected physical route from 0 to 2.
	for _, links := range [][]int{links1, links2} {
		if len(links) == 0 {
			t.Fatal("empty mapped path")
		}
		if net.Link(links[0]).From != 0 || net.Link(links[len(links)-1]).To != 2 {
			t.Fatalf("mapped path endpoints wrong: %v", links)
		}
		for i := 0; i+1 < len(links); i++ {
			if net.Link(links[i]).To != net.Link(links[i+1]).From {
				t.Fatalf("mapped path disconnected: %v", links)
			}
		}
	}
	// Edge-disjoint physically.
	set1 := a.LinkSet(pair.Path1)
	for _, l := range links2 {
		if set1[l] {
			t.Fatalf("mapped paths share physical link %d", l)
		}
	}
	if len(set1) != len(links1) {
		t.Fatal("LinkSet size mismatch")
	}
}

// Property: on random residual networks, any Suurballe pair on G′ maps to
// two physically edge-disjoint connected routes.
func TestQuickAuxPairsPhysicallyDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		net := wdm.NewNetwork(n, 2)
		for v := 0; v < n; v++ {
			net.AddUniformPair(v, (v+1)%n, 1+rng.Float64())
		}
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				net.AddUniformLink(u, v, 1+rng.Float64())
			}
		}
		s, d := 0, n-1
		a := Build(net, s, d, Params{Kind: Cost})
		pair, ok := disjoint.Suurballe(a.G, a.S, a.T)
		if !ok {
			return true
		}
		l1, l2 := a.MapPath(pair.Path1), a.MapPath(pair.Path2)
		seen := map[int]bool{}
		for _, l := range l1 {
			seen[l] = true
		}
		for _, l := range l2 {
			if seen[l] {
				return false
			}
		}
		valid := func(links []int) bool {
			if len(links) == 0 || net.Link(links[0]).From != s || net.Link(links[len(links)-1]).To != d {
				return false
			}
			for i := 0; i+1 < len(links); i++ {
				if net.Link(links[i]).To != net.Link(links[i+1]).From {
					return false
				}
			}
			return true
		}
		return valid(l1) && valid(l2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: G_c is a subgraph of G′ (same skeleton, possibly fewer links) —
// the paper's observation that the load filter only removes edges.
func TestQuickLoadSubgraphOfCost(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4
		net := wdm.NewNetwork(n, 3)
		for v := 0; v < n; v++ {
			net.AddUniformPair(v, (v+1)%n, 1)
		}
		// Random partial usage.
		for id := 0; id < net.Links(); id++ {
			for lam := 0; lam < 3; lam++ {
				if rng.Float64() < 0.4 {
					net.Use(id, lam)
				}
			}
		}
		th := rng.Float64()
		ac := Build(net, 0, n-1, Params{Kind: Cost})
		al := Build(net, 0, n-1, Params{Kind: Load, Threshold: th})
		// Every link kept in G_c must be kept in G′.
		for id := 0; id < net.Links(); id++ {
			if al.OutNode(id) >= 0 && ac.OutNode(id) < 0 {
				return false
			}
		}
		return al.G.M() <= ac.G.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildCost(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := wdm.NewNetwork(100, 8)
	for v := 0; v < 100; v++ {
		net.AddUniformPair(v, (v+1)%100, 1)
		net.AddUniformPair(v, (v+7)%100, 1+rng.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(net, 0, 50, Params{Kind: Cost})
	}
}

func TestNetAccessor(t *testing.T) {
	net := fig1Net()
	a := Build(net, 0, 2, Params{Kind: Cost})
	if a.Net() != net {
		t.Fatal("Net accessor wrong")
	}
}

// Property: the §4.1 exponential congestion weight a^{(U+1)/N} − a^{U/N} is
// strictly increasing and convex in U — the property that makes Suurballe's
// minimum-weight pair avoid loaded links superlinearly.
func TestQuickLoadWeightMonotoneConvex(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 2 + rng.Intn(15)
		base := 1.5 + rng.Float64()*20
		weightAt := func(used int) float64 {
			net := wdm.NewNetwork(2, w)
			id := net.AddUniformLink(0, 1, 1)
			for lam := 0; lam < used; lam++ {
				net.Use(id, lam)
			}
			a := Build(net, 0, 1, Params{Kind: Load, Threshold: 2, Base: base})
			for eid := 0; eid < a.G.M(); eid++ {
				if a.G.Edge(eid).Aux == id {
					return a.G.Edge(eid).Weight
				}
			}
			return math.NaN()
		}
		prev := -1.0
		prevDelta := -1.0
		for u := 0; u < w; u++ {
			wt := weightAt(u)
			if math.IsNaN(wt) || wt <= prev {
				return false // must increase strictly
			}
			if prevDelta > 0 && wt-prev < prevDelta-1e-12 {
				return false // increments must grow (convexity)
			}
			if prev >= 0 {
				prevDelta = wt - prev
			}
			prev = wt
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeDisjointHubStructure(t *testing.T) {
	net := fig1Net()
	a := Build(net, 0, 2, Params{Kind: Cost, NodeDisjoint: true})
	// Hub gadget adds 2 vertices per intermediate node (nodes 1 and 3).
	plain := Build(net, 0, 2, Params{Kind: Cost})
	if a.G.N() != plain.G.N()+4 {
		t.Fatalf("aux vertices = %d, want %d", a.G.N(), plain.G.N()+4)
	}
	// The pair found is node-disjoint: map and check.
	pair, ok := disjoint.Suurballe(a.G, a.S, a.T)
	if !ok {
		t.Fatal("node-disjoint pair must exist on the fig-1 network")
	}
	seen := map[int]bool{}
	for _, id := range a.MapPath(pair.Path1) {
		l := net.Link(id)
		if l.To != 2 {
			seen[l.To] = true
		}
	}
	for _, id := range a.MapPath(pair.Path2) {
		l := net.Link(id)
		if l.To != 2 && seen[l.To] {
			t.Fatalf("paths share intermediate node %d", l.To)
		}
	}
}

func TestNodeDisjointWithLoadKind(t *testing.T) {
	net := fig1Net()
	net.Use(0, 0) // some load so the exponential weights differ
	a := Build(net, 0, 2, Params{Kind: Load, Threshold: 1, NodeDisjoint: true})
	if _, ok := disjoint.Suurballe(a.G, a.S, a.T); !ok {
		t.Fatal("load-kind node-disjoint pair must exist")
	}
	// LoadCost variant too.
	a = Build(net, 0, 2, Params{Kind: LoadCost, Threshold: 1, NodeDisjoint: true})
	if _, ok := disjoint.Suurballe(a.G, a.S, a.T); !ok {
		t.Fatal("loadcost-kind node-disjoint pair must exist")
	}
}

func TestNodeDisjointUntraversableNode(t *testing.T) {
	// Node 1 has no feasible conversion pair (λ0 in, λ1 out, no converter):
	// the hub edge must be absent and routing must fail through it.
	net := wdm.NewNetwork(3, 2)
	net.AddLink(0, 1, []wdm.Wavelength{0}, []float64{1})
	net.AddLink(1, 2, []wdm.Wavelength{1}, []float64{1})
	net.SetAllConverters(wdm.NoConverter{})
	a := Build(net, 0, 2, Params{Kind: Cost, NodeDisjoint: true})
	if a.G.Reachable(a.S, a.T) {
		t.Fatal("untraversable hub should disconnect the aux graph")
	}
}
