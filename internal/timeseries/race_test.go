package timeseries

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentScrape drives the single-owner write path while reader
// goroutines scrape snapshots, mirroring the simulator loop plus debug HTTP
// handlers. Run with -race; correctness here is "no torn reads, snapshots
// internally consistent".
func TestConcurrentScrape(t *testing.T) {
	c := newSimCol(1, 16)
	h := c.Histogram("lat", nil)
	r := c.Ratio("blocking")
	g := c.Gauge("load")
	c.OnSeal(func(end float64) { g.Set(end) })

	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for _, s := range c.Snapshots(8) {
					hv, ok := s.Hist("lat")
					if !ok {
						t.Error("snapshot missing series")
						return
					}
					if hv.Count > 0 && (hv.Min > hv.Max || hv.P50 > hv.Max) {
						t.Errorf("inconsistent snapshot: %+v", hv)
						return
					}
				}
				c.Latest()
				c.Len()
				c.TotalSealed()
				c.SinkErr()
			}
		}()
	}

	// Owner goroutine: observe and advance through 200 windows.
	for w := 0; w < 200; w++ {
		for i := 0; i < 50; i++ {
			h.Observe(float64(w*50+i+1) * 1e-6)
			r.Observe(i%7 == 0)
		}
		c.advance(float64(w + 1))
	}
	stop.Store(true)
	wg.Wait()

	if c.TotalSealed() != 200 {
		t.Fatalf("sealed %d windows, want 200", c.TotalSealed())
	}
}
