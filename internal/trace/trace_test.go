package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestBufferRecordsAndCounts(t *testing.T) {
	var b Buffer
	b.Record(Event{Time: 1, Kind: Arrival, Conn: 0})
	b.Record(Event{Time: 2, Kind: Accept, Conn: 0})
	b.Record(Event{Time: 3, Kind: Arrival, Conn: 1})
	if b.Count("") != 3 {
		t.Fatalf("total = %d", b.Count(""))
	}
	if b.Count(Arrival) != 2 || b.Count(Accept) != 1 || b.Count(Block) != 0 {
		t.Fatal("per-kind counts wrong")
	}
	evs := b.Events()
	if len(evs) != 3 || evs[1].Kind != Accept {
		t.Fatalf("Events = %v", evs)
	}
	// Returned slice is a copy.
	evs[0].Kind = Drop
	if b.Events()[0].Kind != Arrival {
		t.Fatal("Events leaked internal slice")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	want := []Event{
		{Time: 0.5, Kind: Arrival, Conn: 7, Detail: "0->5"},
		{Time: 1.25, Kind: Failure, Link: 3},
		{Time: 2, Kind: Reconfig, Detail: "rho=0.61"},
	}
	for _, e := range want {
		j.Record(e)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("lines = %d", lines)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("bad input accepted")
	}
	evs, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(evs) != 0 {
		t.Fatal("empty input should yield no events")
	}
}

func TestTeeAndNop(t *testing.T) {
	var a, b Buffer
	r := Tee(&a, &b, Nop{})
	r.Record(Event{Kind: Drop})
	if a.Count(Drop) != 1 || b.Count(Drop) != 1 {
		t.Fatal("tee did not fan out")
	}
}
