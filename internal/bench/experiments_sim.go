package bench

import (
	"math"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/workload"
)

// simPoint is the per-seed aggregation unit for the dynamic experiments.
type simPoint struct {
	blocking     float64
	reconfigs    float64
	meanLoad     float64
	maxLoad      float64
	cost         float64
	recovOK      float64
	recovWork    float64
	affected     float64
	availability float64
}

// runDynamic runs one simulator configuration across seeds in parallel and
// aggregates.
func runDynamic(o Options, mk func(seed int64) (*netsim.Sim, []workload.Request)) (bl, rc, ml, xl, cost, rok, rwork, avail stats.Stream) {
	seeds := o.seeds(10, 3)
	points := parallel.Map(seeds, 0, func(i int) simPoint {
		sim, reqs := mk(int64(i))
		m := sim.Run(reqs)
		p := simPoint{
			blocking:     m.BlockingProbability(),
			reconfigs:    float64(m.Reconfigs),
			meanLoad:     m.MeanLoad(),
			maxLoad:      m.MaxNetworkLoad,
			cost:         m.Cost.Mean(),
			recovWork:    m.RecoveryWork.Mean(),
			availability: m.Availability.Mean(),
		}
		if m.AffectedConns > 0 {
			p.recovOK = float64(m.Recovered) / float64(m.AffectedConns)
			p.affected = float64(m.AffectedConns)
		} else {
			p.recovOK = math.NaN()
		}
		return p
	})
	for _, p := range points {
		bl.Add(p.blocking)
		rc.Add(p.reconfigs)
		ml.Add(p.meanLoad)
		xl.Add(p.maxLoad)
		cost.Add(p.cost)
		if !math.IsNaN(p.recovOK) {
			rok.Add(p.recovOK)
			rwork.Add(p.recovWork)
		}
		avail.Add(p.availability)
	}
	return
}

// E4 is the headline §4 experiment: reconfiguration counts for cost-only
// routing versus the load-aware two-phase algorithm across offered loads.
func E4(o Options) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Reconfiguration count: cost-only vs load-aware (§4)",
		Columns: []string{"erlang", "algorithm", "reconfigs", "blocking", "mean ρ", "max ρ", "mean cost"},
		Notes:   "NSFNET, W=8, reconfig threshold ρ≥0.6; §4 predicts the load-aware router crosses the threshold less often below saturation; at saturation both pin ρ≈1",
	}
	erlangs := []float64{8, 12, 16}
	count := 600
	if o.Quick {
		erlangs = []float64{12}
		count = 200
	}
	for _, erl := range erlangs {
		for _, algo := range []netsim.Algorithm{netsim.MinCost, netsim.MinLoadCost} {
			algo := algo
			erl := erl
			bl, rc, ml, xl, cost, _, _, _ := runDynamic(o, func(seed int64) (*netsim.Sim, []workload.Request) {
				net := topo.NSFNET(topo.Config{W: 8})
				sim := netsim.New(net, netsim.Config{
					Algorithm: algo, Restoration: netsim.Active,
					ReconfigThreshold: 0.6, ReconfigCooldown: 0.2, Seed: seed,
				})
				reqs := workload.Poisson(workload.PoissonConfig{
					Nodes: 14, ArrivalRate: erl, MeanHolding: 1, Count: count, Seed: 1000 + seed,
				})
				return sim, reqs
			})
			t.AddRow(fmtF(erl), algo.String(), fmtF(rc.Mean()), fmtPct(bl.Mean()),
				fmtF(ml.Mean()), fmtF(xl.Mean()), fmtF(cost.Mean()))
		}
	}
	return t
}

// E5 compares the activate and passive restoration disciplines of §1 under
// link failures.
func E5(o Options) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Active vs passive restoration (§1)",
		Columns: []string{"erlang", "mode", "recovery rate", "recovery work", "availability", "blocking"},
		Notes:   "recovery work = links newly signalled per recovery (0 = instant switchover); §1 predicts active recovers more, faster",
	}
	erlangs := []float64{20, 40}
	count := 600
	if o.Quick {
		erlangs = []float64{30}
		count = 250
	}
	for _, erl := range erlangs {
		for _, mode := range []netsim.Restoration{netsim.Active, netsim.Passive} {
			mode := mode
			erl := erl
			bl, _, _, _, _, rok, rwork, avail := runDynamic(o, func(seed int64) (*netsim.Sim, []workload.Request) {
				net := topo.NSFNET(topo.Config{W: 8})
				sim := netsim.New(net, netsim.Config{
					Algorithm: netsim.MinCost, Restoration: mode,
					FailureRate: 0.8, RepairTime: 3, Seed: 500 + seed,
				})
				reqs := workload.Poisson(workload.PoissonConfig{
					Nodes: 14, ArrivalRate: erl, MeanHolding: 1, Count: count, Seed: 2000 + seed,
				})
				return sim, reqs
			})
			t.AddRow(fmtF(erl), mode.String(), fmtPct(rok.Mean()), fmtF(rwork.Mean()),
				fmtPct(avail.Mean()), fmtPct(bl.Mean()))
		}
	}
	return t
}

// E8 ablates the exponential congestion-weight base a of §4.1 (a → 1⁺
// approaches a linear weight).
func E8(o Options) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Exponential congestion-weight base ablation (§4.1)",
		Columns: []string{"base a", "blocking", "mean ρ", "max ρ", "mean cost"},
		Notes:   "MinLoad routing on NSFNET, W=8, erlang 30; a→1 degenerates toward hop-count routing",
	}
	bases := []float64{1.01, 2, math.E, 10, 100}
	count := 500
	if o.Quick {
		bases = []float64{1.01, 10}
		count = 200
	}
	for _, base := range bases {
		base := base
		bl, _, ml, xl, cost, _, _, _ := runDynamic(o, func(seed int64) (*netsim.Sim, []workload.Request) {
			net := topo.NSFNET(topo.Config{W: 8})
			sim := netsim.New(net, netsim.Config{
				Algorithm: netsim.MinLoad, Restoration: netsim.Active,
				Opts: &core.Options{Base: base}, Seed: seed,
			})
			reqs := workload.Poisson(workload.PoissonConfig{
				Nodes: 14, ArrivalRate: 30, MeanHolding: 1, Count: count, Seed: 3000 + seed,
			})
			return sim, reqs
		})
		t.AddRow(fmtF(base), fmtPct(bl.Mean()), fmtF(ml.Mean()), fmtF(xl.Mean()), fmtF(cost.Mean()))
	}
	return t
}

// E10 sweeps offered load and reports blocking probability for all three
// routers on NSFNET and ARPA2.
func E10(o Options) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "Blocking probability vs offered load",
		Columns: []string{"topology", "erlang", "min-cost", "min-load", "min-load-cost", "two-step"},
		Notes:   "W=8, active restoration (primary+backup per request)",
	}
	erlangs := []float64{10, 20, 30, 40, 60}
	count := 500
	topos := []string{"nsfnet", "arpa2"}
	if o.Quick {
		erlangs = []float64{20, 40}
		count = 150
		topos = topos[:1]
	}
	for _, tp := range topos {
		for _, erl := range erlangs {
			row := []string{tp, fmtF(erl)}
			for _, algo := range []netsim.Algorithm{
				netsim.MinCost, netsim.MinLoad, netsim.MinLoadCost, netsim.TwoStep,
			} {
				algo := algo
				erl := erl
				tp := tp
				bl, _, _, _, _, _, _, _ := runDynamic(o, func(seed int64) (*netsim.Sim, []workload.Request) {
					var net = topo.NSFNET(topo.Config{W: 8})
					nodes := 14
					if tp == "arpa2" {
						net = topo.ARPA2(topo.Config{W: 8})
						nodes = 20
					}
					sim := netsim.New(net, netsim.Config{
						Algorithm: algo, Restoration: netsim.Active, Seed: seed,
					})
					reqs := workload.Poisson(workload.PoissonConfig{
						Nodes: nodes, ArrivalRate: erl, MeanHolding: 1, Count: count, Seed: 4000 + seed,
					})
					return sim, reqs
				})
				row = append(row, fmtPct(bl.Mean()))
			}
			t.AddRow(row...)
		}
	}
	return t
}
