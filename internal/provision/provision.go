// Package provision solves the static-traffic counterpart of the paper's
// problem (§1 cites it via Nagatsu et al. and Alanyali–Ayanoglu): given a
// batch of demands known in advance, establish a robust (primary + backup)
// pair for every demand, minimising total cost. Unlike the paper's online
// setting, an offline provisioner may afford more computation, so after the
// sequential first pass it runs local-improvement passes that tear down and
// re-route one connection at a time while the others stay pinned.
package provision

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/lightpath"
	"repro/internal/wdm"
)

// Demand is one provisioning request.
type Demand struct {
	ID  int
	Src int
	Dst int
}

// Router selects the per-demand routing algorithm.
type Router int

const (
	// MinCost provisions with ApproxMinCost (§3.3).
	MinCost Router = iota
	// MinLoadCost provisions with the §4.2 load-then-cost algorithm.
	MinLoadCost
	// NodeDisjoint provisions internally node-disjoint pairs.
	NodeDisjoint
)

func (r Router) route(eng *core.Router, net *wdm.Network, s, t int) (*core.Result, bool) {
	switch r {
	case MinCost:
		return eng.ApproxMinCost(net, s, t)
	case MinLoadCost:
		return eng.MinLoadCost(net, s, t)
	case NodeDisjoint:
		return eng.ApproxMinCostNodeDisjoint(net, s, t)
	}
	panic("provision: unknown router")
}

// Order selects the sequential routing order of the first pass.
type Order int

const (
	// InOrder provisions demands in input order.
	InOrder Order = iota
	// LongestFirst provisions demands with the longest shortest-path first —
	// long connections are the hardest to place, so they go while the
	// network is empty.
	LongestFirst
	// ShortestFirst provisions the shortest demands first (maximises the
	// count of placed demands under scarcity).
	ShortestFirst
)

// Config tunes Provision.
type Config struct {
	Router Router
	Order  Order
	// ImprovePasses re-routes every placed demand this many times after the
	// first pass, keeping strictly cheaper routings (0 = no improvement).
	ImprovePasses int
	// Opts is forwarded to the core routers.
	Opts *core.Options
}

// Placement is the outcome for one demand.
type Placement struct {
	Demand Demand
	Route  *core.Result // nil when the demand could not be placed
}

// Result summarises a provisioning run.
type Result struct {
	Placements []Placement
	Placed     int
	Failed     int
	// TotalCost is the Eq. 1 cost sum over all placed pairs.
	TotalCost float64
	// NetworkLoad is ρ after all placements.
	NetworkLoad float64
	// Improved counts re-routings accepted during improvement passes.
	Improved int
}

// Provision routes the batch on the given network, reserving capacity as it
// goes. The network is mutated (placed demands stay reserved); pass a clone
// to keep the original pristine.
func Provision(net *wdm.Network, demands []Demand, cfg Config) *Result {
	order := make([]int, len(demands))
	for i := range order {
		order[i] = i
	}
	switch cfg.Order {
	case LongestFirst, ShortestFirst:
		// Rank by current shortest semilightpath cost (∞ if unroutable).
		rank := make([]float64, len(demands))
		for i, d := range demands {
			if _, c, ok := lightpath.Optimal(net, d.Src, d.Dst, nil); ok {
				rank[i] = c
			} else {
				rank[i] = math.Inf(1)
			}
		}
		sort.SliceStable(order, func(a, b int) bool {
			if cfg.Order == LongestFirst {
				return rank[order[a]] > rank[order[b]]
			}
			return rank[order[a]] < rank[order[b]]
		})
	}

	res := &Result{Placements: make([]Placement, len(demands))}
	for i, d := range demands {
		res.Placements[i] = Placement{Demand: d}
	}
	eng := core.NewRouter(cfg.Opts)
	for _, idx := range order {
		d := demands[idx]
		r, ok := cfg.Router.route(eng, net, d.Src, d.Dst)
		if !ok || core.Establish(net, r) != nil {
			res.Failed++
			continue
		}
		res.Placements[idx].Route = r
		res.Placed++
	}

	for pass := 0; pass < cfg.ImprovePasses; pass++ {
		improvedThisPass := 0
		for idx := range res.Placements {
			p := &res.Placements[idx]
			if p.Route == nil {
				// Retry failures too: earlier teardowns may have freed room.
				if r, ok := cfg.Router.route(eng, net, p.Demand.Src, p.Demand.Dst); ok &&
					core.Establish(net, r) == nil {
					p.Route = r
					res.Placed++
					res.Failed--
					improvedThisPass++
				}
				continue
			}
			old := p.Route
			if err := core.Teardown(net, old); err != nil {
				panic("provision: teardown failed: " + err.Error())
			}
			r, ok := cfg.Router.route(eng, net, p.Demand.Src, p.Demand.Dst)
			if ok && r.Cost < old.Cost-1e-9 && core.Establish(net, r) == nil {
				p.Route = r
				improvedThisPass++
				continue
			}
			// Keep the old routing (re-reserve; nothing else moved since
			// the teardown).
			if err := core.Establish(net, old); err != nil {
				panic("provision: re-establish failed: " + err.Error())
			}
		}
		res.Improved += improvedThisPass
		if improvedThisPass == 0 {
			break
		}
	}

	for _, p := range res.Placements {
		if p.Route != nil {
			res.TotalCost += p.Route.Cost
		}
	}
	res.NetworkLoad = net.NetworkLoad()
	return res
}
