package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// changedPackagePatterns maps the Go files changed since ref (committed or
// not) to package patterns for a fast incremental lint pass. A go.mod change
// widens the answer to the whole module. Deleted directories and testdata
// trees are dropped. An empty slice means nothing lintable changed.
//
// The fast tier trades the program-wide view for speed: the call-graph rules
// only see the changed packages, so cross-package violations introduced from
// an unchanged caller can escape it. The full run remains the CI gate.
func changedPackagePatterns(ref string) ([]string, error) {
	cmd := exec.Command("git", "diff", "--name-only", ref, "--")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("git diff --name-only %s: %v\n%s", ref, err, stderr.Bytes())
	}
	dirs := map[string]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case line == "":
		case line == "go.mod" || line == "go.sum":
			return []string{"./..."}, nil
		case !strings.HasSuffix(line, ".go"):
		case strings.HasSuffix(line, "_test.go"):
			// Lint loads build packages only; test files never reach it.
		case strings.Contains(line, "testdata/") || strings.HasPrefix(line, "testdata"):
		default:
			dir := filepath.Dir(line)
			if st, err := os.Stat(dir); err == nil && st.IsDir() {
				dirs["./"+filepath.ToSlash(dir)] = true
			}
		}
	}
	patterns := make([]string, 0, len(dirs))
	for d := range dirs {
		patterns = append(patterns, d)
	}
	sort.Strings(patterns)
	return patterns, nil
}
