package wdm

import (
	"math"
	"testing"
)

// snapNet builds a small test network: 4 nodes in a ring, W=4, uniform cost.
func snapNet(t *testing.T) *Network {
	t.Helper()
	net := NewNetwork(4, 4)
	for v := 0; v < 4; v++ {
		net.AddUniformPair(v, (v+1)%4, 1)
	}
	return net
}

// availEqual compares the availability sets of two networks link by link.
func availEqual(a, b *Network) bool {
	if a.Links() != b.Links() {
		return false
	}
	for id := 0; id < a.Links(); id++ {
		as, bs := a.Link(id).Avail().Slice(), b.Link(id).Avail().Slice()
		if len(as) != len(bs) {
			return false
		}
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
	}
	return true
}

func TestCloneSinceSharesUntouchedLinks(t *testing.T) {
	net := snapNet(t)
	snap0 := net.Clone()
	v0 := net.StateVersion()

	// Touch exactly one link.
	if err := net.Use(3, 2); err != nil {
		t.Fatal(err)
	}
	snap1 := net.CloneSince(snap0, v0)

	for id := 0; id < net.Links(); id++ {
		shared := snap1.Link(id) == snap0.Link(id)
		if id == 3 && shared {
			t.Errorf("link %d was touched but snap1 shares snap0's record", id)
		}
		if id != 3 && !shared {
			t.Errorf("link %d untouched but snap1 copied it", id)
		}
	}
	if !availEqual(snap1, net) {
		t.Fatal("snap1 availability differs from the source network")
	}
	if snap1.Link(3).HasAvail(2) {
		t.Fatal("snap1 shows λ2 available on link 3 after Use")
	}
	if !snap0.Link(3).HasAvail(2) {
		t.Fatal("snap0 (frozen) lost λ2 on link 3 — COW leaked a write")
	}
}

func TestCloneSinceSnapshotIsolation(t *testing.T) {
	net := snapNet(t)
	snap0 := net.Clone()
	v0 := net.StateVersion()

	// A chain of epochs: mutate, snapshot, mutate again; every published
	// snapshot must keep showing the state it was taken at.
	if err := net.Use(0, 0); err != nil {
		t.Fatal(err)
	}
	snap1 := net.CloneSince(snap0, v0)
	v1 := net.StateVersion()
	if err := net.Use(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := net.Use(5, 3); err != nil {
		t.Fatal(err)
	}
	snap2 := net.CloneSince(snap1, v1)

	if !snap0.Link(0).HasAvail(0) {
		t.Fatal("snap0 lost λ0 on link 0")
	}
	if snap1.Link(0).HasAvail(0) || !snap1.Link(0).HasAvail(1) {
		t.Fatal("snap1 does not reflect exactly the first epoch's state")
	}
	if snap1.Link(5).Avail().Count() != 4 {
		t.Fatal("snap1 shows the second epoch's write on link 5")
	}
	if snap2.Link(0).HasAvail(1) || snap2.Link(5).HasAvail(3) {
		t.Fatal("snap2 does not reflect the second epoch's writes")
	}
	if !availEqual(snap2, net) {
		t.Fatal("snap2 availability differs from the source network")
	}
}

func TestCloneSinceTopoChangeFallsBackToFullClone(t *testing.T) {
	net := snapNet(t)
	snap0 := net.Clone()
	v0 := net.StateVersion()

	net.AddUniformLink(0, 2, 2)
	snap1 := net.CloneSince(snap0, v0)
	if snap1.Links() != net.Links() {
		t.Fatalf("snap1 has %d links, want %d", snap1.Links(), net.Links())
	}
	for id := 0; id < snap0.Links(); id++ {
		if snap1.Link(id) == snap0.Link(id) {
			t.Fatalf("link %d shared across a TopoVersion change", id)
		}
	}
	// Converter swaps also bump topo and must defeat sharing.
	snap2 := net.Clone()
	v2 := net.StateVersion()
	net.SetConverter(1, NewRangeConverter(1, 2))
	snap3 := net.CloneSince(snap2, v2)
	if snap3.Converter(1) == snap2.Converter(1) {
		t.Fatal("snap3 shares the swapped converter with snap2")
	}
}

func TestCloneSinceNilPrev(t *testing.T) {
	net := snapNet(t)
	if err := net.Use(1, 1); err != nil {
		t.Fatal(err)
	}
	snap := net.CloneSince(nil, 0)
	if !availEqual(snap, net) {
		t.Fatal("CloneSince(nil, _) is not a faithful clone")
	}
	if snap.StateVersion() != net.StateVersion() || snap.TopoVersion() != net.TopoVersion() {
		t.Fatal("version counters not carried over")
	}
}

func TestCloneSinceCostAndLoadIntact(t *testing.T) {
	net := snapNet(t)
	snap0 := net.Clone()
	v0 := net.StateVersion()
	if err := net.Use(2, 0); err != nil {
		t.Fatal(err)
	}
	snap := net.CloneSince(snap0, v0)
	for id := 0; id < net.Links(); id++ {
		for lam := 0; lam < net.W(); lam++ {
			if got, want := snap.Link(id).Cost(lam), net.Link(id).Cost(lam); got != want &&
				!(math.IsInf(got, 1) && math.IsInf(want, 1)) {
				t.Fatalf("link %d λ%d cost %g, want %g", id, lam, got, want)
			}
		}
	}
	if got, want := snap.NetworkLoad(), net.NetworkLoad(); got != want {
		t.Fatalf("snapshot load %g, want %g", got, want)
	}
}
