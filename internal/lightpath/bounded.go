package lightpath

import (
	"math"

	"repro/internal/wdm"
)

// OptimalBounded returns a minimum-cost semilightpath from s to t using at
// most maxHops links — the delay-constrained variant (§2 counts "the time
// delay on a route" among the network resources; hop count is its standard
// proxy in the RWA literature). The search is a Bellman–Ford-style dynamic
// program over (hops, node, wavelength) states, O(maxHops · mW²) time.
// ok is false when no path within the bound exists.
func OptimalBounded(g *wdm.Network, s, t, maxHops int, opts *Options) (*wdm.Semilightpath, float64, bool) {
	if opts == nil {
		opts = &Options{}
	}
	if s == t || s < 0 || t < 0 || s >= g.Nodes() || t >= g.Nodes() || maxHops <= 0 {
		return nil, math.Inf(1), false
	}
	w := g.W()
	numStates := g.Nodes() * w

	lamSet := func(l *wdm.Link) interface{ ForEach(func(int) bool) } {
		if opts.UseInstalled {
			return l.Lambda()
		}
		return l.Avail()
	}

	// dp[st] = best cost to reach state st = v*w+λ using exactly the hops
	// processed so far (rolling layers). prev[h][st] records the (state,
	// link) that reached st at layer h.
	type pred struct{ state, link int }
	dp := make([]float64, numStates)
	ndp := make([]float64, numStates)
	for i := range dp {
		dp[i] = math.Inf(1)
	}
	preds := make([][]pred, maxHops+1)

	// Layer 1: leave s.
	layer1 := make([]pred, numStates)
	for i := range layer1 {
		layer1[i] = pred{state: -1, link: -1}
	}
	for _, id := range g.Out(s) {
		if opts.AllowedLinks != nil && !opts.AllowedLinks(id) {
			continue
		}
		l := g.Link(id)
		lamSet(l).ForEach(func(lam int) bool {
			st := l.To*w + lam
			if c := l.Cost(lam); c < dp[st] {
				dp[st] = c
				layer1[st] = pred{state: -1, link: id}
			}
			return true
		})
	}
	preds[1] = layer1

	// best[st] = cheapest cost to reach st within ANY processed layer, and
	// the layer achieving it — needed to reconstruct the cheapest ≤-bound
	// path ending at t.
	bestCost := math.Inf(1)
	bestState, bestLayer := -1, -1
	scanT := func(layer int, costs []float64) {
		for lam := 0; lam < w; lam++ {
			st := t*w + lam
			if costs[st] < bestCost {
				bestCost = costs[st]
				bestState = st
				bestLayer = layer
			}
		}
	}
	scanT(1, dp)

	for h := 2; h <= maxHops; h++ {
		layer := make([]pred, numStates)
		for i := range ndp {
			ndp[i] = math.Inf(1)
			layer[i] = pred{state: -1, link: -1}
		}
		for st, c := range dp {
			if math.IsInf(c, 1) {
				continue
			}
			v, lam := st/w, st%w
			if v == t {
				continue // no need to extend beyond the destination
			}
			conv := g.Converter(v)
			for _, id := range g.Out(v) {
				if opts.AllowedLinks != nil && !opts.AllowedLinks(id) {
					continue
				}
				l := g.Link(id)
				lamSet(l).ForEach(func(nlam int) bool {
					var cc float64
					if nlam != lam {
						if !conv.Allowed(lam, nlam) {
							return true
						}
						cc = conv.Cost(lam, nlam)
					}
					nst := l.To*w + nlam
					if nc := c + cc + l.Cost(nlam); nc < ndp[nst] {
						ndp[nst] = nc
						layer[nst] = pred{state: st, link: id}
					}
					return true
				})
			}
		}
		dp, ndp = ndp, dp
		preds[h] = layer
		scanT(h, dp)
	}

	if bestState < 0 {
		return nil, math.Inf(1), false
	}
	// Reconstruct from (bestLayer, bestState).
	hops := make([]wdm.Hop, bestLayer)
	st := bestState
	for h := bestLayer; h >= 1; h-- {
		p := preds[h][st]
		hops[h-1] = wdm.Hop{Link: p.link, Wavelength: st % w}
		st = p.state
	}
	return &wdm.Semilightpath{Hops: hops}, bestCost, true
}
