package timeseries

import (
	"math"
	"testing"

	"repro/internal/bitset"
	"repro/internal/topo"
)

func TestFragmentation(t *testing.T) {
	almost := func(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

	if Fragmentation(bitset.New(8)) != 0 {
		t.Fatal("empty set must report 0, not NaN")
	}
	if Fragmentation(bitset.NewFull(8)) != 0 {
		t.Fatal("contiguous full set must report 0")
	}
	// One contiguous block, offset from zero: still unfragmented.
	if got := Fragmentation(bitset.FromSlice(16, []int{5, 6, 7, 8})); got != 0 {
		t.Fatalf("contiguous block frag = %g", got)
	}
	// Alternating bits: 4 free, longest run 1 → 1 − 1/4.
	if got := Fragmentation(bitset.FromSlice(8, []int{0, 2, 4, 6})); !almost(got, 0.75) {
		t.Fatalf("alternating frag = %g, want 0.75", got)
	}
	// Two islands of 2 in 6 free → 1 − 2/4.
	if got := Fragmentation(bitset.FromSlice(8, []int{0, 1, 4, 5})); !almost(got, 0.5) {
		t.Fatalf("two-island frag = %g, want 0.5", got)
	}
}

func TestProbeNetwork(t *testing.T) {
	net := topo.NSFNET(topo.Config{W: 4})
	ns := ProbeNetwork(net, 12.5, 7)
	if ns.Time != 12.5 || ns.Nodes != 14 || ns.W != 4 || ns.ActiveConns != 7 {
		t.Fatalf("header = %+v", ns)
	}
	if len(ns.Links) != net.Links() {
		t.Fatalf("probe has %d links, topology has %d", len(ns.Links), net.Links())
	}
	if ns.MeanLoad != 0 || ns.MaxLoad != 0 || ns.MeanFrag != 0 {
		t.Fatalf("idle network shows load: %+v", ns)
	}
	if ns.TotalAvail != net.Links()*4 {
		t.Fatalf("TotalAvail = %d, want %d", ns.TotalAvail, net.Links()*4)
	}

	// Occupy three wavelengths on link 0 (0, 1, 3 → one free, frag 0).
	for _, lam := range []int{0, 1, 3} {
		if err := net.Use(0, lam); err != nil {
			t.Fatal(err)
		}
	}
	ns = ProbeNetwork(net, 13, 7)
	l0 := ns.Links[0]
	if l0.Used != 3 || l0.Load != 0.75 {
		t.Fatalf("link 0 = %+v", l0)
	}
	if ns.MaxLoad != 0.75 {
		t.Fatalf("MaxLoad = %g", ns.MaxLoad)
	}
	if ns.TotalAvail != net.Links()*4-3 {
		t.Fatalf("TotalAvail = %d", ns.TotalAvail)
	}
	if ns.MeanLoad <= 0 || ns.MeanLoad >= 0.75 {
		t.Fatalf("MeanLoad = %g, want strictly between 0 and the max", ns.MeanLoad)
	}
}
