// Package graph implements a directed weighted multigraph and the
// shortest-path machinery the routing algorithms are built on: Dijkstra with
// an indexed heap, Bellman–Ford for graphs with negative arcs (needed by the
// Bhandari disjoint-path oracle), reachability, and bounded simple-path
// enumeration (used by the exhaustive exact solver).
package graph

import (
	"fmt"
	"math"
)

// Inf is the distance reported for unreachable vertices.
var Inf = math.Inf(1)

// Edge is a directed arc of a multigraph. ID is the index of the edge in the
// graph's edge list; Aux is a free payload slot callers may use to correlate
// an edge with external state (e.g. the WDM link it was derived from).
type Edge struct {
	ID     int
	From   int
	To     int
	Weight float64
	Aux    int
}

// Graph is a directed weighted multigraph over vertices [0, N). Parallel
// edges and self-loops are permitted; edges may be disabled without removal,
// which the disjoint-path algorithms use to run on residual subgraphs.
type Graph struct {
	n        int
	edges    []Edge
	out      [][]int // out[v] = edge IDs leaving v
	in       [][]int // in[v] = edge IDs entering v
	disabled []bool
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{
		n:   n,
		out: make([][]int, n),
		in:  make([][]int, n),
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges (including disabled ones).
func (g *Graph) M() int { return len(g.edges) }

// AddEdge appends a directed edge and returns its ID.
func (g *Graph) AddEdge(from, to int, weight float64) int {
	return g.AddEdgeAux(from, to, weight, -1)
}

// AddEdgeAux appends a directed edge carrying an auxiliary payload.
func (g *Graph) AddEdgeAux(from, to int, weight float64, aux int) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		//wdmlint:ignore hotalloc panic-path formatting; unreachable in a correct run
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", from, to, g.n))
	}
	id := len(g.edges)
	//wdmlint:ignore hotalloc adjacency buffers keep capacity across Reset; growth amortizes to zero
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Weight: weight, Aux: aux})
	//wdmlint:ignore hotalloc adjacency buffers keep capacity across Reset; growth amortizes to zero
	g.out[from] = append(g.out[from], id)
	//wdmlint:ignore hotalloc adjacency buffers keep capacity across Reset; growth amortizes to zero
	g.in[to] = append(g.in[to], id)
	//wdmlint:ignore hotalloc adjacency buffers keep capacity across Reset; growth amortizes to zero
	g.disabled = append(g.disabled, false)
	return id
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// SetWeight updates the weight of edge id.
func (g *Graph) SetWeight(id int, w float64) { g.edges[id].Weight = w }

// Out returns the IDs of edges leaving v (including disabled ones).
func (g *Graph) Out(v int) []int { return g.out[v] }

// In returns the IDs of edges entering v (including disabled ones).
func (g *Graph) In(v int) []int { return g.in[v] }

// OutDegree returns the number of enabled edges leaving v.
func (g *Graph) OutDegree(v int) int {
	d := 0
	for _, id := range g.out[v] {
		if !g.disabled[id] {
			d++
		}
	}
	return d
}

// InDegree returns the number of enabled edges entering v.
func (g *Graph) InDegree(v int) int {
	d := 0
	for _, id := range g.in[v] {
		if !g.disabled[id] {
			d++
		}
	}
	return d
}

// MaxDegree returns the maximum over vertices of out-degree + in-degree,
// the d in the paper's complexity bounds.
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if t := g.OutDegree(v) + g.InDegree(v); t > d {
			d = t
		}
	}
	return d
}

// Disable hides edge id from traversals until Enable is called.
func (g *Graph) Disable(id int) { g.disabled[id] = true }

// Enable re-activates edge id.
func (g *Graph) Enable(id int) { g.disabled[id] = false }

// Disabled reports whether edge id is currently disabled.
func (g *Graph) Disabled(id int) bool { return g.disabled[id] }

// EnableAll re-activates every edge.
func (g *Graph) EnableAll() {
	for i := range g.disabled {
		g.disabled[i] = false
	}
}

// Reset reconfigures g in place to an empty graph over n vertices, keeping
// every backing array so a scratch graph (e.g. Suurballe's residual graph)
// can be rebuilt each call without allocating once its capacity has warmed
// up.
func (g *Graph) Reset(n int) {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	g.n = n
	g.edges = g.edges[:0]
	g.disabled = g.disabled[:0]
	g.out = resetAdj(g.out, n)
	g.in = resetAdj(g.in, n)
}

// resetAdj resizes an adjacency table to n empty per-vertex lists, reusing
// both the outer array and the per-vertex slices' capacity.
func resetAdj(a [][]int, n int) [][]int {
	if cap(a) < n {
		a = append(a[:cap(a)], make([][]int, n-cap(a))...)
	}
	a = a[:n]
	for i := range a {
		a[i] = a[i][:0]
	}
	return a
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		n:        g.n,
		edges:    append([]Edge(nil), g.edges...),
		out:      make([][]int, g.n),
		in:       make([][]int, g.n),
		disabled: append([]bool(nil), g.disabled...),
	}
	for v := 0; v < g.n; v++ {
		c.out[v] = append([]int(nil), g.out[v]...)
		c.in[v] = append([]int(nil), g.in[v]...)
	}
	return c
}

// PathResult holds a single-source shortest path tree.
type PathResult struct {
	Dist     []float64 // Dist[v] = shortest distance from source, Inf if unreachable
	PrevEdge []int     // PrevEdge[v] = edge ID used to reach v, -1 at source/unreachable
	Source   int
	// Search-effort counters, filled by Dijkstra: Relaxations is the number
	// of edge relaxation attempts (enabled edges scanned), HeapOps the
	// number of heap pushes, decreases, and pops — the measured constants
	// behind the paper's m log n term.
	Relaxations int64
	HeapOps     int64
}

// Reached reports whether v is reachable from the source.
func (r *PathResult) Reached(v int) bool { return !math.IsInf(r.Dist[v], 1) }

// PathTo reconstructs the edge-ID path from the source to v, or nil if v is
// unreachable (or v is the source, in which case the path is empty but
// non-nil).
func (r *PathResult) PathTo(v int, g *Graph) []int {
	if !r.Reached(v) {
		return nil
	}
	var rev []int
	for v != r.Source {
		e := r.PrevEdge[v]
		if e < 0 {
			return nil // defensive: broken tree
		}
		rev = append(rev, e)
		v = g.Edge(e).From
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if rev == nil {
		rev = []int{}
	}
	return rev
}

// Dijkstra computes single-source shortest paths from src over enabled edges.
// All enabled edge weights must be non-negative; it panics otherwise. It is
// the one-shot convenience wrapper around DijkstraInto; hot paths should hold
// a Workspace and call DijkstraInto directly.
func (g *Graph) Dijkstra(src int) *PathResult {
	var ws Workspace
	g.DijkstraInto(&ws, src)
	return ws.Result(g.n)
}

// BellmanFord computes single-source shortest paths allowing negative edge
// weights. It returns an error result (ok=false) if a negative cycle is
// reachable from src.
func (g *Graph) BellmanFord(src int) (*PathResult, bool) {
	res := &PathResult{
		Dist:     make([]float64, g.n),
		PrevEdge: make([]int, g.n),
		Source:   src,
	}
	for v := range res.Dist {
		res.Dist[v] = Inf
		res.PrevEdge[v] = -1
	}
	res.Dist[src] = 0
	// Queue-based (SPFA-style) relaxation with an iteration bound for
	// negative-cycle detection.
	inQueue := make([]bool, g.n)
	relaxCount := make([]int, g.n)
	queue := []int{src}
	inQueue[src] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		for _, id := range g.out[u] {
			if g.disabled[id] {
				continue
			}
			e := &g.edges[id]
			nd := res.Dist[u] + e.Weight
			if nd < res.Dist[e.To]-1e-12 {
				res.Dist[e.To] = nd
				res.PrevEdge[e.To] = id
				if !inQueue[e.To] {
					relaxCount[e.To]++
					if relaxCount[e.To] > g.n {
						return res, false // negative cycle
					}
					queue = append(queue, e.To)
					inQueue[e.To] = true
				}
			}
		}
	}
	return res, true
}

// Reachable reports whether dst is reachable from src via enabled edges.
func (g *Graph) Reachable(src, dst int) bool {
	if src == dst {
		return true
	}
	seen := make([]bool, g.n)
	seen[src] = true
	stack := []int{src}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range g.out[u] {
			if g.disabled[id] {
				continue
			}
			v := g.edges[id].To
			if v == dst {
				return true
			}
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return false
}

// PathWeight sums the weights of the given edge-ID path.
func (g *Graph) PathWeight(path []int) float64 {
	w := 0.0
	for _, id := range path {
		w += g.edges[id].Weight
	}
	return w
}

// ValidatePath checks that the edge-ID sequence forms a connected directed
// walk from src to dst over enabled edges.
func (g *Graph) ValidatePath(path []int, src, dst int) error {
	at := src
	for i, id := range path {
		if id < 0 || id >= len(g.edges) {
			return fmt.Errorf("graph: path[%d] = %d out of range", i, id)
		}
		if g.disabled[id] {
			return fmt.Errorf("graph: path[%d] = %d is disabled", i, id)
		}
		e := g.edges[id]
		if e.From != at {
			return fmt.Errorf("graph: path[%d] starts at %d, expected %d", i, e.From, at)
		}
		at = e.To
	}
	if at != dst {
		return fmt.Errorf("graph: path ends at %d, expected %d", at, dst)
	}
	return nil
}

// SimplePaths enumerates all simple directed paths (no repeated vertex) from
// src to dst over enabled edges, invoking fn with each edge-ID path. The
// slice passed to fn is reused; callers must copy it to retain it. If fn
// returns false, enumeration stops. maxLen bounds path length in edges
// (<= 0 means no bound). Exponential: intended for small exact baselines.
func (g *Graph) SimplePaths(src, dst, maxLen int, fn func(path []int) bool) {
	if maxLen <= 0 {
		maxLen = g.n // simple path cannot exceed n-1 edges anyway
	}
	onPath := make([]bool, g.n)
	var path []int
	var stopped bool
	var dfs func(u int)
	dfs = func(u int) {
		if stopped {
			return
		}
		if u == dst {
			if !fn(path) {
				stopped = true
			}
			return
		}
		if len(path) >= maxLen {
			return
		}
		onPath[u] = true
		for _, id := range g.out[u] {
			if stopped {
				break
			}
			if g.disabled[id] {
				continue
			}
			v := g.edges[id].To
			if onPath[v] || v == src {
				continue
			}
			path = append(path, id)
			dfs(v)
			path = path[:len(path)-1]
		}
		onPath[u] = false
	}
	dfs(src)
}
