// Package disp exercises the three dispatch modes the call-graph builder
// resolves: static calls, interface calls, and calls through function values.
package disp

type Ring struct{ n int }

func (r *Ring) Grow(k int) { r.n += k }
func (r *Ring) Len() int   { return r.n }

type Sizer interface{ Len() int }

type Fixed int

func (f Fixed) Len() int { return int(f) }

// Helper is a plain function, called statically below.
func Helper(x int) int { return x + 1 }

// Twice is referenced as a value below: a candidate for func-value dispatch.
func Twice(x int) int { return 2 * x }

// Never has the same signature as Twice but is never referenced as a value,
// so indirect calls must not resolve to it.
func Never(x int) int { return -x }

// Static calls a function and two concrete methods directly.
func Static(r *Ring) int {
	r.Grow(Helper(1))
	return r.Len()
}

// Dynamic calls through an interface: edges to every implementation of Len.
func Dynamic(s Sizer) int { return s.Len() }

// Indirect calls through a function value: an edge to Twice, none to Never.
func Indirect(x int) int {
	f := Twice
	return f(x)
}

// CallBound calls through a bound method value: resolved by signature match
// against the address-taken set, which r.Len joins here.
func CallBound(r *Ring) int {
	g := r.Len
	return g()
}
