// Package other accesses core.Stats from outside its package: the
// atomic-use set is program-wide, so the plain read is still a finding.
package other

import "fix/atomicfield/core"

// Sample reads Hits plainly from another package: finding.
func Sample(s *core.Stats) uint64 {
	return s.Hits
}
