//go:build !race

// Allocation-regression tests, excluded from -race runs (the detector's
// instrumentation breaks testing.AllocsPerRun accounting).
package serve

import "testing"

// provisionAllocBudget is the whole-pipeline allocation budget for one
// provision + teardown round trip with telemetry, metrics and tracing all
// disabled: the op pair and their reply channels, op-owned path copies, the
// registry record, the response hop slices, the committer's two copy-on-write
// epoch publishes, and the router re-deriving per-snapshot state (every
// commit publishes a fresh network pointer, so snapshot-keyed caches never
// hit under churn). Measured 741, bit-stable across runs; the margin absorbs
// runtime and map-layout drift. What this pins: stage attribution stores its
// stamps inside the already-allocated op, so instrumenting the hot path added
// zero allocations — any instrumentation that allocates per attempt or per
// request pushes past the margin.
const provisionAllocBudget = 790

// TestProvisionAllocs pins the disabled-telemetry allocation contract of the
// request pipeline (see stageNanos: attribution must ride inside the op).
func TestProvisionAllocs(t *testing.T) {
	e := startEngine(t, nsf(8), Config{Shards: 2})
	var id int64
	run := func() {
		id++
		resp := e.Provision(Request{ID: id, Src: 0, Dst: 9})
		if !resp.Accepted {
			t.Fatalf("provision %d rejected: %+v", id, resp)
		}
		if resp = e.Teardown(id); !resp.Accepted {
			t.Fatalf("teardown %d rejected: %+v", id, resp)
		}
	}
	run() // warm the shard router's skeleton caches outside the window
	if n := testing.AllocsPerRun(200, run); n > provisionAllocBudget {
		t.Fatalf("provision+teardown allocates %.0f, budget %d", n, provisionAllocBudget)
	}
}
