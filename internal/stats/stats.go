// Package stats provides the small statistical toolkit the benchmark harness
// reports with: streaming moments (Welford), confidence intervals, ratios,
// and fixed-width histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Stream accumulates moments online (Welford's algorithm). The zero value is
// ready to use.
type Stream struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds a sample into the stream.
func (s *Stream) Add(x float64) {
	if s.n == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the sample count.
func (s *Stream) N() int { return s.n }

// Mean returns the sample mean (0 for an empty stream).
func (s *Stream) Mean() float64 { return s.mean }

// Min returns the smallest sample (0 for an empty stream).
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest sample (0 for an empty stream).
func (s *Stream) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (s *Stream) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return 1.96 * s.StdDev() / math.Sqrt(float64(s.n))
}

// String renders "mean ± ci (n=…)".
func (s *Stream) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.CI95(), s.n)
}

// Merge folds another stream into s (parallel reduction).
func (s *Stream) Merge(o *Stream) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	mean := s.mean + d*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the samples, using linear
// interpolation. It sorts a copy of the input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic("stats: quantile out of range")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Histogram is a fixed-width histogram over [Lo, Hi); samples outside the
// range land in the boundary bins.
type Histogram struct {
	Lo, Hi float64
	Bins   []int
	total  int
}

// NewHistogram returns a histogram with bins equal-width buckets over
// [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, bins)}
}

// Add counts a sample.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	h.Bins[i]++
	h.total++
}

// Total returns the number of samples counted.
func (h *Histogram) Total() int { return h.total }

// String renders an ASCII bar chart.
func (h *Histogram) String() string {
	var b strings.Builder
	maxC := 0
	for _, c := range h.Bins {
		if c > maxC {
			maxC = c
		}
	}
	width := (h.Hi - h.Lo) / float64(len(h.Bins))
	for i, c := range h.Bins {
		bar := 0
		if maxC > 0 {
			bar = c * 40 / maxC
		}
		fmt.Fprintf(&b, "[%8.3g, %8.3g) %6d %s\n",
			h.Lo+float64(i)*width, h.Lo+float64(i+1)*width, c, strings.Repeat("#", bar))
	}
	return b.String()
}

// Ratio is a convenience for reporting a/b with a zero-denominator guard.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}
