package disjoint

import (
	"repro/internal/graph"
	"repro/internal/obs"
)

// Workspace owns all scratch state of a Suurballe computation — the two
// Dijkstra workspaces, the residual (reduced-cost) graph, and the
// combine-phase buffers — so the per-request hot path performs no heap
// allocations once the buffers have warmed up to the graph size.
//
// The zero value is ready to use. A Workspace is not safe for concurrent
// use; give each goroutine its own. The *Pair returned by Suurballe aliases
// workspace buffers and stays valid only until the next call on the same
// workspace; callers that retain it across calls must copy the path slices.
type Workspace struct {
	d1, d2 graph.Workspace
	res    graph.Graph // residual graph, rebuilt in place each call

	p1 []int // first-pass shortest path (original edge IDs)
	q  []int // second-pass path (residual edge IDs)

	onP1 []bool // per original edge; cleared after each use

	// combine scratch.
	mark     []int32 // per original edge: multiplicity in the surviving set
	touched  []int   // edges whose mark entry must be zeroed afterwards
	adjHead  []int32 // per vertex: head of the out-edge chain, stamped
	adjNext  []int32 // per edge: next edge in its vertex's chain
	adjStamp []uint32
	adjGen   uint32

	path1, path2 []int
	pair         Pair

	// Trace, when non-nil, receives a "suurballe" span per call with the
	// search-effort attributes (relaxations, heap operations, path lengths).
	// All obs calls are nil-safe, so leaving it nil costs nothing.
	Trace *obs.Trace
}

// NewWorkspace returns an empty workspace. Equivalent to &Workspace{}.
func NewWorkspace() *Workspace { return &Workspace{} }

// Suurballe computes the same minimum-total-weight edge-disjoint pair as the
// package-level Suurballe, reusing ws for every intermediate structure. The
// returned Pair aliases workspace buffers (see the Workspace doc).
//
//wdm:hotpath
func (ws *Workspace) Suurballe(g *graph.Graph, s, t int) (*Pair, bool) {
	if s == t {
		return nil, false
	}
	instr.calls.Inc()
	defer instr.time.Stop(instr.time.Start())
	sp := ws.Trace.Begin("suurballe")
	// Pass 1: shortest-path distances for the potentials.
	g.DijkstraInto(&ws.d1, s)
	instr.relaxations.Add(ws.d1.Relaxations())
	instr.heapOps.Add(ws.d1.HeapOps())
	ws.Trace.SpanInt(sp, "relax1", int64(ws.d1.Relaxations()))
	ws.Trace.SpanInt(sp, "heap1", int64(ws.d1.HeapOps()))
	if !ws.d1.Reached(t) {
		ws.Trace.SpanBool(sp, "found", false)
		ws.Trace.EndSpan(sp)
		return nil, false
	}
	var ok bool
	ws.p1, ok = ws.d1.AppendPathTo(ws.p1[:0], t, g)
	if !ok {
		ws.Trace.SpanBool(sp, "found", false)
		ws.Trace.EndSpan(sp)
		return nil, false
	}

	// Transformed graph with reduced costs w'(u,v) = w + d(u) − d(v) ≥ 0.
	// P1's forward edges are removed and replaced by zero-weight reversals
	// (their reduced cost is 0, so the reversal is also 0).
	m := g.M()
	h := &ws.res
	h.Reset(g.N())
	for cap(ws.onP1) < m {
		ws.onP1 = append(ws.onP1[:cap(ws.onP1)], false)
	}
	onP1 := ws.onP1[:m]
	for _, id := range ws.p1 {
		onP1[id] = true
	}
	for id := 0; id < m; id++ {
		if g.Disabled(id) || onP1[id] {
			continue
		}
		e := g.Edge(id)
		if !ws.d1.Reached(e.From) || !ws.d1.Reached(e.To) {
			continue // unreachable region cannot be on any s→t path
		}
		rc := e.Weight + ws.d1.Dist(e.From) - ws.d1.Dist(e.To)
		if rc < 0 {
			rc = 0 // guard tiny negative from float round-off
		}
		h.AddEdgeAux(e.From, e.To, rc, id)
	}
	for _, id := range ws.p1 {
		e := g.Edge(id)
		h.AddEdgeAux(e.To, e.From, 0, ^id) // reversal carries ^origID
		onP1[id] = false                   // restore the cleared invariant
	}

	h.DijkstraInto(&ws.d2, s)
	instr.relaxations.Add(ws.d2.Relaxations())
	instr.heapOps.Add(ws.d2.HeapOps())
	ws.Trace.SpanInt(sp, "relax2", int64(ws.d2.Relaxations()))
	ws.Trace.SpanInt(sp, "heap2", int64(ws.d2.HeapOps()))
	if !ws.d2.Reached(t) {
		ws.Trace.SpanBool(sp, "found", false)
		ws.Trace.EndSpan(sp)
		return nil, false
	}
	ws.q, ok = ws.d2.AppendPathTo(ws.q[:0], t, h)
	if !ok {
		ws.Trace.SpanBool(sp, "found", false)
		ws.Trace.EndSpan(sp)
		return nil, false
	}

	pair, ok := ws.combine(g, s, t)
	if ok {
		instr.found.Inc()
		ws.Trace.SpanInt(sp, "len1", int64(len(pair.Path1)))
		ws.Trace.SpanInt(sp, "len2", int64(len(pair.Path2)))
		ws.Trace.SpanFloat(sp, "weight", pair.Weight)
	}
	ws.Trace.SpanBool(sp, "found", ok)
	ws.Trace.EndSpan(sp)
	return pair, ok
}

// combine cancels interlacing edges between P1 and the second-pass path Q
// (edges of Q with Aux = ^origID are reversals of P1 edges) and decomposes
// the remaining edge multiset into two edge-disjoint s→t paths. It mirrors
// the map-based combine exactly — the surviving edges are scanned in
// ascending ID order and each per-vertex chain pops its largest ID first —
// so the decomposition (and which path is reported first) is identical.
func (ws *Workspace) combine(g *graph.Graph, s, t int) (*Pair, bool) {
	m := g.M()
	for cap(ws.mark) < m {
		ws.mark = append(ws.mark[:cap(ws.mark)], 0)
	}
	mark := ws.mark[:m]
	ws.touched = ws.touched[:0]
	//wdmlint:ignore hotalloc non-escaping closure; stays on the stack
	add := func(id int) {
		if mark[id] == 0 {
			//wdmlint:ignore hotalloc workspace buffer growth; amortizes to zero once warm
			ws.touched = append(ws.touched, id)
		}
		mark[id]++
	}
	for _, id := range ws.p1 {
		add(id)
	}
	for _, hid := range ws.q {
		aux := ws.res.Edge(hid).Aux
		if aux < 0 {
			mark[^aux]-- // reversal cancels the P1 edge
		} else {
			add(aux)
		}
	}
	//wdmlint:ignore hotalloc non-escaping closure; stays on the stack
	defer func() {
		for _, id := range ws.touched {
			mark[id] = 0
		}
	}()

	// Adjacency over surviving edges: ascending-ID prepend per vertex, so
	// the chain head is the largest ID — the edge the map version popped.
	n := g.N()
	for cap(ws.adjHead) < n {
		ws.adjHead = append(ws.adjHead[:cap(ws.adjHead)], -1)
		ws.adjStamp = append(ws.adjStamp[:cap(ws.adjStamp)], 0)
	}
	adjHead, adjStamp := ws.adjHead[:n], ws.adjStamp[:n]
	for cap(ws.adjNext) < m {
		ws.adjNext = append(ws.adjNext[:cap(ws.adjNext)], -1)
	}
	adjNext := ws.adjNext[:m]
	ws.adjGen++
	if ws.adjGen == 0 {
		for i := range adjStamp {
			adjStamp[i] = 0
		}
		ws.adjGen = 1
	}
	gen := ws.adjGen
	total := 0.0
	edgeCount := 0
	for id := 0; id < m; id++ {
		mult := mark[id]
		if mult <= 0 {
			continue
		}
		if mult > 1 {
			return nil, false // defensive: should not happen for simple paths
		}
		e := g.Edge(id)
		if adjStamp[e.From] != gen {
			adjStamp[e.From] = gen
			adjHead[e.From] = -1
		}
		adjNext[id] = adjHead[e.From]
		adjHead[e.From] = int32(id)
		total += e.Weight
		edgeCount++
	}
	//wdmlint:ignore hotalloc non-escaping closure; stays on the stack
	extract := func(buf []int) ([]int, bool) {
		buf = buf[:0]
		at := s
		for at != t {
			if adjStamp[at] != gen || adjHead[at] < 0 {
				return buf, false
			}
			id := int(adjHead[at])
			adjHead[at] = adjNext[id]
			//wdmlint:ignore hotalloc workspace buffer growth; amortizes to zero once warm
			buf = append(buf, id)
			at = g.Edge(id).To
			if len(buf) > edgeCount {
				return buf, false // cycle guard
			}
		}
		return buf, true
	}
	var ok1, ok2 bool
	ws.path1, ok1 = extract(ws.path1)
	ws.path2, ok2 = extract(ws.path2)
	if !ok1 || !ok2 {
		return nil, false
	}
	ws.pair = Pair{Path1: ws.path1, Path2: ws.path2, Weight: total}
	return &ws.pair, true
}
