// Loadbalance: show how the §4 load-aware routers spread traffic that the
// §3 cost-only router would pile onto the cheapest corridor. A skewed
// workload hammers one hot node pair; we compare the resulting maximum link
// load ρ and blocking for all three routers.
//
//	go run ./examples/loadbalance
package main

import (
	"fmt"

	"repro"
)

func main() {
	// Skewed traffic: 60% of requests go 0 → 12 (plus uniform background).
	reqs := repro.Poisson(repro.PoissonConfig{
		Nodes: 14, ArrivalRate: 10, MeanHolding: 1, Count: 2000, Seed: 3,
		HotPairs:    []repro.HotPair{{Src: 0, Dst: 12}},
		HotFraction: 0.6,
	})

	fmt.Println("NSFNET, W=8, 10 Erlang, 60% of traffic on the hot pair 0→12")
	fmt.Println()
	fmt.Printf("%-15s %10s %10s %10s %12s\n", "router", "blocking", "mean ρ", "max ρ", "mean cost")
	for _, c := range []struct {
		name string
		algo repro.SimConfig
	}{
		{"min-cost", repro.SimConfig{Algorithm: repro.AlgoMinCost}},
		{"min-load", repro.SimConfig{Algorithm: repro.AlgoMinLoad}},
		{"min-load-cost", repro.SimConfig{Algorithm: repro.AlgoMinLoadCost}},
	} {
		cfg := c.algo
		cfg.Restoration = repro.RestoreActive
		cfg.Seed = 5
		sim := repro.NewSim(repro.NSFNET(repro.TopoConfig{W: 8}), cfg)
		m := sim.Run(reqs)
		fmt.Printf("%-15s %9.2f%% %10.3f %10.3f %12.3f\n",
			c.name, 100*m.BlockingProbability(), m.MeanLoad(), m.MaxNetworkLoad, m.Cost.Mean())
	}
	fmt.Println()
	fmt.Println("min-cost keeps routes cheap but saturates the hot corridor (high max ρ);")
	fmt.Println("min-load spreads traffic at a cost premium; min-load-cost (§4.2) routes")
	fmt.Println("cheap *within* the feasible load bound — the paper's combined objective.")
}
