// Failover: drive the dynamic simulator with link failures and compare the
// paper's two restoration disciplines (§1) head to head on the same
// workload — the *activate* approach (backup reserved in advance, instant
// switchover) against the *passive* approach (restore after the failure if
// resources permit).
//
//	go run ./examples/failover
package main

import (
	"fmt"

	"repro"
)

func run(restoration interface{ String() string }, mode int) *repro.SimMetrics {
	net := repro.NSFNET(repro.TopoConfig{W: 8})
	cfg := repro.SimConfig{
		Algorithm:   repro.AlgoMinCost,
		FailureRate: 1.0, // one link failure per time unit on average
		RepairTime:  4,
		Seed:        7,
	}
	if mode == 0 {
		cfg.Restoration = repro.RestoreActive
	} else {
		cfg.Restoration = repro.RestorePassive
	}
	sim := repro.NewSim(net, cfg)
	reqs := repro.Poisson(repro.PoissonConfig{
		Nodes: 14, ArrivalRate: 35, MeanHolding: 1, Count: 3000, Seed: 11,
	})
	return sim.Run(reqs)
}

func main() {
	fmt.Println("NSFNET, W=8, 35 Erlang, 3000 requests, failure rate 1.0, repair time 4")
	fmt.Println()
	for mode, name := range []string{"active (pre-reserved backup)", "passive (restore on demand)"} {
		m := run(nil, mode)
		fmt.Printf("%s\n", name)
		fmt.Printf("  blocking            %.2f%%\n", 100*m.BlockingProbability())
		fmt.Printf("  failure events      %d (affecting %d connections)\n",
			m.FailureEvents, m.AffectedConns)
		if m.AffectedConns > 0 {
			fmt.Printf("  recovered           %d / %d (%.1f%%)\n",
				m.Recovered, m.AffectedConns,
				100*float64(m.Recovered)/float64(m.AffectedConns))
		}
		fmt.Printf("  recovery work       %.3g links signalled per recovery (0 = instant switchover)\n",
			m.RecoveryWork.Mean())
		fmt.Println()
	}
	fmt.Println("The activate approach trades higher blocking (it reserves twice the")
	fmt.Println("capacity per request) for near-certain, signalling-free recovery —")
	fmt.Println("exactly the §1 trade-off the paper's robust-routing problem optimises.")
}
