package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestStreamMoments(t *testing.T) {
	var s Stream
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("Mean = %g", s.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %g", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g", s.Min(), s.Max())
	}
	if s.CI95() <= 0 {
		t.Fatal("CI95 should be positive")
	}
	if !strings.Contains(s.String(), "n=8") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestStreamEmptyAndSingle(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Variance() != 0 || s.CI95() != 0 {
		t.Fatal("empty stream should report zeros")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Variance() != 0 || s.Min() != 3 || s.Max() != 3 {
		t.Fatal("single-sample stream wrong")
	}
}

func TestStreamMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var whole, a, b Stream
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		whole.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d", a.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-9 {
		t.Fatalf("merged mean %g vs %g", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
		t.Fatalf("merged variance %g vs %g", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("merged min/max wrong")
	}
	// Merging into/from empty.
	var e1, e2 Stream
	e1.Merge(&a)
	if e1.N() != a.N() {
		t.Fatal("merge into empty failed")
	}
	e1.Merge(&e2)
	if e1.N() != a.N() {
		t.Fatal("merge from empty changed stream")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("extremes wrong")
	}
	if Quantile(xs, 0.5) != 3 {
		t.Fatalf("median = %g", Quantile(xs, 0.5))
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Fatalf("interpolated median = %g", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	// Input must not be reordered.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range q should panic")
		}
	}()
	Quantile(xs, 1.5)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, -3, 42} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	// Bin 0: 0, 1.9, -3 (clamped) = 3; bin 1: 2; bin 2: 5; bin 4: 9.9, 42.
	want := []int{3, 1, 1, 0, 2}
	for i, w := range want {
		if h.Bins[i] != w {
			t.Fatalf("Bins = %v, want %v", h.Bins, want)
		}
	}
	if !strings.Contains(h.String(), "#") {
		t.Fatal("String should draw bars")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram should panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("Ratio wrong")
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Fatal("zero denominator should be NaN")
	}
}

// Property: Merge(a, b) equals streaming all samples through one stream.
func TestQuickMergeEquivalence(t *testing.T) {
	f := func(as, bs []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
					out = append(out, x)
				}
			}
			return out
		}
		as, bs = clean(as), clean(bs)
		var a, b, whole Stream
		for _, x := range as {
			a.Add(x)
			whole.Add(x)
		}
		for _, x := range bs {
			b.Add(x)
			whole.Add(x)
		}
		a.Merge(&b)
		if a.N() != whole.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		scale := 1 + math.Abs(whole.Mean())
		return math.Abs(a.Mean()-whole.Mean())/scale < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
