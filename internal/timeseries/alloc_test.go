//go:build !race

package timeseries

import "testing"

// The race detector instruments memory accesses in ways that add allocations,
// so these regression tests only run in normal builds (same split as
// internal/core's alloc tests).

// TestDisabledAddsNoAllocs pins the "telemetry off" contract: every
// instrument call on a nil collector must cost only nil checks — zero
// allocations — so the simulator hot path can call unconditionally.
func TestDisabledAddsNoAllocs(t *testing.T) {
	var c *Collector
	h := c.Histogram("x", nil)
	r := c.Rate("x")
	ratio := c.Ratio("x")
	g := c.Gauge("x")
	if n := testing.AllocsPerRun(200, func() {
		h.Observe(1)
		r.Inc()
		ratio.Observe(true)
		g.Set(0.5)
		c.Advance(10)
		c.Seal()
	}); n != 0 {
		t.Fatalf("disabled telemetry allocates %v per op, want 0", n)
	}
}

// TestSteadyStateObserveAllocsFree pins the hot observe path of a live
// collector: folding samples into the open window reuses the accumulator
// (the histogram counts slice persists across windows), so no per-sample
// allocations.
func TestSteadyStateObserveAllocsFree(t *testing.T) {
	c := newSimCol(1e9, 0) // one giant window: no seals during the run
	h := c.Histogram("lat", nil)
	r := c.Rate("n")
	ratio := c.Ratio("b")
	g := c.Gauge("v")
	h.Observe(1e-3) // warm the path
	if n := testing.AllocsPerRun(200, func() {
		h.Observe(42e-6)
		r.Inc()
		ratio.Observe(false)
		g.Set(0.25)
	}); n != 0 {
		t.Fatalf("steady-state observe allocates %v per op, want 0", n)
	}
}
