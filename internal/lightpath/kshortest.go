package lightpath

import (
	"repro/internal/graph"
	"repro/internal/wdm"
)

// KShortest returns up to k semilightpaths from s to t in non-decreasing
// Eq. 1 cost order, pairwise distinct in their (link, wavelength) sequences.
// It materialises the layered (node × wavelength) graph and runs Yen's
// algorithm on it; the k = 1 result coincides with Optimal. Used by
// alternate-routing policies that keep a ranked route list per node pair.
func KShortest(g *wdm.Network, s, t, k int) []*wdm.Semilightpath {
	if k <= 0 || s == t || s < 0 || t < 0 || s >= g.Nodes() || t >= g.Nodes() {
		return nil
	}
	w := g.W()
	// Layered vertices: (v, λ) → v*w+λ, plus super-source and super-sink.
	src := g.Nodes() * w
	dst := src + 1
	lg := graph.New(dst + 1)

	// Source edges: leave s on any out-link/available wavelength. Aux
	// carries link*w + λ so hops can be reconstructed.
	for _, id := range g.Out(s) {
		l := g.Link(id)
		l.Avail().ForEach(func(lam int) bool {
			lg.AddEdgeAux(src, l.To*w+lam, l.Cost(lam), id*w+lam)
			return true
		})
	}
	// Transit edges: (v, λ) → (u, λ') for each out-link of v, paying
	// conversion + traversal.
	for v := 0; v < g.Nodes(); v++ {
		if v == s {
			continue // paths re-entering s are not loopless anyway
		}
		conv := g.Converter(v)
		for lam := 0; lam < w; lam++ {
			from := v*w + lam
			if v == t {
				lg.AddEdgeAux(from, dst, 0, -1)
				continue
			}
			for _, id := range g.Out(v) {
				l := g.Link(id)
				l.Avail().ForEach(func(nlam int) bool {
					var cc float64
					if nlam != lam {
						if !conv.Allowed(lam, nlam) {
							return true
						}
						cc = conv.Cost(lam, nlam)
					}
					lg.AddEdgeAux(from, l.To*w+nlam, cc+l.Cost(nlam), id*w+nlam)
					return true
				})
			}
		}
	}

	paths := lg.Yen(src, dst, k)
	out := make([]*wdm.Semilightpath, 0, len(paths))
	for _, p := range paths {
		var hops []wdm.Hop
		for _, eid := range p {
			aux := lg.Edge(eid).Aux
			if aux >= 0 {
				hops = append(hops, wdm.Hop{Link: aux / w, Wavelength: aux % w})
			}
		}
		if len(hops) > 0 {
			out = append(out, &wdm.Semilightpath{Hops: hops})
		}
	}
	return out
}
