package check

// Shrink greedily minimises a failing instance: while the fails predicate
// keeps returning true it drops request-stream operations, removes links,
// renumbers away unused nodes, and reduces the wavelength count, restarting
// the strategy list after every round of progress. The predicate must be
// deterministic (the harness's instance runner is). budget caps the number
// of predicate evaluations (≤ 0 means 2000); the original instance is never
// mutated.
func Shrink(in *Instance, fails func(*Instance) bool, budget int) *Instance {
	if budget <= 0 {
		budget = 2000
	}
	cur := in.clone()
	try := func(cand *Instance) bool {
		if cand == nil || budget <= 0 || cand.Validate() != nil {
			return false
		}
		budget--
		if fails(cand) {
			cur = cand
			return true
		}
		return false
	}
	for progress := true; progress && budget > 0; {
		progress = false
		// Drop ops, newest first (a teardown goes alone; an establish takes
		// its teardown with it).
		for i := len(cur.Ops) - 1; i >= 0 && i < len(cur.Ops); i-- {
			if try(cur.dropOp(i)) {
				progress = true
			}
		}
		// Drop links.
		for i := len(cur.Links) - 1; i >= 0 && i < len(cur.Links); i-- {
			cand := cur.clone()
			cand.Links = append(cand.Links[:i], cand.Links[i+1:]...)
			if try(cand) {
				progress = true
			}
		}
		// Renumber away nodes nothing references any more.
		for v := cur.Nodes - 1; v >= 0 && cur.Nodes > 2; v-- {
			if try(cur.dropNode(v)) {
				progress = true
			}
		}
		// Peel off the top wavelength.
		for cur.W > 1 && try(cur.dropWavelength()) {
			progress = true
		}
	}
	return cur
}

// clone returns a deep copy of the instance.
func (in *Instance) clone() *Instance {
	c := *in
	c.Links = make([]LinkSpec, len(in.Links))
	for i, l := range in.Links {
		c.Links[i] = l
		if l.Lambdas != nil {
			c.Links[i].Lambdas = append([]int(nil), l.Lambdas...)
			c.Links[i].Costs = append([]float64(nil), l.Costs...)
		}
	}
	c.Ops = append([]Op(nil), in.Ops...)
	return &c
}

// dropOp removes op i (plus, for an establish, the teardown referencing it)
// and remaps the surviving teardown indices.
func (in *Instance) dropOp(i int) *Instance {
	c := in.clone()
	drop := make([]bool, len(c.Ops))
	drop[i] = true
	if c.Ops[i].Teardown < 0 {
		for j := i + 1; j < len(c.Ops); j++ {
			if c.Ops[j].Teardown == i {
				drop[j] = true
			}
		}
	}
	newIdx := make([]int, len(c.Ops))
	ops := c.Ops[:0:0]
	for j, op := range c.Ops {
		if drop[j] {
			newIdx[j] = -1
			continue
		}
		newIdx[j] = len(ops)
		ops = append(ops, op)
	}
	for j := range ops {
		if ops[j].Teardown >= 0 {
			ops[j].Teardown = newIdx[ops[j].Teardown]
		}
	}
	c.Ops = ops
	return c
}

// dropNode renumbers node v away, or returns nil when a link or an establish
// still references it.
func (in *Instance) dropNode(v int) *Instance {
	for _, l := range in.Links {
		if l.From == v || l.To == v {
			return nil
		}
	}
	for _, op := range in.Ops {
		if op.Teardown < 0 && (op.Src == v || op.Dst == v) {
			return nil
		}
	}
	c := in.clone()
	c.Nodes--
	for i := range c.Links {
		if c.Links[i].From > v {
			c.Links[i].From--
		}
		if c.Links[i].To > v {
			c.Links[i].To--
		}
	}
	for i := range c.Ops {
		if c.Ops[i].Teardown < 0 {
			if c.Ops[i].Src > v {
				c.Ops[i].Src--
			}
			if c.Ops[i].Dst > v {
				c.Ops[i].Dst--
			}
		}
	}
	return c
}

// dropWavelength removes the top wavelength λ = W−1. Heterogeneous links
// lose that wavelength (and vanish entirely when it was their last); a range
// converter's reach is clamped.
func (in *Instance) dropWavelength() *Instance {
	if in.W <= 1 {
		return nil
	}
	c := in.clone()
	c.W--
	if c.Conv == ConvRange && c.ConvRange >= c.W {
		c.ConvRange = c.W - 1
	}
	links := c.Links[:0:0]
	for _, l := range c.Links {
		if l.Lambdas != nil {
			var lams []int
			var costs []float64
			for j, lam := range l.Lambdas {
				if lam < c.W {
					lams = append(lams, lam)
					costs = append(costs, l.Costs[j])
				}
			}
			if len(lams) == 0 {
				continue
			}
			l.Lambdas, l.Costs = lams, costs
		}
		links = append(links, l)
	}
	c.Links = links
	return c
}
