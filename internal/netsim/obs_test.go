package netsim

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/explain"
	"repro/internal/trace"
)

// TestEventStreamJoinsFlightRecorder is the correlation contract: every
// connection-scoped event in the simulator's trace stream carries the obs
// request ID of the routing trace that produced (or blocked) the connection,
// and that ID resolves in the tracer's flight recorder to a trace with the
// matching status, endpoints, and — for accepted requests — an explain
// report payload.
func TestEventStreamJoinsFlightRecorder(t *testing.T) {
	buf := &trace.Buffer{}
	tr := obs.New(obs.Config{Capacity: 4096})
	sim := New(nsf(4), Config{
		Algorithm:   MinCost,
		Restoration: Active,
		Trace:       buf,
		Tracer:      tr,
	})
	m := sim.Run(poisson(14, 250, 30, 7))
	if m.Blocked == 0 {
		t.Fatal("want some blocked requests at this load; raise erlang")
	}

	accepts, blocks := 0, 0
	for _, e := range buf.Events() {
		switch e.Kind {
		case trace.Arrival, trace.Accept, trace.Block, trace.Depart:
			if e.Req < 1 {
				t.Fatalf("%s event for conn %d has req %d; want a traced request", e.Kind, e.Conn, e.Req)
			}
			tc := tr.Flight().Find(int64(e.Req))
			if tc == nil {
				t.Fatalf("%s event req %d not in the flight recorder", e.Kind, e.Req)
			}
			switch e.Kind {
			case trace.Accept:
				accepts++
				if tc.Status != obs.StatusOK {
					t.Fatalf("accept event req %d maps to status %q", e.Req, tc.Status)
				}
				rep, ok := tc.Payload.(*explain.Report)
				if !ok {
					t.Fatalf("accepted req %d payload is %T, want *explain.Report", e.Req, tc.Payload)
				}
				if rep.Algorithm != "min-cost" {
					t.Fatalf("req %d algorithm %q", e.Req, rep.Algorithm)
				}
			case trace.Block:
				blocks++
				if tc.Status != obs.StatusBlocked {
					t.Fatalf("block event req %d maps to status %q", e.Req, tc.Status)
				}
			}
		default:
			if e.Req != -1 {
				t.Fatalf("%s event has req %d; want -1 (no routing trace)", e.Kind, e.Req)
			}
		}
	}
	if accepts != m.Accepted || blocks != m.Blocked {
		t.Fatalf("event census accepts=%d blocks=%d vs metrics %d/%d", accepts, blocks, m.Accepted, m.Blocked)
	}
	if got := tr.Flight().Total(); got != int64(m.Offered) {
		t.Fatalf("flight recorder total %d, want one trace per offered request (%d)", got, m.Offered)
	}
}

// TestPassiveArrivalsAreTraced covers the passive discipline, which routes
// with lightpath.Optimal instead of the core router and therefore opens its
// own "passive-optimal" trace.
func TestPassiveArrivalsAreTraced(t *testing.T) {
	buf := &trace.Buffer{}
	tr := obs.New(obs.Config{Capacity: 1024})
	sim := New(nsf(4), Config{
		Algorithm:   MinCost,
		Restoration: Passive,
		Trace:       buf,
		Tracer:      tr,
	})
	m := sim.Run(poisson(14, 100, 10, 3))
	if m.Accepted == 0 {
		t.Fatal("no accepted requests")
	}
	for _, e := range buf.Events() {
		if e.Kind != trace.Accept {
			continue
		}
		tc := tr.Flight().Find(int64(e.Req))
		if tc == nil || tc.Kind != "passive-optimal" || tc.Status != obs.StatusOK {
			t.Fatalf("accept req %d: trace %+v", e.Req, tc)
		}
	}
}

// TestUntracedRunEmitsAbsentReq pins the -1 convention: with no Tracer
// configured, connection events carry req -1, not a fake ID.
func TestUntracedRunEmitsAbsentReq(t *testing.T) {
	buf := &trace.Buffer{}
	sim := New(nsf(4), Config{Algorithm: MinCost, Restoration: Active, Trace: buf})
	sim.Run(poisson(14, 50, 10, 3))
	for _, e := range buf.Events() {
		if e.Req != -1 {
			t.Fatalf("untraced run emitted %s with req %d", e.Kind, e.Req)
		}
	}
}
