package serve

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// SoakConfig parameterises RunSoak, the in-process load harness behind
// `wdmd -soak` and the CI soak gate.
type SoakConfig struct {
	// Requests is the total operation count across all clients.
	Requests int
	// Clients is the number of concurrent client goroutines (16 if 0).
	Clients int
	// Seed makes the workload deterministic: client i draws from
	// rand.New(rand.NewSource(Seed + i)).
	Seed int64
	// MaxLive caps each client's live connections; above it the client
	// tears down its oldest before provisioning (32 if 0).
	MaxLive int
	// RerouteEvery issues a reroute of a random live connection every n-th
	// operation per client (0 disables reroutes).
	RerouteEvery int
	// TeardownFrac is the probability a client with live connections issues
	// a teardown instead of a provision (0.45 if 0; negative disables
	// probabilistic teardowns). Without churn the network saturates and the
	// tail of the soak measures only blocking.
	TeardownFrac float64
	// Drain tears down every remaining connection after the load phase and
	// runs the engine's oracle audit.
	Drain bool
}

func (c *SoakConfig) teardownFrac() float64 {
	switch {
	case c.TeardownFrac > 0:
		return c.TeardownFrac
	case c.TeardownFrac < 0:
		return 0
	}
	return 0.45
}

func (c *SoakConfig) clients() int {
	if c.Clients > 0 {
		return c.Clients
	}
	return 16
}

func (c *SoakConfig) maxLive() int {
	if c.MaxLive > 0 {
		return c.MaxLive
	}
	return 32
}

// SoakReport aggregates one soak run.
type SoakReport struct {
	Requests   int     `json:"requests"`
	Clients    int     `json:"clients"`
	Seed       int64   `json:"seed"`
	Provisions int64   `json:"provisions"`
	Accepted   int64   `json:"accepted"`
	Blocked    int64   `json:"blocked"`
	Teardowns  int64   `json:"teardowns"`
	Reroutes   int64   `json:"reroutes"`
	Blocking   float64 `json:"blocking_probability"`
	P50Micros  float64 `json:"p50_us"`
	P99Micros  float64 `json:"p99_us"`
	Elapsed    float64 `json:"elapsed_seconds"`
	Throughput float64 `json:"requests_per_second"`
	Epochs     uint64  `json:"epochs"`
	Conflicts  int64   `json:"conflicts"`
	Retries    int64   `json:"retries"`
	Drained    bool    `json:"drained"`
}

func (r SoakReport) String() string {
	return fmt.Sprintf(
		"soak: %d requests, %d clients, seed %d: %d provisions (%d accepted, %d blocked, blocking %.4f), "+
			"%d teardowns, %d reroutes, p50 %.1fµs p99 %.1fµs, %.0f req/s over %.2fs, "+
			"%d epochs, %d conflicts, %d retries",
		r.Requests, r.Clients, r.Seed, r.Provisions, r.Accepted, r.Blocked, r.Blocking,
		r.Teardowns, r.Reroutes, r.P50Micros, r.P99Micros, r.Throughput, r.Elapsed,
		r.Epochs, r.Conflicts, r.Retries)
}

// RunSoak hammers a started engine with cfg.Requests seeded mixed
// operations from cfg.Clients goroutines, then (optionally) drains every
// live connection and audits. Work is claimed from a shared atomic counter,
// so the interleaving is racy on purpose while each client's random choices
// stay deterministic. Connection IDs are client<<32|k — unique across
// clients by construction.
func RunSoak(e *Engine, cfg SoakConfig) (SoakReport, error) {
	var (
		next    atomic.Int64
		lat     = metrics.NewHistogram(nil) // atomic; shared across clients
		prov    atomic.Int64
		acc     atomic.Int64
		blocked atomic.Int64
		tears   atomic.Int64
		routes  atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients(); c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(client)))
			var live []int64
			var k int64
			for {
				n := next.Add(1)
				if n > int64(cfg.Requests) {
					break
				}
				t0 := time.Now()
				switch {
				case cfg.RerouteEvery > 0 && n%int64(cfg.RerouteEvery) == 0 && len(live) > 0:
					id := live[rng.Intn(len(live))]
					e.Reroute(id)
					routes.Add(1)
				case len(live) >= cfg.maxLive() ||
					(len(live) > 0 && rng.Float64() < cfg.teardownFrac()):
					id := live[0]
					live = live[1:]
					e.Teardown(id)
					tears.Add(1)
				default:
					s := rng.Intn(e.Nodes())
					d := rng.Intn(e.Nodes() - 1)
					if d >= s {
						d++
					}
					k++
					id := int64(client)<<32 | k
					resp := e.Provision(Request{ID: id, Src: s, Dst: d})
					prov.Add(1)
					if resp.Accepted {
						acc.Add(1)
						live = append(live, id)
					} else {
						blocked.Add(1)
					}
				}
				lat.Observe(time.Since(t0).Seconds())
			}
			// Release this client's tail so Drain sees only what the load
			// phase intentionally left behind.
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := SoakReport{
		Requests:   cfg.Requests,
		Clients:    cfg.clients(),
		Seed:       cfg.Seed,
		Provisions: prov.Load(),
		Accepted:   acc.Load(),
		Blocked:    blocked.Load(),
		Teardowns:  tears.Load(),
		Reroutes:   routes.Load(),
		P50Micros:  lat.Quantile(0.50) * 1e6,
		P99Micros:  lat.Quantile(0.99) * 1e6,
		Elapsed:    elapsed.Seconds(),
	}
	if rep.Provisions > 0 {
		rep.Blocking = float64(rep.Blocked) / float64(rep.Provisions)
	}
	if rep.Elapsed > 0 {
		rep.Throughput = float64(cfg.Requests) / rep.Elapsed
	}
	st := e.Status()
	rep.Epochs, rep.Conflicts, rep.Retries = st.Epoch, st.Conflicts, st.Retries

	if cfg.Drain {
		for _, id := range e.LiveIDs() {
			if resp := e.Teardown(id); !resp.Accepted {
				return rep, fmt.Errorf("drain: teardown of %d failed: %s", id, resp.Reason)
			}
		}
		if err := e.Audit(); err != nil {
			return rep, fmt.Errorf("post-drain audit: %w", err)
		}
		rep.Drained = true
	}
	return rep, nil
}
