// Package topofile reads and writes WDM network descriptions as JSON, so
// the command-line tools can route on user-supplied topologies and
// reproduce results from saved instances. The format mirrors §2 of the
// paper: per-link wavelength sets with per-wavelength costs and a per-node
// conversion discipline.
//
//	{
//	  "nodes": 4,
//	  "wavelengths": 2,
//	  "converter": {"kind": "full", "cost": 0.5},
//	  "links": [
//	    {"from": 0, "to": 1, "cost": 1.0, "bidir": true},
//	    {"from": 1, "to": 2, "wavelengths": [0], "costs": [2.5]}
//	  ]
//	}
//
// A link either gives a uniform "cost" for all wavelengths or explicit
// parallel "wavelengths"/"costs" arrays. "bidir": true adds the reverse
// link with the same parameters.
package topofile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/wdm"
)

// ConverterSpec selects the conversion discipline installed at every node.
type ConverterSpec struct {
	// Kind is "full" (default), "none", or "range".
	Kind string `json:"kind"`
	// Cost is the conversion cost (full: flat; range: per index step).
	Cost float64 `json:"cost"`
	// Range is the maximum wavelength-index distance for kind "range".
	Range int `json:"range,omitempty"`
}

// LinkSpec describes one directed link (or a bidirectional pair).
type LinkSpec struct {
	From int `json:"from"`
	To   int `json:"to"`
	// Cost is the uniform per-wavelength cost; used when Wavelengths is
	// empty (all wavelengths installed).
	Cost float64 `json:"cost,omitempty"`
	// Wavelengths/Costs list an explicit partial installation.
	Wavelengths []int     `json:"wavelengths,omitempty"`
	Costs       []float64 `json:"costs,omitempty"`
	// Bidir adds the reverse link with identical parameters.
	Bidir bool `json:"bidir,omitempty"`
}

// File is the on-disk topology description.
type File struct {
	Nodes       int           `json:"nodes"`
	Wavelengths int           `json:"wavelengths"`
	Converter   ConverterSpec `json:"converter"`
	Links       []LinkSpec    `json:"links"`
}

// Decode parses a topology description and builds the network.
func Decode(r io.Reader) (*wdm.Network, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("topofile: %w", err)
	}
	return f.Build()
}

// Load reads a topology file from disk.
func Load(path string) (*wdm.Network, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("topofile: %w", err)
	}
	defer fh.Close()
	return Decode(fh)
}

// Build validates the description and constructs the network.
func (f *File) Build() (*wdm.Network, error) {
	if f.Nodes < 1 {
		return nil, fmt.Errorf("topofile: nodes must be ≥ 1, got %d", f.Nodes)
	}
	if f.Wavelengths < 1 {
		return nil, fmt.Errorf("topofile: wavelengths must be ≥ 1, got %d", f.Wavelengths)
	}
	net := wdm.NewNetwork(f.Nodes, f.Wavelengths)

	switch f.Converter.Kind {
	case "", "full":
		if f.Converter.Cost < 0 {
			return nil, fmt.Errorf("topofile: negative conversion cost")
		}
		net.SetAllConverters(wdm.NewFullConverter(f.Wavelengths, f.Converter.Cost))
	case "none":
		net.SetAllConverters(wdm.NoConverter{})
	case "range":
		if f.Converter.Range < 0 || f.Converter.Cost < 0 {
			return nil, fmt.Errorf("topofile: invalid range converter")
		}
		net.SetAllConverters(wdm.NewRangeConverter(f.Converter.Range, f.Converter.Cost))
	default:
		return nil, fmt.Errorf("topofile: unknown converter kind %q", f.Converter.Kind)
	}

	addOne := func(l LinkSpec) error {
		if l.From < 0 || l.From >= f.Nodes || l.To < 0 || l.To >= f.Nodes {
			return fmt.Errorf("topofile: link (%d,%d) out of range", l.From, l.To)
		}
		if l.From == l.To {
			return fmt.Errorf("topofile: self-loop at node %d", l.From)
		}
		if len(l.Wavelengths) == 0 {
			if l.Cost <= 0 {
				return fmt.Errorf("topofile: link (%d,%d) needs a positive cost", l.From, l.To)
			}
			net.AddUniformLink(l.From, l.To, l.Cost)
			return nil
		}
		if len(l.Wavelengths) != len(l.Costs) {
			return fmt.Errorf("topofile: link (%d,%d) wavelengths/costs length mismatch", l.From, l.To)
		}
		for i, lam := range l.Wavelengths {
			if lam < 0 || lam >= f.Wavelengths {
				return fmt.Errorf("topofile: link (%d,%d) wavelength %d out of range", l.From, l.To, lam)
			}
			if l.Costs[i] < 0 {
				return fmt.Errorf("topofile: link (%d,%d) negative cost", l.From, l.To)
			}
		}
		net.AddLink(l.From, l.To, l.Wavelengths, l.Costs)
		return nil
	}
	for _, l := range f.Links {
		if err := addOne(l); err != nil {
			return nil, err
		}
		if l.Bidir {
			rev := l
			rev.From, rev.To = l.To, l.From
			rev.Bidir = false
			if err := addOne(rev); err != nil {
				return nil, err
			}
		}
	}
	return net, nil
}

// Describe converts a network back into a File (one LinkSpec per directed
// link, explicit wavelength lists). Converter settings cannot be recovered
// from the interface, so the caller supplies the spec.
func Describe(net *wdm.Network, conv ConverterSpec) *File {
	f := &File{
		Nodes:       net.Nodes(),
		Wavelengths: net.W(),
		Converter:   conv,
	}
	for id := 0; id < net.Links(); id++ {
		l := net.Link(id)
		spec := LinkSpec{From: l.From, To: l.To}
		l.Lambda().ForEach(func(lam int) bool {
			spec.Wavelengths = append(spec.Wavelengths, lam)
			spec.Costs = append(spec.Costs, l.Cost(lam))
			return true
		})
		f.Links = append(f.Links, spec)
	}
	return f
}

// Encode writes the description as indented JSON.
func (f *File) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Save writes a topology description to disk.
func Save(path string, f *File) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("topofile: %w", err)
	}
	err = f.Encode(fh)
	if cerr := fh.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("topofile: %w", cerr)
	}
	return err
}
