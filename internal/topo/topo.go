// Package topo generates the evaluation topologies: the 14-node NSFNET and a
// 20-node ARPA-2-style backbone (the standard wide-area test networks of the
// WDM literature), plus parametric rings, grids, Waxman random graphs and
// complete graphs. Every generator returns a fresh residual network with all
// wavelengths available, bidirectional fiber (one directed link each way),
// and full wavelength conversion.
package topo

import (
	"math"
	"math/rand"

	"repro/internal/wdm"
)

// Config sets the optical parameters common to all generators.
type Config struct {
	// W is the number of wavelengths per fiber (required, ≥ 1).
	W int
	// LinkCost is the uniform per-wavelength traversal cost of a unit-length
	// link (default 1). Generators with geometric lengths scale it.
	LinkCost float64
	// ConvCost is the uniform wavelength-conversion cost at every node
	// (default 0.5; the Theorem 2 regime wants it ≤ the cheapest link).
	ConvCost float64
}

func (c Config) linkCost() float64 {
	if c.LinkCost == 0 {
		return 1
	}
	return c.LinkCost
}

func (c Config) convCost() float64 {
	if c.ConvCost == 0 {
		return 0.5
	}
	return c.ConvCost
}

func newNet(n int, c Config) *wdm.Network {
	net := wdm.NewNetwork(n, c.W)
	net.SetAllConverters(wdm.NewFullConverter(c.W, c.convCost()))
	return net
}

// nsfnetEdges is the classic 14-node, 21-span NSFNET T1 backbone
// (0-indexed).
var nsfnetEdges = [][2]int{
	{0, 1}, {0, 2}, {0, 7},
	{1, 2}, {1, 3},
	{2, 5},
	{3, 4}, {3, 10},
	{4, 5}, {4, 6},
	{5, 9}, {5, 12},
	{6, 7},
	{7, 8},
	{8, 9}, {8, 11}, {8, 13},
	{10, 11}, {10, 12},
	{11, 13},
	{12, 13},
}

// NSFNET returns the 14-node NSFNET backbone with 21 bidirectional spans
// (42 directed links) at uniform cost.
func NSFNET(c Config) *wdm.Network {
	net := newNet(14, c)
	for _, e := range nsfnetEdges {
		net.AddUniformPair(e[0], e[1], c.linkCost())
	}
	return net
}

// arpa2Edges is a 20-node ARPA-2-style backbone with 31 spans, after the
// topology commonly used in survivable-WDM studies.
var arpa2Edges = [][2]int{
	{0, 1}, {0, 2}, {0, 19},
	{1, 2}, {1, 3},
	{2, 4},
	{3, 5}, {3, 6},
	{4, 6}, {4, 7},
	{5, 8},
	{6, 9},
	{7, 10},
	{8, 9}, {8, 11},
	{9, 12},
	{10, 12}, {10, 13},
	{11, 14},
	{12, 15},
	{13, 16},
	{14, 15}, {14, 17},
	{15, 16}, {15, 18},
	{16, 19},
	{17, 18},
	{18, 19},
	{5, 11}, {7, 13}, {17, 19},
}

// ARPA2 returns a 20-node ARPA-2-style backbone with 31 bidirectional spans.
func ARPA2(c Config) *wdm.Network {
	net := newNet(20, c)
	for _, e := range arpa2Edges {
		net.AddUniformPair(e[0], e[1], c.linkCost())
	}
	return net
}

// Ring returns a bidirectional n-node ring — the minimal topology in which
// every request admits exactly one edge-disjoint pair.
func Ring(n int, c Config) *wdm.Network {
	if n < 3 {
		panic("topo: ring needs at least 3 nodes")
	}
	net := newNet(n, c)
	for v := 0; v < n; v++ {
		net.AddUniformPair(v, (v+1)%n, c.linkCost())
	}
	return net
}

// Grid returns an r×cols bidirectional mesh.
func Grid(r, cols int, c Config) *wdm.Network {
	if r < 1 || cols < 1 {
		panic("topo: invalid grid dimensions")
	}
	net := newNet(r*cols, c)
	id := func(i, j int) int { return i*cols + j }
	for i := 0; i < r; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				net.AddUniformPair(id(i, j), id(i, j+1), c.linkCost())
			}
			if i+1 < r {
				net.AddUniformPair(id(i, j), id(i+1, j), c.linkCost())
			}
		}
	}
	return net
}

// Complete returns the complete bidirectional graph on n nodes.
func Complete(n int, c Config) *wdm.Network {
	if n < 2 {
		panic("topo: complete graph needs at least 2 nodes")
	}
	net := newNet(n, c)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			net.AddUniformPair(u, v, c.linkCost())
		}
	}
	return net
}

// Waxman returns a random Waxman graph: n nodes placed uniformly in the unit
// square, span (u,v) present with probability β·exp(−d(u,v)/(α·√2)), plus a
// random-order ring to guarantee biconnectivity. Link costs scale with
// Euclidean length. Deterministic for a given seed.
func Waxman(n int, alpha, beta float64, seed int64, c Config) *wdm.Network {
	if n < 3 {
		panic("topo: waxman needs at least 3 nodes")
	}
	if alpha <= 0 || beta <= 0 || beta > 1 {
		panic("topo: invalid waxman parameters")
	}
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	dist := func(u, v int) float64 {
		return math.Hypot(xs[u]-xs[v], ys[u]-ys[v])
	}
	net := newNet(n, c)
	added := map[[2]int]bool{}
	addSpan := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		if u == v || added[[2]int{u, v}] {
			return
		}
		added[[2]int{u, v}] = true
		// Geometric cost, floored so zero-length spans stay positive.
		cost := c.linkCost() * (0.1 + dist(u, v))
		net.AddUniformPair(u, v, cost)
	}
	// Connectivity backbone: ring over a random permutation.
	perm := rng.Perm(n)
	for i := range perm {
		addSpan(perm[i], perm[(i+1)%n])
	}
	L := math.Sqrt2
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < beta*math.Exp(-dist(u, v)/(alpha*L)) {
				addSpan(u, v)
			}
		}
	}
	return net
}
