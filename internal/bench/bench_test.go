package bench

import (
	"strconv"
	"strings"
	"testing"
)

func quick() Options { return Options{Quick: true, Seeds: 2} }

func TestRegistryCompleteAndOrdered(t *testing.T) {
	reg := Registry()
	want := []string{"F1", "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "E19"}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(reg), len(want))
	}
	for i, e := range reg {
		if e.ID != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	tb, err := Run("f1", Options{})
	if err != nil || tb.ID != "F1" {
		t.Fatalf("Run(f1) = %v, %v", tb, err)
	}
	if _, err := Run("E99", Options{}); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bbbb"}, Notes: "n"}
	tb.AddRow("1", "2")
	s := tb.String()
	for _, want := range []string{"== X: demo ==", "a", "bbbb", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}

// parsePct converts "12.3%" to 0.123.
func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent %q", s)
	}
	return v / 100
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float %q", s)
	}
	return v
}

func TestF1InventoryMatches(t *testing.T) {
	tb := F1(quick())
	for _, row := range tb.Rows {
		if row[1] == "conv edges" {
			continue // bounded, not equal
		}
		if row[3] != row[4] {
			t.Fatalf("row %v: predicted %s != built %s", row, row[3], row[4])
		}
	}
}

func TestE1RatioWithinTheorem2(t *testing.T) {
	tb := E1(Options{Quick: true, Seeds: 8})
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tb.Rows {
		if row[3] == "0" {
			continue
		}
		if maxR := parseF(t, row[6]); maxR > 2.000001 {
			t.Fatalf("max ratio %g violates Theorem 2 (row %v)", maxR, row)
		}
		if within := parsePct(t, row[7]); within < 1 {
			t.Fatalf("ratio bound violated in %v", row)
		}
	}
}

func TestE3LoadRatioWithinTheorem3(t *testing.T) {
	tb := E3(Options{Quick: true, Seeds: 8})
	for _, row := range tb.Rows {
		if row[3] == "0" {
			continue
		}
		if within := parsePct(t, row[6]); within < 0.99 {
			t.Fatalf("load ratio bound violated: %v", row)
		}
	}
}

func TestE6RefinementNeverWorse(t *testing.T) {
	tb := E6(Options{Quick: true, Seeds: 8})
	for _, row := range tb.Rows {
		if row[2] == "0" {
			continue
		}
		if r := parseF(t, row[3]); r > 1.000001 {
			t.Fatalf("refined/naive ratio %g > 1: %v", r, row)
		}
	}
}

func TestE7BaselineNeverCheaper(t *testing.T) {
	tb := E7(Options{Quick: true, Seeds: 5})
	foundTrap := false
	for _, row := range tb.Rows {
		if row[0] == "trap-6node" {
			foundTrap = true
			if parsePct(t, row[3]) != 0 {
				t.Fatalf("two-step should always fail on the trap: %v", row)
			}
			if parsePct(t, row[2]) != 1 {
				t.Fatalf("approx should always succeed on the trap: %v", row)
			}
		}
	}
	if !foundTrap {
		t.Fatal("trap case missing")
	}
}

func TestE9Agreement(t *testing.T) {
	tb := E9(Options{Quick: true, Seeds: 3})
	for _, row := range tb.Rows {
		if parsePct(t, row[3]) != 1 {
			t.Fatalf("ILP and exhaustive disagree: %v", row)
		}
	}
}

// Smoke-run the remaining (simulation-heavy) experiments at minimal scale.
func TestSimulationExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments are slow")
	}
	for _, id := range []string{"E2", "E4", "E5", "E8", "E10"} {
		tb, err := Run(id, quick())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		if tb.String() == "" {
			t.Fatalf("%s rendered empty", id)
		}
	}
}

func TestAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite is slow")
	}
	tables := All(Options{Quick: true, Seeds: 2})
	if len(tables) != len(Registry()) {
		t.Fatalf("All returned %d tables", len(tables))
	}
}

func TestE11NodeDisjointImpliesEdgeDisjoint(t *testing.T) {
	tb := E11(Options{Quick: true, Seeds: 10})
	for _, row := range tb.Rows {
		okE := parsePct(t, row[2])
		okN := parsePct(t, row[3])
		if okN > okE+1e-9 {
			t.Fatalf("node-disjoint success exceeds edge-disjoint: %v", row)
		}
	}
}

func TestE12ImprovementHelps(t *testing.T) {
	tb := E12(Options{Quick: true, Seeds: 3})
	var base, improved float64
	var haveBase, haveImproved bool
	for _, row := range tb.Rows {
		if row[0] == "in-order" && row[1] == "0" {
			base = parseF(t, row[3])
			haveBase = true
		}
		if row[0] == "in-order" && row[1] == "3" {
			improved = parseF(t, row[3])
			haveImproved = true
		}
	}
	if !haveBase || !haveImproved {
		t.Fatal("rows missing")
	}
	if improved > base+1e-9 {
		t.Fatalf("improvement increased mean cost: %g > %g", improved, base)
	}
}

func TestE13ConversionGain(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	tb := E13(Options{Quick: true, Seeds: 3})
	// Full conversion never blocks more than no conversion at the same W.
	var none, full float64
	for _, row := range tb.Rows {
		if row[1] != "4" {
			continue
		}
		switch row[0] {
		case "none":
			none = parsePct(t, row[2])
		case "full":
			full = parsePct(t, row[2])
		}
	}
	if full > none+1e-9 {
		t.Fatalf("full conversion blocks more than none: %g > %g", full, none)
	}
}

func TestE14AdaptiveNeverWorseThanFixedK1(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	tb := E14(Options{Quick: true, Seeds: 3})
	var adaptive, fixed1 float64
	for _, row := range tb.Rows {
		switch row[1] {
		case "adaptive (§3.3)":
			adaptive = parsePct(t, row[2])
		case "fixed-alt k=1":
			fixed1 = parsePct(t, row[2])
		}
	}
	if adaptive > fixed1+1e-9 {
		t.Fatalf("adaptive blocking %g exceeds fixed k=1 %g", adaptive, fixed1)
	}
}

func TestE15SavingsNonNegative(t *testing.T) {
	tb := E15(Options{Quick: true, Seeds: 2})
	for _, row := range tb.Rows {
		if s := parsePct(t, row[6]); s < 0 {
			t.Fatalf("negative sharing savings: %v", row)
		}
		if parseF(t, row[5]) > parseF(t, row[4])+1e-9 {
			t.Fatalf("reserved exceeds dedicated demand: %v", row)
		}
	}
}

func TestMarkdownAndCSVRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Columns: []string{"a", "b"}, Notes: "n"}
	tb.AddRow("1", "va,l\"ue")
	md := tb.Markdown()
	for _, want := range []string{"### X — demo", "| a | b |", "| 1 |", "*n*"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "a,b\n") {
		t.Fatalf("csv header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, `"va,l""ue"`) {
		t.Fatalf("csv quoting wrong:\n%s", csv)
	}
}

func TestE16AwareNeverWorse(t *testing.T) {
	tb := E16(Options{Quick: true, Seeds: 4})
	var oblivious, aware float64
	for _, row := range tb.Rows {
		switch row[1] {
		case "edge-disjoint (§3.3)":
			oblivious = parseF(t, row[4])
		case "srlg-aware":
			aware = parseF(t, row[4])
		}
	}
	if aware > oblivious+1e-9 {
		t.Fatalf("srlg-aware outage rate %g exceeds oblivious %g", aware, oblivious)
	}
	if aware != 0 {
		t.Fatalf("srlg-aware must have zero outages by construction, got %g", aware)
	}
}

func TestE17SurvivalMonotoneInK(t *testing.T) {
	tb := E17(Options{Quick: true, Seeds: 5})
	prev2 := -1.0
	for _, row := range tb.Rows {
		if row[1] == "0.0%" {
			continue
		}
		s2 := parsePct(t, row[4])
		if s2 < prev2-0.05 { // small tolerance: different feasible pair sets
			t.Fatalf("double-failure survival decreased with k: %v", tb.Rows)
		}
		prev2 = s2
	}
}

func TestE19ReconfigNeverWorsens(t *testing.T) {
	tb := E19(Options{Quick: true, Seeds: 3})
	for _, row := range tb.Rows {
		if parseF(t, row[2]) > parseF(t, row[1])+1e-9 {
			t.Fatalf("reconfiguration worsened load: %v", row)
		}
	}
}
