package rules

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"repro/internal/lint"
)

// AtomicField guards against mixed atomic/plain access to a field. A struct
// field that is ever accessed through the function-style sync/atomic API
// (atomic.LoadUint64(&s.f), atomic.AddInt64(&s.f), ...) is a synchronization
// point: every other access must also go through sync/atomic, or the plain
// read races with the atomic write and the compiler is free to tear, cache,
// or reorder it. The typed atomics (atomic.Int64, atomic.Pointer[T]) make
// this impossible by construction — which is why the daemon uses them — but
// the function-style API offers no such protection, so this rule provides
// it: it collects every field whose address escapes into a sync/atomic call
// anywhere in the analyzed packages, then flags every plain read or write of
// those fields (including keyed composite-literal initialization, which is a
// plain write like any other).
var AtomicField = &lint.Analyzer{
	Name:      "atomicfield",
	Doc:       "struct fields accessed via function-style sync/atomic must never be read or written non-atomically",
	RunGlobal: runAtomicField,
}

func runAtomicField(gp *lint.GlobalPass) {
	// Phase 1: find every field whose address is passed to a sync/atomic
	// function, remembering the first such call as the witness and the exact
	// selector nodes that are sanctioned atomic accesses.
	atomicUse := map[*types.Var]string{} // field -> "atomic.AddUint64 at file:line"
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, pkg := range gp.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := afAtomicFunc(pkg.Info, call)
				if fn == nil {
					return true
				}
				for _, arg := range call.Args {
					sel := afAddressedField(arg)
					if sel == nil {
						continue
					}
					field := afFieldObj(pkg.Info, sel)
					if field == nil {
						continue
					}
					sanctioned[sel] = true
					if _, seen := atomicUse[field]; !seen {
						p := pkg.Fset.Position(call.Pos())
						atomicUse[field] = fmt.Sprintf("atomic.%s at %s:%d",
							fn.Name(), filepath.Base(p.Filename), p.Line)
					}
				}
				return true
			})
		}
	}
	if len(atomicUse) == 0 {
		return
	}

	// Phase 2: every other access to those fields is a finding — selector
	// reads/writes outside the sanctioned sites, and keyed composite-literal
	// initialization.
	for _, pkg := range gp.Pkgs {
		for _, f := range pkg.Files {
			lint.WalkStack(f, func(node ast.Node, stack []ast.Node) {
				switch x := node.(type) {
				case *ast.SelectorExpr:
					field := afFieldObj(pkg.Info, x)
					if field == nil || sanctioned[x] {
						return
					}
					witness, ok := atomicUse[field]
					if !ok {
						return
					}
					gp.Reportf(pkg, x.Sel.Pos(),
						"field %s is accessed atomically (%s) but read or written non-atomically here; every access to it must go through sync/atomic",
						field.Name(), witness)
				case *ast.KeyValueExpr:
					// S{f: v} inside a composite literal is a plain write.
					key, ok := x.Key.(*ast.Ident)
					if !ok {
						return
					}
					if len(stack) == 0 {
						return
					}
					if _, inLit := stack[len(stack)-1].(*ast.CompositeLit); !inLit {
						return
					}
					field, _ := pkg.Info.Uses[key].(*types.Var)
					if field == nil || !field.IsField() {
						return
					}
					witness, ok2 := atomicUse[field]
					if !ok2 {
						return
					}
					gp.Reportf(pkg, key.Pos(),
						"field %s is accessed atomically (%s) but initialized non-atomically here; zero the field and publish it with an atomic store",
						field.Name(), witness)
				}
			})
		}
	}
}

// afAtomicFunc returns the package-level sync/atomic function call resolves
// to, or nil. Methods on the typed atomics return nil: values of those types
// cannot be accessed non-atomically in the first place.
func afAtomicFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return nil
	}
	return fn
}

// afAddressedField unwraps &x.f (possibly parenthesized) to the selector.
func afAddressedField(arg ast.Expr) *ast.SelectorExpr {
	u, ok := unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, _ := unparen(u.X).(*ast.SelectorExpr)
	return sel
}

// afFieldObj returns the struct field sel selects, or nil for non-field
// selections (methods, package members).
func afFieldObj(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
