// Package bench regenerates every experiment in DESIGN.md's per-experiment
// index (F1, E1–E19). The paper itself publishes no measured tables — it is
// an algorithms paper whose only figure illustrates the auxiliary-graph
// construction — so each experiment here regenerates a quantitative claim
// (approximation ratios, complexity scaling, construction inventory) or a
// synthetic evaluation of the behaviour the paper argues for (fewer
// reconfigurations, faster restoration, lower blocking). EXPERIMENTS.md
// records claim-vs-measured for each.
package bench

import (
	"fmt"
	"strings"
)

// Options scales an experiment run.
type Options struct {
	// Quick shrinks instance sizes and seed counts so the whole suite runs
	// in seconds (used by tests); the full configuration is the default.
	Quick bool
	// Seeds overrides the number of random repetitions (0 = experiment
	// default).
	Seeds int
}

func (o Options) seeds(full, quick int) int {
	if o.Seeds > 0 {
		return o.Seeds
	}
	if o.Quick {
		return quick
	}
	return full
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Experiment is a runnable experiment generator.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) *Table
}

// Registry lists every experiment in DESIGN.md order.
func Registry() []Experiment {
	return []Experiment{
		{"F1", "Auxiliary-graph construction inventory (Figure 1)", F1},
		{"E1", "Approximation ratio vs exact optimum (Theorem 2)", E1},
		{"E2", "Running-time scaling (Theorem 1)", E2},
		{"E3", "Load ratio vs exact min load (Theorem 3)", E3},
		{"E4", "Reconfiguration count: cost-only vs load-aware (§4)", E4},
		{"E5", "Active vs passive restoration (§1)", E5},
		{"E6", "Lemma 2 refinement improvement", E6},
		{"E7", "Suurballe-based routing vs two-step baseline", E7},
		{"E8", "Exponential congestion-weight base ablation (§4.1)", E8},
		{"E9", "ILP exact solver vs exhaustive oracle (§3.1)", E9},
		{"E10", "Blocking probability vs offered load", E10},
		{"E11", "Edge-disjoint vs node-disjoint protection (§1)", E11},
		{"E12", "Static provisioning: ordering and improvement ablation", E12},
		{"E13", "Wavelength-conversion gain (Lemma 1 regime vs §3.3 regime)", E13},
		{"E14", "Adaptive vs fixed-alternate robust routing", E14},
		{"E15", "Dedicated vs shared backup capacity (SBPP extension)", E15},
		{"E16", "SRLG-aware vs SRLG-oblivious protection", E16},
		{"E17", "Protection level k: capacity vs multi-failure survival", E17},
		{"E18", "Traffic-model sensitivity: uniform vs gravity vs heavy-tailed", E18},
		{"E19", "Reconfiguration gain after cost-only vs load-aware loading", E19},
	}
}

// Run executes the experiment with the given ID.
func Run(id string, o Options) (*Table, error) {
	for _, e := range Registry() {
		if strings.EqualFold(e.ID, id) {
			return e.Run(o), nil
		}
	}
	return nil, fmt.Errorf("bench: unknown experiment %q", id)
}

// All runs every experiment.
func All(o Options) []*Table {
	reg := Registry()
	out := make([]*Table, len(reg))
	for i, e := range reg {
		out[i] = e.Run(o)
	}
	return out
}

// fmtF formats a float compactly.
func fmtF(x float64) string { return fmt.Sprintf("%.4g", x) }

// fmtPct formats a fraction as a percentage.
func fmtPct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// Markdown renders the table as GitHub-flavoured markdown (used to refresh
// EXPERIMENTS.md).
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "\n*%s*\n", t.Notes)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row. Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRec := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRec(t.Columns)
	for _, row := range t.Rows {
		writeRec(row)
	}
	return b.String()
}
