package workload

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestParseMatrix(t *testing.T) {
	in := `
# 3-node gravity-ish matrix
0 2 1   # row 0
2 0 0.5
1 0.5 0
`
	m, err := ParseMatrix(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0, 2, 1}, {2, 0, 0.5}, {1, 0.5, 0}}
	if !reflect.DeepEqual(m.Weight, want) {
		t.Fatalf("got %v, want %v", m.Weight, want)
	}
	// The parsed matrix must drive MatrixPoisson without panicking.
	reqs := MatrixPoisson(MatrixConfig{Matrix: m, ArrivalRate: 1, MeanHolding: 1, Count: 50, Seed: 1})
	for _, r := range reqs {
		if r.Src == r.Dst || r.Src < 0 || r.Src >= 3 || r.Dst < 0 || r.Dst >= 3 {
			t.Fatalf("bad request endpoints %d→%d", r.Src, r.Dst)
		}
	}
}

func TestParseMatrixForcesDiagonalZero(t *testing.T) {
	m, err := ParseMatrix(strings.NewReader("5 1\n1 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Weight[0][0] != 0 || m.Weight[1][1] != 0 {
		t.Fatalf("diagonal not zeroed: %v", m.Weight)
	}
}

func TestParseMatrixRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"single row":    "0 1\n",
		"ragged":        "0 1\n1 0 2\n",
		"non-square":    "0 1 2\n1 0 2\n",
		"negative":      "0 -1\n1 0\n",
		"nan":           "0 NaN\n1 0\n",
		"inf":           "0 +Inf\n1 0\n",
		"garbage":       "0 x\n1 0\n",
		"all zero":      "0 0\n0 0\n",
		"diagonal only": "7 0\n0 7\n",
	}
	for name, s := range cases {
		if _, err := ParseMatrix(strings.NewReader(s)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestMatrixEncodeRoundTrip(t *testing.T) {
	src := NewGravityMatrix([]float64{1, math.Pi, 0.001, 42})
	var buf bytes.Buffer
	if err := src.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseMatrix(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\nencoded:\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(src.Weight, back.Weight) {
		t.Fatalf("round trip changed the matrix:\nin:  %v\nout: %v", src.Weight, back.Weight)
	}
}
