// Package serve is a fixture standing in for the daemon engine: Close drains
// the request loop and returns the first telemetry sink error, so dropping
// it loses the tail of the recorded curves.
package serve

// Engine is the fixture stand-in for serve.Engine.
type Engine struct {
	open bool
}

// Start launches the engine.
func (e *Engine) Start() error {
	e.open = true
	return nil
}

// Close drains in-flight work and flushes telemetry, returning the first
// sink error.
func (e *Engine) Close() error {
	e.open = false
	return nil
}
