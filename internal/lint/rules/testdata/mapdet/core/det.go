// Package core is a fixture deterministic package: map iteration must feed a
// sorted slice before anything order-sensitive happens.
package core

import "sort"

// SortedKeys collects keys and sorts them after the loop: clean.
func SortedKeys(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// SumCosts folds map values in iteration order: finding.
func SumCosts(m map[int]float64) float64 {
	total := 0.0
	for _, c := range m {
		total += c
	}
	return total
}

// CountLive only counts, which is order-insensitive; the directive records it.
func CountLive(m map[int]bool) int {
	n := 0
	//wdmlint:ignore mapdet counting is commutative, order cannot leak
	for _, live := range m {
		if live {
			n++
		}
	}
	return n
}
