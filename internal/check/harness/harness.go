// Package harness is the randomized differential driver of the verification
// subsystem: it generates instances with internal/check, routes every
// request through the production engine twice — once with a fresh
// core.Router per call and once with a single warm router whose skeleton
// caches and workspaces carry across the whole stream — asserts every
// invariant the oracle knows about, and on small Theorem-2-eligible
// instances compares against the exact solvers to certify optimality of the
// exact pair and the factor-2 bound of the approximation. Failures are
// shrunk to minimal instances and reported as JSON-serialisable artifacts.
package harness

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/wdm"
)

// Config tunes a harness run.
type Config struct {
	// N is the number of random instances (default 100).
	N int
	// Seed drives the instance generator.
	Seed int64
	// MaxNodes caps instance size (default 7).
	MaxNodes int
	// Exact enables comparison against exact.Exhaustive (and, on the
	// smallest instances, exact.ILP) for min-cost requests on
	// Theorem-2-eligible instances.
	Exact bool
	// MaxRoutes caps exact route enumeration (default 2000); comparisons
	// that would truncate are skipped, never failed.
	MaxRoutes int
	// NoShrink skips minimisation of failing instances.
	NoShrink bool
	// ShrinkBudget caps shrinking predicate evaluations (default 2000).
	ShrinkBudget int
	// MaxFailures stops the run early after this many failing instances
	// (default 5).
	MaxFailures int

	// Candidates, when positive, adds a third routing arm: a stream-long
	// router with the candidate-path fast tier enabled (k = Candidates). The
	// arm routes every request on the fresh arm's residual network without
	// establishing — same state, so its outcome is directly comparable: it
	// must agree on feasibility (the tier falls back to exact routing rather
	// than block), satisfy every legality/disjointness invariant, and stay
	// within CandidateGate of the exact-tier cost on min-cost requests.
	Candidates int
	// CandidateGate caps candidate-tier cost / exact-tier cost per min-cost
	// request (default 2, mirroring the Theorem 2 factor).
	CandidateGate float64

	// Mutate, when set, corrupts every successful routing result before the
	// oracle sees it. It exists for fault-injection tests that prove the
	// harness actually catches bugs (mutation testing); production runs
	// leave it nil.
	Mutate func(*core.Result)
}

func (c *Config) n() int {
	if c.N <= 0 {
		return 100
	}
	return c.N
}

func (c *Config) maxNodes() int {
	if c.MaxNodes <= 0 {
		return 7
	}
	return c.MaxNodes
}

func (c *Config) maxRoutes() int {
	if c.MaxRoutes <= 0 {
		return 2000
	}
	return c.MaxRoutes
}

func (c *Config) maxFailures() int {
	if c.MaxFailures <= 0 {
		return 5
	}
	return c.MaxFailures
}

func (c *Config) candidateGate() float64 {
	if c.CandidateGate <= 0 {
		return 2
	}
	return c.CandidateGate
}

// Report tallies a run.
type Report struct {
	Instances int
	Ops       int
	Routed    int
	Blocked   int
	Teardowns int
	// ExactCompared counts approx-vs-exhaustive comparisons; ILPCompared
	// counts the subset additionally cross-checked against the ILP.
	ExactCompared int
	ILPCompared   int
	// MaxRatio is the worst observed approx/exact cost ratio (Theorem 2
	// bounds it by 2 on eligible instances).
	MaxRatio float64
	// CandidateCompared counts candidate-arm comparisons on min-cost
	// requests; MaxCandidateRatio is the worst candidate/exact cost ratio
	// seen (gated by Config.CandidateGate).
	CandidateCompared int
	MaxCandidateRatio float64
	Failures          []check.Artifact
}

// OK reports whether the run saw no violation.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

// Summary renders the one-line result wdmcheck prints.
func (r *Report) Summary() string {
	s := fmt.Sprintf("instances=%d ops=%d routed=%d blocked=%d teardowns=%d exact=%d ilp=%d maxRatio=%.4f violations=%d",
		r.Instances, r.Ops, r.Routed, r.Blocked, r.Teardowns,
		r.ExactCompared, r.ILPCompared, r.MaxRatio, len(r.Failures))
	if r.CandidateCompared > 0 {
		s += fmt.Sprintf(" candidates=%d candRatio=%.4f", r.CandidateCompared, r.MaxCandidateRatio)
	}
	return s
}

// Run generates cfg.N instances and drives each through RunInstance,
// shrinking every failure to a minimal reproduction.
func Run(cfg Config) *Report {
	rep := &Report{}
	for i := 0; i < cfg.n(); i++ {
		seed := cfg.Seed + int64(i)
		in := check.GenerateSeeded(seed, cfg.maxNodes())
		rep.Instances++
		err := RunInstance(in, cfg, rep)
		if err == nil {
			continue
		}
		art := check.Artifact{Err: err.Error(), Instance: in}
		if opErr, ok := err.(*OpError); ok {
			art.Op = opErr.Op
		}
		if !cfg.NoShrink {
			art.Shrunk = check.Shrink(in, func(cand *check.Instance) bool {
				return RunInstance(cand, cfg, nil) != nil
			}, cfg.ShrinkBudget)
		}
		rep.Failures = append(rep.Failures, art)
		if len(rep.Failures) >= cfg.maxFailures() {
			break
		}
	}
	return rep
}

// OpError locates a violation at one operation of the request stream.
type OpError struct {
	Op   int
	Algo check.Algo
	Err  error
}

//wdm:coldpath error rendering after a failed operation
func (e *OpError) Error() string {
	return fmt.Sprintf("op %d (%s): %v", e.Op, e.Algo, e.Err)
}

func (e *OpError) Unwrap() error { return e.Err }

// routeFresh routes with a throwaway router (every call rebuilds its
// auxiliary graph), routeWarm with the stream-long router.
func routeFresh(net *wdm.Network, op check.Op) (*core.Result, bool) {
	switch op.Algo {
	case check.AlgoMinCost:
		return core.ApproxMinCost(net, op.Src, op.Dst, nil)
	case check.AlgoMinLoad:
		return core.MinLoad(net, op.Src, op.Dst, nil)
	case check.AlgoMinLoadCost:
		return core.MinLoadCost(net, op.Src, op.Dst, nil)
	case check.AlgoNodeDisjoint:
		return core.ApproxMinCostNodeDisjoint(net, op.Src, op.Dst, nil)
	}
	panic("harness: unknown algorithm")
}

func routeWarm(r *core.Router, net *wdm.Network, op check.Op) (*core.Result, bool) {
	switch op.Algo {
	case check.AlgoMinCost:
		return r.ApproxMinCost(net, op.Src, op.Dst)
	case check.AlgoMinLoad:
		return r.MinLoad(net, op.Src, op.Dst)
	case check.AlgoMinLoadCost:
		return r.MinLoadCost(net, op.Src, op.Dst)
	case check.AlgoNodeDisjoint:
		return r.ApproxMinCostNodeDisjoint(net, op.Src, op.Dst)
	}
	panic("harness: unknown algorithm")
}

// sameHops reports whether two semilightpaths are hop-for-hop identical.
func sameHops(a, b *wdm.Semilightpath) bool {
	if len(a.Hops) != len(b.Hops) {
		return false
	}
	for i := range a.Hops {
		if a.Hops[i] != b.Hops[i] {
			return false
		}
	}
	return true
}

// diffResults compares the fresh and warm routing decisions field by field.
// The two arms run identical deterministic code over identical residual
// state, so every field must match exactly.
func diffResults(f, w *core.Result) error {
	switch {
	case f.Cost != w.Cost:
		return fmt.Errorf("fresh/warm cost diverged: %g vs %g", f.Cost, w.Cost)
	case f.AuxWeight != w.AuxWeight:
		return fmt.Errorf("fresh/warm aux weight diverged: %g vs %g", f.AuxWeight, w.AuxWeight)
	case f.NaiveCost != w.NaiveCost:
		return fmt.Errorf("fresh/warm naive cost diverged: %g vs %g", f.NaiveCost, w.NaiveCost)
	case f.Threshold != w.Threshold:
		return fmt.Errorf("fresh/warm threshold diverged: %g vs %g", f.Threshold, w.Threshold)
	case f.PathLoad != w.PathLoad:
		return fmt.Errorf("fresh/warm path load diverged: %g vs %g", f.PathLoad, w.PathLoad)
	case !sameHops(f.Primary, w.Primary):
		return fmt.Errorf("fresh/warm primary hops diverged")
	case !sameHops(f.Backup, w.Backup):
		return fmt.Errorf("fresh/warm backup hops diverged")
	}
	return nil
}

// checkResult runs every per-result invariant against the residual network
// the pair was routed on (before establishment).
func checkResult(net *wdm.Network, op check.Op, res *core.Result) error {
	if err := check.PathAvailable(net, res.Primary, op.Src, op.Dst); err != nil {
		return fmt.Errorf("primary: %w", err)
	}
	if err := check.PathAvailable(net, res.Backup, op.Src, op.Dst); err != nil {
		return fmt.Errorf("backup: %w", err)
	}
	if err := check.EdgeDisjoint(res.Primary, res.Backup); err != nil {
		return err
	}
	if op.Algo == check.AlgoNodeDisjoint {
		if err := check.NodeDisjoint(net, res.Primary, res.Backup, op.Src, op.Dst); err != nil {
			return err
		}
	}
	cp := check.PathCost(net, res.Primary)
	cb := check.PathCost(net, res.Backup)
	if !approxEq(cp+cb, res.Cost) {
		return fmt.Errorf("Eq. 1 accounting: reported pair cost %g, recomputed %g + %g = %g",
			res.Cost, cp, cb, cp+cb)
	}
	if cp > cb+1e-9 {
		return fmt.Errorf("primary (%g) costs more than backup (%g); cheaper path must lead", cp, cb)
	}
	// Lemma 2: the refined assignment can never cost more than first-fit on
	// the same routes.
	if !math.IsInf(res.NaiveCost, 1) && res.Cost > res.NaiveCost+1e-9 {
		return fmt.Errorf("refined cost %g exceeds first-fit cost %g (Lemma 2)", res.Cost, res.NaiveCost)
	}
	if got := check.PairLoad(net, res.Primary, res.Backup); math.Abs(got-res.PathLoad) > 1e-12 {
		return fmt.Errorf("path-load accounting: reported %g, recomputed %g", res.PathLoad, got)
	}
	return nil
}

// checkCandidate routes op through the candidate-tier router on the SAME
// residual network the exact arm just saw (route-only, nothing is
// established) and asserts the tier's accuracy gate: identical feasibility
// (the tier falls back to exact routing rather than block a servable
// request), the full per-result invariant set, and — on min-cost requests,
// where the tier is active — a bounded cost ratio versus the exact-tier
// pair. On every other algorithm the tier is inert, so the result must match
// the exact arm field for field.
func checkCandidate(candR *core.Router, net *wdm.Network, op check.Op, rF *core.Result, okF bool, cfg Config, rep *Report) error {
	rC, okC := routeWarm(candR, net, op)
	if okC != okF {
		return fmt.Errorf("candidate arm ok=%v, exact arm ok=%v (fallback must preserve feasibility)", okC, okF)
	}
	if !okF {
		return nil
	}
	if op.Algo != check.AlgoMinCost {
		if err := diffResults(rF, rC); err != nil {
			return fmt.Errorf("candidate arm (tier inert for %s): %w", op.Algo, err)
		}
		return nil
	}
	if err := checkResult(net, op, rC); err != nil {
		return fmt.Errorf("candidate arm: %w", err)
	}
	if rep != nil {
		rep.CandidateCompared++
	}
	if rF.Cost > 1e-9 {
		ratio := rC.Cost / rF.Cost
		if rep != nil && ratio > rep.MaxCandidateRatio {
			rep.MaxCandidateRatio = ratio
		}
		if gate := cfg.candidateGate(); ratio > gate+1e-9 {
			return fmt.Errorf("candidate accuracy gate: candidate cost %g / exact cost %g = %.4f > %g",
				rC.Cost, rF.Cost, ratio, gate)
		}
	}
	return nil
}

// exactILPCap gates the ILP cross-check: the branch-and-bound is exponential
// in the variable count, so only the smallest instances go through it.
const exactILPCap = 5

// checkExact compares an approximate result (or a blocked request) against
// exact.Exhaustive, asserting feasibility agreement, exact-pair validity,
// optimality, and the Theorem-2 ratio. Only called on eligible instances for
// min-cost requests. ok/res describe the approximation's outcome.
func checkExact(net *wdm.Network, op check.Op, res *core.Result, ok bool, cfg Config, rep *Report) error {
	sol, truncated, okE := exact.Exhaustive(net, op.Src, op.Dst, cfg.maxRoutes())
	if truncated {
		return nil // enumeration capped: no verdict
	}
	if !ok {
		if okE {
			return fmt.Errorf("approx reported infeasible but exact pair exists (cost %g)", sol.Cost)
		}
		return nil
	}
	if !okE {
		return fmt.Errorf("approx found a pair (cost %g) but exact says infeasible", res.Cost)
	}
	// The exact pair must satisfy the same §3 invariants.
	if err := check.PathAvailable(net, sol.Primary, op.Src, op.Dst); err != nil {
		return fmt.Errorf("exact primary: %w", err)
	}
	if err := check.PathAvailable(net, sol.Backup, op.Src, op.Dst); err != nil {
		return fmt.Errorf("exact backup: %w", err)
	}
	if err := check.EdgeDisjoint(sol.Primary, sol.Backup); err != nil {
		return fmt.Errorf("exact pair: %w", err)
	}
	exactCost := check.PathCost(net, sol.Primary) + check.PathCost(net, sol.Backup)
	if !approxEq(exactCost, sol.Cost) {
		return fmt.Errorf("exact Eq. 1 accounting: reported %g, recomputed %g", sol.Cost, exactCost)
	}
	if rep != nil {
		rep.ExactCompared++
	}
	// Optimality: the heuristic can never beat the exact optimum.
	if res.Cost < sol.Cost-1e-9 {
		return fmt.Errorf("approx cost %g beats 'exact' optimum %g", res.Cost, sol.Cost)
	}
	if sol.Cost > 1e-9 {
		ratio := res.Cost / sol.Cost
		if rep != nil && ratio > rep.MaxRatio {
			rep.MaxRatio = ratio
		}
		if ratio > 2+1e-9 {
			return fmt.Errorf("Theorem 2 violated: approx %g / exact %g = %.4f > 2", res.Cost, sol.Cost, ratio)
		}
	}
	// On the smallest instances the independent ILP must agree with the
	// enumeration (each solver certifies the other).
	if net.Nodes() <= exactILPCap && net.W() <= 2 {
		ilpSol, _, okI := exact.ILP(net, op.Src, op.Dst, exact.ILPConfig{})
		if !okI {
			return fmt.Errorf("ILP infeasible where exhaustive found cost %g", sol.Cost)
		}
		if !approxEq(ilpSol.Cost, sol.Cost) {
			return fmt.Errorf("ILP optimum %g disagrees with exhaustive optimum %g", ilpSol.Cost, sol.Cost)
		}
		if rep != nil {
			rep.ILPCompared++
		}
	}
	return nil
}

// RunInstance drives one instance end to end: two network clones routed by a
// fresh and a warm arm, every invariant checked after every operation, a
// full drain at the end, and capacity conservation throughout. A nil rep
// skips tallying (the shrinking predicate uses that). The returned error is
// nil when every check passed.
func RunInstance(in *check.Instance, cfg Config, rep *Report) error {
	netF, err := in.Build()
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	netW, err := in.Build()
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	baseAvail := netF.TotalAvailable()
	warm := core.NewRouter(nil)
	var candR *core.Router
	if cfg.Candidates > 0 {
		candR = core.NewRouter(&core.Options{Candidates: cfg.Candidates})
	}
	eligible := in.Eligible()

	type liveConn struct{ fresh, warm *core.Result }
	live := map[int]*liveConn{}
	blocked := map[int]bool{}
	fail := func(i int, algo check.Algo, err error) error {
		return &OpError{Op: i, Algo: algo, Err: err}
	}

	for i, op := range in.Ops {
		if rep != nil {
			rep.Ops++
		}
		if op.Teardown >= 0 {
			c := live[op.Teardown]
			if c == nil {
				// The generator's op stream assumes establishes succeed; when
				// the network blocked one, tearing it down is a no-op rather
				// than a violation.
				if blocked[op.Teardown] {
					continue
				}
				return fail(i, 0, fmt.Errorf("teardown of op %d with no live connection", op.Teardown))
			}
			delete(live, op.Teardown)
			if err := core.Teardown(netF, c.fresh); err != nil {
				return fail(i, 0, fmt.Errorf("fresh teardown: %w", err))
			}
			if err := core.Teardown(netW, c.warm); err != nil {
				return fail(i, 0, fmt.Errorf("warm teardown: %w", err))
			}
			if rep != nil {
				rep.Teardowns++
			}
		} else {
			rF, okF := routeFresh(netF, op)
			rW, okW := routeWarm(warm, netW, op)
			if okF != okW {
				return fail(i, op.Algo, fmt.Errorf("fresh ok=%v, warm ok=%v", okF, okW))
			}
			if okF && cfg.Mutate != nil {
				cfg.Mutate(rF)
				cfg.Mutate(rW)
			}
			if okF {
				if err := diffResults(rF, rW); err != nil {
					return fail(i, op.Algo, err)
				}
				if err := checkResult(netF, op, rF); err != nil {
					return fail(i, op.Algo, err)
				}
			}
			if cfg.Exact && eligible && op.Algo == check.AlgoMinCost {
				if err := checkExact(netF, op, rF, okF, cfg, rep); err != nil {
					return fail(i, op.Algo, err)
				}
			}
			if candR != nil {
				if err := checkCandidate(candR, netF, op, rF, okF, cfg, rep); err != nil {
					return fail(i, op.Algo, err)
				}
			}
			if !okF {
				blocked[i] = true
				if rep != nil {
					rep.Blocked++
				}
				continue
			}
			if err := core.Establish(netF, rF); err != nil {
				return fail(i, op.Algo, fmt.Errorf("fresh establish: %w", err))
			}
			if err := core.Establish(netW, rW); err != nil {
				return fail(i, op.Algo, fmt.Errorf("warm establish: %w", err))
			}
			if err := check.Reserved(netF, rF.Primary); err != nil {
				return fail(i, op.Algo, fmt.Errorf("after establish, primary: %w", err))
			}
			if err := check.Reserved(netF, rF.Backup); err != nil {
				return fail(i, op.Algo, fmt.Errorf("after establish, backup: %w", err))
			}
			live[i] = &liveConn{fresh: rF, warm: rW}
			if rep != nil {
				rep.Routed++
			}
		}
		// Global residual-state bookkeeping after every operation.
		if err := check.LoadAccounting(netF); err != nil {
			return fail(i, 0, err)
		}
		if aF, aW := netF.TotalAvailable(), netW.TotalAvailable(); aF != aW {
			return fail(i, 0, fmt.Errorf("fresh/warm capacity diverged: %d vs %d available channels", aF, aW))
		}
		if lF, lW := netF.NetworkLoad(), netW.NetworkLoad(); lF != lW {
			return fail(i, 0, fmt.Errorf("fresh/warm network load diverged: %g vs %g", lF, lW))
		}
	}

	// Drain: every surviving connection releases cleanly and the network
	// returns to its pristine capacity on both arms. Drain in op order so a
	// teardown failure names the same op on every run (mapdet).
	liveIdx := make([]int, 0, len(live))
	for idx := range live {
		liveIdx = append(liveIdx, idx)
	}
	sort.Ints(liveIdx)
	for _, idx := range liveIdx {
		c := live[idx]
		if err := core.Teardown(netF, c.fresh); err != nil {
			return fmt.Errorf("drain op %d (fresh): %w", idx, err)
		}
		if err := core.Teardown(netW, c.warm); err != nil {
			return fmt.Errorf("drain op %d (warm): %w", idx, err)
		}
	}
	if got := netF.TotalAvailable(); got != baseAvail {
		return fmt.Errorf("capacity leak: %d available channels after drain, want %d", got, baseAvail)
	}
	if got := netW.TotalAvailable(); got != baseAvail {
		return fmt.Errorf("warm capacity leak: %d available channels after drain, want %d", got, baseAvail)
	}
	if rho := netF.NetworkLoad(); rho != 0 {
		return fmt.Errorf("network load %g after full drain, want 0", rho)
	}
	if err := check.LoadAccounting(netF); err != nil {
		return fmt.Errorf("after drain: %w", err)
	}
	return nil
}

// approxEq mirrors the tolerance used by the check validators.
func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	tol := 1e-9 * math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol
}
