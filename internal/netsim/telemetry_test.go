package netsim

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/trace"
)

func TestSimTelemetryCurve(t *testing.T) {
	tel := NewTelemetry(5, 0)
	sim := New(nsf(4), Config{Algorithm: MinCost, Restoration: Active, Telemetry: tel})
	reqs := poisson(14, 800, 25, 11)
	m := sim.Run(reqs)

	col := tel.Collector()
	if col.Len() == 0 {
		t.Fatal("no telemetry windows sealed")
	}
	snaps := col.Snapshots(0)

	// Every arrival contributes one latency sample and one blocking
	// observation, warmup included; the final Seal flushes the partial
	// last window, so the totals must match exactly.
	var latCount, blkNum, blkDen, accepted int64
	for _, s := range snaps {
		hv, ok := s.Hist(SeriesRouteLatency)
		if !ok {
			t.Fatal("route latency series missing")
		}
		latCount += hv.Count
		if hv.Count > 0 && (hv.P50 <= 0 || hv.P99 > hv.Max) {
			t.Fatalf("window %d latency quantiles inconsistent: %+v", s.Window, hv)
		}
		bv, _ := s.RatioOf(SeriesBlocking)
		blkNum += bv.Num
		blkDen += bv.Den
		av, _ := s.RateOf(SeriesAccepted)
		accepted += av.Count
	}
	if latCount != int64(len(reqs)) {
		t.Fatalf("latency samples %d != arrivals %d", latCount, len(reqs))
	}
	if blkDen != int64(len(reqs)) || blkNum != int64(m.Blocked) {
		t.Fatalf("blocking %d/%d, want %d/%d", blkNum, blkDen, m.Blocked, len(reqs))
	}
	if accepted != int64(m.Accepted) {
		t.Fatalf("accepted rate total %d != metrics %d", accepted, m.Accepted)
	}

	// The window-seal probe sampled the network: the gauges carry values and
	// the latest NetState snapshot is published for /debug/net.
	ns := tel.NetState()
	if ns == nil {
		t.Fatal("no NetState published")
	}
	if ns.Nodes != 14 || len(ns.Links) == 0 {
		t.Fatalf("NetState = %+v", ns)
	}
	sawLoad := false
	for _, s := range snaps {
		if gv, ok := s.GaugeOf(SeriesLinkLoadMax); ok && gv.Samples > 0 && gv.Last > 0 {
			sawLoad = true
		}
		if gv, ok := s.GaugeOf(SeriesLinkLoadMean); ok && gv.Last < 0 || !ok {
			t.Fatal("load mean gauge missing")
		}
	}
	if !sawLoad {
		t.Fatal("no window saw a loaded network")
	}

	// Sim-time windows: the curve must span the run horizon.
	if last := snaps[len(snaps)-1]; last.Start > m.Horizon {
		t.Fatalf("last window starts at %g, beyond horizon %g", last.Start, m.Horizon)
	}
}

func TestSimTelemetryReconfigSeries(t *testing.T) {
	tel := NewTelemetry(5, 0)
	sim := New(nsf(4), Config{
		Algorithm: MinLoadCost, Restoration: Active, Telemetry: tel,
		ReconfigThreshold: 0.3, ReconfigCooldown: 0.1,
	})
	m := sim.Run(poisson(14, 600, 30, 5))
	var reconfigs, reroutes int64
	for _, s := range tel.Collector().Snapshots(0) {
		rv, _ := s.RateOf(SeriesReconfigs)
		reconfigs += rv.Count
		rr, _ := s.RateOf(SeriesReroutes)
		reroutes += rr.Count
	}
	if reconfigs != int64(m.Reconfigs) {
		t.Fatalf("windowed reconfigs %d != metrics %d", reconfigs, m.Reconfigs)
	}
	if reroutes != int64(m.ReroutedConns) {
		t.Fatalf("windowed reroutes %d != rerouted conns %d", reroutes, m.ReroutedConns)
	}
	if m.Reconfigs == 0 {
		t.Skip("run triggered no reconfigurations; series equality still held")
	}
}

func TestTelemetryDoubleBindPanics(t *testing.T) {
	tel := NewTelemetry(1, 0)
	New(nsf(4), Config{Algorithm: MinCost, Telemetry: tel})
	defer func() {
		if recover() == nil {
			t.Fatal("second bind did not panic")
		}
	}()
	New(nsf(4), Config{Algorithm: MinCost, Telemetry: tel})
}

func TestNilTelemetryIsNoOp(t *testing.T) {
	var tel *Telemetry
	if tel.Collector() != nil || tel.NetState() != nil {
		t.Fatal("nil telemetry returned state")
	}
	t0 := tel.routeStart()
	if !t0.IsZero() {
		t.Fatal("nil routeStart read the clock")
	}
	tel.routeDone(t0, true)
	tel.rerouted()
	tel.reconfigEvent()
	tel.advance(10)
	tel.finish()
	// And a full run with Telemetry unset stays valid (the default path).
	m := New(nsf(4), Config{Algorithm: MinCost}).Run(poisson(14, 100, 10, 3))
	if m.Offered != 100 {
		t.Fatalf("run without telemetry broke: %+v", m)
	}
}

// liveGaugeRecorder snapshots the /metrics progress gauges at every trace
// event — a mid-run observer, like a Prometheus scrape hitting -serve.
type liveGaugeRecorder struct {
	offered  *metrics.Gauge
	blocking *metrics.Gauge
	seen     []float64
}

func (r *liveGaugeRecorder) Record(trace.Event) error {
	r.seen = append(r.seen, r.offered.Value())
	if v := r.blocking.Value(); v < 0 || v > 1 {
		return nil // validated after the run via seen; keep Record infallible
	}
	return nil
}

func TestLiveGaugesUpdateMidRun(t *testing.T) {
	reg := metrics.NewRegistry()
	EnableMetrics(reg)
	defer EnableMetrics(nil)
	rec := &liveGaugeRecorder{
		offered:  reg.Gauge("netsim_offered", ""),
		blocking: reg.Gauge("netsim_blocking_probability", ""),
	}
	sim := New(nsf(4), Config{Algorithm: MinCost, Restoration: Active, Trace: rec})
	m := sim.Run(poisson(14, 400, 20, 9))

	if len(rec.seen) == 0 {
		t.Fatal("recorder saw no events")
	}
	// The offered gauge must rise during the run — mid-run scrapes see
	// progress, not a constant end-of-run value.
	mid := rec.seen[len(rec.seen)/2]
	if mid <= 0 || mid >= float64(m.Offered) {
		t.Fatalf("mid-run offered gauge = %g, want strictly between 0 and %d", mid, m.Offered)
	}
	for i := 1; i < len(rec.seen); i++ {
		if rec.seen[i] < rec.seen[i-1] {
			t.Fatal("offered gauge went backwards")
		}
	}
	if got := rec.offered.Value(); got != float64(m.Offered) {
		t.Fatalf("final offered gauge %g != %d", got, m.Offered)
	}
	if got := rec.blocking.Value(); got != m.BlockingProbability() {
		t.Fatalf("final blocking gauge %g != %g", got, m.BlockingProbability())
	}
}
