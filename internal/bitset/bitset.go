// Package bitset provides a compact fixed-capacity bit set used to represent
// wavelength sets Λ(e) and Λ_avail(e) on WDM links. Operations are allocation
// conscious: the common queries (membership, population count, intersection
// count) touch only the underlying uint64 words.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a bit set. The zero value is an empty set with capacity 0; use New
// to create a set that can hold indices in [0, n).
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set capable of holding indices in [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative capacity")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// NewFull returns a set of capacity n with all n bits set.
func NewFull(n int) *Set {
	s := New(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
	return s
}

// FromSlice returns a set of capacity n containing exactly the given indices.
func FromSlice(n int, idx []int) *Set {
	s := New(n)
	for _, i := range idx {
		s.Add(i)
	}
	return s
}

// trim clears any bits beyond capacity in the last word.
func (s *Set) trim() {
	if s.n%wordBits != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (uint64(1) << uint(s.n%wordBits)) - 1
	}
}

// Cap returns the capacity (the n passed to New).
func (s *Set) Cap() int { return s.n }

// Add sets bit i. It panics if i is out of range.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Remove clears bit i. It panics if i is out of range.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Contains reports whether bit i is set. It panics if i is out of range.
func (s *Set) Contains(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		//wdmlint:ignore hotalloc panic-path formatting; unreachable in a correct run
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether no bits are set.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of o. The two sets must have the
// same capacity.
func (s *Set) CopyFrom(o *Set) {
	if s.n != o.n {
		panic("bitset: CopyFrom capacity mismatch")
	}
	copy(s.words, o.words)
}

// Clear removes all elements.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill sets all bits in [0, Cap()).
func (s *Set) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// IntersectCount returns |s ∩ o| without allocating. Capacities must match.
func (s *Set) IntersectCount(o *Set) int {
	if s.n != o.n {
		panic("bitset: IntersectCount capacity mismatch")
	}
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w & o.words[i])
	}
	return c
}

// Intersects reports whether s and o share any element.
func (s *Set) Intersects(o *Set) bool {
	if s.n != o.n {
		panic("bitset: Intersects capacity mismatch")
	}
	for i, w := range s.words {
		if w&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectWith sets s = s ∩ o in place.
func (s *Set) IntersectWith(o *Set) {
	if s.n != o.n {
		panic("bitset: IntersectWith capacity mismatch")
	}
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// UnionWith sets s = s ∪ o in place.
func (s *Set) UnionWith(o *Set) {
	if s.n != o.n {
		panic("bitset: UnionWith capacity mismatch")
	}
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// DifferenceWith sets s = s \ o in place.
func (s *Set) DifferenceWith(o *Set) {
	if s.n != o.n {
		panic("bitset: DifferenceWith capacity mismatch")
	}
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// SubsetOf reports whether every element of s is in o.
func (s *Set) SubsetOf(o *Set) bool {
	if s.n != o.n {
		panic("bitset: SubsetOf capacity mismatch")
	}
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o contain exactly the same elements and have
// the same capacity.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Min returns the smallest set bit, or -1 if the set is empty.
func (s *Set) Min() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// NextAfter returns the smallest set bit strictly greater than i, or -1 if
// none exists. Passing i = -1 yields the minimum element.
func (s *Set) NextAfter(i int) int {
	i++
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// LongestRun returns the length of the longest run of consecutive set bits,
// word-at-a-time: within each word the longest run of k consecutive ones is
// found by k-fold self-AND-shift, and runs crossing word boundaries are
// stitched via the carry of trailing ones. Returns 0 for an empty set.
func (s *Set) LongestRun() int {
	best, carry := 0, 0
	for _, w := range s.words {
		if w == ^uint64(0) {
			carry += wordBits
			if carry > best {
				best = carry
			}
			continue
		}
		// Run carried in from the previous word extends over this word's
		// trailing ones.
		if carry > 0 {
			run := carry + bits.TrailingZeros64(^w)
			if run > best {
				best = run
			}
		}
		// Longest run fully inside this word.
		run := 0
		for x := w; x != 0; x &= x << 1 {
			run++
		}
		if run > best {
			best = run
		}
		carry = bits.LeadingZeros64(^w) // trailing ones at the top of the word
	}
	return best
}

// ForEach calls fn for every set bit in ascending order. If fn returns false
// the iteration stops early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Slice returns the set elements in ascending order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// String renders the set as "{a, b, c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
