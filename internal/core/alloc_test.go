//go:build !race

// Allocation-regression tests, excluded from -race runs (the detector's
// instrumentation breaks testing.AllocsPerOp accounting).
package core

import (
	"testing"

	"repro/internal/topo"
)

// Allocation budgets for a warm Router on NSFNET (W=8). The graph search
// itself is allocation-free; what remains is the per-result construction
// (Result, hop slices, the Lemma 2 refinement DP). Measured ~27–29 allocs/op
// at the time of writing; the budgets leave headroom for small refactors
// while still catching a regression to per-request graph rebuilding
// (~900 allocs/op).
const (
	approxMinCostAllocBudget = 64
	minLoadAllocBudget       = 96
)

func TestWarmRouterAllocBudget(t *testing.T) {
	net := topo.NSFNET(topo.Config{W: 8})
	r := NewRouter(nil)
	if _, ok := r.ApproxMinCost(net, 0, 9); !ok {
		t.Fatal("ApproxMinCost failed")
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.ApproxMinCost(net, 0, 9)
	})
	if allocs > approxMinCostAllocBudget {
		t.Errorf("warm Router.ApproxMinCost = %.0f allocs/op, budget %d", allocs, approxMinCostAllocBudget)
	}

	if _, ok := r.MinLoad(net, 2, 11); !ok {
		t.Fatal("MinLoad failed")
	}
	allocs = testing.AllocsPerRun(100, func() {
		r.MinLoad(net, 2, 11)
	})
	if allocs > minLoadAllocBudget {
		t.Errorf("warm Router.MinLoad = %.0f allocs/op, budget %d", allocs, minLoadAllocBudget)
	}
}
