package topo

import (
	"testing"

	"repro/internal/auxgraph"
	"repro/internal/disjoint"
	"repro/internal/wdm"
)

func cfg() Config { return Config{W: 4} }

// biconnected reports whether every ordered pair admits two edge-disjoint
// routes — the property robust routing needs everywhere.
func biconnected(t *testing.T, net *wdm.Network) {
	t.Helper()
	for s := 0; s < net.Nodes(); s++ {
		for d := 0; d < net.Nodes(); d++ {
			if s == d {
				continue
			}
			a := auxgraph.Build(net, s, d, auxgraph.Params{Kind: auxgraph.Cost})
			if _, ok := disjoint.Suurballe(a.G, a.S, a.T); !ok {
				t.Fatalf("no edge-disjoint pair for (%d,%d)", s, d)
			}
		}
	}
}

func TestNSFNET(t *testing.T) {
	net := NSFNET(cfg())
	if net.Nodes() != 14 {
		t.Fatalf("nodes = %d, want 14", net.Nodes())
	}
	if net.Links() != 42 { // 21 spans, both directions
		t.Fatalf("links = %d, want 42", net.Links())
	}
	if net.W() != 4 {
		t.Fatalf("W = %d", net.W())
	}
	biconnected(t, net)
}

func TestARPA2(t *testing.T) {
	net := ARPA2(cfg())
	if net.Nodes() != 20 {
		t.Fatalf("nodes = %d, want 20", net.Nodes())
	}
	if net.Links() != 62 { // 31 spans
		t.Fatalf("links = %d, want 62", net.Links())
	}
	biconnected(t, net)
}

func TestRing(t *testing.T) {
	net := Ring(6, cfg())
	if net.Nodes() != 6 || net.Links() != 12 {
		t.Fatalf("ring dims: %d nodes %d links", net.Nodes(), net.Links())
	}
	biconnected(t, net)
	defer func() {
		if recover() == nil {
			t.Fatal("Ring(2) should panic")
		}
	}()
	Ring(2, cfg())
}

func TestGrid(t *testing.T) {
	net := Grid(3, 4, cfg())
	if net.Nodes() != 12 {
		t.Fatalf("nodes = %d", net.Nodes())
	}
	// Spans: horizontal 3·3 + vertical 2·4 = 17, doubled = 34.
	if net.Links() != 34 {
		t.Fatalf("links = %d, want 34", net.Links())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Grid(0, 1) should panic")
		}
	}()
	Grid(0, 1, cfg())
}

func TestComplete(t *testing.T) {
	net := Complete(5, cfg())
	if net.Links() != 20 {
		t.Fatalf("links = %d, want 20", net.Links())
	}
	biconnected(t, net)
}

func TestWaxmanDeterministicAndConnected(t *testing.T) {
	a := Waxman(12, 0.4, 0.4, 7, cfg())
	b := Waxman(12, 0.4, 0.4, 7, cfg())
	if a.Links() != b.Links() {
		t.Fatal("same seed produced different graphs")
	}
	c := Waxman(12, 0.4, 0.4, 8, cfg())
	_ = c // different seed may coincide in size; just exercise it
	biconnected(t, a)
	// Costs positive.
	for id := 0; id < a.Links(); id++ {
		if a.Link(id).Cost(0) <= 0 {
			t.Fatal("non-positive link cost")
		}
	}
	for name, fn := range map[string]func(){
		"tiny":  func() { Waxman(2, 0.4, 0.4, 1, cfg()) },
		"alpha": func() { Waxman(5, 0, 0.4, 1, cfg()) },
		"beta":  func() { Waxman(5, 0.4, 1.5, 1, cfg()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConfigDefaults(t *testing.T) {
	net := NSFNET(Config{W: 2})
	if net.Link(0).Cost(0) != 1 {
		t.Fatal("default link cost should be 1")
	}
	if got := net.ConvCost(0, 0, 1); got != 0.5 {
		t.Fatalf("default conversion cost = %g, want 0.5", got)
	}
	net2 := NSFNET(Config{W: 2, LinkCost: 3, ConvCost: 2})
	if net2.Link(0).Cost(0) != 3 || net2.ConvCost(0, 0, 1) != 2 {
		t.Fatal("explicit costs not applied")
	}
}
