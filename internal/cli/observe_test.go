package cli

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/auxgraph"
	"repro/internal/core"
	"repro/internal/disjoint"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

func disableAll() {
	auxgraph.EnableMetrics(nil)
	disjoint.EnableMetrics(nil)
	core.EnableMetrics(nil)
	netsim.EnableMetrics(nil)
}

func TestVersionNonEmpty(t *testing.T) {
	v := Version()
	if v == "" {
		t.Fatal("empty version")
	}
	// Module path is baked in by the toolchain under `go test`.
	if !strings.Contains(v, "repro") {
		t.Fatalf("version %q lacks module path", v)
	}
}

func TestEnableAllMetricsCoversEngine(t *testing.T) {
	reg := EnableAllMetrics()
	defer disableAll()

	net := topo.NSFNET(topo.Config{W: 4})
	sim := netsim.New(net, netsim.Config{Algorithm: netsim.MinCost, Restoration: netsim.Active, Seed: 1})
	sim.Run(workload.Poisson(workload.PoissonConfig{
		Nodes: 14, ArrivalRate: 10, MeanHolding: 1, Count: 50, Seed: 1,
	}))

	names := map[string]bool{}
	for _, s := range reg.Snapshot() {
		names[s.Name] = true
	}
	for _, want := range []string{
		"auxgraph_builds_total",
		"disjoint_suurballe_calls_total",
		"core_route_calls_total",
		"netsim_route_seconds",
	} {
		if !names[want] {
			t.Fatalf("metric %s not registered (have %v)", want, names)
		}
	}
}

func TestStartPprofServesMetricsAndPprof(t *testing.T) {
	reg := EnableAllMetrics()
	defer disableAll()
	reg.Counter("smoke_total", "").Inc()

	addr, err := StartPprof("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if body := get("/metrics"); !strings.Contains(body, "smoke_total 1") {
		t.Fatalf("metrics body:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("pprof endpoint empty")
	}
}

func TestWriteSummaryRoundTrip(t *testing.T) {
	reg := EnableAllMetrics()
	defer disableAll()

	net := topo.NSFNET(topo.Config{W: 4})
	sim := netsim.New(net, netsim.Config{Algorithm: netsim.MinCost, Restoration: netsim.Active, Seed: 1})
	m := sim.Run(workload.Poisson(workload.PoissonConfig{
		Nodes: 14, ArrivalRate: 10, MeanHolding: 1, Count: 40, Seed: 2,
	}))

	path := filepath.Join(t.TempDir(), "summary.json")
	cfg := map[string]any{"topo": "nsfnet", "w": 4}
	if err := WriteSummary(path, cfg, SummarizeSim(m), reg); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got RunSummary
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("summary not valid JSON: %v", err)
	}
	if got.Version == "" {
		t.Fatal("summary missing version")
	}
	stats, ok := got.Stats.(map[string]any)
	if !ok {
		t.Fatalf("stats shape: %T", got.Stats)
	}
	if int(stats["offered"].(float64)) != m.Offered {
		t.Fatalf("offered = %v, want %d", stats["offered"], m.Offered)
	}
	if len(got.Metrics) == 0 {
		t.Fatal("summary missing metrics snapshot")
	}
}
