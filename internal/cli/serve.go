package cli

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/explain"
	"repro/internal/timeseries"
)

// DebugOpts selects which data sources the debug handler exposes. Any field
// may be nil; its endpoints then answer 404 so probes can tell "not enabled"
// from "not yet populated".
type DebugOpts struct {
	// Metrics backs /metrics (Prometheus text exposition).
	Metrics *metrics.Registry
	// Flight backs /debug/flight and /debug/explain/<id>.
	Flight *obs.FlightRecorder
	// Series backs /debug/timeseries: sealed telemetry windows as JSON.
	Series *timeseries.Collector
	// NetState backs /debug/net; it is called per request and should return
	// the latest sealed network snapshot (nil until one exists). Typically
	// (*netsim.Telemetry).NetState.
	NetState func() *timeseries.NetState
}

// DebugMux builds the debug HTTP handler shared by wdmsim -serve and tests:
//
//	/healthz              liveness probe (200 "ok")
//	/metrics              Prometheus text exposition (404 if not enabled)
//	/debug/flight         flight-recorder dump as JSONL, oldest trace first
//	/debug/explain/<id>   explain report for request <id> (JSON; ?format=text)
//	/debug/timeseries     sealed telemetry windows, oldest first (?last=N)
//	/debug/net            latest per-link network-state snapshot
//	/debug/pprof/*        the standard runtime profiles
//
// Unlike StartPprof this never touches http.DefaultServeMux, so several
// servers (or tests) can coexist in one process.
func DebugMux(o DebugOpts) *http.ServeMux {
	reg, fr := o.Metrics, o.Flight
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if reg == nil {
			http.Error(w, "metrics registry not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, _ *http.Request) {
		if fr == nil {
			http.Error(w, "flight recorder not enabled", http.StatusNotFound)
			return
		}
		// Dump into a buffer first: once a partial body is on the wire the
		// status code is committed, so encoding errors could no longer be
		// reported to the client.
		var buf bytes.Buffer
		if err := fr.Dump(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_, _ = buf.WriteTo(w)
	})
	mux.HandleFunc("/debug/explain/", func(w http.ResponseWriter, r *http.Request) {
		if fr == nil {
			http.Error(w, "flight recorder not enabled", http.StatusNotFound)
			return
		}
		idStr := strings.TrimPrefix(r.URL.Path, "/debug/explain/")
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad request id %q", idStr), http.StatusBadRequest)
			return
		}
		tc := fr.Find(id)
		if tc == nil {
			http.Error(w, fmt.Sprintf("request %d not in the flight recorder (evicted or never traced)", id), http.StatusNotFound)
			return
		}
		rep, ok := tc.Payload.(*explain.Report)
		if !ok {
			http.Error(w, fmt.Sprintf("request %d has no explain report (status %s)", id, tc.Status), http.StatusNotFound)
			return
		}
		var buf bytes.Buffer
		if r.URL.Query().Get("format") == "text" {
			err = rep.WriteText(&buf)
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		} else {
			err = rep.WriteJSON(&buf)
			w.Header().Set("Content-Type", "application/json")
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		_, _ = buf.WriteTo(w)
	})
	mux.HandleFunc("/debug/timeseries", func(w http.ResponseWriter, r *http.Request) {
		if o.Series == nil {
			http.Error(w, "timeseries collector not enabled", http.StatusNotFound)
			return
		}
		last := 0 // 0 = everything retained
		if q := r.URL.Query().Get("last"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n < 0 {
				http.Error(w, fmt.Sprintf("bad last=%q", q), http.StatusBadRequest)
				return
			}
			last = n
		}
		snaps := o.Series.Snapshots(last)
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snaps); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = buf.WriteTo(w)
	})
	mux.HandleFunc("/debug/net", func(w http.ResponseWriter, _ *http.Request) {
		if o.NetState == nil {
			http.Error(w, "network-state probe not enabled", http.StatusNotFound)
			return
		}
		ns := o.NetState()
		if ns == nil {
			http.Error(w, "no network snapshot sealed yet", http.StatusNotFound)
			return
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ns); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = buf.WriteTo(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer binds addr (e.g. "localhost:0"), serves DebugMux in a
// background goroutine, and returns the bound address for log lines and CI
// probes. The listener lives until the process exits.
func StartDebugServer(addr string, o DebugOpts) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = http.Serve(ln, DebugMux(o)) }()
	return ln.Addr().String(), nil
}
