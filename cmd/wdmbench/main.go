// wdmbench regenerates the paper-reproduction experiment tables (F1, E1–E19
// of DESIGN.md). Run without flags for the full suite at full scale, or
// select one experiment:
//
//	wdmbench -exp E4            # one experiment
//	wdmbench -quick             # reduced scale (seconds instead of minutes)
//	wdmbench -seeds 50          # override repetition count
//	wdmbench -list              # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "", "experiment ID to run (default: all)")
	quick := flag.Bool("quick", false, "reduced instance sizes and seed counts")
	seeds := flag.Int("seeds", 0, "override the number of random repetitions")
	list := flag.Bool("list", false, "list experiments and exit")
	format := flag.String("format", "text", "output format: text, markdown, csv")
	flag.Parse()

	render := func(tb *bench.Table) string {
		switch *format {
		case "markdown":
			return tb.Markdown()
		case "csv":
			return tb.CSV()
		default:
			return tb.String()
		}
	}

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := bench.Options{Quick: *quick, Seeds: *seeds}
	if *exp != "" {
		tb, err := bench.Run(*exp, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(render(tb))
		return
	}
	for _, tb := range bench.All(opts) {
		fmt.Println(render(tb))
	}
}
