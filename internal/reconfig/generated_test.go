package reconfig

import (
	"testing"

	"repro/internal/check"
	"repro/internal/core"
)

// TestOptimizeOnGeneratedChurn replays generated establish/teardown streams
// onto generated topologies, then reconfigures the survivors and audits the
// result with the check oracle: reconfiguration must never corrupt a
// connection (both paths stay legal, reserved, and edge-disjoint), never
// worsen ρ, keep the global channel bookkeeping consistent, and release
// cleanly back to pristine capacity.
func TestOptimizeOnGeneratedChurn(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		in := check.GenerateSeeded(seed, 7)
		net, err := in.Build()
		if err != nil {
			t.Fatalf("seed %d: build: %v", seed, err)
		}
		baseAvail := net.TotalAvailable()

		// Replay the op stream with the cost-only router (the one that piles
		// onto hot links and gives reconfiguration something to do). Blocked
		// establishes drop their teardowns.
		live := map[int]*Connection{}
		for i, op := range in.Ops {
			if op.Teardown >= 0 {
				c := live[op.Teardown]
				if c == nil {
					continue
				}
				delete(live, op.Teardown)
				if err := net.ReleasePath(c.Primary); err != nil {
					t.Fatalf("seed %d op %d: release primary: %v", seed, i, err)
				}
				if err := net.ReleasePath(c.Backup); err != nil {
					t.Fatalf("seed %d op %d: release backup: %v", seed, i, err)
				}
				continue
			}
			r, ok := core.ApproxMinCost(net, op.Src, op.Dst, nil)
			if !ok {
				continue
			}
			if err := core.Establish(net, r); err != nil {
				t.Fatalf("seed %d op %d: establish: %v", seed, i, err)
			}
			live[i] = &Connection{ID: i, Src: op.Src, Dst: op.Dst, Primary: r.Primary, Backup: r.Backup}
		}

		var conns []*Connection
		for _, c := range live {
			conns = append(conns, c)
		}
		before := net.NetworkLoad()
		res := Optimize(net, conns, 3, nil)
		if res.LoadBefore != before {
			t.Fatalf("seed %d: LoadBefore = %g, want %g", seed, res.LoadBefore, before)
		}
		if res.LoadAfter > res.LoadBefore+1e-12 {
			t.Fatalf("seed %d: reconfiguration worsened ρ: %g → %g", seed, res.LoadBefore, res.LoadAfter)
		}
		if got := net.NetworkLoad(); got != res.LoadAfter {
			t.Fatalf("seed %d: LoadAfter = %g, network says %g", seed, res.LoadAfter, got)
		}
		if err := check.LoadAccounting(net); err != nil {
			t.Fatalf("seed %d: after optimize: %v", seed, err)
		}
		for _, c := range conns {
			if err := check.Path(net, c.Primary, c.Src, c.Dst); err != nil {
				t.Fatalf("seed %d conn %d: primary: %v", seed, c.ID, err)
			}
			if err := check.Path(net, c.Backup, c.Src, c.Dst); err != nil {
				t.Fatalf("seed %d conn %d: backup: %v", seed, c.ID, err)
			}
			if err := check.Reserved(net, c.Primary); err != nil {
				t.Fatalf("seed %d conn %d: primary: %v", seed, c.ID, err)
			}
			if err := check.Reserved(net, c.Backup); err != nil {
				t.Fatalf("seed %d conn %d: backup: %v", seed, c.ID, err)
			}
			if err := check.EdgeDisjoint(c.Primary, c.Backup); err != nil {
				t.Fatalf("seed %d conn %d: %v", seed, c.ID, err)
			}
		}

		// Drain and verify nothing leaked through the re-route churn.
		for _, c := range conns {
			if err := net.ReleasePath(c.Primary); err != nil {
				t.Fatalf("seed %d: drain primary: %v", seed, err)
			}
			if err := net.ReleasePath(c.Backup); err != nil {
				t.Fatalf("seed %d: drain backup: %v", seed, err)
			}
		}
		if got := net.TotalAvailable(); got != baseAvail {
			t.Fatalf("seed %d: capacity leak: %d available after drain, want %d", seed, got, baseAvail)
		}
		if rho := net.NetworkLoad(); rho != 0 {
			t.Fatalf("seed %d: ρ = %g after drain", seed, rho)
		}
	}
}

// TestOptimizeIdempotentOnGenerated re-runs Optimize on an already-optimized
// state: the second pass must find nothing to move.
func TestOptimizeIdempotentOnGenerated(t *testing.T) {
	in := check.GenerateSeeded(5, 6)
	net, err := in.Build()
	if err != nil {
		t.Fatal(err)
	}
	var conns []*Connection
	for i, op := range in.Ops {
		if op.Teardown >= 0 {
			continue
		}
		r, ok := core.ApproxMinCost(net, op.Src, op.Dst, nil)
		if !ok {
			continue
		}
		if err := core.Establish(net, r); err != nil {
			t.Fatal(err)
		}
		conns = append(conns, &Connection{ID: i, Src: op.Src, Dst: op.Dst, Primary: r.Primary, Backup: r.Backup})
	}
	Optimize(net, conns, 0, nil)
	second := Optimize(net, conns, 0, nil)
	if second.Moves != 0 {
		t.Fatalf("second optimize still moved %d connections", second.Moves)
	}
	if second.LoadAfter != second.LoadBefore {
		t.Fatalf("second optimize changed ρ: %g → %g", second.LoadBefore, second.LoadAfter)
	}
}
