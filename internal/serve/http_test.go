package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newTestServer serves a started engine's full HTTP surface.
func newTestServer(t *testing.T) (*Engine, *httptest.Server) {
	t.Helper()
	e := startEngine(t, nsf(8), Config{Window: 1})
	srv := httptest.NewServer(e.Handler(nil))
	t.Cleanup(srv.Close)
	return e, srv
}

func postJSON(t *testing.T, url, body string) (*http.Response, Response) {
	t.Helper()
	httpResp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = httpResp.Body.Close() }()
	var resp Response
	if httpResp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return httpResp, resp
}

// TestHTTPRoundTrip drives provision → status → reroute → teardown through
// the real HTTP surface.
func TestHTTPRoundTrip(t *testing.T) {
	e, srv := newTestServer(t)

	httpResp, resp := postJSON(t, srv.URL+"/provision", `{"id":1,"src":0,"dst":9}`)
	if httpResp.StatusCode != http.StatusOK || !resp.Accepted {
		t.Fatalf("provision: HTTP %d, %+v", httpResp.StatusCode, resp)
	}
	if resp.Op != "provision" || len(resp.Primary) == 0 || len(resp.Backup) == 0 || resp.Cost <= 0 {
		t.Fatalf("thin provision response: %+v", resp)
	}

	st, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = st.Body.Close() }()
	var stats Stats
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.LiveConns != 1 || stats.Accepted != 1 {
		t.Fatalf("status after one admission: %+v", stats)
	}

	if _, resp = postJSON(t, srv.URL+"/reroute", `{"id":1}`); resp.Op != "reroute" {
		t.Fatalf("reroute response: %+v", resp)
	}
	if _, resp = postJSON(t, srv.URL+"/teardown", `{"id":1}`); !resp.Accepted {
		t.Fatalf("teardown rejected: %+v", resp)
	}
	if n := e.LiveConnections(); n != 0 {
		t.Fatalf("%d live connections after teardown", n)
	}

	// Domain rejection is HTTP 200 + accepted:false, not an HTTP error.
	httpResp, resp = postJSON(t, srv.URL+"/teardown", `{"id":404}`)
	if httpResp.StatusCode != http.StatusOK || resp.Accepted || resp.Reason != ReasonUnknownConn {
		t.Fatalf("unknown teardown: HTTP %d, %+v", httpResp.StatusCode, resp)
	}
}

// TestHTTPBadBodies: malformed bodies are HTTP 400 before touching the
// engine.
func TestHTTPBadBodies(t *testing.T) {
	_, srv := newTestServer(t)
	for _, body := range []string{
		``,
		`not json`,
		`[1,2,3]`,
		`{"id":1,"bogus":true}`,
		`{"id":1}{"id":2}`,
		`{"id":1} trailing`,
	} {
		httpResp, _ := postJSON(t, srv.URL+"/provision", body)
		if httpResp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: HTTP %d, want 400", body, httpResp.StatusCode)
		}
	}
}

// TestHTTPDebugSurface: the shared debug mux is mounted (healthz, net state,
// timeseries) alongside the request API.
func TestHTTPDebugSurface(t *testing.T) {
	_, srv := newTestServer(t)
	postJSON(t, srv.URL+"/provision", `{"id":1,"src":0,"dst":9}`)
	for _, path := range []string{"/healthz", "/debug/timeseries"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
		}
	}
	// /debug/net serves the last *sealed* window's probe; right after start
	// none exists yet, so the wired-but-empty 404 is the expected answer (the
	// "not enabled" 404 would mean the probe was never mounted).
	resp, err := http.Get(srv.URL + "/debug/net")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return
	}
	if !strings.Contains(string(body), "no network snapshot sealed yet") {
		t.Fatalf("GET /debug/net: HTTP %d, %q — probe not wired", resp.StatusCode, body)
	}
}

// TestDrive exercises the HTTP load generator end to end against a live
// test server — the same path the CI smoke uses via wdmd -drive.
func TestDrive(t *testing.T) {
	e, srv := newTestServer(t)
	rep, err := Drive(srv.URL, DriveConfig{
		Requests: 500,
		Clients:  8,
		Seed:     2,
		Nodes:    e.Nodes(),
	})
	if err != nil {
		t.Fatalf("drive: %v\n%s", err, rep)
	}
	if rep.Provisions == 0 || rep.Errors != 0 {
		t.Fatalf("degenerate drive run: %s", rep)
	}
	for _, id := range e.LiveIDs() {
		if resp := e.Teardown(id); !resp.Accepted {
			t.Fatalf("post-drive drain %d: %+v", id, resp)
		}
	}
	if err := e.Audit(); err != nil {
		t.Fatalf("audit after drive: %v", err)
	}
}

// FuzzRequestDecode: DecodeRequest must never panic and must only return
// (req, nil) for bodies that re-encode losslessly through the Request schema.
func FuzzRequestDecode(f *testing.F) {
	f.Add([]byte(`{"id":1,"src":0,"dst":9}`))
	f.Add([]byte(`{"id":1,"src":0,"dst":9,"algo":"min-cost"}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"id":9223372036854775807}`))
	f.Add([]byte(`{"id":1}{"id":2}`))
	f.Add([]byte(`[{"id":1}]`))
	f.Add([]byte("{\"id\":1,\n\"src\":2}\n"))
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeRequest(strings.NewReader(string(body)))
		if err != nil {
			return
		}
		// A successful decode must survive a marshal/decode round trip.
		enc, merr := json.Marshal(req)
		if merr != nil {
			t.Fatalf("accepted request does not re-encode: %v", merr)
		}
		req2, derr := DecodeRequest(strings.NewReader(string(enc)))
		if derr != nil {
			t.Fatalf("re-encoded request does not decode: %v", derr)
		}
		if req != req2 {
			t.Fatalf("round trip changed the request: %+v vs %+v", req, req2)
		}
	})
}
