// Package trace records simulator events as structured records, so runs can
// be audited, diffed across algorithms, or post-processed externally. The
// JSONL encoding writes one event per line; the in-memory buffer supports
// assertions in tests.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Kind labels an event.
type Kind string

// Event kinds emitted by the simulator.
const (
	Arrival    Kind = "arrival"    // request offered
	Accept     Kind = "accept"     // connection established
	Block      Kind = "block"      // request blocked
	Depart     Kind = "depart"     // connection torn down
	Failure    Kind = "failure"    // link failed
	Repair     Kind = "repair"     // link repaired
	Switchover Kind = "switchover" // primary → backup switch
	Reroute    Kind = "reroute"    // passive restoration or reconfiguration reroute
	Drop       Kind = "drop"       // connection lost (restoration failed)
	Reconfig   Kind = "reconfig"   // network reconfiguration triggered
	Reprotect  Kind = "reprotect"  // fresh backup established
)

// Event is one simulator occurrence.
type Event struct {
	Time float64 `json:"t"`
	Kind Kind    `json:"kind"`
	// Conn and Link identify the affected connection/link; −1 means not
	// applicable.
	Conn int `json:"conn"`
	Link int `json:"link"`
	// Detail carries free-form context ("cost=12.5", "theta=0.4").
	Detail string `json:"detail,omitempty"`
}

// Recorder consumes events. Implementations must be safe for use from a
// single goroutine (the simulator is sequential); Tee and Buffer are
// additionally safe for concurrent use.
type Recorder interface {
	Record(Event)
}

// Buffer is an in-memory recorder for tests and summaries.
type Buffer struct {
	mu     sync.Mutex
	events []Event
}

// Record implements Recorder.
func (b *Buffer) Record(e Event) {
	b.mu.Lock()
	b.events = append(b.events, e)
	b.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}

// Count returns how many events of the given kind were recorded ("" counts
// all events).
func (b *Buffer) Count(kind Kind) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if kind == "" {
		return len(b.events)
	}
	n := 0
	for _, e := range b.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// JSONL writes each event as one JSON line.
type JSONL struct {
	enc *json.Encoder
}

// NewJSONL returns a recorder writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Record implements Recorder. Encoding errors are silently dropped (tracing
// must never abort a simulation); use a failing-writer test to observe them.
func (j *JSONL) Record(e Event) {
	_ = j.enc.Encode(e)
}

// ReadJSONL parses a JSONL stream back into events.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("trace: %w", err)
		}
		out = append(out, e)
	}
}

// Tee fans events out to several recorders.
func Tee(rs ...Recorder) Recorder { return tee(rs) }

type tee []Recorder

func (t tee) Record(e Event) {
	for _, r := range t {
		r.Record(e)
	}
}

// Nop discards all events.
type Nop struct{}

// Record implements Recorder.
func (Nop) Record(Event) {}
