package disjoint

import (
	"math"

	"repro/internal/graph"
	"repro/internal/pq"
)

// KPaths is a set of k pairwise edge-disjoint paths from s to t with the
// minimum total weight among all such sets.
type KPaths struct {
	Paths  [][]int
	Weight float64
}

// KDisjoint finds k pairwise edge-disjoint s→t paths of minimum total weight
// using successive shortest augmenting paths with Johnson potentials — the
// natural generalisation of Suurballe's algorithm (k = 2 reproduces it; the
// paper's Find_Two_Paths loop is the k = 2 instance). It returns ok = false
// when fewer than k edge-disjoint paths exist. All enabled edge weights must
// be non-negative.
func KDisjoint(g *graph.Graph, s, t, k int) (*KPaths, bool) {
	if s == t || k <= 0 {
		return nil, false
	}
	n := g.N()
	m := g.M()
	used := make([]bool, m) // edge carries one unit of flow
	pot := make([]float64, n)

	// dist/prev arrays reused across iterations.
	dist := make([]float64, n)
	prevEdge := make([]int, n) // edge id; ^id encodes a backward residual arc
	h := pq.NewIndexedHeap(n)

	for iter := 0; iter < k; iter++ {
		for v := 0; v < n; v++ {
			dist[v] = math.Inf(1)
			prevEdge[v] = -1
		}
		dist[s] = 0
		h.Reset()
		h.Push(s, 0)
		for !h.Empty() {
			u, du := h.Pop()
			if du > dist[u] {
				continue
			}
			// Forward residual arcs: unused edges out of u.
			for _, id := range g.Out(u) {
				if g.Disabled(id) || used[id] {
					continue
				}
				e := g.Edge(id)
				rc := e.Weight + pot[u] - pot[e.To]
				if rc < 0 {
					rc = 0 // float round-off guard
				}
				if nd := du + rc; nd < dist[e.To] {
					dist[e.To] = nd
					prevEdge[e.To] = id
					h.PushOrDecrease(e.To, nd)
				}
			}
			// Backward residual arcs: used edges into u can be cancelled.
			for _, id := range g.In(u) {
				if g.Disabled(id) || !used[id] {
					continue
				}
				e := g.Edge(id)
				rc := -e.Weight + pot[u] - pot[e.From]
				if rc < 0 {
					rc = 0
				}
				if nd := du + rc; nd < dist[e.From] {
					dist[e.From] = nd
					prevEdge[e.From] = ^id
					h.PushOrDecrease(e.From, nd)
				}
			}
		}
		if math.IsInf(dist[t], 1) {
			return nil, false // fewer than k edge-disjoint paths exist
		}
		// Update potentials; unreached vertices keep their old potential
		// (they cannot participate in future augmenting paths through the
		// current flow anyway, and capping keeps reduced costs finite).
		for v := 0; v < n; v++ {
			if !math.IsInf(dist[v], 1) {
				pot[v] += dist[v]
			} else {
				pot[v] += dist[t]
			}
		}
		// Augment: walk back from t toggling edge usage.
		at := t
		for at != s {
			pe := prevEdge[at]
			if pe >= 0 {
				used[pe] = true
				at = g.Edge(pe).From
			} else {
				id := ^pe
				used[id] = false
				at = g.Edge(id).To
			}
		}
	}

	// Decompose the flow into k paths.
	adj := make(map[int][]int)
	total := 0.0
	count := 0
	for id := 0; id < m; id++ {
		if used[id] {
			e := g.Edge(id)
			adj[e.From] = append(adj[e.From], id)
			total += e.Weight
			count++
		}
	}
	res := &KPaths{Weight: total}
	for i := 0; i < k; i++ {
		var path []int
		at := s
		for at != t {
			out := adj[at]
			if len(out) == 0 {
				return nil, false // defensive: flow should decompose
			}
			id := out[len(out)-1]
			adj[at] = out[:len(out)-1]
			path = append(path, id)
			at = g.Edge(id).To
			if len(path) > count {
				return nil, false
			}
		}
		res.Paths = append(res.Paths, path)
	}
	return res, true
}
