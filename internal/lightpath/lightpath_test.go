package lightpath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/check"
	"repro/internal/wdm"
)

func TestOptimalLine(t *testing.T) {
	g := wdm.NewNetwork(3, 2)
	g.AddUniformLink(0, 1, 2)
	g.AddUniformLink(1, 2, 3)
	g.SetAllConverters(wdm.NewFullConverter(2, 1))
	p, cost, ok := Optimal(g, 0, 2, nil)
	if !ok {
		t.Fatal("no path found")
	}
	if cost != 5 {
		t.Fatalf("cost = %g, want 5 (no conversion needed)", cost)
	}
	if err := p.ValidateAvailable(g, 0, 2); err != nil {
		t.Fatal(err)
	}
	if p.Hops[0].Wavelength != p.Hops[1].Wavelength {
		t.Fatal("optimal path should avoid conversion cost by keeping wavelength")
	}
	if math.Abs(p.Cost(g)-cost) > 1e-12 {
		t.Fatalf("reported cost %g != path cost %g", cost, p.Cost(g))
	}
}

func TestOptimalPrefersConversionWhenCheaper(t *testing.T) {
	// λ0 expensive on second link; conversion cost is tiny, so the optimum
	// converts λ0 → λ1 at node 1.
	g := wdm.NewNetwork(3, 2)
	g.AddLink(0, 1, []wdm.Wavelength{0}, []float64{1})
	g.AddLink(1, 2, []wdm.Wavelength{0, 1}, []float64{10, 1})
	g.SetAllConverters(wdm.NewFullConverter(2, 0.5))
	p, cost, ok := Optimal(g, 0, 2, nil)
	if !ok {
		t.Fatal("no path")
	}
	if math.Abs(cost-2.5) > 1e-12 { // 1 + 0.5 + 1
		t.Fatalf("cost = %g, want 2.5", cost)
	}
	if p.Hops[1].Wavelength != 1 {
		t.Fatal("should convert to λ1")
	}
}

func TestOptimalAvoidsConversionWhenExpensive(t *testing.T) {
	g := wdm.NewNetwork(3, 2)
	g.AddLink(0, 1, []wdm.Wavelength{0}, []float64{1})
	g.AddLink(1, 2, []wdm.Wavelength{0, 1}, []float64{3, 1})
	g.SetAllConverters(wdm.NewFullConverter(2, 100))
	_, cost, ok := Optimal(g, 0, 2, nil)
	if !ok {
		t.Fatal("no path")
	}
	if cost != 4 { // stick to λ0: 1 + 3
		t.Fatalf("cost = %g, want 4", cost)
	}
}

func TestOptimalWavelengthContinuity(t *testing.T) {
	// With NoConverter everywhere a path exists only if one wavelength spans
	// all links.
	g := wdm.NewNetwork(3, 2)
	g.AddLink(0, 1, []wdm.Wavelength{0}, []float64{1})
	g.AddLink(1, 2, []wdm.Wavelength{1}, []float64{1})
	g.SetAllConverters(wdm.NoConverter{})
	if _, _, ok := Optimal(g, 0, 2, nil); ok {
		t.Fatal("continuity-violating path found")
	}
	// Add a λ0 link 1→2 and it becomes feasible.
	g.AddLink(1, 2, []wdm.Wavelength{0}, []float64{5})
	p, cost, ok := Optimal(g, 0, 2, nil)
	if !ok || cost != 6 {
		t.Fatalf("cost = %g ok=%v, want 6 true", cost, ok)
	}
	for _, h := range p.Hops {
		if h.Wavelength != 0 {
			t.Fatal("path must stay on λ0")
		}
	}
}

func TestOptimalRespectsAvailability(t *testing.T) {
	g := wdm.NewNetwork(2, 2)
	id := g.AddUniformLink(0, 1, 1)
	g.Use(id, 0)
	p, _, ok := Optimal(g, 0, 1, nil)
	if !ok {
		t.Fatal("λ1 should still be available")
	}
	if p.Hops[0].Wavelength != 1 {
		t.Fatal("must avoid in-use λ0")
	}
	g.Use(id, 1)
	if _, _, ok := Optimal(g, 0, 1, nil); ok {
		t.Fatal("exhausted link should be unroutable")
	}
	// UseInstalled ignores reservations.
	if _, _, ok := Optimal(g, 0, 1, &Options{UseInstalled: true}); !ok {
		t.Fatal("UseInstalled should see the installed wavelengths")
	}
}

func TestOptimalAllowedLinksRestriction(t *testing.T) {
	g := wdm.NewNetwork(3, 1)
	cheap := g.AddUniformLink(0, 2, 1)
	g.AddUniformLink(0, 1, 1)
	g.AddUniformLink(1, 2, 1)
	// Restricted away from the direct cheap link.
	p, cost, ok := Optimal(g, 0, 2, &Options{AllowedLinks: func(id int) bool { return id != cheap }})
	if !ok || cost != 2 || p.Len() != 2 {
		t.Fatalf("restricted path cost = %g len=%d ok=%v", cost, p.Len(), ok)
	}
	// Subgraph variant.
	p2, _, ok2 := OptimalInSubgraph(g, 0, 2, map[int]bool{cheap: true})
	if !ok2 || p2.Len() != 1 {
		t.Fatal("subgraph search failed")
	}
}

func TestOptimalDegenerateQueries(t *testing.T) {
	g := wdm.NewNetwork(3, 1)
	g.AddUniformLink(0, 1, 1)
	if _, _, ok := Optimal(g, 0, 0, nil); ok {
		t.Fatal("s == t should report no path")
	}
	if _, _, ok := Optimal(g, 0, 2, nil); ok {
		t.Fatal("unreachable destination should report no path")
	}
	if _, _, ok := Optimal(g, -1, 1, nil); ok {
		t.Fatal("out-of-range source should report no path")
	}
}

// The defining semilightpath subtlety: a node may be revisited to reach a
// converter. Node 1 cannot convert, but a detour 1→3→1 through a converting
// node makes the connection feasible.
func TestOptimalNodeRevisitThroughConverter(t *testing.T) {
	g := wdm.NewNetwork(4, 2)
	g.AddLink(0, 1, []wdm.Wavelength{0}, []float64{1}) // only λ0 into 1
	g.AddLink(1, 2, []wdm.Wavelength{1}, []float64{1}) // only λ1 out to 2
	g.AddUniformLink(1, 3, 1)                          // detour to converter
	g.AddUniformLink(3, 1, 1)
	g.SetAllConverters(wdm.NoConverter{})
	g.SetConverter(3, wdm.NewFullConverter(2, 0.25))
	p, cost, ok := Optimal(g, 0, 2, nil)
	if !ok {
		t.Fatal("detour walk should exist")
	}
	if err := p.Validate(g, 0, 2); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Fatalf("walk length = %d, want 4", p.Len())
	}
	if math.Abs(cost-4.25) > 1e-12 { // 1 + 1 + 0.25 conv + 1 + 1
		t.Fatalf("cost = %g, want 4.25", cost)
	}
}

func TestAssignWavelengthsMatchesOptimalOnFixedRoute(t *testing.T) {
	g := wdm.NewNetwork(4, 3)
	ids := []int{
		g.AddLink(0, 1, []wdm.Wavelength{0, 1}, []float64{5, 1}),
		g.AddLink(1, 2, []wdm.Wavelength{0, 2}, []float64{1, 4}),
		g.AddLink(2, 3, []wdm.Wavelength{2}, []float64{2}),
	}
	g.SetAllConverters(wdm.NewFullConverter(3, 1))
	p, cost, ok := AssignWavelengths(g, ids)
	if !ok {
		t.Fatal("no assignment")
	}
	if err := p.ValidateAvailable(g, 0, 3); err != nil {
		t.Fatal(err)
	}
	// Best: λ1 (1) + conv (1) + λ0 (1) + conv (1) + λ2 (2) = 6.
	if math.Abs(cost-6) > 1e-12 {
		t.Fatalf("cost = %g, want 6", cost)
	}
	// The only route in this network is the line, so Optimal must agree.
	_, oc, ook := Optimal(g, 0, 3, nil)
	if !ook || math.Abs(oc-cost) > 1e-12 {
		t.Fatalf("Optimal cost %g != assignment cost %g", oc, cost)
	}
}

func TestAssignWavelengthsFailureModes(t *testing.T) {
	g := wdm.NewNetwork(3, 2)
	a := g.AddLink(0, 1, []wdm.Wavelength{0}, []float64{1})
	b := g.AddLink(1, 2, []wdm.Wavelength{1}, []float64{1})
	g.SetAllConverters(wdm.NoConverter{})
	if _, _, ok := AssignWavelengths(g, []int{a, b}); ok {
		t.Fatal("continuity violation should fail")
	}
	if _, _, ok := AssignWavelengths(g, nil); ok {
		t.Fatal("empty route should fail")
	}
	if _, _, ok := AssignWavelengths(g, []int{b, a}); ok {
		t.Fatal("disconnected route should fail")
	}
	// Exhausted wavelength.
	g.SetAllConverters(wdm.NewFullConverter(2, 0))
	g.Use(a, 0)
	if _, _, ok := AssignWavelengths(g, []int{a, b}); ok {
		t.Fatal("in-use wavelength should fail")
	}
}

// randomNet builds a random strongly-ish connected network with full
// conversion and random per-wavelength costs.
func randomNet(rng *rand.Rand, n, w int) *wdm.Network {
	g := wdm.NewNetwork(n, w)
	// Ring to guarantee connectivity, plus chords.
	for v := 0; v < n; v++ {
		g.AddUniformLink(v, (v+1)%n, 1+rng.Float64()*4)
	}
	for i := 0; i < n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		lams := []wdm.Wavelength{}
		costs := []float64{}
		for lam := 0; lam < w; lam++ {
			if rng.Float64() < 0.7 {
				lams = append(lams, lam)
				costs = append(costs, 1+rng.Float64()*4)
			}
		}
		if len(lams) > 0 {
			g.AddLink(u, v, lams, costs)
		}
	}
	g.SetAllConverters(wdm.NewFullConverter(w, rng.Float64()))
	return g
}

// Brute force: enumerate all simple physical routes via DFS and optimally
// assign wavelengths per route. Under full conversion, node revisits are
// never beneficial, so this equals the true optimum.
func bruteForceOptimal(g *wdm.Network, s, t int) float64 {
	best := math.Inf(1)
	onPath := make([]bool, g.Nodes())
	var route []int
	var dfs func(u int)
	dfs = func(u int) {
		if u == t {
			if _, c, ok := AssignWavelengths(g, route); ok && c < best {
				best = c
			}
			return
		}
		onPath[u] = true
		for _, id := range g.Out(u) {
			v := g.Link(id).To
			if onPath[v] || v == s {
				continue
			}
			route = append(route, id)
			dfs(v)
			route = route[:len(route)-1]
		}
		onPath[u] = false
	}
	dfs(s)
	return best
}

// Property: layered Dijkstra matches exhaustive enumeration under full
// conversion on small random networks.
func TestQuickOptimalMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		w := 1 + rng.Intn(3)
		g := randomNet(rng, n, w)
		s, d := 0, n-1
		_, cost, ok := Optimal(g, s, d, nil)
		want := bruteForceOptimal(g, s, d)
		if !ok {
			return math.IsInf(want, 1)
		}
		return math.Abs(cost-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the returned semilightpath is always valid and its Eq.1 cost
// equals the reported cost.
func TestQuickOptimalSelfConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		w := 1 + rng.Intn(4)
		g := randomNet(rng, n, w)
		s, d := rng.Intn(n), rng.Intn(n)
		p, cost, ok := Optimal(g, s, d, nil)
		if !ok {
			return true
		}
		// The oracle re-derives path legality, availability, and the Eq. 1
		// cost from first principles, independent of the Semilightpath
		// accessors the router itself uses.
		if err := check.PathAvailable(g, p, s, d); err != nil {
			return false
		}
		return check.Cost(g, p, cost) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOptimal(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomNet(rng, 100, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Optimal(g, i%100, (i+50)%100, nil)
	}
}

func TestKShortestFirstMatchesOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(4)
		w := 1 + rng.Intn(3)
		g := randomNet(rng, n, w)
		s, d := 0, n-1
		paths := KShortest(g, s, d, 4)
		_, optCost, ok := Optimal(g, s, d, nil)
		if !ok {
			if len(paths) != 0 {
				t.Fatalf("trial %d: KShortest found paths where Optimal found none", trial)
			}
			continue
		}
		if len(paths) == 0 {
			t.Fatalf("trial %d: KShortest found nothing", trial)
		}
		if math.Abs(paths[0].Cost(g)-optCost) > 1e-9 {
			t.Fatalf("trial %d: first k-shortest %g != optimal %g",
				trial, paths[0].Cost(g), optCost)
		}
		// Valid, sorted, distinct.
		prev := 0.0
		seen := map[string]bool{}
		for i, p := range paths {
			if err := p.ValidateAvailable(g, s, d); err != nil {
				t.Fatalf("trial %d path %d: %v", trial, i, err)
			}
			c := p.Cost(g)
			if c < prev-1e-9 {
				t.Fatalf("trial %d: costs not sorted", trial)
			}
			prev = c
			if seen[p.String()] {
				t.Fatalf("trial %d: duplicate semilightpath", trial)
			}
			seen[p.String()] = true
		}
	}
}

func TestKShortestEnumeratesWavelengthVariants(t *testing.T) {
	// One physical route, 2 wavelengths, distinct costs: the 2-shortest
	// semilightpaths are the two wavelength assignments.
	g := wdm.NewNetwork(2, 2)
	g.AddLink(0, 1, []wdm.Wavelength{0, 1}, []float64{1, 5})
	paths := KShortest(g, 0, 1, 5)
	if len(paths) != 2 {
		t.Fatalf("found %d, want 2", len(paths))
	}
	if paths[0].Hops[0].Wavelength != 0 || paths[1].Hops[0].Wavelength != 1 {
		t.Fatalf("wavelength order wrong: %v then %v", paths[0], paths[1])
	}
}

func TestKShortestDegenerate(t *testing.T) {
	g := wdm.NewNetwork(3, 1)
	g.AddUniformLink(0, 1, 1)
	if KShortest(g, 0, 0, 3) != nil {
		t.Fatal("s == t should yield nil")
	}
	if KShortest(g, 0, 1, 0) != nil {
		t.Fatal("k = 0 should yield nil")
	}
	if len(KShortest(g, 0, 2, 3)) != 0 {
		t.Fatal("unreachable should yield empty")
	}
}

func TestKShortestRespectsConversionRules(t *testing.T) {
	g := wdm.NewNetwork(3, 2)
	g.AddLink(0, 1, []wdm.Wavelength{0}, []float64{1})
	g.AddLink(1, 2, []wdm.Wavelength{1}, []float64{1})
	g.SetAllConverters(wdm.NoConverter{})
	if len(KShortest(g, 0, 2, 3)) != 0 {
		t.Fatal("continuity-violating path enumerated")
	}
	g.SetAllConverters(wdm.NewFullConverter(2, 0.5))
	paths := KShortest(g, 0, 2, 3)
	if len(paths) != 1 {
		t.Fatalf("found %d, want 1", len(paths))
	}
	if math.Abs(paths[0].Cost(g)-2.5) > 1e-9 {
		t.Fatalf("cost = %g, want 2.5", paths[0].Cost(g))
	}
}

func TestOptimalBoundedTradeoff(t *testing.T) {
	// Direct link costs 10; the 3-hop detour costs 3.
	g := wdm.NewNetwork(4, 2)
	g.AddUniformLink(0, 3, 10)
	g.AddUniformLink(0, 1, 1)
	g.AddUniformLink(1, 2, 1)
	g.AddUniformLink(2, 3, 1)
	g.SetAllConverters(wdm.NewFullConverter(2, 0))
	// Unbounded (large maxHops): take the cheap detour.
	p, c, ok := OptimalBounded(g, 0, 3, 10, nil)
	if !ok || c != 3 || p.Len() != 3 {
		t.Fatalf("unbounded: cost=%g len=%d ok=%v", c, p.Len(), ok)
	}
	// Hop bound 1: forced onto the expensive direct link.
	p, c, ok = OptimalBounded(g, 0, 3, 1, nil)
	if !ok || c != 10 || p.Len() != 1 {
		t.Fatalf("bounded: cost=%g len=%d ok=%v", c, p.Len(), ok)
	}
	// Hop bound 2: still only the direct link fits.
	_, c, ok = OptimalBounded(g, 0, 3, 2, nil)
	if !ok || c != 10 {
		t.Fatalf("bound 2: cost=%g ok=%v", c, ok)
	}
	if err := p.ValidateAvailable(g, 0, 3); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalBoundedInfeasible(t *testing.T) {
	g := wdm.NewNetwork(4, 1)
	g.AddUniformLink(0, 1, 1)
	g.AddUniformLink(1, 2, 1)
	g.AddUniformLink(2, 3, 1)
	if _, _, ok := OptimalBounded(g, 0, 3, 2, nil); ok {
		t.Fatal("2 hops cannot reach node 3")
	}
	if _, _, ok := OptimalBounded(g, 0, 3, 0, nil); ok {
		t.Fatal("maxHops = 0 accepted")
	}
	if _, _, ok := OptimalBounded(g, 0, 0, 3, nil); ok {
		t.Fatal("s == t accepted")
	}
}

// Property: with a generous bound, OptimalBounded matches Optimal exactly;
// tightening the bound never lowers the cost.
func TestQuickOptimalBoundedConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		w := 1 + rng.Intn(3)
		g := randomNet(rng, n, w)
		s, d := 0, n-1
		pu, cu, oku := Optimal(g, s, d, nil)
		pb, cb, okb := OptimalBounded(g, s, d, 2*n, nil)
		if oku != okb {
			return false
		}
		if !oku {
			return true
		}
		if math.Abs(cu-cb) > 1e-9 {
			return false
		}
		if err := pb.ValidateAvailable(g, s, d); err != nil {
			return false
		}
		_ = pu
		// Monotonicity: tightening the bound never lowers the cost.
		prev := math.Inf(1) // cost at the tightest feasible bound so far
		for h := 1; h <= 2*n; h++ {
			_, c, ok := OptimalBounded(g, s, d, h, nil)
			if !ok {
				continue
			}
			if c > prev+1e-9 {
				return false // looser bound produced a worse optimum
			}
			prev = c
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
