package sbpp

import (
	"math/rand"
	"testing"

	"repro/internal/check"
	"repro/internal/topo"
	"repro/internal/wdm"
)

// twoCorridors: two node-disjoint primaries (0→1→5, 0→2→5) can share a
// backup corridor 0→3→5... careful: backups must be edge-disjoint from own
// primary only. Build so both connections naturally back up over the same
// middle corridor.
func sharingNet() *wdm.Network {
	net := wdm.NewNetwork(7, 4)
	// Primary corridors for (0,6) requests routed twice: 0→1→6 (cheap) and
	// 0→2→6 (next), both cheaper than the backup corridor 0→3→6.
	net.AddUniformLink(0, 1, 1)
	net.AddUniformLink(1, 6, 1)
	net.AddUniformLink(0, 2, 1.2)
	net.AddUniformLink(2, 6, 1.2)
	net.AddUniformLink(0, 3, 5)
	net.AddUniformLink(3, 6, 5)
	net.SetAllConverters(wdm.NewFullConverter(4, 0.5))
	return net
}

func TestEstablishSharesBackupChannels(t *testing.T) {
	m := NewManager(sharingNet())
	c1, ok := m.Establish(0, 6)
	if !ok {
		t.Fatal("first establish failed")
	}
	c2, ok := m.Establish(0, 6)
	if !ok {
		t.Fatal("second establish failed")
	}
	// Primaries are link-disjoint (capacity steering: W=4 so both could fit
	// the cheap corridor; primary routing is cost-optimal so both take
	// 0→1→6 — in that case sharing is illegal and channels must NOT be
	// shared).
	overlap := check.EdgeDisjoint(c1.Primary, c2.Primary) != nil
	if overlap {
		if m.SharedChannels() != 0 {
			t.Fatal("illegal sharing between link-overlapping primaries")
		}
	} else if m.SharedChannels() == 0 {
		t.Fatal("disjoint primaries should share backup channels")
	}
	rep := m.Report()
	if rep.BackupChannels > rep.BackupDemand {
		t.Fatalf("reserved more backup channels than dedicated demand: %+v", rep)
	}
}

// Force disjoint primaries with W=1: the second connection cannot reuse the
// first primary corridor, so its primary takes the second corridor, and both
// backups land on the expensive third corridor — shared.
func TestSharingWithForcedDisjointPrimaries(t *testing.T) {
	net := wdm.NewNetwork(7, 1)
	net.AddUniformLink(0, 1, 1)
	net.AddUniformLink(1, 6, 1)
	net.AddUniformLink(0, 2, 1.2)
	net.AddUniformLink(2, 6, 1.2)
	net.AddUniformLink(0, 3, 5)
	net.AddUniformLink(3, 6, 5)
	net.SetAllConverters(wdm.NewFullConverter(1, 0))
	m := NewManager(net)
	if _, ok := m.Establish(0, 6); !ok {
		t.Fatal("first establish failed")
	}
	if _, ok := m.Establish(0, 6); !ok {
		t.Fatal("second establish failed (needs sharing: W=1)")
	}
	if m.SharedChannels() != 2 {
		t.Fatalf("shared channels = %d, want 2 (both backup hops)", m.SharedChannels())
	}
	rep := m.Report()
	if rep.BackupChannels != 2 || rep.BackupDemand != 4 {
		t.Fatalf("report = %+v", rep)
	}
	if s := rep.Savings(); s != 0.5 {
		t.Fatalf("savings = %g, want 0.5", s)
	}
	// A third identical connection cannot fit: no primary corridor left.
	if _, ok := m.Establish(0, 6); ok {
		t.Fatal("third establish should fail (no free primary corridor)")
	}
}

func TestFailoverActivatesSharedBackup(t *testing.T) {
	net := wdm.NewNetwork(7, 1)
	net.AddUniformLink(0, 1, 1)
	l16 := net.AddUniformLink(1, 6, 1)
	net.AddUniformLink(0, 2, 1.2)
	net.AddUniformLink(2, 6, 1.2)
	net.AddUniformLink(0, 3, 5)
	net.AddUniformLink(3, 6, 5)
	net.SetAllConverters(wdm.NewFullConverter(1, 0))
	m := NewManager(net)
	c1, _ := m.Establish(0, 6)
	c2, _ := m.Establish(0, 6)
	recovered, lost, unprotected := m.FailLink(l16)
	if recovered != 1 || lost != 0 {
		t.Fatalf("recovered=%d lost=%d", recovered, lost)
	}
	// The sharing partner lost its backup.
	if unprotected != 1 {
		t.Fatalf("unprotected = %d, want 1", unprotected)
	}
	// c1 (whose primary used l16) is now activated on the backup corridor.
	if !m.conns[c1.ID].Activated {
		t.Fatal("affected connection not activated")
	}
	if m.conns[c2.ID].Backup != nil {
		t.Fatal("partner backup should be detached")
	}
	// Teardown everything; all channels must return.
	if err := m.Teardown(c1.ID); err != nil {
		t.Fatal(err)
	}
	if err := m.Teardown(c2.ID); err != nil {
		t.Fatal(err)
	}
	if m.Net().NetworkLoad() != 0 {
		t.Fatalf("channels leaked: load %g", m.Net().NetworkLoad())
	}
	if m.BackupChannels() != 0 {
		t.Fatal("share table leaked")
	}
}

func TestTeardownUnknown(t *testing.T) {
	m := NewManager(topo.Ring(4, topo.Config{W: 2}))
	if err := m.Teardown(99); err == nil {
		t.Fatal("unknown teardown accepted")
	}
}

func TestSharingRuleNeverViolated(t *testing.T) {
	// Randomized: establish/teardown churn on NSFNET; after every operation
	// check the invariant — all connections sharing a channel have pairwise
	// link-disjoint primaries.
	rng := rand.New(rand.NewSource(7))
	m := NewManager(topo.NSFNET(topo.Config{W: 4}))
	var live []int
	checkInvariant := func() {
		for key, set := range m.shares {
			ids := make([]int, 0, len(set))
			for id := range set {
				ids = append(ids, id)
			}
			for i := 0; i < len(ids); i++ {
				for j := i + 1; j < len(ids); j++ {
					if err := check.EdgeDisjoint(m.conns[ids[i]].Primary, m.conns[ids[j]].Primary); err != nil {
						t.Fatalf("channel %v shared by overlapping primaries %d/%d: %v",
							key, ids[i], ids[j], err)
					}
				}
			}
		}
	}
	for op := 0; op < 300; op++ {
		if rng.Intn(3) > 0 || len(live) == 0 {
			s := rng.Intn(14)
			d := rng.Intn(13)
			if d >= s {
				d++
			}
			if c, ok := m.Establish(s, d); ok {
				live = append(live, c.ID)
			}
		} else {
			i := rng.Intn(len(live))
			if err := m.Teardown(live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		}
		checkInvariant()
	}
	// Drain and verify no leaks.
	for _, id := range live {
		if err := m.Teardown(id); err != nil {
			t.Fatal(err)
		}
	}
	if m.Net().NetworkLoad() != 0 || m.BackupChannels() != 0 {
		t.Fatal("capacity leaked after drain")
	}
}

func TestSharedSavesCapacityVsDedicated(t *testing.T) {
	// Batch the same demands under SBPP and count channels; dedicated
	// demand is the backup hop count. Savings must be non-negative and
	// positive on NSFNET with many demands.
	rng := rand.New(rand.NewSource(3))
	m := NewManager(topo.NSFNET(topo.Config{W: 8}))
	placed := 0
	for i := 0; i < 40; i++ {
		s := rng.Intn(14)
		d := rng.Intn(13)
		if d >= s {
			d++
		}
		if _, ok := m.Establish(s, d); ok {
			placed++
		}
	}
	if placed < 20 {
		t.Fatalf("only %d placed", placed)
	}
	rep := m.Report()
	if rep.Savings() <= 0 {
		t.Fatalf("no sharing savings: %+v", rep)
	}
	t.Logf("placed=%d primary=%d backupChannels=%d demand=%d savings=%.1f%%",
		placed, rep.PrimaryChannels, rep.BackupChannels, rep.BackupDemand, 100*rep.Savings())
}

func TestAccessorsAndEmptyReport(t *testing.T) {
	m := NewManager(topo.Ring(4, topo.Config{W: 2}))
	if m.Connections() != 0 || m.BackupChannels() != 0 {
		t.Fatal("fresh manager not empty")
	}
	if m.Net() == nil {
		t.Fatal("Net accessor nil")
	}
	rep := m.Report()
	if rep.Savings() != 0 {
		t.Fatal("empty report should have zero savings")
	}
	c, ok := m.Establish(0, 2)
	if !ok {
		t.Fatal("establish failed")
	}
	if m.Connections() != 1 || c.Src != 0 || c.Dst != 2 {
		t.Fatal("connection accounting wrong")
	}
}
