package auxgraph

import "repro/internal/metrics"

// instruments holds the package's metric hooks. All fields are nil until
// EnableMetrics is called, and nil instruments are no-ops, so the layer is
// default-off.
type instruments struct {
	builds       *metrics.Counter
	buildTime    *metrics.Timer
	reweights    *metrics.Counter
	reweightTime *metrics.Timer
	vertices     *metrics.Histogram
	edges        *metrics.Histogram
}

var instr instruments

// EnableMetrics registers the package's instruments on r and routes all
// subsequent Build calls through them. A nil registry disables them again.
func EnableMetrics(r *metrics.Registry) {
	instr = instruments{
		builds:       r.Counter("auxgraph_builds_total", "auxiliary graph skeletons constructed"),
		buildTime:    r.Timer("auxgraph_build_seconds", "auxiliary graph skeleton construction time"),
		reweights:    r.Counter("auxgraph_reweights_total", "in-place skeleton reweights"),
		reweightTime: r.Timer("auxgraph_reweight_seconds", "in-place skeleton reweight time"),
		vertices:     r.Histogram("auxgraph_vertices", "vertex count per auxiliary graph", metrics.SizeBuckets()),
		edges:        r.Histogram("auxgraph_edges", "edge count per auxiliary graph", metrics.SizeBuckets()),
	}
}
