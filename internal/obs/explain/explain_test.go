package explain_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/explain"
	"repro/internal/topo"
	"repro/internal/wdm"
)

// input projects a routed core.Result into an explain.Input.
func input(algo string, s, t int, res *core.Result) explain.Input {
	return explain.Input{
		Req:        -1,
		Algorithm:  algo,
		S:          s,
		T:          t,
		LoadAux:    algo == "min-load",
		Primary:    res.Primary,
		Backup:     res.Backup,
		Cost:       res.Cost,
		AuxWeight:  res.AuxWeight,
		NaiveCost:  res.NaiveCost,
		Threshold:  res.Threshold,
		Iterations: res.Iterations,
		PathLoad:   res.PathLoad,
	}
}

// TestBitExactVsCheckOracle is the acceptance gate: on randomly generated
// instances — including restricted and disallowed conversion — the report's
// per-path cost must equal check.PathCost bit for bit, not just within a
// tolerance. Requests are established as they route so later requests see
// genuine residual state (occupied wavelengths change the conversion terms).
func TestBitExactVsCheckOracle(t *testing.T) {
	routed := 0
	for seed := int64(1); seed <= 60; seed++ {
		in := check.GenerateSeeded(seed, 12)
		net, err := in.Build()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r := core.NewRouter(nil)
		for s := 0; s < net.Nodes(); s++ {
			for d := 0; d < net.Nodes(); d++ {
				if s == d {
					continue
				}
				var res *core.Result
				var ok bool
				algo := "min-cost"
				if (s+d)%2 == 0 {
					res, ok = r.ApproxMinCost(net, s, d)
				} else {
					algo = "min-load"
					res, ok = r.MinLoad(net, s, d)
				}
				if !ok {
					continue
				}
				routed++
				rep := explain.Build(net, input(algo, s, d, res))
				for name, got := range map[string]struct {
					path *wdm.Semilightpath
					cost float64
				}{
					"primary": {res.Primary, rep.Primary.Cost},
					"backup":  {res.Backup, rep.Backup.Cost},
				} {
					want := check.PathCost(net, got.path)
					if math.Float64bits(got.cost) != math.Float64bits(want) {
						t.Fatalf("seed %d %s %d→%d: %s cost %v != oracle %v (bit-exact required)",
							seed, algo, s, d, name, got.cost, want)
					}
				}
				wantPair := check.PathCost(net, res.Primary) + check.PathCost(net, res.Backup)
				if math.Float64bits(rep.PairCost) != math.Float64bits(wantPair) {
					t.Fatalf("seed %d %s %d→%d: pair cost %v != oracle sum %v",
						seed, algo, s, d, rep.PairCost, wantPair)
				}
				// The oracle's tolerance check against the router's own
				// reported cost must also pass on the recomputed value.
				if err := check.Cost(net, res.Primary, rep.Primary.Cost); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if want := algo == "min-cost"; rep.Bound.Checked != want {
					t.Fatalf("seed %d %s: bound.Checked = %v, want %v", seed, algo, rep.Bound.Checked, want)
				}
				if core.Establish(net, res) != nil {
					continue // capacity exhausted; keep routing on what's left
				}
			}
		}
	}
	if routed < 100 {
		t.Fatalf("only %d routed requests exercised; generator or router regressed", routed)
	}
}

func TestHopAndConversionBreakdown(t *testing.T) {
	net := topo.NSFNET(topo.Config{W: 4})
	res, ok := core.ApproxMinCost(net, 0, 9, nil)
	if !ok {
		t.Fatal("ApproxMinCost failed on NSFNET")
	}
	rep := explain.Build(net, input("min-cost", 0, 9, res))
	if len(rep.Primary.Hops) != res.Primary.Len() {
		t.Fatalf("primary hop count %d != %d", len(rep.Primary.Hops), res.Primary.Len())
	}
	// Hop chain must be connected s → … → t with per-hop weights from the
	// network.
	at := 0
	for i, h := range rep.Primary.Hops {
		if h.From != at {
			t.Fatalf("hop %d starts at %d, want %d", i, h.From, at)
		}
		if w := net.Link(h.Link).Cost(h.Lambda); w != h.W {
			t.Fatalf("hop %d weight %g, want %g", i, h.W, w)
		}
		at = h.To
	}
	if at != 9 {
		t.Fatalf("primary ends at %d, want 9", at)
	}
	// Every recorded conversion must match a wavelength change between
	// consecutive hops, and the conv sum must reconcile with the split.
	convSum := 0.0
	for i := 0; i+1 < len(rep.Primary.Hops); i++ {
		h, next := rep.Primary.Hops[i], rep.Primary.Hops[i+1]
		if (h.Conv != nil) != (h.Lambda != next.Lambda) {
			t.Fatalf("hop %d conversion presence disagrees with λ change", i)
		}
		if h.Conv != nil {
			if h.Conv.Node != h.To || h.Conv.From != h.Lambda || h.Conv.To != next.Lambda {
				t.Fatalf("hop %d conversion %+v inconsistent", i, h.Conv)
			}
			convSum += h.Conv.Cost
		}
	}
	if convSum != rep.Primary.ConvCost {
		t.Fatalf("conv sum %g != ConvCost %g", convSum, rep.Primary.ConvCost)
	}
	if !rep.Bound.Checked || !rep.Bound.Holds {
		t.Fatalf("Lemma 2 bound should hold on NSFNET: %+v", rep.Bound)
	}
}

func TestTwoStepHasNoBound(t *testing.T) {
	net := topo.NSFNET(topo.Config{W: 4})
	res, ok := core.TwoStepMinCost(net, 0, 9, nil)
	if !ok {
		t.Fatal("TwoStepMinCost failed")
	}
	rep := explain.Build(net, input("two-step", 0, 9, res))
	if rep.Bound.Checked {
		t.Fatalf("two-step has no aux pair, bound should be unchecked: %+v", rep.Bound)
	}
}

func TestAddPhases(t *testing.T) {
	tr := obs.New(obs.Config{})
	tc := tr.Start("min-load", 0, 1)
	for i := 0; i < 3; i++ {
		sp := tc.Begin("reweight")
		time.Sleep(time.Microsecond)
		tc.EndSpan(sp)
	}
	sp := tc.Begin("suurballe")
	tc.EndSpan(sp)
	tc.Finish(obs.StatusOK)

	rep := &explain.Report{}
	rep.AddPhases(tc)
	if len(rep.Phases) != 2 {
		t.Fatalf("phase count = %d, want 2", len(rep.Phases))
	}
	if rep.Phases[0].Name != "reweight" || rep.Phases[0].Count != 3 || rep.Phases[0].Seconds <= 0 {
		t.Fatalf("reweight phase %+v", rep.Phases[0])
	}
	if !strings.Contains(rep.Phases[1].Term, "Suurballe") && !strings.Contains(rep.Phases[1].Term, "pair search") {
		t.Fatalf("suurballe term %q not mapped", rep.Phases[1].Term)
	}
	rep.AddPhases(nil) // no-op
	if len(rep.Phases) != 2 {
		t.Fatal("AddPhases(nil) mutated the report")
	}
}

func TestRenderTextAndJSON(t *testing.T) {
	net := topo.NSFNET(topo.Config{W: 4})
	res, ok := core.MinLoadCost(net, 0, 9, nil)
	if !ok {
		t.Fatal("MinLoadCost failed")
	}
	rep := explain.Build(net, input("min-load-cost", 0, 9, res))

	var txt bytes.Buffer
	if err := rep.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"request  0 → 9 via min-load-cost", "primary", "backup", "pair", "bound", "w(e"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, txt.String())
		}
	}

	var js bytes.Buffer
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back explain.Report
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v", err)
	}
	if back.PairCost != rep.PairCost || len(back.Primary.Hops) != len(rep.Primary.Hops) {
		t.Fatal("round-tripped report lost data")
	}
}
