package core

import (
	"testing"
	"time"

	"repro/internal/auxgraph"
	"repro/internal/disjoint"
	"repro/internal/metrics"
	"repro/internal/topo"
)

// enableAll turns instrumentation on for the whole §3.3 pipeline and returns
// a restore function for the default-off state.
func enableAll(r *metrics.Registry) func() {
	EnableMetrics(r)
	auxgraph.EnableMetrics(r)
	disjoint.EnableMetrics(r)
	return func() {
		EnableMetrics(nil)
		auxgraph.EnableMetrics(nil)
		disjoint.EnableMetrics(nil)
	}
}

func TestMetricsCoverRoutingPipeline(t *testing.T) {
	r := metrics.NewRegistry()
	defer enableAll(r)()

	net := topo.NSFNET(topo.Config{W: 4})
	if _, ok := ApproxMinCost(net, 0, 9, nil); !ok {
		t.Fatal("ApproxMinCost failed")
	}
	if _, ok := MinLoad(net, 2, 11, nil); !ok {
		t.Fatal("MinLoad failed")
	}
	if _, ok := MinLoadCost(net, 3, 7, nil); !ok {
		t.Fatal("MinLoadCost failed")
	}

	if n := r.Counter("core_route_calls_total", "").Value(); n != 3 {
		t.Fatalf("route calls = %d, want 3", n)
	}
	if n := r.Counter("core_route_found_total", "").Value(); n != 3 {
		t.Fatalf("route found = %d, want 3", n)
	}
	for _, name := range []string{
		"auxgraph_builds_total",
		"auxgraph_reweights_total",
		"disjoint_suurballe_calls_total",
		"disjoint_dijkstra_relaxations_total",
		"disjoint_heap_ops_total",
	} {
		if r.Counter(name, "").Value() == 0 {
			t.Fatalf("%s not incremented", name)
		}
	}
	for _, name := range []string{
		"auxgraph_build_seconds",
		"auxgraph_reweight_seconds",
		"disjoint_suurballe_seconds",
		"core_phase_build_seconds",
		"core_phase_disjoint_seconds",
		"core_phase_refine_seconds",
		"core_phase_mincog_seconds",
		"core_mincog_iterations",
		"core_refine_improvement_ratio",
	} {
		if r.Histogram(name, "", nil).Count() == 0 {
			t.Fatalf("%s has no observations", name)
		}
	}
	// Lemma 2: refined cost never exceeds the first-fit cost, so every ratio
	// observation — and hence the mean — is ≤ 1. (Quantile would only give
	// the enclosing bucket's upper bound.)
	if m := r.Histogram("core_refine_improvement_ratio", "", nil).Mean(); m > 1+1e-9 {
		t.Fatalf("refine ratio mean = %g, want ≤ 1", m)
	}
}

func TestMetricsDefaultOff(t *testing.T) {
	// With no EnableMetrics call (or after disabling), routing must work and
	// leave no trace anywhere — the instruments are nil.
	enableAll(nil)()
	net := topo.NSFNET(topo.Config{W: 4})
	if _, ok := ApproxMinCost(net, 0, 9, nil); !ok {
		t.Fatal("ApproxMinCost failed with metrics off")
	}
}

// BenchmarkInstrumentationOverhead quantifies the cost of a live registry on
// the §3.3 hot path. It interleaves batches of ApproxMinCost with nil and
// live instruments inside one run — so slow machine drift cancels out — and
// reports the live/nil per-op time ratio as the "overhead-ratio" metric.
// The acceptance bar is a ratio below 1.05 (<5% slowdown).
func BenchmarkInstrumentationOverhead(b *testing.B) {
	net := topo.NSFNET(topo.Config{W: 8})
	reg := metrics.NewRegistry()
	defer enableAll(nil)()

	const batch = 50
	var elapsed [2]time.Duration // [0]=nil, [1]=live
	var ops [2]int
	for i := 0; i < b.N; {
		for phase := 0; phase < 2 && i < b.N; phase++ {
			if phase == 0 {
				enableAll(nil)
			} else {
				enableAll(reg)
			}
			start := time.Now()
			k := 0
			for ; k < batch && i < b.N; k++ {
				if _, ok := ApproxMinCost(net, i%14, (i+7)%14, nil); !ok {
					b.Fatal("route failed")
				}
				i++
			}
			elapsed[phase] += time.Since(start)
			ops[phase] += k
		}
	}
	if ops[0] > 0 && ops[1] > 0 {
		perOpNil := float64(elapsed[0].Nanoseconds()) / float64(ops[0])
		perOpLive := float64(elapsed[1].Nanoseconds()) / float64(ops[1])
		b.ReportMetric(perOpLive/perOpNil, "overhead-ratio")
	}
}
