// Package wdm is a fixture mirroring the shape of the real network type:
// exported methods that mutate state must call bumpState or bumpTopo.
package wdm

// set stands in for the bitset availability sets.
type set struct{ bits []uint64 }

// Add is a recognised mutator method.
func (s *set) Add(i int) { s.bits[0] |= 1 << uint(i) }

// Network mirrors the real wdm.Network.
type Network struct {
	links        []int
	avail        *set
	scratch      int
	stateVersion uint64
	topoVersion  uint64
	stamp        []uint64
}

func (g *Network) bumpState() { g.stateVersion++ }

func (g *Network) bumpTopo() {
	g.topoVersion++
	g.stateVersion++
}

func (g *Network) touchLink(i int) {
	g.bumpState()
	g.stamp[i] = g.stateVersion
}

func (g *Network) touchAll() {
	g.bumpState()
	for i := range g.stamp {
		g.stamp[i] = g.stateVersion
	}
}

// Links is a getter: no mutation, no bump required.
func (g *Network) Links() int { return len(g.links) }

// AddLink mutates topology and bumps: clean.
func (g *Network) AddLink(w int) {
	g.links = append(g.links, w)
	g.bumpTopo()
}

// UseGood mutates residual state and bumps: clean.
func (g *Network) UseGood(i int) {
	g.links[i] = -g.links[i]
	g.bumpState()
}

// UseInline bumps through the raw counter, which also counts: clean.
func (g *Network) UseInline(i int) {
	g.links[i] = 1
	g.stateVersion++
}

// UseBad mutates without bumping: finding.
func (g *Network) UseBad(i int) {
	g.links[i] = 0
}

// Alias mutates through a local alias of receiver state: finding.
func (g *Network) Alias() {
	ls := g.links
	ls[0] = 9
}

// Mutate calls a mutator method on reachable state without bumping: finding.
func (g *Network) Mutate(i int) {
	g.avail.Add(i)
}

// Reserve delegates to a checked sibling: clean (the callee bumps).
func (g *Network) Reserve(i int) {
	g.UseGood(i)
}

// UseStamped mutates availability and stamps the link journal (touchLink
// bumps transitively): clean.
func (g *Network) UseStamped(i int) {
	g.avail.Add(i)
	g.touchLink(i)
}

// ResetAll mutates availability and stamps every row: clean.
func (g *Network) ResetAll() {
	g.avail.Add(0)
	g.touchAll()
}

// AvailBumpOnly mutates availability but only bumps the aggregate counter,
// so the per-link journal misses the change: finding.
func (g *Network) AvailBumpOnly(i int) {
	g.avail.Add(i)
	g.bumpState()
}

// AvailStructural mutates availability under a topology bump, which
// invalidates cached weights wholesale: clean.
func (g *Network) AvailStructural(i int) {
	g.avail.Add(i)
	g.bumpTopo()
}

// SetScratch writes a field no cache reads; the suppression records why.
func (g *Network) SetScratch(v int) { //wdmlint:ignore versionbump scratch feeds no derived cache
	g.scratch = v
}
