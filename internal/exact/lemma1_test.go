package exact

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLemma1ReductionRejectsBadWeights(t *testing.T) {
	_, err := Lemma1Reduction(2, []PairEdge{{From: 0, To: 1, W1: 1, W2: 1}})
	if err == nil {
		t.Fatal("(1,1) weights accepted")
	}
}

func TestLemma1KnownPositive(t *testing.T) {
	// Diamond: top corridor usable by path 1 only, bottom by path 2 only.
	edges := []PairEdge{
		{From: 0, To: 1, W1: 0, W2: 1},
		{From: 1, To: 3, W1: 0, W2: 1},
		{From: 0, To: 2, W1: 1, W2: 0},
		{From: 2, To: 3, W1: 1, W2: 0},
	}
	if !TwoCostZeroSolution(4, edges, 0, 3) {
		t.Fatal("two-cost instance should be solvable")
	}
	net, err := Lemma1Reduction(4, edges)
	if err != nil {
		t.Fatal(err)
	}
	if !HasZeroCostSplitPair(net, 0, 3) {
		t.Fatal("reduced WDM instance should be solvable")
	}
}

func TestLemma1KnownNegative(t *testing.T) {
	// Both corridors are λ0-only: the λ1 path cannot exist.
	edges := []PairEdge{
		{From: 0, To: 1, W1: 0, W2: 1},
		{From: 1, To: 3, W1: 0, W2: 1},
		{From: 0, To: 2, W1: 0, W2: 1},
		{From: 2, To: 3, W1: 0, W2: 1},
	}
	if TwoCostZeroSolution(4, edges, 0, 3) {
		t.Fatal("two-cost instance should be unsolvable")
	}
	net, _ := Lemma1Reduction(4, edges)
	if HasZeroCostSplitPair(net, 0, 3) {
		t.Fatal("reduced WDM instance should be unsolvable")
	}
}

func TestLemma1SharedEdgeForcesConflict(t *testing.T) {
	// A single middle edge usable by both paths: they cannot both cross it.
	edges := []PairEdge{
		{From: 0, To: 1, W1: 0, W2: 0},
		{From: 1, To: 2, W1: 0, W2: 0}, // the bottleneck
		{From: 2, To: 3, W1: 0, W2: 0},
	}
	if TwoCostZeroSolution(4, edges, 0, 3) {
		t.Fatal("single corridor cannot host two edge-disjoint paths")
	}
	net, _ := Lemma1Reduction(4, edges)
	if HasZeroCostSplitPair(net, 0, 3) {
		t.Fatal("reduction broke the bottleneck")
	}
}

// Property: the reduction is an equivalence — for random small instances,
// the two-cost problem has a zero-cost solution iff the reduced WDM
// instance has a λ-split edge-disjoint pair (the Lemma 1 claim).
func TestQuickLemma1Equivalence(t *testing.T) {
	weights := [][2]int{{0, 0}, {1, 0}, {0, 1}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		var edges []PairEdge
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			w := weights[rng.Intn(len(weights))]
			edges = append(edges, PairEdge{From: u, To: v, W1: w[0], W2: w[1]})
		}
		s, d := 0, n-1
		left := TwoCostZeroSolution(n, edges, s, d)
		net, err := Lemma1Reduction(n, edges)
		if err != nil {
			return false
		}
		right := HasZeroCostSplitPair(net, s, d)
		return left == right
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
