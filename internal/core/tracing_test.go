package core

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/explain"
	"repro/internal/topo"
	"repro/internal/wdm"
)

func spanNames(tc *obs.Trace) map[string]int {
	m := map[string]int{}
	for i := range tc.Spans {
		m[tc.Spans[i].Name]++
	}
	return m
}

func traceAttr(tc *obs.Trace, key string) any {
	var v any
	for _, a := range tc.Attrs { // last write wins, like the JSON rendering
		if a.Key == key {
			v = a.Value()
		}
	}
	return v
}

func TestRouterTracesRequest(t *testing.T) {
	net := topo.NSFNET(topo.Config{W: 4})
	tr := obs.New(obs.Config{Capacity: 16})
	r := NewRouter(nil)
	r.SetTracer(tr)

	res, ok := r.ApproxMinCost(net, 0, 9)
	if !ok {
		t.Fatal("ApproxMinCost failed")
	}
	if got := r.LastTraceID(); got != 1 {
		t.Fatalf("LastTraceID = %d, want 1", got)
	}
	tc := tr.Flight().Find(1)
	if tc == nil {
		t.Fatal("trace 1 not in the flight recorder")
	}
	if tc.Kind != "min-cost" || tc.S != 0 || tc.T != 9 || tc.Status != obs.StatusOK {
		t.Fatalf("trace = %q %d→%d %q", tc.Kind, tc.S, tc.T, tc.Status)
	}
	names := spanNames(tc)
	if names["skeleton-build"] != 1 || names["reweight"] != 1 || names["suurballe"] != 1 || names["refine"] != 2 {
		t.Fatalf("span census %v; want 1×skeleton-build, 1×reweight, 1×suurballe, 2×refine", names)
	}
	if got := traceAttr(tc, "skeleton"); got != "build" {
		t.Errorf("skeleton attr = %v, want build", got)
	}
	rep, okRep := tc.Payload.(*explain.Report)
	if !okRep {
		t.Fatalf("payload is %T, want *explain.Report", tc.Payload)
	}
	if rep.Req != 1 || rep.ReportedCost != res.Cost || len(rep.Phases) == 0 {
		t.Fatalf("report req=%d cost=%g phases=%d", rep.Req, rep.ReportedCost, len(rep.Phases))
	}
	if !rep.Bound.Checked || !rep.Bound.Holds {
		t.Fatalf("Lemma 2 bound should hold on NSFNET: %+v", rep.Bound)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}

	// Second identical request: the skeleton cache hits; no build span.
	if _, ok := r.ApproxMinCost(net, 0, 9); !ok {
		t.Fatal("second ApproxMinCost failed")
	}
	tc2 := tr.Flight().Find(2)
	if tc2 == nil {
		t.Fatal("trace 2 missing")
	}
	if got := traceAttr(tc2, "skeleton"); got != "cache-hit" {
		t.Errorf("second-call skeleton attr = %v, want cache-hit", got)
	}
	if n := spanNames(tc2)["skeleton-build"]; n != 0 {
		t.Errorf("cache hit recorded %d skeleton-build spans", n)
	}
}

func TestRouterTracesMinLoad(t *testing.T) {
	net := topo.NSFNET(topo.Config{W: 4})
	tr := obs.New(obs.Config{})
	r := NewRouter(nil)
	r.SetTracer(tr)
	if _, ok := r.MinLoad(net, 2, 11); !ok {
		t.Fatal("MinLoad failed")
	}
	tc := tr.Flight().Find(1)
	if tc == nil {
		t.Fatal("trace missing")
	}
	names := spanNames(tc)
	if names["mincog"] != 1 || names["reweight"] == 0 || names["suurballe"] == 0 {
		t.Fatalf("span census %v; want a mincog span wrapping reweight/suurballe rounds", names)
	}
	rep := tc.Payload.(*explain.Report)
	if rep.Bound.Checked {
		t.Error("MinLoad ω is congestion-weighted; the cost bound must not be checked")
	}
	if rep.Algorithm != "min-load" {
		t.Errorf("algorithm = %q", rep.Algorithm)
	}
}

func TestRouterTracesBlockedRequest(t *testing.T) {
	// A 0→1→2 chain has no two edge-disjoint paths: the request must block
	// and the trace must land with StatusBlocked and no payload.
	net := wdm.NewNetwork(3, 2)
	net.AddLink(0, 1, []wdm.Wavelength{0, 1}, []float64{1, 1})
	net.AddLink(1, 2, []wdm.Wavelength{0, 1}, []float64{1, 1})
	tr := obs.New(obs.Config{})
	r := NewRouter(nil)
	r.SetTracer(tr)
	if _, ok := r.ApproxMinCost(net, 0, 2); ok {
		t.Fatal("chain network should not admit a disjoint pair")
	}
	tc := tr.Flight().Find(1)
	if tc == nil {
		t.Fatal("blocked request left no trace")
	}
	if tc.Status != obs.StatusBlocked || tc.Payload != nil {
		t.Fatalf("status=%q payload=%v; want blocked, nil", tc.Status, tc.Payload)
	}
}

func TestRouterTracerDisabled(t *testing.T) {
	net := topo.NSFNET(topo.Config{W: 4})
	tr := obs.New(obs.Config{})
	r := NewRouter(nil)
	r.SetTracer(tr)
	tr.Disable()
	if _, ok := r.ApproxMinCost(net, 0, 9); !ok {
		t.Fatal("ApproxMinCost failed")
	}
	if got := r.LastTraceID(); got != -1 {
		t.Errorf("LastTraceID = %d, want -1 when disabled", got)
	}
	if n := tr.Flight().Total(); n != 0 {
		t.Errorf("disabled tracer recorded %d traces", n)
	}
	tr.Enable()
	if _, ok := r.TwoStepMinCost(net, 0, 9); !ok {
		t.Fatal("TwoStepMinCost failed")
	}
	if tc := tr.Flight().Find(1); tc == nil || tc.Kind != "two-step" {
		t.Fatalf("two-step trace missing or mislabelled: %+v", tc)
	}
}

// BenchmarkTracerOverhead quantifies E22: the warm min-cost hot path with no
// tracer, with a disabled tracer (the production default), and with tracing
// fully on (spans + explain report + flight recorder).
func BenchmarkTracerOverhead(b *testing.B) {
	for _, mode := range []string{"none", "disabled", "enabled"} {
		b.Run(mode, func(b *testing.B) {
			net := topo.NSFNET(topo.Config{W: 8})
			r := NewRouter(nil)
			switch mode {
			case "disabled":
				tr := obs.New(obs.Config{})
				tr.Disable()
				r.SetTracer(tr)
			case "enabled":
				r.SetTracer(obs.New(obs.Config{}))
			}
			if _, ok := r.ApproxMinCost(net, 0, 9); !ok {
				b.Fatal("ApproxMinCost failed")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.ApproxMinCost(net, 0, 9)
			}
		})
	}
}
