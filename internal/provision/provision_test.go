package provision

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/topo"
	"repro/internal/wdm"
)

func demandsFrom(pairs [][2]int) []Demand {
	ds := make([]Demand, len(pairs))
	for i, p := range pairs {
		ds[i] = Demand{ID: i, Src: p[0], Dst: p[1]}
	}
	return ds
}

func TestProvisionPlacesAll(t *testing.T) {
	net := topo.NSFNET(topo.Config{W: 8})
	ds := demandsFrom([][2]int{{0, 13}, {1, 12}, {2, 11}, {3, 10}})
	res := Provision(net, ds, Config{Router: MinCost})
	if res.Placed != 4 || res.Failed != 0 {
		t.Fatalf("placed=%d failed=%d", res.Placed, res.Failed)
	}
	if res.TotalCost <= 0 || res.NetworkLoad <= 0 {
		t.Fatalf("metrics wrong: %+v", res)
	}
	// Every placement is reserved: paths validate against the residual
	// network only after teardown, so check structure instead.
	for _, p := range res.Placements {
		if p.Route == nil {
			t.Fatal("nil route among placed")
		}
		if !p.Route.Primary.EdgeDisjoint(p.Route.Backup) {
			t.Fatal("pair not disjoint")
		}
	}
}

func TestProvisionCountsFailures(t *testing.T) {
	// One wavelength ring: each robust pair consumes the full ring cut
	// around its endpoints, so repeated identical demands must fail.
	net := topo.Ring(6, topo.Config{W: 1})
	ds := demandsFrom([][2]int{{0, 3}, {0, 3}, {0, 3}})
	res := Provision(net, ds, Config{Router: MinCost})
	if res.Placed != 1 || res.Failed != 2 {
		t.Fatalf("placed=%d failed=%d, want 1/2", res.Placed, res.Failed)
	}
}

func TestOrderPoliciesChangeOutcome(t *testing.T) {
	// Scarce network where placing the short demand first blocks the long
	// one. LongestFirst places the long demand while the network is empty.
	// Topology: line 0-1-2-3 plus a parallel arc per span (so robust pairs
	// exist), W=1.
	mk := func() *wdm.Network {
		net := wdm.NewNetwork(4, 1)
		for v := 0; v < 3; v++ {
			net.AddUniformLink(v, v+1, 1)
			net.AddUniformLink(v, v+1, 1.5) // parallel fiber
		}
		net.SetAllConverters(wdm.NewFullConverter(1, 0))
		return net
	}
	long := Demand{ID: 0, Src: 0, Dst: 3}
	short := Demand{ID: 1, Src: 1, Dst: 2}
	// In order: short first eats span 1-2 on both fibers → long fails.
	resIn := Provision(mk(), []Demand{short, long}, Config{Router: MinCost, Order: InOrder})
	resLong := Provision(mk(), []Demand{short, long}, Config{Router: MinCost, Order: LongestFirst})
	if resIn.Placed != 1 {
		t.Fatalf("in-order placed = %d, want 1", resIn.Placed)
	}
	if resLong.Placed != 1 {
		// Long first also blocks short — the point is the *identity* of the
		// placed demand flips.
		t.Fatalf("longest-first placed = %d, want 1", resLong.Placed)
	}
	if resIn.Placements[1].Route != nil {
		t.Fatal("in-order should fail the long demand")
	}
	if resLong.Placements[1].Route == nil {
		t.Fatal("longest-first should place the long demand")
	}
}

func TestShortestFirstMaximisesCount(t *testing.T) {
	net := wdm.NewNetwork(4, 1)
	for v := 0; v < 3; v++ {
		net.AddUniformLink(v, v+1, 1)
		net.AddUniformLink(v, v+1, 1.5)
	}
	net.SetAllConverters(wdm.NewFullConverter(1, 0))
	// Two short demands fit simultaneously; the long one conflicts with both.
	ds := []Demand{{ID: 0, Src: 0, Dst: 3}, {ID: 1, Src: 0, Dst: 1}, {ID: 2, Src: 2, Dst: 3}}
	res := Provision(net, ds, Config{Router: MinCost, Order: ShortestFirst})
	if res.Placed != 2 {
		t.Fatalf("shortest-first placed = %d, want 2", res.Placed)
	}
}

func TestImprovementPassReducesCost(t *testing.T) {
	// Demand A routed first grabs the cheap corridor that demand B needs
	// more; after B is placed, re-routing A onto its alternative lowers the
	// total. Construct: A: 0→2 via cheap 0-2 direct or 0-1-2; B: 0→2 also.
	// Simpler deterministic check: improvement never increases cost and
	// reports zero improvements on an already-optimal placement.
	net := topo.NSFNET(topo.Config{W: 4})
	rng := rand.New(rand.NewSource(2))
	var ds []Demand
	for i := 0; i < 12; i++ {
		s := rng.Intn(14)
		d := rng.Intn(13)
		if d >= s {
			d++
		}
		ds = append(ds, Demand{ID: i, Src: s, Dst: d})
	}
	base := Provision(topo.NSFNET(topo.Config{W: 4}), ds, Config{Router: MinCost})
	improved := Provision(net, ds, Config{Router: MinCost, ImprovePasses: 3})
	if improved.Placed < base.Placed {
		t.Fatalf("improvement lost placements: %d < %d", improved.Placed, base.Placed)
	}
	if improved.TotalCost > base.TotalCost+1e-9 {
		t.Fatalf("improvement increased cost: %g > %g", improved.TotalCost, base.TotalCost)
	}
}

func TestImprovementRetriesFailures(t *testing.T) {
	// With improvement passes, a demand that failed in the greedy pass can
	// be placed after others are re-routed. At minimum the retry path must
	// not corrupt state: placed+failed == len(demands).
	net := topo.Ring(8, topo.Config{W: 2})
	rng := rand.New(rand.NewSource(5))
	var ds []Demand
	for i := 0; i < 10; i++ {
		s := rng.Intn(8)
		d := rng.Intn(7)
		if d >= s {
			d++
		}
		ds = append(ds, Demand{ID: i, Src: s, Dst: d})
	}
	res := Provision(net, ds, Config{Router: MinLoadCost, ImprovePasses: 2})
	if res.Placed+res.Failed != len(ds) {
		t.Fatalf("accounting broken: %d + %d != %d", res.Placed, res.Failed, len(ds))
	}
	// Wavelength book-keeping is consistent: releasing everything restores
	// the full pool.
	total := 0
	for _, p := range res.Placements {
		if p.Route != nil {
			if err := net.ReleasePath(p.Route.Primary); err != nil {
				t.Fatal(err)
			}
			if err := net.ReleasePath(p.Route.Backup); err != nil {
				t.Fatal(err)
			}
			total++
		}
	}
	if net.NetworkLoad() != 0 {
		t.Fatal("capacity leaked")
	}
	if total != res.Placed {
		t.Fatal("placement count mismatch")
	}
}

func TestNodeDisjointProvisioning(t *testing.T) {
	net := topo.NSFNET(topo.Config{W: 8})
	ds := demandsFrom([][2]int{{0, 13}, {5, 8}})
	res := Provision(net, ds, Config{Router: NodeDisjoint})
	if res.Placed != 2 {
		t.Fatalf("placed = %d", res.Placed)
	}
	for _, p := range res.Placements {
		nodes := map[int]bool{}
		for _, v := range p.Route.Primary.Nodes(net) {
			if v != p.Demand.Src && v != p.Demand.Dst {
				nodes[v] = true
			}
		}
		for _, v := range p.Route.Backup.Nodes(net) {
			if v != p.Demand.Src && v != p.Demand.Dst && nodes[v] {
				t.Fatal("node-disjoint placement shares a node")
			}
		}
	}
}

func TestTotalCostMatchesPlacements(t *testing.T) {
	net := topo.ARPA2(topo.Config{W: 4})
	ds := demandsFrom([][2]int{{0, 19}, {3, 16}, {7, 12}})
	res := Provision(net, ds, Config{Router: MinLoadCost, ImprovePasses: 1})
	sum := 0.0
	for _, p := range res.Placements {
		if p.Route != nil {
			sum += p.Route.Cost
		}
	}
	if math.Abs(sum-res.TotalCost) > 1e-9 {
		t.Fatalf("TotalCost %g != sum %g", res.TotalCost, sum)
	}
}
