// Sharedbackup: quantify the capacity cost of the paper's dedicated-backup
// activate approach against shared-backup path protection (SBPP), and walk
// through a failure: the affected connection switches to its shared backup
// while its sharing partners lose protection (but keep running).
//
//	go run ./examples/sharedbackup
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

func main() {
	const demands = 50
	rng := rand.New(rand.NewSource(42))

	// Establish the same demand set under SBPP.
	mgr := repro.NewSharedProtection(repro.NSFNET(repro.TopoConfig{W: 8}))
	var ids []int
	var conns []*repro.SharedConnection
	for i := 0; i < demands; i++ {
		s := rng.Intn(14)
		d := rng.Intn(13)
		if d >= s {
			d++
		}
		if c, ok := mgr.Establish(s, d); ok {
			ids = append(ids, c.ID)
			conns = append(conns, c)
		}
	}
	rep := mgr.Report()
	fmt.Printf("NSFNET, W=8, %d demands, %d placed\n\n", demands, mgr.Connections())
	fmt.Printf("primary channels reserved       %d\n", rep.PrimaryChannels)
	fmt.Printf("backup channels if dedicated    %d   (the paper's activate approach)\n", rep.BackupDemand)
	fmt.Printf("backup channels actually used   %d   (%d of them shared)\n", rep.BackupChannels, rep.SharedChannels)
	fmt.Printf("backup capacity saved           %.1f%%\n\n", 100*rep.Savings())

	// Fail a link carrying a primary and watch the switchovers.
	net := mgr.Net()
	failed := conns[0].Primary.Hops[0].Link
	recovered, lost, unprotected := mgr.FailLink(failed)
	fmt.Printf("failing link %d (%d→%d):\n", failed, net.Link(failed).From, net.Link(failed).To)
	fmt.Printf("  recovered via shared backup   %d\n", recovered)
	fmt.Printf("  lost                          %d\n", lost)
	fmt.Printf("  partners left unprotected     %d\n\n", unprotected)
	fmt.Println("Sharing is safe under the single-link-failure model: channels are")
	fmt.Println("only shared between connections whose primaries are link-disjoint,")
	fmt.Println("so one failure never triggers two sharers at once.")

	// Clean teardown (capacity audit).
	for _, id := range ids {
		if err := mgr.Teardown(id); err != nil && mgr.Connections() > 0 {
			// Connections dropped by the failure are already gone.
			continue
		}
	}
	fmt.Printf("\nafter teardown: network load ρ = %.3g\n", mgr.Net().NetworkLoad())
}
