package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/parallel"
	"repro/internal/provision"
	"repro/internal/reconfig"
	"repro/internal/sbpp"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/wdm"
	"repro/internal/workload"
)

// E11 compares the two §1 protection disciplines: edge-disjoint pairs
// (single link failures) versus internally node-disjoint pairs (node and
// link failures) — feasibility and cost premium.
func E11(o Options) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "Edge-disjoint vs node-disjoint protection (§1)",
		Columns: []string{"topology", "requests", "edge ok", "node ok", "mean cost premium (node/edge)"},
		Notes:   "node-disjoint pairs survive single node failures but need more capacity; premium over pairs where both exist",
	}
	seeds := o.seeds(200, 20)
	cases := []struct {
		name string
		make func(i int) (*wdm.Network, int, int)
	}{
		{"nsfnet", func(i int) (*wdm.Network, int, int) {
			rng := rand.New(rand.NewSource(int64(i)))
			s := rng.Intn(14)
			d := rng.Intn(13)
			if d >= s {
				d++
			}
			return topo.NSFNET(topo.Config{W: 4}), s, d
		}},
		{"waxman-16", func(i int) (*wdm.Network, int, int) {
			return topo.Waxman(16, 0.35, 0.35, int64(i), topo.Config{W: 4}), 0, 15
		}},
		{"ring-8", func(i int) (*wdm.Network, int, int) {
			rng := rand.New(rand.NewSource(int64(i)))
			s := rng.Intn(8)
			d := rng.Intn(7)
			if d >= s {
				d++
			}
			return topo.Ring(8, topo.Config{W: 4}), s, d
		}},
		{"bowtie-5", func(i int) (*wdm.Network, int, int) {
			// Articulation node 2: edge-disjoint pairs exist, node-disjoint
			// pairs cannot.
			net := wdm.NewNetwork(5, 4)
			net.AddUniformLink(0, 1, 1)
			net.AddUniformLink(1, 2, 1)
			net.AddUniformLink(0, 2, 1)
			net.AddUniformLink(2, 3, 1)
			net.AddUniformLink(3, 4, 1)
			net.AddUniformLink(2, 4, 1)
			return net, 0, 4
		}},
	}
	for _, c := range cases {
		type sample struct {
			okE, okN bool
			premium  float64
		}
		samples := parallel.MapWithState(seeds, 0,
			func() *core.Router { return core.NewRouter(nil) },
			func(router *core.Router, i int) sample {
				net, s, d := c.make(i)
				re, okE := router.ApproxMinCost(net, s, d)
				rn, okN := router.ApproxMinCostNodeDisjoint(net, s, d)
				out := sample{okE: okE, okN: okN}
				if okE && okN {
					out.premium = rn.Cost / re.Cost
				}
				return out
			})
		okE, okN := 0, 0
		var prem stats.Stream
		for _, s := range samples {
			if s.okE {
				okE++
			}
			if s.okN {
				okN++
			}
			if s.okE && s.okN {
				prem.Add(s.premium)
			}
		}
		t.AddRow(c.name, fmt.Sprint(seeds),
			fmtPct(float64(okE)/float64(seeds)), fmtPct(float64(okN)/float64(seeds)),
			fmtF(prem.Mean()))
	}
	return t
}

// E12 evaluates the static-provisioning extension: demand ordering and
// local-improvement ablation on batch workloads.
func E12(o Options) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "Static provisioning: ordering and improvement ablation",
		Columns: []string{"order", "improve", "placed", "total cost", "final ρ", "improved"},
		Notes:   "NSFNET, W=4, 30 random demands per seed, MinCost router; offline counterpart of the dynamic problem",
	}
	seeds := o.seeds(20, 4)
	demandCount := 30
	if o.Quick {
		demandCount = 15
	}
	type cfgDef struct {
		name    string
		order   provision.Order
		improve int
	}
	cfgs := []cfgDef{
		{"in-order", provision.InOrder, 0},
		{"longest-first", provision.LongestFirst, 0},
		{"shortest-first", provision.ShortestFirst, 0},
		{"in-order", provision.InOrder, 3},
		{"longest-first", provision.LongestFirst, 3},
	}
	for _, c := range cfgs {
		c := c
		type sample struct {
			placed, improved int
			cost, load       float64
		}
		samples := parallel.Map(seeds, 0, func(i int) sample {
			rng := rand.New(rand.NewSource(int64(61000 + i)))
			var ds []provision.Demand
			for k := 0; k < demandCount; k++ {
				s := rng.Intn(14)
				d := rng.Intn(13)
				if d >= s {
					d++
				}
				ds = append(ds, provision.Demand{ID: k, Src: s, Dst: d})
			}
			res := provision.Provision(topo.NSFNET(topo.Config{W: 4}), ds, provision.Config{
				Router: provision.MinCost, Order: c.order, ImprovePasses: c.improve,
			})
			return sample{placed: res.Placed, improved: res.Improved, cost: res.TotalCost, load: res.NetworkLoad}
		})
		var placed, cost, load, improved stats.Stream
		for _, s := range samples {
			placed.Add(float64(s.placed))
			cost.Add(s.cost)
			load.Add(s.load)
			improved.Add(float64(s.improved))
		}
		t.AddRow(c.name, fmt.Sprint(c.improve), fmtF(placed.Mean()),
			fmtF(cost.Mean()), fmtF(load.Mean()), fmtF(improved.Mean()))
	}
	return t
}

// E13 measures the wavelength-conversion gain: blocking under dynamic
// traffic with full conversion (the §3.3 assumption), limited-range
// conversion, and no conversion at all (the wavelength-continuity regime of
// Lemma 1). The routers degrade gracefully: with restricted converters the
// Lemma 2 refinement may find no consistent assignment, and the request
// blocks.
func E13(o Options) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "Wavelength-conversion gain (Lemma 1 regime vs §3.3 regime)",
		Columns: []string{"converter", "W", "blocking", "mean cost", "mean ρ"},
		Notes:   "NSFNET, erlang 25, min-cost robust routing; conversion relaxes the continuity constraint and lowers blocking",
	}
	type convDef struct {
		name string
		mk   func(w int) wdm.Converter
	}
	convs := []convDef{
		{"none", func(w int) wdm.Converter { return wdm.NoConverter{} }},
		{"range-1", func(w int) wdm.Converter { return wdm.NewRangeConverter(1, 0.5) }},
		{"full", func(w int) wdm.Converter { return wdm.NewFullConverter(w, 0.5) }},
	}
	ws := []int{4, 8}
	count := 500
	if o.Quick {
		ws = []int{4}
		count = 150
	}
	for _, w := range ws {
		for _, cv := range convs {
			cv := cv
			w := w
			bl, _, ml, _, cost, _, _, _ := runDynamic(o, func(seed int64) (*netsim.Sim, []workload.Request) {
				net := topo.NSFNET(topo.Config{W: w})
				net.SetAllConverters(cv.mk(w))
				sim := netsim.New(net, netsim.Config{
					Algorithm: netsim.MinCost, Restoration: netsim.Active, Seed: seed,
				})
				reqs := workload.Poisson(workload.PoissonConfig{
					Nodes: 14, ArrivalRate: 25, MeanHolding: 1, Count: count, Seed: 5000 + seed,
				})
				return sim, reqs
			})
			t.AddRow(cv.name, fmt.Sprint(w), fmtPct(bl.Mean()), fmtF(cost.Mean()), fmtF(ml.Mean()))
		}
	}
	return t
}

// E14 compares adaptive robust routing (recompute on the live residual
// network, the paper's approach) against fixed-alternate robust routing
// (precomputed route-pair table, the cheap-lookup baseline of the era): the
// adaptive advantage the §1 discussion of dynamic algorithms implies.
func E14(o Options) *Table {
	t := &Table{
		ID:      "E14",
		Title:   "Adaptive vs fixed-alternate robust routing",
		Columns: []string{"erlang", "discipline", "blocking", "mean cost"},
		Notes:   "NSFNET, W=8; fixed-alternate precomputes k edge-disjoint pair alternates per node pair on the idle network",
	}
	erlangs := []float64{20, 35}
	count := 500
	if o.Quick {
		erlangs = []float64{30}
		count = 150
	}
	type disc struct {
		name string
		mk   func(net *wdm.Network) func(*wdm.Network, int, int) (*core.Result, bool)
	}
	discs := []disc{
		{"adaptive (§3.3)", nil},
		{"fixed-alt k=1", func(net *wdm.Network) func(*wdm.Network, int, int) (*core.Result, bool) {
			tbl := core.BuildAlternateTable(net, 1, nil)
			return tbl.Route
		}},
		{"fixed-alt k=3", func(net *wdm.Network) func(*wdm.Network, int, int) (*core.Result, bool) {
			tbl := core.BuildAlternateTable(net, 3, nil)
			return tbl.Route
		}},
	}
	for _, erl := range erlangs {
		for _, d := range discs {
			d := d
			erl := erl
			bl, _, _, _, cost, _, _, _ := runDynamic(o, func(seed int64) (*netsim.Sim, []workload.Request) {
				net := topo.NSFNET(topo.Config{W: 8})
				cfg := netsim.Config{Algorithm: netsim.MinCost, Restoration: netsim.Active, Seed: seed}
				if d.mk != nil {
					cfg.RouteFunc = d.mk(net)
				}
				sim := netsim.New(net, cfg)
				reqs := workload.Poisson(workload.PoissonConfig{
					Nodes: 14, ArrivalRate: erl, MeanHolding: 1, Count: count, Seed: 6000 + seed,
				})
				return sim, reqs
			})
			t.AddRow(fmtF(erl), d.name, fmtPct(bl.Mean()), fmtF(cost.Mean()))
		}
	}
	return t
}

// E15 quantifies the capacity saved by shared-backup path protection
// (extension): the paper's activate approach dedicates every backup
// channel; SBPP shares backup channels between connections whose primaries
// are link-disjoint.
func E15(o Options) *Table {
	t := &Table{
		ID:      "E15",
		Title:   "Dedicated vs shared backup capacity (SBPP extension)",
		Columns: []string{"topology", "W", "demands", "placed", "backup demand", "backup reserved", "savings"},
		Notes:   "batch establishment; savings = 1 − reserved/dedicated backup channels, single-failure sharing rule",
	}
	seeds := o.seeds(10, 3)
	demands := 60
	if o.Quick {
		demands = 25
	}
	cases := []struct {
		name string
		mk   func() *wdm.Network
		n    int
	}{
		{"nsfnet", func() *wdm.Network { return topo.NSFNET(topo.Config{W: 8}) }, 14},
		{"arpa2", func() *wdm.Network { return topo.ARPA2(topo.Config{W: 8}) }, 20},
	}
	if o.Quick {
		cases = cases[:1]
	}
	for _, c := range cases {
		c := c
		type sample struct {
			placed, demand, reserved int
		}
		samples := parallel.Map(seeds, 0, func(i int) sample {
			rng := rand.New(rand.NewSource(int64(71000 + i)))
			m := sbpp.NewManager(c.mk())
			placed := 0
			for k := 0; k < demands; k++ {
				s := rng.Intn(c.n)
				d := rng.Intn(c.n - 1)
				if d >= s {
					d++
				}
				if _, ok := m.Establish(s, d); ok {
					placed++
				}
			}
			rep := m.Report()
			return sample{placed: placed, demand: rep.BackupDemand, reserved: rep.BackupChannels}
		})
		var placed, demand, reserved, savings stats.Stream
		for _, s := range samples {
			placed.Add(float64(s.placed))
			demand.Add(float64(s.demand))
			reserved.Add(float64(s.reserved))
			if s.demand > 0 {
				savings.Add(1 - float64(s.reserved)/float64(s.demand))
			}
		}
		t.AddRow(c.name, "8", fmt.Sprint(demands), fmtF(placed.Mean()),
			fmtF(demand.Mean()), fmtF(reserved.Mean()), fmtPct(savings.Mean()))
	}
	return t
}

// E16 evaluates SRLG-aware protection (extension): when several fibers
// share a duct, a duct cut takes them all out; a backup chosen without risk
// groups in mind can die with its primary. Synthetic duct groups are
// assigned to NSFNET spans; each router protects a batch of connections and
// every duct is then cut in turn, counting connections that lose both paths.
func E16(o Options) *Table {
	t := &Table{
		ID:      "E16",
		Title:   "SRLG-aware vs SRLG-oblivious protection",
		Columns: []string{"duct share", "router", "placed", "outages", "outage rate", "mean cost"},
		Notes:   "NSFNET, W=8, 25 connections; outage = one duct cut kills both primary and backup of a connection",
	}
	seeds := o.seeds(20, 4)
	shares := []float64{0.3, 0.6}
	if o.Quick {
		shares = shares[:1]
	}
	for _, share := range shares {
		for _, aware := range []bool{false, true} {
			name := "edge-disjoint (§3.3)"
			if aware {
				name = "srlg-aware"
			}
			share := share
			aware := aware
			type sample struct {
				placed, outages int
				cost            float64
			}
			samples := parallel.Map(seeds, 0, func(i int) sample {
				rng := rand.New(rand.NewSource(int64(83000 + i)))
				net := topo.NSFNET(topo.Config{W: 8})
				// Assign duct groups: with probability `share`, a span joins
				// the duct of a random earlier span at the same node (both
				// directions of a span always share one group).
				group := 0
				spanGroup := map[[2]int]int{}
				for id := 0; id < net.Links(); id++ {
					l := net.Link(id)
					a, b := l.From, l.To
					if a > b {
						a, b = b, a
					}
					if gid, ok := spanGroup[[2]int{a, b}]; ok {
						net.SetSRLG(id, gid)
						continue
					}
					gid := group
					group++
					// Optionally merge with an existing duct at endpoint a.
					if rng.Float64() < share {
						for sp, g2 := range spanGroup {
							if sp[0] == a || sp[1] == a {
								gid = g2
								break
							}
						}
					}
					spanGroup[[2]int{a, b}] = gid
					net.SetSRLG(id, gid)
				}
				var routes []*core.Result
				cost := 0.0
				router := core.NewRouter(nil)
				for k := 0; k < 25; k++ {
					s := rng.Intn(14)
					d := rng.Intn(13)
					if d >= s {
						d++
					}
					var r *core.Result
					var ok bool
					if aware {
						r, ok = core.ApproxMinCostSRLG(net, s, d, 0, nil)
					} else {
						r, ok = router.ApproxMinCost(net, s, d)
					}
					if ok && core.Establish(net, r) == nil {
						routes = append(routes, r)
						cost += r.Cost
					}
				}
				// Cut every duct group; a connection suffers an outage when
				// both its paths cross the cut.
				hitsGroup := func(p *wdm.Semilightpath, gid int) bool {
					for _, h := range p.Hops {
						for _, g2 := range net.SRLGs(h.Link) {
							if g2 == gid {
								return true
							}
						}
					}
					return false
				}
				outages := 0
				for gid := 0; gid < group; gid++ {
					for _, r := range routes {
						if hitsGroup(r.Primary, gid) && hitsGroup(r.Backup, gid) {
							outages++
						}
					}
				}
				return sample{placed: len(routes), outages: outages, cost: cost}
			})
			var placed, outages, rate, cost stats.Stream
			for _, s := range samples {
				placed.Add(float64(s.placed))
				outages.Add(float64(s.outages))
				if s.placed > 0 {
					rate.Add(float64(s.outages) / float64(s.placed))
					cost.Add(s.cost / float64(s.placed))
				}
			}
			t.AddRow(fmtF(share), name, fmtF(placed.Mean()), fmtF(outages.Mean()),
				fmtF(rate.Mean()), fmtF(cost.Mean()))
		}
	}
	return t
}

// E17 explores the protection-level tradeoff (extension): k = 1 (no
// protection) through k = 4 pairwise-disjoint paths per connection —
// feasibility, capacity consumed, and survival under simultaneous
// double-link failures. The paper's scheme is k = 2.
func E17(o Options) *Table {
	t := &Table{
		ID:      "E17",
		Title:   "Protection level k: capacity vs multi-failure survival",
		Columns: []string{"k", "feasible", "mean channels/conn", "single-failure survival", "double-failure survival"},
		Notes:   "NSFNET, W=8, random pairs; survival = connection keeps a path under a random simultaneous failure set",
	}
	seeds := o.seeds(30, 6)
	failTrials := 40
	if o.Quick {
		failTrials = 10
	}
	for k := 1; k <= 4; k++ {
		k := k
		type sample struct {
			feasible     bool
			channels     int
			surv1, surv2 float64
		}
		samples := parallel.Map(seeds, 0, func(i int) sample {
			rng := rand.New(rand.NewSource(int64(91000 + 10*k + i)))
			net := topo.NSFNET(topo.Config{W: 8})
			s := rng.Intn(14)
			d := rng.Intn(13)
			if d >= s {
				d++
			}
			r, ok := core.ApproxMinCostK(net, s, d, k, nil)
			if !ok {
				return sample{}
			}
			channels := 0
			for _, p := range r.Paths {
				channels += p.Len()
			}
			// Random failure sets.
			surv := func(nFail int) float64 {
				ok := 0
				for trial := 0; trial < failTrials; trial++ {
					down := map[int]bool{}
					for len(down) < nFail {
						down[rng.Intn(net.Links())] = true
					}
					if r.SurvivesFailures(down) {
						ok++
					}
				}
				return float64(ok) / float64(failTrials)
			}
			return sample{feasible: true, channels: channels, surv1: surv(1), surv2: surv(2)}
		})
		feasible := 0
		var ch, s1, s2 stats.Stream
		for _, s := range samples {
			if !s.feasible {
				continue
			}
			feasible++
			ch.Add(float64(s.channels))
			s1.Add(s.surv1)
			s2.Add(s.surv2)
		}
		t.AddRow(fmt.Sprint(k), fmtPct(float64(feasible)/float64(seeds)),
			fmtF(ch.Mean()), fmtPct(s1.Mean()), fmtPct(s2.Mean()))
	}
	return t
}

// E18 checks that the §4 conclusions are not artifacts of the uniform
// Poisson/exponential workload: blocking and load are re-measured under a
// gravity-model matrix (large-city pairs dominate) and heavy-tailed
// (Pareto) holding times.
func E18(o Options) *Table {
	t := &Table{
		ID:      "E18",
		Title:   "Traffic-model sensitivity: uniform vs gravity vs heavy-tailed",
		Columns: []string{"workload", "algorithm", "blocking", "mean ρ", "max ρ"},
		Notes:   "NSFNET, W=8, erlang 25; gravity populations follow a 3:1 big/small city split",
	}
	count := 500
	if o.Quick {
		count = 150
	}
	pops := make([]float64, 14)
	for i := range pops {
		pops[i] = 1
		if i%3 == 0 {
			pops[i] = 3
		}
	}
	gravity := workload.NewGravityMatrix(pops)
	uniform := workload.NewUniformMatrix(14)
	type wl struct {
		name string
		mk   func(seed int64) []workload.Request
	}
	wls := []wl{
		{"uniform/exp", func(seed int64) []workload.Request {
			return workload.MatrixPoisson(workload.MatrixConfig{
				Matrix: uniform, ArrivalRate: 25, MeanHolding: 1, Count: count, Seed: 7000 + seed,
			})
		}},
		{"gravity/exp", func(seed int64) []workload.Request {
			return workload.MatrixPoisson(workload.MatrixConfig{
				Matrix: gravity, ArrivalRate: 25, MeanHolding: 1, Count: count, Seed: 7000 + seed,
			})
		}},
		{"gravity/pareto", func(seed int64) []workload.Request {
			return workload.MatrixPoisson(workload.MatrixConfig{
				Matrix: gravity, ArrivalRate: 25, MeanHolding: 1, Count: count, Seed: 7000 + seed,
				Holding: workload.HoldingPareto,
			})
		}},
	}
	if o.Quick {
		wls = wls[:2]
	}
	for _, w := range wls {
		for _, algo := range []netsim.Algorithm{netsim.MinCost, netsim.MinLoadCost} {
			w := w
			algo := algo
			bl, _, ml, xl, _, _, _, _ := runDynamic(o, func(seed int64) (*netsim.Sim, []workload.Request) {
				sim := netsim.New(topo.NSFNET(topo.Config{W: 8}), netsim.Config{
					Algorithm: algo, Restoration: netsim.Active, Seed: seed,
					WarmupRequests: count / 10,
				})
				return sim, w.mk(seed)
			})
			t.AddRow(w.name, algo.String(), fmtPct(bl.Mean()), fmtF(ml.Mean()), fmtF(xl.Mean()))
		}
	}
	return t
}

// E19 closes the §4 loop: after loading the network with each router, run
// the full reconfiguration optimizer (the frozen-network operation the
// paper wants to avoid) and measure how much work it finds to do —
// load-aware routing should leave less residual imbalance.
func E19(o Options) *Table {
	t := &Table{
		ID:      "E19",
		Title:   "Reconfiguration gain after cost-only vs load-aware loading",
		Columns: []string{"router", "ρ before", "ρ after reconfig", "gain", "connections moved"},
		Notes:   "NSFNET, W=8, 18 connections; optimizer = iterated MinLoad re-routing of max-load connections",
	}
	seeds := o.seeds(15, 4)
	demands := 18
	if o.Quick {
		demands = 10
	}
	for _, algo := range []struct {
		name  string
		route func(*wdm.Network, int, int, *core.Options) (*core.Result, bool)
	}{
		{"min-cost", core.ApproxMinCost},
		{"min-load-cost", core.MinLoadCost},
	} {
		algo := algo
		type sample struct {
			before, after float64
			moves         int
			ok            bool
		}
		samples := parallel.Map(seeds, 0, func(i int) sample {
			rng := rand.New(rand.NewSource(int64(97000 + i)))
			net := topo.NSFNET(topo.Config{W: 8})
			var conns []*reconfig.Connection
			for k := 0; k < demands; k++ {
				s := rng.Intn(14)
				d := rng.Intn(13)
				if d >= s {
					d++
				}
				r, ok := algo.route(net, s, d, nil)
				if !ok || core.Establish(net, r) != nil {
					continue
				}
				conns = append(conns, &reconfig.Connection{
					ID: k, Src: s, Dst: d, Primary: r.Primary, Backup: r.Backup,
				})
			}
			res := reconfig.Optimize(net, conns, 0, nil)
			return sample{before: res.LoadBefore, after: res.LoadAfter, moves: res.Moves, ok: true}
		})
		var before, after, gain, moves stats.Stream
		for _, s := range samples {
			if !s.ok {
				continue
			}
			before.Add(s.before)
			after.Add(s.after)
			if s.before > 0 {
				gain.Add((s.before - s.after) / s.before)
			}
			moves.Add(float64(s.moves))
		}
		t.AddRow(algo.name, fmtF(before.Mean()), fmtF(after.Mean()),
			fmtPct(gain.Mean()), fmtF(moves.Mean()))
	}
	return t
}
