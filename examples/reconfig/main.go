// Reconfig: the paper's headline systems claim (§4) in one runnable
// scenario — folding load-awareness into route selection reduces how often
// the network load ρ crosses the reconfiguration threshold, and every
// avoided crossing is an avoided network freeze.
//
//	go run ./examples/reconfig
package main

import (
	"fmt"

	"repro"
)

func main() {
	const (
		erlang    = 10.0
		threshold = 0.6
		requests  = 3000
	)
	fmt.Printf("NSFNET, W=8, %.0f Erlang, %d requests, reconfiguration when ρ ≥ %.2g\n\n",
		erlang, requests, threshold)
	fmt.Printf("%-15s %12s %12s %10s %10s\n",
		"router", "reconfigs", "rerouted", "blocking", "max ρ")

	for _, c := range []struct {
		name string
		algo int
	}{
		{"min-cost", 0},
		{"min-load-cost", 1},
	} {
		var total, rerouted int
		var blocking, maxRho float64
		const runs = 3
		for seed := int64(0); seed < runs; seed++ {
			cfg := repro.SimConfig{
				Restoration:       repro.RestoreActive,
				ReconfigThreshold: threshold,
				ReconfigCooldown:  0.2,
				Seed:              seed,
			}
			if c.algo == 0 {
				cfg.Algorithm = repro.AlgoMinCost
			} else {
				cfg.Algorithm = repro.AlgoMinLoadCost
			}
			sim := repro.NewSim(repro.NSFNET(repro.TopoConfig{W: 8}), cfg)
			reqs := repro.Poisson(repro.PoissonConfig{
				Nodes: 14, ArrivalRate: erlang, MeanHolding: 1,
				Count: requests, Seed: 100 + seed,
			})
			m := sim.Run(reqs)
			total += m.Reconfigs
			rerouted += m.ReroutedConns
			blocking += m.BlockingProbability() / runs
			maxRho += m.MaxNetworkLoad / runs
		}
		fmt.Printf("%-15s %12d %12d %9.2f%% %10.3f\n",
			c.name, total, rerouted, 100*blocking, maxRho)
	}
	fmt.Println()
	fmt.Println("During a reconfiguration the network is frozen and accepts no requests")
	fmt.Println("(§1). The §4.2 router pays a small cost premium per route to cross the")
	fmt.Println("threshold less often — the trade the paper argues for.")
}
