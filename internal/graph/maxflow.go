package graph

// EdgeConnectivity returns the maximum number of pairwise edge-disjoint
// s→t paths over the enabled edges — by Menger's theorem, the unit-capacity
// max flow — computed with Dinic's algorithm. It bounds the protection
// level k any router can achieve for the pair (cross-validated against
// KDisjoint in tests).
func (g *Graph) EdgeConnectivity(s, t int) int {
	if s == t || s < 0 || t < 0 || s >= g.n || t >= g.n {
		return 0
	}
	// Residual network over unit-capacity arcs: arcs[i] and arcs[i^1] are
	// partners (forward/backward).
	type arc struct {
		to  int
		cap int
	}
	var arcs []arc
	head := make([][]int, g.n)
	addArc := func(u, v int) {
		head[u] = append(head[u], len(arcs))
		arcs = append(arcs, arc{to: v, cap: 1})
		head[v] = append(head[v], len(arcs))
		arcs = append(arcs, arc{to: u, cap: 0})
	}
	for id := 0; id < g.M(); id++ {
		if g.Disabled(id) {
			continue
		}
		e := g.Edge(id)
		if e.From == e.To {
			continue
		}
		addArc(e.From, e.To)
	}

	level := make([]int, g.n)
	iter := make([]int, g.n)
	queue := make([]int, 0, g.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, ai := range head[u] {
				a := arcs[ai]
				if a.cap > 0 && level[a.to] < 0 {
					level[a.to] = level[u] + 1
					queue = append(queue, a.to)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(u, f int) int
	dfs = func(u, f int) int {
		if u == t {
			return f
		}
		for ; iter[u] < len(head[u]); iter[u]++ {
			ai := head[u][iter[u]]
			a := &arcs[ai]
			if a.cap > 0 && level[a.to] == level[u]+1 {
				if d := dfs(a.to, min(f, a.cap)); d > 0 {
					a.cap -= d
					arcs[ai^1].cap += d
					return d
				}
			}
		}
		return 0
	}

	flow := 0
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(s, 1<<30)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
