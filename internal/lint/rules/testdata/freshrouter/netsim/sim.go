// Package netsim is a fixture hot-path package: wrapper calls are flagged
// even outside loops.
package netsim

import "fix/freshrouter/core"

// Route routes one arrival with a throwaway Router: finding.
func Route(s, t int) (int, bool) { return core.ApproxMinCost(s, t) }

// RouteWarm uses the caller's Router: clean.
func RouteWarm(r *core.Router, s, t int) (int, bool) { return r.ApproxMinCost(s, t) }
