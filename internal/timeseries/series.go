package timeseries

import (
	"math"
	"sort"
)

// Snapshot is one sealed window: nominal [Start, End) boundaries plus the
// per-series values, each slice sorted by series name so renderings are
// byte-stable. Snapshots are immutable once sealed.
type Snapshot struct {
	Window uint64  `json:"window"`
	Start  float64 `json:"start"`
	End    float64 `json:"end"`

	Hists  []HistValue  `json:"hist,omitempty"`
	Rates  []RateValue  `json:"rate,omitempty"`
	Ratios []RatioValue `json:"ratio,omitempty"`
	Gauges []GaugeValue `json:"gauge,omitempty"`
}

// Hist returns the named histogram value of the window (zero value, false
// when the series did not exist).
func (s *Snapshot) Hist(name string) (HistValue, bool) {
	for _, v := range s.Hists {
		if v.Name == name {
			return v, true
		}
	}
	return HistValue{}, false
}

// RateOf returns the named rate value of the window.
func (s *Snapshot) RateOf(name string) (RateValue, bool) {
	for _, v := range s.Rates {
		if v.Name == name {
			return v, true
		}
	}
	return RateValue{}, false
}

// RatioOf returns the named ratio value of the window.
func (s *Snapshot) RatioOf(name string) (RatioValue, bool) {
	for _, v := range s.Ratios {
		if v.Name == name {
			return v, true
		}
	}
	return RatioValue{}, false
}

// GaugeOf returns the named gauge value of the window.
func (s *Snapshot) GaugeOf(name string) (GaugeValue, bool) {
	for _, v := range s.Gauges {
		if v.Name == name {
			return v, true
		}
	}
	return GaugeValue{}, false
}

// HistValue is a histogram series over one window. Quantiles are bucketed
// upper bounds clamped to the observed Max, so they never exceed the true
// sample maximum; an empty window reports all zeros.
type HistValue struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// RateValue is a counter series over one window: the raw count and the
// count per clock second.
type RateValue struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Rate  float64 `json:"rate"`
}

// RatioValue is a guarded num/den series over one window. Value is 0 when
// Den is 0 — an empty window reports 0, never NaN.
type RatioValue struct {
	Name  string  `json:"name"`
	Num   int64   `json:"num"`
	Den   int64   `json:"den"`
	Value float64 `json:"value"`
}

// GaugeValue is a sampled-value series over one window. An unsampled window
// reports all zeros with Samples == 0.
type GaugeValue struct {
	Name    string  `json:"name"`
	Last    float64 `json:"last"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Mean    float64 `json:"mean"`
	Samples int64   `json:"samples"`
}

// histSeries is the open-window accumulator behind a Histogram handle. The
// counts slice is reused across windows, so the steady-state Observe path
// allocates nothing.
type histSeries struct {
	name   string
	bounds []float64
	counts []int64
	n      int64
	sum    float64
	min    float64
	max    float64
}

func (s *histSeries) observe(v float64) {
	s.counts[sort.SearchFloat64s(s.bounds, v)]++
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
}

// quantile returns the smallest bucket bound whose cumulative count covers
// rank ⌈q·n⌉, clamped to the observed max (which also makes the overflow
// bucket finite). Returns 0 on an empty window.
func (s *histSeries) quantile(q float64) float64 {
	if s.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, c := range s.counts {
		cum += c
		if cum >= rank {
			if i < len(s.bounds) && s.bounds[i] < s.max {
				return s.bounds[i]
			}
			return s.max
		}
	}
	return s.max
}

func (s *histSeries) value() HistValue {
	v := HistValue{Name: s.name, Count: s.n, Sum: s.sum, Min: s.min, Max: s.max}
	if s.n > 0 {
		v.Mean = s.sum / float64(s.n)
		v.P50 = s.quantile(0.50)
		v.P95 = s.quantile(0.95)
		v.P99 = s.quantile(0.99)
	}
	return v
}

func (s *histSeries) reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.n, s.sum, s.min, s.max = 0, 0, 0, 0
}

type rateSeries struct {
	name string
	n    int64
}

func (s *rateSeries) value(window float64) RateValue {
	v := RateValue{Name: s.name, Count: s.n}
	if window > 0 {
		v.Rate = float64(s.n) / window
	}
	return v
}

func (s *rateSeries) reset() { s.n = 0 }

type ratioSeries struct {
	name     string
	num, den int64
}

func (s *ratioSeries) value() RatioValue {
	v := RatioValue{Name: s.name, Num: s.num, Den: s.den}
	if s.den != 0 {
		v.Value = float64(s.num) / float64(s.den)
	}
	return v
}

func (s *ratioSeries) reset() { s.num, s.den = 0, 0 }

type gaugeSeries struct {
	name string
	last float64
	min  float64
	max  float64
	sum  float64
	n    int64
}

func (s *gaugeSeries) set(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.last = v
	s.sum += v
	s.n++
}

func (s *gaugeSeries) value() GaugeValue {
	v := GaugeValue{Name: s.name, Last: s.last, Min: s.min, Max: s.max, Samples: s.n}
	if s.n > 0 {
		v.Mean = s.sum / float64(s.n)
	}
	return v
}

func (s *gaugeSeries) reset() { s.last, s.min, s.max, s.sum, s.n = 0, 0, 0, 0, 0 }

// Histogram is a handle to a windowed histogram series. Nil is a no-op.
type Histogram struct {
	c *Collector
	s *histSeries
}

// Observe folds one sample into the open window.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.c.mu.Lock()
	h.s.observe(v)
	h.c.mu.Unlock()
}

// Rate is a handle to a windowed counter series. Nil is a no-op.
type Rate struct {
	c *Collector
	s *rateSeries
}

// Add counts n events into the open window.
func (r *Rate) Add(n int64) {
	if r == nil {
		return
	}
	r.c.mu.Lock()
	r.s.n += n
	r.c.mu.Unlock()
}

// Inc counts one event into the open window.
func (r *Rate) Inc() { r.Add(1) }

// Ratio is a handle to a windowed num/den series. Nil is a no-op.
type Ratio struct {
	c *Collector
	s *ratioSeries
}

// Observe counts one denominator event, and a numerator event when hit is
// true — e.g. Observe(blocked) per offered request makes the window value
// the blocking probability.
func (r *Ratio) Observe(hit bool) {
	if r == nil {
		return
	}
	r.c.mu.Lock()
	r.s.den++
	if hit {
		r.s.num++
	}
	r.c.mu.Unlock()
}

// Gauge is a handle to a windowed sampled-value series. Nil is a no-op.
type Gauge struct {
	c *Collector
	s *gaugeSeries
}

// Set records one sample of the gauged value into the open window.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.c.mu.Lock()
	g.s.set(v)
	g.c.mu.Unlock()
}
