package repro

import (
	"repro/internal/topofile"

	"math"
	"testing"
)

// End-to-end exercise of the public facade: build, route, establish,
// simulate — the same flow the examples use.

func TestFacadeQuickstartFlow(t *testing.T) {
	net := NSFNET(TopoConfig{W: 8})
	route, ok := ApproxMinCost(net, 0, 13, nil)
	if !ok {
		t.Fatal("NSFNET must route any pair")
	}
	if err := route.Primary.ValidateAvailable(net, 0, 13); err != nil {
		t.Fatal(err)
	}
	if !route.Primary.EdgeDisjoint(route.Backup) {
		t.Fatal("paths not disjoint")
	}
	if err := Establish(net, route); err != nil {
		t.Fatal(err)
	}
	if net.NetworkLoad() == 0 {
		t.Fatal("establish did not reserve capacity")
	}
	if err := Teardown(net, route); err != nil {
		t.Fatal(err)
	}
	if net.NetworkLoad() != 0 {
		t.Fatal("teardown leaked capacity")
	}
}

func TestFacadeAllRouters(t *testing.T) {
	for name, fn := range map[string]func(*Network, int, int, *RouteOptions) (*Route, bool){
		"ApproxMinCost": ApproxMinCost,
		"MinLoad":       MinLoad,
		"MinLoadCost":   MinLoadCost,
		"TwoStep":       TwoStepMinCost,
	} {
		net := ARPA2(TopoConfig{W: 4})
		r, ok := fn(net, 0, 19, nil)
		if !ok {
			t.Errorf("%s failed on ARPA2", name)
			continue
		}
		if r.Cost <= 0 {
			t.Errorf("%s reported non-positive cost", name)
		}
	}
}

func TestFacadeExactSolvers(t *testing.T) {
	net := NewNetwork(4, 2)
	net.AddUniformLink(0, 1, 1)
	net.AddUniformLink(1, 3, 1)
	net.AddUniformLink(0, 2, 2)
	net.AddUniformLink(2, 3, 2)
	net.SetAllConverters(NewFullConverter(2, 0.5))
	e, ok1 := ExactExhaustive(net, 0, 3)
	i, ok2 := ExactILP(net, 0, 3)
	if !ok1 || !ok2 {
		t.Fatal("exact solvers failed")
	}
	if math.Abs(e.Cost-i.Cost) > 1e-6 {
		t.Fatalf("exhaustive %g != ilp %g", e.Cost, i.Cost)
	}
	if math.Abs(e.Cost-6) > 1e-9 {
		t.Fatalf("cost = %g, want 6", e.Cost)
	}
}

func TestFacadeConverters(t *testing.T) {
	if NewNoConverter().Allowed(0, 1) {
		t.Fatal("NoConverter should forbid")
	}
	if !NewRangeConverter(2, 1).Allowed(0, 2) {
		t.Fatal("RangeConverter should allow within range")
	}
	mc := NewMatrixConverter(2, [][]float64{{0, 3}, {-1, 0}})
	if !mc.Allowed(0, 1) || mc.Allowed(1, 0) {
		t.Fatal("MatrixConverter wrong")
	}
}

func TestFacadeTopologies(t *testing.T) {
	if NSFNET(TopoConfig{W: 2}).Nodes() != 14 {
		t.Fatal("NSFNET wrong")
	}
	if ARPA2(TopoConfig{W: 2}).Nodes() != 20 {
		t.Fatal("ARPA2 wrong")
	}
	if Ring(5, TopoConfig{W: 2}).Links() != 10 {
		t.Fatal("Ring wrong")
	}
	if Grid(2, 3, TopoConfig{W: 2}).Nodes() != 6 {
		t.Fatal("Grid wrong")
	}
	if Complete(4, TopoConfig{W: 2}).Links() != 12 {
		t.Fatal("Complete wrong")
	}
	if Waxman(8, 0.4, 0.4, 1, TopoConfig{W: 2}).Nodes() != 8 {
		t.Fatal("Waxman wrong")
	}
}

func TestFacadeSimulation(t *testing.T) {
	net := NSFNET(TopoConfig{W: 4})
	sim := NewSim(net, SimConfig{Algorithm: AlgoMinLoadCost, Restoration: RestoreActive, Seed: 1})
	reqs := Poisson(PoissonConfig{Nodes: 14, ArrivalRate: 20, MeanHolding: 1, Count: 200, Seed: 2})
	m := sim.Run(reqs)
	if m.Offered != 200 || m.Accepted == 0 {
		t.Fatalf("metrics wrong: %+v", m)
	}
	if m.BlockingProbability() < 0 || m.BlockingProbability() > 1 {
		t.Fatal("blocking probability out of range")
	}
}

func TestFacadeOptimalSemilightpath(t *testing.T) {
	net := NSFNET(TopoConfig{W: 4})
	p, cost, ok := OptimalSemilightpath(net, 0, 13)
	if !ok || cost <= 0 {
		t.Fatal("single-path routing failed")
	}
	if err := p.ValidateAvailable(net, 0, 13); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeNodeDisjoint(t *testing.T) {
	net := NSFNET(TopoConfig{W: 4})
	r, ok := MinCostNodeDisjoint(net, 0, 13, nil)
	if !ok {
		t.Fatal("NSFNET should route node-disjoint pairs")
	}
	seen := map[int]bool{}
	for _, v := range r.Primary.Nodes(net)[1:r.Primary.Len()] {
		seen[v] = true
	}
	for _, v := range r.Backup.Nodes(net)[1:r.Backup.Len()] {
		if seen[v] {
			t.Fatal("paths share an intermediate node")
		}
	}
}

func TestFacadeProvision(t *testing.T) {
	net := NSFNET(TopoConfig{W: 8})
	res := Provision(net, []Demand{
		{ID: 0, Src: 0, Dst: 13},
		{ID: 1, Src: 3, Dst: 9},
	}, ProvisionConfig{Router: ProvisionMinCost, Order: OrderLongestFirst, ImprovePasses: 1})
	if res.Placed != 2 || res.Failed != 0 {
		t.Fatalf("placed=%d failed=%d", res.Placed, res.Failed)
	}
}

func TestFacadeTopologyFiles(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/nsf.json"
	net := NSFNET(TopoConfig{W: 4})
	if err := SaveTopology(path, net, topofile.ConverterSpec{Kind: "full", Cost: 0.5}); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Nodes() != 14 || back.Links() != 42 {
		t.Fatal("round trip changed topology")
	}
}

func TestFacadeKProtectionAndMatrices(t *testing.T) {
	net := NSFNET(TopoConfig{W: 8})
	r, ok := MinCostK(net, 0, 7, 2, nil)
	if !ok || len(r.Paths) != 2 {
		t.Fatal("k-protection failed")
	}
	if err := EstablishKPaths(net, r); err != nil {
		t.Fatal(err)
	}
	if err := TeardownKPaths(net, r); err != nil {
		t.Fatal(err)
	}
	m := NewGravityMatrix([]float64{5, 1, 1, 1})
	reqs := MatrixPoisson(MatrixConfig{
		Matrix: m, ArrivalRate: 1, MeanHolding: 1, Count: 50, Seed: 1,
		Holding: HoldingDeterministic,
	})
	if len(reqs) != 50 || reqs[0].Holding != 1 {
		t.Fatal("matrix stream wrong")
	}
	if NewUniformMatrix(3).Nodes() != 3 {
		t.Fatal("uniform matrix wrong")
	}
}

func TestFacadeSRLG(t *testing.T) {
	net := NSFNET(TopoConfig{W: 4})
	net.SetSRLG(0, 1)
	r, ok := MinCostSRLG(net, 0, 13, 0, nil)
	if !ok {
		t.Fatal("SRLG routing failed")
	}
	if !r.Primary.EdgeDisjoint(r.Backup) {
		t.Fatal("not disjoint")
	}
}

func TestFacadeBoundedAndKShortest(t *testing.T) {
	net := NSFNET(TopoConfig{W: 4})
	p, c, ok := BoundedSemilightpath(net, 0, 13, 3)
	if !ok || p.Len() > 3 || c <= 0 {
		t.Fatalf("bounded: len=%d cost=%g ok=%v", p.Len(), c, ok)
	}
	paths := KShortestSemilightpaths(net, 0, 13, 3)
	if len(paths) != 3 {
		t.Fatalf("k-shortest returned %d", len(paths))
	}
	if paths[0].Cost(net) > paths[2].Cost(net) {
		t.Fatal("k-shortest not sorted")
	}
}

func TestFacadeReoptimize(t *testing.T) {
	net := NSFNET(TopoConfig{W: 4})
	r, ok := ApproxMinCost(net, 0, 13, nil)
	if !ok || Establish(net, r) != nil {
		t.Fatal("setup failed")
	}
	res := Reoptimize(net, []*LiveConnection{
		{ID: 0, Src: 0, Dst: 13, Primary: r.Primary, Backup: r.Backup},
	}, 2, nil)
	if res.LoadAfter > res.LoadBefore+1e-12 {
		t.Fatal("reoptimize worsened load")
	}
}
