package core

import (
	"math"

	"repro/internal/disjoint"
	"repro/internal/graph"
	"repro/internal/lightpath"
	"repro/internal/wdm"
)

// CandidateTable holds precomputed edge-disjoint route pairs per (s, t) — the
// candidate-path fast tier the router tries before the exact auxiliary-graph
// pipeline. Candidates are generated on a static physical graph whose link
// weights are the installed-wavelength mean costs Σ_{λ∈Λ(e)} w(e,λ)/N(e):
// they depend only on the network's structure, never on the residual state,
// so a table stays valid across reservations and applies equally to Clones of
// the topology it was built from.
//
// Per pair the table stores, in ascending static weight:
//
//   - the jointly optimal static pair from Suurballe's algorithm (so the tier
//     never falls into the trap topologies that defeat greedy two-step
//     routing), then
//   - one pair per Yen k-shortest path: the path plus its cheapest
//     edge-disjoint partner.
//
// Admission against the residual network stays exact per candidate: a
// word-at-a-time bitset availability check rejects dead routes, then the
// fixed-route wavelength-assignment DP (the Lemma 2 oracle) prices the
// survivors and the cheapest feasible pair wins. Only the route *choice* is
// restricted to the cached candidates; when none is feasible the router falls
// back to the exact tier, so the tier can reduce accuracy only by a bounded
// route detour, never block a servable request.
type CandidateTable struct {
	k      int
	n      int
	topoAt uint64
	pairs  [][]candPair // indexed s*n + t
	filled []bool

	// Generation scratch; dropped by NewCandidateTable once prefilled, kept
	// by lazily filled router-owned tables.
	g  *graph.Graph
	ws disjoint.Workspace
}

type candPair struct {
	route1, route2 []int // physical link IDs, edge-disjoint by construction
}

// NewCandidateTable builds a table with up to k candidate pairs for every
// (s, t) of the network. The returned table is immutable — safe to share
// across concurrent routers via Options.CandidateTable.
func NewCandidateTable(net *wdm.Network, k int) *CandidateTable {
	t := newCandidateTable(net, k)
	for s := 0; s < t.n; s++ {
		for d := 0; d < t.n; d++ {
			if s != d {
				t.fill(s, d)
			}
		}
	}
	t.g = nil // generation scratch no longer needed; table is now read-only
	return t
}

func newCandidateTable(net *wdm.Network, k int) *CandidateTable {
	if k <= 0 {
		panic("core: candidate count must be positive")
	}
	n := net.Nodes()
	t := &CandidateTable{
		k:      k,
		n:      n,
		topoAt: net.TopoVersion(),
		pairs:  make([][]candPair, n*n),
		filled: make([]bool, n*n),
		g:      graph.New(n),
	}
	for id := 0; id < net.Links(); id++ {
		l := net.Link(id)
		if l.N() == 0 {
			continue // carries nothing; never a candidate hop
		}
		t.g.AddEdgeAux(l.From, l.To, staticMeanCost(l), id)
	}
	return t
}

// staticMeanCost is the candidate-generation link weight: the mean cost over
// installed wavelengths, independent of the residual state.
func staticMeanCost(l *wdm.Link) float64 {
	n := l.N()
	sum := 0.0
	l.Lambda().ForEach(func(lam int) bool {
		sum += l.Cost(lam)
		return true
	})
	return sum / float64(n)
}

// valid reports whether the table may serve net: same structure version and
// node count as the network it was built from (which includes Clones, since
// cloning preserves TopoVersion).
func (t *CandidateTable) valid(net *wdm.Network) bool {
	return net.TopoVersion() == t.topoAt && net.Nodes() == t.n
}

// lookup returns the candidate pairs for (s, t), generating them on first
// use when the table still owns its generation scratch.
func (t *CandidateTable) lookup(s, d int) []candPair {
	if s == d || s < 0 || d < 0 || s >= t.n || d >= t.n {
		return nil
	}
	idx := s*t.n + d
	if !t.filled[idx] {
		if t.g == nil {
			return nil
		}
		t.fill(s, d)
	}
	return t.pairs[idx]
}

//wdm:coldpath cache-miss path generation, amortized across repeated (s, d) requests
func (t *CandidateTable) fill(s, d int) {
	idx := s*t.n + d
	if t.filled[idx] {
		return
	}
	t.filled[idx] = true
	t.pairs[idx] = t.generate(s, d)
}

// generate derives up to k edge-disjoint route pairs for (s, d) on the
// static graph.
func (t *CandidateTable) generate(s, d int) []candPair {
	var out []candPair
	add := func(e1, e2 []int) {
		r1 := t.edgesToLinks(nil, e1)
		r2 := t.edgesToLinks(nil, e2)
		for _, cp := range out {
			if (equalRoute(cp.route1, r1) && equalRoute(cp.route2, r2)) ||
				(equalRoute(cp.route1, r2) && equalRoute(cp.route2, r1)) {
				return
			}
		}
		out = append(out, candPair{route1: r1, route2: r2})
	}
	if pr, ok := t.ws.Suurballe(t.g, s, d); ok {
		add(pr.Path1, pr.Path2)
	}
	for _, p1 := range t.g.Yen(s, d, t.k) {
		if len(out) >= t.k {
			break
		}
		for _, e := range p1 {
			t.g.Disable(e)
		}
		sp := t.g.Dijkstra(s)
		var p2 []int
		if sp.Reached(d) {
			p2 = sp.PathTo(d, t.g)
		}
		for _, e := range p1 {
			t.g.Enable(e)
		}
		if p2 == nil {
			continue
		}
		add(p1, p2)
	}
	return out
}

func (t *CandidateTable) edgesToLinks(buf []int, edges []int) []int {
	for _, e := range edges {
		buf = append(buf, t.g.Edge(e).Aux)
	}
	return buf
}

func equalRoute(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// candScratch is the router-owned admission state of the candidate tier: one
// wavelength-assignment workspace plus double-buffered hop storage, so
// evaluating k candidates allocates nothing warm.
type candScratch struct {
	aw    lightpath.AssignWorkspace
	cur   [2][]wdm.Hop
	best  [2][]wdm.Hop
	bestC [2]float64
}

// candidateTable returns the active candidate table for net, or nil when the
// fast tier is off. A table supplied via Options is used as long as it is
// valid for net; otherwise, with Options.Candidates > 0, the router builds
// and keeps its own lazily filled table.
//
//wdm:coldpath table rebuild happens only on rebind or structural change
func (r *Router) candidateTable(net *wdm.Network) *CandidateTable {
	if t := r.opts.candidateTable(); t != nil && t.valid(net) {
		return t
	}
	k := r.opts.candidates()
	if k <= 0 {
		return nil
	}
	r.rebind(net)
	if r.candTab == nil || !r.candTab.valid(net) {
		r.candTab = newCandidateTable(net, k)
	}
	return r.candTab
}

// routeAvailable is the word-at-a-time admission pre-check: every link of the
// route must still have an available wavelength. The assignment DP then
// settles exact conversion feasibility and cost for survivors.
func routeAvailable(net *wdm.Network, route []int) bool {
	for _, id := range route {
		if net.Link(id).Avail().Empty() {
			return false
		}
	}
	return true
}

// candidateRoute runs the fast tier for (s, t). ok=false means the tier
// declines — no candidates cached for the pair, or none feasible on the
// current residual state — and the caller falls back to the exact pipeline.
func (r *Router) candidateRoute(net *wdm.Network, s, t int, tab *CandidateTable) (*Result, bool) {
	cands := tab.lookup(s, t)
	if len(cands) == 0 {
		return nil, false
	}
	cs := &r.cand
	found := false
	bestCost := math.Inf(1)
	for ci := range cands {
		cp := &cands[ci]
		if !routeAvailable(net, cp.route1) || !routeAvailable(net, cp.route2) {
			continue
		}
		h1, c1, ok := lightpath.AssignInto(&cs.aw, net, cp.route1, cs.cur[0])
		cs.cur[0] = h1
		if !ok {
			continue
		}
		h2, c2, ok := lightpath.AssignInto(&cs.aw, net, cp.route2, cs.cur[1])
		cs.cur[1] = h2
		if !ok {
			continue
		}
		if total := c1 + c2; total < bestCost {
			found = true
			bestCost = total
			cs.cur, cs.best = cs.best, cs.cur // winner's hops now live in best
			cs.bestC = [2]float64{c1, c2}
		}
	}
	if !found {
		return nil, false
	}
	var res *Result
	var p1, p2 *wdm.Semilightpath
	if r.opts.reuseResult() {
		ar := &r.arena
		ar.res = Result{}
		res = &ar.res
		ar.sl[0].Hops = cs.best[0]
		ar.sl[1].Hops = cs.best[1]
		p1, p2 = &ar.sl[0], &ar.sl[1]
	} else {
		//wdmlint:ignore hotalloc non-reuse branch; ReuseResult callers take the arena path
		res = &Result{}
		//wdmlint:ignore hotalloc non-reuse branch; ReuseResult callers take the arena path
		p1 = &wdm.Semilightpath{Hops: append([]wdm.Hop(nil), cs.best[0]...)}
		//wdmlint:ignore hotalloc non-reuse branch; ReuseResult callers take the arena path
		p2 = &wdm.Semilightpath{Hops: append([]wdm.Hop(nil), cs.best[1]...)}
	}
	c1, c2 := cs.bestC[0], cs.bestC[1]
	// Order so the cheaper path serves as primary, as the exact tier does.
	if c2 < c1 {
		p1, p2 = p2, p1
	}
	res.Primary, res.Backup = p1, p2
	res.Cost = bestCost
	res.NaiveCost = bestCost
	res.PathLoad = pathLoad(net, p1, p2)
	return res, true
}
