package serve

import (
	"testing"

	"repro/internal/wdm"
)

// linkAvail copies the availability sets of every link — the observable a
// frozen epoch must keep forever.
func linkAvail(net *wdm.Network) [][]int {
	out := make([][]int, net.Links())
	for id := range out {
		out[id] = append([]int(nil), net.Link(id).Avail().Slice()...)
	}
	return out
}

func sameAvail(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestEpochReadersSeeFrozenState is the snapshot-isolation property: a
// reader pinned to epoch N never observes a write that committed in epoch
// N+1 or later, no matter how much state churns after the pin.
func TestEpochReadersSeeFrozenState(t *testing.T) {
	e := startEngine(t, nsf(8), Config{})

	epoch0, pinned := e.Snapshot()
	before := linkAvail(pinned)

	var accepted []Response
	for i := 0; i < 30; i++ {
		resp := e.Provision(Request{ID: int64(i), Src: i % 14, Dst: (i + 7) % 14})
		if resp.Accepted {
			accepted = append(accepted, resp)
		}
	}
	if len(accepted) == 0 {
		t.Fatal("no admissions; the test needs post-pin writes")
	}
	epochN, current := e.Snapshot()
	if epochN <= epoch0 {
		t.Fatalf("epoch did not advance: %d -> %d", epoch0, epochN)
	}

	// The pinned network is bit-identical to its state at pin time...
	if !sameAvail(before, linkAvail(pinned)) {
		t.Fatal("epoch-pinned reader observed a later write")
	}
	// ...while the current snapshot shows every committed admission: each
	// granted channel is busy now but was free at the pin.
	for _, resp := range accepted {
		for _, h := range append(append([]HopOut(nil), resp.Primary...), resp.Backup...) {
			if !pinned.Link(h.Link).HasAvail(h.Lambda) {
				t.Fatalf("conn %d channel (link %d, λ%d) busy in the pinned epoch", resp.ID, h.Link, h.Lambda)
			}
			if current.Link(h.Link).HasAvail(h.Lambda) {
				t.Fatalf("conn %d channel (link %d, λ%d) free in epoch %d after commit", resp.ID, h.Link, h.Lambda, epochN)
			}
		}
	}
}

// TestBatchedAdmissionsApplyAtomically drives the committer's batch path
// directly: three admissions folded into one applyBatch call must publish
// exactly ONE new epoch carrying all three — readers can never observe a
// partially applied batch.
func TestBatchedAdmissionsApplyAtomically(t *testing.T) {
	e := New(ring4(8), Config{}) // not started: the test plays committer

	_, pinned := e.Snapshot()
	mk := func(id int64, lam int) *op {
		o := newOp(opProvision, id, 0, 2, AlgoMinCost)
		o.primary = []wdm.Hop{{Link: 0, Wavelength: lam}, {Link: 2, Wavelength: lam}}
		o.backup = []wdm.Hop{{Link: 7, Wavelength: lam}, {Link: 5, Wavelength: lam}}
		return o
	}
	batch := []*op{mk(1, 0), mk(2, 1), mk(3, 2)}
	e.applyBatch(batch)

	for _, o := range batch {
		cr := <-o.commit
		if !cr.ok || cr.epoch != 1 {
			t.Fatalf("op %d: %+v, want ok in epoch 1", o.id, cr)
		}
	}
	epoch, snap := e.Snapshot()
	if epoch != 1 {
		t.Fatalf("batch of 3 published %d epochs, want exactly 1", epoch)
	}
	for lam := 0; lam < 3; lam++ {
		for _, link := range []int{0, 2, 7, 5} {
			if snap.Link(link).HasAvail(lam) {
				t.Fatalf("channel (link %d, λ%d) free in epoch 1; batch applied partially", link, lam)
			}
			if !pinned.Link(link).HasAvail(lam) {
				t.Fatalf("channel (link %d, λ%d) busy in epoch 0", link, lam)
			}
		}
	}
	if err := e.Audit(); err == nil {
		t.Fatal("audit on an unstarted engine should refuse")
	}
	if err := e.oracle(e.store.cur); err != nil {
		t.Fatalf("oracle after batch: %v", err)
	}
}

// TestTeardownFreesCapacityNextEpoch: released channels become available in
// the next published epoch — and only there; the pre-teardown epoch still
// shows them busy.
func TestTeardownFreesCapacityNextEpoch(t *testing.T) {
	net := nsf(8)
	want := net.TotalAvailable()
	e := startEngine(t, net, Config{})

	resp := e.Provision(Request{ID: 1, Src: 0, Dst: 9})
	if !resp.Accepted {
		t.Fatalf("provision blocked: %+v", resp)
	}
	epochHeld, held := e.Snapshot()
	for _, h := range append(append([]HopOut(nil), resp.Primary...), resp.Backup...) {
		if held.Link(h.Link).HasAvail(h.Lambda) {
			t.Fatalf("channel (link %d, λ%d) free while held", h.Link, h.Lambda)
		}
	}

	if td := e.Teardown(1); !td.Accepted {
		t.Fatalf("teardown rejected: %+v", td)
	}
	epochFree, freed := e.Snapshot()
	if epochFree <= epochHeld {
		t.Fatalf("teardown published no epoch: %d -> %d", epochHeld, epochFree)
	}
	for _, h := range append(append([]HopOut(nil), resp.Primary...), resp.Backup...) {
		if !freed.Link(h.Link).HasAvail(h.Lambda) {
			t.Fatalf("channel (link %d, λ%d) still busy after teardown epoch", h.Link, h.Lambda)
		}
		if held.Link(h.Link).HasAvail(h.Lambda) {
			t.Fatalf("teardown mutated the frozen pre-teardown epoch %d", epochHeld)
		}
	}
	if got := freed.TotalAvailable(); got != want {
		t.Fatalf("capacity after teardown: %d, want %d", got, want)
	}
}
