// wdmbench regenerates the paper-reproduction experiment tables (F1, E1–E19
// of DESIGN.md). Run without flags for the full suite at full scale, or
// select one experiment:
//
//	wdmbench -exp E4            # one experiment
//	wdmbench -quick             # reduced scale (seconds instead of minutes)
//	wdmbench -seeds 50          # override repetition count
//	wdmbench -list              # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/metrics"
)

func main() {
	exp := flag.String("exp", "", "experiment ID to run (default: all)")
	quick := flag.Bool("quick", false, "reduced instance sizes and seed counts")
	seeds := flag.Int("seeds", 0, "override the number of random repetitions")
	list := flag.Bool("list", false, "list experiments and exit")
	format := flag.String("format", "text", "output format: text, markdown, csv")
	metricsOut := flag.String("metrics-out", "", "write a metrics snapshot to this file (.json → JSON, else Prometheus text)")
	perfOut := flag.String("perf-out", "", "run the before/after routing perf suite and write JSON to this file (skips the experiment tables)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof (and /metrics) on this address, e.g. localhost:6060")
	version := cli.VersionFlag()
	flag.Parse()
	cli.HandleVersion(*version)

	var reg *metrics.Registry
	if *metricsOut != "" || *pprofAddr != "" {
		reg = cli.EnableAllMetrics()
	}
	if *pprofAddr != "" {
		addr, err := cli.StartPprof(*pprofAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "pprof + /metrics listening on http://%s\n", addr)
	}
	writeMetrics := func() {
		if *metricsOut == "" {
			return
		}
		if err := reg.WriteFile(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	render := func(tb *bench.Table) string {
		switch *format {
		case "markdown":
			return tb.Markdown()
		case "csv":
			return tb.CSV()
		default:
			return tb.String()
		}
	}

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	if *perfOut != "" {
		if err := bench.WritePerfJSON(*perfOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "perf comparisons written to %s\n", *perfOut)
		writeMetrics()
		return
	}

	opts := bench.Options{Quick: *quick, Seeds: *seeds}
	if *exp != "" {
		tb, err := bench.Run(*exp, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(render(tb))
		writeMetrics()
		return
	}
	for _, tb := range bench.All(opts) {
		fmt.Println(render(tb))
	}
	writeMetrics()
}
