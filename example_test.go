package repro_test

import (
	"fmt"

	"repro"
)

// The basic flow: build a network, route a protected connection, reserve it.
func Example() {
	// A 4-node diamond: two node-disjoint corridors 0→1→3 and 0→2→3.
	net := repro.NewNetwork(4, 2)
	net.AddUniformLink(0, 1, 1)
	net.AddUniformLink(1, 3, 1)
	net.AddUniformLink(0, 2, 2)
	net.AddUniformLink(2, 3, 2)
	net.SetAllConverters(repro.NewFullConverter(2, 0.5))

	route, ok := repro.ApproxMinCost(net, 0, 3, nil)
	if !ok {
		panic("unroutable")
	}
	fmt.Printf("pair cost %.0f\n", route.Cost)
	if err := repro.Establish(net, route); err != nil {
		panic(err)
	}
	fmt.Printf("network load %.2f\n", net.NetworkLoad())
	// Output:
	// pair cost 6
	// network load 0.50
}

// Routing on a standard backbone with the load-aware two-phase algorithm.
func ExampleMinLoadCost() {
	net := repro.NSFNET(repro.TopoConfig{W: 8})
	route, ok := repro.MinLoadCost(net, 0, 13, nil)
	if !ok {
		panic("unroutable")
	}
	fmt.Println("primary hops:", route.Primary.Len())
	fmt.Println("disjoint:", route.Primary.EdgeDisjoint(route.Backup))
	// Output:
	// primary hops: 3
	// disjoint: true
}

// The exact §3.1 integer program on a small instance.
func ExampleExactILP() {
	net := repro.NewNetwork(4, 2)
	net.AddUniformLink(0, 1, 1)
	net.AddUniformLink(1, 3, 1)
	net.AddUniformLink(0, 2, 2)
	net.AddUniformLink(2, 3, 2)
	net.SetAllConverters(repro.NewFullConverter(2, 0.5))
	sol, ok := repro.ExactILP(net, 0, 3)
	fmt.Println(ok, sol.Cost)
	// Output: true 6
}

// Dynamic traffic simulation with failure injection.
func ExampleNewSim() {
	net := repro.NSFNET(repro.TopoConfig{W: 8})
	sim := repro.NewSim(net, repro.SimConfig{
		Algorithm:   repro.AlgoMinCost,
		Restoration: repro.RestoreActive,
		Seed:        1,
	})
	reqs := repro.Poisson(repro.PoissonConfig{
		Nodes: 14, ArrivalRate: 5, MeanHolding: 1, Count: 100, Seed: 2,
	})
	m := sim.Run(reqs)
	fmt.Println("offered:", m.Offered, "blocked:", m.Blocked)
	// Output: offered: 100 blocked: 0
}

// Static provisioning of a known demand set.
func ExampleProvision() {
	net := repro.NSFNET(repro.TopoConfig{W: 8})
	res := repro.Provision(net, []repro.Demand{
		{ID: 0, Src: 0, Dst: 13},
		{ID: 1, Src: 5, Dst: 9},
	}, repro.ProvisionConfig{
		Router: repro.ProvisionMinCost,
		Order:  repro.OrderLongestFirst,
	})
	fmt.Println("placed:", res.Placed)
	// Output: placed: 2
}

// Shared-backup path protection: backup channels shared between
// link-disjoint primaries.
func ExampleNewSharedProtection() {
	// Three corridors 0→{1,2,3}→4; W=1 forces the two connections onto
	// disjoint primary corridors, and both back up over the third — where
	// their channels are shared.
	net := repro.NewNetwork(5, 1)
	net.AddUniformLink(0, 1, 1)
	net.AddUniformLink(1, 4, 1)
	net.AddUniformLink(0, 2, 1.2)
	net.AddUniformLink(2, 4, 1.2)
	net.AddUniformLink(0, 3, 5)
	net.AddUniformLink(3, 4, 5)
	net.SetAllConverters(repro.NewFullConverter(1, 0))
	mgr := repro.NewSharedProtection(net)
	if _, ok := mgr.Establish(0, 4); !ok {
		panic("establish failed")
	}
	if _, ok := mgr.Establish(0, 4); !ok {
		panic("establish failed")
	}
	rep := mgr.Report()
	fmt.Println("backup channels:", rep.BackupChannels, "dedicated would need:", rep.BackupDemand)
	// Output: backup channels: 2 dedicated would need: 4
}

// SRLG-aware protection avoids shared-duct risks.
func ExampleMinCostSRLG() {
	net := repro.NewNetwork(5, 2)
	a := net.AddUniformLink(0, 1, 1)
	net.AddUniformLink(1, 4, 1)
	b := net.AddUniformLink(0, 2, 1.2)
	net.AddUniformLink(2, 4, 1.2)
	net.AddUniformLink(0, 3, 3)
	net.AddUniformLink(3, 4, 3)
	net.SetAllConverters(repro.NewFullConverter(2, 0.5))
	// Corridors A and B leave node 0 through the same duct.
	net.SetSRLG(a, 7)
	net.SetSRLG(b, 7)
	route, ok := repro.MinCostSRLG(net, 0, 4, 0, nil)
	if !ok {
		panic("unroutable")
	}
	// The backup pays for the independent corridor C.
	fmt.Printf("pair cost %.0f\n", route.Cost)
	// Output: pair cost 8
}
