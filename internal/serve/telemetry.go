package serve

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/timeseries"
)

// Telemetry series names, as they appear in /debug/timeseries and the
// JSONL/CSV export. They mirror the simulator's series where the semantics
// match, so soak curves from wdmsim and wdmd plot on the same axes.
const (
	// SeriesRequestLatency is the end-to-end request latency histogram
	// (seconds, queue + route + commit; p50/p95/p99 per window).
	SeriesRequestLatency = "request_latency_seconds"
	// SeriesBlocking is the per-window blocking probability over provisions.
	SeriesBlocking = "blocking"
	// SeriesAccepted counts provisions accepted per window.
	SeriesAccepted = "accepted"
	// SeriesTeardowns counts teardowns per window.
	SeriesTeardowns = "teardowns"
	// SeriesReroutes counts reroute requests per window.
	SeriesReroutes = "reroutes"
	// SeriesEpochs counts epochs published per window.
	SeriesEpochs = "epochs"
	// SeriesBatchFill is the mean committed batch size per window.
	SeriesBatchFill = "batch_fill"
	// SeriesActiveConns gauges the live connection count at each seal.
	SeriesActiveConns = "active_conns"
	// SeriesLinkLoadMean / SeriesLinkLoadMax gauge per-link ρ(e) aggregates
	// at each seal; the max is the network load ρ of Eq. 2.
	SeriesLinkLoadMean = "link_load_mean"
	SeriesLinkLoadMax  = "link_load_max"
	// SeriesFragMean gauges mean first-fit wavelength fragmentation.
	SeriesFragMean = "frag_mean"
	// SeriesConflicts counts commit-time reservation conflicts per window —
	// the numerator of the SLO conflict-rate objective (denominator:
	// provisions via SeriesBlocking's total).
	SeriesConflicts = "conflicts"

	// Per-window stage-latency histograms, mirroring the wdmd_stage_*
	// timers (see stageNanos for segment boundaries): where inside the
	// pipeline each window's latency went, not just how much there was.
	SeriesStageQueue    = "stage_queue_seconds"
	SeriesStageSnapshot = "stage_snapshot_seconds"
	SeriesStageRoute    = "stage_route_seconds"
	SeriesStageCommit   = "stage_commit_seconds"
	SeriesStageReroute  = "stage_reroute_seconds"
	SeriesStageDecode   = "stage_decode_seconds"

	// Go runtime health, sampled once per window at seal time — the triage
	// context an incident bundle needs next to the latency curves.
	SeriesGoroutines = "go_goroutines"
	SeriesHeapBytes  = "go_heap_bytes"
	SeriesGCPause    = "go_gc_pause_seconds" // GC pause time accrued during the window
)

// telemetry adapts the single-owner timeseries.Collector to the daemon's
// many-goroutine request path: every instrument write happens under one
// mutex (the collector's owner-goroutine contract is "one writer at a
// time", which a mutex provides just as well as a single goroutine), and a
// ticker goroutine advances the wall-clock windows so curves seal even when
// the daemon is idle. A nil-window telemetry is permanently off and costs
// one nil check per request.
type telemetry struct {
	e   *Engine
	col *timeseries.Collector

	mu       sync.Mutex
	reqLat   *timeseries.Histogram
	blocking *timeseries.Ratio
	accepted *timeseries.Rate
	tears    *timeseries.Rate
	routes   *timeseries.Rate
	epochs   *timeseries.Rate
	confl    *timeseries.Rate
	fill     *timeseries.Gauge
	active   *timeseries.Gauge
	loadMean *timeseries.Gauge
	loadMax  *timeseries.Gauge
	fragMean *timeseries.Gauge

	stQueue  *timeseries.Histogram
	stSnap   *timeseries.Histogram
	stRoute  *timeseries.Histogram
	stCommit *timeseries.Histogram
	stRer    *timeseries.Histogram
	stDecode *timeseries.Histogram

	goroutines *timeseries.Gauge
	heapBytes  *timeseries.Gauge
	gcPause    *timeseries.Gauge
	lastPause  uint64 // MemStats.PauseTotalNs at the previous seal

	clock    *timeseries.WallClock
	netState atomic.Pointer[timeseries.NetState]
	sink     timeseries.Sink
	closer   func() error

	stop chan struct{}
	tick sync.WaitGroup
}

// newTelemetry builds the bundle; window <= 0 disables it (all methods
// no-op on the nil receiver).
func newTelemetry(e *Engine, window float64, retention int) *telemetry {
	if window <= 0 {
		return nil
	}
	clock := timeseries.NewWallClock()
	col := timeseries.New(timeseries.Config{Window: window, Retention: retention, Clock: clock})
	t := &telemetry{
		e:        e,
		col:      col,
		clock:    clock,
		reqLat:   col.Histogram(SeriesRequestLatency, nil),
		blocking: col.Ratio(SeriesBlocking),
		accepted: col.Rate(SeriesAccepted),
		tears:    col.Rate(SeriesTeardowns),
		routes:   col.Rate(SeriesReroutes),
		epochs:   col.Rate(SeriesEpochs),
		confl:    col.Rate(SeriesConflicts),
		fill:     col.Gauge(SeriesBatchFill),
		active:   col.Gauge(SeriesActiveConns),
		loadMean: col.Gauge(SeriesLinkLoadMean),
		loadMax:  col.Gauge(SeriesLinkLoadMax),
		fragMean: col.Gauge(SeriesFragMean),

		stQueue:  col.Histogram(SeriesStageQueue, nil),
		stSnap:   col.Histogram(SeriesStageSnapshot, nil),
		stRoute:  col.Histogram(SeriesStageRoute, nil),
		stCommit: col.Histogram(SeriesStageCommit, nil),
		stRer:    col.Histogram(SeriesStageReroute, nil),
		stDecode: col.Histogram(SeriesStageDecode, nil),

		goroutines: col.Gauge(SeriesGoroutines),
		heapBytes:  col.Gauge(SeriesHeapBytes),
		gcPause:    col.Gauge(SeriesGCPause),

		stop: make(chan struct{}),
	}
	// Baseline the GC-pause accumulator so the first window reports pauses
	// accrued during that window, not since process start.
	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t.lastPause = ms0.PauseTotalNs
	col.OnSeal(func(at float64) {
		// OnSeal runs with the collector unlocked, on whichever goroutine
		// sealed the window (ticker or a request under t.mu — both safe: the
		// probe reads only the immutable epoch snapshot). Seals are
		// serialized under t.mu, so t.lastPause needs no atomics.
		ns := timeseries.ProbeNetwork(e.store.load().net, at, e.LiveConnections())
		ns.Contention = e.topContention(contentionTopK, ns)
		t.loadMean.Set(ns.MeanLoad)
		t.loadMax.Set(ns.MaxLoad)
		t.fragMean.Set(ns.MeanFrag)
		t.active.Set(float64(ns.ActiveConns))
		t.netState.Store(ns)

		// Runtime health: one ReadMemStats per window is cheap (µs-scale
		// stop-the-world) and gives incident bundles their triage context.
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		t.goroutines.Set(float64(runtime.NumGoroutine()))
		t.heapBytes.Set(float64(ms.HeapAlloc))
		t.gcPause.Set(float64(ms.PauseTotalNs-t.lastPause) / 1e9)
		t.lastPause = ms.PauseTotalNs
	})
	return t
}

// contentionTopK bounds the per-link contention list published in
// NetState.Contention.
const contentionTopK = 8

// SetSink attaches a streaming export sink plus its closer (e.g. a JSONL
// writer over a file); call before Start.
func (t *telemetry) SetSink(s timeseries.Sink, closer func() error) {
	if t == nil {
		return
	}
	t.sink = s
	t.closer = closer
	t.col.SetSink(s)
}

// collector exposes the underlying collector for /debug/timeseries (nil
// when telemetry is off).
func (t *telemetry) collector() *timeseries.Collector {
	if t == nil {
		return nil
	}
	return t.col
}

// state returns the latest sealed network snapshot for /debug/net.
func (t *telemetry) state() *timeseries.NetState {
	if t == nil {
		return nil
	}
	return t.netState.Load()
}

// startTicker launches the window-advancing goroutine (4 ticks per window,
// so idle periods still seal on time).
func (t *telemetry) startTicker() {
	if t == nil {
		return
	}
	period := time.Duration(t.col.Window() / 4 * float64(time.Second))
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	t.tick.Add(1)
	go func() {
		defer t.tick.Done()
		tk := time.NewTicker(period)
		defer tk.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-tk.C:
				t.mu.Lock()
				t.col.Advance(t.clock.Now())
				t.mu.Unlock()
			}
		}
	}()
}

// observe records one finished request, including its stage-attribution
// ledger (nil for requests rejected before dispatch, e.g. unknown-connection
// teardowns, which never enter the pipeline).
func (t *telemetry) observe(kind string, lat time.Duration, ok bool, st *stageNanos) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.col.Advance(t.clock.Now())
	t.reqLat.Observe(lat.Seconds())
	if st != nil {
		t.stQueue.Observe(float64(st.queue) / 1e9)
		if st.snap > 0 {
			t.stSnap.Observe(float64(st.snap) / 1e9)
		}
		if st.route > 0 {
			t.stRoute.Observe(float64(st.route) / 1e9)
		}
		if st.commit > 0 {
			t.stCommit.Observe(float64(st.commit) / 1e9)
		}
		if st.reroute > 0 {
			t.stRer.Observe(float64(st.reroute) / 1e9)
		}
	}
	switch kind {
	case "provision":
		t.blocking.Observe(!ok)
		if ok {
			t.accepted.Inc()
		}
	case "teardown":
		t.tears.Inc()
	case "reroute":
		t.routes.Inc()
	}
}

// observeDecode records one HTTP request-body decode (handler goroutine,
// before the request clock starts).
func (t *telemetry) observeDecode(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.col.Advance(t.clock.Now())
	t.stDecode.Observe(d.Seconds())
}

// conflict records one commit-time reservation conflict (committer
// goroutine).
func (t *telemetry) conflict() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.confl.Inc()
}

// epochSealed records one published epoch and its batch size (committer
// goroutine).
func (t *telemetry) epochSealed(batch int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.epochs.Inc()
	t.fill.Set(float64(batch))
}

// SetTelemetrySink attaches a streaming export sink (JSONL/CSV over a file)
// plus its closer to the engine's telemetry; call before Start. No-op when
// telemetry is disabled.
func (e *Engine) SetTelemetrySink(s timeseries.Sink, closer func() error) {
	e.tel.SetSink(s, closer)
}

// Collector exposes the telemetry collector for /debug/timeseries (nil when
// telemetry is disabled).
func (e *Engine) Collector() *timeseries.Collector { return e.tel.collector() }

// NetState returns the latest sealed per-link network snapshot for
// /debug/net (nil before the first seal or when telemetry is disabled).
func (e *Engine) NetState() *timeseries.NetState { return e.tel.state() }

// err reports the first sink error without closing.
func (t *telemetry) err() error {
	if t == nil {
		return nil
	}
	return t.col.SinkErr()
}

// close stops the ticker, seals the final partial window, and closes the
// sink. The first error wins — this is why Engine.Close returns an error
// worth checking.
func (t *telemetry) close() error {
	if t == nil {
		return nil
	}
	close(t.stop)
	t.tick.Wait()
	t.mu.Lock()
	t.col.Seal()
	t.mu.Unlock()
	err := t.col.SinkErr()
	if t.closer != nil {
		if cerr := t.closer(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
