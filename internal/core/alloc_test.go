//go:build !race

// Allocation-regression tests, excluded from -race runs (the detector's
// instrumentation breaks testing.AllocsPerOp accounting).
package core

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/topo"
)

// Allocation budgets for a warm Router on NSFNET (W=8). The graph search
// itself is allocation-free; what remains is the per-result construction
// (Result, hop slices, the Lemma 2 refinement DP). Measured ~27–29 allocs/op
// at the time of writing; the budgets leave headroom for small refactors
// while still catching a regression to per-request graph rebuilding
// (~900 allocs/op).
const (
	approxMinCostAllocBudget = 64
	minLoadAllocBudget       = 96
)

func TestWarmRouterAllocBudget(t *testing.T) {
	net := topo.NSFNET(topo.Config{W: 8})
	r := NewRouter(nil)
	if _, ok := r.ApproxMinCost(net, 0, 9); !ok {
		t.Fatal("ApproxMinCost failed")
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.ApproxMinCost(net, 0, 9)
	})
	if allocs > approxMinCostAllocBudget {
		t.Errorf("warm Router.ApproxMinCost = %.0f allocs/op, budget %d", allocs, approxMinCostAllocBudget)
	}

	if _, ok := r.MinLoad(net, 2, 11); !ok {
		t.Fatal("MinLoad failed")
	}
	allocs = testing.AllocsPerRun(100, func() {
		r.MinLoad(net, 2, 11)
	})
	if allocs > minLoadAllocBudget {
		t.Errorf("warm Router.MinLoad = %.0f allocs/op, budget %d", allocs, minLoadAllocBudget)
	}
}

// TestTracerDisabledAddsNoAllocs pins the observability contract from PR 2's
// zero-allocation work: a Router carrying a disabled tracer must allocate
// exactly as much per request as a Router with no tracer at all — the off
// switch is one atomic load, not a dormant code path that still builds
// traces.
func TestTracerDisabledAddsNoAllocs(t *testing.T) {
	net := topo.NSFNET(topo.Config{W: 8})

	plain := NewRouter(nil)
	if _, ok := plain.ApproxMinCost(net, 0, 9); !ok {
		t.Fatal("ApproxMinCost failed")
	}
	base := testing.AllocsPerRun(200, func() {
		plain.ApproxMinCost(net, 0, 9)
	})

	traced := NewRouter(nil)
	tr := obs.New(obs.Config{})
	tr.Disable()
	traced.SetTracer(tr)
	if _, ok := traced.ApproxMinCost(net, 0, 9); !ok {
		t.Fatal("ApproxMinCost failed")
	}
	withTracer := testing.AllocsPerRun(200, func() {
		traced.ApproxMinCost(net, 0, 9)
	})

	if withTracer != base {
		t.Errorf("disabled tracer changed allocs/op: %.0f with tracer vs %.0f without", withTracer, base)
	}
	if n := tr.Flight().Total(); n != 0 {
		t.Errorf("disabled tracer recorded %d traces", n)
	}
}
