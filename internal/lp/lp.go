// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	minimize  c·x   subject to   a_i·x {≤,=,≥} b_i,   x ≥ 0.
//
// It exists to solve the LP relaxations of the paper's §3.1 integer program
// inside the branch-and-bound solver (package ilp). The implementation uses
// Dantzig pricing with an automatic switch to Bland's rule to guarantee
// termination, and a Phase-1 artificial-variable start.
package lp

import (
	"fmt"
	"math"
)

// Rel is a constraint relation.
type Rel int

const (
	// LE is a_i·x ≤ b_i.
	LE Rel = iota
	// GE is a_i·x ≥ b_i.
	GE
	// EQ is a_i·x = b_i.
	EQ
)

// Status reports the outcome of Solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means no point satisfies the constraints.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
	// IterationLimit means the pivot cap was exhausted (should not occur
	// with Bland's rule; reported defensively).
	IterationLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

type constraint struct {
	coef map[int]float64
	rel  Rel
	rhs  float64
}

// Problem is a linear program under construction. Create with NewProblem,
// then add constraints and call Solve.
type Problem struct {
	nvars int
	obj   []float64
	cons  []constraint
}

// NewProblem returns a problem with nvars structural variables (all ≥ 0)
// and the given minimization objective (length nvars).
func NewProblem(nvars int, objective []float64) *Problem {
	if len(objective) != nvars {
		panic("lp: objective length mismatch")
	}
	obj := append([]float64(nil), objective...)
	return &Problem{nvars: nvars, obj: obj}
}

// NumVars returns the number of structural variables.
func (p *Problem) NumVars() int { return p.nvars }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddConstraint appends the constraint Σ coef[j]·x_j rel rhs. Variable
// indices must lie in [0, NumVars()).
func (p *Problem) AddConstraint(coef map[int]float64, rel Rel, rhs float64) {
	cp := make(map[int]float64, len(coef))
	for j, v := range coef {
		if j < 0 || j >= p.nvars {
			panic(fmt.Sprintf("lp: variable %d out of range", j))
		}
		if v != 0 {
			cp[j] = v
		}
	}
	p.cons = append(p.cons, constraint{coef: cp, rel: rel, rhs: rhs})
}

// Clone returns an independent copy of the problem (constraints included).
func (p *Problem) Clone() *Problem {
	c := NewProblem(p.nvars, p.obj)
	c.cons = make([]constraint, len(p.cons))
	for i, con := range p.cons {
		cp := make(map[int]float64, len(con.coef))
		for j, v := range con.coef {
			cp[j] = v
		}
		c.cons[i] = constraint{coef: cp, rel: con.rel, rhs: con.rhs}
	}
	return c
}

// Solution is the result of Solve.
type Solution struct {
	Status Status
	// X holds the structural variable values (valid when Status == Optimal).
	X []float64
	// Obj is the objective value (valid when Status == Optimal).
	Obj float64
}

const (
	eps      = 1e-9
	pivotCap = 200000
	// blandAfter switches pricing to Bland's rule after this many Dantzig
	// pivots to break any cycling.
	blandAfter = 5000
)

// Solve runs two-phase primal simplex and returns the solution.
func (p *Problem) Solve() Solution {
	m := len(p.cons)
	// Column layout: [0,nvars) structural, then one slack/surplus per
	// inequality row, then one artificial per row that needs it.
	nslack := 0
	for _, c := range p.cons {
		if c.rel != EQ {
			nslack++
		}
	}
	total := p.nvars + nslack // artificials appended after

	// Build rows with b ≥ 0.
	rows := make([][]float64, m)
	rhs := make([]float64, m)
	basis := make([]int, m)
	art := []int{}
	slackIdx := p.nvars
	for i, c := range p.cons {
		row := make([]float64, total)
		for j, v := range c.coef {
			row[j] = v
		}
		b := c.rhs
		rel := c.rel
		if b < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			b = -b
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		switch rel {
		case LE:
			row[slackIdx] = 1
			basis[i] = slackIdx
			slackIdx++
		case GE:
			row[slackIdx] = -1
			basis[i] = -1 // needs artificial
			slackIdx++
		case EQ:
			basis[i] = -1
		}
		rows[i] = row
		rhs[i] = b
	}
	// Append artificial columns for rows without a basic variable.
	for i := range rows {
		if basis[i] == -1 {
			for k := range rows {
				rows[k] = append(rows[k], 0)
			}
			col := total
			total++
			rows[i][col] = 1
			basis[i] = col
			art = append(art, col)
		}
	}

	t := &tableau{rows: rows, rhs: rhs, basis: basis, ncols: total}

	if len(art) > 0 {
		// Phase 1: minimize the sum of artificials.
		phase1 := make([]float64, total)
		for _, a := range art {
			phase1[a] = 1
		}
		status, obj := t.optimize(phase1, nil)
		if status != Optimal {
			return Solution{Status: IterationLimit}
		}
		if obj > 1e-7 {
			return Solution{Status: Infeasible}
		}
		// Pivot remaining artificials out of the basis when possible.
		isArt := make([]bool, total)
		for _, a := range art {
			isArt[a] = true
		}
		for i := range t.basis {
			if !isArt[t.basis[i]] {
				continue
			}
			pivoted := false
			for j := 0; j < p.nvars+nslack; j++ {
				if math.Abs(t.rows[i][j]) > eps {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			_ = pivoted // a zero row: the constraint is redundant; harmless
		}
		t.forbidden = isArt
	}

	// Phase 2: original objective.
	phase2 := make([]float64, total)
	copy(phase2, p.obj)
	status, obj := t.optimize(phase2, t.forbidden)
	if status != Optimal {
		return Solution{Status: status}
	}
	x := make([]float64, p.nvars)
	for i, bv := range t.basis {
		if bv < p.nvars {
			x[bv] = t.rhs[i]
		}
	}
	return Solution{Status: Optimal, X: x, Obj: obj}
}

// tableau holds the simplex working state: constraint rows in basic form.
type tableau struct {
	rows      [][]float64
	rhs       []float64
	basis     []int
	ncols     int
	forbidden []bool // columns barred from entering (spent artificials)
}

// pivot makes column col basic in row r.
func (t *tableau) pivot(r, col int) {
	pr := t.rows[r]
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	t.rhs[r] *= inv
	pr[col] = 1 // exactness
	for i := range t.rows {
		if i == r {
			continue
		}
		f := t.rows[i][col]
		if f == 0 {
			continue
		}
		ri := t.rows[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0
		t.rhs[i] -= f * t.rhs[r]
	}
	t.basis[r] = col
}

// optimize minimizes cost·x from the current basic feasible point. It
// returns the status and the optimal objective value.
func (t *tableau) optimize(cost []float64, forbidden []bool) (Status, float64) {
	m := len(t.rows)
	// Reduced costs: z_j = cost_j − cB·B⁻¹A_j. Maintain them directly by
	// pricing from scratch each iteration over a working objective row,
	// updated by pivots like any other row.
	objRow := append([]float64(nil), cost...)
	objVal := 0.0
	// Price out current basis.
	for i := 0; i < m; i++ {
		bv := t.basis[i]
		f := objRow[bv]
		if f == 0 {
			continue
		}
		ri := t.rows[i]
		for j := range objRow {
			objRow[j] -= f * ri[j]
		}
		objVal -= f * t.rhs[i]
	}
	for iter := 0; iter < pivotCap; iter++ {
		bland := iter >= blandAfter
		// Entering column.
		enter := -1
		best := -eps
		for j := 0; j < t.ncols; j++ {
			if forbidden != nil && forbidden[j] {
				continue
			}
			if objRow[j] < -eps {
				if bland {
					enter = j
					break
				}
				if objRow[j] < best {
					best = objRow[j]
					enter = j
				}
			}
		}
		if enter == -1 {
			return Optimal, -objVal // objVal accumulates −z
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := t.rows[i][enter]
			if a > eps {
				r := t.rhs[i] / a
				if r < bestRatio-eps || (r < bestRatio+eps && (leave == -1 || t.basis[i] < t.basis[leave])) {
					bestRatio = r
					leave = i
				}
			}
		}
		if leave == -1 {
			return Unbounded, 0
		}
		t.pivot(leave, enter)
		// Update objective row.
		f := objRow[enter]
		if f != 0 {
			pr := t.rows[leave]
			for j := range objRow {
				objRow[j] -= f * pr[j]
			}
			objRow[enter] = 0
			objVal -= f * t.rhs[leave]
		}
	}
	return IterationLimit, 0
}
