// Package serve is the long-lived concurrent routing daemon behind cmd/wdmd:
// it turns the batch routing engines into an HTTP/JSON request loop
// (provision / teardown / reroute / status) over sharded network state.
//
// Concurrency model — route on snapshots, commit in batches between epochs:
//
//   - The authoritative *wdm.Network is owned by a single committer
//     goroutine. Nobody else ever mutates it.
//   - Readers (the routing shards, the /debug/net probe, status queries)
//     work against an immutable epoch-stamped snapshot published through an
//     atomic pointer. Publishing epoch N+1 is a copy-on-write clone driven
//     by the per-link LinkStamp journal (wdm.CloneSince): only links touched
//     since epoch N are copied, everything else is shared with the frozen
//     epoch-N snapshot. Reads therefore never block writes and writes never
//     block reads — there is no lock on the routing path.
//   - Each shard owns a region of (s, t) pairs and a warm core.Router (the
//     parallel.MapWithState worker-pool pattern generalised to long-lived
//     request queues), so independent pairs route in parallel with per-shard
//     skeleton caches and an optional shared read-only CandidateTable.
//   - A shard routes a request against the latest snapshot, then submits the
//     chosen paths to the committer, which validates them against the
//     authoritative state (optimistic concurrency: a reservation that lost a
//     race fails cleanly), applies a batch of admissions, bumps the epoch,
//     publishes the next snapshot, and only then replies. A conflicted
//     admission is re-routed on the fresh snapshot and retried a bounded
//     number of times before the request is reported blocked.
//
// Per-connection operations are linearized without a per-connection lock:
// a connection's (s, t) pair pins every op that touches it to one shard, and
// shards process their queue serially with a synchronous commit handshake,
// so no two ops on the same connection are ever in flight together.
//
// The commit order is the serialization order of the daemon. With the ops
// journal enabled every commit decision is recorded in that order, and
// Replay re-executes the journal serially on a fresh network, proving the
// concurrent schedule equivalent to its serial commit order (the
// linearizability-style check the concurrency test suite runs).
package serve

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/slo"
	"repro/internal/wdm"
)

// Algo selects the routing discipline for provision and reroute requests.
type Algo int

const (
	// AlgoMinCost is ApproxMinCost (§3.3) — cost only.
	AlgoMinCost Algo = iota
	// AlgoMinLoad is Find_Two_Paths_MinCog (§4.1) — load only.
	AlgoMinLoad
	// AlgoMinLoadCost is the two-phase §4.2 algorithm — load then cost.
	AlgoMinLoadCost
	// AlgoTwoStep is the naive shortest-then-remove baseline.
	AlgoTwoStep
)

func (a Algo) String() string {
	switch a {
	case AlgoMinCost:
		return "min-cost"
	case AlgoMinLoad:
		return "min-load"
	case AlgoMinLoadCost:
		return "min-load-cost"
	case AlgoTwoStep:
		return "two-step"
	}
	return fmt.Sprintf("Algo(%d)", int(a))
}

// ParseAlgo maps an algorithm name (the -algo flag / "algo" request field)
// to the daemon enum.
func ParseAlgo(s string) (Algo, error) {
	switch s {
	case "min-cost":
		return AlgoMinCost, nil
	case "min-load":
		return AlgoMinLoad, nil
	case "min-load-cost":
		return AlgoMinLoadCost, nil
	case "two-step":
		return AlgoTwoStep, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q (min-cost, min-load, min-load-cost, two-step)", s)
}

// route dispatches to the shard's warm router.
func (a Algo) route(r *core.Router, net *wdm.Network, s, t int) (*core.Result, bool) {
	switch a {
	case AlgoMinCost:
		return r.ApproxMinCost(net, s, t)
	case AlgoMinLoad:
		return r.MinLoad(net, s, t)
	case AlgoMinLoadCost:
		return r.MinLoadCost(net, s, t)
	case AlgoTwoStep:
		return r.TwoStepMinCost(net, s, t)
	}
	panic("serve: unknown algorithm")
}

// Config parameterises an Engine.
type Config struct {
	// Shards is the number of routing shards; each owns a region of (s, t)
	// pairs and a warm router (GOMAXPROCS if 0).
	Shards int
	// QueueDepth is the per-shard request queue capacity (128 if 0).
	QueueDepth int
	// BatchMax caps how many queued admissions the committer folds into one
	// epoch (64 if 0).
	BatchMax int
	// MaxRetries bounds how often a conflicted admission is re-routed on a
	// fresh snapshot before the request is reported blocked (4 if 0; -1
	// disables retries).
	MaxRetries int
	// Algorithm is the default routing discipline (AlgoMinCost if unset);
	// provision requests may override it per call.
	Algorithm Algo
	// Opts tunes the per-shard routers (nil for defaults). ReuseResult is
	// forced on: shards copy routed paths before submitting them.
	Opts *core.Options
	// Candidates, when positive, prebuilds a shared read-only candidate
	// table with k route pairs per (s, t) that every shard tries before the
	// exact pipeline.
	Candidates int
	// JournalCap retains up to this many commit-ordered journal entries for
	// deterministic replay (0 disables the journal).
	JournalCap int
	// Window enables windowed wall-clock telemetry with this window width in
	// seconds (0 disables telemetry).
	Window float64
	// Retention is the telemetry ring size (timeseries.DefaultRetention if 0).
	Retention int
	// Tracer, when non-nil, records request-scoped routing traces into its
	// flight recorder (served on /debug/flight, /debug/explain/<id>).
	Tracer *obs.Tracer
}

func (c *Config) shards() int {
	if c.Shards > 0 {
		return c.Shards
	}
	return runtime.GOMAXPROCS(0)
}

func (c *Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 128
}

func (c *Config) batchMax() int {
	if c.BatchMax > 0 {
		return c.BatchMax
	}
	return 64
}

func (c *Config) maxRetries() int {
	switch {
	case c.MaxRetries > 0:
		return c.MaxRetries
	case c.MaxRetries < 0:
		return 0
	}
	return 4
}

// Reasons a request is not accepted, as reported in Response.Reason.
const (
	ReasonNoRoute     = "no-route"           // the routing tier found no feasible pair
	ReasonConflict    = "conflict"           // lost the optimistic race even after retries
	ReasonDuplicateID = "duplicate-id"       // a live connection already holds the ID
	ReasonUnknownConn = "unknown-connection" // teardown/reroute of an ID not live
	ReasonBadRequest  = "bad-request"        // invalid endpoints or ID
	ReasonClosed      = "engine-closed"      // submitted during/after shutdown
)

// connState is the registry record of one live connection. Paths are
// engine-owned copies; the committer is the only writer after admission.
type connState struct {
	id       int64
	s, d     int
	primary  []wdm.Hop
	backup   []wdm.Hop
	cost     float64
	rerouted int
}

type opKind uint8

const (
	opProvision opKind = iota
	opTeardown
	opReroute
	opAudit
)

// op is one unit of work. It carries two one-shot reply channels: commit is
// the shard↔committer handshake, done delivers the final verdict to the
// caller blocked in Provision/Teardown/Reroute. They must be distinct — a
// retried op crosses the commit channel several times, and only the shard
// may decide which crossing is final.
type op struct {
	kind opKind
	id   int64
	s, d int
	algo Algo

	// New paths (provision, reroute): op-owned copies of the routed pair.
	primary, backup []wdm.Hop
	cost, pathLoad  float64
	// Old paths to release (teardown, reroute): copies of the registry state.
	oldPrimary, oldBackup []wdm.Hop

	snapEpoch uint64 // epoch the paths were routed against
	retries   int
	audit     func(cur *wdm.Network) error // opAudit only

	// Stage attribution (see stageNanos): t0 is the request clock start,
	// last the most recent stage boundary the shard stamped (finishOp folds
	// last → done into commit so the stages sum to the request time), st the
	// accumulated per-stage nanos, traceReq the flight-recorder request ID of
	// the first routing attempt (0 when untraced) echoed as X-Wdmd-Req.
	t0       time.Time
	last     time.Time
	st       stageNanos
	traceReq int64

	commit chan commitResult
	done   chan commitResult
}

func newOp(kind opKind, id int64, s, d int, algo Algo) *op {
	return &op{kind: kind, id: id, s: s, d: d, algo: algo,
		commit: make(chan commitResult, 1), done: make(chan commitResult, 1)}
}

type commitResult struct {
	ok       bool
	conflict bool
	reason   string
	epoch    uint64 // epoch the decision committed into
	err      error  // opAudit verdict
}

// engineStats are the daemon's aggregate counters, updated atomically so
// /status never blocks the data path.
type engineStats struct {
	provisions atomic.Int64
	accepted   atomic.Int64
	blocked    atomic.Int64
	teardowns  atomic.Int64
	reroutes   atomic.Int64
	rerouteOK  atomic.Int64
	conflicts  atomic.Int64 // commit-time reservation conflicts (pre-retry)
	retries    atomic.Int64 // re-route attempts after a conflict
	audits     atomic.Int64
}

// Engine is the daemon: sharded routing over epoch snapshots with a
// serialized batch committer. Create with New, run with Start, serve its
// Handler, stop with Close.
type Engine struct {
	cfg   Config
	nodes int
	w     int

	store  *store
	shards []*shard

	commitCh chan *op
	batch    []*op
	results  []commitResult

	connMu sync.RWMutex
	conns  map[int64]*connState

	stats   engineStats
	journal journal
	tel     *telemetry
	start   time.Time

	// contention[link] counts commit-time reservation conflicts charged to
	// that link (committer-only writes, atomic so the telemetry prober may
	// read concurrently). The sealed top-K lands in NetState.Contention.
	contention []atomic.Int64

	// watchdog / incidents, when attached, back /debug/slo and
	// /debug/incidents on the engine's Handler.
	watchdog  *slo.Watchdog
	incidents *slo.Capturer

	mu       sync.Mutex
	started  bool
	closed   bool
	inflight sync.WaitGroup
	shardWg  sync.WaitGroup
	commitWg sync.WaitGroup
}

// shard owns one region of (s, t) pairs: a serial request queue and a warm
// router. All ops touching a connection land on the shard of its pair, which
// linearizes per-connection histories for free.
type shard struct {
	idx    int
	e      *Engine
	q      chan *op
	router *core.Router

	// Per-shard attribution counters for /status (ShardDetail): a hot shard
	// or a conflict-prone region shows up here, not just in the aggregates.
	ops       atomic.Int64
	conflicts atomic.Int64
	retries   atomic.Int64
}

// New builds an engine over a private clone of net. Call Start before
// submitting requests.
func New(net *wdm.Network, cfg Config) *Engine {
	st := newStore(net)
	e := &Engine{
		cfg:      cfg,
		nodes:    net.Nodes(),
		w:        net.W(),
		store:    st,
		commitCh: make(chan *op, cfg.shards()*2+4),
		conns:    make(map[int64]*connState),
		journal:  journal{cap: cfg.JournalCap},
		start:    time.Now(),
	}
	e.contention = make([]atomic.Int64, st.cur.Links())
	// Per-shard router options: ReuseResult is safe (shards copy paths out
	// immediately) and the candidate table — built once from the
	// authoritative clone — is read-only, so every shard may share it.
	var ropts core.Options
	if cfg.Opts != nil {
		ropts = *cfg.Opts
	}
	ropts.ReuseResult = true
	if cfg.Candidates > 0 && ropts.CandidateTable == nil {
		ropts.CandidateTable = core.NewCandidateTable(st.cur, cfg.Candidates)
	}
	e.shards = make([]*shard, cfg.shards())
	for i := range e.shards {
		opts := ropts
		r := core.NewRouter(&opts)
		r.SetTracer(cfg.Tracer)
		e.shards[i] = &shard{idx: i, e: e, q: make(chan *op, cfg.queueDepth()), router: r}
	}
	e.tel = newTelemetry(e, cfg.Window, cfg.Retention)
	return e
}

// AttachSLO binds a watchdog (plus optional incident capturer) to the
// engine: the watchdog subscribes to the telemetry collector's sealed
// windows, breaches flow into the capturer, and both back /debug/slo and
// /debug/incidents on Handler. Call before Start; requires telemetry
// (Config.Window > 0) since objectives evaluate over sealed windows.
func (e *Engine) AttachSLO(w *slo.Watchdog, c *slo.Capturer) error {
	if w == nil {
		return nil
	}
	if e.tel == nil {
		return fmt.Errorf("serve: SLO watchdog needs telemetry (set Config.Window)")
	}
	e.watchdog, e.incidents = w, c
	w.Bind(e.tel.col)
	if c != nil {
		w.OnBreach(c.HandleBreach)
	}
	return nil
}

// Nodes returns |V| of the served network.
func (e *Engine) Nodes() int { return e.nodes }

// W returns the wavelength count of the served network.
func (e *Engine) W() int { return e.w }

// Start launches the shard workers and the committer. It is an error to
// start twice or after Close.
func (e *Engine) Start() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return fmt.Errorf("serve: engine already started")
	}
	if e.closed {
		return fmt.Errorf("serve: engine closed")
	}
	e.started = true
	for _, sh := range e.shards {
		e.shardWg.Add(1)
		go sh.run()
	}
	e.commitWg.Add(1)
	go e.runCommitter()
	e.tel.startTicker()
	instr.shards.Set(float64(len(e.shards)))
	return nil
}

// Close drains the engine: in-flight requests complete, queues empty, the
// committer publishes its final epoch, and telemetry is sealed and flushed.
// It returns the first telemetry sink error, if any, and is idempotent.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return e.tel.err()
	}
	e.closed = true
	started := e.started
	e.mu.Unlock()

	e.inflight.Wait() // every dispatched request has its verdict
	if started {
		for _, sh := range e.shards {
			close(sh.q)
		}
		e.shardWg.Wait()
		close(e.commitCh)
		e.commitWg.Wait()
	}
	return e.tel.close()
}

// enter registers an in-flight request; it fails when the engine is not
// accepting work. Exit via e.inflight.Done().
func (e *Engine) enter() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.started || e.closed {
		return false
	}
	e.inflight.Add(1)
	return true
}

// shardOf maps an (s, t) pair to its owning shard.
func (e *Engine) shardOf(s, d int) *shard {
	h := uint64(s)*0x9E3779B97F4A7C15 + uint64(d)*0xBF58476D1CE4E5B9
	h ^= h >> 29
	return e.shards[h%uint64(len(e.shards))]
}

// Provision routes and establishes a new connection. The request's Algo
// field, when non-empty, overrides the engine default per call.
func (e *Engine) Provision(req Request) Response {
	t0 := time.Now()
	algo := e.cfg.Algorithm
	if req.Algo != "" {
		a, err := ParseAlgo(req.Algo)
		if err != nil {
			return rejectResponse(req.ID, "provision", ReasonBadRequest, err.Error())
		}
		algo = a
	}
	if req.ID < 0 || req.Src < 0 || req.Src >= e.nodes || req.Dst < 0 || req.Dst >= e.nodes || req.Src == req.Dst {
		return rejectResponse(req.ID, "provision", ReasonBadRequest,
			fmt.Sprintf("want 0 <= src,dst < %d, src != dst, id >= 0", e.nodes))
	}
	if !e.enter() {
		return rejectResponse(req.ID, "provision", ReasonClosed, "")
	}
	defer e.inflight.Done()
	e.stats.provisions.Add(1)
	instr.provisions.Inc()

	o := newOp(opProvision, req.ID, req.Src, req.Dst, algo)
	o.t0 = t0
	e.shardOf(req.Src, req.Dst).q <- o
	return e.finishOp(o, <-o.done, "provision", t0)
}

// Teardown releases a live connection.
func (e *Engine) Teardown(id int64) Response {
	t0 := time.Now()
	if !e.enter() {
		return rejectResponse(id, "teardown", ReasonClosed, "")
	}
	defer e.inflight.Done()
	e.stats.teardowns.Add(1)
	instr.teardowns.Inc()

	c, ok := e.lookupConn(id)
	if !ok {
		e.tel.observe("teardown", time.Since(t0), false, nil)
		return rejectResponse(id, "teardown", ReasonUnknownConn, "")
	}
	o := newOp(opTeardown, id, c.s, c.d, 0)
	o.t0 = t0
	e.shardOf(c.s, c.d).q <- o
	return e.finishOp(o, <-o.done, "teardown", t0)
}

// Reroute computes a fresh pair for a live connection on the current
// snapshot and atomically swaps it in at commit (make-before-break: the old
// paths are released and the new ones reserved inside one epoch; on a lost
// race the old paths are restored and the reroute retried).
func (e *Engine) Reroute(id int64) Response {
	t0 := time.Now()
	if !e.enter() {
		return rejectResponse(id, "reroute", ReasonClosed, "")
	}
	defer e.inflight.Done()
	e.stats.reroutes.Add(1)
	instr.reroutes.Inc()

	c, ok := e.lookupConn(id)
	if !ok {
		e.tel.observe("reroute", time.Since(t0), false, nil)
		return rejectResponse(id, "reroute", ReasonUnknownConn, "")
	}
	o := newOp(opReroute, id, c.s, c.d, e.cfg.Algorithm)
	o.t0 = t0
	e.shardOf(c.s, c.d).q <- o
	return e.finishOp(o, <-o.done, "reroute", t0)
}

// Audit runs the verification oracle at a quiescent point in commit order:
// it flows through the committer like any admission, so it observes a state
// with no half-applied batch. It validates the Eq. 2 load bookkeeping, every
// live connection's reservation legality and pairwise edge-disjointness, and
// exact capacity conservation (each busy (link, λ) channel is held by
// exactly one live connection, and no channel by two).
func (e *Engine) Audit() error {
	if !e.enter() {
		return fmt.Errorf("serve: %s", ReasonClosed)
	}
	defer e.inflight.Done()
	e.stats.audits.Add(1)
	o := newOp(opAudit, 0, 0, 0, 0)
	o.audit = e.oracle
	e.commitCh <- o
	cr := <-o.commit
	return cr.err
}

// finishOp folds a commit verdict into counters, telemetry and the response.
func (e *Engine) finishOp(o *op, cr commitResult, kind string, t0 time.Time) Response {
	// Close the attribution ledger: the tail (shard's last stamp → now, i.e.
	// the done-channel handoff back to this goroutine) folds into the commit
	// stage, so queue+snap+route+commit+reroute equals tDone−t0 exactly.
	tDone := time.Now()
	if !o.last.IsZero() {
		o.st.commit += tDone.Sub(o.last).Nanoseconds()
	}
	e.observeStages(o)
	e.tel.observe(kind, tDone.Sub(t0), cr.ok, &o.st)
	instr.requestTime.Observe(tDone.Sub(t0))
	resp := Response{
		ID:       o.id,
		Op:       kind,
		Accepted: cr.ok,
		Reason:   cr.reason,
		Epoch:    cr.epoch,
		Shard:    e.shardOf(o.s, o.d).idx,
		Retries:  o.retries,
		Req:      o.traceReq,
	}
	switch o.kind {
	case opProvision:
		if cr.ok {
			e.stats.accepted.Add(1)
			instr.accepted.Inc()
			resp.Cost = o.cost
			resp.PathLoad = o.pathLoad
			resp.Primary = hopsJSON(o.primary)
			resp.Backup = hopsJSON(o.backup)
		} else {
			e.stats.blocked.Add(1)
			instr.blocked.Inc()
		}
	case opReroute:
		if cr.ok {
			e.stats.rerouteOK.Add(1)
			resp.Cost = o.cost
			resp.PathLoad = o.pathLoad
			resp.Primary = hopsJSON(o.primary)
			resp.Backup = hopsJSON(o.backup)
		}
	}
	e.syncGauges()
	return resp
}

// run is the shard worker loop: serial over the shard's region, so ops on
// the same connection never overlap.
func (sh *shard) run() {
	defer sh.e.shardWg.Done()
	for o := range sh.q {
		sh.ops.Add(1)
		switch o.kind {
		case opProvision:
			sh.provision(o)
		case opTeardown:
			sh.teardown(o)
		case opReroute:
			sh.reroute(o)
		}
	}
}

// provision routes on the latest snapshot and commits, re-routing on a
// fresh snapshot after each optimistic conflict up to the retry budget.
//
//wdm:hotpath
func (sh *shard) provision(o *op) {
	e := sh.e
	// Stage stamps: t opens the current attempt (dequeue on attempt 1, the
	// previous commit verdict on retries); attempt 1 splits into
	// snap/route/commit segments, retries fold whole into the reroute stage.
	t := time.Now()
	o.st.queue = t.Sub(o.t0).Nanoseconds()
	first := true
	for {
		snap := e.store.load()
		tSnap := time.Now()
		res, ok := o.algo.route(sh.router, snap.net, o.s, o.d)
		tRoute := time.Now()
		instr.routeTime.Observe(tRoute.Sub(tSnap))
		if first {
			o.st.snap = tSnap.Sub(t).Nanoseconds()
			o.st.route = tRoute.Sub(tSnap).Nanoseconds()
			o.st.tier = sh.router.LastTier()
			if id := sh.router.LastTraceID(); id > 0 {
				o.traceReq = id
			}
		}
		if !ok {
			if !first {
				o.st.reroute += tRoute.Sub(t).Nanoseconds()
			}
			o.last = tRoute
			o.done <- commitResult{ok: false, reason: ReasonNoRoute, epoch: snap.epoch}
			return
		}
		o.primary = copyHops(o.primary, res.Primary)
		o.backup = copyHops(o.backup, res.Backup)
		o.cost, o.pathLoad = res.Cost, res.PathLoad
		o.snapEpoch = snap.epoch
		e.commitCh <- o
		cr := <-o.commit
		tCommit := time.Now()
		if first {
			o.st.commit = tCommit.Sub(tRoute).Nanoseconds()
		} else {
			o.st.reroute += tCommit.Sub(t).Nanoseconds()
		}
		o.last = tCommit
		if cr.conflict {
			sh.conflicts.Add(1)
			if o.retries < e.cfg.maxRetries() {
				o.retries++
				e.stats.retries.Add(1)
				sh.retries.Add(1)
				instr.retries.Inc()
				first = false
				t = tCommit
				continue
			}
		}
		o.done <- cr
		return
	}
}

// teardown snapshots the connection's current paths (stable: ops on this
// connection are serialized through this shard) and commits the release.
func (sh *shard) teardown(o *op) {
	e := sh.e
	t := time.Now()
	o.st.queue = t.Sub(o.t0).Nanoseconds()
	c, ok := e.lookupConn(o.id)
	if !ok {
		o.last = time.Now()
		o.st.snap = o.last.Sub(t).Nanoseconds()
		o.done <- commitResult{ok: false, reason: ReasonUnknownConn, epoch: e.store.load().epoch}
		return
	}
	o.oldPrimary = append(o.oldPrimary[:0], c.primary...)
	o.oldBackup = append(o.oldBackup[:0], c.backup...)
	tPrep := time.Now()
	o.st.snap = tPrep.Sub(t).Nanoseconds() // registry lookup + path copy
	e.commitCh <- o
	cr := <-o.commit
	o.last = time.Now()
	o.st.commit = o.last.Sub(tPrep).Nanoseconds()
	o.done <- cr
}

// reroute routes a fresh pair on the latest snapshot (the connection's own
// wavelengths still held — make-before-break) and commits the swap.
//
//wdm:hotpath
func (sh *shard) reroute(o *op) {
	e := sh.e
	t := time.Now()
	o.st.queue = t.Sub(o.t0).Nanoseconds()
	first := true
	for {
		c, ok := e.lookupConn(o.id)
		if !ok {
			now := time.Now()
			if first {
				o.st.snap = now.Sub(t).Nanoseconds()
			} else {
				o.st.reroute += now.Sub(t).Nanoseconds()
			}
			o.last = now
			o.done <- commitResult{ok: false, reason: ReasonUnknownConn, epoch: e.store.load().epoch}
			return
		}
		o.oldPrimary = append(o.oldPrimary[:0], c.primary...)
		o.oldBackup = append(o.oldBackup[:0], c.backup...)
		snap := e.store.load()
		tSnap := time.Now()
		res, ok := o.algo.route(sh.router, snap.net, o.s, o.d)
		tRoute := time.Now()
		instr.routeTime.Observe(tRoute.Sub(tSnap))
		if first {
			// snap covers registry lookup + old-path copy + snapshot acquire.
			o.st.snap = tSnap.Sub(t).Nanoseconds()
			o.st.route = tRoute.Sub(tSnap).Nanoseconds()
			o.st.tier = sh.router.LastTier()
			if id := sh.router.LastTraceID(); id > 0 {
				o.traceReq = id
			}
		}
		if !ok {
			if !first {
				o.st.reroute += tRoute.Sub(t).Nanoseconds()
			}
			o.last = tRoute
			o.done <- commitResult{ok: false, reason: ReasonNoRoute, epoch: snap.epoch}
			return
		}
		o.primary = copyHops(o.primary, res.Primary)
		o.backup = copyHops(o.backup, res.Backup)
		o.cost, o.pathLoad = res.Cost, res.PathLoad
		o.snapEpoch = snap.epoch
		e.commitCh <- o
		cr := <-o.commit
		tCommit := time.Now()
		if first {
			o.st.commit = tCommit.Sub(tRoute).Nanoseconds()
		} else {
			o.st.reroute += tCommit.Sub(t).Nanoseconds()
		}
		o.last = tCommit
		if cr.conflict {
			sh.conflicts.Add(1)
			if o.retries < e.cfg.maxRetries() {
				o.retries++
				e.stats.retries.Add(1)
				sh.retries.Add(1)
				instr.retries.Inc()
				first = false
				t = tCommit
				continue
			}
		}
		o.done <- cr
		return
	}
}

// runCommitter is the single writer: it folds queued ops into batches,
// applies each batch to the authoritative network, advances the epoch, and
// publishes the next copy-on-write snapshot before releasing the replies —
// so an acknowledged op is always visible in the next snapshot its caller
// can load.
func (e *Engine) runCommitter() {
	defer e.commitWg.Done()
	for o := range e.commitCh {
		e.batch = append(e.batch[:0], o)
	fill:
		for len(e.batch) < e.cfg.batchMax() {
			select {
			case o2, ok := <-e.commitCh:
				if !ok {
					break fill
				}
				e.batch = append(e.batch, o2)
			default:
				break fill
			}
		}
		e.applyBatch(e.batch)
	}
}

// applyBatch commits one batch: apply every op in order, publish one new
// epoch if anything changed, then reply.
func (e *Engine) applyBatch(batch []*op) {
	e.results = e.results[:0]
	dirty := false
	for _, o := range batch {
		cr := e.applyOne(o)
		if cr.ok && o.kind != opAudit {
			dirty = true
		}
		e.results = append(e.results, cr)
	}
	epoch := e.store.load().epoch
	if dirty {
		epoch = e.store.publish()
		instr.epochs.Inc()
		instr.epoch.Set(float64(epoch))
		e.tel.epochSealed(len(batch))
	}
	for i, o := range batch {
		cr := e.results[i]
		cr.epoch = epoch
		if o.kind != opAudit {
			e.journal.record(o, cr)
		}
		o.commit <- cr
	}
}

// applyOne validates and applies a single op against the authoritative
// network. Reservation failures are reported as conflicts (the op was routed
// on a stale snapshot) and never applied partially: wdm.Reserve rolls back.
func (e *Engine) applyOne(o *op) commitResult {
	cur := e.store.cur
	switch o.kind {
	case opProvision:
		if _, dup := e.lookupConn(o.id); dup {
			return commitResult{ok: false, reason: ReasonDuplicateID}
		}
		p := &wdm.Semilightpath{Hops: o.primary}
		b := &wdm.Semilightpath{Hops: o.backup}
		if err := cur.Reserve(p); err != nil {
			e.conflictNoted(o)
			return commitResult{conflict: true, reason: ReasonConflict}
		}
		if err := cur.Reserve(b); err != nil {
			e.mustRelease(o.primary)
			e.conflictNoted(o)
			return commitResult{conflict: true, reason: ReasonConflict}
		}
		e.putConn(&connState{
			id: o.id, s: o.s, d: o.d,
			primary: append([]wdm.Hop(nil), o.primary...),
			backup:  append([]wdm.Hop(nil), o.backup...),
			cost:    o.cost,
		})
		return commitResult{ok: true}

	case opTeardown:
		if _, live := e.lookupConn(o.id); !live {
			return commitResult{ok: false, reason: ReasonUnknownConn}
		}
		e.mustRelease(o.oldPrimary)
		e.mustRelease(o.oldBackup)
		e.delConn(o.id)
		return commitResult{ok: true}

	case opReroute:
		c, live := e.lookupConn(o.id)
		if !live {
			return commitResult{ok: false, reason: ReasonUnknownConn}
		}
		e.mustRelease(o.oldPrimary)
		e.mustRelease(o.oldBackup)
		p := &wdm.Semilightpath{Hops: o.primary}
		b := &wdm.Semilightpath{Hops: o.backup}
		err := cur.Reserve(p)
		if err == nil {
			if err = cur.Reserve(b); err != nil {
				e.mustRelease(o.primary)
			}
		}
		if err != nil {
			// Lost the race: restore the old paths (they were just released
			// within this serialized commit step, so this cannot fail) and
			// let the shard retry on the fresh snapshot.
			e.mustReserve(o.oldPrimary)
			e.mustReserve(o.oldBackup)
			e.conflictNoted(o)
			return commitResult{conflict: true, reason: ReasonConflict}
		}
		e.connMu.Lock()
		c.primary = append(c.primary[:0], o.primary...)
		c.backup = append(c.backup[:0], o.backup...)
		c.cost = o.cost
		c.rerouted++
		e.connMu.Unlock()
		return commitResult{ok: true}

	case opAudit:
		return commitResult{ok: true, err: o.audit(cur)}
	}
	panic("serve: unknown op kind")
}

// conflictNoted folds one commit-time reservation conflict into every
// attribution surface at once: the aggregate counters, the per-link
// contention charge, and the per-window conflicts rate. Committer goroutine.
func (e *Engine) conflictNoted(o *op) {
	e.stats.conflicts.Add(1)
	instr.conflicts.Inc()
	e.noteContention(o)
	e.tel.conflict()
}

// mustRelease returns held wavelengths to the pool; failure means the
// engine's bookkeeping is corrupt, which is unrecoverable.
func (e *Engine) mustRelease(hops []wdm.Hop) {
	sl := wdm.Semilightpath{Hops: hops}
	if err := e.store.cur.ReleasePath(&sl); err != nil {
		panic("serve: inconsistent release: " + err.Error())
	}
}

// mustReserve re-locks wavelengths released earlier in the same serialized
// commit step; failure is likewise unrecoverable.
func (e *Engine) mustReserve(hops []wdm.Hop) {
	sl := wdm.Semilightpath{Hops: hops}
	if err := e.store.cur.Reserve(&sl); err != nil {
		panic("serve: inconsistent re-reserve: " + err.Error())
	}
}

// oracle is the Audit validation pass; it runs on the committer goroutine.
func (e *Engine) oracle(cur *wdm.Network) error {
	if err := check.LoadAccounting(cur); err != nil {
		return err
	}
	type chanKey struct{ link, lambda int }
	held := make(map[chanKey]int64)
	e.connMu.RLock()
	defer e.connMu.RUnlock()
	for id, c := range e.conns {
		p := &wdm.Semilightpath{Hops: c.primary}
		b := &wdm.Semilightpath{Hops: c.backup}
		if err := check.Path(cur, p, c.s, c.d); err != nil {
			return fmt.Errorf("conn %d primary: %w", id, err)
		}
		if err := check.Reserved(cur, p); err != nil {
			return fmt.Errorf("conn %d primary: %w", id, err)
		}
		if err := check.Path(cur, b, c.s, c.d); err != nil {
			return fmt.Errorf("conn %d backup: %w", id, err)
		}
		if err := check.Reserved(cur, b); err != nil {
			return fmt.Errorf("conn %d backup: %w", id, err)
		}
		if err := check.EdgeDisjoint(p, b); err != nil {
			return fmt.Errorf("conn %d: %w", id, err)
		}
		for _, hops := range [2][]wdm.Hop{c.primary, c.backup} {
			for _, h := range hops {
				k := chanKey{h.Link, h.Wavelength}
				if prev, dup := held[k]; dup {
					return fmt.Errorf("channel (link %d, λ%d) double-booked by conns %d and %d",
						h.Link, h.Wavelength, prev, id)
				}
				held[k] = id
			}
		}
	}
	// Conservation: every busy channel is held by exactly one connection and
	// every available channel by none.
	for id := 0; id < cur.Links(); id++ {
		l := cur.Link(id)
		var leak error
		l.Lambda().ForEach(func(lam int) bool {
			if l.HasAvail(lam) {
				if owner, dup := held[chanKey{id, lam}]; dup {
					leak = fmt.Errorf("channel (link %d, λ%d) available but held by conn %d", id, lam, owner)
					return false
				}
				return true
			}
			if _, ok := held[chanKey{id, lam}]; !ok {
				leak = fmt.Errorf("channel (link %d, λ%d) busy but owned by no live connection", id, lam)
				return false
			}
			return true
		})
		if leak != nil {
			return leak
		}
	}
	return nil
}

// lookupConn fetches a registry record (shared pointer; the committer is the
// only mutator of path fields, shards copy them before use).
func (e *Engine) lookupConn(id int64) (*connState, bool) {
	e.connMu.RLock()
	c, ok := e.conns[id]
	e.connMu.RUnlock()
	return c, ok
}

func (e *Engine) putConn(c *connState) {
	e.connMu.Lock()
	e.conns[c.id] = c
	e.connMu.Unlock()
}

func (e *Engine) delConn(id int64) {
	e.connMu.Lock()
	delete(e.conns, id)
	e.connMu.Unlock()
}

// LiveConnections returns the number of currently established connections.
func (e *Engine) LiveConnections() int {
	e.connMu.RLock()
	n := len(e.conns)
	e.connMu.RUnlock()
	return n
}

// LiveIDs returns the IDs of all live connections (order unspecified) — the
// drain hook for soak drivers and tests.
func (e *Engine) LiveIDs() []int64 {
	e.connMu.RLock()
	ids := make([]int64, 0, len(e.conns))
	for id := range e.conns {
		ids = append(ids, id)
	}
	e.connMu.RUnlock()
	return ids
}

// Snapshot returns the current epoch and its frozen network. The returned
// network is immutable and shared — read only. A caller holding the pointer
// is pinned to that epoch: later commits never mutate it.
func (e *Engine) Snapshot() (uint64, *wdm.Network) {
	s := e.store.load()
	return s.epoch, s.net
}

// Journal returns a copy of the commit-ordered ops journal and whether it
// was truncated at the configured capacity.
func (e *Engine) Journal() ([]JournalEntry, bool) {
	return e.journal.snapshot()
}

// syncGauges refreshes the live progress gauges after each request.
func (e *Engine) syncGauges() {
	instr.liveConns.Set(float64(e.LiveConnections()))
	prov := e.stats.provisions.Load()
	if prov > 0 {
		instr.blockingProb.Set(float64(e.stats.blocked.Load()) / float64(prov))
	}
}

// Stats is the /status payload.
type Stats struct {
	Epoch        uint64  `json:"epoch"`
	StateVersion uint64  `json:"state_version"`
	Nodes        int     `json:"nodes"`
	Links        int     `json:"links"`
	W            int     `json:"wavelengths"`
	Shards       int     `json:"shards"`
	LiveConns    int     `json:"live_connections"`
	NetworkLoad  float64 `json:"network_load"`
	Provisions   int64   `json:"provisions"`
	Accepted     int64   `json:"accepted"`
	Blocked      int64   `json:"blocked"`
	Teardowns    int64   `json:"teardowns"`
	Reroutes     int64   `json:"reroutes"`
	RerouteOK    int64   `json:"reroute_ok"`
	Conflicts    int64   `json:"conflicts"`
	Retries      int64   `json:"retries"`
	BlockingProb float64 `json:"blocking_probability"`
	Uptime       float64 `json:"uptime_seconds"`
	// ShardDetail attributes ops/conflicts/retries to individual shards.
	ShardDetail []ShardStats `json:"shard_detail,omitempty"`
}

// Status reports the daemon's aggregate state from the latest snapshot; it
// never touches the authoritative network or any queue.
func (e *Engine) Status() Stats {
	snap := e.store.load()
	st := Stats{
		Epoch:        snap.epoch,
		StateVersion: snap.net.StateVersion(),
		Nodes:        e.nodes,
		Links:        snap.net.Links(),
		W:            e.w,
		Shards:       len(e.shards),
		LiveConns:    e.LiveConnections(),
		NetworkLoad:  snap.net.NetworkLoad(),
		Provisions:   e.stats.provisions.Load(),
		Accepted:     e.stats.accepted.Load(),
		Blocked:      e.stats.blocked.Load(),
		Teardowns:    e.stats.teardowns.Load(),
		Reroutes:     e.stats.reroutes.Load(),
		RerouteOK:    e.stats.rerouteOK.Load(),
		Conflicts:    e.stats.conflicts.Load(),
		Retries:      e.stats.retries.Load(),
		Uptime:       time.Since(e.start).Seconds(),
		ShardDetail:  e.shardDetail(),
	}
	if st.Provisions > 0 {
		st.BlockingProb = float64(st.Blocked) / float64(st.Provisions)
	}
	if math.IsNaN(st.NetworkLoad) {
		st.NetworkLoad = 0
	}
	return st
}

// copyHops copies a routed semilightpath into op-owned storage (the router's
// arena is overwritten by its next call).
func copyHops(dst []wdm.Hop, p *wdm.Semilightpath) []wdm.Hop {
	if p == nil {
		return dst[:0]
	}
	return append(dst[:0], p.Hops...)
}
