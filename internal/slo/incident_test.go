package slo

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/timeseries"
)

// fakeClock is the deterministic wall clock behind the rate-limit tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func noSleep(time.Duration)                  {}

func newTestCapturer(t *testing.T, cfg CaptureConfig, fc *fakeClock) *Capturer {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	c, err := NewCapturer(cfg)
	if err != nil {
		t.Fatalf("NewCapturer: %v", err)
	}
	c.now = fc.now
	c.sleep = noSleep
	return c
}

func testBreach() Breach {
	return Breach{Objective: "p99", Series: "lat", At: 12, Value: 0.9, Max: 0.1, ShortBurn: 9, LongBurn: 4}
}

func TestCaptureBundle(t *testing.T) {
	clock := timeseries.NewSimClock()
	col := timeseries.New(timeseries.Config{Window: 1, Clock: clock})
	lat := col.Histogram("lat", nil)
	for i := 1; i <= 3; i++ {
		lat.Observe(0.5)
		clock.Advance(float64(i))
		col.Advance(float64(i))
	}

	fc := &fakeClock{t: time.Unix(1700000000, 0)}
	dir := t.TempDir()
	c := newTestCapturer(t, CaptureConfig{
		Dir:    dir,
		Series: col,
		Status: func() any { return map[string]int{"live_connections": 7} },
	}, fc)

	c.HandleBreach(testBreach())
	c.Wait()

	st := c.Status()
	if st.LastError != "" {
		t.Fatalf("capture error: %s", st.LastError)
	}
	if len(st.Bundles) != 1 {
		t.Fatalf("bundles = %d, want 1", len(st.Bundles))
	}
	b := st.Bundles[0]
	if b.Name != "incident-001-p99" || b.Objective != "p99" || b.At != 12 {
		t.Fatalf("bundle info: %+v", b)
	}

	// The bundle landed atomically: no .tmp residue.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("temp bundle left behind: %s", e.Name())
		}
	}

	bundle := filepath.Join(dir, b.Name)
	for _, f := range []string{"manifest.json", "heap.pprof", "cpu.pprof", "timeseries.json", "status.json", "runtime.json"} {
		fi, err := os.Stat(filepath.Join(bundle, f))
		if err != nil {
			t.Fatalf("bundle missing %s: %v", f, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("bundle file %s is empty", f)
		}
	}

	// The manifest round-trips and carries the breach.
	raw, err := os.ReadFile(filepath.Join(bundle, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var manifest struct {
		Name   string `json:"name"`
		Breach Breach `json:"breach"`
		Files  []string
	}
	if err := json.Unmarshal(raw, &manifest); err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if manifest.Breach.Objective != "p99" || manifest.Breach.Value != 0.9 {
		t.Fatalf("manifest breach: %+v", manifest.Breach)
	}

	// timeseries.json holds the sealed windows.
	raw, err = os.ReadFile(filepath.Join(bundle, "timeseries.json"))
	if err != nil {
		t.Fatal(err)
	}
	var snaps []timeseries.Snapshot
	if err := json.Unmarshal(raw, &snaps); err != nil {
		t.Fatalf("timeseries.json: %v", err)
	}
	if len(snaps) != 3 {
		t.Fatalf("bundled windows = %d, want 3", len(snaps))
	}
}

func TestCaptureRateLimit(t *testing.T) {
	fc := &fakeClock{t: time.Unix(1700000000, 0)}
	c := newTestCapturer(t, CaptureConfig{Dir: t.TempDir(), MinInterval: time.Minute}, fc)

	c.HandleBreach(testBreach())
	c.Wait()
	// Inside the rate-limit window: counted, not captured.
	fc.advance(10 * time.Second)
	c.HandleBreach(testBreach())
	c.HandleBreach(testBreach())
	c.Wait()
	st := c.Status()
	if len(st.Bundles) != 1 || st.Skipped != 2 {
		t.Fatalf("bundles = %d skipped = %d, want 1 and 2", len(st.Bundles), st.Skipped)
	}
	// Past the window: captured again, sequence advances.
	fc.advance(time.Minute)
	c.HandleBreach(testBreach())
	c.Wait()
	st = c.Status()
	if len(st.Bundles) != 2 {
		t.Fatalf("bundles after interval = %d, want 2", len(st.Bundles))
	}
	if st.Bundles[1].Name != "incident-002-p99" {
		t.Fatalf("second bundle name = %s", st.Bundles[1].Name)
	}
}

func TestCapturerValidation(t *testing.T) {
	if _, err := NewCapturer(CaptureConfig{}); err == nil {
		t.Fatal("want error for empty Dir")
	}
	var c *Capturer
	c.HandleBreach(testBreach()) // nil-safe
	c.Wait()
	if st := c.Status(); len(st.Bundles) != 0 {
		t.Fatalf("nil capturer bundles: %+v", st)
	}
}
