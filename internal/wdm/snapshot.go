package wdm

// CloneSince returns a deep-enough copy of g for publication as an immutable
// read snapshot, sharing storage with prev — a frozen clone of the same
// network taken when g.StateVersion() was prevVersion — for every link whose
// availability has not changed since then (LinkStamp(e) ≤ prevVersion). This
// is the copy-on-write epoch layer of the serving daemon: with a per-epoch
// admission batch touching b links out of m, publishing the next snapshot
// costs O(b) link copies instead of O(m·W/64), and the shared *Link records
// are safe because both snapshots are frozen — only the authoritative
// mutable network ever writes availability sets, and it shares nothing.
//
// Per-link wavelength inventories (Λ(e)) and cost tables are shared with g
// itself: they are write-once at AddLink and never mutated afterwards.
// Structure (adjacency, converters, SRLGs) is shared with prev; any
// structural change bumps TopoVersion, which forces the full-clone path.
//
// A nil prev, a TopoVersion mismatch, or a link-count mismatch falls back to
// Clone(). The receiver is not mutated.
func (g *Network) CloneSince(prev *Network, prevVersion uint64) *Network {
	if prev == nil || prev.topoVersion != g.topoVersion || len(prev.links) != len(g.links) ||
		prev.n != g.n || prev.w != g.w {
		return g.Clone()
	}
	c := &Network{
		n:            g.n,
		w:            g.w,
		out:          prev.out,
		in:           prev.in,
		conv:         prev.conv,
		srlg:         prev.srlg,
		stateVersion: g.stateVersion,
		topoVersion:  g.topoVersion,
		stamp:        append([]uint64(nil), g.stamp...),
	}
	c.links = make([]*Link, len(g.links))
	for i, l := range g.links {
		if g.stamp[i] <= prevVersion {
			// Untouched since prev was taken: share prev's frozen record.
			c.links[i] = prev.links[i]
			continue
		}
		c.links[i] = &Link{
			ID:     l.ID,
			From:   l.From,
			To:     l.To,
			lambda: l.lambda, // write-once after AddLink; safe to share with g
			avail:  l.avail.Clone(),
			cost:   l.cost, // write-once after AddLink; safe to share with g
		}
	}
	return c
}
