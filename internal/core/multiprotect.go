package core

import (
	"math"

	"repro/internal/auxgraph"
	"repro/internal/disjoint"
	"repro/internal/lightpath"
	"repro/internal/wdm"
)

// MultiResult is a k-protected connection: one primary plus k−1 pre-reserved
// backups, all pairwise edge-disjoint, surviving any k−1 simultaneous link
// failures. The paper's problem is the k = 2 instance.
type MultiResult struct {
	// Paths holds the k semilightpaths in ascending cost order; Paths[0]
	// serves as primary.
	Paths []*wdm.Semilightpath
	// Cost is the Eq. 1 cost sum over all k paths.
	Cost float64
	// AuxWeight is the auxiliary-graph weight of the chosen path set.
	AuxWeight float64
}

// ApproxMinCostK generalises §3.3 to k pairwise edge-disjoint
// semilightpaths: the §3.3.1 auxiliary graph is searched with the
// successive-shortest-paths generalisation of Suurballe (KDisjoint), and
// each mapped route gets the Lemma 2 optimal wavelength assignment. k = 2
// reproduces ApproxMinCost up to path ordering. ok is false when fewer than
// k edge-disjoint semilightpaths exist.
func ApproxMinCostK(net *wdm.Network, s, t, k int, opts *Options) (*MultiResult, bool) {
	if k <= 0 {
		return nil, false
	}
	a := auxgraph.Build(net, s, t, auxgraph.Params{Kind: auxgraph.Cost})
	kp, ok := disjoint.KDisjoint(a.G, a.S, a.T, k)
	if !ok {
		return nil, false
	}
	res := &MultiResult{AuxWeight: kp.Weight}
	for _, auxPath := range kp.Paths {
		route := a.MapPath(auxPath)
		if len(route) == 0 {
			return nil, false
		}
		p, c, okA := lightpath.AssignWavelengths(net, route)
		if !okA {
			// Restricted conversion can defeat the refinement; fall back to
			// first-fit before giving up.
			var nc float64
			p, nc = firstFit(net, route)
			if p == nil || math.IsInf(nc, 1) {
				return nil, false
			}
			c = nc
		}
		res.Paths = append(res.Paths, p)
		res.Cost += c
	}
	// Ascending cost order: cheapest path serves as primary.
	for i := 1; i < len(res.Paths); i++ {
		for j := i; j > 0 && res.Paths[j].Cost(net) < res.Paths[j-1].Cost(net); j-- {
			res.Paths[j], res.Paths[j-1] = res.Paths[j-1], res.Paths[j]
		}
	}
	return res, true
}

// EstablishK reserves all k paths atomically (all or none).
func EstablishK(net *wdm.Network, r *MultiResult) error {
	for i, p := range r.Paths {
		if err := net.Reserve(p); err != nil {
			for j := 0; j < i; j++ {
				if rerr := net.ReleasePath(r.Paths[j]); rerr != nil {
					panic("core: k-establish rollback failed: " + rerr.Error())
				}
			}
			return err
		}
	}
	return nil
}

// TeardownK releases all k paths.
func TeardownK(net *wdm.Network, r *MultiResult) error {
	for _, p := range r.Paths {
		if err := net.ReleasePath(p); err != nil {
			return err
		}
	}
	return nil
}

// SurvivesFailures reports whether the k-protected connection still has a
// usable path when the given links are all down simultaneously.
func (r *MultiResult) SurvivesFailures(downLinks map[int]bool) bool {
	for _, p := range r.Paths {
		hit := false
		for _, h := range p.Hops {
			if downLinks[h.Link] {
				hit = true
				break
			}
		}
		if !hit {
			return true
		}
	}
	return false
}
