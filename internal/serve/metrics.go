package serve

import "repro/internal/metrics"

// instruments holds the package's metric hooks; nil (the default) means off.
// All instruments are process-wide, matching the one-daemon-per-process
// deployment; Engine keeps its own atomic stats for /status so the JSON API
// works with metrics disabled.
type instruments struct {
	provisions  *metrics.Counter
	accepted    *metrics.Counter
	blocked     *metrics.Counter
	teardowns   *metrics.Counter
	reroutes    *metrics.Counter
	conflicts   *metrics.Counter
	retries     *metrics.Counter
	epochs      *metrics.Counter
	routeTime   *metrics.Timer
	requestTime *metrics.Timer

	// Stage-attribution timers: every microsecond of wdmd_request_seconds is
	// attributed to exactly one of queue/snapshot/route/commit/reroute, so
	// the five stage sums add up to the end-to-end sum (TestStageSumMatches
	// pins the identity within 5% on a soak). decode is HTTP-only overhead
	// measured before the request clock starts; the candidate/exact pair is
	// a sub-split of the route stage, not an additional stage.
	stageDecode    *metrics.Timer
	stageQueue     *metrics.Timer
	stageSnapshot  *metrics.Timer
	stageRoute     *metrics.Timer
	stageRouteCand *metrics.Timer
	stageRouteEx   *metrics.Timer
	stageCommit    *metrics.Timer
	stageReroute   *metrics.Timer

	// Live progress gauges: refreshed per request so a mid-soak /metrics
	// scrape shows where the daemon stands, not just end totals.
	epoch        *metrics.Gauge
	shards       *metrics.Gauge
	liveConns    *metrics.Gauge
	blockingProb *metrics.Gauge
}

var instr instruments

// EnableMetrics registers the package's instruments on r and routes all
// subsequent daemon activity through them. A nil registry disables them.
func EnableMetrics(r *metrics.Registry) {
	instr = instruments{
		provisions:  r.Counter("wdmd_provision_total", "provision requests received"),
		accepted:    r.Counter("wdmd_accepted_total", "provisions accepted"),
		blocked:     r.Counter("wdmd_blocked_total", "provisions blocked (no route, conflict, duplicate)"),
		teardowns:   r.Counter("wdmd_teardown_total", "teardown requests received"),
		reroutes:    r.Counter("wdmd_reroute_total", "reroute requests received"),
		conflicts:   r.Counter("wdmd_conflicts_total", "commit-time optimistic reservation conflicts"),
		retries:     r.Counter("wdmd_retries_total", "conflicted admissions re-routed on a fresh snapshot"),
		epochs:      r.Counter("wdmd_epochs_total", "snapshot epochs published"),
		routeTime:   r.Timer("wdmd_route_seconds", "per-request routing computation latency"),
		requestTime: r.Timer("wdmd_request_seconds", "end-to-end request latency (queue + route + commit)"),

		stageDecode:    r.Timer("wdmd_stage_decode_seconds", "HTTP request-body decode latency (before the request clock starts)"),
		stageQueue:     r.Timer("wdmd_stage_queue_seconds", "dispatch + shard-queue wait (request accepted to shard dequeue)"),
		stageSnapshot:  r.Timer("wdmd_stage_snapshot_seconds", "epoch-snapshot acquire (plus registry lookup for teardown/reroute)"),
		stageRoute:     r.Timer("wdmd_stage_route_seconds", "route compute, first attempt"),
		stageRouteCand: r.Timer("wdmd_stage_route_candidate_seconds", "route compute answered by the candidate fast tier"),
		stageRouteEx:   r.Timer("wdmd_stage_route_exact_seconds", "route compute answered by the exact pipeline (incl. candidate fallbacks)"),
		stageCommit:    r.Timer("wdmd_stage_commit_seconds", "commit wait (submit to verdict) plus final reply delivery"),
		stageReroute:   r.Timer("wdmd_stage_reroute_seconds", "conflict re-route: whole retry attempts after a lost commit race"),

		epoch:        r.Gauge("wdmd_epoch", "current snapshot epoch"),
		shards:       r.Gauge("wdmd_shards", "routing shard count"),
		liveConns:    r.Gauge("wdmd_live_connections", "connections currently established"),
		blockingProb: r.Gauge("wdmd_blocking_probability", "running blocked/provisions ratio"),
	}
}
