package cli

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/topofile"
)

func TestBuildTopologyAllNames(t *testing.T) {
	for _, name := range TopologyNames {
		net, err := BuildTopology(name, 6, 4, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if net.Nodes() < 2 || net.Links() == 0 || net.W() != 4 {
			t.Fatalf("%s: degenerate network", name)
		}
	}
	if _, err := BuildTopology("torus", 6, 4, 1); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestBuildTopologySizes(t *testing.T) {
	cases := map[string]int{"nsfnet": 14, "arpa2": 20, "ring": 6, "grid": 36, "waxman": 6, "complete": 6}
	for name, nodes := range cases {
		net, err := BuildTopology(name, 6, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		if net.Nodes() != nodes {
			t.Fatalf("%s: nodes = %d, want %d", name, net.Nodes(), nodes)
		}
	}
}

func TestLoadOrBuild(t *testing.T) {
	// Build path.
	net, err := LoadOrBuild("", "ring", 5, 2, 1)
	if err != nil || net.Nodes() != 5 {
		t.Fatalf("build path: %v", err)
	}
	// Load path.
	dir := t.TempDir()
	path := dir + "/n.json"
	orig, _ := BuildTopology("nsfnet", 0, 2, 1)
	if err := topofile.Save(path, topofile.Describe(orig, topofile.ConverterSpec{Kind: "full", Cost: 0.5})); err != nil {
		t.Fatal(err)
	}
	net, err = LoadOrBuild(path, "ignored", 0, 0, 0)
	if err != nil || net.Nodes() != 14 {
		t.Fatalf("load path: %v", err)
	}
	if _, err := LoadOrBuild(dir+"/missing.json", "", 0, 0, 0); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestParseAlgorithm(t *testing.T) {
	want := map[string]netsim.Algorithm{
		"min-cost": netsim.MinCost, "min-load": netsim.MinLoad,
		"min-load-cost": netsim.MinLoadCost, "two-step": netsim.TwoStep,
	}
	for s, algo := range want {
		got, err := ParseAlgorithm(s)
		if err != nil || got != algo {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseAlgorithm("dijkstra"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestParseRestoration(t *testing.T) {
	if r, err := ParseRestoration("active"); err != nil || r != netsim.Active {
		t.Fatal("active failed")
	}
	if r, err := ParseRestoration("passive"); err != nil || r != netsim.Passive {
		t.Fatal("passive failed")
	}
	if _, err := ParseRestoration("psychic"); err == nil {
		t.Fatal("unknown restoration accepted")
	}
}
