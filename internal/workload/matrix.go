package workload

import (
	"math"
	"math/rand"
)

// Matrix is a traffic matrix: Weight[s][d] is proportional to the request
// rate between s and d. Diagonal entries are ignored.
type Matrix struct {
	Weight [][]float64
}

// NewUniformMatrix returns the all-ones matrix over n nodes (the default
// uniform traffic).
func NewUniformMatrix(n int) *Matrix {
	m := &Matrix{Weight: make([][]float64, n)}
	for i := range m.Weight {
		m.Weight[i] = make([]float64, n)
		for j := range m.Weight[i] {
			if i != j {
				m.Weight[i][j] = 1
			}
		}
	}
	return m
}

// NewGravityMatrix builds a gravity-model matrix: Weight[s][d] ∝
// pop[s]·pop[d]. Node populations encode city sizes; large-to-large pairs
// dominate, the classic WAN traffic shape.
func NewGravityMatrix(pop []float64) *Matrix {
	n := len(pop)
	if n < 2 {
		panic("workload: gravity matrix needs at least 2 nodes")
	}
	m := &Matrix{Weight: make([][]float64, n)}
	for i := range m.Weight {
		if pop[i] <= 0 || math.IsInf(pop[i], 0) || math.IsNaN(pop[i]) {
			panic("workload: populations must be positive and finite")
		}
		m.Weight[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Weight[i][j] = pop[i] * pop[j]
			}
		}
	}
	return m
}

// Nodes returns the matrix dimension.
func (m *Matrix) Nodes() int { return len(m.Weight) }

// sampler precomputes the cumulative distribution for endpoint draws.
type sampler struct {
	cum   []float64
	pairs [][2]int
}

func newSampler(m *Matrix) *sampler {
	s := &sampler{}
	total := 0.0
	for i := range m.Weight {
		for j := range m.Weight[i] {
			if i == j || m.Weight[i][j] <= 0 {
				continue
			}
			total += m.Weight[i][j]
			s.cum = append(s.cum, total)
			s.pairs = append(s.pairs, [2]int{i, j})
		}
	}
	if len(s.pairs) == 0 {
		panic("workload: traffic matrix has no positive off-diagonal entries")
	}
	return s
}

func (s *sampler) draw(rng *rand.Rand) (int, int) {
	x := rng.Float64() * s.cum[len(s.cum)-1]
	lo, hi := 0, len(s.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s.pairs[lo][0], s.pairs[lo][1]
}

// HoldingDist selects the holding-time distribution.
type HoldingDist int

const (
	// HoldingExponential is the memoryless default (the §2 model).
	HoldingExponential HoldingDist = iota
	// HoldingDeterministic holds for exactly the mean.
	HoldingDeterministic
	// HoldingPareto is heavy-tailed (α = 2.5, scaled to the requested
	// mean) — a stress test for transient effects.
	HoldingPareto
)

// MatrixConfig parameterises MatrixPoisson: Poisson arrivals with endpoints
// drawn from a traffic matrix and a selectable holding-time distribution.
type MatrixConfig struct {
	Matrix      *Matrix
	ArrivalRate float64
	MeanHolding float64
	Count       int
	Seed        int64
	Holding     HoldingDist
}

// MatrixPoisson generates a request stream per the config.
func MatrixPoisson(c MatrixConfig) []Request {
	if c.Matrix == nil || c.Matrix.Nodes() < 2 {
		panic("workload: matrix required")
	}
	if c.ArrivalRate <= 0 || c.MeanHolding <= 0 || c.Count < 0 {
		panic("workload: invalid MatrixPoisson parameters")
	}
	rng := rand.New(rand.NewSource(c.Seed))
	smp := newSampler(c.Matrix)
	const paretoAlpha = 2.5
	paretoXm := c.MeanHolding * (paretoAlpha - 1) / paretoAlpha
	reqs := make([]Request, c.Count)
	t := 0.0
	for i := range reqs {
		t += rng.ExpFloat64() / c.ArrivalRate
		src, dst := smp.draw(rng)
		var hold float64
		switch c.Holding {
		case HoldingDeterministic:
			hold = c.MeanHolding
		case HoldingPareto:
			hold = paretoXm / math.Pow(rng.Float64(), 1/paretoAlpha)
		default:
			hold = rng.ExpFloat64() * c.MeanHolding
		}
		reqs[i] = Request{ID: i, Src: src, Dst: dst, Arrival: t, Holding: hold}
	}
	return reqs
}
