// Package rules holds the domain analyzers wdmlint ships: machine checks for
// the conventions the routing engine's correctness rests on. Each analyzer
// documents the invariant it guards; DESIGN.md §10 is the narrative version.
package rules

import (
	"go/ast"

	"repro/internal/lint"
)

// All is the full rule set, in the order the driver runs them.
var All = []*lint.Analyzer{
	VersionBump,
	FreshRouter,
	NoCopy,
	MapDet,
	ErrCheckLite,
	HotAlloc,
	SnapMut,
	AtomicField,
}

// funcScopes returns every function body of f — declarations and literals —
// innermost bodies excluded from their enclosing scope, so per-function
// checks (like the errcheck write-path heuristic) see exactly one frame.
func funcScopes(f *ast.File) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, fn.Body)
			}
		case *ast.FuncLit:
			out = append(out, fn.Body)
		}
		return true
	})
	return out
}

// walkShallow walks body without descending into nested function literals.
func walkShallow(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		return fn(n)
	})
}

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
