package workload

import (
	"math"
	"math/rand"
)

// DiurnalConfig parameterises DiurnalPoisson: a non-homogeneous Poisson
// process whose arrival rate swings sinusoidally around MatrixConfig's
// ArrivalRate,
//
//	λ(t) = ArrivalRate · (1 + Amp·sin(2πt/Period)),
//
// modelling the day/night cycle of WAN traffic. Endpoints and holding times
// are drawn exactly as in MatrixPoisson.
type DiurnalConfig struct {
	MatrixConfig
	// Period is the cycle length in sim-time units (must be positive).
	Period float64
	// Amp is the relative swing in [0, 1): 0 degenerates to a homogeneous
	// process, 0.8 swings between 0.2× and 1.8× the base rate.
	Amp float64
}

// DiurnalPoisson generates a seeded request stream with a sinusoidal arrival
// rate via Lewis-Shedler thinning: candidate arrivals are drawn at the peak
// rate λmax = Base·(1+Amp) and each is kept with probability λ(t)/λmax, which
// yields exactly the target non-homogeneous process.
func DiurnalPoisson(c DiurnalConfig) []Request {
	if c.Matrix == nil || c.Matrix.Nodes() < 2 {
		panic("workload: matrix required")
	}
	if c.ArrivalRate <= 0 || c.MeanHolding <= 0 || c.Count < 0 {
		panic("workload: invalid DiurnalPoisson parameters")
	}
	if c.Period <= 0 || c.Amp < 0 || c.Amp >= 1 {
		panic("workload: diurnal needs Period > 0 and Amp in [0,1)")
	}
	rng := rand.New(rand.NewSource(c.Seed))
	smp := newSampler(c.Matrix)
	const paretoAlpha = 2.5
	paretoXm := c.MeanHolding * (paretoAlpha - 1) / paretoAlpha
	lambdaMax := c.ArrivalRate * (1 + c.Amp)
	reqs := make([]Request, 0, c.Count)
	t := 0.0
	for len(reqs) < c.Count {
		t += rng.ExpFloat64() / lambdaMax
		lambda := c.ArrivalRate * (1 + c.Amp*math.Sin(2*math.Pi*t/c.Period))
		if rng.Float64()*lambdaMax > lambda {
			continue // thinned: candidate falls in a low-rate phase
		}
		src, dst := smp.draw(rng)
		var hold float64
		switch c.Holding {
		case HoldingDeterministic:
			hold = c.MeanHolding
		case HoldingPareto:
			hold = paretoXm / math.Pow(rng.Float64(), 1/paretoAlpha)
		default:
			hold = rng.ExpFloat64() * c.MeanHolding
		}
		reqs = append(reqs, Request{ID: len(reqs), Src: src, Dst: dst, Arrival: t, Holding: hold})
	}
	return reqs
}
