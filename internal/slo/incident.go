package slo

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/timeseries"
)

// CaptureConfig parameterises an incident Capturer.
type CaptureConfig struct {
	// Dir is the directory incident bundles land in (created on demand).
	Dir string
	// MinInterval rate-limits captures: breaches inside the window after a
	// capture are counted but not captured (default 60s). A burning SLO
	// breaches once per transition, but several objectives can breach
	// together and a flapping one repeatedly — the daemon must not profile
	// itself in a loop.
	MinInterval time.Duration
	// CPUProfile is how long the bundle's CPU profile samples (default
	// 250ms — long enough to see where time goes, short enough that the
	// bundle lands while the incident is still happening).
	CPUProfile time.Duration
	// Windows is how many trailing sealed telemetry windows the bundle
	// retains (default 64, 0 < Windows ≤ collector retention).
	Windows int

	// Data sources; any may be nil, its file is then omitted.
	Flight *obs.FlightRecorder
	Series *timeseries.Collector
	// Status returns the /status payload to freeze into the bundle.
	Status func() any
}

func (c *CaptureConfig) minInterval() time.Duration {
	if c.MinInterval > 0 {
		return c.MinInterval
	}
	return time.Minute
}

func (c *CaptureConfig) cpuProfile() time.Duration {
	if c.CPUProfile > 0 {
		return c.CPUProfile
	}
	return 250 * time.Millisecond
}

func (c *CaptureConfig) windows() int {
	if c.Windows > 0 {
		return c.Windows
	}
	return 64
}

// BundleInfo is one captured bundle's row in /debug/incidents.
type BundleInfo struct {
	Name      string    `json:"name"`
	Objective string    `json:"objective"`
	At        float64   `json:"at"`   // collector clock of the breach
	Wall      time.Time `json:"wall"` // wall clock of the capture
	Files     []string  `json:"files"`
	// CPUProfileErr records a failed CPU profile (e.g. another profile was
	// already running); the bundle is still captured without cpu.pprof.
	CPUProfileErr string `json:"cpu_profile_err,omitempty"`
}

// CaptureStatus is the /debug/incidents payload.
type CaptureStatus struct {
	Dir       string       `json:"dir"`
	Capturing bool         `json:"capturing"`
	Skipped   int64        `json:"skipped"` // breaches dropped by the rate limit
	LastError string       `json:"last_error,omitempty"`
	Bundles   []BundleInfo `json:"bundles"`
}

// Capturer writes timestamped incident bundles on SLO breaches. A bundle is
// a directory under Dir containing:
//
//	manifest.json    breach details + file inventory (written last)
//	cpu.pprof        CPU profile sampled during the incident
//	heap.pprof       heap profile
//	flight.jsonl     flight-recorder dump (last N request traces)
//	timeseries.json  last N sealed telemetry windows
//	status.json      daemon /status snapshot
//	runtime.json     Go runtime health (goroutines, heap, GC)
//
// The bundle directory is written under a ".tmp" name and atomically renamed
// into place, so a reader listing Dir never sees a half-written bundle.
// Captures run on their own goroutine (a breach fires on the telemetry
// sealing path, which must not stall for a 250ms CPU profile) and are
// rate-limited by MinInterval.
type Capturer struct {
	cfg CaptureConfig

	// now and sleep are injectable for deterministic rate-limit tests.
	now   func() time.Time
	sleep func(time.Duration)

	mu      sync.Mutex
	busy    bool
	seq     int
	last    time.Time
	skipped int64
	lastErr error
	bundles []BundleInfo
	wg      sync.WaitGroup
}

// NewCapturer builds a capturer; Dir must be non-empty.
func NewCapturer(cfg CaptureConfig) (*Capturer, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("slo: capture dir required")
	}
	return &Capturer{cfg: cfg, now: time.Now, sleep: time.Sleep}, nil
}

// HandleBreach is the Watchdog.OnBreach hook: it rate-limits, then captures
// a bundle asynchronously. Nil-safe, so wiring is unconditional.
func (c *Capturer) HandleBreach(b Breach) {
	if c == nil {
		return
	}
	c.mu.Lock()
	now := c.now()
	if c.busy || (!c.last.IsZero() && now.Sub(c.last) < c.cfg.minInterval()) {
		c.skipped++
		c.mu.Unlock()
		return
	}
	c.busy = true
	c.seq++
	seq := c.seq
	c.last = now
	c.wg.Add(1)
	c.mu.Unlock()

	go func() {
		defer c.wg.Done()
		info, err := c.capture(seq, b, now)
		c.mu.Lock()
		c.busy = false
		if err != nil {
			c.lastErr = err
		} else {
			c.bundles = append(c.bundles, info)
		}
		c.mu.Unlock()
	}()
}

// Wait blocks until any in-flight capture has landed — for tests and
// orderly shutdown.
func (c *Capturer) Wait() {
	if c == nil {
		return
	}
	c.wg.Wait()
}

// Status reports the capturer's state for /debug/incidents.
func (c *Capturer) Status() CaptureStatus {
	if c == nil {
		return CaptureStatus{Bundles: []BundleInfo{}}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CaptureStatus{
		Dir:       c.cfg.Dir,
		Capturing: c.busy,
		Skipped:   c.skipped,
		Bundles:   append([]BundleInfo(nil), c.bundles...),
	}
	if st.Bundles == nil {
		st.Bundles = []BundleInfo{}
	}
	if c.lastErr != nil {
		st.LastError = c.lastErr.Error()
	}
	return st
}

// capture writes one bundle. It runs off the sealing path; any error aborts
// the bundle and removes the temp directory.
func (c *Capturer) capture(seq int, b Breach, wall time.Time) (BundleInfo, error) {
	name := fmt.Sprintf("incident-%03d-%s", seq, sanitizeMetric(b.Objective))
	tmp := filepath.Join(c.cfg.Dir, name+".tmp")
	final := filepath.Join(c.cfg.Dir, name)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		return BundleInfo{}, fmt.Errorf("slo: capture: %w", err)
	}
	info := BundleInfo{Name: name, Objective: b.Objective, At: b.At, Wall: wall}
	fail := func(err error) (BundleInfo, error) {
		_ = os.RemoveAll(tmp)
		return BundleInfo{}, fmt.Errorf("slo: capture %s: %w", name, err)
	}

	// CPU profile first: it samples while the incident is still in progress.
	// A failure to start (another profile already running, e.g. a concurrent
	// /debug/pprof/profile scrape) is recorded, not fatal — the rest of the
	// bundle is still worth having.
	if err := c.writeCPUProfile(filepath.Join(tmp, "cpu.pprof")); err != nil {
		info.CPUProfileErr = err.Error()
	} else {
		info.Files = append(info.Files, "cpu.pprof")
	}

	if err := writeTo(filepath.Join(tmp, "heap.pprof"), func(w io.Writer) error {
		return pprof.Lookup("heap").WriteTo(w, 0)
	}); err != nil {
		return fail(err)
	}
	info.Files = append(info.Files, "heap.pprof")

	if c.cfg.Flight != nil {
		if err := writeTo(filepath.Join(tmp, "flight.jsonl"), c.cfg.Flight.Dump); err != nil {
			return fail(err)
		}
		info.Files = append(info.Files, "flight.jsonl")
	}
	if c.cfg.Series != nil {
		if err := writeJSONFile(filepath.Join(tmp, "timeseries.json"), c.cfg.Series.Snapshots(c.cfg.windows())); err != nil {
			return fail(err)
		}
		info.Files = append(info.Files, "timeseries.json")
	}
	if c.cfg.Status != nil {
		if err := writeJSONFile(filepath.Join(tmp, "status.json"), c.cfg.Status()); err != nil {
			return fail(err)
		}
		info.Files = append(info.Files, "status.json")
	}
	if err := writeJSONFile(filepath.Join(tmp, "runtime.json"), runtimeHealth()); err != nil {
		return fail(err)
	}
	info.Files = append(info.Files, "runtime.json")

	// Manifest last: its file inventory covers everything that landed.
	manifest := struct {
		BundleInfo
		Breach Breach `json:"breach"`
	}{info, b}
	if err := writeJSONFile(filepath.Join(tmp, "manifest.json"), manifest); err != nil {
		return fail(err)
	}
	info.Files = append(info.Files, "manifest.json")

	if err := os.Rename(tmp, final); err != nil {
		return fail(err)
	}
	return info, nil
}

// writeCPUProfile samples a CPU profile into path for cfg.CPUProfile.
func (c *Capturer) writeCPUProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close()
		_ = os.Remove(path)
		return err
	}
	c.sleep(c.cfg.cpuProfile())
	pprof.StopCPUProfile()
	return f.Close()
}

// writeTo streams fn into a freshly created file; the Close error is
// reported (a short write on a full disk surfaces there).
func writeTo(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = fn(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeJSONFile marshals v into path, indented for human triage.
func writeJSONFile(path string, v any) error {
	return writeTo(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	})
}

// runtimeHealth is the runtime.json payload: the Go runtime vitals a triage
// starts from.
func runtimeHealth() map[string]any {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return map[string]any{
		"goroutines":        runtime.NumGoroutine(),
		"gomaxprocs":        runtime.GOMAXPROCS(0),
		"num_cpu":           runtime.NumCPU(),
		"go_version":        runtime.Version(),
		"heap_alloc_bytes":  ms.HeapAlloc,
		"heap_sys_bytes":    ms.HeapSys,
		"heap_objects":      ms.HeapObjects,
		"total_alloc_bytes": ms.TotalAlloc,
		"num_gc":            ms.NumGC,
		"gc_pause_total_s":  float64(ms.PauseTotalNs) / 1e9,
		"gc_cpu_fraction":   ms.GCCPUFraction,
		"next_gc_bytes":     ms.NextGC,
	}
}
