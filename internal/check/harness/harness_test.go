package harness

import (
	"bytes"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
)

// TestSoakClean is the in-tree version of `wdmcheck -n 60 -exact`: sixty
// random instances through both router arms with every invariant and the
// exact comparison on, expecting zero violations and a Theorem-2-respecting
// ratio.
func TestSoakClean(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 15
	}
	rep := Run(Config{N: n, Seed: 1, Exact: true})
	if !rep.OK() {
		var buf bytes.Buffer
		_ = rep.Failures[0].Encode(&buf)
		t.Fatalf("soak found violations: %s\nfirst artifact:\n%s", rep.Summary(), buf.String())
	}
	if rep.Routed == 0 {
		t.Fatal("soak routed nothing; generator or driver is broken")
	}
	if rep.ExactCompared == 0 {
		t.Fatal("no exact comparisons ran; eligibility gating is broken")
	}
	if rep.MaxRatio > 2+1e-9 {
		t.Fatalf("max approx/exact ratio %.4f exceeds the Theorem 2 bound", rep.MaxRatio)
	}
}

// TestCandidateArmSoak turns on the candidate fast-tier arm: every request
// re-routed through a candidate-mode router on the same residual state, with
// feasibility equality, the full invariant set, and the accuracy gate
// asserted per min-cost request.
func TestCandidateArmSoak(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 15
	}
	rep := Run(Config{N: n, Seed: 1, Candidates: 4})
	if !rep.OK() {
		var buf bytes.Buffer
		_ = rep.Failures[0].Encode(&buf)
		t.Fatalf("candidate soak found violations: %s\nfirst artifact:\n%s", rep.Summary(), buf.String())
	}
	if rep.CandidateCompared == 0 {
		t.Fatal("candidate arm never compared a min-cost request; wiring is broken")
	}
	if rep.MaxCandidateRatio > 2+1e-9 {
		t.Fatalf("candidate/exact cost ratio %.4f exceeds the accuracy gate", rep.MaxCandidateRatio)
	}
}

// TestHarnessCatchesInjectedCostBug is the mutation check: corrupt every
// routing result's reported cost and require the harness to notice, then
// shrink the reproduction to a tiny instance. This is what certifies the
// oracle actually constrains the engine rather than rubber-stamping it.
func TestHarnessCatchesInjectedCostBug(t *testing.T) {
	cfg := Config{
		N:    40,
		Seed: 7,
		Mutate: func(r *core.Result) {
			r.Cost += 0.7
		},
	}
	rep := Run(cfg)
	if rep.OK() {
		t.Fatal("harness did not catch an injected cost-accounting bug")
	}
	art := rep.Failures[0]
	if art.Shrunk == nil {
		t.Fatal("failure was not shrunk")
	}
	if err := art.Shrunk.Validate(); err != nil {
		t.Fatalf("shrunk instance invalid: %v", err)
	}
	if RunInstance(art.Shrunk, cfg, nil) == nil {
		t.Fatal("shrunk instance does not reproduce the failure")
	}
	if art.Shrunk.Nodes > 6 {
		t.Errorf("shrunk reproduction has %d nodes, want ≤ 6", art.Shrunk.Nodes)
	}
}

// TestHarnessCatchesDroppedBackup injects a subtler bug — the backup
// silently reuses the primary — and expects the edge-disjointness oracle to
// flag it.
func TestHarnessCatchesDroppedBackup(t *testing.T) {
	rep := Run(Config{
		N:    40,
		Seed: 3,
		Mutate: func(r *core.Result) {
			r.Backup = r.Primary
		},
	})
	if rep.OK() {
		t.Fatal("harness did not catch a backup aliased to the primary")
	}
}

// TestHarnessCatchesLoadBug corrupts the PathLoad bookkeeping.
func TestHarnessCatchesLoadBug(t *testing.T) {
	rep := Run(Config{
		N:    40,
		Seed: 11,
		Mutate: func(r *core.Result) {
			r.PathLoad /= 2
		},
	})
	if rep.OK() {
		t.Fatal("harness did not catch corrupted path-load bookkeeping")
	}
}

// TestRunInstanceReplaysArtifacts ensures an instance that ran clean once
// stays clean when replayed from its JSON form (the wdmcheck -replay path).
func TestRunInstanceReplaysArtifacts(t *testing.T) {
	in := check.GenerateSeeded(21, 6)
	cfg := Config{Exact: true}
	if err := RunInstance(in, cfg, nil); err != nil {
		t.Fatalf("instance failed: %v", err)
	}
	art := check.Artifact{Err: "none", Instance: in}
	var buf bytes.Buffer
	if err := art.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := check.DecodeArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunInstance(back.Instance, cfg, nil); err != nil {
		t.Fatalf("replayed instance failed: %v", err)
	}
}
