package main

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"

	"repro/internal/cli"
	"repro/internal/lint"
)

// SARIF 2.1.0 output, the format GitHub code scanning ingests. Only the
// subset of the schema the upload API requires is modeled.

type sarifLog struct {
	Version string     `json:"version"`
	Schema  string     `json:"$schema"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name    string      `json:"name"`
	Version string      `json:"version,omitempty"`
	Rules   []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID        string       `json:"id"`
	ShortDesc sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// writeSARIF renders diags as one SARIF run. File paths are emitted relative
// to the working directory (the repo root in CI), which is what uriBaseId
// %SRCROOT% means to the code-scanning upload.
func writeSARIF(w io.Writer, analyzers []*lint.Analyzer, diags []lint.Diagnostic) error {
	driver := sarifDriver{Name: "wdmlint", Version: cli.Version()}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:        a.Name,
			ShortDesc: sarifMessage{Text: a.Doc},
		})
	}
	results := []sarifResult{}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		uri := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, uri); err == nil {
				uri = rel
			}
		}
		results = append(results, sarifResult{
			RuleID:  d.Rule,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       filepath.ToSlash(uri),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}
	log := sarifLog{
		Version: "2.1.0",
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
