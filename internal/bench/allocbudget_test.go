//go:build !race

// Allocation-budget regression gate, excluded from -race runs (the
// detector's instrumentation inflates allocation counts).
package bench

import (
	"encoding/json"
	"os"
	"testing"
)

// allocSlack is the tolerated regression over the checked-in budget: a run
// may exceed its budget by at most 20% before the gate fails. Improvements
// should be banked by lowering testdata/alloc_budget.json.
const allocSlack = 1.2

// TestSimAllocBudget runs the dynamic-simulation benchmarks briefly and
// fails when allocs/op regress ≥20% over testdata/alloc_budget.json — the
// CI tripwire for the arena/pooling work: a leaked per-arrival allocation
// costs ≥200 allocs/run here, far beyond the slack.
func TestSimAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	data, err := os.ReadFile("testdata/alloc_budget.json")
	if err != nil {
		t.Fatalf("read budget file: %v", err)
	}
	var budgets map[string]int64
	if err := json.Unmarshal(data, &budgets); err != nil {
		t.Fatalf("parse budget file: %v", err)
	}
	arms := map[string]func(*testing.B){
		"sim_nsfnet_dynamic":       BenchmarkSimNSFNETDynamic,
		"sim_nsfnet_dynamic_exact": BenchmarkSimNSFNETDynamicExact,
	}
	for name, fn := range arms {
		budget, ok := budgets[name]
		if !ok {
			t.Errorf("%s: no entry in alloc_budget.json", name)
			continue
		}
		res := testing.Benchmark(fn)
		got := res.AllocsPerOp()
		limit := int64(float64(budget) * allocSlack)
		t.Logf("%s: %d allocs/op (budget %d, limit %d)", name, got, budget, limit)
		if got > limit {
			t.Errorf("%s: %d allocs/op exceeds budget %d by more than %.0f%%",
				name, got, budget, (allocSlack-1)*100)
		}
	}
}
