package graph

// Bridges returns the edge IDs of bridge spans. A span is the set of all
// enabled edges between one unordered endpoint pair — in a WDM network, all
// fibers in one conduit, both directions and parallels included. A span is
// a bridge when cutting the whole conduit disconnects the underlying
// undirected graph; every edge ID of each bridge span is returned. Robust
// routing cannot protect traffic across a bridge span (no edge-disjoint
// alternative exists at conduit granularity), so the topology tools use
// this as a survivability precheck.
func (g *Graph) Bridges() []int {
	// Collapse the directed multigraph into undirected spans.
	type span struct{ a, b int }
	spanEdges := map[span][]int{}
	for id := 0; id < g.M(); id++ {
		if g.Disabled(id) {
			continue
		}
		e := g.Edge(id)
		a, b := e.From, e.To
		if a == b {
			continue // self-loops are never bridges
		}
		if a > b {
			a, b = b, a
		}
		spanEdges[span{a, b}] = append(spanEdges[span{a, b}], id)
	}
	// Undirected adjacency at span granularity.
	type arc struct {
		to int
		sp span
	}
	adj := make([][]arc, g.n)
	for sp := range spanEdges {
		adj[sp.a] = append(adj[sp.a], arc{to: sp.b, sp: sp})
		adj[sp.b] = append(adj[sp.b], arc{to: sp.a, sp: sp})
	}

	// Iterative Tarjan bridge finding (low-link over DFS tree), tracking
	// the span used to enter each vertex so parallel spans between the same
	// endpoints are handled (a second span to the parent is a back edge).
	disc := make([]int, g.n)
	low := make([]int, g.n)
	for i := range disc {
		disc[i] = -1
	}
	timer := 0
	var bridges []int

	type frame struct {
		v      int
		parent span
		ai     int // next adjacency index to visit
	}
	for root := 0; root < g.n; root++ {
		if disc[root] != -1 {
			continue
		}
		disc[root] = timer
		low[root] = timer
		timer++
		stack := []frame{{v: root, parent: span{-1, -1}}}
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.ai < len(adj[f.v]) {
				a := adj[f.v][f.ai]
				f.ai++
				if a.sp == f.parent {
					continue // the tree edge itself (same span), not a back edge
				}
				if disc[a.to] == -1 {
					disc[a.to] = timer
					low[a.to] = timer
					timer++
					stack = append(stack, frame{v: a.to, parent: a.sp})
				} else if disc[a.to] < low[f.v] {
					low[f.v] = disc[a.to]
				}
				continue
			}
			// Post-order: propagate low-link to the parent and test the
			// entering span.
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				continue
			}
			p := &stack[len(stack)-1]
			if low[f.v] < low[p.v] {
				low[p.v] = low[f.v]
			}
			if low[f.v] > disc[p.v] {
				bridges = append(bridges, spanEdges[f.parent]...)
			}
		}
	}
	return bridges
}

// TwoEdgeConnected reports whether the underlying undirected graph (over
// enabled edges) is connected and has no bridge spans — the survivability
// property robust routing needs between every node pair at conduit
// granularity.
func (g *Graph) TwoEdgeConnected() bool {
	if g.n == 0 {
		return true
	}
	// Connectivity (undirected).
	seen := make([]bool, g.n)
	stack := []int{0}
	seen[0] = true
	visited := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range g.out[v] {
			if g.disabled[id] {
				continue
			}
			if u := g.edges[id].To; !seen[u] {
				seen[u] = true
				visited++
				stack = append(stack, u)
			}
		}
		for _, id := range g.in[v] {
			if g.disabled[id] {
				continue
			}
			if u := g.edges[id].From; !seen[u] {
				seen[u] = true
				visited++
				stack = append(stack, u)
			}
		}
	}
	if visited != g.n {
		return false
	}
	return len(g.Bridges()) == 0
}
