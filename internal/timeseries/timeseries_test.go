package timeseries

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/stats"
)

// sim returns a collector on a fresh SimClock, advancing both together.
type simCol struct {
	*Collector
	clock *SimClock
}

func newSimCol(window float64, retention int) simCol {
	clock := NewSimClock()
	return simCol{
		Collector: New(Config{Window: window, Retention: retention, Clock: clock}),
		clock:     clock,
	}
}

func (s simCol) advance(t float64) {
	s.clock.Advance(t)
	s.Collector.Advance(t)
}

func TestWindowSealingAndGaps(t *testing.T) {
	c := newSimCol(1.0, 0)
	h := c.Histogram("lat", nil)
	r := c.Rate("events")
	ratio := c.Ratio("blocking")
	g := c.Gauge("load")

	h.Observe(0.5)
	h.Observe(0.25)
	r.Inc()
	r.Add(2)
	ratio.Observe(true)
	ratio.Observe(false)
	g.Set(0.3)
	g.Set(0.7)

	if c.Len() != 0 {
		t.Fatalf("Len before any seal = %d", c.Len())
	}
	// Advancing within the open window seals nothing.
	c.advance(0.99)
	if c.Len() != 0 {
		t.Fatalf("Len after intra-window advance = %d", c.Len())
	}
	// Jumping over three window boundaries seals three windows: the active
	// one plus two empty gap windows, keeping the curve continuous.
	c.advance(3.5)
	if c.Len() != 3 || c.TotalSealed() != 3 {
		t.Fatalf("Len=%d TotalSealed=%d, want 3, 3", c.Len(), c.TotalSealed())
	}
	snaps := c.Snapshots(0)
	if snaps[0].Window != 0 || snaps[0].Start != 0 || snaps[0].End != 1 {
		t.Fatalf("first window = %+v", snaps[0])
	}

	hv, ok := snaps[0].Hist("lat")
	if !ok || hv.Count != 2 || hv.Min != 0.25 || hv.Max != 0.5 || hv.Sum != 0.75 {
		t.Fatalf("hist window 0 = %+v", hv)
	}
	rv, _ := snaps[0].RateOf("events")
	if rv.Count != 3 || rv.Rate != 3 {
		t.Fatalf("rate window 0 = %+v", rv)
	}
	bv, _ := snaps[0].RatioOf("blocking")
	if bv.Num != 1 || bv.Den != 2 || bv.Value != 0.5 {
		t.Fatalf("ratio window 0 = %+v", bv)
	}
	gv, _ := snaps[0].GaugeOf("load")
	if gv.Last != 0.7 || gv.Min != 0.3 || gv.Max != 0.7 || gv.Mean != 0.5 || gv.Samples != 2 {
		t.Fatalf("gauge window 0 = %+v", gv)
	}

	// Gap windows carry every registered series, all zero — an empty ratio
	// window must report 0, not NaN.
	for _, s := range snaps[1:] {
		hv, ok := s.Hist("lat")
		if !ok || hv.Count != 0 || hv.P99 != 0 {
			t.Fatalf("gap hist = %+v", hv)
		}
		bv, ok := s.RatioOf("blocking")
		if !ok || bv.Den != 0 || bv.Value != 0 {
			t.Fatalf("gap ratio = %+v, want zeros", bv)
		}
		rv, _ := s.RateOf("events")
		if rv.Count != 0 || rv.Rate != 0 {
			t.Fatalf("gap rate = %+v", rv)
		}
	}

	if lat := c.Latest(); lat == nil || lat.Window != 2 {
		t.Fatalf("Latest = %+v", lat)
	}
}

func TestSealFlushesPartialWindow(t *testing.T) {
	c := newSimCol(10, 0)
	r := c.Rate("n")
	r.Inc()
	c.advance(4)
	if c.Len() != 0 {
		t.Fatal("window sealed early")
	}
	c.Seal()
	if c.Len() != 1 {
		t.Fatal("Seal did not flush the partial window")
	}
	rv, _ := c.Latest().RateOf("n")
	if rv.Count != 1 {
		t.Fatalf("partial window lost samples: %+v", rv)
	}
}

func TestRingEviction(t *testing.T) {
	const retention = 4
	c := newSimCol(1, retention)
	r := c.Rate("w")
	for i := 0; i < 9; i++ {
		r.Add(int64(i)) // window i carries count i
		c.advance(float64(i + 1))
	}
	if c.Len() != retention {
		t.Fatalf("Len = %d, want %d", c.Len(), retention)
	}
	if c.TotalSealed() != 9 || c.Evicted() != 5 {
		t.Fatalf("TotalSealed=%d Evicted=%d, want 9, 5", c.TotalSealed(), c.Evicted())
	}
	snaps := c.Snapshots(0)
	for i, s := range snaps {
		wantWin := uint64(5 + i)
		rv, _ := s.RateOf("w")
		if s.Window != wantWin || rv.Count != int64(wantWin) {
			t.Fatalf("retained[%d] = window %d count %d, want window %d", i, s.Window, rv.Count, wantWin)
		}
	}
	// last=N truncates from the oldest side.
	last2 := c.Snapshots(2)
	if len(last2) != 2 || last2[0].Window != 7 || last2[1].Window != 8 {
		t.Fatalf("Snapshots(2) = %v", last2)
	}
}

// TestQuantileAccuracy checks the windowed bucketed quantiles against the
// exact quantiles from package stats on seeded streams: the estimate never
// falls below the exact value and overshoots by at most the bucket ratio
// (10^(1/9) ≈ 1.29 for the default latency buckets).
func TestQuantileAccuracy(t *testing.T) {
	const ratio = 1.2916 // 10^(1/9), rounded up
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		c := newSimCol(1, 0)
		h := c.Histogram("lat", nil)
		xs := make([]float64, 0, 5000)
		for i := 0; i < 5000; i++ {
			// Latency-shaped: log-uniform over 2µs..200ms.
			v := 2e-6 * math.Pow(1e5, rng.Float64())
			xs = append(xs, v)
			h.Observe(v)
		}
		c.advance(1)
		hv, _ := c.Latest().Hist("lat")
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, q := range []struct {
			q   float64
			est float64
		}{{0.50, hv.P50}, {0.95, hv.P95}, {0.99, hv.P99}} {
			// The bucketed estimate covers the ⌈q·n⌉-th order statistic from
			// above, and overshoots the interpolated exact quantile by at
			// most one bucket ratio (plus slack for the interpolation gap).
			rank := int(math.Ceil(q.q * float64(len(sorted))))
			if lo := sorted[rank-1]; q.est < lo*0.9999 {
				t.Fatalf("trial %d p%g: estimate %g below order statistic %g", trial, 100*q.q, q.est, lo)
			}
			exact := stats.Quantile(xs, q.q)
			if q.est > exact*ratio*1.01 {
				t.Fatalf("trial %d p%g: estimate %g exceeds exact %g × bucket ratio", trial, 100*q.q, q.est, exact)
			}
		}
		// Quantiles clamp to the observed max, so they stay finite even when
		// the rank lands in the overflow bucket.
		if hv.P99 > hv.Max {
			t.Fatalf("p99 %g exceeds max %g", hv.P99, hv.Max)
		}
	}
}

func TestSeriesDedupeByName(t *testing.T) {
	c := newSimCol(1, 0)
	a := c.Rate("same")
	b := c.Rate("same")
	a.Inc()
	b.Inc()
	c.advance(1)
	rv, _ := c.Latest().RateOf("same")
	if rv.Count != 2 {
		t.Fatalf("duplicate registration split the series: %+v", rv)
	}
	if len(c.Latest().Rates) != 1 {
		t.Fatalf("series duplicated: %v", c.Latest().Rates)
	}
}

func TestSnapshotSeriesSorted(t *testing.T) {
	c := newSimCol(1, 0)
	c.Rate("zeta")
	c.Rate("alpha")
	c.Gauge("mid")
	c.Gauge("aaa")
	c.advance(1)
	s := c.Latest()
	if s.Rates[0].Name != "alpha" || s.Rates[1].Name != "zeta" {
		t.Fatalf("rates not sorted: %v", s.Rates)
	}
	if s.Gauges[0].Name != "aaa" || s.Gauges[1].Name != "mid" {
		t.Fatalf("gauges not sorted: %v", s.Gauges)
	}
}

type failingSink struct{ calls int }

func (f *failingSink) WriteSnapshot(*Snapshot) error {
	f.calls++
	return errors.New("disk full")
}

func TestSinkErrorLatches(t *testing.T) {
	c := newSimCol(1, 0)
	sink := &failingSink{}
	c.SetSink(sink)
	c.advance(5)
	if c.SinkErr() == nil {
		t.Fatal("sink error not surfaced")
	}
	if sink.calls != 1 {
		t.Fatalf("failed sink called %d times, want 1 (first error latches)", sink.calls)
	}
	// The ring still fills even though the sink is dead.
	if c.Len() != 5 {
		t.Fatalf("Len = %d after sink failure", c.Len())
	}
}

type countingSink struct{ snaps []Snapshot }

func (c *countingSink) WriteSnapshot(s *Snapshot) error {
	c.snaps = append(c.snaps, *s)
	return nil
}

func TestSinkSeesEvictedWindows(t *testing.T) {
	c := newSimCol(1, 2)
	sink := &countingSink{}
	c.SetSink(sink)
	r := c.Rate("n")
	for i := 0; i < 7; i++ {
		r.Inc()
		c.advance(float64(i + 1))
	}
	if c.Len() != 2 {
		t.Fatalf("ring Len = %d", c.Len())
	}
	// Every sealed window reached the sink before eviction, so the full
	// curve survives a bounded ring.
	if len(sink.snaps) != 7 {
		t.Fatalf("sink saw %d windows, want 7", len(sink.snaps))
	}
	for i, s := range sink.snaps {
		if s.Window != uint64(i) {
			t.Fatalf("sink window %d out of order: %d", i, s.Window)
		}
	}
}

func TestOnSealProbeLandsInClosingWindow(t *testing.T) {
	c := newSimCol(1, 0)
	g := c.Gauge("probe")
	var ends []float64
	c.OnSeal(func(end float64) {
		ends = append(ends, end)
		g.Set(end) // public API from inside a probe must not deadlock
	})
	c.advance(3)
	if len(ends) != 3 || ends[0] != 1 || ends[2] != 3 {
		t.Fatalf("probe end times = %v", ends)
	}
	for i, s := range c.Snapshots(0) {
		gv, _ := s.GaugeOf("probe")
		if gv.Samples != 1 || gv.Last != float64(i+1) {
			t.Fatalf("window %d probe value = %+v", i, gv)
		}
	}
}

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	h := c.Histogram("x", nil)
	r := c.Rate("x")
	ratio := c.Ratio("x")
	g := c.Gauge("x")
	h.Observe(1)
	r.Inc()
	r.Add(5)
	ratio.Observe(true)
	g.Set(1)
	c.OnSeal(func(float64) { t.Fatal("probe on nil collector") })
	c.SetSink(&countingSink{})
	c.Advance(100)
	c.Tick()
	c.Seal()
	if c.Len() != 0 || c.TotalSealed() != 0 || c.Evicted() != 0 || c.Window() != 0 {
		t.Fatal("nil collector reported state")
	}
	if c.Snapshots(10) != nil || c.Latest() != nil || c.SinkErr() != nil {
		t.Fatal("nil collector returned data")
	}
}

func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero window": {Window: 0, Clock: NewSimClock()},
		"neg window":  {Window: -1, Clock: NewSimClock()},
		"nil clock":   {Window: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: New did not panic", name)
				}
			}()
			New(cfg)
		}()
	}
}

func TestLogBuckets(t *testing.T) {
	b := LogBuckets(1e-6, 10, 9)
	if b[0] != 1e-6 {
		t.Fatalf("first bound %g", b[0])
	}
	if b[len(b)-1] < 10 {
		t.Fatalf("last bound %g < hi", b[len(b)-1])
	}
	for i := 1; i < len(b); i++ {
		r := b[i] / b[i-1]
		if r < 1.29 || r > 1.30 {
			t.Fatalf("bucket ratio %g at %d", r, i)
		}
	}
	if got := DefaultLatencyBuckets(); len(got) != len(b) {
		t.Fatal("DefaultLatencyBuckets mismatch")
	}
}
