package check

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Artifact is the JSON failure dump the harness and wdmcheck emit: the
// violation, the instance that produced it, and (when shrinking ran) the
// minimal shrunk reproduction.
type Artifact struct {
	Err      string
	Op       int
	Instance *Instance
	Shrunk   *Instance `json:",omitempty"`
}

// Encode writes the artifact as indented JSON.
func (a *Artifact) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// DecodeArtifact parses an artifact and validates the instances it carries.
func DecodeArtifact(r io.Reader) (*Artifact, error) {
	var a Artifact
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&a); err != nil {
		return nil, fmt.Errorf("check: decode artifact: %w", err)
	}
	if a.Instance == nil {
		return nil, fmt.Errorf("check: artifact has no instance")
	}
	if err := a.Instance.Validate(); err != nil {
		return nil, err
	}
	if a.Shrunk != nil {
		if err := a.Shrunk.Validate(); err != nil {
			return nil, fmt.Errorf("check: shrunk instance: %w", err)
		}
	}
	return &a, nil
}

// LoadArtifact reads an artifact from a file.
func LoadArtifact(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeArtifact(f)
}
