package disjoint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestKDisjointEqualsSuurballeAtK2(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(8)
		g := randGraph(rng, n, 2*n)
		s, d := 0, n-1
		kp, okK := KDisjoint(g, s, d, 2)
		ps, okS := Suurballe(g, s, d)
		if okK != okS {
			t.Fatalf("trial %d: k-disjoint ok=%v, suurballe ok=%v", trial, okK, okS)
		}
		if !okK {
			continue
		}
		if math.Abs(kp.Weight-ps.Weight) > 1e-9 {
			t.Fatalf("trial %d: k-disjoint %g, suurballe %g", trial, kp.Weight, ps.Weight)
		}
	}
}

func TestKDisjointK1IsShortestPath(t *testing.T) {
	g := trap()
	kp, ok := KDisjoint(g, 0, 5, 1)
	if !ok {
		t.Fatal("k=1 failed")
	}
	d := g.Dijkstra(0)
	if math.Abs(kp.Weight-d.Dist[5]) > 1e-9 {
		t.Fatalf("k=1 weight %g, shortest %g", kp.Weight, d.Dist[5])
	}
	if len(kp.Paths) != 1 {
		t.Fatalf("paths = %d", len(kp.Paths))
	}
}

func TestKDisjointThreePaths(t *testing.T) {
	// Three parallel corridors plus a shared trap chord.
	g := graph.New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 4, 1)
	g.AddEdge(0, 2, 2)
	g.AddEdge(2, 4, 2)
	g.AddEdge(0, 3, 3)
	g.AddEdge(3, 4, 3)
	kp, ok := KDisjoint(g, 0, 4, 3)
	if !ok {
		t.Fatal("3 disjoint paths exist")
	}
	if kp.Weight != 12 {
		t.Fatalf("weight = %g, want 12", kp.Weight)
	}
	if len(kp.Paths) != 3 {
		t.Fatalf("paths = %d", len(kp.Paths))
	}
	seen := map[int]bool{}
	for _, p := range kp.Paths {
		if err := g.ValidatePath(p, 0, 4); err != nil {
			t.Fatal(err)
		}
		for _, id := range p {
			if seen[id] {
				t.Fatalf("edge %d reused", id)
			}
			seen[id] = true
		}
	}
	// k=4 is impossible (out-degree of 0 is 3).
	if _, ok := KDisjoint(g, 0, 4, 4); ok {
		t.Fatal("4 disjoint paths cannot exist")
	}
}

func TestKDisjointInterlacing(t *testing.T) {
	// The k=3 optimum requires rerouting earlier paths (trap at higher k):
	// a graph where greedy shortest-path picks edges needed by the only
	// 3-path decomposition.
	g := graph.New(6)
	// Corridors: 0-1-5, 0-2-5, 0-3-5 with a tempting shortcut 1-2.
	g.AddEdge(0, 1, 1)  // 0
	g.AddEdge(1, 5, 10) // 1
	g.AddEdge(0, 2, 1)  // 2
	g.AddEdge(2, 5, 1)  // 3
	g.AddEdge(0, 3, 1)  // 4
	g.AddEdge(3, 5, 2)  // 5
	g.AddEdge(1, 2, 0)  // 6 shortcut: 0-1-2-5 = 2 < direct corridors
	kp, ok := KDisjoint(g, 0, 5, 3)
	if !ok {
		t.Fatal("3 disjoint paths exist")
	}
	// Optimal: 0-1-5? The only 3-path set must use all three out-edges of 0
	// and all three in-edges of 5: {0-1(1),1-5(10)}, {0-2,2-5}, {0-3,3-5}
	// or with the shortcut swap: 0-1-2-5 + 0-2?-- 0-2 used... enumerate:
	// out(0) = {0,2,4}, in(5) = {1,3,5}. Shortcut lets path A be 0-1-2-5
	// only if 0-2 path uses... 0-2 edge is separate from 1-2. So
	// {0-1-2-5 (1+0+1=2), 0-2-5 (1+1=2)?} — both need edge 2-5. Conflict.
	// Hence optimum = 1+10 + 1+1 + 1+2 = 16.
	if kp.Weight != 16 {
		t.Fatalf("weight = %g, want 16", kp.Weight)
	}
}

func TestKDisjointDegenerate(t *testing.T) {
	g := trap()
	if _, ok := KDisjoint(g, 0, 0, 2); ok {
		t.Fatal("s == t accepted")
	}
	if _, ok := KDisjoint(g, 0, 5, 0); ok {
		t.Fatal("k = 0 accepted")
	}
	if _, ok := KDisjoint(g, 0, 5, 3); ok {
		t.Fatal("trap has only 2 disjoint paths")
	}
}

func TestKDisjointRespectsDisabled(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	e := g.AddEdge(0, 1, 2)
	g.AddEdge(0, 1, 3)
	kp, ok := KDisjoint(g, 0, 1, 2)
	if !ok || kp.Weight != 3 {
		t.Fatalf("weight = %v ok=%v", kp, ok)
	}
	g.Disable(e)
	kp, ok = KDisjoint(g, 0, 1, 2)
	if !ok || kp.Weight != 4 {
		t.Fatalf("after disable: weight = %v ok=%v", kp, ok)
	}
}

// Property: total weight is monotone in k and each k-set is valid and
// edge-disjoint.
func TestQuickKDisjointMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(6)
		g := randGraph(rng, n, 3*n)
		s, d := 0, n-1
		prev := 0.0
		prevPer := 0.0
		for k := 1; k <= 4; k++ {
			kp, ok := KDisjoint(g, s, d, k)
			if !ok {
				break
			}
			if len(kp.Paths) != k {
				return false
			}
			seen := map[int]bool{}
			for _, p := range kp.Paths {
				if g.ValidatePath(p, s, d) != nil {
					return false
				}
				for _, id := range p {
					if seen[id] {
						return false
					}
					seen[id] = true
				}
			}
			if kp.Weight < prev-1e-9 {
				return false // adding a path cannot reduce total weight
			}
			// Average path weight is non-decreasing in k (convexity of
			// min-cost flow).
			per := kp.Weight / float64(k)
			if k > 1 && per < prevPer-1e-9 {
				return false
			}
			prev = kp.Weight
			prevPer = per
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKDisjoint4(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randGraph(rng, 300, 1500)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KDisjoint(g, i%300, (i+150)%300, 4)
	}
}

// Menger cross-check: KDisjoint succeeds at exactly k ≤ EdgeConnectivity.
func TestKDisjointMatchesEdgeConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(6)
		g := randGraph(rng, n, 2*n)
		s, d := 0, n-1
		conn := g.EdgeConnectivity(s, d)
		for k := 1; k <= conn+1; k++ {
			_, ok := KDisjoint(g, s, d, k)
			if want := k <= conn; ok != want {
				t.Fatalf("trial %d: k=%d ok=%v, connectivity=%d", trial, k, ok, conn)
			}
		}
	}
}
