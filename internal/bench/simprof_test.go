package bench

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/workload"
)

// BenchmarkSimNSFNETDynamic is the headline dynamic-simulation benchmark in
// its production configuration: candidate fast tier on, with the table
// precomputed once (it is state-independent, so building it is a deploy-time
// cost, not a per-run one).
func BenchmarkSimNSFNETDynamic(b *testing.B) {
	reqs := workload.Poisson(workload.PoissonConfig{
		Nodes: 14, ArrivalRate: 10, MeanHolding: 2, Count: 200, Seed: 7,
	})
	net := topo.NSFNET(topo.Config{W: 8})
	tab := core.NewCandidateTable(net, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := netsim.New(net, netsim.Config{
			Algorithm: netsim.MinCost,
			Opts:      &core.Options{CandidateTable: tab},
		})
		sim.Run(reqs)
	}
}

// BenchmarkSimNSFNETDynamicExact is the same run with the candidate tier off
// — every arrival goes through the full §3.3 pipeline. The gap between the
// two arms is what the fast tier buys.
func BenchmarkSimNSFNETDynamicExact(b *testing.B) {
	reqs := workload.Poisson(workload.PoissonConfig{
		Nodes: 14, ArrivalRate: 10, MeanHolding: 2, Count: 200, Seed: 7,
	})
	net := topo.NSFNET(topo.Config{W: 8})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := netsim.New(net, netsim.Config{Algorithm: netsim.MinCost})
		sim.Run(reqs)
	}
}
