package exact

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/wdm"
)

// diamondNet: two node-disjoint routes 0→1→3 (cost 2) and 0→2→3 (cost 4),
// plus an expensive direct link 0→3 (cost 10). Optimal pair cost = 6.
func diamondNet(w int) *wdm.Network {
	g := wdm.NewNetwork(4, w)
	g.AddUniformLink(0, 1, 1)
	g.AddUniformLink(1, 3, 1)
	g.AddUniformLink(0, 2, 2)
	g.AddUniformLink(2, 3, 2)
	g.AddUniformLink(0, 3, 10)
	g.SetAllConverters(wdm.NewFullConverter(w, 0.5))
	return g
}

func TestExhaustiveDiamond(t *testing.T) {
	g := diamondNet(2)
	sol, truncated, ok := Exhaustive(g, 0, 3, 0)
	if !ok || truncated {
		t.Fatalf("ok=%v truncated=%v", ok, truncated)
	}
	if math.Abs(sol.Cost-6) > 1e-9 {
		t.Fatalf("cost = %g, want 6", sol.Cost)
	}
	if err := sol.Primary.ValidateAvailable(g, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := sol.Backup.ValidateAvailable(g, 0, 3); err != nil {
		t.Fatal(err)
	}
	if !sol.Primary.EdgeDisjoint(sol.Backup) {
		t.Fatal("paths share a link")
	}
}

func TestILPDiamond(t *testing.T) {
	g := diamondNet(2)
	sol, stats, ok := ILP(g, 0, 3, ILPConfig{})
	if !ok {
		t.Fatal("ILP failed")
	}
	if math.Abs(sol.Cost-6) > 1e-6 {
		t.Fatalf("cost = %g, want 6", sol.Cost)
	}
	if stats.Vars == 0 || stats.Constraints == 0 || stats.Nodes == 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
	if err := sol.Primary.ValidateAvailable(g, 0, 3); err != nil {
		t.Fatal(err)
	}
	if err := sol.Backup.ValidateAvailable(g, 0, 3); err != nil {
		t.Fatal(err)
	}
	if !sol.Primary.EdgeDisjoint(sol.Backup) {
		t.Fatal("paths share a link")
	}
}

func TestNoDisjointPair(t *testing.T) {
	// Single line: only one route exists.
	g := wdm.NewNetwork(3, 2)
	g.AddUniformLink(0, 1, 1)
	g.AddUniformLink(1, 2, 1)
	if _, _, ok := Exhaustive(g, 0, 2, 0); ok {
		t.Fatal("Exhaustive found a nonexistent pair")
	}
	if _, _, ok := ILP(g, 0, 2, ILPConfig{}); ok {
		t.Fatal("ILP found a nonexistent pair")
	}
}

func TestDegenerateRequests(t *testing.T) {
	g := diamondNet(1)
	if _, _, ok := Exhaustive(g, 0, 0, 0); ok {
		t.Fatal("s == t accepted")
	}
	if _, _, ok := ILP(g, 2, 2, ILPConfig{}); ok {
		t.Fatal("s == t accepted by ILP")
	}
	if _, _, ok := Exhaustive(g, -1, 3, 0); ok {
		t.Fatal("bad source accepted")
	}
}

func TestWavelengthContentionForcesSplit(t *testing.T) {
	// Two parallel links 0→1 each with a single distinct wavelength; the
	// pair must use both. Conversion impossible (single-hop anyway).
	g := wdm.NewNetwork(2, 2)
	g.AddLink(0, 1, []wdm.Wavelength{0}, []float64{1})
	g.AddLink(0, 1, []wdm.Wavelength{1}, []float64{2})
	sol, _, ok := Exhaustive(g, 0, 1, 0)
	if !ok || math.Abs(sol.Cost-3) > 1e-9 {
		t.Fatalf("ok=%v cost=%v", ok, sol)
	}
	isol, _, iok := ILP(g, 0, 1, ILPConfig{})
	if !iok || math.Abs(isol.Cost-3) > 1e-6 {
		t.Fatalf("ILP ok=%v cost=%v", iok, isol)
	}
	if sol.Primary.Hops[0].Wavelength == sol.Backup.Hops[0].Wavelength {
		t.Fatal("paths must use distinct wavelengths on distinct links")
	}
}

func TestConversionCostCounted(t *testing.T) {
	// Primary route must convert: 0→1 has only λ0, 1→3 only λ1; conversion
	// at node 1 costs 5. Backup route 0→2→3 is uniform. The ILP objective
	// must include the 5.
	g := wdm.NewNetwork(4, 2)
	g.AddLink(0, 1, []wdm.Wavelength{0}, []float64{1})
	g.AddLink(1, 3, []wdm.Wavelength{1}, []float64{1})
	g.AddUniformLink(0, 2, 1)
	g.AddUniformLink(2, 3, 1)
	g.SetAllConverters(wdm.NewFullConverter(2, 5))
	want := 1.0 + 5 + 1 + 1 + 1 // route A with conversion + route B
	sol, _, ok := Exhaustive(g, 0, 3, 0)
	if !ok || math.Abs(sol.Cost-want) > 1e-9 {
		t.Fatalf("Exhaustive cost = %v, want %g", sol, want)
	}
	isol, _, iok := ILP(g, 0, 3, ILPConfig{})
	if !iok || math.Abs(isol.Cost-want) > 1e-6 {
		t.Fatalf("ILP cost = %v, want %g", isol, want)
	}
}

func TestDisallowedConversionBlocksRoute(t *testing.T) {
	// Same topology but no conversion: the mixed-wavelength route is
	// infeasible, so no disjoint pair exists.
	g := wdm.NewNetwork(4, 2)
	g.AddLink(0, 1, []wdm.Wavelength{0}, []float64{1})
	g.AddLink(1, 3, []wdm.Wavelength{1}, []float64{1})
	g.AddUniformLink(0, 2, 1)
	g.AddUniformLink(2, 3, 1)
	g.SetAllConverters(wdm.NoConverter{})
	if _, _, ok := Exhaustive(g, 0, 3, 0); ok {
		t.Fatal("Exhaustive found infeasible pair")
	}
	if _, _, ok := ILP(g, 0, 3, ILPConfig{}); ok {
		t.Fatal("ILP found infeasible pair")
	}
}

func TestExhaustiveTruncation(t *testing.T) {
	g := diamondNet(1)
	_, truncated, ok := Exhaustive(g, 0, 3, 1)
	if !truncated {
		t.Fatal("cap of 1 route should truncate")
	}
	_ = ok // with one route no pair can form; ok may be false
}

func TestRespectsAvailability(t *testing.T) {
	g := diamondNet(1) // W=1: taking a wavelength exhausts the link
	g.Use(0, 0)        // link 0→1 now unusable
	sol, _, ok := Exhaustive(g, 0, 3, 0)
	if !ok {
		t.Fatal("pair should still exist via 0→2→3 and 0→3")
	}
	if math.Abs(sol.Cost-14) > 1e-9 { // 4 + 10
		t.Fatalf("cost = %g, want 14", sol.Cost)
	}
	isol, _, iok := ILP(g, 0, 3, ILPConfig{})
	if !iok || math.Abs(isol.Cost-14) > 1e-6 {
		t.Fatalf("ILP cost = %v", isol)
	}
}

// randomSmallNet builds networks small enough for the ILP.
func randomSmallNet(rng *rand.Rand, n, w int) *wdm.Network {
	g := wdm.NewNetwork(n, w)
	for v := 0; v < n; v++ {
		g.AddUniformLink(v, (v+1)%n, 1+float64(rng.Intn(4)))
	}
	for i := 0; i < n/2; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddUniformLink(u, v, 1+float64(rng.Intn(4)))
		}
	}
	g.SetAllConverters(wdm.NewFullConverter(w, 0.5))
	return g
}

// The E9 agreement check in miniature: ILP and Exhaustive agree on random
// small instances.
func TestILPAgreesWithExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("ILP cross-check is slow")
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(2)
		g := randomSmallNet(rng, n, 2)
		s, d := 0, n-1
		esol, _, eok := Exhaustive(g, s, d, 0)
		isol, _, iok := ILP(g, s, d, ILPConfig{})
		if eok != iok {
			t.Fatalf("trial %d: exhaustive ok=%v, ilp ok=%v", trial, eok, iok)
		}
		if !eok {
			continue
		}
		if math.Abs(esol.Cost-isol.Cost) > 1e-5 {
			t.Fatalf("trial %d: exhaustive %g, ilp %g", trial, esol.Cost, isol.Cost)
		}
	}
}

func BenchmarkExhaustiveDiamond(b *testing.B) {
	g := diamondNet(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Exhaustive(g, 0, 3, 0)
	}
}

func BenchmarkILPDiamond(b *testing.B) {
	g := diamondNet(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ILP(g, 0, 3, ILPConfig{})
	}
}

// Regression: the paper's constraints as literally written admit two
// disjoint cycles (one through s, one through t) instead of two s→t paths.
// Craft an instance where that degenerate structure would be far cheaper
// than any real pair and verify the ILP matches the exhaustive optimum.
func TestILPRejectsCycleThroughSourceAndSink(t *testing.T) {
	g := wdm.NewNetwork(5, 1)
	// Cheap cycles at s=0 (via node 1) and t=4 (via node 3).
	g.AddUniformLink(0, 1, 0.1)
	g.AddUniformLink(1, 0, 0.1)
	g.AddUniformLink(4, 3, 0.1)
	g.AddUniformLink(3, 4, 0.1)
	// Two expensive genuine routes 0→4.
	g.AddUniformLink(0, 4, 50)
	g.AddUniformLink(0, 2, 30)
	g.AddUniformLink(2, 4, 30)
	g.SetAllConverters(wdm.NewFullConverter(1, 0))
	esol, _, okE := Exhaustive(g, 0, 4, 0)
	isol, _, okI := ILP(g, 0, 4, ILPConfig{})
	if !okE || !okI {
		t.Fatalf("okE=%v okI=%v", okE, okI)
	}
	want := 110.0 // 50 + 60
	if math.Abs(esol.Cost-want) > 1e-9 {
		t.Fatalf("exhaustive cost = %g, want %g", esol.Cost, want)
	}
	if math.Abs(isol.Cost-want) > 1e-6 {
		t.Fatalf("ILP cost = %g, want %g (cycle hole not closed)", isol.Cost, want)
	}
	// The extracted paths must be genuine s→t semilightpaths.
	if err := isol.Primary.Validate(g, 0, 4); err != nil {
		t.Fatal(err)
	}
	if err := isol.Backup.Validate(g, 0, 4); err != nil {
		t.Fatal(err)
	}
}

// The program builder's dimensions match the §3.1 formulation: two binary
// variables per available (link, wavelength) and two conversion variables
// per consecutive link pair.
func TestILPBuilderDimensions(t *testing.T) {
	g := diamondNet(2)
	prob, bins := BuildILPForDebug(g, 0, 3)
	availPairs := 0
	for id := 0; id < g.Links(); id++ {
		availPairs += g.Link(id).Avail().Count()
	}
	if len(bins) != 2*availPairs {
		t.Fatalf("binaries = %d, want %d", len(bins), 2*availPairs)
	}
	pairs := 0
	for e1 := 0; e1 < g.Links(); e1++ {
		for _, e2 := range g.Out(g.Link(e1).To) {
			if e2 != e1 {
				pairs++
			}
		}
	}
	if prob.NumVars() != 2*availPairs+2*pairs {
		t.Fatalf("vars = %d, want %d", prob.NumVars(), 2*availPairs+2*pairs)
	}
}
