package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/obs/explain"
	"repro/internal/slo"
	"repro/internal/timeseries"
	"repro/internal/topo"
)

// tracedRequest routes one request through a traced router and returns the
// tracer plus the obs request ID of the resulting trace.
func tracedRequest(t *testing.T) (*obs.Tracer, int64) {
	t.Helper()
	net := topo.NSFNET(topo.Config{W: 4})
	tr := obs.New(obs.Config{Capacity: 16})
	r := core.NewRouter(nil)
	r.SetTracer(tr)
	if _, ok := r.ApproxMinCost(net, 0, 9); !ok {
		t.Fatal("ApproxMinCost failed on NSFNET")
	}
	id := r.LastTraceID()
	if id < 1 {
		t.Fatalf("LastTraceID = %d, want a positive request ID", id)
	}
	return tr, id
}

func get(t *testing.T, mux *http.ServeMux, url string) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

func TestDebugMuxHealthAndMetrics(t *testing.T) {
	tr, _ := tracedRequest(t)
	mux := DebugMux(DebugOpts{Metrics: metrics.NewRegistry(), Flight: tr.Flight()})

	if code, body := get(t, mux, "/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get(t, mux, "/metrics"); code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}

	// Without a registry or recorder the endpoints report absence rather
	// than serving empty documents.
	bare := DebugMux(DebugOpts{})
	if code, _ := get(t, bare, "/metrics"); code != http.StatusNotFound {
		t.Fatalf("/metrics with nil registry = %d, want 404", code)
	}
	if code, _ := get(t, bare, "/debug/flight"); code != http.StatusNotFound {
		t.Fatalf("/debug/flight with nil recorder = %d, want 404", code)
	}
}

func TestDebugMuxFlightDump(t *testing.T) {
	tr, id := tracedRequest(t)
	mux := DebugMux(DebugOpts{Flight: tr.Flight()})

	code, body := get(t, mux, "/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("/debug/flight = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 1 {
		t.Fatalf("dump has %d lines, want 1", len(lines))
	}
	var rec struct {
		Req    int64  `json:"req"`
		Kind   string `json:"kind"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("dump line is not JSON: %v", err)
	}
	if rec.Req != id || rec.Kind != "min-cost" || rec.Status != obs.StatusOK {
		t.Fatalf("dump line = %+v, want req %d kind min-cost status ok", rec, id)
	}
}

func TestDebugMuxExplain(t *testing.T) {
	tr, id := tracedRequest(t)
	mux := DebugMux(DebugOpts{Flight: tr.Flight()})

	code, body := get(t, mux, fmt.Sprintf("/debug/explain/%d", id))
	if code != http.StatusOK {
		t.Fatalf("/debug/explain/%d = %d: %s", id, code, body)
	}
	var rep explain.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("explain JSON: %v", err)
	}
	if rep.Req != id || rep.Algorithm != "min-cost" || len(rep.Primary.Hops) == 0 {
		t.Fatalf("report = req %d algo %q hops %d", rep.Req, rep.Algorithm, len(rep.Primary.Hops))
	}

	code, body = get(t, mux, fmt.Sprintf("/debug/explain/%d?format=text", id))
	if code != http.StatusOK || !strings.Contains(body, "min-cost") || !strings.Contains(body, "bound") {
		t.Fatalf("text explain = %d %q", code, body)
	}

	if code, _ := get(t, mux, "/debug/explain/999999"); code != http.StatusNotFound {
		t.Fatalf("unknown id = %d, want 404", code)
	}
	if code, _ := get(t, mux, "/debug/explain/nope"); code != http.StatusBadRequest {
		t.Fatalf("malformed id = %d, want 400", code)
	}
}

func TestDebugMuxTimeseries(t *testing.T) {
	clock := timeseries.NewSimClock()
	col := timeseries.New(timeseries.Config{Window: 1, Clock: clock})
	r := col.Rate("events")
	for w := 0; w < 5; w++ {
		r.Inc()
		clock.Advance(float64(w + 1))
		col.Advance(float64(w + 1))
	}
	mux := DebugMux(DebugOpts{Series: col})

	code, body := get(t, mux, "/debug/timeseries")
	if code != http.StatusOK {
		t.Fatalf("/debug/timeseries = %d", code)
	}
	var snaps []timeseries.Snapshot
	if err := json.Unmarshal([]byte(body), &snaps); err != nil {
		t.Fatalf("timeseries JSON: %v", err)
	}
	if len(snaps) != 5 || snaps[0].Window != 0 {
		t.Fatalf("got %d windows, first %+v", len(snaps), snaps[0])
	}

	code, body = get(t, mux, "/debug/timeseries?last=2")
	if err := json.Unmarshal([]byte(body), &snaps); code != http.StatusOK || err != nil {
		t.Fatalf("last=2: %d %v", code, err)
	}
	if len(snaps) != 2 || snaps[0].Window != 3 || snaps[1].Window != 4 {
		t.Fatalf("last=2 returned %+v", snaps)
	}

	if code, _ := get(t, mux, "/debug/timeseries?last=nope"); code != http.StatusBadRequest {
		t.Fatalf("malformed last = %d, want 400", code)
	}
	if code, _ := get(t, DebugMux(DebugOpts{}), "/debug/timeseries"); code != http.StatusNotFound {
		t.Fatalf("disabled collector = %d, want 404", code)
	}
}

func TestDebugMuxNetState(t *testing.T) {
	var state *timeseries.NetState
	mux := DebugMux(DebugOpts{NetState: func() *timeseries.NetState { return state }})

	// Enabled but nothing sealed yet: 404 so probes can distinguish phases.
	if code, _ := get(t, mux, "/debug/net"); code != http.StatusNotFound {
		t.Fatalf("pre-seal /debug/net = %d, want 404", code)
	}

	state = timeseries.ProbeNetwork(topo.NSFNET(topo.Config{W: 4}), 7.5, 3)
	code, body := get(t, mux, "/debug/net")
	if code != http.StatusOK {
		t.Fatalf("/debug/net = %d", code)
	}
	var ns timeseries.NetState
	if err := json.Unmarshal([]byte(body), &ns); err != nil {
		t.Fatalf("net JSON: %v", err)
	}
	if ns.Time != 7.5 || ns.Nodes != 14 || ns.ActiveConns != 3 || len(ns.Links) == 0 {
		t.Fatalf("NetState = %+v", ns)
	}

	if code, _ := get(t, DebugMux(DebugOpts{}), "/debug/net"); code != http.StatusNotFound {
		t.Fatalf("disabled probe = %d, want 404", code)
	}
}

// TestDebugMuxBadQueryParams pins the hardened parameter handling: every
// malformed query parameter on the debug surface answers HTTP 400 with a
// JSON {"error": ...} body, never a free-text 500 or a silent default.
func TestDebugMuxBadQueryParams(t *testing.T) {
	tr, id := tracedRequest(t)
	col := timeseries.New(timeseries.Config{Window: 1, Clock: timeseries.NewSimClock()})
	mux := DebugMux(DebugOpts{Flight: tr.Flight(), Series: col})

	cases := []struct {
		name string
		url  string
	}{
		{"timeseries last not a number", "/debug/timeseries?last=nope"},
		{"timeseries negative last", "/debug/timeseries?last=-3"},
		{"timeseries float last", "/debug/timeseries?last=1.5"},
		{"flight req not a number", "/debug/flight?req=abc"},
		{"flight negative req", "/debug/flight?req=-1"},
		{"flight overflow req", "/debug/flight?req=99999999999999999999"},
		{"explain malformed id", "/debug/explain/nope"},
		{"explain empty id", "/debug/explain/"},
		{"explain unknown format", fmt.Sprintf("/debug/explain/%d?format=xml", id)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := get(t, mux, tc.url)
			if code != http.StatusBadRequest {
				t.Fatalf("GET %s = %d %q, want 400", tc.url, code, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
				t.Fatalf("GET %s body %q is not a JSON error (%v)", tc.url, body, err)
			}
		})
	}

	// The explicit formats still work after the validation tightening.
	for _, format := range []string{"json", "text"} {
		url := fmt.Sprintf("/debug/explain/%d?format=%s", id, format)
		if code, body := get(t, mux, url); code != http.StatusOK {
			t.Fatalf("GET %s = %d %q", url, code, body)
		}
	}
}

// TestDebugMuxFlightReqFilter: ?req=<id> narrows the dump to one request's
// traces — the server side of the X-Wdmd-Req join.
func TestDebugMuxFlightReqFilter(t *testing.T) {
	net := topo.NSFNET(topo.Config{W: 4})
	tr := obs.New(obs.Config{Capacity: 16})
	r := core.NewRouter(nil)
	r.SetTracer(tr)
	if _, ok := r.ApproxMinCost(net, 0, 9); !ok {
		t.Fatal("route 0→9 failed")
	}
	id1 := r.LastTraceID()
	if _, ok := r.ApproxMinCost(net, 1, 7); !ok {
		t.Fatal("route 1→7 failed")
	}
	id2 := r.LastTraceID()
	mux := DebugMux(DebugOpts{Flight: tr.Flight()})

	code, body := get(t, mux, fmt.Sprintf("/debug/flight?req=%d", id1))
	if code != http.StatusOK {
		t.Fatalf("filtered dump = %d %q", code, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 1 {
		t.Fatalf("filter for req %d returned %d lines, want 1", id1, len(lines))
	}
	var rec struct {
		Req int64 `json:"req"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil || rec.Req != id1 {
		t.Fatalf("filtered line %q: err %v, req %d want %d (other trace %d)", lines[0], err, rec.Req, id1, id2)
	}

	// Evicted / never-traced IDs answer a structured 404.
	code, body = get(t, mux, "/debug/flight?req=999999")
	if code != http.StatusNotFound {
		t.Fatalf("unknown req = %d, want 404", code)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
		t.Fatalf("unknown req body %q is not a JSON error", body)
	}
}

// TestDebugMuxSLOAndIncidents covers the two observability endpoints: 404
// with nothing wired, well-formed JSON status documents otherwise.
func TestDebugMuxSLOAndIncidents(t *testing.T) {
	bare := DebugMux(DebugOpts{})
	for _, path := range []string{"/debug/slo", "/debug/incidents"} {
		if code, _ := get(t, bare, path); code != http.StatusNotFound {
			t.Fatalf("GET %s unwired = %d, want 404", path, code)
		}
	}

	wd, err := slo.New(slo.Objective{Name: "p99", Series: "lat", Kind: slo.KindP99, Max: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	capt, err := slo.NewCapturer(slo.CaptureConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	mux := DebugMux(DebugOpts{SLO: wd, Incidents: capt})

	code, body := get(t, mux, "/debug/slo")
	if code != http.StatusOK {
		t.Fatalf("/debug/slo = %d %q", code, body)
	}
	var st slo.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/debug/slo JSON: %v", err)
	}
	if st.State != "healthy" || len(st.Objectives) != 1 || st.Objectives[0].Name != "p99" {
		t.Fatalf("/debug/slo status = %+v", st)
	}

	code, body = get(t, mux, "/debug/incidents")
	if code != http.StatusOK {
		t.Fatalf("/debug/incidents = %d %q", code, body)
	}
	var cs slo.CaptureStatus
	if err := json.Unmarshal([]byte(body), &cs); err != nil {
		t.Fatalf("/debug/incidents JSON: %v", err)
	}
	if cs.Dir == "" || len(cs.Bundles) != 0 {
		t.Fatalf("/debug/incidents status = %+v", cs)
	}
}

func TestDebugMuxPprofIndex(t *testing.T) {
	mux := DebugMux(DebugOpts{})
	if code, body := get(t, mux, "/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}
}

func TestStartDebugServer(t *testing.T) {
	tr, _ := tracedRequest(t)
	addr, err := StartDebugServer("127.0.0.1:0", DebugOpts{Flight: tr.Flight()})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("GET /healthz over TCP = %d %q (%v)", resp.StatusCode, body, err)
	}
}
