package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/topo"
	"repro/internal/wdm"
)

// threeCorridors: 0→{1,2,3}→4 at costs 2, 4, 6.
func threeCorridors(w int) *wdm.Network {
	net := wdm.NewNetwork(5, w)
	net.AddUniformLink(0, 1, 1)
	net.AddUniformLink(1, 4, 1)
	net.AddUniformLink(0, 2, 2)
	net.AddUniformLink(2, 4, 2)
	net.AddUniformLink(0, 3, 3)
	net.AddUniformLink(3, 4, 3)
	net.SetAllConverters(wdm.NewFullConverter(w, 0.5))
	return net
}

func checkMulti(t *testing.T, net *wdm.Network, r *MultiResult, s, d, k int) {
	t.Helper()
	if len(r.Paths) != k {
		t.Fatalf("paths = %d, want %d", len(r.Paths), k)
	}
	seen := map[int]bool{}
	total := 0.0
	prev := 0.0
	for i, p := range r.Paths {
		if err := p.ValidateAvailable(net, s, d); err != nil {
			t.Fatalf("path %d invalid: %v", i, err)
		}
		for _, h := range p.Hops {
			if seen[h.Link] {
				t.Fatalf("link %d reused across paths", h.Link)
			}
			seen[h.Link] = true
		}
		c := p.Cost(net)
		if c < prev-1e-9 {
			t.Fatal("paths not in ascending cost order")
		}
		prev = c
		total += c
	}
	if math.Abs(total-r.Cost) > 1e-9 {
		t.Fatalf("Cost = %g, paths sum to %g", r.Cost, total)
	}
}

func TestApproxMinCostK3(t *testing.T) {
	net := threeCorridors(2)
	r, ok := ApproxMinCostK(net, 0, 4, 3, nil)
	if !ok {
		t.Fatal("3-protection failed on three corridors")
	}
	checkMulti(t, net, r, 0, 4, 3)
	if math.Abs(r.Cost-12) > 1e-9 { // 2 + 4 + 6
		t.Fatalf("cost = %g, want 12", r.Cost)
	}
	// k = 4 impossible.
	if _, ok := ApproxMinCostK(net, 0, 4, 4, nil); ok {
		t.Fatal("4 disjoint paths cannot exist")
	}
	// Degenerate k.
	if _, ok := ApproxMinCostK(net, 0, 4, 0, nil); ok {
		t.Fatal("k = 0 accepted")
	}
}

func TestApproxMinCostK2MatchesPairRouter(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		net := randomWDM(rng, 6+rng.Intn(4), 2, false)
		s, d := 0, net.Nodes()-1
		r2, ok2 := ApproxMinCostK(net, s, d, 2, nil)
		rp, okp := ApproxMinCost(net, s, d, nil)
		if ok2 != okp {
			t.Fatalf("trial %d: k=2 ok=%v, pair ok=%v", trial, ok2, okp)
		}
		if !ok2 {
			continue
		}
		if math.Abs(r2.Cost-rp.Cost) > 1e-9 {
			t.Fatalf("trial %d: k=2 cost %g != pair cost %g", trial, r2.Cost, rp.Cost)
		}
	}
}

func TestEstablishTeardownK(t *testing.T) {
	net := threeCorridors(1)
	r, ok := ApproxMinCostK(net, 0, 4, 3, nil)
	if !ok {
		t.Fatal("routing failed")
	}
	if err := EstablishK(net, r); err != nil {
		t.Fatal(err)
	}
	if net.NetworkLoad() != 1 { // W=1: every corridor fully used
		t.Fatalf("load = %g", net.NetworkLoad())
	}
	// A second establish must fail atomically (nothing left).
	if err := EstablishK(net, r); err == nil {
		t.Fatal("double establish accepted")
	}
	if err := TeardownK(net, r); err != nil {
		t.Fatal(err)
	}
	if net.NetworkLoad() != 0 {
		t.Fatal("teardown leaked")
	}
}

func TestSurvivesFailures(t *testing.T) {
	net := threeCorridors(2)
	r, _ := ApproxMinCostK(net, 0, 4, 3, nil)
	// Kill the first links of two corridors: the third still survives.
	down := map[int]bool{r.Paths[0].Hops[0].Link: true, r.Paths[1].Hops[0].Link: true}
	if !r.SurvivesFailures(down) {
		t.Fatal("third path should survive two failures")
	}
	down[r.Paths[2].Hops[0].Link] = true
	if r.SurvivesFailures(down) {
		t.Fatal("all paths down yet reported surviving")
	}
	if !r.SurvivesFailures(map[int]bool{}) {
		t.Fatal("no failures should always survive")
	}
}

func TestKProtectionOnNSFNET(t *testing.T) {
	net := topo.NSFNET(topo.Config{W: 8})
	// NSFNET is 3-edge-connected between most pairs; verify a known pair.
	r, ok := ApproxMinCostK(net, 0, 13, 3, nil)
	if !ok {
		t.Skip("NSFNET lacks 3 disjoint paths for this pair")
	}
	checkMulti(t, net, r, 0, 13, 3)
}
