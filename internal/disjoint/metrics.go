package disjoint

import "repro/internal/metrics"

// instruments holds the package's metric hooks; nil (the default) means off.
type instruments struct {
	calls       *metrics.Counter
	found       *metrics.Counter
	relaxations *metrics.Counter
	heapOps     *metrics.Counter
	time        *metrics.Timer
}

var instr instruments

// EnableMetrics registers the package's instruments on r and routes all
// subsequent Suurballe calls through them. A nil registry disables them.
func EnableMetrics(r *metrics.Registry) {
	instr = instruments{
		calls:       r.Counter("disjoint_suurballe_calls_total", "Suurballe invocations"),
		found:       r.Counter("disjoint_suurballe_found_total", "Suurballe invocations that found a pair"),
		relaxations: r.Counter("disjoint_dijkstra_relaxations_total", "edge relaxation attempts across both Dijkstra passes"),
		heapOps:     r.Counter("disjoint_heap_ops_total", "heap pushes/decreases/pops across both Dijkstra passes"),
		time:        r.Timer("disjoint_suurballe_seconds", "Suurballe end-to-end time"),
	}
}
