package core

import "repro/internal/metrics"

// instruments holds the package's metric hooks; nil (the default) means off.
type instruments struct {
	routeCalls *metrics.Counter
	routeFound *metrics.Counter

	// Per-phase timing of the §3.3 pipeline: aux-graph build → Suurballe →
	// Lemma 2 refinement, plus the §4.1 MinCog threshold search as a whole.
	phaseBuild    *metrics.Timer
	phaseDisjoint *metrics.Timer
	phaseRefine   *metrics.Timer
	phaseMinCog   *metrics.Timer

	// mincogIters is the theta-iteration count per MinCog search.
	mincogIters *metrics.Histogram
	// refineRatio is refined cost / first-fit cost per routed pair (≤ 1 by
	// Lemma 2; how far below 1 measures what the refinement buys).
	refineRatio *metrics.Histogram
	// firstFitFallbacks counts routes kept on the first-fit assignment
	// because the refinement was infeasible (restricted converters).
	firstFitFallbacks *metrics.Counter

	// candidateHits/candidateFallbacks split requests that entered the
	// candidate fast tier: served from a cached pair vs fell through to the
	// exact aux-graph pipeline.
	candidateHits      *metrics.Counter
	candidateFallbacks *metrics.Counter
}

var instr instruments

// EnableMetrics registers the package's instruments on r and routes all
// subsequent routing calls through them. A nil registry disables them.
func EnableMetrics(r *metrics.Registry) {
	instr = instruments{
		routeCalls:         r.Counter("core_route_calls_total", "routing requests handled"),
		routeFound:         r.Counter("core_route_found_total", "routing requests that found a disjoint pair"),
		phaseBuild:         r.Timer("core_phase_build_seconds", "aux-graph build phase time (cost pipeline)"),
		phaseDisjoint:      r.Timer("core_phase_disjoint_seconds", "Suurballe phase time (cost pipeline)"),
		phaseRefine:        r.Timer("core_phase_refine_seconds", "Lemma 2 refinement phase time"),
		phaseMinCog:        r.Timer("core_phase_mincog_seconds", "MinCog threshold search phase time"),
		mincogIters:        r.Histogram("core_mincog_iterations", "theta iterations per MinCog search", metrics.LogBuckets(1, 128, 4)),
		refineRatio:        r.Histogram("core_refine_improvement_ratio", "refined cost / first-fit cost per pair", metrics.LogBuckets(0.125, 8, 9)),
		firstFitFallbacks:  r.Counter("core_firstfit_fallback_total", "routes kept on first-fit because refinement was infeasible"),
		candidateHits:      r.Counter("core_candidate_hits_total", "requests served by the candidate fast tier"),
		candidateFallbacks: r.Counter("core_candidate_fallback_total", "candidate-tier misses that fell back to exact routing"),
	}
}
