package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cli"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/wdm"
)

// Request is the JSON body of POST /provision. Teardown and reroute take
// only the ID (src/dst/algo ignored).
type Request struct {
	ID  int64 `json:"id"`
	Src int   `json:"src"`
	Dst int   `json:"dst"`
	// Algo optionally overrides the daemon's default routing discipline for
	// this request: min-cost, min-load, min-load-cost or two-step.
	Algo string `json:"algo,omitempty"`
}

// HopOut is one semilightpath hop in a JSON response or journal entry.
type HopOut struct {
	Link   int `json:"link"`
	Lambda int `json:"lambda"`
}

// Response is the JSON body every request endpoint returns. Domain
// rejections (no route, conflict, unknown connection) are HTTP 200 with
// Accepted=false and a Reason — only malformed requests get a 4xx.
type Response struct {
	ID       int64   `json:"id"`
	Op       string  `json:"op"`
	Accepted bool    `json:"accepted"`
	Reason   string  `json:"reason,omitempty"`
	Detail   string  `json:"detail,omitempty"`
	Cost     float64 `json:"cost,omitempty"`
	PathLoad float64 `json:"path_load,omitempty"`
	Epoch    uint64  `json:"epoch"`
	Shard    int     `json:"shard"`
	Retries  int     `json:"retries,omitempty"`
	// Req is the flight-recorder request ID of the routing trace behind this
	// response (0 when tracing is off). The HTTP layer echoes it as the
	// X-Wdmd-Req header, so a slow response joins to its spans via
	// /debug/flight?req=<id> or /debug/explain/<id>.
	Req     int64    `json:"req,omitempty"`
	Primary []HopOut `json:"primary,omitempty"`
	Backup  []HopOut `json:"backup,omitempty"`
}

func rejectResponse(id int64, op, reason, detail string) Response {
	return Response{ID: id, Op: op, Accepted: false, Reason: reason, Detail: detail}
}

func hopsJSON(hops []wdm.Hop) []HopOut {
	if len(hops) == 0 {
		return nil
	}
	out := make([]HopOut, len(hops))
	for i, h := range hops {
		out[i] = HopOut{Link: h.Link, Lambda: h.Wavelength}
	}
	return out
}

// maxBodyBytes bounds request bodies; routing requests are tiny.
const maxBodyBytes = 1 << 16

// DecodeRequest parses one JSON request body strictly: unknown fields,
// trailing garbage, and non-object payloads are errors. It is the fuzz
// target of FuzzRequestDecode — it must never panic, whatever the bytes.
func DecodeRequest(r io.Reader) (Request, error) {
	var req Request
	dec := json.NewDecoder(io.LimitReader(r, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return Request{}, fmt.Errorf("decode request: %w", err)
	}
	// Reject trailing tokens ("{}{}", "{} junk") — one request per body.
	if _, err := dec.Token(); err != io.EOF {
		return Request{}, fmt.Errorf("decode request: trailing data after JSON object")
	}
	return req, nil
}

// Handler builds the daemon's HTTP API on top of the shared debug mux, so
// wdmd exposes /healthz, /metrics, /debug/timeseries, /debug/net,
// /debug/flight and /debug/pprof/* exactly like wdmsim -serve, plus:
//
//	POST /provision  {"id": 7, "src": 0, "dst": 3, "algo": "min-load-cost"}
//	POST /teardown   {"id": 7}
//	POST /reroute    {"id": 7}
//	GET  /status     daemon aggregate state (epoch, blocking, conflicts…)
//
// reg is the registry backing /metrics (nil disables it); pass the same
// registry given to EnableMetrics.
func (e *Engine) Handler(reg *metrics.Registry) *http.ServeMux {
	var fr *obs.FlightRecorder
	if e.cfg.Tracer != nil {
		fr = e.cfg.Tracer.Flight()
	}
	mux := cli.DebugMux(cli.DebugOpts{
		Metrics:   reg,
		Flight:    fr,
		Series:    e.Collector(),
		NetState:  e.NetState,
		SLO:       e.watchdog,
		Incidents: e.incidents,
	})
	mux.HandleFunc("POST /provision", func(w http.ResponseWriter, r *http.Request) {
		req, ok := e.decodeTimed(w, r)
		if !ok {
			return
		}
		writeResponse(w, e.Provision(req))
	})
	mux.HandleFunc("POST /teardown", func(w http.ResponseWriter, r *http.Request) {
		req, ok := e.decodeTimed(w, r)
		if !ok {
			return
		}
		writeResponse(w, e.Teardown(req.ID))
	})
	mux.HandleFunc("POST /reroute", func(w http.ResponseWriter, r *http.Request) {
		req, ok := e.decodeTimed(w, r)
		if !ok {
			return
		}
		writeResponse(w, e.Reroute(req.ID))
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, e.Status())
	})
	return mux
}

// decodeTimed parses one request body, timing the decode into the
// wdmd_stage_decode_seconds timer and its telemetry histogram — decode
// happens before the request clock starts, so it is reported as HTTP
// overhead alongside (not inside) the pipeline stages. On a parse error it
// writes the 400 and reports ok=false.
func (e *Engine) decodeTimed(w http.ResponseWriter, r *http.Request) (Request, bool) {
	t := time.Now()
	req, err := DecodeRequest(r.Body)
	d := time.Since(t)
	instr.stageDecode.Observe(d)
	e.tel.observeDecode(d)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return Request{}, false
	}
	return req, true
}

// writeResponse writes a pipeline Response, echoing its flight-recorder
// request ID (when traced) as the X-Wdmd-Req header so callers can join the
// HTTP exchange to /debug/flight?req=<id> without parsing the body.
func writeResponse(w http.ResponseWriter, resp Response) {
	if resp.Req > 0 {
		w.Header().Set("X-Wdmd-Req", strconv.FormatInt(resp.Req, 10))
	}
	writeJSON(w, resp)
}

// writeJSON encodes v into a buffer first so an encoding failure can still
// change the status code (nothing committed to the wire yet).
func writeJSON(w http.ResponseWriter, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = buf.WriteTo(w)
}
