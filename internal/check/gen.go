package check

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/wdm"
)

// Algo names a routing objective for one establish operation. The harness
// maps it onto the corresponding core.Router method; keeping the enum here
// lets instances round-trip through JSON without importing core.
type Algo int

const (
	// AlgoMinCost is ApproxMinCost (§3.3).
	AlgoMinCost Algo = iota
	// AlgoMinLoad is MinLoad (§4.1).
	AlgoMinLoad
	// AlgoMinLoadCost is MinLoadCost (§4.2).
	AlgoMinLoadCost
	// AlgoNodeDisjoint is ApproxMinCostNodeDisjoint.
	AlgoNodeDisjoint
	numAlgos
)

// String names the algorithm like the CLI -algo values.
func (a Algo) String() string {
	switch a {
	case AlgoMinCost:
		return "min-cost"
	case AlgoMinLoad:
		return "min-load"
	case AlgoMinLoadCost:
		return "min-load-cost"
	case AlgoNodeDisjoint:
		return "node-disjoint"
	}
	return fmt.Sprintf("algo(%d)", int(a))
}

// ConvKind selects the conversion model installed at every node.
type ConvKind int

const (
	// ConvFull is full-range conversion at one uniform cost (the §3.3
	// assumption (i); required for Theorem-2 eligibility).
	ConvFull ConvKind = iota
	// ConvNone forbids all conversion (the Lemma 1 wavelength-continuity
	// regime).
	ConvNone
	// ConvRange allows |λp−λq| ≤ ConvRange at cost ConvCost·|λp−λq|.
	ConvRange
	numConvKinds
)

// String names the conversion model.
func (k ConvKind) String() string {
	switch k {
	case ConvFull:
		return "full"
	case ConvNone:
		return "none"
	case ConvRange:
		return "range"
	}
	return fmt.Sprintf("conv(%d)", int(k))
}

// LinkSpec describes one directed link. A nil Lambdas means the link carries
// all W wavelengths at the uniform Cost (the §3.3 assumption (ii));
// otherwise Lambdas/Costs list the installed wavelengths and their
// individual costs.
type LinkSpec struct {
	From, To int
	Cost     float64
	Lambdas  []int     `json:",omitempty"`
	Costs    []float64 `json:",omitempty"`
}

// Op is one step of a request stream. Teardown ≥ 0 tears down the
// connection established by Ops[Teardown]; otherwise the op establishes
// (Src, Dst) with the given algorithm.
type Op struct {
	Teardown int
	Src, Dst int
	Algo     Algo
}

// Instance is a self-contained, JSON-serialisable test case: a residual
// network specification plus a request stream. Build is deterministic, so an
// instance dumped as a failure artifact replays exactly.
type Instance struct {
	// Seed records the generator seed the instance came from (provenance
	// only; Build does not use it).
	Seed      int64
	Nodes     int
	W         int
	Conv      ConvKind
	ConvCost  float64
	ConvRange int `json:",omitempty"`
	Links     []LinkSpec
	Ops       []Op
}

// Eligible reports whether the instance satisfies the Theorem 2 assumptions
// — full conversion at identical cost and uniform per-link wavelength costs
// — under which ApproxMinCost is a 2-approximation and (together with
// Suurballe's exactness on the auxiliary graph) feasibility matches the
// exact solvers.
func (in *Instance) Eligible() bool {
	if in.Conv != ConvFull {
		return false
	}
	for _, l := range in.Links {
		if l.Lambdas != nil {
			return false
		}
	}
	return true
}

// Validate checks structural soundness: dimensions, link endpoints,
// wavelength indices and costs, and the establish/teardown discipline of the
// op stream (teardowns reference earlier, still-live establishes). Every
// instance the generator or the shrinker emits validates; replayed artifacts
// are validated before building.
func (in *Instance) Validate() error {
	if in.Nodes < 2 {
		return fmt.Errorf("check: instance needs ≥ 2 nodes, has %d", in.Nodes)
	}
	if in.W < 1 {
		return fmt.Errorf("check: instance needs W ≥ 1, has %d", in.W)
	}
	if in.Conv < 0 || in.Conv >= numConvKinds {
		return fmt.Errorf("check: unknown conversion kind %d", in.Conv)
	}
	if in.ConvCost < 0 || math.IsInf(in.ConvCost, 0) || math.IsNaN(in.ConvCost) {
		return fmt.Errorf("check: invalid conversion cost %g", in.ConvCost)
	}
	if in.Conv == ConvRange && (in.ConvRange < 0 || in.ConvRange >= in.W) {
		return fmt.Errorf("check: conversion range %d outside [0,%d)", in.ConvRange, in.W)
	}
	for i, l := range in.Links {
		if l.From < 0 || l.From >= in.Nodes || l.To < 0 || l.To >= in.Nodes {
			return fmt.Errorf("check: link %d endpoints (%d,%d) out of range", i, l.From, l.To)
		}
		if l.From == l.To {
			return fmt.Errorf("check: link %d is a self-loop at %d", i, l.From)
		}
		if l.Lambdas == nil {
			if l.Cost < 0 || math.IsInf(l.Cost, 0) || math.IsNaN(l.Cost) {
				return fmt.Errorf("check: link %d has invalid uniform cost %g", i, l.Cost)
			}
			continue
		}
		if len(l.Lambdas) == 0 || len(l.Lambdas) != len(l.Costs) {
			return fmt.Errorf("check: link %d wavelength/cost lists malformed", i)
		}
		seen := map[int]bool{}
		for j, lam := range l.Lambdas {
			if lam < 0 || lam >= in.W {
				return fmt.Errorf("check: link %d: λ%d out of range [0,%d)", i, lam, in.W)
			}
			if seen[lam] {
				return fmt.Errorf("check: link %d: λ%d listed twice", i, lam)
			}
			seen[lam] = true
			if c := l.Costs[j]; c < 0 || math.IsInf(c, 0) || math.IsNaN(c) {
				return fmt.Errorf("check: link %d: invalid cost %g for λ%d", i, c, lam)
			}
		}
	}
	live := map[int]bool{}
	for i, op := range in.Ops {
		if op.Teardown >= 0 {
			if op.Teardown >= i || in.Ops[op.Teardown].Teardown >= 0 {
				return fmt.Errorf("check: op %d tears down invalid op %d", i, op.Teardown)
			}
			if !live[op.Teardown] {
				return fmt.Errorf("check: op %d tears down op %d twice (or it never established)", i, op.Teardown)
			}
			delete(live, op.Teardown)
			continue
		}
		if op.Src < 0 || op.Src >= in.Nodes || op.Dst < 0 || op.Dst >= in.Nodes || op.Src == op.Dst {
			return fmt.Errorf("check: op %d has invalid endpoints (%d,%d)", i, op.Src, op.Dst)
		}
		if op.Algo < 0 || op.Algo >= numAlgos {
			return fmt.Errorf("check: op %d has unknown algorithm %d", i, op.Algo)
		}
		live[i] = true
	}
	return nil
}

// Build constructs the wdm.Network the instance describes. It is
// deterministic: building twice yields identical networks (the differential
// harness relies on this for its two arms).
func (in *Instance) Build() (*wdm.Network, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	net := wdm.NewNetwork(in.Nodes, in.W)
	switch in.Conv {
	case ConvFull:
		net.SetAllConverters(wdm.NewFullConverter(in.W, in.ConvCost))
	case ConvNone:
		net.SetAllConverters(wdm.NoConverter{})
	case ConvRange:
		net.SetAllConverters(wdm.NewRangeConverter(in.ConvRange, in.ConvCost))
	}
	for _, l := range in.Links {
		if l.Lambdas == nil {
			net.AddUniformLink(l.From, l.To, l.Cost)
		} else {
			net.AddLink(l.From, l.To, l.Lambdas, l.Costs)
		}
	}
	return net, nil
}

// Generate draws a random instance: a small connected digraph (bidirected
// ring plus random chords, so edge-disjoint pairs usually exist), a
// conversion model, a cost model (uniform per §3.3 assumption (ii), or
// heterogeneous per-wavelength), and an establish/teardown request stream.
// maxNodes caps the node count (values < 4 are raised to 4). The instance
// depends only on the stream of rng draws, so a seeded rng reproduces it.
func Generate(rng *rand.Rand, maxNodes int) *Instance {
	if maxNodes < 4 {
		maxNodes = 4
	}
	n := 3 + rng.Intn(maxNodes-2)
	w := 1 + rng.Intn(3)
	in := &Instance{Nodes: n, W: w}

	switch r := rng.Float64(); {
	case r < 0.6:
		in.Conv = ConvFull
		in.ConvCost = round3(rng.Float64() * 1.5)
	case r < 0.8:
		in.Conv = ConvNone
	default:
		in.Conv = ConvRange
		in.ConvRange = rng.Intn(w)
		in.ConvCost = round3(rng.Float64())
	}
	uniform := in.Conv != ConvFull || rng.Float64() < 0.7

	addLink := func(u, v int) {
		if uniform {
			in.Links = append(in.Links, LinkSpec{From: u, To: v, Cost: round3(0.5 + rng.Float64()*3)})
			return
		}
		var lams []int
		var costs []float64
		for lam := 0; lam < w; lam++ {
			if rng.Float64() < 0.75 {
				lams = append(lams, lam)
				costs = append(costs, round3(0.5+rng.Float64()*3))
			}
		}
		if len(lams) == 0 {
			lams = append(lams, rng.Intn(w))
			costs = append(costs, round3(0.5+rng.Float64()*3))
		}
		in.Links = append(in.Links, LinkSpec{From: u, To: v, Lambdas: lams, Costs: costs})
	}
	for v := 0; v < n; v++ {
		addLink(v, (v+1)%n)
		addLink((v+1)%n, v)
	}
	for i := rng.Intn(n + 1); i > 0; i-- {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			addLink(u, v)
		}
	}

	var live []int
	nOps := 3 + rng.Intn(10)
	for i := 0; i < nOps; i++ {
		if len(live) > 0 && rng.Float64() < 0.3 {
			j := rng.Intn(len(live))
			in.Ops = append(in.Ops, Op{Teardown: live[j]})
			live = append(live[:j], live[j+1:]...)
			continue
		}
		src := rng.Intn(n)
		dst := rng.Intn(n - 1)
		if dst >= src {
			dst++
		}
		var algo Algo
		switch r := rng.Float64(); {
		case r < 0.4:
			algo = AlgoMinCost
		case r < 0.6:
			algo = AlgoMinLoad
		case r < 0.8:
			algo = AlgoMinLoadCost
		default:
			algo = AlgoNodeDisjoint
		}
		in.Ops = append(in.Ops, Op{Teardown: -1, Src: src, Dst: dst, Algo: algo})
		live = append(live, len(in.Ops)-1)
	}
	return in
}

// GenerateSeeded draws the instance a fresh rand.Rand seeded with seed
// produces, and records the seed for provenance. Same seed, same instance.
func GenerateSeeded(seed int64, maxNodes int) *Instance {
	in := Generate(rand.New(rand.NewSource(seed)), maxNodes)
	in.Seed = seed
	return in
}

// round3 quantises costs to 1/1024 steps. Coarse dyadic costs keep the
// instances human-readable after shrinking and make exact float comparisons
// across differential arms well-behaved without affecting coverage.
func round3(x float64) float64 { return math.Round(x*1024) / 1024 }
