// Package core exercises mixed atomic/plain access to struct fields.
package core

import "sync/atomic"

// Stats mixes an atomically-accessed counter with a plain one.
type Stats struct {
	Hits   uint64
	misses uint64
}

// Record is a sanctioned atomic write.
func (s *Stats) Record() {
	atomic.AddUint64(&s.Hits, 1)
}

// Snapshot is a sanctioned atomic read.
func (s *Stats) Snapshot() uint64 {
	return atomic.LoadUint64(&s.Hits)
}

// Peek reads Hits without atomics: finding.
func (s *Stats) Peek() uint64 {
	return s.Hits
}

// Reset writes Hits without atomics: finding.
func (s *Stats) Reset() {
	s.Hits = 0
}

// NewStats initializes Hits through a keyed literal, a plain write: finding.
func NewStats() *Stats {
	return &Stats{Hits: 0}
}

// Misses is only ever accessed plainly: clean.
func (s *Stats) Misses() uint64 {
	s.misses++
	return s.misses
}

// Drain reads Hits under a recorded exception: suppressed.
func (s *Stats) Drain() uint64 {
	return s.Hits //wdmlint:ignore atomicfield read runs after all writers have joined
}
