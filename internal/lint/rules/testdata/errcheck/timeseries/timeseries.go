// Package timeseries is a fixture export sink whose Flush and Close drain a
// buffer of sealed telemetry windows; dropping their errors truncates the
// exported curve silently.
package timeseries

import "io"

// JSONL buffers sealed windows before writing them out.
type JSONL struct {
	w       io.Writer
	pending int
}

// WriteSnapshot buffers one sealed window.
func (j *JSONL) WriteSnapshot(v int) { j.pending++ }

// Flush drains the buffer and reports the first write error.
func (j *JSONL) Flush() error {
	j.pending = 0
	return nil
}

// Close flushes and releases the underlying writer.
func (j *JSONL) Close() error { return j.Flush() }
