package rules

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// ErrCheckLite flags ignored error returns on a short, curated list of calls
// where dropping the error loses data silently: trace recorder flushes (the
// JSONL buffer holds trailing events until Flush/Close), Encode calls on the
// serialisable artifacts, and file Close on write paths (a failed close after
// os.Create can discard buffered bytes — the classic NFS/ext4 trap). It is
// deliberately not a general errcheck: everything else error-shaped is the
// repo's own business.
var ErrCheckLite = &lint.Analyzer{
	Name: "errcheck-lite",
	Doc:  "error results of trace Flush/Close, artifact Encode, and file Close on write paths must be checked",
	Run:  runErrCheckLite,
}

// ecMethodRules match a method by name plus the package-path suffix of its
// receiver's named type.
var ecMethodRules = []struct {
	pkg, method string
}{
	{"trace", "Flush"},
	{"trace", "Close"},
	{"topofile", "Encode"},
	{"workload", "Encode"},
	{"check", "Encode"},
	// A partial flight-recorder dump is silent loss of the very traces a
	// post-mortem needs.
	{"obs", "Dump"},
	{"obs", "DumpFile"},
	// Telemetry export sinks buffer sealed windows; dropping Flush/Close
	// truncates the curve on disk with no other symptom.
	{"timeseries", "Flush"},
	{"timeseries", "Close"},
	// http.Server.Shutdown reports whether the graceful drain actually
	// finished; ignoring it turns a hung shutdown into a silent request drop.
	{"http", "Shutdown"},
	// The daemon engine's Close seals telemetry and returns the first sink
	// error — dropping it loses the tail of every soak curve.
	{"serve", "Close"},
}

// ecFuncRules match a package-level function by name plus the package-path
// suffix of its defining package — the non-method side of the curated list.
var ecFuncRules = []struct {
	pkg, fn string
}{
	// runtime/pprof profile starts fail when another profile is already
	// running; ignoring that writes an empty or stale cpu.pprof into an
	// incident bundle with no other symptom.
	{"pprof", "StartCPUProfile"},
	{"pprof", "WriteHeapProfile"},
}

func runErrCheckLite(p *lint.Pass) {
	for _, f := range p.Files {
		for _, body := range funcScopes(f) {
			checkScope(p, body)
		}
	}
}

// checkScope inspects one function frame: the write-path heuristic for file
// closes is scoped to the frame that opened the file.
func checkScope(p *lint.Pass, body *ast.BlockStmt) {
	writePath := false
	walkShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(p, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "os" {
			if fn.Name() == "Create" || fn.Name() == "OpenFile" {
				writePath = true
			}
		}
		return true
	})
	walkShallow(body, func(n ast.Node) bool {
		var call *ast.CallExpr
		switch s := n.(type) {
		case *ast.ExprStmt:
			call, _ = s.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = s.Call
		case *ast.GoStmt:
			call = s.Call
		}
		if call == nil {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || !returnsError(sig) {
			return true
		}
		if sig.Recv() == nil {
			for _, rule := range ecFuncRules {
				if fn.Name() == rule.fn && fn.Pkg() != nil && lint.PkgPathIs(fn.Pkg(), rule.pkg) {
					p.Reportf(call.Pos(), "error from %s.%s is discarded; the profile may silently be missing or stale", fn.Pkg().Name(), fn.Name())
					return true
				}
			}
			return true
		}
		recvPkg, recvName := recvTypeOf(sig)
		if recvPkg == nil {
			return true
		}
		for _, rule := range ecMethodRules {
			if fn.Name() == rule.method && lint.PkgPathIs(recvPkg, rule.pkg) {
				p.Reportf(call.Pos(), "error from (%s).%s is discarded; buffered data may be lost", recvName, fn.Name())
				return true
			}
		}
		if writePath && fn.Name() == "Close" && recvPkg.Path() == "os" && recvName == "File" {
			p.Reportf(call.Pos(), "file Close error is discarded on a write path; a failed close can lose written bytes")
		}
		return true
	})
}

// calleeFunc resolves the called function or method, or nil.
func calleeFunc(p *lint.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

// returnsError reports whether the signature's last result is error.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// recvTypeOf returns the defining package and name of the receiver's named
// type, resolving one pointer indirection.
func recvTypeOf(sig *types.Signature) (*types.Package, string) {
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Pkg(), named.Obj().Name()
	}
	return nil, ""
}
