//go:build !race

// Allocation-regression tests, excluded from -race runs (the detector's
// instrumentation breaks testing.AllocsPerOp accounting).
package disjoint

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// TestWorkspaceSuurballeZeroAllocs pins the tentpole property: a warmed
// Workspace runs the full Suurballe pipeline — both Dijkstra passes, the
// residual graph rebuild, and the combine phase — without heap allocations.
func TestWorkspaceSuurballeZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.New(100)
	for v := 0; v < 100; v++ {
		g.AddEdge(v, (v+1)%100, 1+rng.Float64())
		g.AddEdge((v+1)%100, v, 1+rng.Float64())
	}
	for i := 0; i < 200; i++ {
		g.AddEdge(rng.Intn(100), rng.Intn(100), 1+rng.Float64()*4)
	}
	ws := NewWorkspace()
	if _, ok := ws.Suurballe(g, 0, 50); !ok {
		t.Fatal("no disjoint pair on ring+chords graph")
	}
	allocs := testing.AllocsPerRun(100, func() {
		ws.Suurballe(g, 2, 71)
	})
	if allocs != 0 {
		t.Fatalf("warm Workspace.Suurballe allocates %.1f/op, want 0", allocs)
	}
}
