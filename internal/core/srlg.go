package core

import (
	"repro/internal/lightpath"
	"repro/internal/wdm"
)

// ApproxMinCostSRLG routes (s, t) with a backup that is both edge-disjoint
// and SRLG-disjoint from the primary: the backup avoids every link sharing a
// risk group with any primary link, so a conduit or duct cut that takes out
// several fibers at once still leaves the backup intact.
//
// Joint SRLG-disjoint pair optimisation is NP-hard even without wavelengths,
// so this uses the standard active-path-first heuristic hardened with
// k-shortest retries: candidate primaries are enumerated in cost order (up
// to maxPrimaries, default 8) and the first admitting an SRLG-disjoint
// backup wins. ok is false when no candidate works — which can happen even
// if a joint solution exists (the heuristic's known gap; the trap tests
// exercise it).
func ApproxMinCostSRLG(net *wdm.Network, s, t int, maxPrimaries int, opts *Options) (*Result, bool) {
	if maxPrimaries <= 0 {
		maxPrimaries = 8
	}
	primaries := lightpath.KShortest(net, s, t, maxPrimaries)
	for _, primary := range primaries {
		// Membership map plus a hop-ordered ID list: the risk scan iterates
		// the list so candidate filtering is deterministic (mapdet).
		pLinks := map[int]bool{}
		pIDs := make([]int, 0, len(primary.Hops))
		for _, h := range primary.Hops {
			if !pLinks[h.Link] {
				pLinks[h.Link] = true
				pIDs = append(pIDs, h.Link)
			}
		}
		allowed := func(id int) bool {
			if pLinks[id] {
				return false
			}
			for _, pl := range pIDs {
				if net.SharesRisk(id, pl) {
					return false
				}
			}
			return true
		}
		backup, bCost, ok := lightpath.Optimal(net, s, t, &lightpath.Options{AllowedLinks: allowed})
		if !ok {
			continue
		}
		pCost := primary.Cost(net)
		res := &Result{
			Primary:   primary,
			Backup:    backup,
			Cost:      pCost + bCost,
			NaiveCost: pCost + bCost,
		}
		if bCost < pCost {
			res.Primary, res.Backup = res.Backup, res.Primary
		}
		res.PathLoad = pathLoad(net, res.Primary, res.Backup)
		return res, true
	}
	return nil, false
}
