// Package trace is a fixture recorder whose Flush and Close surface buffered
// write errors; dropping them loses data silently.
package trace

// Recorder buffers trace events.
type Recorder struct{ pending int }

// Record queues one event.
func (r *Recorder) Record(v int) { r.pending++ }

// Flush drains the buffer and reports the first write error.
func (r *Recorder) Flush() error {
	r.pending = 0
	return nil
}

// Close flushes and releases the sink.
func (r *Recorder) Close() error { return r.Flush() }
