package rules

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// FreshRouter guards the zero-allocation hot path: the package-level routing
// functions (core.ApproxMinCost and friends) build a throwaway Router — a
// fresh auxiliary-graph skeleton and Suurballe workspace — per call. That is
// fine for a one-shot CLI invocation and ruinous inside a loop or in the
// packages that route per simulated arrival; those must hold a reusable
// core.Router so the skeleton cache and workspaces amortise.
var FreshRouter = &lint.Analyzer{
	Name: "freshrouter",
	Doc:  "fresh-router wrappers (core.ApproxMinCost, …) must not be called in loops or hot-path packages",
	Run:  runFreshRouter,
}

const frPkg = "core"

var frWrappers = map[string]bool{
	"ApproxMinCost":             true,
	"ApproxMinCostNodeDisjoint": true,
	"MinLoad":                   true,
	"MinLoadCost":               true,
	"TwoStepMinCost":            true,
	"OptimalLoadOracle":         true,
}

// frHotPackages route per request/arrival and must always use a Router.
var frHotPackages = []string{"netsim", "provision", "reconfig"}

func runFreshRouter(p *lint.Pass) {
	if lint.PkgPathIs(p.Pkg, frPkg) {
		return // the defining package implements the wrappers
	}
	hot := false
	for _, h := range frHotPackages {
		if lint.PkgPathIs(p.Pkg, h) {
			hot = true
			break
		}
	}
	for _, f := range p.Files {
		lint.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			name, ok := frWrapperCallee(p, call)
			if !ok {
				return
			}
			switch {
			case hot:
				p.Reportf(call.Pos(),
					"hot-path package %s calls core.%s, which builds a throwaway Router per call; hold a reusable core.Router",
					p.Pkg.Name(), name)
			case inLoop(stack):
				p.Reportf(call.Pos(),
					"core.%s inside a loop rebuilds the auxiliary graph every iteration; hoist a core.Router out of the loop",
					name)
			}
		})
	}
}

// frWrapperCallee resolves call's callee and reports whether it is one of the
// package-level core wrappers.
func frWrapperCallee(p *lint.Pass, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return "", false
	}
	fn, ok := p.ObjectOf(id).(*types.Func)
	if !ok || !frWrappers[fn.Name()] || !lint.PkgPathIs(fn.Pkg(), frPkg) {
		return "", false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", false // Router methods are exactly the fix
	}
	return fn.Name(), true
}

// inLoop reports whether any lexical ancestor is a for or range statement
// (function literals do not reset the search: a closure built fresh inside a
// loop still pays the per-call rebuild on every iteration it runs in).
func inLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}
