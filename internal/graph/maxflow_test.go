package graph

import (
	"math/rand"
	"testing"
)

func TestEdgeConnectivityBasics(t *testing.T) {
	g := diamond()
	// Diamond: two edge-disjoint 0→3 paths exist (0-1-3 and 0-2-3).
	if c := g.EdgeConnectivity(0, 3); c != 2 {
		t.Fatalf("connectivity = %d, want 2", c)
	}
	if c := g.EdgeConnectivity(3, 0); c != 0 {
		t.Fatalf("reverse connectivity = %d, want 0", c)
	}
	if g.EdgeConnectivity(0, 0) != 0 || g.EdgeConnectivity(-1, 3) != 0 {
		t.Fatal("degenerate queries should return 0")
	}
}

func TestEdgeConnectivityParallel(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 0, 1) // self-loop ignored
	if c := g.EdgeConnectivity(0, 1); c != 3 {
		t.Fatalf("connectivity = %d, want 3", c)
	}
}

func TestEdgeConnectivityRespectsDisabled(t *testing.T) {
	g := New(2)
	a := g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 1)
	g.Disable(a)
	if c := g.EdgeConnectivity(0, 1); c != 1 {
		t.Fatalf("connectivity = %d, want 1", c)
	}
}

func TestEdgeConnectivityTrap(t *testing.T) {
	// The Suurballe trap still has exactly 2 disjoint paths.
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 5, 2)
	g.AddEdge(0, 3, 2)
	g.AddEdge(3, 4, 2)
	if c := g.EdgeConnectivity(0, 5); c != 2 {
		t.Fatalf("connectivity = %d, want 2", c)
	}
}

// Menger cross-validation: the max-flow value equals the minimum s–t edge
// cut, enumerated exhaustively on small graphs.
func TestEdgeConnectivityMatchesMinCut(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(5)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v, 1)
			}
		}
		s, d := 0, n-1
		got := g.EdgeConnectivity(s, d)
		// Independent oracle: brute-force max edge-disjoint path packing by
		// greedy path removal with backtracking via max-flow duality is
		// overkill; instead verify via min-cut enumeration on small graphs:
		// connectivity = min over subsets S∋s,∌d of edges crossing S.
		minCut := 1 << 30
		for mask := 0; mask < 1<<n; mask++ {
			if mask&(1<<s) == 0 || mask&(1<<d) != 0 {
				continue
			}
			cut := 0
			for id := 0; id < g.M(); id++ {
				e := g.Edge(id)
				if e.From != e.To && mask&(1<<e.From) != 0 && mask&(1<<e.To) == 0 {
					cut++
				}
			}
			if cut < minCut {
				minCut = cut
			}
		}
		if got != minCut {
			t.Fatalf("trial %d: maxflow %d != mincut %d", trial, got, minCut)
		}
	}
}

func BenchmarkEdgeConnectivity(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := New(200)
	for i := 0; i < 1200; i++ {
		u, v := rng.Intn(200), rng.Intn(200)
		if u != v {
			g.AddEdge(u, v, 1)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.EdgeConnectivity(i%200, (i+100)%200)
	}
}
