package lint

import (
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression comment:
//
//	//wdmlint:ignore <rule> <reason...>
//
// placed either on the line of the finding or on its own line directly above.
const directivePrefix = "//wdmlint:ignore"

// directive is one parsed ignore comment.
type directive struct {
	rule   string
	reason string
	pos    token.Position
}

// directives extracts every wdmlint:ignore comment of the package, keyed by
// file name then line. Malformed entries get rule "" and are reported by
// malformedDirectives.
func directives(pkg *Package) map[string]map[int]directive {
	out := map[string]map[int]directive{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				fields := strings.Fields(rest)
				pos := pkg.Fset.Position(c.Pos())
				d := directive{pos: pos}
				if len(fields) >= 2 {
					d.rule = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				m := out[pos.Filename]
				if m == nil {
					m = map[int]directive{}
					out[pos.Filename] = m
				}
				m[pos.Line] = d
			}
		}
	}
	return out
}

// malformedDirectives reports ignore comments missing their rule or reason.
func malformedDirectives(pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, byLine := range directives(pkg) {
		for _, d := range byLine {
			if d.rule == "" {
				out = append(out, Diagnostic{
					Rule:    "wdmlint",
					Pos:     d.pos,
					Message: "malformed directive: want //wdmlint:ignore <rule> <reason>",
					Package: pkg.Types.Path(),
				})
			}
		}
	}
	return out
}

// applySuppressions marks diagnostics covered by a matching directive on the
// same line or the line directly above.
func applySuppressions(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	byPkg := map[string]map[string]map[int]directive{}
	for _, pkg := range pkgs {
		byPkg[pkg.Types.Path()] = directives(pkg)
	}
	for i, d := range diags {
		if d.Rule == "wdmlint" {
			continue // malformed-directive findings cannot be suppressed
		}
		byLine := byPkg[d.Package][d.Pos.Filename]
		if byLine == nil {
			continue
		}
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			if dir, ok := byLine[line]; ok && dir.rule == d.Rule {
				diags[i].Suppress = true
				break
			}
		}
	}
	return diags
}
