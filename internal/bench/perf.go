package bench

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/topo"
	"repro/internal/wdm"
	"repro/internal/workload"
)

// PerfMeasure is one side of a before/after performance comparison, taken
// with testing.Benchmark.
type PerfMeasure struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Ops         int     `json:"ops"`
}

// PerfComparison pits the one-shot path (a fresh auxiliary graph and search
// state per call) against the reusable-Router hot path on the same workload.
type PerfComparison struct {
	Name           string      `json:"name"`
	Desc           string      `json:"desc"`
	Before         PerfMeasure `json:"before"`
	After          PerfMeasure `json:"after"`
	Speedup        float64     `json:"speedup"`         // Before.NsPerOp / After.NsPerOp
	AllocReduction float64     `json:"alloc_reduction"` // Before.AllocsPerOp / After.AllocsPerOp
}

func measure(f func(b *testing.B)) PerfMeasure {
	r := testing.Benchmark(f)
	return PerfMeasure{
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		Ops:         r.N,
	}
}

func compare(name, desc string, before, after PerfMeasure) PerfComparison {
	c := PerfComparison{Name: name, Desc: desc, Before: before, After: after}
	if after.NsPerOp > 0 {
		c.Speedup = before.NsPerOp / after.NsPerOp
	}
	if after.AllocsPerOp > 0 {
		c.AllocReduction = float64(before.AllocsPerOp) / float64(after.AllocsPerOp)
	}
	return c
}

// preloadedNSFNET returns NSFNET with a deterministic fraction of wavelengths
// reserved, so the MinCog threshold search has real load structure to search
// over (several distinct per-link ratios → multiple rounds).
func preloadedNSFNET(w int, p float64, seed int64) *wdm.Network {
	net := topo.NSFNET(topo.Config{W: w})
	rng := rand.New(rand.NewSource(seed))
	for id := 0; id < net.Links(); id++ {
		for lam := 0; lam < w; lam++ {
			if rng.Float64() < p {
				net.Use(id, wdm.Wavelength(lam))
			}
		}
	}
	return net
}

// PerfSuite runs the before/after benchmark arms:
//
//   - route: a single ApproxMinCost request on NSFNET (W=8) — fresh
//     construction per call vs a warm Router reweighting its cached skeleton.
//   - mincog: a MinLoad request on a 40%-preloaded NSFNET, where the
//     threshold search historically rebuilt the auxiliary graph every round.
//   - candidate: the same warm request through the exact pipeline vs the
//     precomputed candidate-path fast tier (bitset admission + fixed-route
//     assignment DP, exact fallback).
//   - sim: a full dynamic-traffic simulation (200 Poisson arrivals, active
//     restoration) — the before arm forces per-arrival one-shot routing via
//     Config.RouteFunc, the after arm is the production configuration:
//     shared warm router, incremental reweight, pooled sim loop, candidate
//     tier with a precomputed table.
//
// The route/mincog/sim arm definitions match the earlier BENCH_PR*.json
// files, so after-vs-after across files measures this PR's work. The exact
// and candidate arms route the same requests; the harness's candidate arm
// asserts feasibility equality and the cost gate differentially.
func PerfSuite() []PerfComparison {
	var out []PerfComparison

	{
		net := topo.NSFNET(topo.Config{W: 8})
		before := measure(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.ApproxMinCost(net, 0, 9, nil) //wdmlint:ignore freshrouter the before-arm measures the fresh one-shot path on purpose
			}
		})
		r := core.NewRouter(nil)
		r.ApproxMinCost(net, 0, 9) // warm up skeleton + workspaces
		after := measure(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r.ApproxMinCost(net, 0, 9)
			}
		})
		out = append(out, compare("route_approx_min_cost",
			"single ApproxMinCost request, NSFNET W=8, pair 0->9", before, after))
	}

	{
		before := measure(func(b *testing.B) {
			b.ReportAllocs()
			net := preloadedNSFNET(8, 0.4, 5)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.MinLoad(net, 2, 11, nil) //wdmlint:ignore freshrouter the before-arm measures the fresh one-shot path on purpose
			}
		})
		after := measure(func(b *testing.B) {
			b.ReportAllocs()
			net := preloadedNSFNET(8, 0.4, 5)
			r := core.NewRouter(nil)
			r.MinLoad(net, 2, 11)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.MinLoad(net, 2, 11)
			}
		})
		out = append(out, compare("mincog_min_load",
			"MinLoad threshold search, 40%-preloaded NSFNET W=8, pair 2->11", before, after))
	}

	{
		// Candidate fast tier vs the exact pipeline, both warm, on a
		// preloaded network (so admission does real feasibility work).
		net := preloadedNSFNET(8, 0.4, 5)
		exactR := core.NewRouter(nil)
		exactR.ApproxMinCost(net, 0, 9)
		before := measure(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				exactR.ApproxMinCost(net, 0, 9)
			}
		})
		tab := core.NewCandidateTable(net, 4)
		candR := core.NewRouter(&core.Options{CandidateTable: tab, ReuseResult: true})
		candR.ApproxMinCost(net, 0, 9)
		after := measure(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				candR.ApproxMinCost(net, 0, 9)
			}
		})
		out = append(out, compare("route_candidate_tier",
			"single ApproxMinCost request, 40%-preloaded NSFNET W=8, pair 0->9: exact pipeline vs candidate fast tier", before, after))
	}

	{
		reqs := workload.Poisson(workload.PoissonConfig{
			Nodes: 14, ArrivalRate: 10, MeanHolding: 2, Count: 200, Seed: 7,
		})
		net := topo.NSFNET(topo.Config{W: 8})
		before := measure(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sim := netsim.New(net, netsim.Config{
					Algorithm: netsim.MinCost,
					// Force the pre-Router behaviour: a fresh one-shot
					// routing call (new aux graph + workspaces) per arrival.
					RouteFunc: func(n *wdm.Network, s, t int) (*core.Result, bool) {
						//wdmlint:ignore freshrouter the before-arm forces the pre-Router per-arrival rebuild on purpose
						return core.ApproxMinCost(n, s, t, nil)
					},
				})
				sim.Run(reqs)
			}
		})
		tab := core.NewCandidateTable(net, 4)
		after := measure(func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim := netsim.New(net, netsim.Config{
					Algorithm: netsim.MinCost,
					Opts:      &core.Options{CandidateTable: tab},
				})
				sim.Run(reqs)
			}
		})
		out = append(out, compare("sim_nsfnet_dynamic",
			"full event-driven sim, NSFNET W=8, 200 Poisson arrivals, active restoration; after = candidate tier + incremental reweight + pooled sim loop", before, after))
	}

	return out
}

// WritePerfJSON runs PerfSuite and writes the comparisons as indented JSON.
func WritePerfJSON(path string) error {
	data, err := json.MarshalIndent(PerfSuite(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
