// Package pprof is a fixture standing in for runtime/pprof: profile starts
// fail when another profile is already running, and a dropped error leaves an
// empty or stale profile in an incident bundle with no other symptom.
package pprof

import "io"

// StartCPUProfile begins a CPU profile into w; it fails if one is running.
func StartCPUProfile(w io.Writer) error { return nil }

// StopCPUProfile ends the running CPU profile (no error to drop).
func StopCPUProfile() {}

// WriteHeapProfile snapshots the heap into w.
func WriteHeapProfile(w io.Writer) error { return nil }
