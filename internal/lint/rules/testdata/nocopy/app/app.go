// Package app exercises the nocopy rule against the fixture workspace.
package app

import "fix/nocopy/graph"

// Holder embeds a workspace by value: containment is fine; copying Holder
// copies the workspace and is flagged wherever it happens.
type Holder struct {
	WS graph.Workspace
}

// UsePtr passes by pointer: clean.
func UsePtr(ws *graph.Workspace) { ws.Reset() }

// UseValue passes by value: finding (parameter).
func UseValue(ws graph.Workspace) int { return ws.Len() }

// CopyOut returns a copy: finding (result type), finding (assignment).
func CopyOut(ws *graph.Workspace) graph.Workspace {
	w := *ws
	return w
}

// Fresh zero values and composite literals are clean.
func Fresh() *graph.Workspace {
	var ws graph.Workspace
	w2 := &graph.Workspace{}
	w2.Reset()
	return &ws
}

// RangeCopy iterates holders by value: finding (range).
func RangeCopy(hs []Holder) int {
	n := 0
	for _, h := range hs {
		n += int(h.WS.Gen())
	}
	return n
}

// PassValue hands a dereferenced workspace to an any-sink: finding (call).
func PassValue(ws *graph.Workspace, sink func(any)) {
	sink(*ws)
}

// Snapshot deliberately copies a quiesced workspace; the directive records it.
func Snapshot(ws *graph.Workspace) graph.Workspace { //wdmlint:ignore nocopy test-only snapshot of a quiesced workspace
	return *ws
}
