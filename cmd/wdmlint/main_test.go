package main

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/rules"
)

// TestRepoClean is the self-gate: the repository must lint clean under every
// analyzer, so any new finding fails the build until fixed or suppressed with
// a reasoned directive.
func TestRepoClean(t *testing.T) {
	pkgs, err := lint.Load("", "repro/...")
	if err != nil {
		t.Fatalf("loading repository packages: %v", err)
	}
	diags := lint.Run(pkgs, rules.All)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("wdmlint found %d finding(s) in the repository; fix them or add a //wdmlint:ignore <rule> <reason> directive", len(diags))
	}
}

// TestSelectRules exercises the -rules flag parser against the registry.
func TestSelectRules(t *testing.T) {
	all, err := selectRules("")
	if err != nil || len(all) != len(rules.All) {
		t.Fatalf("selectRules(\"\") = %d analyzers, err %v; want all %d", len(all), err, len(rules.All))
	}
	two, err := selectRules("mapdet,nocopy")
	if err != nil || len(two) != 2 {
		t.Fatalf("selectRules(\"mapdet,nocopy\") = %d analyzers, err %v; want 2", len(two), err)
	}
	if _, err := selectRules("nosuchrule"); err == nil {
		t.Fatal("selectRules(\"nosuchrule\") succeeded; want error")
	}
}
