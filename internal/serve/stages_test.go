package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/slo"
)

// withMetrics routes the package instruments through a fresh registry for one
// test and restores the disabled default afterwards. Register it before
// startEngine so the engine closes (and stops observing) before the restore.
func withMetrics(t *testing.T) *metrics.Registry {
	t.Helper()
	reg := metrics.NewRegistry()
	EnableMetrics(reg)
	t.Cleanup(func() { EnableMetrics(nil) })
	return reg
}

func timerSum(t *metrics.Timer) float64 { return t.Hist().Sum() }

// TestStageSumMatchesRequestTime pins the attribution identity the stage
// timers are designed around: every microsecond of wdmd_request_seconds lands
// in exactly one of queue/snapshot/route/commit/reroute, so the five stage
// sums reproduce the end-to-end sum. 5% tolerance absorbs float folding and
// clock granularity; real drift (a stage segment lost or double-counted)
// shows up as tens of percent.
func TestStageSumMatchesRequestTime(t *testing.T) {
	withMetrics(t)
	e := startEngine(t, nsf(8), Config{Candidates: 4})
	n := 100000
	if testing.Short() {
		n = 10000
	}
	rep, err := RunSoak(e, SoakConfig{
		Requests:     n,
		Clients:      8,
		Seed:         3,
		RerouteEvery: 25,
		Drain:        true,
	})
	if err != nil {
		t.Fatalf("soak: %v\n%s", err, rep)
	}

	total := timerSum(instr.requestTime)
	stages := timerSum(instr.stageQueue) + timerSum(instr.stageSnapshot) +
		timerSum(instr.stageRoute) + timerSum(instr.stageCommit) + timerSum(instr.stageReroute)
	if total <= 0 {
		t.Fatalf("request timer empty after %d requests", n)
	}
	if drift := math.Abs(stages-total) / total; drift > 0.05 {
		t.Fatalf("stage sums drift %.1f%% from request time: stages %.4fs, total %.4fs",
			drift*100, stages, total)
	}

	// Every request through the pipeline is observed exactly once at both
	// ends of the identity.
	if qc, rc := instr.stageQueue.Hist().Count(), instr.requestTime.Hist().Count(); qc != rc {
		t.Fatalf("queue count %d != request count %d", qc, rc)
	}
	// The candidate/exact pair partitions the route stage.
	rc := instr.stageRoute.Hist().Count()
	cand, exact := instr.stageRouteCand.Hist().Count(), instr.stageRouteEx.Hist().Count()
	if cand+exact != rc {
		t.Fatalf("route tier split %d+%d != route count %d", cand, exact, rc)
	}
	if cand == 0 {
		t.Fatal("candidate tier never answered with Candidates: 4")
	}

	// Per-shard attribution covers every shard and accounts for every op the
	// shards processed.
	st := e.Status()
	if len(st.ShardDetail) != st.Shards {
		t.Fatalf("shard detail rows %d, want %d", len(st.ShardDetail), st.Shards)
	}
	var ops int64
	for _, sd := range st.ShardDetail {
		ops += sd.Ops
	}
	if want := instr.requestTime.Hist().Count(); ops != want {
		t.Fatalf("shard ops %d != pipelined requests %d", ops, want)
	}
}

// TestRequestIDHeaderJoinsFlight drives a traced provision over HTTP and
// follows the X-Wdmd-Req header into /debug/flight?req=<id> — the exact join
// an operator does when one response comes back slow.
func TestRequestIDHeaderJoinsFlight(t *testing.T) {
	tr := obs.New(obs.Config{Capacity: 64})
	e := startEngine(t, nsf(8), Config{Window: 1, Tracer: tr})
	srv := httptest.NewServer(e.Handler(nil))
	t.Cleanup(srv.Close)

	httpResp, resp := postJSON(t, srv.URL+"/provision", `{"id":1,"src":0,"dst":9}`)
	if !resp.Accepted {
		t.Fatalf("provision rejected: %+v", resp)
	}
	hdr := httpResp.Header.Get("X-Wdmd-Req")
	if resp.Req <= 0 || hdr != strconv.FormatInt(resp.Req, 10) {
		t.Fatalf("response req %d, X-Wdmd-Req %q — header must echo the trace ID", resp.Req, hdr)
	}

	fl, err := http.Get(srv.URL + "/debug/flight?req=" + hdr)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(fl.Body)
	_ = fl.Body.Close()
	if fl.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("/debug/flight?req=%s = %d %q", hdr, fl.StatusCode, body)
	}
	var rec struct {
		Req int64 `json:"req"`
	}
	if err := json.Unmarshal(body[:len(body)-1], &rec); err != nil || rec.Req != resp.Req {
		t.Fatalf("filtered dump line %q: err %v, req %d want %d", body, err, rec.Req, resp.Req)
	}

	// Bad and missing req= filters answer structured errors, not dumps.
	for q, want := range map[string]int{
		"req=abc":    http.StatusBadRequest,
		"req=-5":     http.StatusBadRequest,
		"req=999999": http.StatusNotFound,
	} {
		r2, err := http.Get(srv.URL + "/debug/flight?" + q)
		if err != nil {
			t.Fatal(err)
		}
		b2, _ := io.ReadAll(r2.Body)
		_ = r2.Body.Close()
		if r2.StatusCode != want {
			t.Fatalf("?%s = %d, want %d", q, r2.StatusCode, want)
		}
		var e2 struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(b2, &e2); err != nil || e2.Error == "" {
			t.Fatalf("?%s body %q is not a JSON error", q, b2)
		}
	}
}

// TestScrapeUnderLoad is the observability race gate: 16 client goroutines
// hammer /provision + /teardown over real HTTP while a scraper loops over
// /debug/slo, /debug/incidents, /debug/timeseries and /status — with a
// deliberately unmeetable SLO attached so the watchdog transitions and the
// capturer fires mid-load. Run under -race in CI.
func TestScrapeUnderLoad(t *testing.T) {
	wd, err := slo.New(
		slo.Objective{Name: "p99", Series: SeriesRequestLatency, Kind: slo.KindP99, Max: 1e-9,
			ShortWindows: 1, LongWindows: 1, ShortBurn: 1, LongBurn: 1},
		slo.Objective{Name: "blocking", Series: SeriesBlocking, Kind: slo.KindRatio, Max: 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	capt, err := slo.NewCapturer(slo.CaptureConfig{Dir: t.TempDir(), MinInterval: time.Millisecond, CPUProfile: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	e := New(nsf(8), Config{Window: 0.05})
	if err := e.AttachSLO(wd, capt); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := e.Close(); err != nil {
			t.Errorf("engine close: %v", err)
		}
		capt.Wait()
	})
	srv := httptest.NewServer(e.Handler(nil))
	t.Cleanup(srv.Close)

	stop := make(chan struct{})
	var scrape sync.WaitGroup
	scrape.Add(1)
	go func() {
		defer scrape.Done()
		paths := []string{"/debug/slo", "/debug/incidents", "/debug/timeseries?last=4", "/status"}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := http.Get(srv.URL + paths[i%len(paths)])
			if err != nil {
				t.Errorf("scrape %s: %v", paths[i%len(paths)], err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("scrape %s = %d", paths[i%len(paths)], resp.StatusCode)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			reqs := 150
			if testing.Short() {
				reqs = 40
			}
			for k := 0; k < reqs; k++ {
				id := int64(client)<<32 | int64(k)
				body := fmt.Sprintf(`{"id":%d,"src":%d,"dst":%d}`, id, client%14, (client+7)%14)
				_, resp := postJSON(t, srv.URL+"/provision", body)
				if resp.Accepted {
					postJSON(t, srv.URL+"/teardown", fmt.Sprintf(`{"id":%d}`, id))
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	scrape.Wait()

	// The watchdog state must be scrapeable and well-formed after the storm.
	resp, err := http.Get(srv.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var st slo.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("/debug/slo: %v", err)
	}
	if len(st.Objectives) != 2 {
		t.Fatalf("objectives = %d, want 2 (%+v)", len(st.Objectives), st)
	}
}
