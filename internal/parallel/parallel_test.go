package parallel

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	got := Map(100, 8, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestMapZeroAndOne(t *testing.T) {
	if got := Map(0, 4, func(i int) int { return i }); len(got) != 0 {
		t.Fatal("empty map should return empty slice")
	}
	if got := Map(1, 4, func(i int) int { return 7 }); got[0] != 7 {
		t.Fatal("single task wrong")
	}
}

func TestMapSerialFallback(t *testing.T) {
	got := Map(10, 1, func(i int) int { return i + 1 })
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

func TestMapDefaultWorkers(t *testing.T) {
	var calls int64
	Map(50, 0, func(i int) int {
		atomic.AddInt64(&calls, 1)
		return i
	})
	if calls != 50 {
		t.Fatalf("calls = %d", calls)
	}
}

func TestMapEachIndexOnce(t *testing.T) {
	n := 1000
	seen := make([]int64, n)
	Map(n, 16, func(i int) struct{} {
		atomic.AddInt64(&seen[i], 1)
		return struct{}{}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d executed %d times", i, c)
		}
	}
}

func TestMapNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative n should panic")
		}
	}()
	Map(-1, 2, func(i int) int { return i })
}

func TestForEach(t *testing.T) {
	var sum int64
	ForEach(100, 4, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestReduceDeterministic(t *testing.T) {
	// Non-commutative combine (string append) must still be deterministic
	// because folding happens in index order.
	got := Reduce(5, 4, "", func(i int) string {
		return string(rune('a' + i))
	}, func(acc, s string) string { return acc + s })
	if got != "abcde" {
		t.Fatalf("Reduce = %q", got)
	}
}

func TestReduceSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	want := 0.0
	for i := range xs {
		xs[i] = rng.Float64()
		want += xs[i]
	}
	got := Reduce(len(xs), 8, 0.0, func(i int) float64 { return xs[i] },
		func(a, x float64) float64 { return a + x })
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	fn := func(i int) int { return i*31 + 7 }
	serial := Map(200, 1, fn)
	para := Map(200, 16, fn)
	for i := range serial {
		if serial[i] != para[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func BenchmarkMapOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Map(64, 0, func(i int) int { return i })
	}
}
