package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// undirectedPair adds both directions of a span and returns both IDs.
func undirectedPair(g *Graph, a, b int) (int, int) {
	return g.AddEdge(a, b, 1), g.AddEdge(b, a, 1)
}

func TestBridgesLine(t *testing.T) {
	g := New(3)
	undirectedPair(g, 0, 1)
	undirectedPair(g, 1, 2)
	br := g.Bridges()
	if len(br) != 4 { // both spans, each with 2 directed edges
		t.Fatalf("bridges = %v, want all 4 edges", br)
	}
	if g.TwoEdgeConnected() {
		t.Fatal("line should not be 2-edge-connected")
	}
}

func TestBridgesRing(t *testing.T) {
	g := New(5)
	for v := 0; v < 5; v++ {
		undirectedPair(g, v, (v+1)%5)
	}
	if br := g.Bridges(); len(br) != 0 {
		t.Fatalf("ring has bridges: %v", br)
	}
	if !g.TwoEdgeConnected() {
		t.Fatal("ring should be 2-edge-connected")
	}
}

func TestBridgesBarbell(t *testing.T) {
	// Two triangles joined by one span: only the joining span bridges.
	g := New(6)
	undirectedPair(g, 0, 1)
	undirectedPair(g, 1, 2)
	undirectedPair(g, 2, 0)
	undirectedPair(g, 3, 4)
	undirectedPair(g, 4, 5)
	undirectedPair(g, 5, 3)
	a, b := undirectedPair(g, 2, 3)
	br := g.Bridges()
	sort.Ints(br)
	if len(br) != 2 || br[0] != a || br[1] != b {
		t.Fatalf("bridges = %v, want [%d %d]", br, a, b)
	}
}

func TestParallelFibersStillBridgeAsOneConduit(t *testing.T) {
	// Parallel fibers between the same endpoints share the conduit: the
	// span is still a bridge (a conduit cut removes them all).
	g := New(2)
	undirectedPair(g, 0, 1)
	undirectedPair(g, 0, 1)
	if br := g.Bridges(); len(br) != 4 {
		t.Fatalf("doubled conduit must bridge: %v", br)
	}
	if g.TwoEdgeConnected() {
		t.Fatal("parallel fibers in one conduit are not survivable")
	}
	// Two node-disjoint conduits are survivable.
	g2 := New(3)
	undirectedPair(g2, 0, 1)
	undirectedPair(g2, 1, 2)
	undirectedPair(g2, 0, 2)
	if !g2.TwoEdgeConnected() {
		t.Fatal("triangle should be 2-edge-connected")
	}
}

func TestBridgesDisconnected(t *testing.T) {
	g := New(4)
	undirectedPair(g, 0, 1)
	undirectedPair(g, 2, 3)
	if len(g.Bridges()) != 4 {
		t.Fatal("both isolated spans are bridges")
	}
	if g.TwoEdgeConnected() {
		t.Fatal("disconnected graph is not 2-edge-connected")
	}
}

func TestBridgesRespectDisabled(t *testing.T) {
	g := New(3)
	undirectedPair(g, 0, 1)
	undirectedPair(g, 1, 2)
	c1, c2 := undirectedPair(g, 0, 2) // close the triangle
	if len(g.Bridges()) != 0 {
		t.Fatal("triangle has no bridges")
	}
	g.Disable(c1)
	g.Disable(c2)
	if len(g.Bridges()) != 4 {
		t.Fatal("disabling the closing span should expose both bridges")
	}
}

func TestBridgesSelfLoopIgnored(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 0, 1)
	undirectedPair(g, 0, 1)
	undirectedPair(g, 1, 2)
	undirectedPair(g, 0, 2)
	if len(g.Bridges()) != 0 {
		t.Fatal("self-loop misclassified")
	}
}

func TestEmptyGraphTwoEdgeConnected(t *testing.T) {
	if !New(0).TwoEdgeConnected() {
		t.Fatal("empty graph is vacuously 2-edge-connected")
	}
	if New(2).TwoEdgeConnected() {
		t.Fatal("edgeless 2-vertex graph is disconnected")
	}
}

// Cross-check against brute force: a span is a bridge iff disabling it
// disconnects the underlying undirected graph.
func TestBridgesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	undirectedConnected := func(g *Graph) bool {
		seen := make([]bool, g.N())
		stack := []int{0}
		seen[0] = true
		count := 1
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			visit := func(u int) {
				if !seen[u] {
					seen[u] = true
					count++
					stack = append(stack, u)
				}
			}
			for _, id := range g.Out(v) {
				if !g.Disabled(id) {
					visit(g.Edge(id).To)
				}
			}
			for _, id := range g.In(v) {
				if !g.Disabled(id) {
					visit(g.Edge(id).From)
				}
			}
		}
		return count == g.N()
	}
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(5)
		g := New(n)
		// Random connected-ish undirected multigraph.
		for v := 1; v < n; v++ {
			undirectedPair(g, v, rng.Intn(v))
		}
		for i := 0; i < n/2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				undirectedPair(g, u, v)
			}
		}
		got := map[int]bool{}
		for _, id := range g.Bridges() {
			got[id] = true
		}
		// Brute force per span: disable all edges of the span, test
		// connectivity.
		type span struct{ a, b int }
		spans := map[span][]int{}
		for id := 0; id < g.M(); id++ {
			e := g.Edge(id)
			a, b := e.From, e.To
			if a > b {
				a, b = b, a
			}
			spans[span{a, b}] = append(spans[span{a, b}], id)
		}
		for _, ids := range spans {
			for _, id := range ids {
				g.Disable(id)
			}
			isBridge := !undirectedConnected(g)
			for _, id := range ids {
				g.Enable(id)
			}
			for _, id := range ids {
				if got[id] != isBridge {
					t.Fatalf("trial %d: edge %d bridge=%v, brute=%v", trial, id, got[id], isBridge)
				}
			}
		}
	}
}
