// Package auxgraph builds the edge-node auxiliary graphs of the paper. All
// three variants share one skeleton — two edge-nodes per physical link
// (u_out^e at the tail, v_in^e at the head), a link edge between them,
// conversion edges v_in^e → v_out^e' inside every node, and the special
// terminals s′ and t″ — and differ only in the link filter and the weight
// assignment:
//
//   - Cost (G′, §3.3.1): link edges weighted by the mean available-wavelength
//     cost Σ_{λ∈Λ_avail(e)} w(e,λ)/|Λ_avail(e)|; conversion edges by the mean
//     conversion cost Σ c_v(λa,λb)/K_v over allowed pairs.
//   - Load (G_c, §4.1): only links with U(e)/N(e) < ϑ survive; link edges get
//     the exponential congestion weight a^{(U(e)+1)/N(e)} − a^{U(e)/N(e)};
//     conversion edges weigh 0.
//   - LoadCost (G_rc, §4.2): the Load filter with cost weights — link edges
//     get Σ_{λ∈Λ_avail(e)} w(e,λ)/N(e), conversion edges the mean conversion
//     cost as in G′.
//
// Because the skeleton depends only on the network's structure (links,
// installed wavelength sets, converters) and never on its residual state,
// construction is split in two: NewSkeleton builds the full vertex and edge
// inventory once per (net, s, t, node-disjointness), and Reweight flips the
// Disable bits of filtered links and rewrites edge weights in place — so a
// threshold search or a per-arrival router re-uses one skeleton instead of
// reallocating the graph for every variant it tries. Build remains the
// one-shot convenience wrapper (skeleton + one reweight).
//
// Two refinements keep the per-request cost flat under dynamic traffic:
//
//   - A shared skeleton (NewSharedSkeleton) carries terminal vertices s′_v and
//     t″_v for every node and enables only the requested pair's terminal edges
//     per ReweightAt call, so one skeleton serves every (s, t) in the
//     edge-disjoint regime instead of one build per pair.
//   - Reweight is incremental: link-edge weights and conversion-pair means are
//     cached per StateVersion and refreshed through the network's per-link
//     change journal (wdm.LinkStamp), so a reservation on one link recomputes
//     only the skeleton edges incident to that link. The cache is sound
//     because, while TopoVersion is unchanged (the Reweight precondition),
//     every StateVersion advance stems from an availability mutation that
//     stamps its link's journal entry.
package auxgraph

import (
	"math"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/wdm"
)

// Kind selects the auxiliary-graph variant.
type Kind int

const (
	// Cost is G′ of §3.3.1.
	Cost Kind = iota
	// Load is G_c of §4.1.
	Load
	// LoadCost is G_rc of §4.2.
	LoadCost
)

func (k Kind) String() string {
	switch k {
	case Cost:
		return "cost"
	case Load:
		return "load"
	case LoadCost:
		return "load-cost"
	}
	return "unknown"
}

// DefaultBase is the default exponent base a for the Load weights. Any a > 1
// realises the paper's heuristic; larger bases penalise loaded links more
// steeply.
const DefaultBase = 10.0

// Params configures Build and Reweight.
type Params struct {
	Kind Kind
	// Threshold is ϑ for Load/LoadCost: links with load ≥ ϑ are dropped.
	// Ignored by Cost.
	Threshold float64
	// Base is the exponent base a (> 1) for Load weights; DefaultBase if 0.
	Base float64
	// Filter, when non-nil, replaces the threshold test: a link survives iff
	// it has available wavelengths and Filter returns true. Used by exact
	// load oracles that need a per-link capacity cap.
	Filter func(linkID int) bool
	// NodeDisjoint routes all conversion edges of each intermediate node
	// through a unit-capacity hub gadget, so an edge-disjoint pair on the
	// auxiliary graph maps to an internally node-disjoint pair on the
	// physical network (protection against single node failures, §1). The
	// gadget assumes pairwise conversion feasibility at each node — exact
	// under the §3.3 full-conversion assumption; with restricted converters
	// the refinement step re-checks feasibility.
	NodeDisjoint bool
	// Trace, when non-nil, receives a "reweight" span per Reweight call with
	// the variant, threshold and surviving-link count. Nil costs nothing.
	Trace *obs.Trace
}

// Aux is a built auxiliary graph together with the bookkeeping needed to map
// paths back to the physical network. Links dropped by the current filter
// remain in the graph as vertices with their incident edges disabled; every
// traversal-facing accessor (OutNode, InNode, Dijkstra over G) sees exactly
// the surviving subgraph.
type Aux struct {
	G *graph.Graph
	S int // s′
	T int // t″

	net     *wdm.Network
	outNode []int  // outNode[e] = aux vertex of u_out^e
	inNode  []int  // inNode[e] = aux vertex of v_in^e
	keep    []bool // keep[e] = link e survives the current filter
}

// Skeleton is the reusable edge-node structure for one (net, s, t,
// node-disjointness) tuple. It is built once with NewSkeleton and
// re-weighted any number of times with Reweight, as long as the network's
// structure (TopoVersion) is unchanged; reservations and releases only
// change weights and filters, which Reweight recomputes in place.
//
// A Skeleton is not safe for concurrent use, and the *Aux returned by
// Reweight aliases the skeleton: a later Reweight rewrites it in place.
type Skeleton struct {
	aux          Aux
	s, t         int // fixed terminals; -1 on shared skeletons
	shared       bool
	nodeDisjoint bool
	topoVersion  uint64
	m            int // physical link count at build time

	linkEdge []int // linkEdge[e] = aux edge ID of e's link edge

	// All conversion pairs, grouped by node in construction order. Plain
	// pairs carry their conversion edge; pairs funneled through a hub gadget
	// carry edge -1 and are referenced by their hub's [pairLo, pairHi) range.
	pairs       []convPair
	pairOK      []bool    // cached avail-feasibility per pair
	pairMean    []float64 // cached mean conversion cost per pair
	pairsByLink [][]int32 // pair indices with ein or eout = link, for journal refresh
	pairsAt     uint64    // StateVersion the pair cache was computed at
	pairsOK     bool      // pair cache computed at least once

	// Cached link-edge weights, one cache per variant so algorithms that
	// alternate kinds (MinLoadCost's Load rounds then LoadCost pass) don't
	// thrash each other. Refreshed per link through the change journal.
	lw [3]weightCache

	hubs     []hubGadget
	termOut  []linkEdgeRef // s′ → u_out^e (fixed skeletons)
	termIn   []linkEdgeRef // v_in^e → t″ (fixed skeletons)
	spokeIn  []linkEdgeRef // v_in^e → hub_in(v), node-disjoint only
	spokeOut []linkEdgeRef // hub_out(v) → u_out^e, node-disjoint only

	// Shared-skeleton terminal machinery: per-node terminal vertices and
	// edge groups, plus the currently enabled pair.
	termOutNode [][]linkEdgeRef // s′_v → u_out^e, per node
	termInNode  [][]linkEdgeRef // v_in^e → t″_v, per node
	srcVertex   []int           // s′_v per node
	dstVertex   []int           // t″_v per node
	curS, curT  int             // terminals currently enabled; -1 before first ReweightAt
}

// weightCache holds one variant's per-link edge weights together with the
// StateVersion they were computed at; links whose journal stamp exceeds that
// version are recomputed on the next Reweight, all others are reused.
type weightCache struct {
	ok   bool
	at   uint64
	base float64 // exponent base the Load weights were computed with
	w    []float64
}

type convPair struct {
	edge      int // aux edge ID, or -1 for hub-gadget pairs
	node      int
	ein, eout int
}

type hubGadget struct {
	hubEdge        int // aux edge ID of hub_in(v) → hub_out(v)
	pairLo, pairHi int // this hub's range in Skeleton.pairs
}

type linkEdgeRef struct {
	edge int // aux edge ID
	link int // physical link whose keep bit gates the edge
}

// Build constructs the auxiliary graph for routing from s to t on the
// residual network. It panics on invalid s/t and never fails otherwise: an
// unroutable request simply yields a graph in which t″ is unreachable. It is
// the one-shot wrapper around NewSkeleton + Reweight; hot paths should hold
// a Skeleton (usually via core.Router) and Reweight it instead.
func Build(net *wdm.Network, s, t int, p Params) *Aux {
	return NewSkeleton(net, s, t, p.NodeDisjoint).Reweight(p)
}

// NewSkeleton builds the full edge-node skeleton for (s, t): vertices and
// edges for every physical link, conversion edges for every pair feasible
// under the installed wavelength sets (a superset of every residual
// feasibility), hub gadgets when nodeDisjoint, and the terminals. All edge
// weights are unset and all filterable edges enabled until the first
// Reweight. It panics on invalid s/t.
func NewSkeleton(net *wdm.Network, s, t int, nodeDisjoint bool) *Skeleton {
	if s < 0 || s >= net.Nodes() || t < 0 || t >= net.Nodes() {
		panic("auxgraph: source/destination out of range")
	}
	return newSkeleton(net, s, t, nodeDisjoint, false)
}

// NewSharedSkeleton builds one skeleton that serves every (s, t) pair of the
// edge-disjoint regime: it carries terminal vertices s′_v and t″_v with their
// terminal edges for every node, all disabled, and ReweightAt enables exactly
// the requested pair's terminals per call. Routers use it to amortise
// skeleton construction across all node pairs of a dynamic workload instead
// of building (and caching) one skeleton per pair. The node-disjoint variant
// still needs per-pair skeletons — its hub gadgets exempt s and t — so there
// is no shared form for it.
func NewSharedSkeleton(net *wdm.Network) *Skeleton {
	return newSkeleton(net, -1, -1, false, true)
}

func newSkeleton(net *wdm.Network, s, t int, nodeDisjoint, shared bool) *Skeleton {
	defer instr.buildTime.Stop(instr.buildTime.Start())
	m := net.Links()
	sk := &Skeleton{
		s:            s,
		t:            t,
		shared:       shared,
		nodeDisjoint: nodeDisjoint,
		topoVersion:  net.TopoVersion(),
		m:            m,
		linkEdge:     make([]int, m),
		curS:         -1,
		curT:         -1,
	}
	a := &sk.aux
	a.net = net
	a.outNode = make([]int, m)
	a.inNode = make([]int, m)
	a.keep = make([]bool, m)

	// Vertex layout: for link e, out-node 2e, in-node 2e+1; then the
	// terminals — one s′/t″ pair for fixed skeletons, one per node for shared
	// ones; then one hub in/out pair per intermediate node when node-disjoint.
	for id := 0; id < m; id++ {
		a.outNode[id] = 2 * id
		a.inNode[id] = 2*id + 1
	}
	nv := 2 * m
	if shared {
		sk.srcVertex = make([]int, net.Nodes())
		sk.dstVertex = make([]int, net.Nodes())
		for v := range sk.srcVertex {
			sk.srcVertex[v] = nv
			sk.dstVertex[v] = nv + 1
			nv += 2
		}
		a.S, a.T = -1, -1 // set by ReweightAt
	} else {
		a.S = nv
		a.T = nv + 1
		nv += 2
	}
	var hubIn, hubOut []int
	if nodeDisjoint {
		hubIn = make([]int, net.Nodes())
		hubOut = make([]int, net.Nodes())
		for v := range hubIn {
			if v == s || v == t {
				hubIn[v], hubOut[v] = -1, -1
				continue
			}
			hubIn[v] = nv
			hubOut[v] = nv + 1
			nv += 2
		}
	}
	a.G = graph.New(nv)

	// Link edges u_out^e → v_in^e.
	for id := 0; id < m; id++ {
		sk.linkEdge[id] = a.G.AddEdgeAux(a.outNode[id], a.inNode[id], 0, id)
	}

	// Conversion edges inside each node: v_in^e → v_out^e' for every pair
	// with at least one feasible conversion over the installed sets (pairs
	// infeasible even at full availability can never become feasible). Under
	// the node-disjoint variant the edges of intermediate nodes are funneled
	// through a unit-capacity hub instead.
	for v := 0; v < net.Nodes(); v++ {
		conv := net.Converter(v)
		if nodeDisjoint && v != s && v != t {
			lo := len(sk.pairs)
			for _, ein := range net.In(v) {
				for _, eout := range net.Out(v) {
					if installedFeasible(net, conv, ein, eout) {
						sk.pairs = append(sk.pairs, convPair{edge: -1, node: v, ein: ein, eout: eout})
					}
				}
			}
			if len(sk.pairs) == lo {
				continue // node can never be traversed
			}
			hubEdge := a.G.AddEdgeAux(hubIn[v], hubOut[v], 0, -1)
			sk.hubs = append(sk.hubs, hubGadget{hubEdge: hubEdge, pairLo: lo, pairHi: len(sk.pairs)})
			for _, ein := range net.In(v) {
				e := a.G.AddEdgeAux(a.inNode[ein], hubIn[v], 0, -1)
				sk.spokeIn = append(sk.spokeIn, linkEdgeRef{edge: e, link: ein})
			}
			for _, eout := range net.Out(v) {
				e := a.G.AddEdgeAux(hubOut[v], a.outNode[eout], 0, -1)
				sk.spokeOut = append(sk.spokeOut, linkEdgeRef{edge: e, link: eout})
			}
			continue
		}
		for _, ein := range net.In(v) {
			for _, eout := range net.Out(v) {
				if !installedFeasible(net, conv, ein, eout) {
					continue
				}
				e := a.G.AddEdgeAux(a.inNode[ein], a.outNode[eout], 0, -1)
				sk.pairs = append(sk.pairs, convPair{edge: e, node: v, ein: ein, eout: eout})
			}
		}
	}
	sk.pairOK = make([]bool, len(sk.pairs))
	sk.pairMean = make([]float64, len(sk.pairs))
	sk.pairsByLink = make([][]int32, m)
	for i, cp := range sk.pairs {
		sk.pairsByLink[cp.ein] = append(sk.pairsByLink[cp.ein], int32(i))
		if cp.eout != cp.ein {
			sk.pairsByLink[cp.eout] = append(sk.pairsByLink[cp.eout], int32(i))
		}
	}

	// Terminals. Shared skeletons get every node's terminal edges, disabled
	// until a ReweightAt selects the pair; fixed skeletons get s and t only.
	if shared {
		sk.termOutNode = make([][]linkEdgeRef, net.Nodes())
		sk.termInNode = make([][]linkEdgeRef, net.Nodes())
		for v := 0; v < net.Nodes(); v++ {
			for _, e1 := range net.Out(v) {
				e := a.G.AddEdgeAux(sk.srcVertex[v], a.outNode[e1], 0, -1)
				a.G.Disable(e)
				sk.termOutNode[v] = append(sk.termOutNode[v], linkEdgeRef{edge: e, link: e1})
			}
			for _, e2 := range net.In(v) {
				e := a.G.AddEdgeAux(a.inNode[e2], sk.dstVertex[v], 0, -1)
				a.G.Disable(e)
				sk.termInNode[v] = append(sk.termInNode[v], linkEdgeRef{edge: e, link: e2})
			}
		}
	} else {
		for _, e1 := range net.Out(s) {
			e := a.G.AddEdgeAux(a.S, a.outNode[e1], 0, -1)
			sk.termOut = append(sk.termOut, linkEdgeRef{edge: e, link: e1})
		}
		for _, e2 := range net.In(t) {
			e := a.G.AddEdgeAux(a.inNode[e2], a.T, 0, -1)
			sk.termIn = append(sk.termIn, linkEdgeRef{edge: e, link: e2})
		}
	}
	instr.builds.Inc()
	instr.vertices.Observe(float64(a.G.N()))
	instr.edges.Observe(float64(a.G.M()))
	return sk
}

// Valid reports whether the network's structure is unchanged since the
// skeleton was built — the condition under which Reweight is allowed.
// Reservations and releases do not invalidate a skeleton.
func (sk *Skeleton) Valid() bool { return sk.aux.net.TopoVersion() == sk.topoVersion }

// Reweight recomputes the surviving-link filter and every edge weight in
// place from the network's current residual state and returns the aux-graph
// view. No vertices or edges are added or removed: dropped links and
// infeasible conversions are Disabled, everything else Enabled with its
// variant weight. The availability-dependent link weights and conversion
// means are cached per StateVersion and refreshed incrementally through the
// network's change journal — a reservation on one link recomputes only that
// link's weight and the conversion pairs incident to it, and a threshold
// search that only moves ϑ between rounds pays just the O(m + conv-edges)
// filter pass. It panics when the network structure changed since NewSkeleton
// (see Valid), when p.NodeDisjoint disagrees with the skeleton, on an invalid
// Base, or on a shared skeleton (which needs ReweightAt's terminal pair).
func (sk *Skeleton) Reweight(p Params) *Aux {
	if sk.shared {
		panic("auxgraph: shared skeleton has no fixed terminals; use ReweightAt")
	}
	return sk.reweight(p)
}

// ReweightAt selects (s, t) as the active terminal pair of a shared skeleton
// and reweights: the previous pair's terminal edges are disabled, the
// requested pair's are enabled (gated by the link filter), and everything
// else proceeds exactly as Reweight. On a fixed skeleton it accepts only the
// pair the skeleton was built for.
//
//wdm:hotpath
func (sk *Skeleton) ReweightAt(s, t int, p Params) *Aux {
	if !sk.shared {
		if s != sk.s || t != sk.t {
			panic("auxgraph: fixed skeleton built for a different (s, t); use NewSharedSkeleton")
		}
		return sk.reweight(p)
	}
	net := sk.aux.net
	if s < 0 || s >= net.Nodes() || t < 0 || t >= net.Nodes() {
		panic("auxgraph: source/destination out of range")
	}
	g := sk.aux.G
	if sk.curS != s && sk.curS >= 0 {
		for _, r := range sk.termOutNode[sk.curS] {
			g.Disable(r.edge)
		}
	}
	if sk.curT != t && sk.curT >= 0 {
		for _, r := range sk.termInNode[sk.curT] {
			g.Disable(r.edge)
		}
	}
	sk.curS, sk.curT = s, t
	sk.aux.S = sk.srcVertex[s]
	sk.aux.T = sk.dstVertex[t]
	return sk.reweight(p)
}

func (sk *Skeleton) reweight(p Params) *Aux {
	if !sk.Valid() {
		panic("auxgraph: network structure changed since skeleton build; build a new skeleton")
	}
	if p.NodeDisjoint != sk.nodeDisjoint {
		panic("auxgraph: Params.NodeDisjoint disagrees with the skeleton")
	}
	base := p.Base
	if base == 0 {
		base = DefaultBase
	}
	if base <= 1 {
		panic("auxgraph: exponent base must exceed 1")
	}
	defer instr.reweightTime.Stop(instr.reweightTime.Start())
	sp := p.Trace.Begin("reweight")

	net := sk.aux.net
	g := sk.aux.G
	keep := sk.aux.keep
	sv := net.StateVersion()

	// Refresh this variant's cached link-edge weights: recompute every link
	// on the first use (or when the Load base moves), only journal-dirty
	// links afterwards.
	wc := &sk.lw[p.Kind]
	if wc.w == nil {
		//wdmlint:ignore hotalloc one-time lazy initialization of the per-variant weight cache
		wc.w = make([]float64, sk.m)
	}
	full := !wc.ok || (p.Kind == Load && wc.base != base)
	if full || wc.at != sv {
		for id := 0; id < sk.m; id++ {
			if !full && net.LinkStamp(id) <= wc.at {
				continue
			}
			wc.w[id] = linkWeight(net.Link(id), p.Kind, base)
		}
		wc.ok, wc.at, wc.base = true, sv, base
	}

	// Link filter + link-edge weights.
	for id := 0; id < sk.m; id++ {
		l := net.Link(id)
		k := !l.Avail().Empty()
		if k {
			if p.Filter != nil {
				k = p.Filter(id)
			} else if (p.Kind == Load || p.Kind == LoadCost) && l.Load() >= p.Threshold {
				k = false
			}
		}
		keep[id] = k
		eid := sk.linkEdge[id]
		if !k {
			g.Disable(eid)
			g.SetWeight(eid, 0)
			continue
		}
		g.Enable(eid)
		g.SetWeight(eid, wc.w[id])
	}

	// Availability-dependent conversion means: full scan on first use, then
	// only the pairs incident to journal-dirty links.
	if !sk.pairsOK {
		for i, cp := range sk.pairs {
			sk.pairOK[i], sk.pairMean[i] = meanConvCost(net, net.Converter(cp.node), cp.ein, cp.eout)
		}
		sk.pairsAt = sv
		sk.pairsOK = true
	} else if sk.pairsAt != sv {
		for id := 0; id < sk.m; id++ {
			if net.LinkStamp(id) <= sk.pairsAt {
				continue
			}
			for _, i := range sk.pairsByLink[id] {
				cp := sk.pairs[i]
				sk.pairOK[i], sk.pairMean[i] = meanConvCost(net, net.Converter(cp.node), cp.ein, cp.eout)
			}
		}
		sk.pairsAt = sv
	}

	costed := p.Kind == Cost || p.Kind == LoadCost
	for i, cp := range sk.pairs {
		if cp.edge < 0 {
			continue // hub-gadget pair, folded into its hub edge below
		}
		if keep[cp.ein] && keep[cp.eout] && sk.pairOK[i] {
			g.Enable(cp.edge)
			if costed {
				g.SetWeight(cp.edge, sk.pairMean[i])
			} else {
				g.SetWeight(cp.edge, 0)
			}
		} else {
			g.Disable(cp.edge)
			g.SetWeight(cp.edge, 0)
		}
	}

	for _, hb := range sk.hubs {
		sum, cnt := 0.0, 0
		for i := hb.pairLo; i < hb.pairHi; i++ {
			cp := sk.pairs[i]
			if keep[cp.ein] && keep[cp.eout] && sk.pairOK[i] {
				sum += sk.pairMean[i]
				cnt++
			}
		}
		if cnt == 0 {
			g.Disable(hb.hubEdge)
			g.SetWeight(hb.hubEdge, 0)
			continue
		}
		g.Enable(hb.hubEdge)
		if costed {
			g.SetWeight(hb.hubEdge, sum/float64(cnt))
		} else {
			g.SetWeight(hb.hubEdge, 0)
		}
	}
	//wdmlint:ignore hotalloc non-escaping closure; stays on the stack
	gate := func(refs []linkEdgeRef) {
		for _, r := range refs {
			if keep[r.link] {
				g.Enable(r.edge)
			} else {
				g.Disable(r.edge)
			}
		}
	}
	gate(sk.spokeIn)
	gate(sk.spokeOut)
	if sk.shared {
		gate(sk.termOutNode[sk.curS])
		gate(sk.termInNode[sk.curT])
	} else {
		gate(sk.termOut)
		gate(sk.termIn)
	}

	instr.reweights.Inc()
	if p.Trace != nil {
		kept := 0
		for id := 0; id < sk.m; id++ {
			if keep[id] {
				kept++
			}
		}
		p.Trace.SpanStr(sp, "kind", p.Kind.String())
		if p.Kind == Load || p.Kind == LoadCost {
			p.Trace.SpanFloat(sp, "threshold", p.Threshold)
		}
		p.Trace.SpanInt(sp, "kept_links", int64(kept))
		p.Trace.EndSpan(sp)
	}
	return &sk.aux
}

// linkWeight returns the variant weight of a surviving link edge.
func linkWeight(l *wdm.Link, kind Kind, base float64) float64 {
	switch kind {
	case Cost:
		return l.MeanAvailCost()
	case Load:
		n := float64(l.N())
		u := float64(l.U())
		return math.Pow(base, (u+1)/n) - math.Pow(base, u/n)
	case LoadCost:
		return l.MeanInstalledCost()
	}
	return 0
}

// installedFeasible reports whether any conversion from a wavelength
// installed on ein to one installed on eout is allowed at the shared node —
// the structural superset of meanConvCost's availability test.
func installedFeasible(net *wdm.Network, conv wdm.Converter, ein, eout int) bool {
	in := net.Link(ein).Lambda()
	out := net.Link(eout).Lambda()
	switch conv.(type) {
	case *wdm.FullConverter:
		return !in.Empty() && !out.Empty()
	case wdm.NoConverter:
		return in.Intersects(out)
	}
	feasible := false
	in.ForEach(func(la int) bool {
		out.ForEach(func(lb int) bool {
			if la == lb || conv.Allowed(la, lb) {
				feasible = true
				return false
			}
			return true
		})
		return !feasible
	})
	return feasible
}

// meanConvCost returns whether any allowed conversion exists from the
// available wavelengths of ein to those of eout at the shared node, and the
// mean cost Σ c_v(λa, λb)/K_v over the K_v allowed ordered pairs (identity
// pairs count, at cost 0, matching the Theorem 2 accounting).
func meanConvCost(net *wdm.Network, conv wdm.Converter, ein, eout int) (bool, float64) {
	in := net.Link(ein).Avail()
	out := net.Link(eout).Avail()
	// Closed forms for the stock converters replace the O(W²) ordered-pair
	// scan with word-at-a-time popcounts on the availability bitsets: under
	// full conversion every ordered pair is allowed (K = |in|·|out|, the
	// |in ∩ out| identity pairs cost 0), and without conversion only the
	// identity pairs exist.
	switch c := conv.(type) {
	case *wdm.FullConverter:
		k := in.Count() * out.Count()
		if k == 0 {
			return false, 0
		}
		ident := in.IntersectCount(out)
		return true, c.UniformCost() * float64(k-ident) / float64(k)
	case wdm.NoConverter:
		return in.Intersects(out), 0
	}
	k := 0
	sum := 0.0
	//wdmlint:ignore hotalloc non-escaping closure; stays on the stack
	in.ForEach(func(la int) bool {
		//wdmlint:ignore hotalloc non-escaping closure; stays on the stack
		out.ForEach(func(lb int) bool {
			if la == lb {
				k++
			} else if conv.Allowed(la, lb) {
				k++
				sum += conv.Cost(la, lb)
			}
			return true
		})
		return true
	})
	if k == 0 {
		return false, 0
	}
	return true, sum / float64(k)
}

// Net returns the physical network the aux graph was built from.
func (a *Aux) Net() *wdm.Network { return a.net }

// OutNode returns the aux vertex of u_out^e for link e, or −1 if the link is
// filtered out under the current weights.
func (a *Aux) OutNode(link int) int {
	if !a.keep[link] {
		return -1
	}
	return a.outNode[link]
}

// InNode returns the aux vertex of v_in^e for link e, or −1 if filtered.
func (a *Aux) InNode(link int) int {
	if !a.keep[link] {
		return -1
	}
	return a.inNode[link]
}

// MapPath translates an aux edge-ID path into the ordered physical link IDs
// it traverses (its link edges, in order).
func (a *Aux) MapPath(path []int) []int {
	return a.AppendMapPath(nil, path)
}

// AppendMapPath appends the physical link IDs of path onto buf and returns
// the extended slice — the allocation-free variant of MapPath.
func (a *Aux) AppendMapPath(buf []int, path []int) []int {
	for _, id := range path {
		if aux := a.G.Edge(id).Aux; aux >= 0 {
			//wdmlint:ignore hotalloc appends into the caller's reusable buffer; growth amortizes to zero
			buf = append(buf, aux)
		}
	}
	return buf
}

// LinkSet translates an aux edge-ID path into the set of physical links it
// uses — the induced subgraph G_i of §3.3 in which the Lemma 2 refinement
// searches.
func (a *Aux) LinkSet(path []int) map[int]bool {
	set := make(map[int]bool)
	for _, id := range path {
		if aux := a.G.Edge(id).Aux; aux >= 0 {
			set[aux] = true
		}
	}
	return set
}
