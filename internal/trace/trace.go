// Package trace records simulator events as structured records, so runs can
// be audited, diffed across algorithms, or post-processed externally. The
// JSONL encoding writes one event per line; the in-memory buffer supports
// assertions in tests.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Kind labels an event.
type Kind string

// Event kinds emitted by the simulator.
const (
	Arrival    Kind = "arrival"    // request offered
	Accept     Kind = "accept"     // connection established
	Block      Kind = "block"      // request blocked
	Depart     Kind = "depart"     // connection torn down
	Failure    Kind = "failure"    // link failed
	Repair     Kind = "repair"     // link repaired
	Switchover Kind = "switchover" // primary → backup switch
	Reroute    Kind = "reroute"    // passive restoration or reconfiguration reroute
	Drop       Kind = "drop"       // connection lost (restoration failed)
	Reconfig   Kind = "reconfig"   // network reconfiguration triggered
	Reprotect  Kind = "reprotect"  // fresh backup established
)

// Event is one simulator occurrence.
type Event struct {
	Time float64 `json:"t"`
	Kind Kind    `json:"kind"`
	// Conn and Link identify the affected connection/link; −1 means not
	// applicable.
	Conn int `json:"conn"`
	Link int `json:"link"`
	// Req is the obs request ID of the routing trace behind this event, so
	// a JSONL event log joins against flight-recorder dumps (whose lines
	// carry the same ID in their "req" field). −1 when the event has no
	// routing trace — untraced runs, failures, repairs, reconfig triggers.
	Req int `json:"req"`
	// Detail carries free-form context ("cost=12.5", "theta=0.4").
	Detail string `json:"detail,omitempty"`
}

// UnmarshalJSON decodes an event, defaulting Req to −1 when the field is
// absent — event logs written before request tracing existed keep their
// meaning ("no trace") instead of silently claiming request 0.
func (e *Event) UnmarshalJSON(data []byte) error {
	type alias Event // drops the method set; plain decode, no recursion
	a := alias{Req: -1}
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*e = Event(a)
	return nil
}

// Recorder consumes events. Record reports encoding/transport failures so
// callers can surface them instead of losing trace data silently; the
// simulator never aborts on a trace error, it records the first one (see
// netsim.Sim.TraceErr). Implementations must be safe for use from a single
// goroutine (the simulator is sequential); Tee and Buffer are additionally
// safe for concurrent use.
type Recorder interface {
	Record(Event) error
}

// Buffer is an in-memory recorder for tests and summaries.
type Buffer struct {
	mu     sync.Mutex
	events []Event
}

// Record implements Recorder; it never fails.
func (b *Buffer) Record(e Event) error {
	b.mu.Lock()
	b.events = append(b.events, e)
	b.mu.Unlock()
	return nil
}

// Events returns a copy of everything recorded so far.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Event(nil), b.events...)
}

// Count returns how many events of the given kind were recorded ("" counts
// all events).
func (b *Buffer) Count(kind Kind) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if kind == "" {
		return len(b.events)
	}
	n := 0
	for _, e := range b.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// JSONL writes each event as one JSON line through an internal buffer.
// Call Flush (or Close) when done, or trailing events stay in the buffer.
type JSONL struct {
	w   io.Writer // the writer given to NewJSONL, for Close
	bw  *bufio.Writer
	enc *json.Encoder
	err error // first error observed; once set, Record is a no-op
}

// NewJSONL returns a recorder writing to w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{w: w, bw: bw, enc: json.NewEncoder(bw)}
}

// Record implements Recorder. After the first failure every subsequent call
// returns the same error without writing, so a dead sink costs one syscall
// total rather than one per event.
func (j *JSONL) Record(e Event) error {
	if j.err != nil {
		return j.err
	}
	if err := j.enc.Encode(e); err != nil {
		j.err = fmt.Errorf("trace: %w", err)
	}
	return j.err
}

// Err returns the first error Record or Flush observed, if any.
func (j *JSONL) Err() error { return j.err }

// Flush drains the internal buffer to the underlying writer.
func (j *JSONL) Flush() error {
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = fmt.Errorf("trace: %w", err)
	}
	return j.err
}

// Close flushes and, when the underlying writer is an io.Closer (e.g. an
// *os.File), closes it. The first error wins.
func (j *JSONL) Close() error {
	err := j.Flush()
	if c, ok := j.w.(io.Closer); ok {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: %w", cerr)
			j.err = err
		}
	}
	return err
}

// ReadJSONL parses a JSONL stream back into events.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("trace: %w", err)
		}
		out = append(out, e)
	}
}

// Tee fans events out to several recorders. Every recorder sees every event;
// Record returns the first error encountered.
func Tee(rs ...Recorder) Recorder { return tee(rs) }

type tee []Recorder

func (t tee) Record(e Event) error {
	var first error
	for _, r := range t {
		if err := r.Record(e); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Nop discards all events.
type Nop struct{}

// Record implements Recorder.
func (Nop) Record(Event) error { return nil }
