package rules

import (
	"go/ast"
	"go/types"

	"repro/internal/lint"
)

// VersionBump guards the skeleton-cache invalidation contract: every exported
// wdm.Network method that writes residual or topology state must advance the
// change counters by calling bumpState or bumpTopo (auxgraph.Skeleton and the
// Router's per-pair caches are valid exactly while the version they were
// computed at still matches — a missed bump silently serves stale routes).
var VersionBump = &lint.Analyzer{
	Name: "versionbump",
	Doc:  "exported wdm.Network methods that mutate state must call bumpState/bumpTopo",
	Run:  runVersionBump,
}

const (
	vbPkg  = "wdm"
	vbType = "Network"
)

var (
	// vbBumps are the methods (and raw counter fields) that count as
	// advancing a version.
	vbBumps  = map[string]bool{"bumpState": true, "bumpTopo": true}
	vbFields = map[string]bool{"stateVersion": true, "topoVersion": true}
	// vbMutators are method names that mutate a container reached from the
	// receiver (bitset and slice surgery on links and availability sets).
	vbMutators = map[string]bool{
		"Add": true, "Remove": true, "Clear": true, "CopyFrom": true, "Fill": true,
	}
)

func runVersionBump(p *lint.Pass) {
	if !lint.PkgPathIs(p.Pkg, vbPkg) {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			recv := fd.Recv.List[0]
			if len(recv.Names) == 0 {
				continue // receiver unnamed: the body cannot write through it
			}
			if !lint.NamedType(p.TypeOf(recv.Type), vbPkg, vbType) {
				continue
			}
			recvObj := p.ObjectOf(recv.Names[0])
			if recvObj == nil {
				continue
			}
			writes, bumps := scanNetworkMethod(p, fd.Body, recvObj)
			if writes && !bumps {
				p.Reportf(fd.Name.Pos(),
					"%s.%s mutates network state without calling bumpState or bumpTopo; cached skeletons will serve stale routes",
					vbType, fd.Name.Name)
			}
		}
	}
}

// scanNetworkMethod walks a method body tracking which local variables alias
// state reachable from the receiver ("rooted" values) and reports whether the
// body writes such state and whether it advances a version counter.
func scanNetworkMethod(p *lint.Pass, body *ast.BlockStmt, recv types.Object) (writes, bumps bool) {
	rooted := map[types.Object]bool{recv: true}

	isRooted := func(e ast.Expr) bool {
		for {
			switch x := unparen(e).(type) {
			case *ast.Ident:
				return rooted[p.ObjectOf(x)]
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				return false
			}
		}
	}
	// isReceiver reports whether e is the receiver identifier itself.
	isReceiver := func(e ast.Expr) bool {
		id, ok := unparen(e).(*ast.Ident)
		return ok && p.ObjectOf(id) == recv
	}
	// markAlias records LHS identifiers of a rooted RHS as rooted.
	markAlias := func(lhs ast.Expr, rhs ast.Expr) {
		if !isRooted(rhs) {
			return
		}
		if id, ok := unparen(lhs).(*ast.Ident); ok {
			if obj := p.ObjectOf(id); obj != nil {
				rooted[obj] = true
			}
		}
	}
	// recordWrite classifies a mutated lvalue: version-counter fields count
	// as bumps, everything else rooted counts as a state write.
	recordWrite := func(lhs ast.Expr) {
		lhs = unparen(lhs)
		if sel, ok := lhs.(*ast.SelectorExpr); ok && isReceiver(sel.X) && vbFields[sel.Sel.Name] {
			bumps = true
			return
		}
		switch lhs.(type) {
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			if isRooted(lhs) {
				writes = true
			}
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i := range s.Lhs {
					markAlias(s.Lhs[i], s.Rhs[i])
				}
			}
			for _, lhs := range s.Lhs {
				recordWrite(lhs)
			}
		case *ast.IncDecStmt:
			recordWrite(s.X)
		case *ast.RangeStmt:
			if isRooted(s.X) {
				for _, v := range []ast.Expr{s.Key, s.Value} {
					if v != nil {
						markAlias(v, s.X)
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := unparen(s.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch {
			case isReceiver(sel.X):
				if vbBumps[sel.Sel.Name] {
					bumps = true
				}
				// Other receiver methods are delegation: the callee is
				// checked on its own.
			case isRooted(sel.X) && vbMutators[sel.Sel.Name]:
				writes = true
			}
		}
		return true
	})
	return writes, bumps
}
